package orojenesis

import (
	"strings"
	"testing"
)

// These tests exercise the public facade exactly as a downstream user
// would, without touching internal packages.

func TestFacadeSingleEinsum(t *testing.T) {
	g := GEMM("g", 128, 128, 128)
	a, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := a.Curve.AccessesAt(a.MaxEffectualBytes)
	if !ok || acc != g.AlgorithmicMinBytes() {
		t.Fatalf("accesses at max effectual = (%d,%v), want algo min %d",
			acc, ok, g.AlgorithmicMinBytes())
	}
	if c := Bound(g, Options{}); c.MinAccessBytes() != a.Curve.MinAccessBytes() {
		t.Fatal("Bound disagrees with Analyze")
	}
}

func TestFacadeWorkloadBuilders(t *testing.T) {
	if BMM("b", 4, 8, 8, 8).MACs() != 4*8*8*8 {
		t.Fatal("BMM builder broken")
	}
	if GroupedBMM("g", 8, 2, 4, 4, 4).MACs() != 8*4*4*4 {
		t.Fatal("GroupedBMM builder broken")
	}
	conv := Conv2D("c", ConvConfig{P: 4, Q: 4, N: 4, C: 4, R: 3, S: 3})
	if conv.MACs() != 4*4*4*4*3*3 {
		t.Fatal("Conv2D builder broken")
	}
}

func TestFacadeChain(t *testing.T) {
	chain := MustChain("ffn", 64,
		GEMMOp("mm_0", 64, 16, 64),
		GEMMOp("mm_1", 64, 64, 16),
	)
	ca, err := AnalyzeChain(chain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ca.Tiled.MinAccessBytes() != ca.AlgoMin {
		t.Fatalf("tiled fusion floor %d != fused algo min %d",
			ca.Tiled.MinAccessBytes(), ca.AlgoMin)
	}
	if _, err := NewChain("bad", 64, GEMMOp("a", 64, 16, 64), GEMMOp("b", 64, 32, 16)); err == nil {
		t.Fatal("mismatched chain accepted")
	}
}

func TestFacadeProbeLevels(t *testing.T) {
	c := Bound(GEMM("g", 64, 64, 64), Options{})
	probes := ProbeLevels(c, map[string]int64{"L1": 1 << 10, "L2": 1 << 16})
	if len(probes) != 2 {
		t.Fatalf("got %d probes", len(probes))
	}
}

func TestFacadePerformanceMesa(t *testing.T) {
	g := GEMM("g", 256, 256, 256)
	c := Bound(g, Options{})
	mesa := PerformanceMesa(c, g.MACs(), GF100(), Ratios(0.01, 0.99, 50))
	best, ok := OptimalRatio(mesa)
	if !ok || best.Achieved <= 0 {
		t.Fatalf("no optimum: %+v", best)
	}
	oiMesa := OIMesa(c, g.MACs(), g.ElementSize)
	if len(oiMesa) == 0 {
		t.Fatal("empty OI mesa")
	}
}

func TestFacadeMHA(t *testing.T) {
	m := MHAConfig{Instances: 1, Seq: 64, Heads: 2, FeatureDim: 8}
	flash := m.FlashAttentionCurve()
	flat := m.FLATCurve()
	if flash.MinAccessBytes() != flat.MinAccessBytes() {
		t.Fatal("MHA strategies should converge to the same floor")
	}
}

func TestFacadeLLM(t *testing.T) {
	cfg := GPT3_6_7B()
	if cfg.L() != 32768 {
		t.Fatal("GPT3 config wrong")
	}
	study, err := NewBlockStudy(cfg.Scaled(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if study.BlockSegmented.Empty() {
		t.Fatal("empty block curve")
	}
}

func TestFacadeReporting(t *testing.T) {
	c := Bound(GEMM("g", 64, 64, 64), Options{})
	var b strings.Builder
	if err := WriteCSV(&b, Series{Name: "bound", Curve: c}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bound,") {
		t.Fatal("CSV missing series")
	}
	chart := Ascii(AsciiOptions{Width: 40, Height: 8}, Series{Name: "bound", Curve: c})
	if !strings.Contains(chart, "*") {
		t.Fatal("ASCII chart empty")
	}
	if SummaryTable([]int64{1 << 12}, Series{Name: "bound", Curve: c}) == "" {
		t.Fatal("empty summary")
	}
}
