// Command orojenesis derives single-Einsum data-movement bounds: the
// ski-slope curve (Fig. 1/10/12/13/14), the OI mesa (Fig. 8), multi-level
// probes (Fig. 7) and the max-effectual-buffer ratio study (Fig. 11).
//
// Examples:
//
//	orojenesis -gemm 4096,4096,4096 -summary -probe L1=256KB,L2=40MB
//	orojenesis -bmm 32,4096,128,4096 -csv
//	orojenesis -gbmm 32,8,4096,128,4096 -ascii
//	orojenesis -conv P=16,Q=16,N=64,C=64,R=3,S=3,T=1,D=1 -oi
//	orojenesis -gemm 96,80,72 -imperfect 16   # smoothed (Ruby-style) curve
//	orojenesis -ratio
//
// Sharded derivation (see docs/shard-format.md): each fleet member derives
// one contiguous slice of the mapspace into a resumable partial-frontier
// file, and shardmerge recombines them into the single-process curve:
//
//	orojenesis -gemm 4096,4096,4096 -shard 1/4 -out part1.json
//	...                             -shard 4/4 -out part4.json
//	shardmerge -out curve.json part1.json part2.json part3.json part4.json
//
// Or supervised in one process — all N shards with retry/backoff,
// quarantine of corrupt checkpoints, and resumable SIGINT/SIGTERM (see
// docs/shard-format.md, "Failure model"):
//
//	orojenesis -gemm 4096,4096,4096 -supervise 4 -shard-dir parts/ -out curve.json
//
// Any serialized workload spec (docs/workload-spec.md) runs through the
// same modes, whatever its kind — derivations are first-class values:
//
//	orojenesis -spec spec.json
//	orojenesis -spec spec.json -supervise 4 -shard-dir parts/ -out curve.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	orojenesis "repro"
	"repro/internal/cliutil"
	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("orojenesis: ")

	gemm := flag.String("gemm", "", "GEMM shape M,K,N")
	bmm := flag.String("bmm", "", "BMM shape H,M,K,N")
	gbmm := flag.String("gbmm", "", "grouped BMM shape H,G,M,K,N")
	conv := flag.String("conv", "", "conv config P=..,Q=..,N=..,C=..,R=..,S=..[,T=..,D=..]")
	einsumExpr := flag.String("einsum", "", `einsum notation, e.g. "B[m,n] = A[m,k] * W[k,n] {M=4096,K=4096,N=4096}"`)
	csv := flag.Bool("csv", false, "emit the curve as CSV")
	ascii := flag.Bool("ascii", false, "render an ASCII ski-slope chart")
	summary := flag.Bool("summary", true, "print the summary table")
	oiMesa := flag.Bool("oi", false, "emit the attainable-OI mesa as CSV")
	probe := flag.String("probe", "", "probe levels, e.g. L1=256KB,L2=40MB")
	ratio := flag.Bool("ratio", false, "run the Fig. 11 max-effectual-buffer ratio study")
	imperfect := flag.Int("imperfect", 0, "extra imperfect-factor samples per rank (0 = perfect factors only)")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print traversal statistics (workers used, mappings/sec)")
	specFile := flag.String("spec", "", "run a serialized workload spec (JSON, any kind; see docs/workload-spec.md) instead of workload flags")
	sf := cliutil.AddShardFlags(flag.CommandLine, "tiling indices")
	stf := cliutil.AddStoreFlags(flag.CommandLine)
	flag.Parse()

	opts := orojenesis.Options{ImperfectExtra: *imperfect, Workers: *workers}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	if *specFile != "" {
		cliutil.RunSpec(*specFile, sf, stf.Open(), *workers, *stats, summarize)
		return
	}
	if *ratio {
		runRatioStudy()
		return
	}

	e, err := buildWorkload(*gemm, *bmm, *gbmm, *conv, *einsumExpr)
	if err != nil {
		log.Fatal(err)
	}

	if sf.Active() {
		cfg := cliutil.ShardRunConfig{
			Header:    fmt.Sprintf("workload: %s", e),
			IndexNoun: "indices",
			EvalNoun:  "mappings",
			Stats:     *stats,
			Summarize: func(c *pareto.Curve) { summarize(e.Name, c) },
		}
		// Compile through the workload spec rather than shard.BoundJob
		// directly, so every checkpoint manifest embeds the spec and
		// stays resumable by shardmerge -resume alone.
		spec := workload.NewBound(e, opts)
		if sf.Fleet != "" {
			cliutil.RunFleet(cfg, sf, spec, *workers)
			return
		}
		exec := workload.Exec{Workers: *workers}
		mkJob := func(p shard.Plan) (shard.Job, error) { return spec.Compile(p, exec) }
		if sf.Supervise > 0 {
			cliutil.RunSupervised(cfg, sf, mkJob)
			return
		}
		cliutil.RunShard(cfg, sf, mkJob)
		return
	}
	var a *orojenesis.Analysis
	if st := stf.Open(); st != nil {
		// The durable curve tier (docs/curve-store.md): a prior run — or a
		// server sharing the directory — already derived this workload's
		// curve, so replay it and rebuild the report without traversing.
		res, err := cliutil.StoreRun(context.Background(), st,
			workload.NewBound(e, opts), workload.Exec{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
		if a, err = orojenesis.AnalyzeCurve(e, res.Curve); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: %s\n", e)
		suffix := ""
		if res.Hit {
			suffix = " (replayed from curve store)"
		}
		fmt.Printf("mappings evaluated: %d in %v%s\n", res.Evaluated, res.Elapsed, suffix)
	} else {
		if a, err = orojenesis.Analyze(e, opts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: %s\n", e)
		fmt.Printf("mappings evaluated: %d in %v\n", a.Stats.MappingsEvaluated, a.Stats.Elapsed)
		if *stats {
			fmt.Printf("workers: %d  throughput: %.0f mappings/sec\n",
				a.Stats.Workers, a.Stats.MappingsPerSec())
		}
	}
	fmt.Printf("MACs: %d  algorithmic OI: %.2f  peak attainable OI: %.2f\n",
		a.MACs, a.AlgorithmicOI, a.PeakOI)
	fmt.Printf("algorithmic min: %d B  max effectual buffer: %d B  gap1: %.3f\n",
		a.AlgorithmicMinBytes, a.MaxEffectualBytes, a.Gap1)

	series := orojenesis.Series{Name: e.Name, Curve: a.Curve}
	if *summary {
		fmt.Print(orojenesis.SummaryTable(
			[]int64{1 << 16, 1 << 20, 1 << 24, 40 << 20}, series))
	}
	if *ascii {
		fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{}, series))
	}
	if *csv {
		if err := orojenesis.WriteCSV(os.Stdout, series); err != nil {
			log.Fatal(err)
		}
	}
	if *oiMesa {
		fmt.Println("buffer_bytes,oi_macs_per_element")
		for _, p := range orojenesis.OIMesa(a.Curve, a.MACs, e.ElementSize) {
			fmt.Printf("%d,%.4f\n", p.BufferBytes, p.OI)
		}
	}
	if *probe != "" {
		levels, err := cliutil.ParseLevels(*probe)
		if err != nil {
			log.Fatal(err)
		}
		for _, lb := range orojenesis.ProbeLevels(a.Curve, levels) {
			if lb.Feasible {
				fmt.Printf("level %-6s cap %12d B -> bound %d B\n",
					lb.Level, lb.CapacityBytes, lb.AccessBytes)
			} else {
				fmt.Printf("level %-6s cap %12d B -> infeasible\n", lb.Level, lb.CapacityBytes)
			}
		}
	}
}

// summarize renders the single-Einsum summary table for a merged or
// spec-run curve — the Summarize hook of the shared shard runners.
func summarize(name string, c *pareto.Curve) {
	fmt.Print(orojenesis.SummaryTable(
		[]int64{1 << 16, 1 << 20, 1 << 24, 40 << 20},
		orojenesis.Series{Name: name, Curve: c}))
}

func buildWorkload(gemm, bmm, gbmm, conv, einsumExpr string) (*orojenesis.Einsum, error) {
	switch {
	case einsumExpr != "":
		return orojenesis.ParseEinsum(einsumExpr)
	case gemm != "":
		d, err := cliutil.ParseDims(gemm, 3)
		if err != nil {
			return nil, err
		}
		return orojenesis.GEMM(fmt.Sprintf("gemm_%s", gemm), d[0], d[1], d[2]), nil
	case bmm != "":
		d, err := cliutil.ParseDims(bmm, 4)
		if err != nil {
			return nil, err
		}
		return orojenesis.BMM(fmt.Sprintf("bmm_%s", bmm), d[0], d[1], d[2], d[3]), nil
	case gbmm != "":
		d, err := cliutil.ParseDims(gbmm, 5)
		if err != nil {
			return nil, err
		}
		return orojenesis.GroupedBMM(fmt.Sprintf("gbmm_%s", gbmm), d[0], d[1], d[2], d[3], d[4]), nil
	case conv != "":
		cfg, err := cliutil.ParseConv(conv)
		if err != nil {
			return nil, err
		}
		return orojenesis.Conv2D("conv", cfg), nil
	}
	return nil, fmt.Errorf("specify a workload: -gemm, -bmm, -gbmm, -conv or -einsum (see -h)")
}

// runRatioStudy reproduces Fig. 11: the maximal effectual buffer size
// normalized to the total operand size for a sweep of GEMM shapes.
func runRatioStudy() {
	shapes := []struct {
		name    string
		m, k, n int64
	}{
		{"square-1k", 1024, 1024, 1024},
		{"square-2k", 2048, 2048, 2048},
		{"square-4k", 4096, 4096, 4096},
		{"tall-16k_1k_1k", 16384, 1024, 1024},
		{"wide-1k_1k_16k", 1024, 1024, 16384},
		{"deep-1k_16k_1k", 1024, 16384, 1024},
		{"flat-4k_256_4k", 4096, 256, 4096},
	}
	fmt.Println("shape,max_effectual_bytes,total_operand_bytes,ratio,smallest_operand_ratio")
	for _, s := range shapes {
		g := orojenesis.GEMM(s.name, s.m, s.k, s.n)
		a, err := orojenesis.Analyze(g, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ratio, _ := a.Curve.Gap1()
		smallest := float64(g.SmallestOperandElements()*g.ElementSize) /
			float64(g.TotalOperandBytes())
		fmt.Printf("%s,%d,%d,%.4f,%.4f\n",
			s.name, a.MaxEffectualBytes, g.TotalOperandBytes(), ratio, smallest)
	}
}
