// Command orojenesis derives single-Einsum data-movement bounds: the
// ski-slope curve (Fig. 1/10/12/13/14), the OI mesa (Fig. 8), multi-level
// probes (Fig. 7) and the max-effectual-buffer ratio study (Fig. 11).
//
// Examples:
//
//	orojenesis -gemm 4096,4096,4096 -summary -probe L1=256KB,L2=40MB
//	orojenesis -bmm 32,4096,128,4096 -csv
//	orojenesis -gbmm 32,8,4096,128,4096 -ascii
//	orojenesis -conv P=16,Q=16,N=64,C=64,R=3,S=3,T=1,D=1 -oi
//	orojenesis -gemm 96,80,72 -imperfect 16   # smoothed (Ruby-style) curve
//	orojenesis -ratio
//
// Sharded derivation (see docs/shard-format.md): each fleet member derives
// one contiguous slice of the mapspace into a resumable partial-frontier
// file, and shardmerge recombines them into the single-process curve:
//
//	orojenesis -gemm 4096,4096,4096 -shard 1/4 -out part1.json
//	...                             -shard 4/4 -out part4.json
//	shardmerge -out curve.json part1.json part2.json part3.json part4.json
//
// Or supervised in one process — all N shards with retry/backoff,
// quarantine of corrupt checkpoints, and resumable SIGINT/SIGTERM (see
// docs/shard-format.md, "Failure model"):
//
//	orojenesis -gemm 4096,4096,4096 -supervise 4 -shard-dir parts/ -out curve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	orojenesis "repro"
	"repro/internal/cliutil"
	"repro/internal/shard"
	"repro/internal/supervise"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("orojenesis: ")

	gemm := flag.String("gemm", "", "GEMM shape M,K,N")
	bmm := flag.String("bmm", "", "BMM shape H,M,K,N")
	gbmm := flag.String("gbmm", "", "grouped BMM shape H,G,M,K,N")
	conv := flag.String("conv", "", "conv config P=..,Q=..,N=..,C=..,R=..,S=..[,T=..,D=..]")
	einsumExpr := flag.String("einsum", "", `einsum notation, e.g. "B[m,n] = A[m,k] * W[k,n] {M=4096,K=4096,N=4096}"`)
	csv := flag.Bool("csv", false, "emit the curve as CSV")
	ascii := flag.Bool("ascii", false, "render an ASCII ski-slope chart")
	summary := flag.Bool("summary", true, "print the summary table")
	oiMesa := flag.Bool("oi", false, "emit the attainable-OI mesa as CSV")
	probe := flag.String("probe", "", "probe levels, e.g. L1=256KB,L2=40MB")
	ratio := flag.Bool("ratio", false, "run the Fig. 11 max-effectual-buffer ratio study")
	imperfect := flag.Int("imperfect", 0, "extra imperfect-factor samples per rank (0 = perfect factors only)")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print traversal statistics (workers used, mappings/sec)")
	shardSpec := flag.String("shard", "", "derive only shard k/N of the mapspace into -out (e.g. 1/4); resumes an interrupted run from the same file")
	out := flag.String("out", "", "partial-frontier file for -shard (checkpoint target and final artifact), or merged-curve JSON file for -supervise")
	checkpoint := flag.Int64("checkpoint", 0, "tiling indices per checkpoint flush in -shard/-supervise mode (0 = ~1/32 of each slice)")
	superviseN := flag.Int("supervise", 0, "derive all N shards under one supervisor (retry, quarantine, resumable interrupt) and merge the result")
	shardDir := flag.String("shard-dir", "", "directory for per-shard checkpoint files in -supervise mode (required; reused on resume)")
	retries := flag.Int("retries", 0, "per-shard retry budget in -supervise mode (0 = default, negative = none)")
	allowPartial := flag.Bool("allow-partial", false, "in -supervise mode, emit an annotated degraded curve when shards fail permanently instead of refusing")
	flag.Parse()

	opts := orojenesis.Options{ImperfectExtra: *imperfect, Workers: *workers}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	if *ratio {
		runRatioStudy()
		return
	}

	e, err := buildWorkload(*gemm, *bmm, *gbmm, *conv, *einsumExpr)
	if err != nil {
		log.Fatal(err)
	}

	if *superviseN > 0 {
		runSupervised(e, opts, *superviseN, *shardDir, *out, *checkpoint, *retries, *allowPartial, *stats)
		return
	}
	if *shardSpec != "" {
		runShard(e, opts, *shardSpec, *out, *checkpoint, *stats)
		return
	}
	a, err := orojenesis.Analyze(e, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", e)
	fmt.Printf("mappings evaluated: %d in %v\n", a.Stats.MappingsEvaluated, a.Stats.Elapsed)
	if *stats {
		fmt.Printf("workers: %d  throughput: %.0f mappings/sec\n",
			a.Stats.Workers, a.Stats.MappingsPerSec())
	}
	fmt.Printf("MACs: %d  algorithmic OI: %.2f  peak attainable OI: %.2f\n",
		a.MACs, a.AlgorithmicOI, a.PeakOI)
	fmt.Printf("algorithmic min: %d B  max effectual buffer: %d B  gap1: %.3f\n",
		a.AlgorithmicMinBytes, a.MaxEffectualBytes, a.Gap1)

	series := orojenesis.Series{Name: e.Name, Curve: a.Curve}
	if *summary {
		fmt.Print(orojenesis.SummaryTable(
			[]int64{1 << 16, 1 << 20, 1 << 24, 40 << 20}, series))
	}
	if *ascii {
		fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{}, series))
	}
	if *csv {
		if err := orojenesis.WriteCSV(os.Stdout, series); err != nil {
			log.Fatal(err)
		}
	}
	if *oiMesa {
		fmt.Println("buffer_bytes,oi_macs_per_element")
		for _, p := range orojenesis.OIMesa(a.Curve, a.MACs, e.ElementSize) {
			fmt.Printf("%d,%.4f\n", p.BufferBytes, p.OI)
		}
	}
	if *probe != "" {
		levels, err := cliutil.ParseLevels(*probe)
		if err != nil {
			log.Fatal(err)
		}
		for _, lb := range orojenesis.ProbeLevels(a.Curve, levels) {
			if lb.Feasible {
				fmt.Printf("level %-6s cap %12d B -> bound %d B\n",
					lb.Level, lb.CapacityBytes, lb.AccessBytes)
			} else {
				fmt.Printf("level %-6s cap %12d B -> infeasible\n", lb.Level, lb.CapacityBytes)
			}
		}
	}
}

// runShard derives one slice of e's mapspace into a resumable
// partial-frontier file (the -shard k/N -out FILE mode). SIGINT/SIGTERM
// flush a final checkpoint and exit; rerunning the same command resumes.
func runShard(e *orojenesis.Einsum, opts orojenesis.Options, spec, out string, checkpoint int64, stats bool) {
	if out == "" {
		log.Fatal("-shard requires -out FILE for the partial frontier")
	}
	plan, err := shard.ParsePlan(spec)
	if err != nil {
		log.Fatal(err)
	}
	job, err := shard.BoundJob(e, opts, plan)
	if err != nil {
		log.Fatal(err)
	}
	ropts := shard.RunOptions{Path: out, CheckpointEvery: checkpoint}
	if stats {
		ropts.OnCheckpoint = func(m shard.Manifest) {
			fmt.Printf("checkpoint: %d / %d indices of shard %s\n",
				m.CompletedThrough-m.RangeLo, m.RangeHi-m.RangeLo, plan)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	p, rs, err := shard.Run(ctx, job, ropts)
	if err != nil {
		if ctx.Err() != nil && p != nil {
			log.Printf("interrupted at index %d of shard %s; checkpoint flushed to %s — rerun the same command to resume",
				p.Manifest.CompletedThrough, plan, out)
			os.Exit(130)
		}
		log.Fatal(err)
	}
	lo, hi := plan.Slice(job.Items)
	fmt.Printf("workload: %s\n", e)
	if rs.Resumed {
		fmt.Printf("resumed shard %s at index %d\n", plan, rs.ResumedFrom)
	}
	fmt.Printf("shard %s: indices [%d, %d) of %d, %d mappings evaluated in %v\n",
		plan, lo, hi, job.Items, rs.Evaluated, rs.Elapsed)
	fmt.Printf("partial frontier: %d points -> %s\n", p.Curve.Len(), out)
}

// runSupervised derives all N shards of e's mapspace under one supervisor
// (the -supervise N -shard-dir DIR mode): retried with backoff on
// transient failures, corrupt checkpoints quarantined and re-derived, and
// SIGINT/SIGTERM flushing final checkpoints so rerunning the same command
// resumes every shard. The merged curve — exact, or degraded under
// -allow-partial — is summarized and optionally written to -out.
func runSupervised(e *orojenesis.Einsum, opts orojenesis.Options, n int, dir, out string, checkpoint int64, retries int, allowPartial, stats bool) {
	if dir == "" {
		log.Fatal("-supervise requires -shard-dir DIR for the per-shard checkpoint files")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sopts := supervise.Options{
		Dir:             dir,
		CheckpointEvery: checkpoint,
		MaxRetries:      retries,
		AllowPartial:    allowPartial,
		Logf:            log.Printf,
	}
	if stats {
		sopts.OnCheckpoint = func(m shard.Manifest) {
			fmt.Printf("checkpoint: shard %d/%d at %d / %d indices\n",
				m.ShardIndex+1, m.ShardCount, m.CompletedThrough-m.RangeLo, m.RangeHi-m.RangeLo)
		}
	}
	report, err := supervise.Run(ctx, n, func(p shard.Plan) (shard.Job, error) {
		return shard.BoundJob(e, opts, p)
	}, sopts)
	if report != nil && report.Interrupted {
		log.Printf("interrupted; shard checkpoints flushed under %s — rerun the same command to resume", dir)
		os.Exit(130)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", e)
	var attempts int
	for _, st := range report.Shards {
		attempts += st.Attempts
		for _, q := range st.Quarantined {
			fmt.Printf("shard %s: quarantined corrupt checkpoint -> %s\n", st.Plan, q)
		}
	}
	fmt.Printf("supervised %d shards in %d attempts\n", n, attempts)

	curve := report.Curve
	if report.Degraded != nil {
		d := report.Degraded
		curve = d.Curve
		fmt.Printf("DEGRADED curve: covers %d of %d indices (%.2f%%); missing shards %v, incomplete %v\n",
			d.CoveredIndices, d.Items, 100*d.CoveredFraction, d.MissingShards, d.IncompleteShards)
	}
	series := orojenesis.Series{Name: e.Name, Curve: curve}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 16, 1 << 20, 1 << 24, 40 << 20}, series))

	if out != "" {
		// A degraded result is serialized only inside its annotated
		// envelope, never as a bare curve.
		var payload any = curve
		if report.Degraded != nil {
			payload = report.Degraded
		}
		data, err := json.Marshal(payload)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged curve: %d points -> %s\n", curve.Len(), out)
	}
}

func buildWorkload(gemm, bmm, gbmm, conv, einsumExpr string) (*orojenesis.Einsum, error) {
	switch {
	case einsumExpr != "":
		return orojenesis.ParseEinsum(einsumExpr)
	case gemm != "":
		d, err := cliutil.ParseDims(gemm, 3)
		if err != nil {
			return nil, err
		}
		return orojenesis.GEMM(fmt.Sprintf("gemm_%s", gemm), d[0], d[1], d[2]), nil
	case bmm != "":
		d, err := cliutil.ParseDims(bmm, 4)
		if err != nil {
			return nil, err
		}
		return orojenesis.BMM(fmt.Sprintf("bmm_%s", bmm), d[0], d[1], d[2], d[3]), nil
	case gbmm != "":
		d, err := cliutil.ParseDims(gbmm, 5)
		if err != nil {
			return nil, err
		}
		return orojenesis.GroupedBMM(fmt.Sprintf("gbmm_%s", gbmm), d[0], d[1], d[2], d[3], d[4]), nil
	case conv != "":
		cfg, err := cliutil.ParseConv(conv)
		if err != nil {
			return nil, err
		}
		return orojenesis.Conv2D("conv", cfg), nil
	}
	return nil, fmt.Errorf("specify a workload: -gemm, -bmm, -gbmm, -conv or -einsum (see -h)")
}

// runRatioStudy reproduces Fig. 11: the maximal effectual buffer size
// normalized to the total operand size for a sweep of GEMM shapes.
func runRatioStudy() {
	shapes := []struct {
		name    string
		m, k, n int64
	}{
		{"square-1k", 1024, 1024, 1024},
		{"square-2k", 2048, 2048, 2048},
		{"square-4k", 4096, 4096, 4096},
		{"tall-16k_1k_1k", 16384, 1024, 1024},
		{"wide-1k_1k_16k", 1024, 1024, 16384},
		{"deep-1k_16k_1k", 1024, 16384, 1024},
		{"flat-4k_256_4k", 4096, 256, 4096},
	}
	fmt.Println("shape,max_effectual_bytes,total_operand_bytes,ratio,smallest_operand_ratio")
	for _, s := range shapes {
		g := orojenesis.GEMM(s.name, s.m, s.k, s.n)
		a, err := orojenesis.Analyze(g, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ratio, _ := a.Curve.Gap1()
		smallest := float64(g.SmallestOperandElements()*g.ElementSize) /
			float64(g.TotalOperandBytes())
		fmt.Printf("%s,%d,%d,%.4f,%.4f\n",
			s.name, a.MaxEffectualBytes, g.TotalOperandBytes(), ratio, smallest)
	}
}
