// Command fusionbounds derives multi-Einsum fusion bounds for GEMM chains
// (Fig. 18, Sec. VI): the optimal unfused baseline, untiled fusion, tiled
// fusion, and the best segmentation, plus the tiled-vs-unfused reduction
// factors (Fig. 18b).
//
// Example (the paper's Fig. 18 pair):
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -ascii
//
// Sharded derivation (see docs/shard-format.md): each fleet member
// derives one slice of the selected sweep — the FFMT template space
// (-path tiled, the default) or the 2^(n-1) segmentation-mask space
// (-path segmentation) — into a resumable partial-frontier file, merged
// back with shardmerge:
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -shard 1/4 -out part1.json
//	...                                              -shard 4/4 -out part4.json
//	shardmerge -out tiled.json part1.json part2.json part3.json part4.json
//
// Or supervised in one process — all N shards with retry/backoff,
// quarantine of corrupt checkpoints, and resumable SIGINT/SIGTERM (see
// docs/shard-format.md, "Failure model"):
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -supervise 4 -shard-dir parts/ -out tiled.json
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -path segmentation -supervise 4 -shard-dir segparts/ -out best.json
//
// Any serialized workload spec (docs/workload-spec.md) runs through the
// same modes, whatever its kind — derivations are first-class values:
//
//	fusionbounds -spec spec.json -supervise 4 -shard-dir parts/ -out curve.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	orojenesis "repro"
	"repro/internal/cliutil"
	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fusionbounds: ")

	m := flag.Int64("m", 32768, "shared row dimension M of the chain")
	ops := flag.String("ops", "4096x16384,16384x4096", "comma-separated KxN per op")
	einsums := flag.String("einsums", "", `semicolon-separated GEMM einsums, e.g. "C[m,n]=A[m,k]*W[k,n]{M=1024,K=1024,N=2048}; D[m,n]=C[m,k]*V[k,n]{M=1024,K=2048,N=1024}" (each op's K must equal its predecessor's N)`)
	csv := flag.Bool("csv", false, "emit all curves as CSV")
	ascii := flag.Bool("ascii", false, "render an ASCII chart")
	reductions := flag.Bool("reductions", true, "print tiled-vs-unfused reduction factors")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print per-phase traversal statistics")
	path := flag.String("path", "tiled", "sharded derivation path: tiled (FFMT template sweep) or segmentation (2^(n-1) cut study)")
	specFile := flag.String("spec", "", "run a serialized workload spec (JSON, any kind; see docs/workload-spec.md) instead of workload flags")
	sf := cliutil.AddShardFlags(flag.CommandLine, "template indices")
	stf := cliutil.AddStoreFlags(flag.CommandLine)
	flag.Parse()

	opts := orojenesis.Options{Workers: *workers}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	if *specFile != "" {
		cliutil.RunSpec(*specFile, sf, stf.Open(), *workers, *stats, summarize)
		return
	}

	var chain *orojenesis.Chain
	var err error
	if *einsums != "" {
		chain, err = buildEinsumChain(*einsums)
	} else {
		chain, err = buildChain(*m, *ops)
	}
	if err != nil {
		log.Fatal(err)
	}

	if sf.Active() {
		spec, err := buildSpec(chain, *path, *workers)
		if err != nil {
			log.Fatal(err)
		}
		name := "tiled-fusion"
		if *path == "segmentation" {
			name = "best-segmentation"
		}
		cfg := cliutil.ShardRunConfig{
			Header:    fmt.Sprintf("chain: %d ops over M=%d", chain.Len(), chain.M),
			IndexNoun: "template indices",
			EvalNoun:  "candidates",
			Stats:     *stats,
			Summarize: func(c *pareto.Curve) { summarize(name, c) },
		}
		if sf.Fleet != "" {
			cliutil.RunFleet(cfg, sf, spec, *workers)
			return
		}
		exec := workload.Exec{Workers: *workers}
		mkJob := func(p shard.Plan) (shard.Job, error) { return spec.Compile(p, exec) }
		if sf.Supervise > 0 {
			cliutil.RunSupervised(cfg, sf, mkJob)
			return
		}
		cliutil.RunShard(cfg, sf, mkJob)
		return
	}
	a, err := orojenesis.AnalyzeChain(chain, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chain: %d ops over M=%d\n", chain.Len(), chain.M)
	fmt.Printf("algorithmic min: unfused %d B, fused %d B\n", a.UnfusedAlgoMin, a.AlgoMin)
	if *stats {
		fmt.Printf("\n%-22s %12s %8s %12s %14s\n", "phase", "evaluated", "workers", "elapsed", "points/sec")
		for _, p := range a.Stats.Phases {
			fmt.Printf("%-22s %12d %8d %12v %14.0f\n",
				p.Name, p.Evaluated, p.Workers, p.Elapsed.Round(time.Microsecond), p.PerSec())
		}
		fmt.Printf("%-22s %12d %8d %12v\n\n", "total",
			a.Stats.TotalEvaluated(), a.Stats.Workers, a.Stats.Total().Round(time.Microsecond))
	}

	series := []orojenesis.Series{
		{Name: "unfused", Curve: a.Unfused},
		{Name: "untiled-fusion", Curve: a.Untiled},
		{Name: "tiled-fusion", Curve: a.Tiled},
		{Name: "best-segmentation", Curve: a.Best},
	}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 20, 10 << 20, 256 << 20}, series...))
	if *ascii {
		fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{}, series...))
	}
	if *csv {
		if err := orojenesis.WriteCSV(os.Stdout, series...); err != nil {
			log.Fatal(err)
		}
	}
	if *reductions {
		fmt.Println("\nbuffer_bytes,tiled_vs_unfused_reduction")
		for _, mb := range []int64{1, 4, 10, 32, 64, 128, 256, 512} {
			buf := mb << 20
			u, ok1 := a.Unfused.AccessesAt(buf)
			f, ok2 := a.Tiled.AccessesAt(buf)
			if !ok1 || !ok2 {
				continue
			}
			fmt.Printf("%d,%.3f\n", buf, float64(u)/float64(f))
		}
	}
}

// buildSpec returns the materialized workload Spec of the selected
// derivation path — the value every sharded mode compiles its jobs from
// (and the fleet mode ships to remote workers verbatim), so every
// checkpoint manifest embeds it and stays resumable by shardmerge
// -resume alone. The segmentation path derives each op's standalone
// ski-slope curve up front (Materialize): those curves are inputs of the
// study and part of the workload digest, so every shard of a run — and
// every resume, on any machine — must be built from the same
// deterministic set.
func buildSpec(chain *orojenesis.Chain, path string, workers int) (*workload.Spec, error) {
	switch path {
	case "tiled":
		return workload.NewFusionTiled(chain), nil
	case "segmentation":
		exec := workload.Exec{Workers: workers}
		return workload.NewSegmentation(chain, nil).Materialize(context.Background(), exec)
	default:
		return nil, fmt.Errorf("unknown -path %q (want tiled or segmentation)", path)
	}
}

// summarize renders the chain summary table for a merged or spec-run
// curve — the Summarize hook of the shared shard runners.
func summarize(name string, c *pareto.Curve) {
	fmt.Print(orojenesis.SummaryTable(
		[]int64{1 << 20, 10 << 20, 256 << 20},
		orojenesis.Series{Name: name, Curve: c}))
}

func buildEinsumChain(spec string) (*orojenesis.Chain, error) {
	var es []*orojenesis.Einsum
	for _, part := range strings.Split(spec, ";") {
		e, err := orojenesis.ParseEinsum(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	return orojenesis.ChainFromEinsums("chain", es...)
}

func buildChain(m int64, spec string) (*orojenesis.Chain, error) {
	pairs, err := cliutil.ParseChainOps(spec)
	if err != nil {
		return nil, err
	}
	if len(pairs) < 2 {
		return nil, fmt.Errorf("need at least two ops")
	}
	opsList := make([]orojenesis.Op, len(pairs))
	for i, kn := range pairs {
		opsList[i] = orojenesis.GEMMOp(fmt.Sprintf("op%d", i), m, kn[0], kn[1])
	}
	return orojenesis.NewChain("chain", m, opsList...)
}
