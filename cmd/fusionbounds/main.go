// Command fusionbounds derives multi-Einsum fusion bounds for GEMM chains
// (Fig. 18, Sec. VI): the optimal unfused baseline, untiled fusion, tiled
// fusion, and the best segmentation, plus the tiled-vs-unfused reduction
// factors (Fig. 18b).
//
// Example (the paper's Fig. 18 pair):
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -ascii
//
// Sharded derivation (see docs/shard-format.md): each fleet member
// derives one slice of the selected sweep — the FFMT template space
// (-path tiled, the default) or the 2^(n-1) segmentation-mask space
// (-path segmentation) — into a resumable partial-frontier file, merged
// back with shardmerge:
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -shard 1/4 -out part1.json
//	...                                              -shard 4/4 -out part4.json
//	shardmerge -out tiled.json part1.json part2.json part3.json part4.json
//
// Or supervised in one process — all N shards with retry/backoff,
// quarantine of corrupt checkpoints, and resumable SIGINT/SIGTERM (see
// docs/shard-format.md, "Failure model"):
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -supervise 4 -shard-dir parts/ -out tiled.json
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -path segmentation -supervise 4 -shard-dir segparts/ -out best.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	orojenesis "repro"
	"repro/internal/bound"
	"repro/internal/cliutil"
	"repro/internal/shard"
	"repro/internal/supervise"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fusionbounds: ")

	m := flag.Int64("m", 32768, "shared row dimension M of the chain")
	ops := flag.String("ops", "4096x16384,16384x4096", "comma-separated KxN per op")
	einsums := flag.String("einsums", "", `semicolon-separated GEMM einsums, e.g. "C[m,n]=A[m,k]*W[k,n]{M=1024,K=1024,N=2048}; D[m,n]=C[m,k]*V[k,n]{M=1024,K=2048,N=1024}" (each op's K must equal its predecessor's N)`)
	csv := flag.Bool("csv", false, "emit all curves as CSV")
	ascii := flag.Bool("ascii", false, "render an ASCII chart")
	reductions := flag.Bool("reductions", true, "print tiled-vs-unfused reduction factors")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print per-phase traversal statistics")
	path := flag.String("path", "tiled", "sharded derivation path: tiled (FFMT template sweep) or segmentation (2^(n-1) cut study)")
	shardSpec := flag.String("shard", "", "derive only shard k/N of the -path sweep into -out (e.g. 1/4); resumes an interrupted run from the same file")
	out := flag.String("out", "", "partial-frontier file for -shard (checkpoint target and final artifact), or merged tiled-fusion curve JSON for -supervise")
	checkpoint := flag.Int64("checkpoint", 0, "template indices per checkpoint flush in -shard/-supervise mode (0 = ~1/32 of each slice)")
	superviseN := flag.Int("supervise", 0, "derive all N shards of the -path sweep under one supervisor (retry, quarantine, resumable interrupt) and merge the result")
	shardDir := flag.String("shard-dir", "", "directory for per-shard checkpoint files in -supervise mode (required; reused on resume)")
	retries := flag.Int("retries", 0, "per-shard retry budget in -supervise mode (0 = default, negative = none)")
	allowPartial := flag.Bool("allow-partial", false, "in -supervise mode, emit an annotated degraded curve when shards fail permanently instead of refusing")
	flag.Parse()

	opts := orojenesis.Options{Workers: *workers}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	var chain *orojenesis.Chain
	var err error
	if *einsums != "" {
		chain, err = buildEinsumChain(*einsums)
	} else {
		chain, err = buildChain(*m, *ops)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *superviseN > 0 || *shardSpec != "" {
		mkJob, err := jobMaker(chain, *path, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if *superviseN > 0 {
			runSupervised(chain, mkJob, *path, *superviseN, *shardDir, *out, *checkpoint, *retries, *allowPartial, *stats)
			return
		}
		runShard(chain, mkJob, *shardSpec, *out, *checkpoint, *stats)
		return
	}
	a, err := orojenesis.AnalyzeChain(chain, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chain: %d ops over M=%d\n", chain.Len(), chain.M)
	fmt.Printf("algorithmic min: unfused %d B, fused %d B\n", a.UnfusedAlgoMin, a.AlgoMin)
	if *stats {
		fmt.Printf("\n%-22s %12s %8s %12s %14s\n", "phase", "evaluated", "workers", "elapsed", "points/sec")
		for _, p := range a.Stats.Phases {
			fmt.Printf("%-22s %12d %8d %12v %14.0f\n",
				p.Name, p.Evaluated, p.Workers, p.Elapsed.Round(time.Microsecond), p.PerSec())
		}
		fmt.Printf("%-22s %12d %8d %12v\n\n", "total",
			a.Stats.TotalEvaluated(), a.Stats.Workers, a.Stats.Total().Round(time.Microsecond))
	}

	series := []orojenesis.Series{
		{Name: "unfused", Curve: a.Unfused},
		{Name: "untiled-fusion", Curve: a.Untiled},
		{Name: "tiled-fusion", Curve: a.Tiled},
		{Name: "best-segmentation", Curve: a.Best},
	}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 20, 10 << 20, 256 << 20}, series...))
	if *ascii {
		fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{}, series...))
	}
	if *csv {
		if err := orojenesis.WriteCSV(os.Stdout, series...); err != nil {
			log.Fatal(err)
		}
	}
	if *reductions {
		fmt.Println("\nbuffer_bytes,tiled_vs_unfused_reduction")
		for _, mb := range []int64{1, 4, 10, 32, 64, 128, 256, 512} {
			buf := mb << 20
			u, ok1 := a.Unfused.AccessesAt(buf)
			f, ok2 := a.Tiled.AccessesAt(buf)
			if !ok1 || !ok2 {
				continue
			}
			fmt.Printf("%d,%.3f\n", buf, float64(u)/float64(f))
		}
	}
}

// jobMaker returns the shard-job constructor for the selected derivation
// path. The segmentation path derives each op's standalone ski-slope
// curve up front: those curves are inputs of the study and part of the
// job's workload digest, so every shard of a fleet — and every resume —
// must be built from the same deterministic set.
func jobMaker(chain *orojenesis.Chain, path string, workers int) (func(shard.Plan) (shard.Job, error), error) {
	switch path {
	case "tiled":
		return func(p shard.Plan) (shard.Job, error) {
			return shard.FusionTiledJob(chain, p, workers)
		}, nil
	case "segmentation":
		perOp := chain.PerOpCurves(bound.Options{Workers: workers})
		return func(p shard.Plan) (shard.Job, error) {
			return shard.SegmentationJob(chain, perOp, p, workers)
		}, nil
	default:
		return nil, fmt.Errorf("unknown -path %q (want tiled or segmentation)", path)
	}
}

// runShard derives one slice of the selected sweep's index space into a
// resumable partial-frontier file (the -shard k/N -out FILE mode).
// SIGINT/SIGTERM flush a final checkpoint and exit; rerunning the same
// command resumes.
func runShard(chain *orojenesis.Chain, mkJob func(shard.Plan) (shard.Job, error), spec, out string, checkpoint int64, stats bool) {
	if out == "" {
		log.Fatal("-shard requires -out FILE for the partial frontier")
	}
	plan, err := shard.ParsePlan(spec)
	if err != nil {
		log.Fatal(err)
	}
	job, err := mkJob(plan)
	if err != nil {
		log.Fatal(err)
	}
	ropts := shard.RunOptions{Path: out, CheckpointEvery: checkpoint}
	if stats {
		ropts.OnCheckpoint = func(m shard.Manifest) {
			fmt.Printf("checkpoint: %d / %d template indices of shard %s\n",
				m.CompletedThrough-m.RangeLo, m.RangeHi-m.RangeLo, plan)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	p, rs, err := shard.Run(ctx, job, ropts)
	if err != nil {
		if ctx.Err() != nil && p != nil {
			log.Printf("interrupted at index %d of shard %s; checkpoint flushed to %s — rerun the same command to resume",
				p.Manifest.CompletedThrough, plan, out)
			os.Exit(130)
		}
		log.Fatal(err)
	}
	lo, hi := plan.Slice(job.Items)
	fmt.Printf("chain: %d ops over M=%d\n", chain.Len(), chain.M)
	if rs.Resumed {
		fmt.Printf("resumed shard %s at index %d\n", plan, rs.ResumedFrom)
	}
	fmt.Printf("shard %s: indices [%d, %d) of %d, %d candidates evaluated in %v\n",
		plan, lo, hi, job.Items, rs.Evaluated, rs.Elapsed)
	fmt.Printf("partial frontier: %d points -> %s\n", p.Curve.Len(), out)
}

// runSupervised derives all N shards of the selected sweep under one
// supervisor (the -supervise N -shard-dir DIR mode): retried with backoff
// on transient failures, corrupt checkpoints quarantined and re-derived,
// SIGINT/SIGTERM resumable by rerunning. The merged curve — exact, or
// degraded under -allow-partial — is summarized and optionally written
// to -out.
func runSupervised(chain *orojenesis.Chain, mkJob func(shard.Plan) (shard.Job, error), path string, n int, dir, out string, checkpoint int64, retries int, allowPartial, stats bool) {
	if dir == "" {
		log.Fatal("-supervise requires -shard-dir DIR for the per-shard checkpoint files")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sopts := supervise.Options{
		Dir:             dir,
		CheckpointEvery: checkpoint,
		MaxRetries:      retries,
		AllowPartial:    allowPartial,
		Logf:            log.Printf,
	}
	if stats {
		sopts.OnCheckpoint = func(m shard.Manifest) {
			fmt.Printf("checkpoint: shard %d/%d at %d / %d indices\n",
				m.ShardIndex+1, m.ShardCount, m.CompletedThrough-m.RangeLo, m.RangeHi-m.RangeLo)
		}
	}
	report, err := supervise.Run(ctx, n, mkJob, sopts)
	if report != nil && report.Interrupted {
		log.Printf("interrupted; shard checkpoints flushed under %s — rerun the same command to resume", dir)
		os.Exit(130)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chain: %d ops over M=%d\n", chain.Len(), chain.M)
	var attempts int
	for _, st := range report.Shards {
		attempts += st.Attempts
		for _, q := range st.Quarantined {
			fmt.Printf("shard %s: quarantined corrupt checkpoint -> %s\n", st.Plan, q)
		}
	}
	fmt.Printf("supervised %d shards in %d attempts\n", n, attempts)

	curve := report.Curve
	if report.Degraded != nil {
		d := report.Degraded
		curve = d.Curve
		fmt.Printf("DEGRADED curve: covers %d of %d indices (%.2f%%); missing shards %v, incomplete %v\n",
			d.CoveredIndices, d.Items, 100*d.CoveredFraction, d.MissingShards, d.IncompleteShards)
	}
	name := "tiled-fusion"
	if path == "segmentation" {
		name = "best-segmentation"
	}
	series := orojenesis.Series{Name: name, Curve: curve}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 20, 10 << 20, 256 << 20}, series))

	if out != "" {
		// A degraded result is serialized only inside its annotated
		// envelope, never as a bare curve.
		var payload any = curve
		if report.Degraded != nil {
			payload = report.Degraded
		}
		data, err := json.Marshal(payload)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged curve: %d points -> %s\n", curve.Len(), out)
	}
}

func buildEinsumChain(spec string) (*orojenesis.Chain, error) {
	var es []*orojenesis.Einsum
	for _, part := range strings.Split(spec, ";") {
		e, err := orojenesis.ParseEinsum(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	return orojenesis.ChainFromEinsums("chain", es...)
}

func buildChain(m int64, spec string) (*orojenesis.Chain, error) {
	pairs, err := cliutil.ParseChainOps(spec)
	if err != nil {
		return nil, err
	}
	if len(pairs) < 2 {
		return nil, fmt.Errorf("need at least two ops")
	}
	opsList := make([]orojenesis.Op, len(pairs))
	for i, kn := range pairs {
		opsList[i] = orojenesis.GEMMOp(fmt.Sprintf("op%d", i), m, kn[0], kn[1])
	}
	return orojenesis.NewChain("chain", m, opsList...)
}
