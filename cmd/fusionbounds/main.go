// Command fusionbounds derives multi-Einsum fusion bounds for GEMM chains
// (Fig. 18, Sec. VI): the optimal unfused baseline, untiled fusion, tiled
// fusion, and the best segmentation, plus the tiled-vs-unfused reduction
// factors (Fig. 18b).
//
// Example (the paper's Fig. 18 pair):
//
//	fusionbounds -m 32768 -ops 4096x16384,16384x4096 -ascii
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	orojenesis "repro"
	"repro/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fusionbounds: ")

	m := flag.Int64("m", 32768, "shared row dimension M of the chain")
	ops := flag.String("ops", "4096x16384,16384x4096", "comma-separated KxN per op")
	einsums := flag.String("einsums", "", `semicolon-separated GEMM einsums, e.g. "C[m,n]=A[m,k]*W[k,n]{M=1024,K=1024,N=2048}; D[m,n]=C[m,k]*V[k,n]{M=1024,K=2048,N=1024}" (each op's K must equal its predecessor's N)`)
	csv := flag.Bool("csv", false, "emit all curves as CSV")
	ascii := flag.Bool("ascii", false, "render an ASCII chart")
	reductions := flag.Bool("reductions", true, "print tiled-vs-unfused reduction factors")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print per-phase traversal statistics")
	flag.Parse()

	opts := orojenesis.Options{Workers: *workers}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	var chain *orojenesis.Chain
	var err error
	if *einsums != "" {
		chain, err = buildEinsumChain(*einsums)
	} else {
		chain, err = buildChain(*m, *ops)
	}
	if err != nil {
		log.Fatal(err)
	}
	a, err := orojenesis.AnalyzeChain(chain, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chain: %d ops over M=%d\n", chain.Len(), chain.M)
	fmt.Printf("algorithmic min: unfused %d B, fused %d B\n", a.UnfusedAlgoMin, a.AlgoMin)
	if *stats {
		fmt.Printf("\n%-22s %12s %8s %12s %14s\n", "phase", "evaluated", "workers", "elapsed", "points/sec")
		for _, p := range a.Stats.Phases {
			fmt.Printf("%-22s %12d %8d %12v %14.0f\n",
				p.Name, p.Evaluated, p.Workers, p.Elapsed.Round(time.Microsecond), p.PerSec())
		}
		fmt.Printf("%-22s %12d %8d %12v\n\n", "total",
			a.Stats.TotalEvaluated(), a.Stats.Workers, a.Stats.Total().Round(time.Microsecond))
	}

	series := []orojenesis.Series{
		{Name: "unfused", Curve: a.Unfused},
		{Name: "untiled-fusion", Curve: a.Untiled},
		{Name: "tiled-fusion", Curve: a.Tiled},
		{Name: "best-segmentation", Curve: a.Best},
	}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 20, 10 << 20, 256 << 20}, series...))
	if *ascii {
		fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{}, series...))
	}
	if *csv {
		if err := orojenesis.WriteCSV(os.Stdout, series...); err != nil {
			log.Fatal(err)
		}
	}
	if *reductions {
		fmt.Println("\nbuffer_bytes,tiled_vs_unfused_reduction")
		for _, mb := range []int64{1, 4, 10, 32, 64, 128, 256, 512} {
			buf := mb << 20
			u, ok1 := a.Unfused.AccessesAt(buf)
			f, ok2 := a.Tiled.AccessesAt(buf)
			if !ok1 || !ok2 {
				continue
			}
			fmt.Printf("%d,%.3f\n", buf, float64(u)/float64(f))
		}
	}
}

func buildEinsumChain(spec string) (*orojenesis.Chain, error) {
	var es []*orojenesis.Einsum
	for _, part := range strings.Split(spec, ";") {
		e, err := orojenesis.ParseEinsum(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		es = append(es, e)
	}
	return orojenesis.ChainFromEinsums("chain", es...)
}

func buildChain(m int64, spec string) (*orojenesis.Chain, error) {
	pairs, err := cliutil.ParseChainOps(spec)
	if err != nil {
		return nil, err
	}
	if len(pairs) < 2 {
		return nil, fmt.Errorf("need at least two ops")
	}
	opsList := make([]orojenesis.Op, len(pairs))
	for i, kn := range pairs {
		opsList[i] = orojenesis.GEMMOp(fmt.Sprintf("op%d", i), m, kn[0], kn[1])
	}
	return orojenesis.NewChain("chain", m, opsList...)
}
