// Command orojenesisd serves data-movement bound derivations over HTTP:
// a long-running counterpart to the orojenesis CLI for fleets that probe
// many workloads against one warm process. POST a workload spec — a
// single Einsum or GEMM (two- or three-level bound), a fused chain, or a
// chain segmentation study — to /v1/curve and get the Pareto frontier
// back as JSON, byte-identical to the in-process derivation, with
// admission control, per-request deadlines, single-flight result
// caching, panic containment, and graceful drain (SIGTERM checkpoints
// in-flight sharded derivations into the spool directory; a restarted
// server finishes them at startup from the spool's embedded workload
// specs, without waiting for the requests to be re-issued). A sharded request with "allow_partial" that
// loses shards permanently answers 206 Partial Content with a degraded
// envelope (covered_fraction, missing_shards) instead of an error, and
// keeps its spool as the resume point.
//
// Two flags turn processes into a derivation fleet
// (docs/fleet-protocol.md): -worker serves POST /v1/shard, executing
// shard dispatches for remote coordinators; -fleet URL,... makes this
// process a coordinator that dispatches its spooled sharded derivations
// to those workers — with retries, straggler speculation, and digest
// validation — and merges a curve byte-identical to deriving alone.
// The coordinator keeps a health-probed worker registry across requests:
// /readyz probes (-fleet-probe) and per-worker circuit breakers
// (-fleet-breaker-failures, -fleet-breaker-cooldown) shed load from
// failing workers, allocation prefers the highest observed throughput,
// and Retry-After hints from saturated or draining workers are honored.
// -fleet-file PATH replaces -fleet with a membership file reread on
// SIGHUP, so workers join and leave the fleet without a restart; GET
// /stats reports the membership's health gauges and per-worker detail.
//
// Example:
//
//	orojenesisd -addr :8080 -spool /var/lib/orojenesisd &
//	curl -s localhost:8080/v1/curve -d '{"gemm":{"m":512,"k":512,"n":512}}'
//	curl -s localhost:8080/v1/curve -d '{"segmentation":{"einsums":[
//	  "B[m,n] = A[m,k] * W[k,n] {M=64,K=8,N=16}",
//	  "C[m,n] = B[m,k] * V[k,n] {M=64,K=16,N=8}"]}}'
//
//	# two workers and a coordinator on one host
//	orojenesisd -addr :8081 -worker &
//	orojenesisd -addr :8082 -worker &
//	orojenesisd -addr :8080 -spool /var/lib/orojenesisd \
//	    -fleet http://localhost:8081,http://localhost:8082 &
//	curl -s localhost:8080/v1/curve -d '{"gemm":{"m":512,"k":512,"n":512},"shards":4}'
//
// See docs/server-api.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("orojenesisd: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "traversal goroutines per derivation (0 = GOMAXPROCS)")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneous derivations (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "derivations waiting for a slot before 429 (0 = 4x max-concurrent)")
	queueWait := flag.Duration("queue-wait", 0, "longest a queued derivation waits before 429 (0 = 10s)")
	defaultTimeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 60s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 10m)")
	cacheEntries := flag.Int("cache", 0, "result-cache capacity in curves (0 = 128)")
	spool := flag.String("spool", "", "spool directory for sharded derivations (empty disables the shards request field)")
	storeDir := flag.String("store-dir", "", "durable curve-store directory (docs/curve-store.md): derived curves persist across restarts and are shared with CLI warmers (empty disables the disk tier)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "byte cap of -store-dir, enforced by LRU garbage collection (0 = 1 GiB default; small values clamped up)")
	checkpoint := flag.Int64("checkpoint", 0, "tiling indices per checkpoint flush for spooled shards (0 = shard default)")
	retries := flag.Int("retries", 0, "per-shard retry budget for spooled derivations (0 = default)")
	maxShards := flag.Int("max-shards", 0, "cap on the per-request shard count (0 = 64)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight derivations before cancelling them")
	worker := flag.Bool("worker", false, "serve POST /v1/shard: execute fleet shard dispatches for remote coordinators")
	fleetList := flag.String("fleet", "", "comma-separated worker base URLs; spooled sharded derivations dispatch to them instead of deriving in-process (requires -spool)")
	fleetPerWorker := flag.Int("fleet-per-worker", 0, "concurrent dispatches per fleet worker (0 = 2)")
	fleetSpeculate := flag.Duration("fleet-speculate", 0, "re-dispatch straggling fleet shards to an idle worker after this delay (0 disables speculation)")
	fleetFile := flag.String("fleet-file", "", "fleet membership file: one worker base URL per line, # comments; reread on SIGHUP to add/remove workers at runtime (requires -spool, excludes -fleet)")
	fleetProbe := flag.Duration("fleet-probe", 0, "fleet worker health-probe interval (0 = 15s, negative disables probing)")
	fleetBreakerFailures := flag.Int("fleet-breaker-failures", 0, "consecutive dispatch failures that open a fleet worker's circuit breaker (0 = 3)")
	fleetBreakerCooldown := flag.Duration("fleet-breaker-cooldown", 0, "how long an open breaker sheds load before a half-open probe dispatch (0 = 5s)")
	flag.Parse()

	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	var fleetWorkers []string
	if *fleetList != "" {
		if *fleetFile != "" {
			log.Fatal("-fleet and -fleet-file are mutually exclusive: pick a static list or a reloadable file")
		}
		if *spool == "" {
			log.Fatal("-fleet requires -spool: dispatched partials land in the spool so a killed coordinator can resume")
		}
		fleetWorkers = cliutil.ParseWorkerURLs(*fleetList)
		if len(fleetWorkers) == 0 {
			log.Fatal("-fleet lists no worker URLs")
		}
	}
	if *fleetFile != "" {
		if *spool == "" {
			log.Fatal("-fleet-file requires -spool: dispatched partials land in the spool so a killed coordinator can resume")
		}
		urls, err := cliutil.ReadFleetFile(*fleetFile)
		if err != nil {
			log.Fatal(err)
		}
		// An empty file is a valid empty membership: the server derives
		// locally until a SIGHUP reload lists workers.
		fleetWorkers = urls
	}
	workerDir := ""
	if *worker {
		// Worker checkpoints live beside the spool when there is one; an
		// execution-only worker without -spool checkpoints under the OS
		// temp directory (shard resume within one life of the process).
		if *spool != "" {
			workerDir = filepath.Join(*spool, "worker")
		} else {
			workerDir = filepath.Join(os.TempDir(), fmt.Sprintf("orojenesisd-worker-%d", os.Getpid()))
		}
		if err := os.MkdirAll(workerDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	srv := serve.New(serve.Config{
		Workers:              *workers,
		MaxConcurrent:        *maxConcurrent,
		MaxQueue:             *maxQueue,
		QueueWait:            *queueWait,
		DefaultTimeout:       *defaultTimeout,
		MaxTimeout:           *maxTimeout,
		CacheEntries:         *cacheEntries,
		SpoolDir:             *spool,
		StoreDir:             *storeDir,
		StoreMaxBytes:        *storeMaxBytes,
		CheckpointEvery:      *checkpoint,
		ShardRetries:         *retries,
		MaxShards:            *maxShards,
		WorkerDir:            workerDir,
		FleetWorkers:         fleetWorkers,
		FleetPerWorker:       *fleetPerWorker,
		FleetSpeculateAfter:  *fleetSpeculate,
		FleetProbeInterval:   *fleetProbe,
		FleetBreakerFailures: *fleetBreakerFailures,
		FleetBreakerCooldown: *fleetBreakerCooldown,
		Logf:                 log.Printf,
	})

	// SIGHUP rereads -fleet-file and reconciles the live membership:
	// workers added to the file join mid-run and pick up queued shards;
	// removed workers stop receiving dispatches (in-flight ones finish
	// or fail over). See docs/fleet-protocol.md, "Health, membership &
	// breakers".
	if *fleetFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				urls, err := cliutil.ReadFleetFile(*fleetFile)
				if err != nil {
					log.Printf("fleet membership reload failed (membership unchanged): %v", err)
					continue
				}
				added, removed := srv.SetFleetWorkers(urls)
				log.Printf("fleet membership reloaded from %s: %d worker(s), %d added, %d removed",
					*fleetFile, len(urls), added, removed)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A previous process may have died mid-derivation: every spooled
	// sharded run leaves a spec.json beside its checkpoints, so finish
	// those derivations now — before taking traffic — and serve them from
	// cache. Spools without a spec (or that fail) are kept; a client
	// re-requesting the same derivation still resumes them.
	if *spool != "" {
		if n, err := srv.ResumeOrphans(ctx); err != nil {
			log.Printf("scanning spool for orphans: %v", err)
		} else if n > 0 {
			log.Printf("resumed %d orphaned derivation(s) from spool %q", n, *spool)
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (spool %q)", *addr, *spool)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("draining (up to %s)...", *drainTimeout)

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("drain cut short: %v (sharded progress checkpointed in spool)", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("stopped")
}
