// Command shardmerge recombines the partial-frontier files written by
// sharded orojenesis/fusionbounds runs (-shard k/N -out FILE) into the
// full ski-slope curve — byte-identical to the curve a single-process run
// derives. It refuses, with a descriptive error, any set of partials that
// does not form the complete shard set of one derivation: mismatched
// workload or options digests, differing engine versions, missing,
// duplicated or incomplete shards. See docs/shard-format.md for the file
// format.
//
// Examples:
//
//	shardmerge -out curve.json part1.json part2.json part3.json part4.json
//	shardmerge -csv part*.json > curve.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardmerge: ")

	out := flag.String("out", "", "write the merged curve as JSON to this file (default: stdout)")
	csv := flag.Bool("csv", false, "emit two-column CSV instead of JSON")
	summary := flag.Bool("summary", true, "print a merge summary to stderr")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		log.Fatal("no partial-frontier files given (usage: shardmerge -out curve.json part1.json part2.json ...)")
	}

	partials := make([]*shard.Partial, len(paths))
	for i, path := range paths {
		p, err := shard.ReadPartial(path)
		if err != nil {
			log.Fatal(err)
		}
		partials[i] = p
	}
	merged, err := shard.Merge(partials...)
	if err != nil {
		log.Fatal(err)
	}

	if *summary {
		m := &partials[0].Manifest
		fmt.Fprintf(os.Stderr, "merged %d shards of %q (%s, %d indices): %d points, buf %s..%s\n",
			m.ShardCount, m.Workload, m.Kind, m.Items, merged.Len(),
			shape.FormatBytes(merged.MinBufferBytes()),
			shape.FormatBytes(merged.MaxEffectualBufferBytes()))
	}

	if err := writeCurve(merged, *out, *csv); err != nil {
		log.Fatal(err)
	}
}

// writeCurve emits the merged curve as JSON (annotations included) or as
// two-column CSV, to path or stdout.
func writeCurve(c *pareto.Curve, path string, csv bool) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if csv {
		_, err := c.WriteTo(w)
		return err
	}
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
