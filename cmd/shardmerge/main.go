// Command shardmerge recombines the partial-frontier files written by
// sharded orojenesis/fusionbounds runs (-shard k/N -out FILE) into the
// full ski-slope curve — byte-identical to the curve a single-process run
// derives. It refuses, with a descriptive error, any set of partials that
// does not form the complete shard set of one derivation: mismatched
// workload or options digests, differing engine versions, missing,
// duplicated or incomplete shards. See docs/shard-format.md for the file
// format.
//
// With -allow-partial, an incomplete shard set (missing or interrupted
// shards) merges into an explicitly annotated degraded curve instead of
// being refused: the JSON output is the degraded envelope carrying the
// covered index fraction, and the CSV output leads with "# degraded"
// comment lines. A degraded curve is a valid but potentially loose lower
// bound — see docs/shard-format.md, "Failure model".
//
// With -resume, incomplete partials are finished in place first: each
// format-version-2 partial embeds the workload spec its job was compiled
// from, so shardmerge rebuilds the job from the manifest alone — no
// orojenesis/fusionbounds invocation, no original command line — runs
// the remaining slice, and then merges. Legacy (format version 1)
// partials carry no spec and must be completed by the tool that wrote
// them.
//
// Examples:
//
//	shardmerge -out curve.json part1.json part2.json part3.json part4.json
//	shardmerge -csv part*.json > curve.csv
//	shardmerge -allow-partial -out degraded.json part1.json part3.json
//	shardmerge -resume -out curve.json part1.json part2.json part3.json part4.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/shard"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardmerge: ")

	out := flag.String("out", "", "write the merged curve as JSON to this file (default: stdout)")
	csv := flag.Bool("csv", false, "emit two-column CSV instead of JSON")
	summary := flag.Bool("summary", true, "print a merge summary to stderr")
	allowPartial := flag.Bool("allow-partial", false, "merge an incomplete shard set into an explicitly annotated degraded curve instead of refusing")
	resume := flag.Bool("resume", false, "complete incomplete partials in place before merging, rebuilding each job from the spec embedded in its manifest (format version 2)")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines for -resume (0 = GOMAXPROCS)")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		log.Fatal("no partial-frontier files given (usage: shardmerge -out curve.json part1.json part2.json ...)")
	}

	partials := make([]*shard.Partial, len(paths))
	for i, path := range paths {
		p, err := shard.ReadPartial(path)
		if err != nil {
			log.Fatal(err)
		}
		partials[i] = p
	}

	if *resume {
		resumeIncomplete(partials, paths, *workers, *summary)
	}

	if *allowPartial {
		d, err := shard.MergeDegraded(partials...)
		if err != nil {
			log.Fatal(err)
		}
		if *summary {
			m := &partials[0].Manifest
			fmt.Fprintf(os.Stderr, "degraded merge of %d/%d shards of %q (%s): covers %d of %d indices (%.2f%%), %d points, missing %v, incomplete %v\n",
				len(partials), d.ShardCount, m.Workload, m.Kind,
				d.CoveredIndices, d.Items, 100*d.CoveredFraction, d.Curve.Len(),
				d.MissingShards, d.IncompleteShards)
		}
		if err := writeDegraded(d, *out, *csv); err != nil {
			log.Fatal(err)
		}
		return
	}

	merged, err := shard.Merge(partials...)
	if err != nil {
		log.Fatal(err)
	}

	if *summary {
		m := &partials[0].Manifest
		fmt.Fprintf(os.Stderr, "merged %d shards of %q (%s, %d indices): %d points, buf %s..%s\n",
			m.ShardCount, m.Workload, m.Kind, m.Items, merged.Len(),
			shape.FormatBytes(merged.MinBufferBytes()),
			shape.FormatBytes(merged.MaxEffectualBufferBytes()))
	}

	if err := writeCurve(merged, *out, *csv); err != nil {
		log.Fatal(err)
	}
}

// resumeIncomplete finishes every incomplete partial in place: the job
// is rebuilt from the spec embedded in the partial's own manifest (and
// cross-checked against its digests), shard.Run completes the remaining
// slice into the same file, and the re-read result replaces the stale
// entry in partials. SIGINT/SIGTERM flush a final checkpoint and exit
// resumable with status 130, like the derivation CLIs.
func resumeIncomplete(partials []*shard.Partial, paths []string, workers int, summary bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for i, p := range partials {
		if p.Manifest.Complete() {
			continue
		}
		job, _, err := workload.JobFromManifest(&p.Manifest, workload.Exec{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		if summary {
			fmt.Fprintf(os.Stderr, "resuming shard %d/%d of %q at index %d of [%d, %d)\n",
				p.Manifest.ShardIndex+1, p.Manifest.ShardCount, p.Manifest.Workload,
				p.Manifest.CompletedThrough, p.Manifest.RangeLo, p.Manifest.RangeHi)
		}
		fresh, rs, err := shard.Run(ctx, job, shard.RunOptions{Path: paths[i]})
		if err != nil {
			if ctx.Err() != nil && fresh != nil {
				log.Printf("interrupted at index %d; checkpoint flushed to %s — rerun the same command to resume",
					fresh.Manifest.CompletedThrough, paths[i])
				os.Exit(130)
			}
			log.Fatal(err)
		}
		if summary {
			fmt.Fprintf(os.Stderr, "completed shard %d/%d: %d candidates evaluated in %v\n",
				fresh.Manifest.ShardIndex+1, fresh.Manifest.ShardCount, rs.Evaluated, rs.Elapsed)
		}
		partials[i] = fresh
	}
}

// writeCurve emits the merged curve as JSON (annotations included) or as
// two-column CSV, to path or stdout.
func writeCurve(c *pareto.Curve, path string, csv bool) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if csv {
		_, err := c.WriteTo(w)
		return err
	}
	data, err := json.Marshal(c)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// writeDegraded emits a degraded merge, to path or stdout. The JSON form
// is the annotated envelope; the CSV form leads with "# degraded" comment
// lines so the coverage annotation can never be separated from the data.
func writeDegraded(d *shard.Degraded, path string, csv bool) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if csv {
		if _, err := fmt.Fprintf(w, "# degraded: %t\n# covered_indices: %d of %d (fraction %.6f)\n# missing_shards: %v\n# incomplete_shards: %v\n",
			!d.Complete(), d.CoveredIndices, d.Items, d.CoveredFraction,
			d.MissingShards, d.IncompleteShards); err != nil {
			return err
		}
		_, err := d.Curve.WriteTo(w)
		return err
	}
	data, err := json.Marshal(d)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
