// Command reproduce regenerates every figure's data series in one run and
// writes them as CSV files into an output directory, mirroring the
// paper's artifact appendix (which drives Jupyter notebooks to produce
// the figures). An INDEX.md in the output directory maps each file to its
// paper artifact.
//
//	reproduce -out results
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	orojenesis "repro"
	"repro/internal/fusion"
	"repro/internal/llm"
	"repro/internal/oi"
	"repro/internal/traverse"
)

type artifact struct {
	File    string
	Paper   string
	Note    string
	Elapsed time.Duration
}

func main() {
	out := flag.String("out", "results", "output directory")
	scale := flag.Int64("scale", 1, "divide LLM dims by this power of two")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print per-artifact wall time and worker count at the end")
	flag.Parse()

	opts := orojenesis.Options{Workers: *workers}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	last := start
	var index []artifact
	add := func(file, paper, note string, series ...orojenesis.Series) {
		path := filepath.Join(*out, file)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := orojenesis.WriteCSV(f, series...); err != nil {
			log.Fatal(err)
		}
		now := time.Now()
		index = append(index, artifact{File: file, Paper: paper, Note: note, Elapsed: now.Sub(last)})
		last = now
		fmt.Printf("wrote %s (%s)\n", path, paper)
	}

	// Fig. 1 / Fig. 7: the 16k x 1k x 1k ski slope.
	g1 := orojenesis.GEMM("gemm_16k_1k_1k", 16384, 1024, 1024)
	add("fig01_skislope.csv", "Fig. 1/7", "ski-slope bound, probe at any level capacity",
		orojenesis.Series{Name: g1.Name, Curve: orojenesis.Bound(g1, opts)})

	// Fig. 10: GEMM shapes.
	var fig10 []orojenesis.Series
	for _, side := range []int64{1024, 2048, 4096, 8192} {
		g := orojenesis.GEMM(fmt.Sprintf("square_%d", side), side, side, side)
		fig10 = append(fig10, orojenesis.Series{Name: g.Name, Curve: orojenesis.Bound(g, opts)})
	}
	add("fig10_gemm_shapes.csv", "Fig. 10", "square GEMM sweep", fig10...)

	// Fig. 12: convolutions.
	var fig12 []orojenesis.Series
	for _, c := range []struct {
		name string
		cfg  orojenesis.ConvConfig
	}{
		{"r1s1", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 1, S: 1}},
		{"r3s3", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3}},
		{"r5s5", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 5, S: 5}},
		{"r7s7", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 7, S: 7}},
		{"r3s3_t2", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3, T: 2}},
		{"r3s3_d2", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3, D: 2}},
	} {
		e := orojenesis.Conv2D(c.name, c.cfg)
		fig12 = append(fig12, orojenesis.Series{Name: c.name, Curve: orojenesis.Bound(e, opts)})
	}
	add("fig12_conv.csv", "Fig. 12", "filter/stride/dilation sweep", fig12...)

	// Fig. 13: BMM heads.
	var fig13 []orojenesis.Series
	for _, h := range []int64{1, 2, 4, 8, 16, 32} {
		e := orojenesis.BMM(fmt.Sprintf("h%d", h), h, 4096, 4096/h, 4096)
		fig13 = append(fig13, orojenesis.Series{Name: e.Name, Curve: orojenesis.Bound(e, opts)})
	}
	add("fig13_bmm_heads.csv", "Fig. 13", "fixed 128 GOPs, K = 4096/heads", fig13...)

	// Fig. 14: grouped BMM.
	var fig14 []orojenesis.Series
	for _, grp := range []int64{1, 4, 8, 16, 32} {
		e := orojenesis.GroupedBMM(fmt.Sprintf("g%d", grp), 32, grp, 4096, 128, 4096)
		fig14 = append(fig14, orojenesis.Series{Name: e.Name, Curve: orojenesis.Bound(e, opts)})
	}
	add("fig14_grouped_bmm.csv", "Fig. 14", "H=32, M=4k, K=128, N=4k", fig14...)

	// Fig. 18: two-GEMM fusion.
	chain := fusion.MustChain("pair", 32768,
		fusion.GEMMOp("g0", 32768, 4096, 16384),
		fusion.GEMMOp("g1", 32768, 16384, 4096))
	perOp := chain.PerOpCurves(opts)
	tiled, err := fusion.TiledFusion(chain)
	if err != nil {
		log.Fatal(err)
	}
	untiled, err := fusion.UntiledFusion(chain)
	if err != nil {
		log.Fatal(err)
	}
	add("fig18_two_gemm_fusion.csv", "Fig. 18", "32k_4k_16k + 32k_16k_4k",
		orojenesis.Series{Name: "unfused", Curve: fusion.UnfusedCurve(perOp)},
		orojenesis.Series{Name: "untiled", Curve: untiled},
		orojenesis.Series{Name: "tiled", Curve: tiled})

	// Figs. 20-22: the LLM case study.
	cfg := llm.GPT3_6_7B()
	if *scale > 1 {
		cfg = cfg.Scaled(*scale)
	}
	mha := cfg.MHA()
	add("fig20_mha_strategies.csv", "Fig. 20", cfg.Name+" attention",
		orojenesis.Series{Name: "unfused", Curve: mha.UnfusedCurve(opts)},
		orojenesis.Series{Name: "flat", Curve: mha.FLATCurve()},
		orojenesis.Series{Name: "flashattention", Curve: mha.FlashAttentionCurve()})

	study, err := llm.NewBlockStudy(cfg, opts)
	if err != nil {
		log.Fatal(err)
	}
	add("fig21_chain_segmentation.csv", "Fig. 21", cfg.Name+" six-Einsum chain",
		orojenesis.Series{Name: "no_fusion", Curve: study.ChainUnfused},
		orojenesis.Series{Name: "max_tiled_fusion", Curve: study.ChainFused},
		orojenesis.Series{Name: "segmented", Curve: study.ChainSegmented})
	add("fig22_full_block.csv", "Fig. 22", cfg.Name+" full block",
		orojenesis.Series{Name: "no_fusion", Curve: study.BlockUnfused},
		orojenesis.Series{Name: "max_tiled_fusion", Curve: study.BlockFused},
		orojenesis.Series{Name: "segmented", Curve: study.BlockSegmented})

	// Fig. 23: performance mesa (x = ratio, y = achieved MACs/s).
	mesaPath := filepath.Join(*out, "fig23_perf_mesa.csv")
	mf, err := os.Create(mesaPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(mf, "series,buffer_area_ratio,achieved_macs_per_sec")
	ratios := oi.Ratios(0.005, 0.995, 199)
	for _, cs := range []struct {
		name  string
		curve *orojenesis.Curve
	}{{"unfused", study.BlockUnfused}, {"fused", study.BlockSegmented}} {
		for _, p := range oi.PerformanceMesa(cs.curve, study.BlockMACs, oi.GF100(), ratios) {
			if p.Feasible {
				fmt.Fprintf(mf, "%s,%.4f,%.4g\n", cs.name, p.BufferAreaRatio, p.Achieved)
			}
		}
	}
	mf.Close()
	index = append(index, artifact{File: "fig23_perf_mesa.csv", Paper: "Fig. 23",
		Note: "buffer-area ratio vs throughput, GF100 envelope", Elapsed: time.Since(last)})
	fmt.Printf("wrote %s (Fig. 23)\n", mesaPath)

	// INDEX.md
	idx, err := os.Create(filepath.Join(*out, "INDEX.md"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(idx, "# Reproduced artifacts (%s)\n\n", time.Now().Format(time.RFC3339))
	fmt.Fprintf(idx, "| file | paper artifact | note |\n|---|---|---|\n")
	for _, a := range index {
		fmt.Fprintf(idx, "| %s | %s | %s |\n", a.File, a.Paper, a.Note)
	}
	idx.Close()
	if *stats {
		fmt.Printf("\n%-28s %12s\n", "artifact", "wall time")
		for _, a := range index {
			fmt.Printf("%-28s %12v\n", a.File, a.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("%-28s %12v  (%d workers)\n", "total",
			time.Since(start).Round(time.Millisecond), traverse.ResolveWorkers(*workers))
	}
	fmt.Printf("done in %v: %d artifacts in %s\n", time.Since(start), len(index), *out)
}
