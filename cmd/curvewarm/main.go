// Command curvewarm warms a durable curve store from a model zoo: it
// walks a directory of serialized workload Spec files
// (docs/workload-spec.md) and runs each through the store — specs whose
// curves are already present are verified and skipped, the rest are
// derived in-process and persisted (docs/curve-store.md). Point it at
// the same -store-dir a running orojenesisd serves from and every warmed
// workload becomes a disk hit for the server, across restarts; the store
// is crash-safe and lock-disciplined, so warming while the server is
// live is supported.
//
// -gen writes a built-in zoo of common tensor shapes — transformer
// projection/attention/MLP GEMMs, a fused MLP chain, a multi-level probe
// — into the spec directory first, so a cache can be warmed from nothing:
//
//	curvewarm -gen -specs zoo/ -store-dir /var/lib/orojenesisd/store
//
// Rerunning is idempotent: everything already derived reports a hit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	orojenesis "repro"
	"repro/internal/cliutil"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("curvewarm: ")

	specs := flag.String("specs", "", "directory of workload spec files (*.json) to warm the store from")
	gen := flag.Bool("gen", false, "write the built-in model-zoo spec files into -specs before warming")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines per derivation (0 = GOMAXPROCS)")
	gc := flag.Bool("gc", true, "run a GC sweep after warming so the directory respects -store-max-bytes")
	stf := cliutil.AddStoreFlags(flag.CommandLine)
	flag.Parse()

	if *specs == "" {
		log.Fatal("-specs DIR is required (the model-zoo spec directory; -gen populates it)")
	}
	if stf.Dir == "" {
		log.Fatal("-store-dir DIR is required (the curve store to warm)")
	}
	if *gen {
		if err := writeZoo(*specs); err != nil {
			log.Fatal(err)
		}
	}
	st := stf.Open()
	if st == nil {
		// Unlike the server and the derivation CLIs, a warmer has nothing
		// useful to do without its store.
		log.Fatal("curve store unavailable; nothing to warm")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	outcomes, err := cliutil.WarmSpecDir(ctx, st, *specs, workload.Exec{Workers: *workers}, log.Printf)
	var hits, derived, failed int
	for _, o := range outcomes {
		switch {
		case o.Err != nil:
			failed++
		case o.Hit:
			hits++
		default:
			derived++
		}
	}
	fmt.Printf("warmed %d spec(s): %d already present, %d derived, %d failed\n",
		len(outcomes), hits, derived, failed)
	if *gc {
		st.GC()
	}
	stats := st.StatsSnapshot()
	fmt.Printf("store %s: %d entries, %d bytes (cap %d)\n",
		st.Dir(), stats.Entries, stats.Bytes, stats.MaxBytes)
	if err != nil {
		log.Fatal(err)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// zoo is the built-in model zoo: the repeated tensor shapes real serving
// traffic clusters on — transformer projection, attention-score,
// attention-value, and MLP GEMMs for a 4k-dim model, a square training
// GEMM, a fused MLP chain, and a multi-level probe of the projection.
func zoo() (map[string]*workload.Spec, error) {
	specs := map[string]*workload.Spec{}
	for _, g := range []struct {
		name    string
		m, k, n int64
	}{
		{"llm_qkv_proj", 4096, 4096, 12288},
		{"llm_attn_out", 4096, 4096, 4096},
		{"llm_mlp_up", 4096, 4096, 16384},
		{"llm_mlp_down", 4096, 16384, 4096},
		{"train_square_1k", 1024, 1024, 1024},
	} {
		e := orojenesis.GEMM(g.name, g.m, g.k, g.n)
		specs[g.name] = workload.NewBound(e, orojenesis.Options{})
	}

	// Attention score/value batched matmuls: 32 heads, 2k context,
	// 128-dim heads.
	specs["llm_attn_score"] = workload.NewBound(
		orojenesis.BMM("llm_attn_score", 32, 2048, 128, 2048), orojenesis.Options{})
	specs["llm_attn_value"] = workload.NewBound(
		orojenesis.BMM("llm_attn_value", 32, 2048, 2048, 128), orojenesis.Options{})

	// The fused MLP pair (up projection into down projection), as a
	// tiled-fusion sweep.
	chain, err := orojenesis.NewChain("llm_mlp", 4096,
		orojenesis.GEMMOp("up", 4096, 4096, 16384),
		orojenesis.GEMMOp("down", 4096, 16384, 4096))
	if err != nil {
		return nil, err
	}
	specs["llm_mlp_chain"] = workload.NewFusionTiled(chain)

	// A three-level probe of the projection GEMM with a 256 KiB L1.
	specs["llm_qkv_proj_l1"] = workload.NewMultiLevel(
		orojenesis.GEMM("llm_qkv_proj", 4096, 4096, 12288), 256<<10)
	return specs, nil
}

// writeZoo serializes the built-in zoo into dir, one spec per file,
// atomically (temp + rename) so a concurrently starting warm walk never
// reads a torn spec.
func writeZoo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	zs, err := zoo()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(zs))
	for name := range zs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := zs[name].Encode()
		if err != nil {
			return fmt.Errorf("encoding zoo spec %s: %w", name, err)
		}
		path := filepath.Join(dir, name+".json")
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
		log.Printf("zoo spec -> %s", path)
	}
	return nil
}
