// Command llmstudy runs the GPT-3-6.7b case study of Sec. VII: the MHA
// fusion-strategy comparison (Fig. 20), the six-Einsum chain segmentation
// study (Fig. 21), the full-block bound (Fig. 22) and the buffer-area
// provisioning mesa (Fig. 23).
//
// Examples:
//
//	llmstudy -mha
//	llmstudy -chain -scale 2
//	llmstudy -block
//	llmstudy -mesa
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	orojenesis "repro"
	"repro/internal/shape"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("llmstudy: ")

	mha := flag.Bool("mha", false, "Fig. 20: MHA fusion strategies")
	chain := flag.Bool("chain", false, "Fig. 21: six-Einsum chain segmentation")
	block := flag.Bool("block", false, "Fig. 22: full building-block bounds")
	mesa := flag.Bool("mesa", false, "Fig. 23: buffer-area provisioning mesa")
	scale := flag.Int64("scale", 1, "divide model dims by this power-of-two factor")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	flag.Parse()

	cfg := orojenesis.GPT3_6_7B()
	if *scale > 1 {
		cfg = cfg.Scaled(*scale)
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	if !*mha && !*chain && !*block && !*mesa {
		*mha, *chain, *block, *mesa = true, true, true, true
	}

	if *mha {
		runMHA(cfg, *csv)
	}
	if *chain || *block || *mesa {
		study, err := orojenesis.NewBlockStudy(cfg, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if *chain {
			runChain(study, *csv)
		}
		if *block {
			runBlock(study, *csv)
		}
		if *mesa {
			runMesa(study)
		}
	}
}

func runMHA(cfg orojenesis.LLMConfig, csv bool) {
	fmt.Printf("== Fig. 20: MHA fusion strategies (%s) ==\n", cfg.Name)
	m := cfg.MHA()
	series := []orojenesis.Series{
		{Name: "unfused", Curve: m.UnfusedCurve(orojenesis.Options{})},
		{Name: "FLAT", Curve: m.FLATCurve()},
		{Name: "FlashAttention", Curve: m.FlashAttentionCurve()},
	}
	if csv {
		if err := orojenesis.WriteCSV(os.Stdout, series...); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 20, 16 << 20, 32 << 20}, series...))
	// The paper's headline: FLAT vs FlashAttention at 16 MB.
	if fl, ok1 := series[1].Curve.AccessesAt(16 << 20); ok1 {
		if fa, ok2 := series[2].Curve.AccessesAt(16 << 20); ok2 {
			fmt.Printf("FlashAttention advantage at 16MB: %.1fx\n", float64(fl)/float64(fa))
		}
	}
	fmt.Println()
}

func runChain(study *orojenesis.BlockStudy, csv bool) {
	fmt.Printf("== Fig. 21: six-Einsum chain (%s) ==\n", study.Config.Name)
	series := []orojenesis.Series{
		{Name: "no-fusion", Curve: study.ChainUnfused},
		{Name: "max-tiled-fusion", Curve: study.ChainFused},
		{Name: "segmented-tiled-fusion", Curve: study.ChainSegmented},
	}
	if csv {
		if err := orojenesis.WriteCSV(os.Stdout, series...); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(orojenesis.SummaryTable([]int64{10 << 20, 50 << 20, 320 << 20}, series...))
	fmt.Println()
}

func runBlock(study *orojenesis.BlockStudy, csv bool) {
	fmt.Printf("== Fig. 22: full building block (%s) ==\n", study.Config.Name)
	series := []orojenesis.Series{
		{Name: "no-fusion", Curve: study.BlockUnfused},
		{Name: "max-tiled-fusion", Curve: study.BlockFused},
		{Name: "segmented-tiled-fusion", Curve: study.BlockSegmented},
	}
	if csv {
		if err := orojenesis.WriteCSV(os.Stdout, series...); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(orojenesis.SummaryTable([]int64{50 << 20, 320 << 20}, series...))
	fmt.Printf("algo min: unfused %s, fused %s\n",
		shape.FormatBytes(study.AlgoMinUnfusedBytes), shape.FormatBytes(study.AlgoMinFusedBytes))
	fmt.Printf("max effectual buffer: %s\n", shape.FormatBytes(study.MaxEffectualBufferBytes()))
	for _, mb := range []int64{50, 320} {
		if r, ok := study.FusionReduction(mb << 20); ok {
			sav, _ := study.AbsoluteSavingsBytes(mb << 20)
			fmt.Printf("fusion reduction at %dMB: %.2fx (%s saved)\n", mb, r, shape.FormatBytes(sav))
		}
	}
	fmt.Println()
}

func runMesa(study *orojenesis.BlockStudy) {
	fmt.Printf("== Fig. 23: buffer-area provisioning (%s) ==\n", study.Config.Name)
	spec := orojenesis.GF100()
	ratios := orojenesis.Ratios(0.005, 0.995, 199)
	for _, cs := range []struct {
		name  string
		curve *orojenesis.Curve
	}{
		{"unfused", study.BlockUnfused},
		{"fused", study.BlockSegmented},
	} {
		mesaPts := orojenesis.PerformanceMesa(cs.curve, study.BlockMACs, spec, ratios)
		best, ok := orojenesis.OptimalRatio(mesaPts)
		if !ok {
			fmt.Printf("%s: no feasible design point\n", cs.name)
			continue
		}
		fmt.Printf("%-8s optimal buffer-area ratio %.3f (buffer %s, %d MACs) -> %.2f TMAC/s\n",
			cs.name, best.BufferAreaRatio, shape.FormatBytes(best.BufferBytes),
			best.MACUnits, best.Achieved/1e12)
	}
	fmt.Println()
}
