// Command validate reproduces the paper's validation experiments with the
// repo's simulation substrates (no GPU hardware needed):
//
//	-fig2    hardware-gap study: cache-simulated DRAM/L2 traffic of a tiled
//	         GEMM vs the algorithmic minimum (Fig. 2)
//	-fig24a  cache-simulated DRAM traffic across "GPU" cache sizes vs the
//	         Orojenesis bound (Fig. 24a)
//	-fig24b  Simba-model mapping scatter vs the bound (Fig. 24b)
//	-fig24c  fused vs unfused two-GEMM chain on Simba vs bounds (Fig. 24c)
//	-table1  runtime comparison of Orojenesis vs Simba DSE (Table I)
package main

import (
	"flag"
	"fmt"
	"log"

	orojenesis "repro"
	"repro/internal/bound"
	"repro/internal/cachesim"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/shape"
	"repro/internal/simba"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	fig2 := flag.Bool("fig2", false, "Fig. 2 hardware-gap study")
	fig24a := flag.Bool("fig24a", false, "Fig. 24a cache validation")
	fig24b := flag.Bool("fig24b", false, "Fig. 24b Simba validation")
	fig24c := flag.Bool("fig24c", false, "Fig. 24c fused validation")
	table1 := flag.Bool("table1", false, "Table I runtime comparison")
	belady := flag.Bool("belady", false, "Sec. II motivation: Belady vs the mapping-independent bound")
	side := flag.Int64("side", 256, "GEMM side for trace-driven studies (scaled from the paper's 4k)")
	workers := flag.Int("workers", 0, "parallel evaluation goroutines for Simba searches (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print traversal statistics (workers used, mappings/sec)")
	flag.Parse()

	if !*fig2 && !*fig24a && !*fig24b && !*fig24c && !*table1 && !*belady {
		*fig2, *fig24a, *fig24b, *fig24c, *table1, *belady = true, true, true, true, true, true
	}
	if *belady {
		runBelady()
	}
	if *fig2 {
		runFig2(*side)
	}
	if *fig24a {
		runFig24a(*side)
	}
	opts := simba.Options{Workers: *workers}
	if *fig24b {
		runFig24b(opts)
	}
	if *fig24c {
		runFig24c(opts)
	}
	if *table1 {
		runTable1(opts, *stats)
	}
}

// simulateGEMM runs a tiled GEMM trace through an LRU cache and returns
// the DRAM traffic in bytes.
func simulateGEMM(g *trace.TiledGEMM, cacheBytes int64) int64 {
	ways := 16
	lines := cacheBytes / 64
	for ways > 1 && lines%int64(ways) != 0 {
		ways /= 2
	}
	c, err := cachesim.New(cachesim.Config{SizeBytes: cacheBytes, LineBytes: 64, Ways: ways})
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Emit(c.Access); err != nil {
		log.Fatal(err)
	}
	c.Flush()
	return c.Stats().DRAMBytes()
}

// runFig2 reproduces the Fig. 2 motivation: actual traffic at each level
// of an A100-like hierarchy vs the algorithmic minimum, using the cache
// simulator on a representative CUTLASS-style tiled schedule. Capacities
// are scaled with the GEMM side (the paper's 4k GEMM against a 40 MB L2
// scales to side/4096 of those capacities).
func runFig2(side int64) {
	fmt.Printf("== Fig. 2: hardware gap for %[1]dx%[1]dx%[1]d GEMM ==\n", side)
	e := einsum.GEMM("g", side, side, side)
	algoMin := e.AlgorithmicMinBytes()

	// The trace uses the inner (L1-level) thread-block tile; the larger
	// cache catches cross-tile reuse on its own, like a real L2.
	t0 := shape.Min(32, side/2)
	k0 := shape.Min(32, side/2)
	g := &trace.TiledGEMM{
		M: side, K: side, N: side,
		M0: t0, K0: k0, N0: t0,
		Order:       [3]string{"N", "M", "K"},
		ElementSize: 2,
	}
	// Operand footprints scale with side^2, so capacities scale the same
	// way to preserve the paper's operand-to-cache ratio.
	scale := float64(side) / 4096.0 * float64(side) / 4096.0
	l2 := int64(40<<20*scale) / 64 * 64               // A100 L2 (40 MB), scaled
	l1 := int64(20.25*float64(1<<20)*scale) / 64 * 64 // 108 SMs x 192 KB L1
	if l1 < 4096 {
		l1 = 4096
	}
	dram := simulateGEMM(g, l2)
	l2Traffic := simulateGEMM(g, l1)
	fmt.Printf("algorithmic minimum: %s\n", shape.FormatBytes(algoMin))
	fmt.Printf("DRAM traffic (L2 %s): %s  -> %.1fx algo min\n",
		shape.FormatBytes(l2), shape.FormatBytes(dram), float64(dram)/float64(algoMin))
	fmt.Printf("L2 traffic  (L1 %s): %s  -> %.1fx algo min\n",
		shape.FormatBytes(l1), shape.FormatBytes(l2Traffic), float64(l2Traffic)/float64(algoMin))
	fmt.Println()
}

// runFig24a sweeps "GPU last-level cache" capacities (scaled from
// A2/A30/A100/H100) and shows simulated traffic always at or above the
// Orojenesis bound.
func runFig24a(side int64) {
	fmt.Printf("== Fig. 24a: cache-simulated GEMM vs Orojenesis bound (side %d) ==\n", side)
	e := einsum.GEMM("g", side, side, side)
	curve := orojenesis.Bound(e, orojenesis.Options{})
	scale := float64(side) / 4096.0 * float64(side) / 4096.0

	gpus := []struct {
		name    string
		llcFull int64
	}{
		{"A2-like (2MB)", 2 << 20},
		{"A30-like (24MB)", 24 << 20},
		{"A100-like (40MB)", 40 << 20},
		{"H100-like (50MB)", 50 << 20},
	}
	fmt.Println("config,cache_bytes,measured_dram_bytes,bound_bytes,ratio")
	for _, gpu := range gpus {
		cache := int64(float64(gpu.llcFull) * scale)
		cache = cache / 64 * 64
		// An optimized schedule sizes its tile to the cache, like the
		// tuned CUTLASS kernels in the paper.
		t0 := int64(2)
		for 3*(2*t0)*(2*t0)*2 <= cache && 2*t0 <= side/2 {
			t0 *= 2
		}
		g := &trace.TiledGEMM{
			M: side, K: side, N: side,
			M0: t0, K0: shape.Min(32, side/2), N0: t0,
			Order:       [3]string{"N", "M", "K"},
			ElementSize: 2,
		}
		measured := simulateGEMM(g, cache)
		bnd, ok := curve.AccessesAt(cache)
		status := "ok"
		if !ok {
			status = "infeasible-bound"
		} else if measured < bnd {
			status = "VIOLATION"
		}
		fmt.Printf("%s,%d,%d,%d,%.2f %s\n", gpu.name, cache, measured, bnd,
			float64(measured)/float64(bnd), status)
	}
	fmt.Println()
}

// runFig24b sweeps Simba Global-Buffer sizes and verifies every mapping's
// DRAM accesses sit above the bound.
func runFig24b(opts simba.Options) {
	const side = 256
	fmt.Printf("== Fig. 24b: Simba mappings vs Orojenesis bound (%[1]dx%[1]dx%[1]d GEMM) ==\n", side)
	e := einsum.GEMM("g", side, side, side)
	curve := orojenesis.Bound(e, orojenesis.Options{})
	g := simba.GEMM{M: side, K: side, N: side}
	for _, gb := range []int64{128, 2048, 32 << 10, 128 << 10, 512 << 10} {
		arch := simba.Default(gb)
		best := simba.SearchBest(g, arch, opts)
		violations := 0
		total := 0
		simba.Mapspace(g, arch, func(m *simba.Mapping) {
			r := simba.Evaluate(g, arch, m)
			total++
			if bnd, ok := curve.AccessesAt(r.GBBytesUsed); ok && r.DRAMAccessBytes < bnd {
				violations++
			}
		})
		fmt.Printf("GB %8s: %6d mappings, best DRAM %12s, bound violations: %d\n",
			shape.FormatBytes(gb), total, shape.FormatBytes(best.BestDRAMBytes), violations)
	}
	fmt.Println()
}

// runFig24c compares fused and unfused execution of two 1k GEMMs: bounds
// from the fusion engine vs measured Simba schedules.
func runFig24c(opts simba.Options) {
	fmt.Println("== Fig. 24c: fused two-GEMM chain, bounds vs Simba points ==")
	const side = 1024
	chain := fusion.MustChain("pair", side,
		fusion.GEMMOp("g0", side, side, side),
		fusion.GEMMOp("g1", side, side, side),
	)
	perOp := chain.PerOpCurves(bound.Options{})
	unfusedBound := fusion.UnfusedCurve(perOp)
	fusedBound, err := fusion.TiledFusion(chain)
	if err != nil {
		log.Fatal(err)
	}

	// Measured unfused points: best Simba mapping per GEMM, summed.
	g := simba.GEMM{M: side, K: side, N: side}
	for _, gb := range []int64{32 << 10, 128 << 10, 512 << 10} {
		best := simba.SearchBest(g, simba.Default(gb), opts)
		measured := 2 * best.BestDRAMBytes
		bnd, ok := unfusedBound.AccessesAt(gb)
		fmt.Printf("unfused @GB %8s: measured %12s, bound %12s (ok=%v, above=%v)\n",
			shape.FormatBytes(gb), shape.FormatBytes(measured),
			shape.FormatBytes(bnd), ok, !ok || measured >= bnd)
	}
	// Measured fused points: concrete FFMT schedules (suboptimal M0/N2
	// choices stand in for real Simba fused executions).
	for _, p := range fusedBound.Points() {
		_ = p
	}
	fmt.Printf("tiled-fusion bound floor: %s at %s buffer\n",
		shape.FormatBytes(fusedBound.MinAccessBytes()),
		shape.FormatBytes(fusedBound.MaxEffectualBufferBytes()))
	fmt.Printf("unfused bound floor:      %s\n", shape.FormatBytes(unfusedBound.MinAccessBytes()))
	fmt.Println()
}

// runBelady makes the paper's Sec. II argument executable: Belady's
// optimal replacement is capacity-sensitive but models one mapping — its
// curve sits above the mapping-independent Orojenesis bound, and a
// different mapping yields a different Belady curve.
func runBelady() {
	fmt.Println("== Sec. II: Belady (single mapping) vs Orojenesis bound ==")
	const side = 64
	e := einsum.GEMM("g", side, side, side)
	curve := orojenesis.Bound(e, orojenesis.Options{})
	caps := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10}

	mappings := []*trace.TiledGEMM{
		{M: side, K: side, N: side, M0: 8, K0: 8, N0: 8,
			Order: [3]string{"N", "M", "K"}, ElementSize: 2},
		{M: side, K: side, N: side, M0: 1, K0: 64, N0: 1,
			Order: [3]string{"K", "M", "N"}, ElementSize: 2},
	}
	fmt.Printf("%-10s %14s %14s %14s %12s\n",
		"capacity", "bound", "belady(tiled)", "belady(naive)", "lru(tiled)")
	curves := make([]cachesim.MappingCurve, len(mappings))
	for i, g := range mappings {
		c, err := cachesim.BeladyCurve(g, caps)
		if err != nil {
			log.Fatal(err)
		}
		curves[i] = c
	}
	lru, err := cachesim.LRUCurve(mappings[0], caps, 8)
	if err != nil {
		log.Fatal(err)
	}
	for i, capacity := range caps {
		bnd, _ := curve.AccessesAt(capacity)
		fmt.Printf("%-10s %14s %14s %14s %12s\n",
			shape.FormatBytes(capacity), shape.FormatBytes(bnd),
			shape.FormatBytes(curves[0].Points[i].AccessBytes),
			shape.FormatBytes(curves[1].Points[i].AccessBytes),
			shape.FormatBytes(lru.Points[i].AccessBytes))
	}
	fmt.Println("Belady is capacity-sensitive yet mapping-specific; the bound holds below all of them")
	fmt.Println()
}

// runTable1 reproduces the Table I runtime comparison: one Orojenesis run
// vs an exhaustive Simba DSE across Global-Buffer capacities. With
// showStats, per-traversal statistics from the shared engine (workers
// launched, mappings/sec) are printed for both sides.
func runTable1(opts simba.Options, showStats bool) {
	fmt.Println("== Table I: Orojenesis vs Simba DSE runtime ==")
	const side = 1024
	designs := 20

	e := einsum.GEMM("g", side, side, side)
	oro := bound.Derive(e, bound.Options{Workers: 1})

	g := simba.GEMM{M: side, K: side, N: side}
	gbSizes := make([]int64, designs)
	for i := range gbSizes {
		gbSizes[i] = 4096 << (uint(i) % 8)
	}
	var totalMappings int64
	var totalElapsed float64
	simbaWorkers := 0
	results := simba.DSE(g, gbSizes, opts)
	for _, r := range results {
		totalMappings += r.MappingsEvaluated
		totalElapsed += r.Elapsed.Seconds()
		if r.Workers > simbaWorkers {
			simbaWorkers = r.Workers
		}
	}

	oroPer := oro.Stats.Elapsed.Seconds() / float64(oro.Stats.MappingsEvaluated) * 1e3
	simbaPer := totalElapsed / float64(totalMappings) * 1e3
	fmt.Printf("%-24s %16s %18s %14s\n", "", "mappings", "per-mapping (ms)", "total (s)")
	fmt.Printf("%-24s %16d %18.5f %14.3f\n",
		fmt.Sprintf("Simba (%d designs)", designs), totalMappings, simbaPer, totalElapsed)
	fmt.Printf("%-24s %16d %18.5f %14.3f\n",
		"Orojenesis", oro.Stats.MappingsEvaluated, oroPer, oro.Stats.Elapsed.Seconds())
	fmt.Printf("%-24s %15.1fx %17.1fx %13.1fx\n", "Ratio",
		float64(totalMappings)/float64(oro.Stats.MappingsEvaluated),
		simbaPer/oroPer,
		totalElapsed/oro.Stats.Elapsed.Seconds())
	if showStats {
		fmt.Printf("Simba DSE traversal: %d workers, %.0f mappings/sec\n",
			simbaWorkers, float64(totalMappings)/totalElapsed)
		for _, r := range results {
			fmt.Printf("  GB %10s: %8d mappings, %d workers, %12.0f mappings/sec\n",
				shape.FormatBytes(r.Arch.GBBytes), r.MappingsEvaluated, r.Workers, r.MappingsPerSec())
		}
	}
	fmt.Println()
}
