package orojenesis

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates the figure's data series with this repo's models
// and prints the rows once (so `go test -bench . | tee bench_output.txt`
// doubles as the experiment log). Trace-driven and DSE experiments run at
// documented reduced scales; EXPERIMENTS.md records paper-vs-measured.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bound"
	"repro/internal/cachesim"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/llm"
	"repro/internal/oi"
	"repro/internal/shape"
	"repro/internal/simba"
	"repro/internal/trace"
)

var printGate sync.Map

// emit prints s once per benchmark name across all iterations.
func emit(name, s string) {
	if _, dup := printGate.LoadOrStore(name, true); !dup {
		fmt.Printf("\n### %s\n%s", name, s)
	}
}

func deriveCurve(e *einsum.Einsum) *Curve {
	return bound.Derive(e, bound.Options{}).Curve
}

// BenchmarkFig01_SkiSlope16k1k1k regenerates Fig. 1: the ski-slope bound
// for a 16k x 1k x 1k GEMM with its Gap 0 / Gap 1 annotations.
func BenchmarkFig01_SkiSlope16k1k1k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := GEMM("gemm_16k_1k_1k", 16384, 1024, 1024)
		c := deriveCurve(g)
		gap0, _ := c.Gap0(c.MinBufferBytes() * 16)
		gap1, _ := c.Gap1()
		emit(b.Name(), fmt.Sprintf(
			"points=%d algoMin=%s maxEffectual=%s gap0(small)=%.1fx gap1=%.3f\n%s",
			c.Len(), shape.FormatBytes(c.AlgoMinBytes),
			shape.FormatBytes(c.MaxEffectualBufferBytes()), gap0, gap1,
			SummaryTable([]int64{64 << 10, 1 << 20, 8 << 20}, Series{Name: g.Name, Curve: c})))
	}
}

// BenchmarkFig02_HardwareGap regenerates Fig. 2 with the cache-simulator
// substrate: DRAM and L2 traffic of a concrete tiled GEMM vs the
// algorithmic minimum (GEMM side scaled from 4k to 256, capacities scaled
// by side^2 to preserve the operand-to-cache ratio).
func BenchmarkFig02_HardwareGap(b *testing.B) {
	const side = 256
	for i := 0; i < b.N; i++ {
		e := einsum.GEMM("g", side, side, side)
		algoMin := e.AlgorithmicMinBytes()
		g := &trace.TiledGEMM{
			M: side, K: side, N: side,
			M0: 32, K0: 32, N0: 32,
			Order:       [3]string{"N", "M", "K"},
			ElementSize: 2,
		}
		scale := float64(side) / 4096 * float64(side) / 4096
		l2 := int64(40<<20*scale) / 64 * 64
		l1 := int64(20.25*float64(1<<20)*scale) / 64 * 64
		dram := simulateTrace(b, g, l2)
		l2Traffic := simulateTrace(b, g, l1)
		emit(b.Name(), fmt.Sprintf(
			"algoMin=%s  DRAM(L2=%s)=%s (%.1fx)  L2(L1=%s)=%s (%.1fx)\n",
			shape.FormatBytes(algoMin),
			shape.FormatBytes(l2), shape.FormatBytes(dram), float64(dram)/float64(algoMin),
			shape.FormatBytes(l1), shape.FormatBytes(l2Traffic), float64(l2Traffic)/float64(algoMin)))
	}
}

func simulateTrace(b *testing.B, g *trace.TiledGEMM, cacheBytes int64) int64 {
	ways := 16
	for ways > 1 && (cacheBytes/64)%int64(ways) != 0 {
		ways /= 2
	}
	c, err := cachesim.New(cachesim.Config{SizeBytes: cacheBytes, LineBytes: 64, Ways: ways})
	if err != nil {
		b.Fatal(err)
	}
	if err := g.Emit(c.Access); err != nil {
		b.Fatal(err)
	}
	c.Flush()
	return c.Stats().DRAMBytes()
}

// BenchmarkFig03_MaxEffectualTeaser regenerates Fig. 3: the maximal
// effectual buffer size normalized to total operand size for a mix of
// workload types.
func BenchmarkFig03_MaxEffectualTeaser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := ""
		workloads := []*einsum.Einsum{
			GEMM("gemm-2k", 2048, 2048, 2048),
			GEMM("gemm-16k_1k_1k", 16384, 1024, 1024),
			BMM("bmm-h32", 32, 4096, 128, 4096),
			Conv2D("conv3x3", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3}),
		}
		for _, e := range workloads {
			c := deriveCurve(e)
			g1, _ := c.Gap1()
			rows += fmt.Sprintf("%-18s maxEffectual=%12s / operands=%12s  ratio=%.3f\n",
				e.Name, shape.FormatBytes(c.MaxEffectualBufferBytes()),
				shape.FormatBytes(c.TotalOperandBytes), g1)
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig07_MultiLevel regenerates Fig. 7: probing one curve at
// multiple capacities yields per-level bounds of a memory hierarchy.
func BenchmarkFig07_MultiLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := GEMM("gemm_16k_1k_1k", 16384, 1024, 1024)
		c := deriveCurve(g)
		probes := ProbeLevels(c, map[string]int64{
			"RF(1KB)": 1 << 10, "L1(192KB)": 192 << 10, "L2(40MB)": 40 << 20,
		})
		rows := ""
		for _, lb := range probes {
			rows += fmt.Sprintf("%-10s -> bound %s (feasible=%v)\n",
				lb.Level, shape.FormatBytes(lb.AccessBytes), lb.Feasible)
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig10_GEMMShapes regenerates Fig. 10: ski slopes and OI mesas
// across GEMM shapes.
func BenchmarkFig10_GEMMShapes(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int64
	}{
		{"1k", 1024, 1024, 1024},
		{"2k", 2048, 2048, 2048},
		{"4k", 4096, 4096, 4096},
		{"8k", 8192, 8192, 8192},
		{"4k_256_4k", 4096, 256, 4096},
	}
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-12s %14s %14s %10s\n", "shape", "@1MB", "@16MB", "peakOI")
		for _, s := range shapes {
			g := GEMM(s.name, s.m, s.k, s.n)
			c := deriveCurve(g)
			a1, _ := c.AccessesAt(1 << 20)
			a16, _ := c.AccessesAt(16 << 20)
			rows += fmt.Sprintf("%-12s %14s %14s %10.1f\n", s.name,
				shape.FormatBytes(a1), shape.FormatBytes(a16),
				oi.PeakOI(c, g.MACs(), g.ElementSize))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig11_MaxEffectualRatio regenerates Fig. 11: max effectual
// buffer over total operand size, compared against the smallest-operand
// prediction of Sec. IV-1.
func BenchmarkFig11_MaxEffectualRatio(b *testing.B) {
	shapes := []struct {
		name    string
		m, k, n int64
	}{
		{"M=K=N", 2048, 2048, 2048},
		{"tall", 16384, 1024, 1024},
		{"deep", 1024, 16384, 1024},
		{"wide", 1024, 1024, 16384},
		{"flat-K", 4096, 256, 4096},
	}
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-8s %8s %18s\n", "shape", "ratio", "smallest-operand")
		for _, s := range shapes {
			g := GEMM(s.name, s.m, s.k, s.n)
			c := deriveCurve(g)
			ratio, _ := c.Gap1()
			rows += fmt.Sprintf("%-8s %8.3f %18.3f\n", s.name, ratio,
				float64(g.SmallestOperandElements()*g.ElementSize)/float64(g.TotalOperandBytes()))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig12_ConvConfigs regenerates Fig. 12: convolution filter size,
// stride and dilation sweeps (C=N=64, P=Q=16 as in the paper).
func BenchmarkFig12_ConvConfigs(b *testing.B) {
	configs := []struct {
		name string
		cfg  ConvConfig
	}{
		{"R1S1", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 1, S: 1}},
		{"R3S3", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3}},
		{"R5S5", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 5, S: 5}},
		{"R7S7", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 7, S: 7}},
		{"R3S3-T2", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3, T: 2}},
		{"R3S3-D2", ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3, D: 2}},
	}
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-10s %14s %14s %10s\n", "conv", "@16KB", "@256KB", "peakOI")
		for _, c := range configs {
			e := Conv2D(c.name, c.cfg)
			cv := deriveCurve(e)
			s16, _ := cv.AccessesAt(16 << 10)
			s256, _ := cv.AccessesAt(256 << 10)
			rows += fmt.Sprintf("%-10s %14s %14s %10.1f\n", c.name,
				shape.FormatBytes(s16), shape.FormatBytes(s256),
				oi.PeakOI(cv, e.MACs(), e.ElementSize))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig13_BMMHeads regenerates Fig. 13: BMM head-count sweep with
// total compute fixed at 128 GOPs (M=N=4k, K=4k/H).
func BenchmarkFig13_BMMHeads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-6s %14s %14s %12s %10s\n",
			"heads", "@100KB", "@1MB", "maxEff", "peakOI")
		for _, h := range []int64{1, 2, 4, 8, 16, 32} {
			e := BMM(fmt.Sprintf("h%d", h), h, 4096, 4096/h, 4096)
			c := deriveCurve(e)
			a100k, _ := c.AccessesAt(100 << 10)
			a1m, _ := c.AccessesAt(1 << 20)
			rows += fmt.Sprintf("%-6d %14s %14s %12s %10.1f\n", h,
				shape.FormatBytes(a100k), shape.FormatBytes(a1m),
				shape.FormatBytes(c.MaxEffectualBufferBytes()),
				oi.PeakOI(c, e.MACs(), e.ElementSize))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig14_GroupedBMM regenerates Fig. 14: grouped BMM group-count
// sweep (H=32, M=4k, K=128, N=4k).
func BenchmarkFig14_GroupedBMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-8s %14s %14s %10s\n", "groups", "@1MB", "@32MB", "peakOI")
		for _, grp := range []int64{1, 4, 8, 16, 32} {
			e := GroupedBMM(fmt.Sprintf("g%d", grp), 32, grp, 4096, 128, 4096)
			c := deriveCurve(e)
			a1, _ := c.AccessesAt(1 << 20)
			a32, _ := c.AccessesAt(32 << 20)
			rows += fmt.Sprintf("%-8d %14s %14s %10.1f\n", grp,
				shape.FormatBytes(a1), shape.FormatBytes(a32),
				oi.PeakOI(c, e.MACs(), e.ElementSize))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig18_TwoGEMMFusion regenerates Fig. 18: fusing 32k_4k_16k and
// 32k_16k_4k GEMMs — unfused vs untiled vs tiled fusion plus reduction
// factors.
func BenchmarkFig18_TwoGEMMFusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chain := fusion.MustChain("pair", 32768,
			fusion.GEMMOp("g0", 32768, 4096, 16384),
			fusion.GEMMOp("g1", 32768, 16384, 4096))
		perOp := chain.PerOpCurves(bound.Options{})
		unfused := fusion.UnfusedCurve(perOp)
		tiled, err := fusion.TiledFusion(chain)
		if err != nil {
			b.Fatal(err)
		}
		untiled, err := fusion.UntiledFusion(chain)
		if err != nil {
			b.Fatal(err)
		}
		rows := SummaryTable([]int64{10 << 20, 256 << 20},
			Series{Name: "unfused", Curve: unfused},
			Series{Name: "untiled", Curve: untiled},
			Series{Name: "tiled", Curve: tiled})
		for _, mb := range []int64{4, 10, 32, 256, 512} {
			u, ok1 := unfused.AccessesAt(mb << 20)
			f, ok2 := tiled.AccessesAt(mb << 20)
			if ok1 && ok2 {
				rows += fmt.Sprintf("reduction @%4dMB: %.2fx\n", mb, float64(u)/float64(f))
			}
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig20_MHAStrategies regenerates Fig. 20: unfused vs FLAT vs
// FlashAttention bounds for GPT-3-6.7b attention.
func BenchmarkFig20_MHAStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := GPT3_6_7B().MHA()
		unfused := m.UnfusedCurve(bound.Options{})
		flat := m.FLATCurve()
		flash := m.FlashAttentionCurve()
		rows := SummaryTable([]int64{16 << 20, 32 << 20},
			Series{Name: "unfused", Curve: unfused},
			Series{Name: "FLAT", Curve: flat},
			Series{Name: "FlashAttention", Curve: flash})
		fl, _ := flat.AccessesAt(16 << 20)
		fa, _ := flash.AccessesAt(16 << 20)
		rows += fmt.Sprintf("FlashAttention advantage @16MB: %.1fx (paper: >6x)\n",
			float64(fl)/float64(fa))
		emit(b.Name(), rows)
	}
}

// BenchmarkFig21_Segmentation regenerates Fig. 21: the six-Einsum
// GPT-3-6.7b chain under no fusion, maximal tiled fusion, and the best
// segmentation per capacity.
func BenchmarkFig21_Segmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := llm.NewBlockStudy(llm.GPT3_6_7B(), bound.Options{})
		if err != nil {
			b.Fatal(err)
		}
		emit(b.Name(), SummaryTable([]int64{10 << 20, 50 << 20, 320 << 20},
			Series{Name: "no-fusion", Curve: study.ChainUnfused},
			Series{Name: "max-tiled-fusion", Curve: study.ChainFused},
			Series{Name: "best-segmentation", Curve: study.ChainSegmented}))
	}
}

// BenchmarkFig22_FullBlock regenerates Fig. 22: total backing-store
// accesses for the whole GPT-3-6.7b building block.
func BenchmarkFig22_FullBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := llm.NewBlockStudy(llm.GPT3_6_7B(), bound.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rows := SummaryTable([]int64{50 << 20, 320 << 20},
			Series{Name: "no-fusion", Curve: study.BlockUnfused},
			Series{Name: "best-segmentation", Curve: study.BlockSegmented})
		for _, mb := range []int64{50, 320, 1024} {
			if r, ok := study.FusionReduction(mb << 20); ok {
				sav, _ := study.AbsoluteSavingsBytes(mb << 20)
				rows += fmt.Sprintf("reduction @%4dMB: %.2fx (%s saved)\n",
					mb, r, shape.FormatBytes(sav))
			}
		}
		rows += fmt.Sprintf("max effectual buffer: %s (paper: 320MB)\n",
			shape.FormatBytes(study.MaxEffectualBufferBytes()))
		emit(b.Name(), rows)
	}
}

// BenchmarkFig23_PerfMesa regenerates Fig. 23: throughput vs buffer-area
// ratio for a GF100-class die running the GPT-3-6.7b block.
func BenchmarkFig23_PerfMesa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study, err := llm.NewBlockStudy(llm.GPT3_6_7B(), bound.Options{})
		if err != nil {
			b.Fatal(err)
		}
		spec := GF100()
		ratios := Ratios(0.005, 0.995, 199)
		rows := ""
		var peaks []PerfPoint
		for _, cs := range []struct {
			name  string
			curve *Curve
		}{{"unfused", study.BlockUnfused}, {"fused", study.BlockSegmented}} {
			mesa := PerformanceMesa(cs.curve, study.BlockMACs, spec, ratios)
			best, ok := OptimalRatio(mesa)
			if !ok {
				b.Fatalf("%s: no feasible mesa point", cs.name)
			}
			peaks = append(peaks, best)
			rows += fmt.Sprintf("%-8s optimal ratio %.3f buffer %12s -> %7.2f TMAC/s\n",
				cs.name, best.BufferAreaRatio, shape.FormatBytes(best.BufferBytes),
				best.Achieved/1e12)
		}
		rows += fmt.Sprintf("fused/unfused peak throughput: %.2fx (paper: 2.4x)\n",
			peaks[1].Achieved/peaks[0].Achieved)
		emit(b.Name(), rows)
	}
}

// BenchmarkFig24a_CacheValidation regenerates Fig. 24a with the simulator
// substrate: tuned tiled GEMMs across scaled GPU LLC capacities always
// land on or above the Orojenesis bound.
func BenchmarkFig24a_CacheValidation(b *testing.B) {
	const side = 256
	e := einsum.GEMM("g", side, side, side)
	curve := deriveCurve(e)
	gpus := []struct {
		name string
		llc  int64
	}{
		{"A2-like", 2 << 20}, {"A30-like", 24 << 20},
		{"A100-like", 40 << 20}, {"H100-like", 50 << 20},
	}
	scale := float64(side) / 4096 * float64(side) / 4096
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-10s %12s %14s %14s %8s\n",
			"config", "cache", "measured", "bound", "ratio")
		for _, gpu := range gpus {
			cache := int64(float64(gpu.llc)*scale) / 64 * 64
			t0 := int64(2)
			for 3*(2*t0)*(2*t0)*2 <= cache && 2*t0 <= side/2 {
				t0 *= 2
			}
			g := &trace.TiledGEMM{
				M: side, K: side, N: side,
				M0: t0, K0: 32, N0: t0,
				Order:       [3]string{"N", "M", "K"},
				ElementSize: 2,
			}
			measured := simulateTrace(b, g, cache)
			bnd, ok := curve.AccessesAt(cache)
			if ok && measured < bnd {
				b.Fatalf("%s: measured %d below bound %d", gpu.name, measured, bnd)
			}
			rows += fmt.Sprintf("%-10s %12s %14s %14s %8.2f\n", gpu.name,
				shape.FormatBytes(cache), shape.FormatBytes(measured),
				shape.FormatBytes(bnd), float64(measured)/float64(bnd))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig24b_SimbaValidation regenerates Fig. 24b: the scatter of
// Simba mappings across Global-Buffer sizes never undercuts the bound.
func BenchmarkFig24b_SimbaValidation(b *testing.B) {
	const side = 256
	e := einsum.GEMM("g", side, side, side)
	curve := deriveCurve(e)
	g := simba.GEMM{M: side, K: side, N: side}
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-10s %10s %14s %10s\n", "GB", "mappings", "bestDRAM", "violations")
		for _, gb := range []int64{128, 2048, 32 << 10, 512 << 10} {
			arch := simba.Default(gb)
			violations, total := 0, 0
			bestDRAM := int64(-1)
			simba.Mapspace(g, arch, func(m *simba.Mapping) {
				r := simba.Evaluate(g, arch, m)
				total++
				if bestDRAM < 0 || r.DRAMAccessBytes < bestDRAM {
					bestDRAM = r.DRAMAccessBytes
				}
				if bnd, ok := curve.AccessesAt(r.GBBytesUsed); ok && r.DRAMAccessBytes < bnd {
					violations++
				}
			})
			if violations > 0 {
				b.Fatalf("GB %d: %d bound violations", gb, violations)
			}
			rows += fmt.Sprintf("%-10s %10d %14s %10d\n", shape.FormatBytes(gb),
				total, shape.FormatBytes(bestDRAM), violations)
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkFig24c_FusedValidation regenerates Fig. 24c: fused vs unfused
// two-GEMM bounds with measured Simba points above them.
func BenchmarkFig24c_FusedValidation(b *testing.B) {
	const side = 1024
	for i := 0; i < b.N; i++ {
		chain := fusion.MustChain("pair", side,
			fusion.GEMMOp("g0", side, side, side),
			fusion.GEMMOp("g1", side, side, side))
		perOp := chain.PerOpCurves(bound.Options{})
		unfusedBound := fusion.UnfusedCurve(perOp)
		fusedBound, err := fusion.TiledFusion(chain)
		if err != nil {
			b.Fatal(err)
		}
		g := simba.GEMM{M: side, K: side, N: side}
		rows := ""
		for _, gb := range []int64{32 << 10, 512 << 10} {
			best := simba.SearchBest(g, simba.Default(gb), simba.Options{})
			measured := 2 * best.BestDRAMBytes
			bnd, ok := unfusedBound.AccessesAt(gb)
			if ok && measured < bnd {
				b.Fatalf("measured unfused %d below bound %d at %d", measured, bnd, gb)
			}
			rows += fmt.Sprintf("unfused @GB %8s: measured %12s bound %12s\n",
				shape.FormatBytes(gb), shape.FormatBytes(measured), shape.FormatBytes(bnd))
		}
		rows += fmt.Sprintf("fused bound floor %s @ %s | unfused floor %s\n",
			shape.FormatBytes(fusedBound.MinAccessBytes()),
			shape.FormatBytes(fusedBound.MaxEffectualBufferBytes()),
			shape.FormatBytes(unfusedBound.MinAccessBytes()))
		emit(b.Name(), rows)
	}
}

// BenchmarkTable1_RuntimeComparison regenerates Table I: one Orojenesis
// run vs a multi-design Simba DSE (at 1k GEMM scale, 10 designs, on this
// machine).
func BenchmarkTable1_RuntimeComparison(b *testing.B) {
	const side = 1024
	const designs = 10
	for i := 0; i < b.N; i++ {
		e := einsum.GEMM("g", side, side, side)
		oro := bound.Derive(e, bound.Options{Workers: 1})

		g := simba.GEMM{M: side, K: side, N: side}
		gbSizes := make([]int64, designs)
		for j := range gbSizes {
			gbSizes[j] = 4096 << (uint(j) % 8)
		}
		var totalMappings int64
		var totalSecs float64
		for _, r := range simba.DSE(g, gbSizes, simba.Options{}) {
			totalMappings += r.MappingsEvaluated
			totalSecs += r.Elapsed.Seconds()
		}
		oroPer := oro.Stats.Elapsed.Seconds() / float64(oro.Stats.MappingsEvaluated) * 1e3
		simbaPer := totalSecs / float64(totalMappings) * 1e3
		emit(b.Name(), fmt.Sprintf(
			"%-22s %12s %18s %12s\n%-22s %12d %18.5f %12.3f\n%-22s %12d %18.5f %12.3f\n%-22s %11.1fx %17.1fx %11.1fx\n",
			"", "mappings", "per-mapping(ms)", "total(s)",
			fmt.Sprintf("Simba (%d designs)", designs), totalMappings, simbaPer, totalSecs,
			"Orojenesis", oro.Stats.MappingsEvaluated, oroPer, oro.Stats.Elapsed.Seconds(),
			"Ratio", float64(totalMappings)/float64(oro.Stats.MappingsEvaluated),
			simbaPer/oroPer, totalSecs/oro.Stats.Elapsed.Seconds()))
	}
}
