package orojenesis_test

// Integration tests: each encodes one of the paper's qualitative claims
// as an executable assertion, driven entirely through the public API at
// test-friendly scales.

import (
	"strings"
	"testing"

	orojenesis "repro"
)

// Fig. 18: tiled fusion loses to unfused mappings below a crossover
// capacity and wins above it.
func TestIntegration_FusionCrossover(t *testing.T) {
	chain := orojenesis.MustChain("pair", 4096,
		orojenesis.GEMMOp("g0", 4096, 512, 2048),
		orojenesis.GEMMOp("g1", 4096, 2048, 512),
	)
	a, err := orojenesis.AnalyzeChain(chain, orojenesis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fusionLoses, fusionWins bool
	for _, p := range a.Unfused.Points() {
		f, ok := a.Tiled.AccessesAt(p.BufferBytes)
		if !ok {
			continue
		}
		if f > p.AccessBytes {
			fusionLoses = true
		}
		if f < p.AccessBytes {
			fusionWins = true
		}
	}
	if !fusionLoses || !fusionWins {
		t.Fatalf("expected a crossover: loses=%v wins=%v", fusionLoses, fusionWins)
	}
}

// Fig. 13: more heads at fixed total compute -> more traffic at equal
// capacity and lower peak OI.
func TestIntegration_BMMHeadTrends(t *testing.T) {
	var prevAcc int64 = -1
	prevOI := 1e18
	for _, h := range []int64{1, 4, 16} {
		e := orojenesis.BMM("b", h, 512, 512/h, 512)
		a, err := orojenesis.Analyze(e, orojenesis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		acc, ok := a.Curve.AccessesAt(16 << 10)
		if !ok {
			t.Fatalf("h=%d: probe infeasible", h)
		}
		if prevAcc >= 0 && acc < prevAcc {
			t.Fatalf("h=%d: traffic fell with more heads: %d < %d", h, acc, prevAcc)
		}
		if a.PeakOI >= prevOI {
			t.Fatalf("h=%d: peak OI did not fall: %f >= %f", h, a.PeakOI, prevOI)
		}
		prevAcc, prevOI = acc, a.PeakOI
	}
}

// Fig. 14: fewer groups (MQA/GQA) never move more data, the ordering
// MQA <= GQA <= MHA holds pointwise, and the absolute savings are capped
// by the weight-size difference — on the paper's log axes the curves
// therefore converge wherever totals dwarf that difference.
func TestIntegration_GroupedBMMOrdering(t *testing.T) {
	mqaE := orojenesis.GroupedBMM("mqa", 16, 1, 256, 64, 256)
	gqaE := orojenesis.GroupedBMM("gqa", 16, 4, 256, 64, 256)
	mhaE := orojenesis.GroupedBMM("mha", 16, 16, 256, 64, 256)
	mqa := orojenesis.Bound(mqaE, orojenesis.Options{})
	gqa := orojenesis.Bound(gqaE, orojenesis.Options{})
	mha := orojenesis.Bound(mhaE, orojenesis.Options{})

	wDiff := mhaE.AlgorithmicMinBytes() - mqaE.AlgorithmicMinBytes()
	for _, buf := range []int64{4 << 10, 32 << 10, 256 << 10, 4 << 20} {
		a, ok1 := mha.AccessesAt(buf)
		g, ok2 := gqa.AccessesAt(buf)
		b, ok3 := mqa.AccessesAt(buf)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("probe %d infeasible", buf)
		}
		if !(b <= g && g <= a) {
			t.Fatalf("ordering violated at %d: mqa %d gqa %d mha %d", buf, b, g, a)
		}
		if a-b > 2*wDiff {
			t.Fatalf("savings %d exceed twice the weight-size difference %d", a-b, wDiff)
		}
	}
}

// The parser and the builders describe identical workloads: their curves
// match point for point.
func TestIntegration_ParserMatchesBuilders(t *testing.T) {
	parsed, err := orojenesis.ParseEinsum(
		"B[p,q,n] = A[2p+2r, 2q+2s, c] * W[c,n,r,s] {P=8,Q=8,N=8,C=8,R=3,S=3}")
	if err != nil {
		t.Fatal(err)
	}
	built := orojenesis.Conv2D("conv",
		orojenesis.ConvConfig{P: 8, Q: 8, N: 8, C: 8, R: 3, S: 3, T: 2, D: 2})
	cp := orojenesis.Bound(parsed, orojenesis.Options{})
	cb := orojenesis.Bound(built, orojenesis.Options{})
	if cp.Len() != cb.Len() {
		t.Fatalf("curve lengths differ: %d vs %d", cp.Len(), cb.Len())
	}
	for i, p := range cp.Points() {
		if p != cb.Points()[i] {
			t.Fatalf("point %d differs: %v vs %v", i, p, cb.Points()[i])
		}
	}
}

// Curves survive a CSV round trip through the public API.
func TestIntegration_CurveSerialization(t *testing.T) {
	c := orojenesis.Bound(orojenesis.GEMM("g", 128, 128, 128), orojenesis.Options{})
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := orojenesis.ReadCurveCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Points() {
		got, ok := back.AccessesAt(p.BufferBytes)
		if !ok || got != p.AccessBytes {
			t.Fatalf("round trip broke AccessesAt(%d): (%d,%v)", p.BufferBytes, got, ok)
		}
	}
}

// Fused execution lower-bounds strictly less data-movement energy on an
// edge hierarchy than unfused execution.
func TestIntegration_FusionSavesEnergy(t *testing.T) {
	cfg := orojenesis.ConvConfig{P: 28, Q: 28, N: 32, C: 32, R: 3, S: 3}
	chain := orojenesis.MustChain("stage", 28,
		orojenesis.ConvOp("a", cfg), orojenesis.ConvOp("b", cfg))
	a, err := orojenesis.AnalyzeChain(chain, orojenesis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	macs := chain.Ops[0].Ref.MACs() * 2
	h := orojenesis.EdgeLike()
	ru, err := orojenesis.AnalyzeHierarchy(a.Unfused, h, macs)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := orojenesis.AnalyzeHierarchy(a.Best, h, macs)
	if err != nil {
		t.Fatal(err)
	}
	if rf.TotalEnergyPJ >= ru.TotalEnergyPJ {
		t.Fatalf("fusion should lower the energy bound: %f >= %f",
			rf.TotalEnergyPJ, ru.TotalEnergyPJ)
	}
}

// Fig. 8: the OI mesa is non-decreasing in buffer size and capped by the
// algorithmic OI.
func TestIntegration_OIMesaShape(t *testing.T) {
	g := orojenesis.GEMM("g", 256, 256, 256)
	a, err := orojenesis.Analyze(g, orojenesis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mesa := orojenesis.OIMesa(a.Curve, a.MACs, g.ElementSize)
	for i, p := range mesa {
		if p.OI > a.AlgorithmicOI+1e-9 {
			t.Fatalf("mesa point above the algorithmic OI: %f > %f", p.OI, a.AlgorithmicOI)
		}
		if i > 0 && p.OI < mesa[i-1].OI {
			t.Fatal("mesa not monotone")
		}
	}
	if mesa[len(mesa)-1].OI != a.PeakOI {
		t.Fatal("mesa top != peak OI")
	}
}

// Table I shape: one Orojenesis run is drastically cheaper than even a
// tiny mapping-aware DSE, and the heuristic short-cuts stay above it.
func TestIntegration_HeuristicsNeverBeatBound(t *testing.T) {
	g := orojenesis.GEMM("g", 256, 256, 256)
	exhaustive := orojenesis.Bound(g, orojenesis.Options{})
	for seed := int64(1); seed <= 3; seed++ {
		rc := orojenesis.RandomSearchCurve(g, 500, seed)
		l := orojenesis.CompareSearch(exhaustive, rc)
		if l.Max < 1 {
			t.Fatalf("seed %d: heuristic below the bound (max %f)", seed, l.Max)
		}
	}
}
