package orojenesis

// Benchmarks for the systems built beyond the paper's figures: the Belady
// motivation study, the hierarchy energy bounds and the three-level
// composition gap. Each prints its series once, like the figure benches.

import (
	"fmt"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/shape"
	"repro/internal/trace"
)

// BenchmarkExt_BeladyVsBound regenerates the Sec. II motivation study:
// Belady-optimal traffic of two concrete mappings vs the bound.
func BenchmarkExt_BeladyVsBound(b *testing.B) {
	const side = 64
	e := GEMM("g", side, side, side)
	curve := Bound(e, Options{})
	caps := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	tiled := &trace.TiledGEMM{M: side, K: side, N: side, M0: 8, K0: 8, N0: 8,
		Order: [3]string{"N", "M", "K"}, ElementSize: 2}
	naive := &trace.TiledGEMM{M: side, K: side, N: side, M0: 1, K0: side, N0: 1,
		Order: [3]string{"K", "M", "N"}, ElementSize: 2}
	for i := 0; i < b.N; i++ {
		ct, err := cachesim.BeladyCurve(tiled, caps)
		if err != nil {
			b.Fatal(err)
		}
		cn, err := cachesim.BeladyCurve(naive, caps)
		if err != nil {
			b.Fatal(err)
		}
		rows := fmt.Sprintf("%-10s %12s %14s %14s\n", "capacity", "bound", "opt(tiled)", "opt(naive)")
		for j, capacity := range caps {
			bnd, _ := curve.AccessesAt(capacity)
			if ct.Points[j].AccessBytes < bnd || cn.Points[j].AccessBytes < bnd {
				b.Fatalf("Belady undercut the bound at %d", capacity)
			}
			rows += fmt.Sprintf("%-10s %12s %14s %14s\n",
				shape.FormatBytes(capacity), shape.FormatBytes(bnd),
				shape.FormatBytes(ct.Points[j].AccessBytes),
				shape.FormatBytes(cn.Points[j].AccessBytes))
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkExt_HierarchyEnergy derives energy and bandwidth-time lower
// bounds for a GEMM across the preset hierarchies.
func BenchmarkExt_HierarchyEnergy(b *testing.B) {
	g := GEMM("g", 1024, 1024, 1024)
	curve := Bound(g, Options{})
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-12s %14s %14s %16s\n",
			"hierarchy", "energy(uJ)", "time-LB(us)", "bottleneck")
		for _, h := range []Hierarchy{A100Like(), TPULike(), EdgeLike()} {
			rep, err := AnalyzeHierarchy(curve, h, g.MACs())
			if err != nil {
				b.Fatal(err)
			}
			rows += fmt.Sprintf("%-12s %14.2f %14.3f %16s\n",
				h.Name, rep.TotalEnergyPJ/1e6, rep.TimeLowerBoundSec*1e6, rep.BottleneckLink)
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkExt_ThreeLevelCompositionGap quantifies the looseness of the
// Fig. 7 composed probe with the jointly-achievable three-level bound.
func BenchmarkExt_ThreeLevelCompositionGap(b *testing.B) {
	g := GEMM("g", 64, 64, 64)
	for i := 0; i < b.N; i++ {
		r, err := DeriveThreeLevel(g, 128)
		if err != nil {
			b.Fatal(err)
		}
		rows := fmt.Sprintf("three-level mappings: %d\n%-12s %14s %14s %8s\n",
			r.Mappings, "L2 capacity", "free-L2", "joint-L2", "gap")
		for _, c := range []int64{512, 2 << 10, 8 << 10, 32 << 10} {
			gp := r.CompositionGap([]int64{c})[0]
			if !gp.Feasible {
				continue
			}
			rows += fmt.Sprintf("%-12s %14s %14s %7.2fx\n",
				shape.FormatBytes(c), shape.FormatBytes(gp.FreeL2),
				shape.FormatBytes(gp.JointL2), gp.Ratio)
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkExt_ImperfectSmoothing measures the smoothed Fig. 1-style
// curve on an awkward (divisor-poor) shape.
func BenchmarkExt_ImperfectSmoothing(b *testing.B) {
	g := GEMM("g", 96, 80, 72)
	for i := 0; i < b.N; i++ {
		c := Bound(g, Options{ImperfectExtra: 24})
		emit(b.Name(), fmt.Sprintf("imperfect curve: %d points, buf %s..%s\n",
			c.Len(), shape.FormatBytes(c.MinBufferBytes()),
			shape.FormatBytes(c.MaxEffectualBufferBytes())))
	}
}
