package orojenesis

// Ablation benchmarks for the design choices DESIGN.md calls out: perfect
// vs imperfect factorization, exhaustive vs heuristic search, and the
// fusion execution styles. Each prints its comparison once.

import (
	"fmt"
	"testing"

	"repro/internal/fusion"
	"repro/internal/shape"
)

// BenchmarkAblation_PerfectVsImperfect measures the cost and the payoff
// of widening the mapspace with imperfect factorizations (the Ruby
// smoothing extension): more breakpoints and a pointwise-dominant curve
// for more traversal time.
func BenchmarkAblation_PerfectVsImperfect(b *testing.B) {
	g := GEMM("g", 96, 80, 72) // scarce divisors: the worst case for perfect factors
	for i := 0; i < b.N; i++ {
		perfect := Bound(g, Options{})
		imperfect := Bound(g, Options{ImperfectExtra: 16})
		probe := perfect.MinBufferBytes() * 8
		pAcc, _ := perfect.AccessesAt(probe)
		iAcc, _ := imperfect.AccessesAt(probe)
		emit(b.Name(), fmt.Sprintf(
			"perfect: %d points | imperfect: %d points | accesses at %s: %s -> %s (%.3fx)\n",
			perfect.Len(), imperfect.Len(), shape.FormatBytes(probe),
			shape.FormatBytes(pAcc), shape.FormatBytes(iAcc),
			float64(pAcc)/float64(iAcc)))
	}
}

// BenchmarkAblation_HeuristicVsExhaustive quantifies the looseness of
// random sampling and hill climbing against the exhaustive bound —
// the paper's Sec. III argument that heuristics do not guarantee the
// frontier.
func BenchmarkAblation_HeuristicVsExhaustive(b *testing.B) {
	g := GEMM("g", 1024, 1024, 1024)
	exhaustive := Bound(g, Options{})
	budgets := []int64{1 << 12, 1 << 16, 1 << 20}
	for i := 0; i < b.N; i++ {
		rows := fmt.Sprintf("%-22s %10s %10s %12s\n", "mapper", "max", "mean", "infeasible")
		for _, cs := range []struct {
			name  string
			curve *Curve
		}{
			{"random-100", RandomSearchCurve(g, 100, 1)},
			{"random-10000", RandomSearchCurve(g, 10000, 1)},
			{"hillclimb-3000", HillClimbCurve(g, budgets, 3000, 1)},
			{"exhaustive", exhaustive},
		} {
			l := CompareSearch(exhaustive, cs.curve)
			rows += fmt.Sprintf("%-22s %9.2fx %9.2fx %11.0f%%\n",
				cs.name, l.Max, l.Mean, l.Infeasible*100)
		}
		emit(b.Name(), rows)
	}
}

// BenchmarkAblation_FusionModes contrasts the fusion execution styles on
// a scaled Fig. 18 chain: the buffer each needs to reach the fused
// algorithmic minimum.
func BenchmarkAblation_FusionModes(b *testing.B) {
	chain := fusion.MustChain("pair", 4096,
		fusion.GEMMOp("g0", 4096, 512, 2048),
		fusion.GEMMOp("g1", 4096, 2048, 512))
	for i := 0; i < b.N; i++ {
		tiled, err := fusion.TiledFusion(chain)
		if err != nil {
			b.Fatal(err)
		}
		pipe, err := fusion.PipelinedFusion(chain)
		if err != nil {
			b.Fatal(err)
		}
		spill, err := fusion.TiledFusionWithPartialSpill(chain)
		if err != nil {
			b.Fatal(err)
		}
		untiled, err := fusion.UntiledFusion(chain)
		if err != nil {
			b.Fatal(err)
		}
		floor := chain.FusedAlgoMinBytes()
		rows := fmt.Sprintf("fused algorithmic minimum: %s\n", shape.FormatBytes(floor))
		for _, cs := range []struct {
			name  string
			curve *Curve
		}{
			{"tiled-sequential", tiled},
			{"tiled+partial-spill", spill},
			{"pipelined", pipe},
			{"untiled", untiled},
		} {
			buf, ok := cs.curve.BufferFor(floor)
			rows += fmt.Sprintf("%-20s min-buffer %12s  buffer-for-floor %12s (ok=%v)\n",
				cs.name, shape.FormatBytes(cs.curve.MinBufferBytes()),
				shape.FormatBytes(buf), ok)
		}
		emit(b.Name(), rows)
	}
}
