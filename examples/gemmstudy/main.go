// gemmstudy reproduces the single-Einsum design insights of Sec. IV at
// example scale: the impact of GEMM shape on the ski slope (Fig. 10), the
// maximal-effectual-buffer ratios (Fig. 11), the BMM head-count study
// (Fig. 13) and the grouped-BMM group sweep (Fig. 14).
package main

import (
	"fmt"
	"log"

	orojenesis "repro"
)

func analyze(e *orojenesis.Einsum) *orojenesis.Analysis {
	a, err := orojenesis.Analyze(e, orojenesis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func main() {
	fmt.Println("== Fig. 10: GEMM shapes ==")
	var series []orojenesis.Series
	for _, side := range []int64{1024, 2048, 4096} {
		g := orojenesis.GEMM(fmt.Sprintf("square-%dk", side/1024), side, side, side)
		a := analyze(g)
		series = append(series, orojenesis.Series{Name: g.Name, Curve: a.Curve})
	}
	fmt.Print(orojenesis.SummaryTable([]int64{1 << 20, 16 << 20}, series...))
	fmt.Println("larger GEMMs move more data at equal capacity, and gain more from growth")

	fmt.Println("\n== Fig. 11: maximal effectual buffer ratio ==")
	shapes := []struct {
		name    string
		m, k, n int64
	}{
		{"M=K=N (2k)", 2048, 2048, 2048},
		{"tall 16k_1k_1k", 16384, 1024, 1024},
		{"deep 1k_16k_1k", 1024, 16384, 1024},
		{"wide 1k_1k_16k", 1024, 1024, 16384},
	}
	fmt.Printf("%-16s %12s %10s %22s\n", "shape", "maxEff(B)", "gap1", "smallest-operand-ratio")
	for _, s := range shapes {
		g := orojenesis.GEMM(s.name, s.m, s.k, s.n)
		a := analyze(g)
		smallest := float64(g.SmallestOperandElements()*g.ElementSize) /
			float64(g.TotalOperandBytes())
		fmt.Printf("%-16s %12d %10.3f %22.3f\n", s.name, a.MaxEffectualBytes, a.Gap1, smallest)
	}
	fmt.Println("the maximal effectual buffer tracks the smallest operand (Sec. IV-1)")

	fmt.Println("\n== Fig. 13: BMM heads (fixed total compute) ==")
	fmt.Printf("%-10s %14s %12s\n", "heads", "bound@1MB (B)", "peak OI")
	for _, h := range []int64{1, 4, 16, 32} {
		b := orojenesis.BMM(fmt.Sprintf("bmm-h%d", h), h, 4096, 4096/h, 4096)
		a := analyze(b)
		acc, _ := a.Curve.AccessesAt(1 << 20)
		fmt.Printf("%-10d %14d %12.1f\n", h, acc, a.PeakOI)
	}
	fmt.Println("more heads -> more traffic, lower peak OI (peak OI ~ K = 4096/heads)")

	fmt.Println("\n== Fig. 14: grouped BMM groups ==")
	fmt.Printf("%-10s %14s %14s\n", "groups", "bound@1MB (B)", "bound@32MB (B)")
	for _, grp := range []int64{1, 4, 16, 32} {
		b := orojenesis.GroupedBMM(fmt.Sprintf("gbmm-g%d", grp), 32, grp, 4096, 128, 4096)
		a := analyze(b)
		small, _ := a.Curve.AccessesAt(1 << 20)
		large, _ := a.Curve.AccessesAt(32 << 20)
		fmt.Printf("%-10d %14d %14d\n", grp, small, large)
	}
	fmt.Println("fewer groups (MQA) -> less traffic; the advantage fades at large capacity")
}
