// fusedcnn applies the fusion engine to a CNN: two stride-1 3x3
// convolution layers of a ResNet stage fused at output-row granularity
// (the classic fused-layer CNN dataflow). It derives the unfused
// baseline, the tiled-fusion bound with sliding-window halos, and a
// multi-level hierarchy report with energy lower bounds for an
// edge-class accelerator.
package main

import (
	"fmt"
	"log"

	orojenesis "repro"
)

func main() {
	cfg := orojenesis.ConvConfig{P: 56, Q: 56, N: 64, C: 64, R: 3, S: 3}
	chain := orojenesis.MustChain("resnet-stage", 56,
		orojenesis.ConvOp("conv_a", cfg),
		orojenesis.ConvOp("conv_b", cfg),
	)

	a, err := orojenesis.AnalyzeChain(chain, orojenesis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== fused-layer CNN: two 3x3 conv layers (56x56x64) ==")
	fmt.Print(orojenesis.SummaryTable([]int64{32 << 10, 256 << 10, 2 << 20},
		orojenesis.Series{Name: "unfused", Curve: a.Unfused},
		orojenesis.Series{Name: "tiled-fusion", Curve: a.Tiled},
		orojenesis.Series{Name: "best-segmentation", Curve: a.Best},
	))
	fmt.Printf("fused algo min %d B vs unfused %d B: fusion removes the %d B intermediate map\n\n",
		a.AlgoMin, a.UnfusedAlgoMin, chain.IntermediateBytes())

	// Row-granular fusion: a few rows plus the 2-row halo suffice.
	rowBytes := chain.Ops[0].OutW * chain.ElementSize
	fmt.Printf("one feature-map row: %d B; smallest fused buffer: %d B (~%.1f rows)\n\n",
		rowBytes, a.Tiled.MinBufferBytes(),
		float64(a.Tiled.MinBufferBytes())/float64(rowBytes))

	// Energy view on an edge accelerator: fused vs unfused DRAM energy.
	h := orojenesis.EdgeLike()
	macs := chain.Ops[0].Ref.MACs() + chain.Ops[1].Ref.MACs()
	for _, cs := range []struct {
		name  string
		curve *orojenesis.Curve
	}{{"unfused", a.Unfused}, {"tiled-fusion", a.Best}} {
		rep, err := orojenesis.AnalyzeHierarchy(cs.curve, h, macs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s on %s ==\n%s\n", cs.name, h.Name, rep)
	}
}
