// llmblock runs the GPT-3-6.7b case study end to end through the public
// API at a reduced scale: attention fusion strategies (Fig. 20), the
// six-Einsum chain (Fig. 21), the full-block fusion bound (Fig. 22) and
// the buffer-area provisioning decision (Fig. 23). Pass -full to run the
// paper-scale model (a few seconds).
package main

import (
	"flag"
	"fmt"
	"log"

	orojenesis "repro"
)

func main() {
	full := flag.Bool("full", false, "run at full GPT-3-6.7b scale")
	flag.Parse()

	cfg := orojenesis.GPT3_6_7B()
	if !*full {
		cfg = cfg.Scaled(4)
	}
	fmt.Printf("workload: %s (l=%d, d=%d, %d heads x %d, hidden %d)\n\n",
		cfg.Name, cfg.L(), cfg.D, cfg.Heads, cfg.HeadDim, cfg.Hidden)

	// Fig. 20: attention fusion strategies.
	mha := cfg.MHA()
	flat := mha.FLATCurve()
	flash := mha.FlashAttentionCurve()
	probe := int64(16 << 20)
	if !*full {
		probe = 1 << 20
	}
	fl, ok1 := flat.AccessesAt(probe)
	fa, ok2 := flash.AccessesAt(probe)
	if ok1 && ok2 {
		fmt.Printf("Fig. 20 | FlashAttention vs FLAT at %d B: %.1fx fewer accesses\n",
			probe, float64(fl)/float64(fa))
	}
	fmt.Printf("Fig. 20 | both strategies converge at the max effectual buffer: FLAT %d B, Flash %d B\n\n",
		flat.MaxEffectualBufferBytes(), flash.MaxEffectualBufferBytes())

	// Figs. 21/22: the fused building block.
	study, err := orojenesis.NewBlockStudy(cfg, orojenesis.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Fig. 21/22 | ", orojenesis.SummaryTable(
		[]int64{probe, 20 * probe},
		orojenesis.Series{Name: "no-fusion", Curve: study.BlockUnfused},
		orojenesis.Series{Name: "max-tiled-fusion", Curve: study.BlockFused},
		orojenesis.Series{Name: "best-segmentation", Curve: study.BlockSegmented},
	))
	maxEff := study.MaxEffectualBufferBytes()
	if red, ok := study.FusionReduction(maxEff); ok {
		fmt.Printf("Fig. 22 | fusion reduces block traffic up to %.1fx at the %d B max effectual buffer\n\n",
			red, maxEff)
	}

	// Fig. 23: one-shot buffer-vs-MAC provisioning with the GF100 budget.
	spec := orojenesis.GF100()
	ratios := orojenesis.Ratios(0.005, 0.995, 199)
	var peaks []orojenesis.PerfPoint
	for _, cs := range []struct {
		name  string
		curve *orojenesis.Curve
	}{
		{"unfused", study.BlockUnfused},
		{"fused", study.BlockSegmented},
	} {
		mesa := orojenesis.PerformanceMesa(cs.curve, study.BlockMACs, spec, ratios)
		best, ok := orojenesis.OptimalRatio(mesa)
		if !ok {
			continue
		}
		peaks = append(peaks, best)
		fmt.Printf("Fig. 23 | %-8s optimal buffer ratio %.2f -> %.2f TMAC/s (buffer %d B)\n",
			cs.name, best.BufferAreaRatio, best.Achieved/1e12, best.BufferBytes)
	}
	if len(peaks) == 2 {
		fmt.Printf("\nfusion improves peak throughput %.1fx at this scale", peaks[1].Achieved/peaks[0].Achieved)
		if peaks[1].BufferAreaRatio < peaks[0].BufferAreaRatio {
			fmt.Printf(" while needing less SRAM area (the paper's full-scale result)")
		}
		fmt.Println()
	}
}
