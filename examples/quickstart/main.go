// Quickstart: derive the ski-slope diagram for a single GEMM and read off
// the paper's headline quantities — the attainable data-movement bound at
// a given buffer capacity (Gap 0), the maximal effectual buffer size
// (Gap 1) and the attainable operational intensity.
package main

import (
	"fmt"
	"log"

	orojenesis "repro"
)

func main() {
	// The paper's Fig. 1 workload: a 16k x 1k x 1k GEMM.
	g := orojenesis.GEMM("gemm_16k_1k_1k", 16384, 1024, 1024)

	a, err := orojenesis.Analyze(g, orojenesis.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload:", g)
	fmt.Printf("mapspace: %d Snowcat mappings traversed in %v\n\n",
		a.Stats.MappingsEvaluated, a.Stats.Elapsed)

	// Gap 0: how far the attainable bound sits above the algorithmic
	// minimum at realistic buffer sizes.
	for _, buf := range []int64{64 << 10, 1 << 20, 8 << 20, 40 << 20} {
		acc, ok := a.Curve.AccessesAt(buf)
		if !ok {
			fmt.Printf("buffer %8d B: no mapping fits\n", buf)
			continue
		}
		gap0, _ := a.Gap0(buf)
		oi, _ := a.OIAt(buf)
		fmt.Printf("buffer %8d B: bound %10d B  gap0 %6.2fx  attainable OI %7.1f\n",
			buf, acc, gap0, oi)
	}

	// Gap 1: buffer needed for full reuse vs total operand size.
	fmt.Printf("\nalgorithmic minimum:   %d B\n", a.AlgorithmicMinBytes)
	fmt.Printf("max effectual buffer:  %d B (gap1 = %.3f of total operands)\n",
		a.MaxEffectualBytes, a.Gap1)
	fmt.Printf("peak attainable OI:    %.1f MACs/element (algorithmic: %.1f)\n\n",
		a.PeakOI, a.AlgorithmicOI)

	// The ski-slope diagram itself.
	fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{Width: 64, Height: 16},
		orojenesis.Series{Name: "orojenesis bound", Curve: a.Curve}))
}
