// convsweep reproduces the convolution study of Fig. 12: the effect of
// filter size, stride and dilation on the ski-slope bound and the peak
// attainable operational intensity.
package main

import (
	"fmt"
	"log"

	orojenesis "repro"
)

func main() {
	configs := []struct {
		name string
		cfg  orojenesis.ConvConfig
	}{
		{"1x1", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 1, S: 1}},
		{"3x3", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3}},
		{"5x5", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 5, S: 5}},
		{"7x7", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 7, S: 7}},
		{"3x3 stride2", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3, T: 2}},
		{"3x3 dilation2", orojenesis.ConvConfig{P: 16, Q: 16, N: 64, C: 64, R: 3, S: 3, D: 2}},
	}

	fmt.Println("== Fig. 12: convolution configurations (C=N=64, P=Q=16) ==")
	fmt.Printf("%-14s %12s %14s %14s %10s\n",
		"config", "algo-min(B)", "bound@16KB(B)", "bound@256KB(B)", "peak OI")
	var series []orojenesis.Series
	for _, c := range configs {
		e := orojenesis.Conv2D("conv-"+c.name, c.cfg)
		a, err := orojenesis.Analyze(e, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		small, ok1 := a.Curve.AccessesAt(16 << 10)
		large, ok2 := a.Curve.AccessesAt(256 << 10)
		if !ok1 || !ok2 {
			log.Fatalf("%s: probe infeasible", c.name)
		}
		fmt.Printf("%-14s %12d %14d %14d %10.1f\n",
			c.name, a.AlgorithmicMinBytes, small, large, a.PeakOI)
		series = append(series, orojenesis.Series{Name: c.name, Curve: a.Curve})
	}
	fmt.Println()
	fmt.Println("larger filters: more accesses, steeper slopes, higher peak OI;")
	fmt.Println("stride and dilation: slightly more input traffic, stride lowers peak OI")
	fmt.Println()
	fmt.Print(orojenesis.Ascii(orojenesis.AsciiOptions{Width: 70, Height: 18}, series[:4]...))
}
