// modelzoo sweeps the workload catalog — ResNet-50 and VGG-16 conv
// layers, the BERT/GPT-3 transformer family, and Llama-2-70B's
// grouped-query attention — deriving the Orojenesis bound and the
// attainable OI for each, the way an architect would size a shared
// accelerator for a portfolio of networks.
package main

import (
	"fmt"
	"log"

	orojenesis "repro"
)

func main() {
	fmt.Println("== CNN layers: bound at 256 KB and 2 MB on-chip buffers ==")
	fmt.Printf("%-24s %14s %14s %10s %10s\n",
		"layer", "@256KB", "@2MB", "peakOI", "gap1")
	for _, l := range append(orojenesis.ResNet50(), orojenesis.VGG16()...) {
		e := l.Einsum()
		a, err := orojenesis.Analyze(e, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		small, _ := a.Curve.AccessesAt(256 << 10)
		large, _ := a.Curve.AccessesAt(2 << 20)
		fmt.Printf("%-24s %14d %14d %10.1f %10.3f\n",
			e.Name, small, large, a.PeakOI, a.Gap1)
	}

	fmt.Println("\n== Transformer blocks: fused vs unfused at 64 MB ==")
	fmt.Printf("%-14s %16s %16s %10s\n", "model", "unfused(B)", "fused(B)", "reduction")
	for _, cfg := range orojenesis.TransformerBlocks() {
		// Keep the sweep quick: shrink the two largest family members.
		run := cfg
		if cfg.D > 4096 {
			run = cfg.Scaled(2)
		}
		study, err := orojenesis.NewBlockStudy(run, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		buf := int64(64 << 20)
		u, ok1 := study.BlockUnfused.AccessesAt(buf)
		f, ok2 := study.BlockSegmented.AccessesAt(buf)
		if !ok1 || !ok2 {
			fmt.Printf("%-14s %16s %16s %10s\n", run.Name, "-", "-", "-")
			continue
		}
		fmt.Printf("%-14s %16d %16d %9.2fx\n", run.Name, u, f, float64(u)/float64(f))
	}

	fmt.Println("\n== Llama-2-70B grouped-query attention (seq 2048) ==")
	gqa := orojenesis.Llama2_70B_GQA(2048)
	mha := orojenesis.BMM("mha-equivalent", 64, 2048, 128, 2048)
	for _, e := range []*orojenesis.Einsum{gqa, mha} {
		a, err := orojenesis.Analyze(e, orojenesis.Options{})
		if err != nil {
			log.Fatal(err)
		}
		acc, _ := a.Curve.AccessesAt(8 << 20)
		fmt.Printf("%-24s bound@8MB %14d B  peakOI %8.1f\n", e.Name, acc, a.PeakOI)
	}
	fmt.Println("GQA's 8 shared KV groups cut score-matrix weight traffic vs full MHA")
}
