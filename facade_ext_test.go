package orojenesis

// Tests for the extended facade surface: hierarchies, heuristic mappers,
// the model catalog, three-level bounds, conv fusion and the parser.

import (
	"testing"
)

func TestFacadeHierarchies(t *testing.T) {
	g := GEMM("g", 128, 128, 128)
	c := Bound(g, Options{})
	for _, h := range []Hierarchy{A100Like(), EdgeLike(), TPULike()} {
		rep, err := AnalyzeHierarchy(c, h, g.MACs())
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if len(rep.Links) != len(h.Levels)-1 {
			t.Fatalf("%s: %d links for %d levels", h.Name, len(rep.Links), len(h.Levels))
		}
	}
}

func TestFacadeHeuristics(t *testing.T) {
	g := GEMM("g", 64, 64, 64)
	exhaustive := Bound(g, Options{})
	rc := RandomSearchCurve(g, 200, 3)
	if rc.Empty() {
		t.Fatal("empty random curve")
	}
	l := CompareSearch(exhaustive, rc)
	if l.Max < 1 {
		t.Fatalf("heuristic beat the bound: %+v", l)
	}
	hc := HillClimbCurve(g, []int64{1 << 10, 1 << 14}, 500, 3)
	if hc.Empty() {
		t.Fatal("empty hill-climb curve")
	}
}

func TestFacadeModelCatalog(t *testing.T) {
	if len(ResNet50()) == 0 || len(VGG16()) == 0 {
		t.Fatal("empty CNN catalogs")
	}
	if len(TransformerBlocks()) < 5 {
		t.Fatal("transformer catalog shrank")
	}
	for _, cfg := range []LLMConfig{BERTBase(128, 1), BERTLarge(128, 1), GPT3_13B(128, 1), GPT3_175B(128, 1)} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := Llama2_70B_GQA(128).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeThreeLevel(t *testing.T) {
	g := GEMM("g", 16, 16, 16)
	r, err := DeriveThreeLevel(g, 256)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.Empty() || r.L2.Empty() {
		t.Fatal("empty three-level curves")
	}
	gaps := r.CompositionGap([]int64{256, 1024})
	for _, gp := range gaps {
		if gp.Feasible && gp.Ratio < 1 {
			t.Fatalf("gap below 1: %+v", gp)
		}
	}
}

func TestFacadeConvChain(t *testing.T) {
	cfg := ConvConfig{P: 16, Q: 16, N: 8, C: 8, R: 3, S: 3}
	chain := MustChain("c", 16, ConvOp("a", cfg), ConvOp("b", cfg))
	curve, err := TiledFusion(chain)
	if err != nil {
		t.Fatal(err)
	}
	if curve.MinAccessBytes() != chain.FusedAlgoMinBytes() {
		t.Fatal("conv chain fusion floor wrong")
	}
}

func TestFacadeChainFromEinsums(t *testing.T) {
	a, err := ParseEinsum("C[m,n]=A[m,k]*W[k,n]{M=64,K=16,N=64}")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseEinsum("D[m,n]=C[m,k]*V[k,n]{M=64,K=64,N=16}")
	if err != nil {
		t.Fatal(err)
	}
	chain, err := ChainFromEinsums("pair", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Len() != 2 || chain.M != 64 {
		t.Fatalf("chain = %+v", chain)
	}
	// Width mismatch rejected.
	bad, _ := ParseEinsum("D[m,n]=C[m,k]*V[k,n]{M=64,K=32,N=16}")
	if _, err := ChainFromEinsums("bad", a, bad); err == nil {
		t.Fatal("mismatched chain accepted")
	}
	// Non-GEMM rejected.
	conv, _ := ParseEinsum("B[p,q,n]=A[p+r,q+s,c]*W[c,n,r,s]{P=4,Q=4,N=4,C=4,R=3,S=3}")
	if _, err := ChainFromEinsums("bad", conv); err == nil {
		t.Fatal("non-GEMM chain accepted")
	}
}

func TestFacadeFusionVariants(t *testing.T) {
	chain := MustChain("pair", 64,
		GEMMOp("g0", 64, 16, 64),
		GEMMOp("g1", 64, 64, 16))
	pipe, err := PipelinedFusion(chain)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := TiledFusionWithPartialSpill(chain)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := TiledFusion(chain)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.MinBufferBytes() <= tiled.MinBufferBytes() {
		t.Fatal("pipelined should need more buffer than sequential")
	}
	if spill.MinBufferBytes() > tiled.MinBufferBytes() {
		t.Fatal("partial spill should not need more buffer")
	}
}

func TestFacadeSpillOption(t *testing.T) {
	g := GEMM("g", 32, 32, 32)
	paper := Bound(g, Options{})
	charged := Bound(g, Options{ChargeSpills: true})
	if charged.MinAccessBytes() != paper.MinAccessBytes() {
		t.Fatal("floors should agree (no spills at full buffering)")
	}
}

func TestFacadeImperfectOption(t *testing.T) {
	g := GEMM("g", 48, 36, 60)
	perfect := Bound(g, Options{})
	imperfect := Bound(g, Options{ImperfectExtra: 8})
	if imperfect.Len() <= perfect.Len() {
		t.Fatal("imperfect factors should add breakpoints")
	}
}
