package pareto

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func buildCurve(pts ...Point) *Curve { return FromPoints(pts) }

func TestFrontierPruning(t *testing.T) {
	c := buildCurve(
		Point{100, 1000},
		Point{100, 900},  // dominates previous at same buffer
		Point{200, 950},  // dominated (more buffer, more accesses)
		Point{200, 800},  // kept
		Point{300, 800},  // dominated (same accesses, more buffer)
		Point{400, 500},  // kept
		Point{50, 2000},  // kept (smallest buffer)
		Point{500, 5000}, // dominated
	)
	want := []Point{{50, 2000}, {100, 900}, {200, 800}, {400, 500}}
	got := c.Points()
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
}

func TestAccessesAt(t *testing.T) {
	c := buildCurve(Point{100, 1000}, Point{200, 500}, Point{400, 100})
	cases := []struct {
		buf  int64
		want int64
		ok   bool
	}{
		{50, 0, false},
		{100, 1000, true},
		{150, 1000, true},
		{200, 500, true},
		{399, 500, true},
		{400, 100, true},
		{1 << 40, 100, true},
	}
	for _, cs := range cases {
		got, ok := c.AccessesAt(cs.buf)
		if ok != cs.ok || got != cs.want {
			t.Fatalf("AccessesAt(%d) = (%d,%v), want (%d,%v)", cs.buf, got, ok, cs.want, cs.ok)
		}
	}
}

func TestBufferFor(t *testing.T) {
	c := buildCurve(Point{100, 1000}, Point{200, 500}, Point{400, 100})
	if b, ok := c.BufferFor(500); !ok || b != 200 {
		t.Fatalf("BufferFor(500) = (%d,%v), want (200,true)", b, ok)
	}
	if b, ok := c.BufferFor(499); !ok || b != 400 {
		t.Fatalf("BufferFor(499) = (%d,%v), want (400,true)", b, ok)
	}
	if _, ok := c.BufferFor(99); ok {
		t.Fatal("BufferFor(99) should be infeasible")
	}
	if b, ok := c.BufferFor(1 << 40); !ok || b != 100 {
		t.Fatalf("BufferFor(huge) = (%d,%v), want (100,true)", b, ok)
	}
}

func TestExtremes(t *testing.T) {
	c := buildCurve(Point{100, 1000}, Point{400, 100})
	if c.MinAccessBytes() != 100 {
		t.Fatalf("MinAccessBytes = %d", c.MinAccessBytes())
	}
	if c.MaxEffectualBufferBytes() != 400 {
		t.Fatalf("MaxEffectualBufferBytes = %d", c.MaxEffectualBufferBytes())
	}
	if c.MinBufferBytes() != 100 {
		t.Fatalf("MinBufferBytes = %d", c.MinBufferBytes())
	}
	empty := &Curve{}
	if !empty.Empty() || empty.MinAccessBytes() != 0 || empty.MaxEffectualBufferBytes() != 0 {
		t.Fatal("empty-curve extremes should be zero")
	}
}

func TestGaps(t *testing.T) {
	c := buildCurve(Point{100, 1000}, Point{400, 100})
	c.AlgoMinBytes = 100
	c.TotalOperandBytes = 800
	if g, ok := c.Gap0(100); !ok || g != 10 {
		t.Fatalf("Gap0(100) = (%f,%v), want (10,true)", g, ok)
	}
	if g, ok := c.Gap0(400); !ok || g != 1 {
		t.Fatalf("Gap0(400) = (%f,%v)", g, ok)
	}
	if _, ok := c.Gap0(1); ok {
		t.Fatal("Gap0 below min buffer should be infeasible")
	}
	if g, ok := c.Gap1(); !ok || g != 0.5 {
		t.Fatalf("Gap1 = (%f,%v), want (0.5,true)", g, ok)
	}
	unannotated := buildCurve(Point{1, 1})
	if _, ok := unannotated.Gap0(10); ok {
		t.Fatal("Gap0 without annotation should be unavailable")
	}
	if _, ok := unannotated.Gap1(); ok {
		t.Fatal("Gap1 without annotation should be unavailable")
	}
}

func TestSum(t *testing.T) {
	a := buildCurve(Point{100, 1000}, Point{200, 400})
	b := buildCurve(Point{150, 600}, Point{300, 200})
	s := Sum(a, b)
	// Feasible from 150 (both defined): at 150: 1000+600; 200: 400+600;
	// 300: 400+200.
	cases := []struct{ buf, want int64 }{
		{150, 1600}, {200, 1000}, {300, 600},
	}
	for _, cs := range cases {
		got, ok := s.AccessesAt(cs.buf)
		if !ok || got != cs.want {
			t.Fatalf("Sum.AccessesAt(%d) = (%d,%v), want %d", cs.buf, got, ok, cs.want)
		}
	}
	if _, ok := s.AccessesAt(120); ok {
		t.Fatal("Sum should be infeasible where a component is infeasible")
	}
}

func TestMergeMin(t *testing.T) {
	a := buildCurve(Point{100, 1000}, Point{300, 900})
	b := buildCurve(Point{200, 500})
	m := MergeMin(a, b)
	if got, ok := m.AccessesAt(100); !ok || got != 1000 {
		t.Fatalf("MergeMin at 100 = (%d,%v)", got, ok)
	}
	if got, ok := m.AccessesAt(250); !ok || got != 500 {
		t.Fatalf("MergeMin at 250 = (%d,%v)", got, ok)
	}
	if got, ok := m.AccessesAt(1 << 30); !ok || got != 500 {
		t.Fatalf("MergeMin at large = (%d,%v)", got, ok)
	}
}

func TestScaleShiftAdd(t *testing.T) {
	c := buildCurve(Point{100, 1000}, Point{400, 100})
	c.AlgoMinBytes = 10
	s := c.ScaleAccesses(3)
	if got, _ := s.AccessesAt(100); got != 3000 {
		t.Fatalf("ScaleAccesses: got %d", got)
	}
	if s.AlgoMinBytes != 30 {
		t.Fatalf("ScaleAccesses annotation: %d", s.AlgoMinBytes)
	}
	sh := c.ShiftBuffer(50)
	if _, ok := sh.AccessesAt(100); ok {
		t.Fatal("ShiftBuffer: old breakpoint should now be infeasible")
	}
	if got, _ := sh.AccessesAt(150); got != 1000 {
		t.Fatalf("ShiftBuffer: got %d", got)
	}
	ad := c.AddAccesses(7)
	if got, _ := ad.AccessesAt(400); got != 107 {
		t.Fatalf("AddAccesses: got %d", got)
	}
	// Originals untouched.
	if got, _ := c.AccessesAt(100); got != 1000 {
		t.Fatal("ScaleAccesses/ShiftBuffer mutated the source curve")
	}
}

func TestBuilderCompaction(t *testing.T) {
	b := NewBuilder()
	rng := rand.New(rand.NewSource(42))
	type raw struct{ buf, acc int64 }
	var all []raw
	for i := 0; i < 100000; i++ {
		p := raw{rng.Int63n(1 << 20), rng.Int63n(1 << 30)}
		all = append(all, p)
		b.Add(p.buf, p.acc)
	}
	c := b.Curve()
	// Frontier invariants.
	pts := c.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].BufferBytes <= pts[i-1].BufferBytes ||
			pts[i].AccessBytes >= pts[i-1].AccessBytes {
			t.Fatalf("frontier violated at %d: %v %v", i, pts[i-1], pts[i])
		}
	}
	// Every raw point is dominated by (or on) the curve.
	for _, p := range all {
		acc, ok := c.AccessesAt(p.buf)
		if !ok || acc > p.acc {
			t.Fatalf("raw point (%d,%d) beats the frontier (%d,%v)", p.buf, p.acc, acc, ok)
		}
	}
}

func TestBuilderKeepsHugeAllOptimalFrontier(t *testing.T) {
	// Adversarial input for the on-the-fly compaction: more Pareto-optimal
	// points than the initial capLimit (1 << 14). Compaction cannot shrink
	// the slice, so the Builder must raise its threshold instead of
	// thrashing — and every point must survive to the final curve.
	const n = (1 << 14) + 1000
	b := NewBuilder()
	for i := int64(0); i < n; i++ {
		b.Add(i+1, n-i)
	}
	c := b.Curve()
	if c.Len() != n {
		t.Fatalf("frontier has %d points, want all %d (all were Pareto-optimal)", c.Len(), n)
	}
	pts := c.Points()
	for i := int64(0); i < n; i++ {
		if pts[i] != (Point{i + 1, n - i}) {
			t.Fatalf("point %d = %v, want {%d %d}", i, pts[i], i+1, n-i)
		}
	}
}

func TestUnionMatchesSerialUnderConcurrency(t *testing.T) {
	// N goroutines each build a frontier over a shard of one point set;
	// Union of the partial curves must equal the frontier built serially
	// over all points — the invariant parallel traversal rests on.
	rng := rand.New(rand.NewSource(7))
	const total, shards = 40000, 8
	all := make([]Point, total)
	for i := range all {
		all[i] = Point{rng.Int63n(1<<16) + 1, rng.Int63n(1<<24) + 1}
	}
	curves := make([]*Curve, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			b := NewBuilder()
			for i := s; i < total; i += shards {
				b.Add(all[i].BufferBytes, all[i].AccessBytes)
			}
			curves[s] = b.Curve()
		}(s)
	}
	wg.Wait()
	got := Union(curves...)
	want := FromPoints(all)
	gp, wp := got.Points(), want.Points()
	if len(gp) != len(wp) {
		t.Fatalf("union has %d points, serial reference %d", len(gp), len(wp))
	}
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("point %d: union %v, serial %v", i, gp[i], wp[i])
		}
	}
}

func TestUnionSkipsNilAndEmpty(t *testing.T) {
	a := buildCurve(Point{100, 1000}, Point{200, 500})
	got := Union(nil, a, &Curve{}, nil)
	if got.Len() != a.Len() {
		t.Fatalf("union = %v", got.Points())
	}
	if Union().Len() != 0 {
		t.Fatal("empty union should be empty")
	}
}

func TestFrontierProperty(t *testing.T) {
	f := func(seeds []uint32) bool {
		if len(seeds) == 0 {
			return true
		}
		b := NewBuilder()
		var raws []Point
		for _, s := range seeds {
			p := Point{int64(s % 1024), int64((s / 1024) % 4096)}
			if p.BufferBytes == 0 {
				p.BufferBytes = 1
			}
			if p.AccessBytes == 0 {
				p.AccessBytes = 1
			}
			raws = append(raws, p)
			b.Add(p.BufferBytes, p.AccessBytes)
		}
		c := b.Curve()
		pts := c.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i].BufferBytes <= pts[i-1].BufferBytes ||
				pts[i].AccessBytes >= pts[i-1].AccessBytes {
				return false
			}
		}
		for _, p := range raws {
			acc, ok := c.AccessesAt(p.BufferBytes)
			if !ok || acc > p.AccessBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStringAndTable(t *testing.T) {
	c := buildCurve(Point{1 << 20, 1 << 30}, Point{1 << 21, 1 << 29})
	if c.String() == "" || c.Table() == "" {
		t.Fatal("String/Table should be non-empty")
	}
	if (&Curve{}).String() != "pareto.Curve{empty}" {
		t.Fatal("empty curve String")
	}
}
