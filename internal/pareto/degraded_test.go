package pareto

import (
	"encoding/json"
	"testing"
)

func degradedCurve(pts ...Point) *Curve {
	c := FromPoints(pts)
	c.Degraded = true
	return c
}

// TestSumCarriesDegraded pins the satellite requirement: summing a partial
// segment curve with full ones must carry — not silently drop — the
// degraded annotation the HTTP envelope reports.
func TestSumCarriesDegraded(t *testing.T) {
	full := FromPoints([]Point{{BufferBytes: 10, AccessBytes: 100}, {BufferBytes: 20, AccessBytes: 50}})
	partial := degradedCurve(Point{BufferBytes: 10, AccessBytes: 200})

	sum := Sum(full, partial)
	if !sum.Degraded {
		t.Fatal("Sum(full, degraded) dropped the degraded flag")
	}
	if Sum(full, full).Degraded {
		t.Fatal("Sum of complete curves must not be degraded")
	}
}

func TestMergeMinCarriesDegraded(t *testing.T) {
	full := FromPoints([]Point{{BufferBytes: 10, AccessBytes: 100}})
	partial := degradedCurve(Point{BufferBytes: 5, AccessBytes: 300})

	// The degraded input must taint the merge even when it is not the
	// first curve (MergeMin takes its other annotations from the first).
	min := MergeMin(full, partial)
	if !min.Degraded {
		t.Fatal("MergeMin(full, degraded) dropped the degraded flag")
	}
	if MergeMin(full, full).Degraded {
		t.Fatal("MergeMin of complete curves must not be degraded")
	}
}

func TestUnionCarriesDegraded(t *testing.T) {
	full := FromPoints([]Point{{BufferBytes: 10, AccessBytes: 100}})
	partial := degradedCurve(Point{BufferBytes: 5, AccessBytes: 300})
	if !Union(full, nil, partial).Degraded {
		t.Fatal("Union with a degraded input dropped the degraded flag")
	}
	if Union(full, full).Degraded {
		t.Fatal("Union of complete curves must not be degraded")
	}
}

func TestCurveCopiesCarryDegraded(t *testing.T) {
	partial := degradedCurve(Point{BufferBytes: 5, AccessBytes: 300})
	if !partial.ScaleAccesses(2).Degraded {
		t.Fatal("ScaleAccesses dropped the degraded flag")
	}
	if !partial.ShiftBuffer(1).Degraded {
		t.Fatal("ShiftBuffer dropped the degraded flag")
	}
	if !partial.AddAccesses(1).Degraded {
		t.Fatal("AddAccesses dropped the degraded flag")
	}
}

func TestDegradedJSONRoundTrip(t *testing.T) {
	partial := degradedCurve(Point{BufferBytes: 5, AccessBytes: 300})
	data, err := json.Marshal(partial)
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Degraded {
		t.Fatal("degraded flag lost in JSON round trip")
	}

	// Complete curves serialize without the field, so existing partials
	// and cached responses keep their exact bytes.
	full := FromPoints([]Point{{BufferBytes: 10, AccessBytes: 100}})
	data, err = json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"points":[{"BufferBytes":10,"AccessBytes":100}]}` {
		t.Fatalf("complete curve serialization changed: %s", data)
	}
}

func TestCanonicalDistinguishesDegraded(t *testing.T) {
	full := FromPoints([]Point{{BufferBytes: 5, AccessBytes: 300}})
	partial := degradedCurve(Point{BufferBytes: 5, AccessBytes: 300})
	if full.Canonical() == partial.Canonical() {
		t.Fatal("Canonical() must distinguish degraded from complete curves")
	}
	want := "curve{algo=0 tot=0 pts=[5:300]}"
	if got := full.Canonical(); got != want {
		t.Fatalf("Canonical() = %q, want %q", got, want)
	}
}
