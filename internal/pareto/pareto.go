// Package pareto provides the ski-slope curve at the heart of Orojenesis:
// the Pareto frontier of (buffer size requirement, backing-store accesses)
// over all mappings of a workload. It supports the queries the paper builds
// its analyses on — accesses attainable at a capacity (Gap 0), the maximal
// effectual buffer size (Gap 1) — and the curve algebra needed for chains:
// summation (unfused execution), pointwise minimum (best segmentation),
// access scaling (batched instances) and buffer shifting (untiled fusion).
package pareto

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/shape"
)

// Point is one Pareto-optimal (buffer, accesses) pair, both in bytes.
type Point struct {
	BufferBytes int64
	AccessBytes int64
}

// Curve is a Pareto frontier: points sorted by ascending buffer size with
// strictly decreasing access counts. The curve is a staircase bound:
// with capacity c, the attainable minimum is the accesses of the largest
// point whose buffer requirement does not exceed c.
type Curve struct {
	pts []Point

	// AlgoMinBytes and TotalOperandBytes annotate the workload the curve
	// was derived for; they normalize the Gap 0 and Gap 1 queries.
	AlgoMinBytes      int64
	TotalOperandBytes int64

	// Degraded marks a curve derived from an incomplete sweep (a degraded
	// shard merge): the frontier is an over-approximation — real optima
	// from the missing share may lie below it. The flag is sticky through
	// the curve algebra: any composition with a degraded input is itself
	// degraded.
	Degraded bool
}

// Points returns the frontier points in ascending buffer order. The
// returned slice must not be modified.
func (c *Curve) Points() []Point { return c.pts }

// Len returns the number of frontier points.
func (c *Curve) Len() int { return len(c.pts) }

// Empty reports whether the curve has no points.
func (c *Curve) Empty() bool { return len(c.pts) == 0 }

// AccessesAt returns the minimal attainable backing-store accesses with a
// buffer capacity of at most buf bytes. ok is false if no mapping fits.
func (c *Curve) AccessesAt(buf int64) (accesses int64, ok bool) {
	// Largest point with BufferBytes <= buf.
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].BufferBytes > buf })
	if i == 0 {
		return 0, false
	}
	return c.pts[i-1].AccessBytes, true
}

// MinAccessBytes returns the global minimum accesses on the curve (the
// bottom of the ski slope).
func (c *Curve) MinAccessBytes() int64 {
	if len(c.pts) == 0 {
		return 0
	}
	return c.pts[len(c.pts)-1].AccessBytes
}

// MinBufferBytes returns the smallest buffer requirement of any mapping.
func (c *Curve) MinBufferBytes() int64 {
	if len(c.pts) == 0 {
		return 0
	}
	return c.pts[0].BufferBytes
}

// MaxEffectualBufferBytes returns the smallest buffer size that attains the
// curve's minimum accesses — the "ridge point" of the OI mesa. Capacity
// beyond this value cannot reduce data movement.
func (c *Curve) MaxEffectualBufferBytes() int64 {
	if len(c.pts) == 0 {
		return 0
	}
	return c.pts[len(c.pts)-1].BufferBytes
}

// BufferFor returns the smallest buffer capacity whose attainable accesses
// are at most target. ok is false if the curve never reaches target.
func (c *Curve) BufferFor(target int64) (buf int64, ok bool) {
	// Points are sorted by buffer asc / accesses desc; find the first
	// point with accesses <= target.
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].AccessBytes <= target })
	if i == len(c.pts) {
		return 0, false
	}
	return c.pts[i].BufferBytes, true
}

// Gap0 returns the ratio of attainable accesses at capacity buf to the
// algorithmic minimum (Fig. 1's Gap 0). ok is false when no mapping fits
// in buf or the curve lacks an algorithmic-minimum annotation.
func (c *Curve) Gap0(buf int64) (float64, bool) {
	if c.AlgoMinBytes <= 0 {
		return 0, false
	}
	acc, ok := c.AccessesAt(buf)
	if !ok {
		return 0, false
	}
	return float64(acc) / float64(c.AlgoMinBytes), true
}

// Gap1 returns the maximal effectual buffer size normalized to the total
// operand size (Fig. 1's Gap 1, plotted in Figs. 3 and 11).
func (c *Curve) Gap1() (float64, bool) {
	if c.TotalOperandBytes <= 0 || len(c.pts) == 0 {
		return 0, false
	}
	return float64(c.MaxEffectualBufferBytes()) / float64(c.TotalOperandBytes), true
}

// String renders a short summary.
func (c *Curve) String() string {
	if len(c.pts) == 0 {
		return "pareto.Curve{empty}"
	}
	return fmt.Sprintf("pareto.Curve{%d pts, buf %s..%s, acc %s..%s}",
		len(c.pts),
		shape.FormatBytes(c.pts[0].BufferBytes),
		shape.FormatBytes(c.pts[len(c.pts)-1].BufferBytes),
		shape.FormatBytes(c.pts[0].AccessBytes),
		shape.FormatBytes(c.pts[len(c.pts)-1].AccessBytes))
}

// Table renders the frontier as aligned text rows (buffer, accesses),
// useful for quick inspection in examples and benchmarks.
func (c *Curve) Table() string {
	var b strings.Builder
	for _, p := range c.pts {
		fmt.Fprintf(&b, "%12d  %14d    %10s  %12s\n",
			p.BufferBytes, p.AccessBytes,
			shape.FormatBytes(p.BufferBytes), shape.FormatBytes(p.AccessBytes))
	}
	return b.String()
}

// Canonical renders the curve as a deterministic one-line encoding —
// annotations, degraded flag, and every frontier point — for use in
// content digests (e.g. a shard manifest whose workload includes input
// curves). Two curves have equal encodings iff they are semantically
// identical.
func (c *Curve) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "curve{algo=%d tot=%d", c.AlgoMinBytes, c.TotalOperandBytes)
	if c.Degraded {
		b.WriteString(" degraded")
	}
	b.WriteString(" pts=[")
	for i, p := range c.pts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", p.BufferBytes, p.AccessBytes)
	}
	b.WriteString("]}")
	return b.String()
}

// FromPoints builds a curve from arbitrary points, keeping only the Pareto
// frontier.
func FromPoints(pts []Point) *Curve {
	b := NewBuilder()
	for _, p := range pts {
		b.Add(p.BufferBytes, p.AccessBytes)
	}
	return b.Curve()
}

// Builder accumulates (buffer, accesses) observations from a mapspace
// traversal and compacts them to the Pareto frontier on the fly, so
// million-point searches keep constant memory.
type Builder struct {
	pts      []Point
	capLimit int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{capLimit: 1 << 14}
}

// Add records one mapping's buffer requirement and access count.
func (b *Builder) Add(bufBytes, accessBytes int64) {
	b.pts = append(b.pts, Point{BufferBytes: bufBytes, AccessBytes: accessBytes})
	if len(b.pts) >= b.capLimit {
		b.pts = frontier(b.pts)
		// If the frontier itself is huge, raise the compaction threshold
		// so we still make forward progress.
		if len(b.pts)*2 >= b.capLimit {
			b.capLimit *= 2
		}
	}
}

// AddCurve merges every point of another curve.
func (b *Builder) AddCurve(c *Curve) {
	for _, p := range c.pts {
		b.Add(p.BufferBytes, p.AccessBytes)
	}
}

// Curve compacts and returns the accumulated Pareto frontier.
func (b *Builder) Curve() *Curve {
	return &Curve{pts: frontier(b.pts)}
}

// frontier reduces points to the Pareto-optimal staircase: ascending
// buffer, strictly descending accesses.
func frontier(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].BufferBytes != sorted[j].BufferBytes {
			return sorted[i].BufferBytes < sorted[j].BufferBytes
		}
		return sorted[i].AccessBytes < sorted[j].AccessBytes
	})
	out := sorted[:0]
	for _, p := range sorted {
		// Drop points dominated by the best-so-far.
		if n := len(out); n > 0 {
			if p.AccessBytes >= out[n-1].AccessBytes {
				continue
			}
			if p.BufferBytes == out[n-1].BufferBytes {
				out[n-1] = p
				continue
			}
		}
		out = append(out, p)
	}
	return append([]Point(nil), out...)
}

// Sum composes curves for workloads executed back to back sharing one
// buffer (the paper's unfused baseline): at every capacity, total accesses
// are the sum of each curve's attainable accesses. Capacities where any
// component has no feasible mapping are excluded. Annotations are summed.
func Sum(curves ...*Curve) *Curve {
	if len(curves) == 0 {
		return &Curve{}
	}
	bufs := breakpoints(curves)
	var pts []Point
	for _, buf := range bufs {
		total := int64(0)
		feasible := true
		for _, c := range curves {
			acc, ok := c.AccessesAt(buf)
			if !ok {
				feasible = false
				break
			}
			total += acc
		}
		if feasible {
			pts = append(pts, Point{BufferBytes: buf, AccessBytes: total})
		}
	}
	out := FromPoints(pts)
	for _, c := range curves {
		out.AlgoMinBytes += c.AlgoMinBytes
		out.TotalOperandBytes += c.TotalOperandBytes
		out.Degraded = out.Degraded || c.Degraded
	}
	return out
}

// Union merges the points of several curves into a single Pareto frontier
// — the reduction step of a parallel traversal, where each worker built a
// frontier over its share of the mapspace. Because dominance over the
// union is what frontier computes, the result is identical to building
// one frontier over all underlying points, regardless of how they were
// partitioned. nil curves are skipped. Annotations are not merged: the
// partial curves describe shares of one workload, so callers annotate the
// merged curve themselves.
func Union(curves ...*Curve) *Curve {
	total := 0
	for _, c := range curves {
		if c != nil {
			total += len(c.pts)
		}
	}
	pts := make([]Point, 0, total)
	degraded := false
	for _, c := range curves {
		if c != nil {
			pts = append(pts, c.pts...)
			degraded = degraded || c.Degraded
		}
	}
	return &Curve{pts: frontier(pts), Degraded: degraded}
}

// MergeMin composes alternatives (e.g. different segmentation strategies):
// at every capacity the best alternative is chosen. Annotations are taken
// from the first curve.
func MergeMin(curves ...*Curve) *Curve {
	if len(curves) == 0 {
		return &Curve{}
	}
	bufs := breakpoints(curves)
	var pts []Point
	for _, buf := range bufs {
		best := int64(-1)
		for _, c := range curves {
			if acc, ok := c.AccessesAt(buf); ok && (best < 0 || acc < best) {
				best = acc
			}
		}
		if best >= 0 {
			pts = append(pts, Point{BufferBytes: buf, AccessBytes: best})
		}
	}
	out := FromPoints(pts)
	out.AlgoMinBytes = curves[0].AlgoMinBytes
	out.TotalOperandBytes = curves[0].TotalOperandBytes
	for _, c := range curves {
		out.Degraded = out.Degraded || c.Degraded
	}
	return out
}

// ScaleAccesses returns a copy of c with every access count multiplied by
// k — the curve for k identical instances executed sequentially through
// the same buffer.
func (c *Curve) ScaleAccesses(k int64) *Curve {
	out := &Curve{
		pts:               make([]Point, len(c.pts)),
		AlgoMinBytes:      c.AlgoMinBytes * k,
		TotalOperandBytes: c.TotalOperandBytes * k,
		Degraded:          c.Degraded,
	}
	for i, p := range c.pts {
		out.pts[i] = Point{BufferBytes: p.BufferBytes, AccessBytes: p.AccessBytes * k}
	}
	return out
}

// ShiftBuffer returns a copy of c with delta bytes added to every buffer
// requirement — e.g. untiled fusion, which additionally pins the whole
// intermediate tensor in the buffer.
func (c *Curve) ShiftBuffer(delta int64) *Curve {
	out := &Curve{
		pts:               make([]Point, len(c.pts)),
		AlgoMinBytes:      c.AlgoMinBytes,
		TotalOperandBytes: c.TotalOperandBytes,
		Degraded:          c.Degraded,
	}
	for i, p := range c.pts {
		out.pts[i] = Point{BufferBytes: p.BufferBytes + delta, AccessBytes: p.AccessBytes}
	}
	return out
}

// AddAccesses returns a copy of c with a constant added to every access
// count (e.g. traffic of unfused layers appended to a fused chain's curve).
func (c *Curve) AddAccesses(delta int64) *Curve {
	out := &Curve{
		pts:               make([]Point, len(c.pts)),
		AlgoMinBytes:      c.AlgoMinBytes,
		TotalOperandBytes: c.TotalOperandBytes,
		Degraded:          c.Degraded,
	}
	for i, p := range c.pts {
		out.pts[i] = Point{BufferBytes: p.BufferBytes, AccessBytes: p.AccessBytes + delta}
	}
	return out
}

func breakpoints(curves []*Curve) []int64 {
	set := map[int64]bool{}
	for _, c := range curves {
		for _, p := range c.pts {
			set[p.BufferBytes] = true
		}
	}
	out := make([]int64, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
