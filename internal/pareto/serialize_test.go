package pareto

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	c := FromPoints([]Point{
		{BufferBytes: 100, AccessBytes: 1000},
		{BufferBytes: 400, AccessBytes: 100},
	})
	c.AlgoMinBytes = 50
	c.TotalOperandBytes = 800

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AlgoMinBytes != 50 || back.TotalOperandBytes != 800 {
		t.Fatalf("annotations lost: %+v", back)
	}
	if back.Len() != c.Len() {
		t.Fatalf("point count changed: %d vs %d", back.Len(), c.Len())
	}
	for i, p := range back.Points() {
		if p != c.Points()[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestUnmarshalRederivesFrontier(t *testing.T) {
	// A hand-edited file with dominated points must come back clean.
	raw := `{"points":[
		{"BufferBytes":100,"AccessBytes":1000},
		{"BufferBytes":200,"AccessBytes":2000},
		{"BufferBytes":400,"AccessBytes":100}]}`
	var c Curve
	if err := json.Unmarshal([]byte(raw), &c); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("dominated point survived: %v", c.Points())
	}
}

func TestUnmarshalRejectsBadPoints(t *testing.T) {
	raw := `{"points":[{"BufferBytes":0,"AccessBytes":10}]}`
	var c Curve
	if err := json.Unmarshal([]byte(raw), &c); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := FromPoints([]Point{
		{BufferBytes: 128, AccessBytes: 4096},
		{BufferBytes: 512, AccessBytes: 1024},
	})
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost points: %v", back.Points())
	}
	if got, _ := back.AccessesAt(128); got != 4096 {
		t.Fatalf("round trip altered data: %d", got)
	}
}

func TestReadCSVToleratesCommentsAndBlank(t *testing.T) {
	in := "# a comment\nbuffer_bytes,access_bytes\n\n10,100\n20,50\n"
	c, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("parsed %d points", c.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"10\n",
		"a,b\n",
		"10,0\n",
		"-5,10\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}
