package pareto

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	c := FromPoints([]Point{
		{BufferBytes: 100, AccessBytes: 1000},
		{BufferBytes: 400, AccessBytes: 100},
	})
	c.AlgoMinBytes = 50
	c.TotalOperandBytes = 800

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Curve
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.AlgoMinBytes != 50 || back.TotalOperandBytes != 800 {
		t.Fatalf("annotations lost: %+v", back)
	}
	if back.Len() != c.Len() {
		t.Fatalf("point count changed: %d vs %d", back.Len(), c.Len())
	}
	for i, p := range back.Points() {
		if p != c.Points()[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestUnmarshalRederivesFrontier(t *testing.T) {
	// A hand-edited file with dominated points must come back clean.
	raw := `{"points":[
		{"BufferBytes":100,"AccessBytes":1000},
		{"BufferBytes":200,"AccessBytes":2000},
		{"BufferBytes":400,"AccessBytes":100}]}`
	var c Curve
	if err := json.Unmarshal([]byte(raw), &c); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("dominated point survived: %v", c.Points())
	}
}

func TestUnmarshalRejectsBadPoints(t *testing.T) {
	raw := `{"points":[{"BufferBytes":0,"AccessBytes":10}]}`
	var c Curve
	if err := json.Unmarshal([]byte(raw), &c); err == nil {
		t.Fatal("zero buffer accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := FromPoints([]Point{
		{BufferBytes: 128, AccessBytes: 4096},
		{BufferBytes: 512, AccessBytes: 1024},
	})
	var b strings.Builder
	if _, err := c.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost points: %v", back.Points())
	}
	if got, _ := back.AccessesAt(128); got != 4096 {
		t.Fatalf("round trip altered data: %d", got)
	}
}

func TestReadCSVToleratesCommentsAndBlank(t *testing.T) {
	in := "# a comment\nbuffer_bytes,access_bytes\n\n10,100\n20,50\n"
	c, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("parsed %d points", c.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"10\n",
		"a,b\n",
		"10,0\n",
		"-5,10\n",
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestUnmarshalValidatesAnnotations(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"negative algo min", `{"algo_min_bytes":-1,"points":[{"BufferBytes":10,"AccessBytes":100}]}`},
		{"negative operand total", `{"total_operand_bytes":-5,"points":[{"BufferBytes":10,"AccessBytes":100}]}`},
		{"point below algo min", `{"algo_min_bytes":200,"points":[
			{"BufferBytes":10,"AccessBytes":500},
			{"BufferBytes":40,"AccessBytes":100}]}`},
	}
	for _, c := range cases {
		var cv Curve
		if err := json.Unmarshal([]byte(c.raw), &cv); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}

	// The boundary case is legal: a point exactly at the algorithmic
	// minimum is the bottom of the ski slope.
	var ok Curve
	raw := `{"algo_min_bytes":100,"total_operand_bytes":300,"points":[{"BufferBytes":10,"AccessBytes":100}]}`
	if err := json.Unmarshal([]byte(raw), &ok); err != nil {
		t.Fatalf("curve at its algorithmic minimum rejected: %v", err)
	}
}

// TestAnnotatedRoundTripDerived pins round-tripping of real derived
// curves (which always satisfy the annotation invariants), including
// through curve algebra that transforms annotations.
func TestAnnotatedRoundTripDerived(t *testing.T) {
	base := FromPoints([]Point{
		{BufferBytes: 64, AccessBytes: 4000},
		{BufferBytes: 256, AccessBytes: 1200},
		{BufferBytes: 1024, AccessBytes: 600},
	})
	base.AlgoMinBytes = 600
	base.TotalOperandBytes = 900

	for name, c := range map[string]*Curve{
		"base":    base,
		"sum":     Sum(base, base),
		"scaled":  base.ScaleAccesses(3),
		"shifted": base.ShiftBuffer(512),
		"merged":  MergeMin(base, base.ShiftBuffer(128)),
	} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back Curve
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: round trip rejected: %v", name, err)
		}
		if back.AlgoMinBytes != c.AlgoMinBytes || back.TotalOperandBytes != c.TotalOperandBytes {
			t.Fatalf("%s: annotations changed: (%d, %d) -> (%d, %d)", name,
				c.AlgoMinBytes, c.TotalOperandBytes, back.AlgoMinBytes, back.TotalOperandBytes)
		}
		data2, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(data) != string(data2) {
			t.Fatalf("%s: round trip not byte-stable\n a %s\n b %s", name, data, data2)
		}
	}
}
