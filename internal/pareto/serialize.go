package pareto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization: a derived curve is portable across every architecture
// running the same algorithm (Sec. III-B), so saving it once and loading
// it into later DSE sessions is a first-class workflow.

type curveJSON struct {
	AlgoMinBytes      int64   `json:"algo_min_bytes,omitempty"`
	TotalOperandBytes int64   `json:"total_operand_bytes,omitempty"`
	Degraded          bool    `json:"degraded,omitempty"`
	Points            []Point `json:"points"`
}

// MarshalJSON encodes the curve with its annotations. Complete curves
// serialize exactly as before the degraded flag existed (omitempty), so
// byte-identity checks across shard merges are unaffected.
func (c *Curve) MarshalJSON() ([]byte, error) {
	return json.Marshal(curveJSON{
		AlgoMinBytes:      c.AlgoMinBytes,
		TotalOperandBytes: c.TotalOperandBytes,
		Degraded:          c.Degraded,
		Points:            c.pts,
	})
}

// UnmarshalJSON decodes a curve, re-deriving the Pareto frontier so that
// hand-edited files cannot violate the invariants, and validating the
// annotations against the points: annotations must be non-negative, and a
// positive AlgoMinBytes must not exceed any point's access count — the
// algorithmic minimum is a lower bound on every mapping's traffic, so a
// curve that dips below its own annotation is corrupt, not conservative.
// (TotalOperandBytes has no point-relative invariant: fusion transforms
// like ShiftBuffer legitimately move buffer requirements past it.)
func (c *Curve) UnmarshalJSON(data []byte) error {
	var cj curveJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	for _, p := range cj.Points {
		if p.BufferBytes < 1 || p.AccessBytes < 1 {
			return fmt.Errorf("pareto: non-positive point %+v", p)
		}
	}
	if cj.AlgoMinBytes < 0 {
		return fmt.Errorf("pareto: negative algo_min_bytes %d", cj.AlgoMinBytes)
	}
	if cj.TotalOperandBytes < 0 {
		return fmt.Errorf("pareto: negative total_operand_bytes %d", cj.TotalOperandBytes)
	}
	if cj.AlgoMinBytes > 0 {
		for _, p := range cj.Points {
			if p.AccessBytes < cj.AlgoMinBytes {
				return fmt.Errorf("pareto: point %+v moves less than the annotated algorithmic minimum %d bytes",
					p, cj.AlgoMinBytes)
			}
		}
	}
	c.pts = frontier(cj.Points)
	c.AlgoMinBytes = cj.AlgoMinBytes
	c.TotalOperandBytes = cj.TotalOperandBytes
	c.Degraded = cj.Degraded
	return nil
}

// WriteTo emits the curve as two-column CSV (buffer_bytes,access_bytes)
// with a header, satisfying io.WriterTo.
func (c *Curve) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintln(w, "buffer_bytes,access_bytes")
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, p := range c.pts {
		n, err := fmt.Fprintf(w, "%d,%d\n", p.BufferBytes, p.AccessBytes)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadCSV parses a two-column CSV (with or without the header) into a
// curve, re-deriving the frontier.
func ReadCSV(r io.Reader) (*Curve, error) {
	var pts []Point
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "buffer_bytes") || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("pareto: line %d: want 2 columns, got %q", line, text)
		}
		buf, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		acc, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err1 != nil || err2 != nil || buf < 1 || acc < 1 {
			return nil, fmt.Errorf("pareto: line %d: bad point %q", line, text)
		}
		pts = append(pts, Point{BufferBytes: buf, AccessBytes: acc})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromPoints(pts), nil
}
