package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/shard"
)

// ErrInvalidResponse marks a worker response that is not a structurally
// valid, complete, digest-compatible partial frontier for the dispatched
// shard: torn or truncated JSON, a foreign derivation's digests, the
// wrong shard slot, or an incomplete slice. The response bytes are
// quarantined for inspection and the dispatch is retried elsewhere — an
// invalid response can never reach the spool.
var ErrInvalidResponse = errors.New("fleet: invalid worker response")

// PermanentError is a worker rejection retries cannot fix: an HTTP 4xx
// other than 429 (invalid_request, invalid_workload,
// unsupported_version, worker_disabled). The same spec and plan would be
// rejected identically by every worker, so the coordinator fails the
// shard immediately instead of burning its retry budget.
type PermanentError struct {
	// Worker is the rejecting worker's base URL; Status its HTTP status.
	Worker string
	Status int
	// Code and Message are the structured error payload
	// (serve.ErrorInfo schema), when the worker sent one.
	Code    string
	Message string
}

// Error renders the rejection.
func (e *PermanentError) Error() string {
	return fmt.Sprintf("fleet: worker %s rejected dispatch: %d %s: %s", e.Worker, e.Status, e.Code, e.Message)
}

// RetryAfterError is a polite worker deferral: a 429 (saturated) or 503
// (draining) that carried a Retry-After hint. The coordinator holds that
// specific worker out of allocation for the hinted duration and retries
// the shard elsewhere immediately — without burning the retry budget or
// sleeping a generic backoff, because the worker told us exactly what is
// wrong and for how long (docs/fleet-protocol.md "Health, membership &
// breakers"). Deferrals never trip the worker's circuit breaker.
type RetryAfterError struct {
	// Worker is the deferring worker's base URL; Status its HTTP status
	// (429 or 503).
	Worker string
	Status int
	// After is the parsed, clamped hold duration.
	After time.Duration
	// Code and Message are the structured error payload
	// (serve.ErrorInfo schema), when the worker sent one.
	Code    string
	Message string
}

// Error renders the deferral.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("fleet: worker %s deferred dispatch for %v: %d %s: %s", e.Worker, e.After, e.Status, e.Code, e.Message)
}

// maxRetryAfter clamps worker Retry-After hints so a confused (or
// hostile) worker cannot hold itself out of the fleet indefinitely.
const maxRetryAfter = time.Minute

// parseRetryAfter parses a Retry-After header value — delta-seconds or
// an HTTP-date — into a clamped hold duration. A date in the past parses
// as a zero hold (the worker says "now is fine").
func parseRetryAfter(h string, now time.Time) (time.Duration, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0, false
		}
		return clampRetryAfter(time.Duration(secs) * time.Second), true
	}
	if t, err := http.ParseTime(h); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return clampRetryAfter(d), true
	}
	return 0, false
}

// clampRetryAfter bounds a hold at maxRetryAfter.
func clampRetryAfter(d time.Duration) time.Duration {
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// errorEnvelope mirrors serve's error body without importing serve
// (which imports this package).
type errorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// maxErrorBody bounds how much of an error response the coordinator
// reads; structured error payloads are tiny.
const maxErrorBody = 64 << 10

// post runs one dispatch: POST the spec and plan slot to worker's
// /v1/shard, then validate the response against the locally built
// expected manifest before anything is trusted. Returns the validated
// partial; or the path of a quarantined invalid response plus a
// retryable error; or a *PermanentError for deterministic rejections; or
// the context error when cancelled.
func (c *coord) post(ctx context.Context, slotPath string, plan shard.Plan, expected *shard.Manifest, worker string) (*shard.Partial, string, error) {
	if c.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
		defer cancel()
	}
	body, err := json.Marshal(ShardRequest{
		Spec:             c.data,
		ShardIndex:       plan.Index,
		ShardCount:       plan.Count,
		CheckpointEvery:  c.opts.CheckpointEvery,
		TimeoutMS:        c.opts.AttemptTimeout.Milliseconds(),
		MaxFormatVersion: shard.FormatVersion,
	})
	if err != nil {
		return nil, "", fmt.Errorf("fleet: encoding dispatch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, "", fmt.Errorf("fleet: building dispatch to %s: %w", worker, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.client().Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, "", cerr
		}
		return nil, "", fmt.Errorf("fleet: dispatch to %s: %w", worker, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var env errorEnvelope
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		_ = json.Unmarshal(data, &env)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
			return nil, "", &PermanentError{Worker: worker, Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
		}
		// A 429 (saturated) or 503 (draining) with a Retry-After hint is a
		// polite deferral: hold exactly that worker out for exactly that
		// long instead of a generic backoff-and-avoid.
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			if after, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
				return nil, "", &RetryAfterError{Worker: worker, Status: resp.StatusCode, After: after, Code: env.Error.Code, Message: env.Error.Message}
			}
		}
		// Unhinted 429/503, 504 (worker deadline — its checkpoint
		// survives) and 5xx all retry elsewhere.
		return nil, "", fmt.Errorf("fleet: worker %s answered %d %s: %s", worker, resp.StatusCode, env.Error.Code, env.Error.Message)
	}

	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// Mid-flight worker death or a torn stream: the body ended before
		// the response did. Retry elsewhere.
		if cerr := ctx.Err(); cerr != nil {
			return nil, "", cerr
		}
		return nil, "", fmt.Errorf("fleet: reading response from %s: %w", worker, err)
	}
	p, verr := validatePartial(data, plan, expected)
	if verr != nil {
		qpath := c.quarantineBytes(slotPath, data)
		return nil, qpath, fmt.Errorf("%w from %s: %v", ErrInvalidResponse, worker, verr)
	}
	return p, "", nil
}

// validatePartial parses and validates response bytes against the
// expected manifest: structural validity (shard.Manifest.Validate),
// digest compatibility (CompatibleWith — engine, kind, workload/options
// digests, space size, shard count), the right shard slot, completeness,
// and a present curve. Exactly the checks a merge would apply, applied
// before the bytes can touch the spool.
func validatePartial(data []byte, plan shard.Plan, expected *shard.Manifest) (*shard.Partial, error) {
	var p shard.Partial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("parsing partial: %w", err)
	}
	if err := p.Manifest.Validate(); err != nil {
		return nil, err
	}
	if err := expected.CompatibleWith(&p.Manifest); err != nil {
		return nil, fmt.Errorf("digest mismatch: %v", err)
	}
	if p.Manifest.ShardIndex != plan.Index {
		return nil, fmt.Errorf("shard %d/%d answered for slot %s", p.Manifest.ShardIndex+1, p.Manifest.ShardCount, plan)
	}
	if !p.Manifest.Complete() {
		return nil, fmt.Errorf("incomplete: completed through %d of [%d, %d)", p.Manifest.CompletedThrough, p.Manifest.RangeLo, p.Manifest.RangeHi)
	}
	if p.Curve == nil {
		return nil, fmt.Errorf("missing curve")
	}
	return &p, nil
}

// quarantineBytes writes an invalid response's bytes to the first free
// "<slot>.quarantine[.N]" file so the evidence survives next to the slot
// it tried to fill. Returns the path, or "" when even that write failed
// (logged; the dispatch error stands on its own).
func (c *coord) quarantineBytes(slotPath string, data []byte) string {
	for i := 0; ; i++ {
		qpath := slotPath + ".quarantine"
		if i > 0 {
			qpath = fmt.Sprintf("%s.quarantine.%d", slotPath, i)
		}
		f, err := os.OpenFile(qpath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			c.opts.logf("fleet: cannot quarantine invalid response at %s: %v", qpath, err)
			return ""
		}
		_, werr := f.Write(data)
		cerr := f.Close()
		if werr != nil || cerr != nil {
			c.opts.logf("fleet: writing quarantine %s: %v %v", qpath, werr, cerr)
		}
		c.quarantines.Add(1)
		return qpath
	}
}
