package fleet

import (
	"testing"
	"time"
)

// TestBreakerConsecutiveFailures walks the state machine through its
// main cycle: closed → open on the consecutive-failure threshold →
// half-open probe after the cooldown → re-open on probe failure →
// re-close on probe success.
func TestBreakerConsecutiveFailures(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second})

	for i := 0; i < 2; i++ {
		b.recordFailure(now)
	}
	if ok, _ := b.admissible(now); !ok || b.state != BreakerClosed {
		t.Fatalf("after 2 failures: state %v, want closed and admissible", b.state)
	}
	b.recordFailure(now)
	if b.state != BreakerOpen {
		t.Fatalf("after 3 failures: state %v, want open", b.state)
	}
	if ok, _ := b.admissible(now.Add(500 * time.Millisecond)); ok {
		t.Fatal("open breaker admitted a dispatch before its cooldown")
	}
	if at, ok := b.retryAt(); !ok || !at.Equal(now.Add(time.Second)) {
		t.Fatalf("retryAt %v ok=%v, want openedAt+cooldown", at, ok)
	}

	later := now.Add(time.Second)
	ok, probe := b.admissible(later)
	if !ok || !probe {
		t.Fatalf("cooldown elapsed: admissible=%v probe=%v, want probe admission", ok, probe)
	}
	b.probeAt()
	if b.state != BreakerHalfOpen {
		t.Fatalf("after probeAt: state %v, want half_open", b.state)
	}
	if ok, _ := b.admissible(later); ok {
		t.Fatal("half-open breaker admitted a second dispatch while its probe is in flight")
	}

	// Probe failure re-opens; a fresh cooldown applies.
	b.recordFailure(later)
	if b.state != BreakerOpen {
		t.Fatalf("after probe failure: state %v, want open", b.state)
	}
	if ok, _ := b.admissible(later.Add(999 * time.Millisecond)); ok {
		t.Fatal("re-opened breaker did not restart its cooldown")
	}

	// Probe success re-closes and resets the failure count.
	later = later.Add(time.Second)
	if ok, probe := b.admissible(later); !ok || !probe {
		t.Fatal("re-opened breaker refused its second probe")
	}
	b.probeAt()
	b.recordSuccess()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("after probe success: state %v fails %d, want closed with reset count", b.state, b.fails)
	}
}

// TestBreakerSuccessResetsCount pins that non-consecutive failures never
// open the breaker: a success between failures resets the streak.
func TestBreakerSuccessResetsCount(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second})
	for i := 0; i < 5; i++ {
		b.recordFailure(now)
		b.recordFailure(now)
		b.recordSuccess()
	}
	if b.state != BreakerClosed {
		t.Fatalf("interleaved failures opened the breaker: state %v", b.state)
	}
}

// TestBreakerRateTrigger pins the windowed error-rate trigger: failures
// that never run three-in-a-row still open the breaker once the window
// fills past the configured fraction — and never before the window is
// full.
func TestBreakerRateTrigger(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Failures: 10, Cooldown: time.Second, Rate: 0.5, Window: 4})

	// F S F: window not yet full, nothing trips.
	b.recordFailure(now)
	b.recordSuccess()
	b.recordFailure(now)
	if b.state != BreakerClosed {
		t.Fatalf("rate trigger fired on a part-full window: state %v", b.state)
	}
	// Fourth outcome fills the window at 3/4 failed >= 0.5: open, with the
	// consecutive count (2) still far below Failures (10).
	b.recordFailure(now)
	if b.state != BreakerOpen {
		t.Fatalf("full window at 75%% failure rate did not open: state %v", b.state)
	}
}

// TestBreakerLateFailureWhileOpen pins that outcomes of dispatches
// launched before the trip do not disturb an open breaker's cooldown.
func TestBreakerLateFailureWhileOpen(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second})
	b.recordFailure(now)
	if b.state != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	b.recordFailure(now.Add(900 * time.Millisecond))
	if at, _ := b.retryAt(); !at.Equal(now.Add(time.Second)) {
		t.Fatalf("late failure moved the cooldown: retryAt %v", at)
	}
}
