package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/shard"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// testSpec is the small bound workload the fleet tests dispatch.
func testSpec() *workload.Spec {
	return workload.NewBound(einsum.GEMM("gemm_32x24x16", 32, 24, 16), bound.Options{})
}

// wantCurve is the single-process reference curve, serialized.
func wantCurve(t *testing.T) string {
	t.Helper()
	data, err := json.Marshal(bound.Derive(einsum.GEMM("gemm_32x24x16", 32, 24, 16), bound.Options{Workers: 2}).Curve)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// deriveShardBytes implements the worker half of the protocol
// in-process (the serve endpoint is the production implementation; these
// tests cannot import serve, which imports this package): decode the
// spec, compile the plan slot, run the slice checkpointed, return the
// partial-frontier file bytes.
func deriveShardBytes(ctx context.Context, dir string, req *ShardRequest) ([]byte, error) {
	spec, err := workload.Decode(req.Spec)
	if err != nil {
		return nil, err
	}
	plan := shard.Plan{Index: req.ShardIndex, Count: req.ShardCount}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	job, err := spec.Compile(plan, workload.Exec{Workers: 2})
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", req.ShardIndex+1, req.ShardCount))
	if _, _, err := shard.Run(ctx, job, shard.RunOptions{Path: path, CheckpointEvery: req.CheckpointEvery}); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// decodeShardRequest reads a dispatch body.
func decodeShardRequest(t *testing.T, r *http.Request) *ShardRequest {
	t.Helper()
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		t.Errorf("worker: decoding dispatch: %v", err)
	}
	return &req
}

// newWorker starts a protocol-conformant worker; transform, when
// non-nil, rewrites the valid response bytes before they are sent (the
// fault-injection hook).
func newWorker(t *testing.T, transform func(w http.ResponseWriter, data []byte)) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := decodeShardRequest(t, r)
		data, err := deriveShardBytes(r.Context(), dir, req)
		if err != nil {
			http.Error(w, `{"error":{"code":"internal","message":"test worker failed"}}`, http.StatusInternalServerError)
			return
		}
		if transform != nil {
			transform(w, data)
			return
		}
		w.Write(data)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// assertCleanSpool verifies the never-a-corrupt-artifact post-condition:
// every file in the spool is either a valid partial frontier or an
// explicitly named quarantine file.
func assertCleanSpool(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.Contains(name, ".quarantine") || strings.Contains(name, ".corrupt") {
			continue
		}
		if _, err := shard.ReadPartial(filepath.Join(dir, name)); err != nil {
			t.Errorf("spool file %s is neither a valid partial nor quarantined: %v", name, err)
		}
	}
}

// TestFleetParity is the core acceptance: a fleet run over two workers
// merges to the byte-identical single-process curve, for N in {2, 4}.
func TestFleetParity(t *testing.T) {
	want := wantCurve(t)
	w1, w2 := newWorker(t, nil), newWorker(t, nil)
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			report, err := Run(context.Background(), testSpec(), n, Options{
				Workers: []string{w1.URL, w2.URL},
				Dir:     dir,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(report.Curve)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Fatalf("fleet curve differs from single-process derive\n got %s\nwant %s", got, want)
			}
			if report.Dispatches < int64(n) {
				t.Fatalf("dispatches %d, want >= %d", report.Dispatches, n)
			}
			assertCleanSpool(t, dir)
		})
	}
}

// TestFleetResumesSpooledPartials pins the killed-coordinator contract:
// a shard already complete in the spool is honored without a dispatch —
// even when every worker would refuse to re-derive it.
func TestFleetResumesSpooledPartials(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	// A previous coordinator's completed shard 0 of 2.
	job, err := spec.Compile(shard.Plan{Index: 0, Count: 2}, workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: supervise.ShardPath(dir, 0, 2)}); err != nil {
		t.Fatal(err)
	}

	// The worker refuses shard 0: only resume can complete it.
	refuse := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := decodeShardRequest(t, r)
		if req.ShardIndex == 0 {
			http.Error(w, `{"error":{"code":"internal","message":"must not re-dispatch shard 0"}}`, http.StatusInternalServerError)
			return
		}
		wdir := t.TempDir()
		data, err := deriveShardBytes(r.Context(), wdir, req)
		if err != nil {
			http.Error(w, `{"error":{"code":"internal","message":"worker failed"}}`, http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}))
	defer refuse.Close()

	report, err := Run(context.Background(), spec, 2, Options{
		Workers: []string{refuse.URL},
		Dir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Shards[0].Resumed {
		t.Fatal("shard 0 was not resumed from the spool")
	}
	if report.Shards[0].Dispatches != 0 {
		t.Fatalf("resumed shard was dispatched %d times", report.Shards[0].Dispatches)
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("resumed fleet curve differs from single-process derive")
	}
}

// TestFleetInterruptAndRerun pins coordinator cancellation: a cancelled
// run reports Interrupted without corrupting the spool, and a rerun on
// the same directory completes with the exact curve.
func TestFleetInterruptAndRerun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	blocked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body: the server only observes the coordinator hanging
		// up (r.Context cancellation) once the request is fully read.
		io.Copy(io.Discard, r.Body)
		cancel() // the dispatch is in flight: kill the coordinator now
		<-r.Context().Done()
	}))
	defer blocked.Close()

	dir := t.TempDir()
	report, err := Run(ctx, testSpec(), 2, Options{
		Workers: []string{blocked.URL},
		Dir:     dir,
	})
	if err == nil || !report.Interrupted {
		t.Fatalf("cancelled run: err=%v interrupted=%v", err, report.Interrupted)
	}
	assertCleanSpool(t, dir)

	good := newWorker(t, nil)
	report, err = Run(context.Background(), testSpec(), 2, Options{
		Workers: []string{good.URL},
		Dir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("rerun curve differs from single-process derive")
	}
}

// TestFleetKillAWorker pins retry-elsewhere: one fleet member is dead
// (connection refused), the run still completes exactly.
func TestFleetKillAWorker(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // a worker that died: connections are refused
	good := newWorker(t, nil)

	dir := t.TempDir()
	report, err := Run(context.Background(), testSpec(), 4, Options{
		Workers:     []string{dead.URL, good.URL},
		Dir:         dir,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("curve with a dead worker differs from single-process derive")
	}
	if report.Retries == 0 {
		t.Fatal("dead worker cost no retries — it was never dispatched to")
	}
	assertCleanSpool(t, dir)
}

// TestFleetSpeculation pins straggler re-execution: with one slow and
// one idle worker, the duplicate dispatch wins and the straggler's late
// response is discarded.
func TestFleetSpeculation(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // straggle until the coordinator gives up
	}))
	defer slow.Close()
	fast := newWorker(t, nil)

	dir := t.TempDir()
	report, err := Run(context.Background(), testSpec(), 1, Options{
		Workers:        []string{slow.URL, fast.URL},
		Dir:            dir,
		PerWorker:      1,
		SpeculateAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := report.Shards[0]
	if st.Worker != fast.URL {
		t.Fatalf("winner %q, want the speculative worker %q", st.Worker, fast.URL)
	}
	if st.Speculated != 1 || report.Speculations != 1 {
		t.Fatalf("speculated %d (total %d), want 1", st.Speculated, report.Speculations)
	}
	if st.Dispatches != 2 {
		t.Fatalf("dispatches %d, want 2 (primary + speculative)", st.Dispatches)
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("speculative curve differs from single-process derive")
	}
}

// TestFleetFaultMatrix drives the coordinator through the response
// fault classes — torn partial, wrong-digest partial, draining worker,
// mid-flight worker death — and requires each to end in retry-elsewhere
// with an exact merge and a clean spool, never a corrupt artifact.
func TestFleetFaultMatrix(t *testing.T) {
	want := wantCurve(t)
	cases := []struct {
		name           string
		faulty         func(t *testing.T) *httptest.Server
		wantQuarantine bool
		wantDeferral   bool
	}{
		{
			name: "torn partial",
			faulty: func(t *testing.T) *httptest.Server {
				return newWorker(t, func(w http.ResponseWriter, data []byte) {
					w.Write(data[:len(data)/2]) // torn mid-JSON
				})
			},
			wantQuarantine: true,
		},
		{
			name: "wrong-digest partial",
			faulty: func(t *testing.T) *httptest.Server {
				dir := t.TempDir()
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					req := decodeShardRequest(t, r)
					// A structurally valid, complete partial — of a different
					// workload. Only digest validation can catch it.
					other, err := workload.NewBound(einsum.GEMM("gemm_16x16x16", 16, 16, 16), bound.Options{}).Encode()
					if err != nil {
						t.Error(err)
					}
					req.Spec = other
					data, err := deriveShardBytes(r.Context(), dir, req)
					if err != nil {
						http.Error(w, "{}", http.StatusInternalServerError)
						return
					}
					w.Write(data)
				}))
				t.Cleanup(ts.Close)
				return ts
			},
			wantQuarantine: true,
		},
		{
			// A draining 503 with a Retry-After hint is a polite deferral:
			// the worker is held out of allocation, and no retry budget or
			// backoff is spent.
			name: "draining worker",
			faulty: func(t *testing.T) *httptest.Server {
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set("Retry-After", "1")
					http.Error(w, `{"error":{"code":"draining","message":"worker is draining"}}`, http.StatusServiceUnavailable)
				}))
				t.Cleanup(ts.Close)
				return ts
			},
			wantDeferral: true,
		},
		{
			// An unhinted 503 stays on the generic retry-elsewhere path.
			name: "draining worker without hint",
			faulty: func(t *testing.T) *httptest.Server {
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					http.Error(w, `{"error":{"code":"draining","message":"worker is draining"}}`, http.StatusServiceUnavailable)
				}))
				t.Cleanup(ts.Close)
				return ts
			},
		},
		{
			name: "mid-flight death",
			faulty: func(t *testing.T) *httptest.Server {
				return newWorker(t, func(w http.ResponseWriter, data []byte) {
					w.Header().Set("Content-Length", fmt.Sprint(len(data)))
					w.Write(data[:len(data)/2])
					panic(http.ErrAbortHandler) // connection dies mid-body
				})
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faulty := tc.faulty(t)
			good := newWorker(t, nil)
			dir := t.TempDir()
			report, err := Run(context.Background(), testSpec(), 2, Options{
				Workers:     []string{faulty.URL, good.URL},
				Dir:         dir,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, merr := json.Marshal(report.Curve)
			if merr != nil {
				t.Fatal(merr)
			}
			if string(got) != want {
				t.Fatalf("curve under %s differs from single-process derive", tc.name)
			}
			if tc.wantDeferral {
				if report.Deferrals == 0 {
					t.Fatalf("%s cost no deferrals — the deferring worker was never dispatched to", tc.name)
				}
				if report.Retries != 0 {
					t.Fatalf("%s burned %d retries; a Retry-After deferral must not spend the budget", tc.name, report.Retries)
				}
			} else if report.Retries == 0 {
				t.Fatalf("%s cost no retries — the faulty worker was never dispatched to", tc.name)
			}
			if tc.wantQuarantine && report.Quarantines == 0 {
				t.Fatalf("%s produced no quarantine", tc.name)
			}
			assertCleanSpool(t, dir)
		})
	}
}

// TestFleetRetryAfterRecovery is the draining-worker regression test: a
// worker that answers 503 + Retry-After while draining and then
// recovers must be waited out, not written off — the deferrals spend no
// retry budget (pinned by running with the budget at zero), and the run
// completes exactly once the worker comes back.
func TestFleetRetryAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	wdir := t.TempDir()
	var requests atomic.Int64
	const drainingFor = 5
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if requests.Add(1) <= drainingFor {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":{"code":"draining","message":"worker is draining"}}`, http.StatusServiceUnavailable)
			return
		}
		req := decodeShardRequest(t, r)
		data, err := deriveShardBytes(r.Context(), wdir, req)
		if err != nil {
			http.Error(w, `{"error":{"code":"internal","message":"test worker failed"}}`, http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}))
	defer worker.Close()

	report, err := Run(context.Background(), testSpec(), 1, Options{
		Workers:    []string{worker.URL},
		Dir:        dir,
		MaxRetries: -1, // zero budget: any non-deferral retry would fail the run
	})
	if err != nil {
		t.Fatalf("run against a recovering worker failed: %v", err)
	}
	if report.Deferrals != drainingFor {
		t.Fatalf("deferrals %d, want %d", report.Deferrals, drainingFor)
	}
	if report.Retries != 0 {
		t.Fatalf("retries %d; deferrals must not spend the budget", report.Retries)
	}
	if report.Shards[0].Deferred != drainingFor {
		t.Fatalf("shard deferred count %d, want %d", report.Shards[0].Deferred, drainingFor)
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("curve after recovery differs from single-process derive")
	}
	// The deferring worker's breaker never tripped: a polite 503 is not a
	// health failure.
	if ws := report.Workers[0]; ws.Breaker != "closed" {
		t.Fatalf("worker breaker %q after deferrals, want closed", ws.Breaker)
	}
}

// TestFleetDegradedMerge pins the allow-partial path: a shard no worker
// will serve fails permanently, and the run degrades to an annotated
// partial merge instead of an error — with the spool kept clean.
func TestFleetDegradedMerge(t *testing.T) {
	dir := t.TempDir()
	wdir := t.TempDir()
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req := decodeShardRequest(t, r)
		if req.ShardIndex == 1 {
			http.Error(w, `{"error":{"code":"internal","message":"shard 2 always fails"}}`, http.StatusInternalServerError)
			return
		}
		data, err := deriveShardBytes(r.Context(), wdir, req)
		if err != nil {
			http.Error(w, "{}", http.StatusInternalServerError)
			return
		}
		w.Write(data)
	}))
	defer worker.Close()

	report, err := Run(context.Background(), testSpec(), 2, Options{
		Workers:      []string{worker.URL},
		Dir:          dir,
		MaxRetries:   -1,
		AllowPartial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Degraded == nil {
		t.Fatal("no degraded merge")
	}
	if report.Degraded.Complete() {
		t.Fatal("degraded merge claims full coverage")
	}
	if len(report.Degraded.MissingShards) != 1 {
		t.Fatalf("missing shards %v, want exactly one", report.Degraded.MissingShards)
	}
	if !report.Degraded.Curve.Degraded {
		t.Fatal("degraded curve is not tainted")
	}
	assertCleanSpool(t, dir)

	// Without AllowPartial the same fleet must refuse.
	if _, err := Run(context.Background(), testSpec(), 2, Options{
		Workers:    []string{worker.URL},
		Dir:        t.TempDir(),
		MaxRetries: -1,
	}); err == nil {
		t.Fatal("permanent shard failure without AllowPartial did not fail the run")
	}
}

// TestFleetPermanentRejection pins fail-fast on deterministic worker
// rejections: a 400 burns no retry budget.
func TestFleetPermanentRejection(t *testing.T) {
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"invalid_workload","message":"unknown kind"}}`, http.StatusBadRequest)
	}))
	defer worker.Close()

	report, err := Run(context.Background(), testSpec(), 1, Options{
		Workers: []string{worker.URL},
		Dir:     t.TempDir(),
	})
	if err == nil {
		t.Fatal("deterministic rejection did not fail the run")
	}
	if got := report.Shards[0].Dispatches; got != 1 {
		t.Fatalf("dispatches %d, want 1 (no retries of a permanent rejection)", got)
	}
	var perm *PermanentError
	if !asPermanent(report.Shards[0].Err, &perm) {
		t.Fatalf("shard error %v does not wrap PermanentError", report.Shards[0].Err)
	}
	if perm.Code != "invalid_workload" {
		t.Fatalf("code %q, want invalid_workload", perm.Code)
	}
}

// asPermanent is errors.As without importing errors twice in the test.
func asPermanent(err error, target **PermanentError) bool {
	for err != nil {
		if pe, ok := err.(*PermanentError); ok {
			*target = pe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestFleetQuarantinesForeignSpoolPartial pins the pre-scan: a complete
// partial of a different derivation sitting in a shard's slot is
// quarantined, then the slot is re-derived.
func TestFleetQuarantinesForeignSpoolPartial(t *testing.T) {
	dir := t.TempDir()
	other := workload.NewBound(einsum.GEMM("gemm_16x16x16", 16, 16, 16), bound.Options{})
	job, err := other.Compile(shard.Plan{Index: 0, Count: 2}, workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: supervise.ShardPath(dir, 0, 2)}); err != nil {
		t.Fatal(err)
	}

	good := newWorker(t, nil)
	report, err := Run(context.Background(), testSpec(), 2, Options{
		Workers: []string{good.URL},
		Dir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Shards[0].Quarantined) == 0 {
		t.Fatal("foreign spool partial was not quarantined")
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("curve after quarantine differs from single-process derive")
	}
	if _, err := os.Stat(supervise.ShardPath(dir, 0, 2) + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
}

// TestAllocator unit-tests the registry's allocation preferences: the
// ranking pickLocked applies under the lock.
func TestAllocator(t *testing.T) {
	r := NewRegistry([]string{"A", "B"}, RegistryConfig{PerWorker: 2})
	now := time.Now()
	pick := func(avoid string, exclude map[string]bool) (string, bool) {
		r.mu.Lock()
		defer r.mu.Unlock()
		w, _, ok := r.pickLocked(avoid, exclude, now)
		return w, ok
	}
	if w, ok := pick("", nil); !ok || w != "A" {
		t.Fatalf("first pick %q, want A (listing order)", w)
	}
	if w, ok := pick("A", nil); !ok || w != "B" {
		t.Fatalf("avoid=A pick %q, want B", w)
	}
	r.members["B"].free = 0
	if w, ok := pick("A", nil); !ok || w != "A" {
		t.Fatalf("avoid=A with B exhausted pick %q, want A (avoid is better than deadlock)", w)
	}
	if _, ok := pick("", map[string]bool{"A": true}); ok {
		t.Fatal("exclude=A with B exhausted picked a worker")
	}
	r.members["A"].free, r.members["B"].free = 1, 2
	if w, _ := pick("", nil); w != "B" {
		t.Fatalf("unobserved tie pick %q, want B (2 free slots vs 1)", w)
	}

	// Throughput beats free slots once both workers have history: A at 10
	// shards/sec outranks B at 1 despite fewer free slots.
	r.members["A"].completions, r.members["A"].ewma = 5, 10
	r.members["B"].completions, r.members["B"].ewma = 5, 1
	if w, _ := pick("", nil); w != "A" {
		t.Fatalf("throughput pick %q, want A (10 shards/sec vs 1)", w)
	}
	// An unobserved worker is optimistically ranked above any measured one.
	r.Add("C")
	if w, _ := pick("", nil); w != "C" {
		t.Fatalf("new-joiner pick %q, want C (unobserved => +Inf score)", w)
	}
	r.Remove("C")

	// A Retry-After hold excludes the worker until it expires.
	r.members["A"].holdUntil = now.Add(time.Minute)
	if w, _ := pick("", nil); w != "B" {
		t.Fatalf("held-A pick %q, want B", w)
	}
	r.members["A"].holdUntil = time.Time{}

	// An open breaker excludes the worker during cooldown, then admits
	// exactly one half-open probe that outranks everything.
	r.members["A"].br.open(now)
	if w, _ := pick("", nil); w != "B" {
		t.Fatalf("open-breaker pick %q, want B", w)
	}
	r.members["A"].br.openedAt = now.Add(-2 * DefaultBreakerCooldown)
	r.mu.Lock()
	w, probe, ok := r.pickLocked("", nil, now)
	r.mu.Unlock()
	if !ok || w != "A" || !probe {
		t.Fatalf("cooldown-elapsed pick %q probe=%v, want half-open probe on A", w, probe)
	}
}
