package fleet

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Defaults for the registry's health and throughput policy; tests
// shorten or tune them via RegistryConfig.
const (
	// DefaultEWMAAlpha is the smoothing factor of the per-worker
	// shards/sec estimate when RegistryConfig.EWMAAlpha is unset: each
	// completed dispatch contributes 30% of the new estimate.
	DefaultEWMAAlpha = 0.3

	// DefaultProbeFailures is how many consecutive failed health probes
	// mark a worker unhealthy when RegistryConfig.ProbeFailures is unset.
	DefaultProbeFailures = 2

	// DefaultProbeTimeout bounds one health-probe request when
	// RegistryConfig.ProbeTimeout is unset.
	DefaultProbeTimeout = 2 * time.Second
)

// RegistryConfig tunes a worker Registry.
type RegistryConfig struct {
	// PerWorker is the concurrent-dispatch slot count per worker; <= 0
	// means DefaultPerWorker.
	PerWorker int

	// Breaker configures the per-worker circuit breakers.
	Breaker BreakerConfig

	// EWMAAlpha is the smoothing factor of the per-worker throughput
	// estimate (shards/sec) in (0, 1]; <= 0 means DefaultEWMAAlpha.
	EWMAAlpha float64

	// ProbeFailures is how many consecutive failed health probes mark a
	// worker unhealthy (skipped by allocation while alternatives exist);
	// <= 0 means DefaultProbeFailures. A single successful probe — or a
	// successful dispatch — restores health.
	ProbeFailures int

	// ProbeTimeout bounds each health-probe request; <= 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration

	// Logf, when non-nil, receives membership and health transitions.
	Logf func(format string, args ...any)
}

func (c RegistryConfig) perWorker() int {
	if c.PerWorker <= 0 {
		return DefaultPerWorker
	}
	return c.PerWorker
}

func (c RegistryConfig) alpha() float64 {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		return DefaultEWMAAlpha
	}
	return c.EWMAAlpha
}

func (c RegistryConfig) probeFailures() int {
	if c.ProbeFailures <= 0 {
		return DefaultProbeFailures
	}
	return c.ProbeFailures
}

func (c RegistryConfig) probeTimeout() time.Duration {
	if c.ProbeTimeout <= 0 {
		return DefaultProbeTimeout
	}
	return c.ProbeTimeout
}

// member is one worker's live state: dispatch slots, probed health, its
// circuit breaker, the Retry-After hold, and the throughput estimate.
// All fields are guarded by the Registry mutex.
type member struct {
	url      string
	free     int
	inflight int

	// healthy is the probe verdict (true until probes say otherwise);
	// probeFails counts consecutive failed probes; lastProbe holds the
	// last probe error for operators.
	healthy    bool
	probeFails int
	lastProbe  string

	// holdUntil keeps the worker out of allocation until the instant a
	// 429/503 Retry-After hinted at.
	holdUntil time.Time

	br breaker

	// ewma is the smoothed shards/sec completion rate (0 until the first
	// completion); completions, dispatches and failures are cumulative.
	ewma        float64
	completions int64
	dispatches  int64
	failures    int64
	lastErr     string
}

// WorkerStatus is one worker's externally visible state: the per-worker
// row of /stats fleet gauges and of Report.Workers.
type WorkerStatus struct {
	// URL is the worker's base URL (the membership key).
	URL string `json:"url"`
	// Healthy is the probe verdict (true when never probed).
	Healthy bool `json:"healthy"`
	// Breaker is the circuit-breaker state: closed, open, or half_open.
	Breaker string `json:"breaker"`
	// Held reports an active Retry-After hold at snapshot time.
	Held bool `json:"held,omitempty"`
	// InFlight is the number of dispatches the worker is running now.
	InFlight int `json:"in_flight"`
	// Dispatches, Failures and Completions are cumulative dispatch
	// counts (launched, failed, completed-valid).
	Dispatches  int64 `json:"dispatches"`
	Failures    int64 `json:"failures"`
	Completions int64 `json:"completions"`
	// ShardsPerSec is the EWMA throughput estimate allocation scores by
	// (0 until the first completion).
	ShardsPerSec float64 `json:"shards_per_sec"`
	// LastError is the most recent dispatch failure, if any.
	LastError string `json:"last_error,omitempty"`
	// LastProbeError is the most recent health-probe failure, if any.
	LastProbeError string `json:"last_probe_error,omitempty"`
}

// Gauges are the fleet-level health counts exported as
// /stats.fleet_workers: membership size split by breaker state and
// probed health.
type Gauges struct {
	// Total is the membership size.
	Total int `json:"total"`
	// Healthy counts members with a closed breaker and a passing (or
	// absent) probe verdict — the workers allocation prefers.
	Healthy int `json:"healthy"`
	// Open and HalfOpen count members by tripped-breaker state.
	Open     int `json:"open"`
	HalfOpen int `json:"half_open"`
	// Held counts members under an active Retry-After hold.
	Held int `json:"held"`
}

// Registry is the fleet's live membership: the set of worker URLs,
// each with per-worker dispatch slots, a circuit breaker, a probed
// health verdict, Retry-After holds, and an EWMA throughput score that
// allocation ranks by (docs/fleet-protocol.md "Health, membership &
// breakers"). Workers can be added and removed at runtime — waiters
// blocked on a slot observe joins immediately — and one Registry may be
// shared across concurrent fleet runs (serve reuses one per server).
type Registry struct {
	cfg RegistryConfig

	mu   sync.Mutex
	cond *sync.Cond
	// members is keyed by worker URL; order fixes iteration for
	// deterministic tie-breaks.
	members map[string]*member
	order   []string
	// wake is the pending timed wake for waiters blocked on a hold
	// expiry or breaker cooldown.
	wake *time.Timer
	// now is the clock (a test seam).
	now func() time.Time
}

// NewRegistry builds a registry holding the given workers.
func NewRegistry(workers []string, cfg RegistryConfig) *Registry {
	r := &Registry{
		cfg:     cfg,
		members: make(map[string]*member, len(workers)),
		now:     time.Now,
	}
	r.cond = sync.NewCond(&r.mu)
	for _, w := range workers {
		r.addLocked(w)
	}
	return r
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// addLocked inserts a fresh member. Caller holds mu.
func (r *Registry) addLocked(url string) bool {
	if _, ok := r.members[url]; ok {
		return false
	}
	r.members[url] = &member{
		url:     url,
		free:    r.cfg.perWorker(),
		healthy: true,
		br:      newBreaker(r.cfg.Breaker),
	}
	r.order = append(r.order, url)
	return true
}

// Add joins a worker to the membership with a full set of free slots, a
// closed breaker, and an unknown (optimistic) throughput score. Shards
// blocked waiting for a slot observe the join immediately, so a worker
// added mid-run starts receiving queued dispatches. Returns false when
// the worker is already a member.
func (r *Registry) Add(url string) bool {
	r.mu.Lock()
	added := r.addLocked(url)
	r.mu.Unlock()
	if added {
		r.logf("fleet: worker %s joined the membership", url)
		r.cond.Broadcast()
	}
	return added
}

// Remove drops a worker from the membership: it receives no further
// dispatches, and dispatches already in flight to it finish normally
// (their outcomes are discarded from the books). Returns false when the
// worker was not a member.
func (r *Registry) Remove(url string) bool {
	r.mu.Lock()
	_, ok := r.members[url]
	if ok {
		delete(r.members, url)
		for i, w := range r.order {
			if w == url {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	if ok {
		r.logf("fleet: worker %s left the membership", url)
		// Waiters must re-check: with the last member gone they fail with
		// ErrNoWorkers instead of waiting forever.
		r.cond.Broadcast()
	}
	return ok
}

// SetWorkers reconciles the membership against urls (the flag-file
// reload path): missing workers join, absent ones leave, existing ones
// keep their health, breaker, and throughput state. Returns how many
// joined and left.
func (r *Registry) SetWorkers(urls []string) (added, removed int) {
	want := make(map[string]bool, len(urls))
	for _, u := range urls {
		want[u] = true
	}
	r.mu.Lock()
	var drop []string
	for u := range r.members {
		if !want[u] {
			drop = append(drop, u)
		}
	}
	r.mu.Unlock()
	sort.Strings(drop)
	for _, u := range drop {
		if r.Remove(u) {
			removed++
		}
	}
	for _, u := range urls {
		if r.Add(u) {
			added++
		}
	}
	return added, removed
}

// URLs returns the current membership in join order.
func (r *Registry) URLs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Len is the current membership size.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// score ranks a worker for allocation: observed throughput (EWMA
// shards/sec) divided by its queue depth if it has history, +Inf —
// optimistic — for workers never observed, so new joiners and fresh
// fleets are explored before the scoreboard settles (free-slot count
// breaks those ties).
func (m *member) score() float64 {
	if m.completions == 0 {
		return math.Inf(1)
	}
	return m.ewma / float64(m.inflight+1)
}

// pickLocked chooses the dispatch target at time now among members with
// a free slot that are not excluded, not under a Retry-After hold, and
// whose breaker admits a dispatch. Ranking, most important first:
//
//  1. a worker other than avoid (the one that just failed this shard);
//  2. half-open probes (an open breaker past its cooldown — one probe
//     dispatch re-integrates a recovered worker promptly);
//  3. probed-healthy over probed-unhealthy (an unhealthy worker is a
//     last resort, kept allocatable so a fleet whose every probe fails
//     still terminates through breakers and the retry budget);
//  4. the throughput score (EWMA shards/sec over queue depth, +Inf when
//     unobserved) — fast workers get proportionally more dispatches;
//  5. free slots, then listing order, for deterministic ties.
//
// Returns the worker, whether the dispatch is its breaker's half-open
// probe, and whether anything was pickable. Caller holds mu.
func (r *Registry) pickLocked(avoid string, exclude map[string]bool, now time.Time) (string, bool, bool) {
	type cand struct {
		m          *member
		notAvoided bool
		class      int // 0 = half-open probe, 1 = healthy, 2 = unhealthy
		probe      bool
		score      float64
	}
	var best cand
	for _, url := range r.order {
		m := r.members[url]
		if exclude[url] || m.free <= 0 || now.Before(m.holdUntil) {
			continue
		}
		ok, probe := m.br.admissible(now)
		if !ok {
			continue
		}
		c := cand{m: m, notAvoided: url != avoid, probe: probe, score: m.score()}
		switch {
		case probe:
			c.class = 0
		case m.healthy:
			c.class = 1
		default:
			c.class = 2
		}
		if best.m == nil || betterCand(c.notAvoided, c.class, c.score, c.m.free,
			best.notAvoided, best.class, best.score, best.m.free) {
			best = c
		}
	}
	if best.m == nil {
		return "", false, false
	}
	return best.m.url, best.probe, true
}

// betterCand compares two allocation candidates by the pickLocked
// ranking (listing order breaks final ties by keeping the incumbent).
func betterCand(aNotAvoided bool, aClass int, aScore float64, aFree int,
	bNotAvoided bool, bClass int, bScore float64, bFree int) bool {
	if aNotAvoided != bNotAvoided {
		return aNotAvoided
	}
	if aClass != bClass {
		return aClass < bClass
	}
	if aScore != bScore {
		return aScore > bScore
	}
	return aFree > bFree
}

// nextEventLocked finds the earliest future instant a currently
// unpickable member could become pickable — a hold expiring or an open
// breaker reaching its cooldown — so waiters can schedule a timed wake
// instead of sleeping forever. Caller holds mu.
func (r *Registry) nextEventLocked(now time.Time) (time.Time, bool) {
	var at time.Time
	for _, url := range r.order {
		m := r.members[url]
		if m.free <= 0 {
			continue
		}
		if t := m.holdUntil; t.After(now) && (at.IsZero() || t.Before(at)) {
			at = t
		}
		if t, ok := m.br.retryAt(); ok && t.After(now) && (at.IsZero() || t.Before(at)) {
			at = t
		}
	}
	return at, !at.IsZero()
}

// scheduleWakeLocked arms the registry's timed wake for the next hold
// or cooldown expiry, replacing any earlier timer. Caller holds mu.
func (r *Registry) scheduleWakeLocked(now time.Time) {
	at, ok := r.nextEventLocked(now)
	if !ok {
		return
	}
	if r.wake != nil {
		r.wake.Stop()
	}
	r.wake = time.AfterFunc(at.Sub(now)+time.Millisecond, r.cond.Broadcast)
}

// acquire blocks until a worker other than avoid has a free slot and an
// admitting breaker, or ctx is cancelled, or the membership is empty
// (ErrNoWorkers — nothing to wait for). When only avoid is available
// and the fleet has no other member, its slot is taken anyway: one
// flaky worker must not deadlock a one-worker fleet. The caller must
// arrange wakeAll on ctx cancellation (Run registers context.AfterFunc
// once for the whole run).
func (r *Registry) acquire(ctx context.Context, avoid string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if len(r.order) == 0 {
			return "", ErrNoWorkers
		}
		now := r.now()
		if url, probe, ok := r.pickLocked(avoid, nil, now); ok {
			// Retry-elsewhere must mean elsewhere: when the only usable
			// capacity is on the worker that just failed this shard and the
			// fleet has alternatives, wait for one of them instead of
			// burning the retry budget on the same worker. Every busy
			// slot's dispatch ends in a release (and a Broadcast), and
			// breaker cooldowns and holds arm a timed wake, so the wait is
			// live.
			if url == avoid && len(r.order) > 1 {
				r.scheduleWakeLocked(now)
				r.cond.Wait()
				continue
			}
			r.takeLocked(url, probe)
			return url, nil
		}
		r.scheduleWakeLocked(now)
		r.cond.Wait()
	}
}

// tryAcquire takes a slot on any worker not in exclude without blocking
// — the speculation path, which only runs on genuinely idle capacity.
func (r *Registry) tryAcquire(exclude map[string]bool) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	url, probe, ok := r.pickLocked("", exclude, r.now())
	if !ok {
		return "", false
	}
	r.takeLocked(url, probe)
	return url, true
}

// takeLocked consumes a slot on url (and flips its breaker to half-open
// when the dispatch is the probe). Caller holds mu.
func (r *Registry) takeLocked(url string, probe bool) {
	m := r.members[url]
	m.free--
	m.inflight++
	m.dispatches++
	if probe {
		m.br.probeAt()
		r.logf("fleet: worker %s breaker half-open; probing with the next dispatch", url)
	}
}

// release returns a worker's slot and wakes waiters. A worker removed
// (or removed-and-rejoined) while the dispatch was in flight keeps its
// books consistent via clamping.
func (r *Registry) release(url string) {
	r.mu.Lock()
	if m, ok := r.members[url]; ok {
		if m.inflight > 0 {
			m.inflight--
		}
		if m.free < r.cfg.perWorker() {
			m.free++
		}
	}
	r.mu.Unlock()
	r.cond.Broadcast()
}

// success records a validated dispatch completion that took elapsed:
// the breaker re-closes, probed health is restored (a correct response
// is the strongest health signal), and the throughput estimate absorbs
// the new shards/sec sample.
func (r *Registry) success(url string, elapsed time.Duration) {
	r.mu.Lock()
	if m, ok := r.members[url]; ok {
		m.completions++
		secs := elapsed.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		sample := 1 / secs
		if m.completions == 1 {
			m.ewma = sample
		} else {
			a := r.cfg.alpha()
			m.ewma = a*sample + (1-a)*m.ewma
		}
		m.br.recordSuccess()
		m.healthy = true
		m.probeFails = 0
		m.lastErr = ""
	}
	r.mu.Unlock()
	// A re-closed breaker may unblock waiters.
	r.cond.Broadcast()
}

// failure records a failed dispatch. tripsBreaker feeds the outcome to
// the circuit breaker — transport errors, 5xx, invalid responses — and
// is false for failures that say nothing about the worker's health
// (deterministic spec rejections, polite Retry-After deferrals).
func (r *Registry) failure(url string, tripsBreaker bool, msg string) {
	r.mu.Lock()
	var opened bool
	if m, ok := r.members[url]; ok {
		m.failures++
		m.lastErr = msg
		if tripsBreaker {
			was := m.br.state
			m.br.recordFailure(r.now())
			opened = was != BreakerOpen && m.br.state == BreakerOpen
		}
	}
	r.mu.Unlock()
	if opened {
		r.logf("fleet: worker %s breaker opened (%s)", url, msg)
		// Waiters re-arm their timed wake around the new cooldown.
		r.cond.Broadcast()
	}
}

// hold keeps a worker out of allocation for d — the Retry-After path: a
// 429/503 with a hint means "this worker, this long", not "back off
// everywhere". Holds extend, never shorten.
func (r *Registry) hold(url string, d time.Duration) {
	r.mu.Lock()
	if m, ok := r.members[url]; ok {
		if until := r.now().Add(d); until.After(m.holdUntil) {
			m.holdUntil = until
		}
	}
	r.mu.Unlock()
}

// wakeAll unblocks every acquire waiter (used on run cancellation).
func (r *Registry) wakeAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cond.Broadcast()
}

// ProbeError is a health probe the worker answered with a non-200
// status (as opposed to a transport failure reaching it at all).
type ProbeError struct {
	// Worker is the probed worker's base URL; Status the answer.
	Worker string
	Status int
}

// Error renders the failed probe.
func (e *ProbeError) Error() string {
	return fmt.Sprintf("fleet: worker %s probe answered %d", e.Worker, e.Status)
}

// Probe runs one synchronous health round: every member's /readyz is
// fetched (concurrently, each under the probe timeout) and verdicts are
// applied — a 200 restores health immediately; ProbeFailures
// consecutive failures mark the worker unhealthy, demoting it in
// allocation without removing it. Probes observe health; breakers, fed
// by real dispatch outcomes, own the load-shedding decision.
func (r *Registry) Probe(ctx context.Context, client *http.Client) {
	if client == nil {
		client = http.DefaultClient
	}
	urls := r.URLs()
	type verdict struct {
		url string
		err error
	}
	verdicts := make(chan verdict, len(urls))
	for _, url := range urls {
		go func(url string) {
			verdicts <- verdict{url, r.probeOne(ctx, client, url)}
		}(url)
	}
	for range urls {
		v := <-verdicts
		r.applyProbe(v.url, v.err)
	}
}

// probeOne fetches one worker's /readyz under the probe timeout.
func (r *Registry) probeOne(ctx context.Context, client *http.Client, url string) error {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &ProbeError{Worker: url, Status: resp.StatusCode}
	}
	return nil
}

// applyProbe folds one probe verdict into the member's health state.
func (r *Registry) applyProbe(url string, err error) {
	r.mu.Lock()
	m, ok := r.members[url]
	if !ok {
		r.mu.Unlock()
		return
	}
	var becameHealthy, becameUnhealthy bool
	if err == nil {
		becameHealthy = !m.healthy
		m.healthy = true
		m.probeFails = 0
		m.lastProbe = ""
	} else {
		m.probeFails++
		m.lastProbe = err.Error()
		if m.probeFails >= r.cfg.probeFailures() && m.healthy {
			m.healthy = false
			becameUnhealthy = true
		}
	}
	r.mu.Unlock()
	if becameHealthy {
		r.logf("fleet: worker %s probe recovered; marked healthy", url)
		r.cond.Broadcast()
	}
	if becameUnhealthy {
		r.logf("fleet: worker %s failed %d consecutive probes; marked unhealthy (%v)", url, r.cfg.probeFailures(), err)
	}
}

// StartProbing probes the membership once immediately and then every
// interval until ctx is cancelled. client nil means http.DefaultClient.
func (r *Registry) StartProbing(ctx context.Context, interval time.Duration, client *http.Client) {
	go func() {
		r.Probe(ctx, client)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.Probe(ctx, client)
			}
		}
	}()
}

// Snapshot reports every member's status in join order — the per-worker
// rows of /stats and Report.Workers.
func (r *Registry) Snapshot() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]WorkerStatus, 0, len(r.order))
	for _, url := range r.order {
		m := r.members[url]
		out = append(out, WorkerStatus{
			URL:            m.url,
			Healthy:        m.healthy,
			Breaker:        m.br.state.String(),
			Held:           now.Before(m.holdUntil),
			InFlight:       m.inflight,
			Dispatches:     m.dispatches,
			Failures:       m.failures,
			Completions:    m.completions,
			ShardsPerSec:   m.ewma,
			LastError:      m.lastErr,
			LastProbeError: m.lastProbe,
		})
	}
	return out
}

// Gauges reports the fleet-level health counts (the
// /stats.fleet_workers scalars).
func (r *Registry) Gauges() Gauges {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	g := Gauges{Total: len(r.order)}
	for _, url := range r.order {
		m := r.members[url]
		switch m.br.state {
		case BreakerOpen:
			g.Open++
		case BreakerHalfOpen:
			g.HalfOpen++
		default:
			if m.healthy {
				g.Healthy++
			}
		}
		if now.Before(m.holdUntil) {
			g.Held++
		}
	}
	return g
}
