package fleet

import (
	"context"
	"sync"
)

// allocator hands out per-worker dispatch slots: each worker URL holds
// PerWorker slots, a shard blocks until any worker has one free, and the
// least-loaded worker is preferred so slices spread across the fleet.
// Speculation uses the non-blocking tryAcquire so a duplicate dispatch
// only ever consumes genuinely idle capacity.
type allocator struct {
	mu   sync.Mutex
	cond *sync.Cond
	// order fixes the iteration order (deterministic tie-breaks); free
	// maps worker URL to remaining slots.
	order []string
	free  map[string]int
}

// newAllocator builds the slot table: perWorker slots for each worker.
func newAllocator(workers []string, perWorker int) *allocator {
	a := &allocator{
		order: append([]string(nil), workers...),
		free:  make(map[string]int, len(workers)),
	}
	a.cond = sync.NewCond(&a.mu)
	for _, w := range workers {
		a.free[w] += perWorker
	}
	return a
}

// pickLocked chooses the worker with the most free slots, skipping
// exclude; among the rest, a worker other than avoid wins ties and —
// when only avoid has capacity — avoid is still used (one slow or flaky
// worker must not deadlock a one-worker fleet). Ties break by listing
// order for determinism. Caller holds mu.
func (a *allocator) pickLocked(avoid string, exclude map[string]bool) (string, bool) {
	best, bestFree, bestNotAvoided := "", 0, false
	for _, w := range a.order {
		if exclude[w] || a.free[w] <= 0 {
			continue
		}
		notAvoided := w != avoid
		switch {
		case best == "",
			notAvoided && !bestNotAvoided,
			notAvoided == bestNotAvoided && a.free[w] > bestFree:
			best, bestFree, bestNotAvoided = w, a.free[w], notAvoided
		}
	}
	return best, best != ""
}

// acquire blocks until a worker other than avoid (the last worker that
// failed this shard) has a free slot, or ctx is cancelled. When avoid is
// the whole fleet, its slot is taken anyway — one flaky worker must not
// deadlock a one-worker fleet. The caller must arrange wakeAll on ctx
// cancellation (Run registers context.AfterFunc once for the whole run).
func (a *allocator) acquire(ctx context.Context, avoid string) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		if w, ok := a.pickLocked(avoid, nil); ok {
			// Retry-elsewhere must mean elsewhere: when the only free
			// capacity is on the worker that just failed this shard and the
			// fleet has alternatives, wait for one of them to release a slot
			// instead of burning the retry budget on the same worker. Every
			// busy slot's dispatch ends in a release (and a Broadcast), so
			// the wait is live.
			if w == avoid && len(a.order) > 1 {
				a.cond.Wait()
				continue
			}
			a.free[w]--
			return w, nil
		}
		a.cond.Wait()
	}
}

// tryAcquire takes a slot on any worker not in exclude without blocking
// — the speculation path, which only runs on genuinely idle capacity.
func (a *allocator) tryAcquire(exclude map[string]bool) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w, ok := a.pickLocked("", exclude)
	if !ok {
		return "", false
	}
	a.free[w]--
	return w, true
}

// release returns a worker's slot and wakes waiters.
func (a *allocator) release(worker string) {
	a.mu.Lock()
	a.free[worker]++
	a.mu.Unlock()
	a.cond.Broadcast()
}

// wakeAll unblocks every acquire waiter (used on run cancellation).
func (a *allocator) wakeAll() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cond.Broadcast()
}
