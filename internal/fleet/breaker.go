package fleet

import "time"

// Defaults for the per-worker circuit breaker; tests shorten them via
// BreakerConfig.
const (
	// DefaultBreakerFailures is the consecutive-failure count that opens
	// a worker's breaker when BreakerConfig.Failures is unset.
	DefaultBreakerFailures = 3

	// DefaultBreakerCooldown is how long an open breaker sheds load
	// before admitting its half-open probe dispatch, when
	// BreakerConfig.Cooldown is unset.
	DefaultBreakerCooldown = 5 * time.Second

	// DefaultBreakerWindow is the outcome-window size the error-rate
	// trigger evaluates over, when BreakerConfig.Window is unset (only
	// relevant when BreakerConfig.Rate enables the trigger).
	DefaultBreakerWindow = 8
)

// BreakerState is a circuit breaker's position in its state machine.
type BreakerState int

// The breaker states: a closed breaker admits dispatches; an open one
// sheds them until its cooldown elapses; a half-open one has exactly one
// probe dispatch in flight whose outcome decides between re-closing and
// re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state as its /stats gauge label.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-worker circuit breakers
// (docs/fleet-protocol.md "Health, membership & breakers"). The zero
// value enables the consecutive-failure trigger with defaults and leaves
// the error-rate trigger off.
type BreakerConfig struct {
	// Failures opens the breaker after this many consecutive dispatch
	// failures; <= 0 means DefaultBreakerFailures.
	Failures int

	// Cooldown is how long an open breaker sheds load before admitting
	// its half-open probe dispatch; <= 0 means DefaultBreakerCooldown.
	Cooldown time.Duration

	// Rate, when > 0, additionally opens the breaker when the failure
	// fraction over the last Window dispatch outcomes reaches it (e.g.
	// 0.5 opens on half the window failing, consecutively or not). 0
	// disables the error-rate trigger.
	Rate float64

	// Window is the outcome-window size the Rate trigger evaluates over;
	// <= 0 means DefaultBreakerWindow. The trigger only fires once the
	// window is full, so a single early failure cannot open a breaker by
	// rate.
	Window int
}

func (c BreakerConfig) failures() int {
	if c.Failures <= 0 {
		return DefaultBreakerFailures
	}
	return c.Failures
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return c.Cooldown
}

func (c BreakerConfig) window() int {
	if c.Window <= 0 {
		return DefaultBreakerWindow
	}
	return c.Window
}

// breaker is one worker's circuit breaker. It is not self-locking: the
// Registry serializes every call under its own mutex, and passes `now`
// in so tests can drive the clock.
type breaker struct {
	cfg BreakerConfig

	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time

	// window is a ring of recent outcomes (true = failure) feeding the
	// error-rate trigger; wpos is the next write slot, wlen the fill.
	window []bool
	wpos   int
	wlen   int
}

// newBreaker builds a closed breaker from cfg.
func newBreaker(cfg BreakerConfig) breaker {
	b := breaker{cfg: cfg}
	if cfg.Rate > 0 {
		b.window = make([]bool, cfg.window())
	}
	return b
}

// admissible reports whether a dispatch may be sent through the breaker
// at time now, and whether that dispatch would be the half-open probe. A
// closed breaker admits freely; an open one admits nothing until its
// cooldown elapses, then exactly one probe; a half-open one admits
// nothing while its probe is in flight.
func (b *breaker) admissible(now time.Time) (ok, probe bool) {
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.cooldown() {
			return true, true
		}
	}
	return false, false
}

// probeAt transitions open → half-open as the probe dispatch launches.
// The caller must have seen admissible return probe=true under the same
// lock.
func (b *breaker) probeAt() {
	b.state = BreakerHalfOpen
}

// retryAt reports when an open breaker will next admit a dispatch (its
// half-open probe), and false for breakers that admit now or are waiting
// on an in-flight probe.
func (b *breaker) retryAt() (time.Time, bool) {
	if b.state == BreakerOpen {
		return b.openedAt.Add(b.cfg.cooldown()), true
	}
	return time.Time{}, false
}

// recordSuccess feeds a successful dispatch outcome: any state re-closes
// — a worker that answered correctly is alive, whatever the breaker
// thought — and the failure accounting resets.
func (b *breaker) recordSuccess() {
	b.state = BreakerClosed
	b.fails = 0
	if b.window != nil {
		b.record(false)
	}
}

// recordFailure feeds a failed dispatch outcome at time now: a half-open
// probe failure re-opens immediately; closed-state failures open the
// breaker when they hit the consecutive-failure threshold or push the
// windowed error rate past the configured fraction.
func (b *breaker) recordFailure(now time.Time) {
	if b.window != nil {
		b.record(true)
	}
	switch b.state {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.failures() || b.rateTripped() {
			b.open(now)
		}
	}
	// Already open: late outcomes of dispatches launched before the trip
	// change nothing.
}

// open trips the breaker at time now.
func (b *breaker) open(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.fails = 0
}

// record pushes one outcome into the rate window.
func (b *breaker) record(failed bool) {
	b.window[b.wpos] = failed
	b.wpos = (b.wpos + 1) % len(b.window)
	if b.wlen < len(b.window) {
		b.wlen++
	}
}

// rateTripped reports whether the windowed error rate reaches the
// configured threshold (only once the window is full).
func (b *breaker) rateTripped() bool {
	if b.window == nil || b.wlen < len(b.window) {
		return false
	}
	failed := 0
	for _, f := range b.window {
		if f {
			failed++
		}
	}
	return float64(failed)/float64(len(b.window)) >= b.cfg.Rate
}
