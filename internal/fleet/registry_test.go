package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRegistryMembership pins the dynamic-membership bookkeeping:
// Add/Remove/SetWorkers reconcile the member set while preserving the
// state of workers that stay.
func TestRegistryMembership(t *testing.T) {
	r := NewRegistry([]string{"A", "B"}, RegistryConfig{})
	if got := r.Len(); got != 2 {
		t.Fatalf("Len %d, want 2", got)
	}
	if r.Add("A") {
		t.Fatal("re-adding an existing member reported a join")
	}
	if !r.Add("C") || r.Len() != 3 {
		t.Fatal("adding a fresh member failed")
	}

	// B accumulates state that must survive reconciliation.
	r.success("B", time.Second)
	added, removed := r.SetWorkers([]string{"B", "D"})
	if added != 1 || removed != 2 {
		t.Fatalf("SetWorkers added %d removed %d, want 1 and 2", added, removed)
	}
	urls := r.URLs()
	if len(urls) != 2 || urls[0] != "B" || urls[1] != "D" {
		t.Fatalf("URLs after reconcile %v, want [B D]", urls)
	}
	for _, ws := range r.Snapshot() {
		if ws.URL == "B" && ws.Completions != 1 {
			t.Fatalf("B lost its state across SetWorkers: %+v", ws)
		}
	}

	if !r.Remove("B") || r.Remove("B") {
		t.Fatal("Remove bookkeeping wrong")
	}
}

// TestRegistryAcquireEmptyMembership pins the no-hang guarantee: an
// empty membership fails acquire with ErrNoWorkers immediately.
func TestRegistryAcquireEmptyMembership(t *testing.T) {
	r := NewRegistry(nil, RegistryConfig{})
	if _, err := r.acquire(context.Background(), ""); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("acquire on empty membership: %v, want ErrNoWorkers", err)
	}
}

// TestRegistryJoinUnblocksWaiter pins mid-run joins: a shard blocked
// waiting for any slot starts using a worker the moment it is added.
func TestRegistryJoinUnblocksWaiter(t *testing.T) {
	r := NewRegistry([]string{"A"}, RegistryConfig{PerWorker: 1})
	if w, ok := r.tryAcquire(nil); !ok || w != "A" {
		t.Fatalf("tryAcquire %q %v, want A", w, ok)
	}
	got := make(chan string, 1)
	go func() {
		w, err := r.acquire(context.Background(), "")
		if err != nil {
			t.Error(err)
		}
		got <- w
	}()
	// The waiter is blocked on A's single busy slot; a join must wake it.
	time.Sleep(10 * time.Millisecond)
	r.Add("B")
	select {
	case w := <-got:
		if w != "B" {
			t.Fatalf("woken waiter acquired %q, want the fresh joiner B", w)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never observed the join")
	}
}

// TestRegistryRemoveFailsWaiter pins the other half of the no-hang
// guarantee: when the last member leaves, blocked waiters fail with
// ErrNoWorkers instead of waiting for a join that may never come.
func TestRegistryRemoveFailsWaiter(t *testing.T) {
	r := NewRegistry([]string{"A"}, RegistryConfig{PerWorker: 1})
	r.tryAcquire(nil)
	got := make(chan error, 1)
	go func() {
		_, err := r.acquire(context.Background(), "")
		got <- err
	}()
	time.Sleep(10 * time.Millisecond)
	r.Remove("A")
	select {
	case err := <-got:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("waiter got %v, want ErrNoWorkers", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter hung after the last member left")
	}
}

// TestRegistryHoldExpiry pins the Retry-After hold: the held worker is
// unpickable until the hold expires, at which point blocked waiters are
// woken by the registry's timed wake — no external event needed.
func TestRegistryHoldExpiry(t *testing.T) {
	r := NewRegistry([]string{"A"}, RegistryConfig{})
	r.hold("A", 60*time.Millisecond)
	if _, ok := r.tryAcquire(nil); ok {
		t.Fatal("held worker was pickable")
	}
	start := time.Now()
	w, err := r.acquire(context.Background(), "")
	if err != nil || w != "A" {
		t.Fatalf("acquire after hold: %q, %v", w, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("acquire returned after %v, before the hold expired", elapsed)
	}
}

// TestRegistryBreakerShedsAndProbes pins load-shedding end to end: an
// open breaker makes the worker unpickable for the cooldown, then the
// registry's timed wake admits exactly one half-open probe dispatch,
// and a probe success re-closes the breaker.
func TestRegistryBreakerShedsAndProbes(t *testing.T) {
	r := NewRegistry([]string{"A"}, RegistryConfig{
		Breaker: BreakerConfig{Failures: 1, Cooldown: 60 * time.Millisecond},
	})
	r.failure("A", true, "injected")
	if g := r.Gauges(); g.Open != 1 {
		t.Fatalf("gauges after trip: %+v, want one open", g)
	}
	if _, ok := r.tryAcquire(nil); ok {
		t.Fatal("open breaker admitted a dispatch during cooldown")
	}

	start := time.Now()
	w, err := r.acquire(context.Background(), "")
	if err != nil || w != "A" {
		t.Fatalf("probe acquire: %q, %v", w, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("probe admitted after %v, before the cooldown", elapsed)
	}
	if g := r.Gauges(); g.HalfOpen != 1 {
		t.Fatalf("gauges during probe: %+v, want one half_open", g)
	}
	// While the probe is in flight nothing else is admissible.
	if _, ok := r.tryAcquire(nil); ok {
		t.Fatal("half-open breaker admitted a second dispatch")
	}
	r.success("A", time.Millisecond)
	r.release("A")
	if g := r.Gauges(); g.Healthy != 1 || g.Open != 0 || g.HalfOpen != 0 {
		t.Fatalf("gauges after probe success: %+v, want one healthy", g)
	}
}

// TestRegistryThroughputEWMA pins the allocation score's input: each
// success folds a shards/sec sample into the estimate, and the snapshot
// exposes it.
func TestRegistryThroughputEWMA(t *testing.T) {
	r := NewRegistry([]string{"A"}, RegistryConfig{EWMAAlpha: 0.5})
	r.success("A", time.Second) // first sample sets the estimate: 1/s
	r.success("A", 250*time.Millisecond)
	ws := r.Snapshot()[0]
	// 0.5*4 + 0.5*1 = 2.5 shards/sec.
	if ws.ShardsPerSec < 2.49 || ws.ShardsPerSec > 2.51 {
		t.Fatalf("EWMA %v, want 2.5", ws.ShardsPerSec)
	}
	if ws.Completions != 2 {
		t.Fatalf("completions %d, want 2", ws.Completions)
	}
}

// TestRegistryProbe pins probe semantics against live endpoints: a 200
// /readyz keeps (or restores) health, ProbeFailures consecutive
// failures mark a worker unhealthy, and one success heals it.
func TestRegistryProbe(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer healthy.Close()
	var sick bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()

	r := NewRegistry([]string{healthy.URL, flaky.URL}, RegistryConfig{ProbeFailures: 2})
	ctx := context.Background()
	r.Probe(ctx, nil)
	if g := r.Gauges(); g.Healthy != 2 {
		t.Fatalf("gauges after clean probe: %+v, want 2 healthy", g)
	}

	sick = true
	r.Probe(ctx, nil)
	if g := r.Gauges(); g.Healthy != 2 {
		t.Fatalf("one failed probe already demoted the worker: %+v", g)
	}
	r.Probe(ctx, nil)
	if g := r.Gauges(); g.Healthy != 1 {
		t.Fatalf("gauges after %d failed probes: %+v, want 1 healthy", 2, g)
	}
	var found bool
	for _, ws := range r.Snapshot() {
		if ws.URL == flaky.URL {
			found = true
			if ws.Healthy || ws.LastProbeError == "" {
				t.Fatalf("unhealthy worker snapshot %+v", ws)
			}
		}
	}
	if !found {
		t.Fatal("flaky worker missing from snapshot")
	}

	sick = false
	r.Probe(ctx, nil)
	if g := r.Gauges(); g.Healthy != 2 {
		t.Fatalf("gauges after recovery probe: %+v, want 2 healthy", g)
	}
}

// TestRegistryUnhealthyIsLastResort pins that a probed-unhealthy worker
// is still allocatable when it is all the fleet has — health demotes, it
// never deadlocks.
func TestRegistryUnhealthyIsLastResort(t *testing.T) {
	r := NewRegistry([]string{"A", "B"}, RegistryConfig{})
	r.mu.Lock()
	r.members["A"].healthy = false
	r.mu.Unlock()
	if w, ok := r.tryAcquire(nil); !ok || w != "B" {
		t.Fatalf("pick %q, want the healthy B", w)
	}
	if w, ok := r.tryAcquire(map[string]bool{"B": true}); !ok || w != "A" {
		t.Fatalf("pick with B excluded %q, want the unhealthy A as last resort", w)
	}
}
