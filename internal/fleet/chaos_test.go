package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro/internal/fleet/chaos"
	"repro/internal/shard"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// The TestChaos* suite is the robustness matrix `make chaos` runs under
// -race: every injected fault class must end in a merge byte-identical
// to the single-process curve (or a correctly annotated degraded merge
// under AllowPartial), open breakers must actually shed load, and the
// throughput-aware allocator must favor fast workers. Faults enter
// through chaos.Transport — the production dispatch path runs
// unmodified.

// chaosRun runs a fleet derivation with the given faulty transport and
// asserts the merge is byte-identical to the single-process curve.
func chaosRun(t *testing.T, n int, tr *chaos.Transport, opts Options) *Report {
	t.Helper()
	dir := t.TempDir()
	opts.Dir = dir
	opts.Client = tr.Client()
	if opts.BaseBackoff == 0 {
		opts.BaseBackoff = time.Millisecond
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = 4 * time.Millisecond
	}
	report, err := Run(context.Background(), testSpec(), n, opts)
	if err != nil {
		t.Fatalf("fleet run under fault: %v", err)
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("curve under fault differs from single-process derive")
	}
	assertCleanSpool(t, dir)
	return report
}

// statusOf finds a worker's final status in a report.
func statusOf(t *testing.T, report *Report, url string) WorkerStatus {
	t.Helper()
	for _, ws := range report.Workers {
		if ws.URL == url {
			return ws
		}
	}
	t.Fatalf("worker %s missing from report", url)
	return WorkerStatus{}
}

// TestChaosMatrix drives one faulty and one good worker through each
// transport fault class and requires an exact merge every time.
func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		name string
		// inject scripts the faulty worker; it returns extra Options and a
		// post-run assertion.
		inject func(tr *chaos.Transport, faulty string) (Options, func(t *testing.T, r *Report))
	}{
		{
			name: "hang",
			inject: func(tr *chaos.Transport, faulty string) (Options, func(*testing.T, *Report)) {
				tr.Script(faulty, chaos.Hang(), chaos.Hang())
				return Options{AttemptTimeout: 500 * time.Millisecond}, func(t *testing.T, r *Report) {
					if r.Retries == 0 {
						t.Fatal("hangs cost no retries — the faulty worker was never dispatched to")
					}
				}
			},
		},
		{
			name: "connection refused",
			inject: func(tr *chaos.Transport, faulty string) (Options, func(*testing.T, *Report)) {
				tr.Always(faulty, chaos.Refuse())
				return Options{}, func(t *testing.T, r *Report) {
					ws := statusOf(t, r, faulty)
					if ws.Completions != 0 || ws.Failures == 0 {
						t.Fatalf("refused worker books: %+v", ws)
					}
				}
			},
		},
		{
			name: "5xx flap",
			inject: func(tr *chaos.Transport, faulty string) (Options, func(*testing.T, *Report)) {
				tr.Script(faulty, chaos.Status(http.StatusInternalServerError, 0),
					chaos.Status(http.StatusInternalServerError, 0), chaos.Pass())
				return Options{}, nil
			},
		},
		{
			name: "partition mid-body",
			inject: func(tr *chaos.Transport, faulty string) (Options, func(*testing.T, *Report)) {
				tr.Script(faulty, chaos.PartitionMidBody(), chaos.PartitionMidBody())
				return Options{}, func(t *testing.T, r *Report) {
					if r.Retries == 0 {
						t.Fatal("partitions cost no retries")
					}
				}
			},
		},
		{
			name: "slow drip past the attempt deadline",
			inject: func(tr *chaos.Transport, faulty string) (Options, func(*testing.T, *Report)) {
				tr.Script(faulty, chaos.SlowDrip(2*time.Second, 64), chaos.SlowDrip(2*time.Second, 64))
				return Options{AttemptTimeout: 300 * time.Millisecond}, nil
			},
		},
		{
			name: "saturated with Retry-After",
			inject: func(tr *chaos.Transport, faulty string) (Options, func(*testing.T, *Report)) {
				tr.Script(faulty, chaos.Status(http.StatusTooManyRequests, time.Second),
					chaos.Status(http.StatusTooManyRequests, time.Second))
				return Options{}, func(t *testing.T, r *Report) {
					if r.Deferrals == 0 {
						t.Fatal("Retry-After answers produced no deferrals")
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faulty, good := newWorker(t, nil), newWorker(t, nil)
			tr := chaos.NewTransport(nil)
			opts, check := tc.inject(tr, faulty.URL)
			opts.Workers = []string{faulty.URL, good.URL}
			report := chaosRun(t, 4, tr, opts)
			if check != nil {
				check(t, report)
			}
		})
	}
}

// TestChaosBreakerShedsLoad pins load-shedding at fleet scale: a worker
// that refuses every connection trips its breaker after the configured
// failures, and — with the cooldown longer than the run — absorbs no
// further dispatches while the healthy worker serves everything.
func TestChaosBreakerShedsLoad(t *testing.T) {
	faulty, good := newWorker(t, nil), newWorker(t, nil)
	tr := chaos.NewTransport(nil)
	tr.Always(faulty.URL, chaos.Refuse())

	const n = 12
	report := chaosRun(t, n, tr, Options{
		Workers: []string{faulty.URL, good.URL},
		Breaker: BreakerConfig{Failures: 2, Cooldown: time.Minute},
	})

	fs, gs := statusOf(t, report, faulty.URL), statusOf(t, report, good.URL)
	if fs.Breaker != "open" {
		t.Fatalf("faulty worker breaker %q, want open", fs.Breaker)
	}
	// The trip happens after 2 consecutive failures; with 2 slots the
	// in-flight window can add at most 2 more dispatches before every
	// later acquire sees the open breaker. 12 shards, so an unshed worker
	// would have absorbed far more.
	if fs.Dispatches > 4 {
		t.Fatalf("open breaker did not shed: faulty worker absorbed %d dispatches", fs.Dispatches)
	}
	if fs.Completions != 0 || gs.Completions != n {
		t.Fatalf("completions faulty=%d good=%d, want 0 and %d", fs.Completions, gs.Completions, n)
	}
}

// TestChaosBreakerRecovery pins the half-open cycle end to end on a
// one-worker fleet: failures open the breaker, the shard then waits out
// the cooldown (no dispatches land meanwhile — the run cannot finish
// faster than the cooldown), the half-open probe dispatch succeeds, and
// the breaker re-closes.
func TestChaosBreakerRecovery(t *testing.T) {
	worker := newWorker(t, nil)
	tr := chaos.NewTransport(nil)
	tr.Script(worker.URL, chaos.Refuse(), chaos.Refuse())

	const cooldown = 300 * time.Millisecond
	start := time.Now()
	report := chaosRun(t, 1, tr, Options{
		Workers:    []string{worker.URL},
		MaxRetries: 5,
		Breaker:    BreakerConfig{Failures: 2, Cooldown: cooldown},
	})
	if elapsed := time.Since(start); elapsed < cooldown {
		t.Fatalf("run finished in %v, inside the %v cooldown — the open breaker admitted a dispatch early", elapsed, cooldown)
	}
	ws := statusOf(t, report, worker.URL)
	if ws.Breaker != "closed" {
		t.Fatalf("breaker %q after successful probe, want closed", ws.Breaker)
	}
	if ws.Dispatches != 3 || ws.Completions != 1 {
		t.Fatalf("books %+v, want exactly 2 failures + 1 probe completion", ws)
	}
}

// TestChaosThroughputAllocation pins the EWMA scoring: against one fast
// and one slow (but correct) worker, the fast worker measurably
// receives — and completes — more shards.
func TestChaosThroughputAllocation(t *testing.T) {
	fast, slow := newWorker(t, nil), newWorker(t, nil)
	tr := chaos.NewTransport(nil)
	// ~2×200ms per slow response (one dripped data read + the EOF read);
	// the fast worker answers at compute speed.
	tr.Always(slow.URL, chaos.SlowDrip(200*time.Millisecond, 1<<20))

	report := chaosRun(t, 10, tr, Options{
		Workers: []string{fast.URL, slow.URL},
	})
	fs, ss := statusOf(t, report, fast.URL), statusOf(t, report, slow.URL)
	if fs.Completions <= ss.Completions {
		t.Fatalf("throughput allocation: fast worker completed %d, slow %d — want strictly more on the fast one",
			fs.Completions, ss.Completions)
	}
	if fs.ShardsPerSec <= ss.ShardsPerSec {
		t.Fatalf("EWMA fast=%v slow=%v, want fast > slow", fs.ShardsPerSec, ss.ShardsPerSec)
	}
}

// TestChaosWorkerJoins pins dynamic membership mid-run: a fleet started
// on one slow worker gets a fast joiner partway through, and the joiner
// picks up queued shards — with the merge still byte-identical.
func TestChaosWorkerJoins(t *testing.T) {
	slow, fresh := newWorker(t, nil), newWorker(t, nil)
	tr := chaos.NewTransport(nil)
	tr.Always(slow.URL, chaos.SlowDrip(100*time.Millisecond, 1<<20))

	reg := NewRegistry([]string{slow.URL}, RegistryConfig{PerWorker: 1})
	dir := t.TempDir()
	done := make(chan *Report, 1)
	go func() {
		report, err := Run(context.Background(), testSpec(), 6, Options{
			Registry: reg,
			Dir:      dir,
			Client:   tr.Client(),
		})
		if err != nil {
			t.Error(err)
		}
		done <- report
	}()

	// Let the slow worker absorb the head of the queue, then join.
	time.Sleep(250 * time.Millisecond)
	if !reg.Add(fresh.URL) {
		t.Fatal("join rejected")
	}
	report := <-done
	if report == nil {
		t.Fatal("run failed")
	}
	got, err := json.Marshal(report.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantCurve(t) {
		t.Fatal("curve after mid-run join differs from single-process derive")
	}
	if ws := statusOf(t, report, fresh.URL); ws.Completions == 0 {
		t.Fatalf("mid-run joiner completed no shards: %+v", ws)
	}
	assertCleanSpool(t, dir)
}

// TestChaosLastWorkerDies pins the no-hang guarantee when the fleet
// runs out of workers, in all three endings: retry-budget exhaustion
// names ErrRetriesExhausted, an emptied membership names ErrNoWorkers,
// and AllowPartial degrades instead of failing.
func TestChaosLastWorkerDies(t *testing.T) {
	t.Run("retries exhausted", func(t *testing.T) {
		worker := newWorker(t, nil)
		tr := chaos.NewTransport(nil)
		tr.Always(worker.URL, chaos.Refuse())
		_, err := Run(context.Background(), testSpec(), 2, Options{
			Workers:     []string{worker.URL},
			Dir:         t.TempDir(),
			Client:      tr.Client(),
			MaxRetries:  1,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  2 * time.Millisecond,
			Breaker:     BreakerConfig{Cooldown: 20 * time.Millisecond},
		})
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("run error %v, want ErrRetriesExhausted", err)
		}
	})

	t.Run("membership emptied", func(t *testing.T) {
		worker := newWorker(t, nil)
		tr := chaos.NewTransport(nil)
		tr.Always(worker.URL, chaos.Hang())
		reg := NewRegistry([]string{worker.URL}, RegistryConfig{})
		errc := make(chan error, 1)
		go func() {
			_, err := Run(context.Background(), testSpec(), 2, Options{
				Registry:       reg,
				Dir:            t.TempDir(),
				Client:         tr.Client(),
				AttemptTimeout: 200 * time.Millisecond,
				MaxRetries:     10,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     2 * time.Millisecond,
			})
			errc <- err
		}()
		time.Sleep(50 * time.Millisecond)
		reg.Remove(worker.URL)
		select {
		case err := <-errc:
			if !errors.Is(err, ErrNoWorkers) {
				t.Fatalf("run error %v, want ErrNoWorkers", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run hung after the last worker left")
		}
	})

	t.Run("degrades under allow_partial", func(t *testing.T) {
		// Shard 0 of 2 is already spooled by a previous (coordinator's)
		// life; every worker is dead. AllowPartial must produce the
		// annotated half-coverage envelope instead of an error.
		dir := t.TempDir()
		spoolShard(t, dir, 0, 2)
		worker := newWorker(t, nil)
		tr := chaos.NewTransport(nil)
		tr.Always(worker.URL, chaos.Refuse())
		report, err := Run(context.Background(), testSpec(), 2, Options{
			Workers:      []string{worker.URL},
			Dir:          dir,
			Client:       tr.Client(),
			MaxRetries:   -1,
			AllowPartial: true,
		})
		if err != nil {
			t.Fatalf("allow_partial run failed outright: %v", err)
		}
		if report.Degraded == nil || report.Curve != nil {
			t.Fatal("run did not degrade")
		}
		d := report.Degraded
		if d.CoveredFraction <= 0 || d.CoveredFraction >= 1 {
			t.Fatalf("degraded covered fraction %v, want partial coverage", d.CoveredFraction)
		}
		if len(d.MissingShards) != 1 || d.MissingShards[0] != 1 {
			t.Fatalf("degraded missing shards %v, want [1]", d.MissingShards)
		}
	})
}

// spoolShard derives one shard locally into the spool, standing in for
// a previous coordinator's completed work.
func spoolShard(t *testing.T, dir string, index, count int) {
	t.Helper()
	job, err := testSpec().Compile(shard.Plan{Index: index, Count: count}, workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: supervise.ShardPath(dir, index, count)}); err != nil {
		t.Fatal(err)
	}
}
