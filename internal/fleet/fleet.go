// Package fleet distributes a sharded bound derivation across worker
// processes over HTTP — the step from "one big machine" to "fleet". It
// is the coordinator half of the wire protocol in docs/fleet-protocol.md:
// the worker half is the POST /v1/shard endpoint internal/serve mounts.
//
// The coordinator decomposes a compiled workload.Spec into the same
// deterministic shard plan a single process would use (shard.Plan over
// the flat enumeration space), dispatches each slice to a peer worker,
// and owns the supervise-style reliability policy around the dispatches:
//
//   - Per-worker parallelism caps. Each worker URL holds a fixed number
//     of dispatch slots; a shard waits for a free slot anywhere in the
//     fleet rather than overloading one worker.
//   - Bounded retries with backoff. A failed dispatch (network error,
//     worker 5xx/429/503, invalid response) is retried on another worker
//     with exponential backoff and deterministic jitter, up to a budget.
//     Deterministic rejections (worker 4xx) are not retried: the same
//     spec would fail the same way everywhere.
//   - Per-attempt deadlines. A dispatch that exceeds Options.
//     AttemptTimeout is abandoned and retried; the worker's checkpoint
//     survives, so the retry resumes rather than restarts server-side.
//   - Quarantine of invalid responses. A response that is not a
//     structurally valid, complete, digest-compatible partial frontier
//     is written aside (never to the shard's slot) and the dispatch
//     retried elsewhere — a byzantine or torn response can cost time,
//     never correctness.
//   - Speculative re-execution. When a dispatch outlives
//     Options.SpeculateAfter and an idle slot exists on a different
//     worker, the slice is launched there too; the first valid response
//     wins and the loser is cancelled. Duplicates are discarded after
//     digest validation, so speculation never double-counts.
//   - Fleet health and membership. The Registry tracks each worker's
//     probed health (/readyz), a per-worker circuit breaker that opens
//     on consecutive failures (or a windowed error rate) and sheds load
//     until a half-open probe dispatch succeeds, Retry-After holds, and
//     an EWMA shards/sec throughput estimate that allocation ranks by —
//     fast workers get proportionally more dispatches. Membership is
//     dynamic: workers added mid-run start receiving queued shards, and
//     an emptied membership fails pending shards with ErrNoWorkers
//     instead of hanging. See docs/fleet-protocol.md "Health, membership
//     & breakers".
//
// Completed partials land in the supervise spool layout
// (supervise.ShardPath under Options.Dir), written atomically by
// shard.WritePartial: a killed coordinator resumes by rerunning — or via
// serve.ResumeOrphans / shardmerge -resume — and the final merge reuses
// shard.MergeFiles / shard.MergeDegraded, so a fleet result is
// byte-identical to a single-process derivation (or the same annotated
// degraded envelope under Options.AllowPartial).
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// Defaults for the dispatch policy; tests shorten them via Options.
const (
	// DefaultPerWorker is the per-worker concurrent-dispatch cap when
	// Options.PerWorker is unset.
	DefaultPerWorker = 2

	// maxShardDeferrals bounds how many Retry-After deferrals one shard
	// absorbs without burning retry budget; past it a deferral is treated
	// as an ordinary retryable failure, so a fleet that politely defers
	// forever still terminates.
	maxShardDeferrals = 64
)

// ErrNoWorkers is returned (wrapped) when a dispatch finds the fleet
// membership empty — every worker removed at runtime, or none
// configured. Shards fail with it immediately rather than waiting for a
// join that may never come.
var ErrNoWorkers = errors.New("fleet: no workers in membership")

// ErrRetriesExhausted marks (wrapped, alongside the last dispatch
// error) a shard that spent its whole retry budget without a valid
// response — the "every remaining worker is dead or lying" outcome.
// errors.Is(err, ErrRetriesExhausted) holds for Run's error when any
// shard failed this way and AllowPartial did not promote the run to a
// degraded merge.
var ErrRetriesExhausted = errors.New("fleet: retry budget exhausted")

// ShardRequest is the body of POST /v1/shard — the coordinator→worker
// half of the fleet wire protocol (docs/fleet-protocol.md). The response
// to a 200 is the raw partial-frontier file defined in
// docs/shard-format.md. The type lives here so the coordinator and the
// serve worker endpoint share one schema; both sides reject unknown
// fields so a schema skew degrades to a 400, never to a silently
// different derivation.
type ShardRequest struct {
	// Spec is the canonical encoding of a materialized workload.Spec
	// (Spec.Encode). The worker compiles it through the engine registry;
	// a kind absent from the registry is a structured 400.
	Spec json.RawMessage `json:"spec"`

	// ShardIndex (0-based) of ShardCount selects the plan slice the
	// worker derives.
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`

	// CheckpointEvery overrides the worker-side checkpoint stride
	// (shard.RunOptions semantics; 0 means the worker's default).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`

	// TimeoutMS bounds the worker-side wall time of the shard run. Zero
	// means the worker's default; values above its maximum clamp.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// MaxFormatVersion is the newest partial-frontier format version the
	// coordinator can read (version negotiation against
	// docs/shard-format.md). Zero means "any"; a worker that only writes
	// newer formats answers 400 unsupported_version instead of bytes the
	// coordinator would have to quarantine.
	MaxFormatVersion int `json:"max_format_version,omitempty"`
}

// Options tunes a fleet run.
type Options struct {
	// Workers are the base URLs of the peer workers (each serving POST
	// /v1/shard), e.g. "http://host:8080". Required, at least one.
	Workers []string

	// Dir is the spool directory completed partial frontiers land in
	// (supervise.ShardPath layout). Required.
	Dir string

	// PerWorker caps concurrent dispatches per worker; <= 0 means
	// DefaultPerWorker.
	PerWorker int

	// MaxRetries is the per-shard retry budget beyond the first dispatch
	// (supervise.Options.MaxRetries semantics: 0 means
	// supervise.DefaultMaxRetries, negative means no retries).
	MaxRetries int

	// BaseBackoff and MaxBackoff bound the exponential backoff between a
	// shard's dispatches, with deterministic jitter seeded by JitterSeed
	// (supervise semantics; zero values pick the supervise defaults).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	JitterSeed  int64

	// AttemptTimeout, when positive, bounds each dispatch; a dispatch
	// that exceeds it is cancelled and retried. The worker's checkpoint
	// survives the cancellation, so retries resume server-side progress.
	AttemptTimeout time.Duration

	// SpeculateAfter, when positive, launches a duplicate dispatch of a
	// still-running slice on an idle different worker after this delay;
	// the first valid response wins. Zero disables speculation.
	SpeculateAfter time.Duration

	// CheckpointEvery is forwarded to workers as the checkpoint stride.
	CheckpointEvery int64

	// AllowPartial permits a degraded merge when shards fail permanently
	// (supervise semantics): the result carries its covered index
	// fraction instead of being refused.
	AllowPartial bool

	// Exec configures locally compiled jobs (digest/expectation
	// building only; no local derivation runs). Worker counts never
	// affect results, so the zero value is fine.
	Exec workload.Exec

	// Client is the HTTP client dispatches use; nil means
	// http.DefaultClient. Injecting a client with a scripted
	// http.RoundTripper is the fault-injection seam the fleet and chaos
	// tests use.
	Client *http.Client

	// Registry, when non-nil, is an externally owned membership the run
	// dispatches through: health, breaker, hold and throughput state
	// persist across runs (serve shares one Registry per server), and
	// runtime Add/Remove/SetWorkers calls steer this run live. Workers
	// listed in Options.Workers are joined to it. When nil, the run
	// builds a private registry from Workers.
	Registry *Registry

	// ProbeInterval, when positive and the run owns its registry (no
	// Options.Registry), probes each member's /readyz on this period for
	// the duration of the run. An externally owned registry does its own
	// probing (Registry.StartProbing).
	ProbeInterval time.Duration

	// Breaker tunes the per-worker circuit breakers of a run-owned
	// registry; ignored when Options.Registry is set.
	Breaker BreakerConfig

	// Logf, when non-nil, receives human-readable progress and failure
	// lines (retries, quarantines, speculation).
	Logf func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *Options) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

func (o *Options) perWorker() int {
	if o.PerWorker <= 0 {
		return DefaultPerWorker
	}
	return o.PerWorker
}

func (o *Options) maxRetries() int {
	switch {
	case o.MaxRetries == 0:
		return supervise.DefaultMaxRetries
	case o.MaxRetries < 0:
		return 0
	}
	return o.MaxRetries
}

func (o *Options) backoffBounds() (base, max time.Duration) {
	base, max = o.BaseBackoff, o.MaxBackoff
	if base <= 0 {
		base = supervise.DefaultBaseBackoff
	}
	if max <= 0 {
		max = supervise.DefaultMaxBackoff
	}
	if max < base {
		max = base
	}
	return base, max
}

// ShardState reports what the coordinator did for one shard.
type ShardState struct {
	Plan shard.Plan
	Path string // partial-frontier file in the spool

	// Dispatches counts HTTP attempts launched for this shard, including
	// speculative duplicates; Speculated counts just the duplicates.
	Dispatches int
	Speculated int

	// Deferred counts Retry-After deferrals this shard absorbed (held
	// the worker, retried elsewhere, no retry budget spent).
	Deferred int

	// Quarantined lists files holding invalid worker responses (and
	// corrupt pre-existing spool partials) set aside for inspection.
	Quarantined []string

	// Resumed reports the shard was already complete in the spool — a
	// previous coordinator's work honored without any dispatch.
	Resumed bool

	// Worker is the URL whose response won (empty when Resumed or failed).
	Worker string

	Completed bool
	// Covered is the number of enumeration indices the shard's slice
	// spans (the coordinator does not observe worker-side evaluation
	// counts; coverage is what it can vouch for).
	Covered int64
	// Err is the terminal error when !Completed (nil if interrupted
	// cleanly; the shard stays resumable either way).
	Err error
}

// Report is the outcome of a fleet run: per-shard states, totals for
// operational telemetry, and exactly one of Curve (exact merge) or
// Degraded (annotated best-effort merge under AllowPartial); both nil
// when the run was interrupted or failed.
type Report struct {
	Shards      []ShardState
	Curve       *pareto.Curve
	Degraded    *shard.Degraded
	Interrupted bool

	// Dispatches, Retries, Speculations, Quarantines and Deferrals
	// aggregate the per-shard counts — the numbers serve feeds into
	// /stats.
	Dispatches   int64
	Retries      int64
	Speculations int64
	Quarantines  int64
	Deferrals    int64

	// Workers is the per-worker health, breaker and throughput snapshot
	// at the end of the run (Registry.Snapshot).
	Workers []WorkerStatus
}

// coord is one Run invocation's shared state.
type coord struct {
	spec *workload.Spec
	data []byte // canonical spec encoding shipped in every request
	n    int
	opts *Options
	reg  *Registry

	dispatches   atomic.Int64
	retries      atomic.Int64
	speculations atomic.Int64
	quarantines  atomic.Int64
	deferrals    atomic.Int64
}

// record feeds one dispatch outcome into the registry's health books.
// It runs in the dispatch goroutine so speculative losers' outcomes are
// recorded too.
func (c *coord) record(worker string, elapsed time.Duration, err error) {
	var ra *RetryAfterError
	var perm *PermanentError
	switch {
	case err == nil:
		c.reg.success(worker, elapsed)
	case errors.Is(err, context.Canceled):
		// A cancelled dispatch — the run interrupted, or a speculation
		// loser — says nothing about the worker's health.
	case errors.As(err, &ra):
		// A polite deferral holds exactly that worker for exactly the
		// hinted duration; it never trips the breaker.
		c.reg.hold(worker, ra.After)
		c.reg.failure(worker, false, err.Error())
	case errors.As(err, &perm):
		// Deterministic spec rejections are about the request, not the
		// worker.
		c.reg.failure(worker, false, err.Error())
	default:
		// Transport errors, 5xx, invalid responses, and attempt timeouts
		// (context.DeadlineExceeded — a hung worker) trip the breaker.
		c.reg.failure(worker, true, err.Error())
	}
}

// Run dispatches an n-shard derivation of spec across the fleet and
// merges the result. The spec must be materialized (workload.Spec.
// Materialize) — its digests are the merge-compatibility identity every
// worker response is validated against. Completed partials land in
// Options.Dir in the supervise layout; shards already complete there are
// honored without dispatch, so rerunning after a coordinator kill
// resumes instead of restarting. On success the report carries the exact
// merged curve, byte-identical to a single-process derivation; permanent
// shard failures fail the run unless Options.AllowPartial promotes the
// outcome to a degraded merge. Cancelled runs return ctx's error with
// Report.Interrupted set; every dispatched worker keeps its checkpoint.
func Run(ctx context.Context, spec *workload.Spec, n int, opts Options) (*Report, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: shard count %d, want >= 1", n)
	}
	if len(opts.Workers) == 0 && opts.Registry == nil {
		return nil, fmt.Errorf("fleet: no workers")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("fleet: no spool directory")
	}
	if spec == nil {
		return nil, fmt.Errorf("fleet: nil spec")
	}
	if _, _, err := spec.Digests(); err != nil {
		return nil, fmt.Errorf("fleet: spec is not dispatchable: %w", err)
	}
	data, err := spec.Encode()
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding spec: %w", err)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}

	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry(opts.Workers, RegistryConfig{
			PerWorker: opts.perWorker(),
			Breaker:   opts.Breaker,
			Logf:      opts.Logf,
		})
		if opts.ProbeInterval > 0 {
			pctx, pcancel := context.WithCancel(ctx)
			defer pcancel()
			reg.StartProbing(pctx, opts.ProbeInterval, opts.client())
		}
	} else {
		for _, w := range opts.Workers {
			reg.Add(w)
		}
	}
	c := &coord{
		spec: spec,
		data: data,
		n:    n,
		opts: &opts,
		reg:  reg,
	}
	// Wake registry waiters when the run is cancelled, so shards blocked
	// on a slot observe ctx promptly.
	stopWake := context.AfterFunc(ctx, c.reg.wakeAll)
	defer stopWake()

	report := &Report{Shards: make([]ShardState, n)}
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			report.Shards[k] = c.runShard(ctx, k)
		}(k)
	}
	wg.Wait()
	report.Dispatches = c.dispatches.Load()
	report.Retries = c.retries.Load()
	report.Speculations = c.speculations.Load()
	report.Quarantines = c.quarantines.Load()
	report.Deferrals = c.deferrals.Load()
	report.Workers = c.reg.Snapshot()

	if err := ctx.Err(); err != nil {
		report.Interrupted = true
		opts.logf("fleet: interrupted; completed partials are spooled, rerun to resume")
		return report, err
	}

	var failed []error
	for k := range report.Shards {
		if st := &report.Shards[k]; !st.Completed {
			failed = append(failed, st.Err)
		}
	}
	if len(failed) == 0 {
		paths := make([]string, n)
		for k := range paths {
			paths[k] = report.Shards[k].Path
		}
		curve, err := shard.MergeFiles(paths...)
		if err != nil {
			return report, fmt.Errorf("fleet: final merge: %w", err)
		}
		report.Curve = curve
		return report, nil
	}
	if !opts.AllowPartial {
		// Wrapping the joined shard errors keeps the sentinels reachable:
		// errors.Is(err, ErrRetriesExhausted) and errors.Is(err,
		// ErrNoWorkers) hold at the run level.
		return report, fmt.Errorf("fleet: %d of %d shards failed permanently (rerun to retry, or allow a degraded merge): %w",
			len(failed), n, errors.Join(failed...))
	}
	degraded, err := mergeDegraded(report, &opts)
	if err != nil {
		return report, err
	}
	report.Degraded = degraded
	opts.logf("fleet: degraded merge covers %d of %d indices (%.2f%%); missing shards %v, incomplete %v",
		degraded.CoveredIndices, degraded.Items, 100*degraded.CoveredFraction,
		degraded.MissingShards, degraded.IncompleteShards)
	return report, nil
}

// mergeDegraded merges every readable partial the run left in the spool.
func mergeDegraded(report *Report, opts *Options) (*shard.Degraded, error) {
	var partials []*shard.Partial
	for k := range report.Shards {
		st := &report.Shards[k]
		p, err := shard.ReadPartial(st.Path)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				opts.logf("fleet: degraded merge skips %s: %v", st.Path, err)
			}
			continue
		}
		partials = append(partials, p)
	}
	if len(partials) == 0 {
		return nil, fmt.Errorf("fleet: degraded merge: no readable partial frontiers")
	}
	sort.Slice(partials, func(i, j int) bool {
		return partials[i].Manifest.ShardIndex < partials[j].Manifest.ShardIndex
	})
	return shard.MergeDegraded(partials...)
}

// runShard drives one shard through dispatches, speculation, backoff and
// quarantine until it completes, exhausts its retry budget, or the run
// context is cancelled.
func (c *coord) runShard(ctx context.Context, k int) ShardState {
	plan := shard.Plan{Index: k, Count: c.n}
	st := ShardState{Plan: plan, Path: supervise.ShardPath(c.opts.Dir, k, c.n)}
	job, err := c.spec.Compile(plan, c.opts.Exec)
	if err != nil {
		st.Err = fmt.Errorf("fleet: building expectation for shard %s: %w", plan, err)
		return st
	}
	expected := expectedManifest(&job)
	st.Covered = expected.RangeHi - expected.RangeLo

	// Honor spooled work first: a complete compatible partial is a
	// previous coordinator's result; a corrupt or foreign one is
	// quarantined so this run's winner can land cleanly.
	switch prev, err := shard.ReadPartial(st.Path); {
	case err == nil:
		if cerr := expected.CompatibleWith(&prev.Manifest); cerr == nil &&
			prev.Manifest.ShardIndex == plan.Index && prev.Manifest.Complete() {
			st.Completed, st.Resumed = true, true
			return st
		} else if cerr != nil || prev.Manifest.ShardIndex != plan.Index {
			c.quarantineFile(&st, "foreign spool partial")
		}
		// Incomplete but ours: the winner's atomic WritePartial will
		// replace it; nothing to do.
	case errors.Is(err, fs.ErrNotExist):
	case errors.Is(err, shard.ErrCorruptPartial):
		c.quarantineFile(&st, "corrupt spool partial")
	default:
		st.Err = fmt.Errorf("fleet: inspecting spool partial %s: %w", st.Path, err)
		return st
	}

	base, maxb := c.opts.backoffBounds()
	seed := c.opts.JitterSeed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed + int64(k)))
	retries := c.opts.maxRetries()

	avoid := ""
	for attempt := 0; ; {
		partial, worker, aerr := c.attemptWithSpeculation(ctx, &st, plan, &expected, avoid)
		if aerr == nil {
			if werr := shard.WritePartial(st.Path, partial); werr != nil {
				st.Err = fmt.Errorf("fleet: spooling shard %s: %w", plan, werr)
				return st
			}
			st.Completed = true
			st.Worker = worker
			return st
		}
		if ctx.Err() != nil {
			st.Err = ctx.Err()
			return st
		}
		if errors.Is(aerr, ErrNoWorkers) {
			// An emptied membership fails the shard immediately: waiting
			// would hang on a join that may never come, and retrying cannot
			// conjure a worker.
			st.Err = fmt.Errorf("fleet: shard %s: %w", plan, aerr)
			return st
		}
		var perm *PermanentError
		if errors.As(aerr, &perm) {
			st.Err = fmt.Errorf("fleet: shard %s rejected deterministically: %w", plan, aerr)
			return st
		}
		// A Retry-After deferral already held the worker (coord.record);
		// retry elsewhere immediately without burning budget or backing
		// off — bounded so perpetual deferrals still terminate.
		var ra *RetryAfterError
		if errors.As(aerr, &ra) && st.Deferred < maxShardDeferrals {
			st.Deferred++
			c.deferrals.Add(1)
			c.opts.logf("fleet: shard %s deferred by %s for %v; retrying elsewhere", plan, ra.Worker, ra.After)
			avoid = ""
			continue
		}
		if attempt >= retries {
			st.Err = fmt.Errorf("fleet: shard %s failed after %d dispatches: %w: %w", plan, st.Dispatches, ErrRetriesExhausted, aerr)
			return st
		}
		avoid = worker
		c.retries.Add(1)
		delay := backoffDelay(base, maxb, attempt, rng)
		attempt++
		c.opts.logf("fleet: shard %s dispatch failed (%v); retrying in %v", plan, aerr, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			st.Err = ctx.Err()
			return st
		}
	}
}

// attemptResult is one dispatch's outcome.
type attemptResult struct {
	partial *shard.Partial
	worker  string
	qpath   string // quarantine file holding an invalid response, if any
	err     error
}

// attemptWithSpeculation runs one retry round: a primary dispatch, plus —
// after Options.SpeculateAfter with no result yet — at most one
// speculative duplicate on an idle different worker. The first valid
// response wins (the duplicate's context is cancelled; its late response
// is discarded). Returns the winning partial and worker, or — when every
// launched dispatch failed — the last failed worker and the first error.
func (c *coord) attemptWithSpeculation(ctx context.Context, st *ShardState, plan shard.Plan, expected *shard.Manifest, avoid string) (*shard.Partial, string, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	primary, err := c.reg.acquire(actx, avoid)
	if err != nil {
		return nil, "", err
	}
	results := make(chan attemptResult, 2)
	inFlight := map[string]bool{primary: true}
	launch := func(worker string) {
		st.Dispatches++
		c.dispatches.Add(1)
		go func() {
			defer c.reg.release(worker)
			start := time.Now()
			p, qpath, aerr := c.post(actx, st.Path, plan, expected, worker)
			// Health accounting happens here, in the dispatch goroutine, so
			// speculation losers' outcomes reach the breaker and the
			// throughput estimate too.
			c.record(worker, time.Since(start), aerr)
			results <- attemptResult{partial: p, worker: worker, qpath: qpath, err: aerr}
		}()
	}
	launch(primary)

	var spec <-chan time.Time
	if c.opts.SpeculateAfter > 0 {
		t := time.NewTimer(c.opts.SpeculateAfter)
		defer t.Stop()
		spec = t.C
	}
	var firstErr error
	lastWorker := primary
	pending := 1
	for {
		select {
		case r := <-results:
			pending--
			if r.qpath != "" {
				st.Quarantined = append(st.Quarantined, r.qpath)
			}
			if r.err == nil {
				return r.partial, r.worker, nil
			}
			lastWorker = r.worker
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return nil, lastWorker, firstErr
			}
		case <-spec:
			spec = nil
			if w, ok := c.reg.tryAcquire(inFlight); ok {
				inFlight[w] = true
				pending++
				st.Speculated++
				c.speculations.Add(1)
				c.opts.logf("fleet: shard %s straggling; speculating on %s", plan, w)
				launch(w)
			}
		case <-ctx.Done():
			return nil, lastWorker, ctx.Err()
		}
	}
}

// quarantineFile renames the shard's spool slot aside to the first free
// "<path>.corrupt[.N]" name, recording it in the shard state.
func (c *coord) quarantineFile(st *ShardState, why string) {
	for i := 0; ; i++ {
		qpath := st.Path + ".corrupt"
		if i > 0 {
			qpath = fmt.Sprintf("%s.corrupt.%d", st.Path, i)
		}
		if _, err := os.Stat(qpath); err == nil {
			continue
		}
		if err := os.Rename(st.Path, qpath); err != nil {
			c.opts.logf("fleet: cannot quarantine %s (%s): %v", st.Path, why, err)
			return
		}
		st.Quarantined = append(st.Quarantined, qpath)
		c.quarantines.Add(1)
		c.opts.logf("fleet: quarantined %s (%s) to %s", st.Path, why, qpath)
		return
	}
}

// expectedManifest builds the manifest every response for this shard
// must be compatible with — the same construction shard.Run stamps into
// checkpoints, derived locally so validation never trusts the wire.
func expectedManifest(job *shard.Job) shard.Manifest {
	lo, hi := job.Plan.Slice(job.Items)
	return shard.Manifest{
		FormatVersion:    shard.FormatVersion,
		Engine:           shard.Engine,
		Kind:             job.Kind,
		Workload:         job.Workload,
		WorkloadDigest:   job.WorkloadDigest,
		OptionsDigest:    job.OptionsDigest,
		ShardIndex:       job.Plan.Index,
		ShardCount:       job.Plan.Count,
		Items:            job.Items,
		RangeLo:          lo,
		RangeHi:          hi,
		CompletedThrough: lo,
		Spec:             job.Spec,
	}
}

// backoffDelay computes attempt k's wait: base·2^k capped at max, with
// ±50% jitter from the shard's deterministic stream (supervise
// semantics).
func backoffDelay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	j := d/2 + time.Duration(rng.Int63n(int64(d)+1))
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}
