// Package chaos is the transport-fault seam of the fleet robustness
// suite: a scripted http.RoundTripper that injects the failure classes
// distributed fleets see in practice — hangs, connection refusals,
// mid-body partitions, 5xx flaps, Retry-After deferrals, and slow-drip
// responses — per worker, deterministically, in-process. The fleet
// coordinator takes any *http.Client (fleet.Options.Client), so a
// Transport wrapped in a client drives the whole dispatch path through
// real HTTP semantics with no test hooks inside the production code.
//
// Faults are keyed by worker base URL. A script is a finite sequence
// consumed one fault per request (then requests pass through); Always
// installs a persistent fault that applies once any script is drained.
// The zero set passes every request through untouched.
package chaos

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Fault intercepts one HTTP request. inner performs the real round
// trip; a fault may call it (to corrupt a genuine response), synthesize
// a response, or fail without any I/O.
type Fault interface {
	apply(req *http.Request, inner http.RoundTripper) (*http.Response, error)
}

// Transport is a scripted fault-injecting http.RoundTripper. It is safe
// for concurrent use; fault scripts are consumed atomically, so exactly
// one request observes each scripted slot even under concurrent
// dispatch.
type Transport struct {
	inner http.RoundTripper

	mu      sync.Mutex
	scripts map[string][]Fault
	always  map[string]Fault
}

// NewTransport wraps inner (nil means http.DefaultTransport).
func NewTransport(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:   inner,
		scripts: make(map[string][]Fault),
		always:  make(map[string]Fault),
	}
}

// Client returns an *http.Client dispatching through the transport —
// what fleet.Options.Client wants.
func (t *Transport) Client() *http.Client {
	return &http.Client{Transport: t}
}

// Script appends faults to worker's script; each queued fault fires on
// exactly one future request to that worker, in order.
func (t *Transport) Script(worker string, faults ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.scripts[worker] = append(t.scripts[worker], faults...)
}

// Always installs a persistent fault on worker, applied to every
// request once its script (if any) is drained. A nil fault uninstalls.
func (t *Transport) Always(worker string, f Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f == nil {
		delete(t.always, worker)
		return
	}
	t.always[worker] = f
}

// Clear drops every fault — scripted and persistent — for worker.
func (t *Transport) Clear(worker string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.scripts, worker)
	delete(t.always, worker)
}

// next pops the fault that applies to one request to key, if any.
func (t *Transport) next(key string) (Fault, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.scripts[key]; len(s) > 0 {
		f := s[0]
		t.scripts[key] = s[1:]
		return f, true
	}
	if f, ok := t.always[key]; ok {
		return f, true
	}
	return nil, false
}

// RoundTrip applies the worker's next fault, or passes the request
// through untouched.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.URL.Scheme + "://" + req.URL.Host
	if f, ok := t.next(key); ok {
		return f.apply(req, t.inner)
	}
	return t.inner.RoundTrip(req)
}

// Pass is an explicit pass-through slot in a script — "fail twice, then
// work" is Script(w, Refuse(), Refuse(), Pass()).
func Pass() Fault { return passFault{} }

type passFault struct{}

func (passFault) apply(req *http.Request, inner http.RoundTripper) (*http.Response, error) {
	return inner.RoundTrip(req)
}

// Hang blocks the request until its context is cancelled (the
// coordinator's attempt timeout or run cancellation) without any I/O —
// the silently wedged worker.
func Hang() Fault { return hangFault{} }

type hangFault struct{}

func (hangFault) apply(req *http.Request, _ http.RoundTripper) (*http.Response, error) {
	<-req.Context().Done()
	return nil, req.Context().Err()
}

// Refuse fails immediately with ECONNREFUSED, as if nothing listens on
// the worker's port — the dead worker, without any dialing.
func Refuse() Fault { return refuseFault{} }

type refuseFault struct{}

func (refuseFault) apply(req *http.Request, _ http.RoundTripper) (*http.Response, error) {
	return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
}

// Status synthesizes a structured error response with the given status
// — 500 for a flapping worker, 429/503 for saturation and drain — and,
// when retryAfter > 0, a Retry-After header with that many (rounded-up)
// seconds.
func Status(code int, retryAfter time.Duration) Fault {
	return statusFault{code: code, retryAfter: retryAfter}
}

type statusFault struct {
	code       int
	retryAfter time.Duration
}

func (f statusFault) apply(req *http.Request, _ http.RoundTripper) (*http.Response, error) {
	body := fmt.Sprintf(`{"error":{"code":"chaos","message":"injected %d"}}`, f.code)
	resp := &http.Response{
		StatusCode: f.code,
		Status:     http.StatusText(f.code),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     make(http.Header),
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
	}
	resp.Header.Set("Content-Type", "application/json")
	if f.retryAfter > 0 {
		secs := int((f.retryAfter + time.Second - 1) / time.Second)
		resp.Header.Set("Retry-After", fmt.Sprint(secs))
	}
	return resp, nil
}

// PartitionMidBody performs the real round trip and then severs the
// response stream halfway through the body with ECONNRESET — the
// network partition that strikes after the worker already did the work.
func PartitionMidBody() Fault { return partitionFault{} }

type partitionFault struct{}

func (partitionFault) apply(req *http.Request, inner http.RoundTripper) (*http.Response, error) {
	resp, err := inner.RoundTrip(req)
	if err != nil || resp.Body == nil {
		return resp, err
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	resp.Body = &tornBody{data: data[:len(data)/2]}
	return resp, nil
}

// tornBody serves its bytes and then fails like a reset connection.
type tornBody struct {
	data []byte
	off  int
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *tornBody) Close() error { return nil }

// SlowDrip performs the real round trip and then meters the body out in
// chunk-byte pieces with delay between them — the straggling worker
// that answers, eventually. The drip respects the request context, so
// attempt timeouts and speculation losers cut it short.
func SlowDrip(delay time.Duration, chunk int) Fault {
	if chunk <= 0 {
		chunk = 1
	}
	return dripFault{delay: delay, chunk: chunk}
}

type dripFault struct {
	delay time.Duration
	chunk int
}

func (f dripFault) apply(req *http.Request, inner http.RoundTripper) (*http.Response, error) {
	resp, err := inner.RoundTrip(req)
	if err != nil || resp.Body == nil {
		return resp, err
	}
	resp.Body = &dripBody{inner: resp.Body, ctx: req.Context(), delay: f.delay, chunk: f.chunk}
	return resp, nil
}

// dripBody throttles an underlying body to chunk bytes per delay.
type dripBody struct {
	inner io.ReadCloser
	ctx   context.Context
	delay time.Duration
	chunk int
}

func (b *dripBody) Read(p []byte) (int, error) {
	select {
	case <-b.ctx.Done():
		return 0, b.ctx.Err()
	case <-time.After(b.delay):
	}
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	return b.inner.Read(p)
}

func (b *dripBody) Close() error { return b.inner.Close() }
