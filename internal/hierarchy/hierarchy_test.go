package hierarchy

import (
	"strings"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/pareto"
)

func testCurve() *pareto.Curve {
	return pareto.FromPoints([]pareto.Point{
		{BufferBytes: 1 << 10, AccessBytes: 1 << 30},
		{BufferBytes: 1 << 20, AccessBytes: 1 << 26},
		{BufferBytes: 1 << 25, AccessBytes: 1 << 22},
	})
}

func TestValidate(t *testing.T) {
	if err := A100Like().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := EdgeLike().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TPULike().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Hierarchy{Name: "one", Levels: []Level{{Name: "x", CapacityBytes: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("single-level hierarchy accepted")
	}
	shrink := Hierarchy{Name: "shrink", Levels: []Level{
		{Name: "a", CapacityBytes: 1 << 20},
		{Name: "b", CapacityBytes: 1 << 10},
		{Name: "dram"},
	}}
	if err := shrink.Validate(); err == nil {
		t.Fatal("non-increasing capacities accepted")
	}
}

func TestAnalyzeTrafficMonotone(t *testing.T) {
	r, err := Analyze(testCurve(), A100Like(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 2 {
		t.Fatalf("links = %d", len(r.Links))
	}
	// Inner links carry at least as much traffic as outer ones.
	if r.Links[0].AccessBytes < r.Links[1].AccessBytes {
		t.Fatalf("inner traffic %d below outer %d",
			r.Links[0].AccessBytes, r.Links[1].AccessBytes)
	}
	if r.TotalEnergyPJ <= 0 {
		t.Fatal("no energy bound")
	}
	if r.TimeLowerBoundSec <= 0 || r.BottleneckLink == "" {
		t.Fatalf("no time bound: %+v", r)
	}
	if r.ThroughputUpperBoundMACs <= 0 {
		t.Fatal("no throughput bound")
	}
}

func TestAnalyzeEnergyComposition(t *testing.T) {
	// Hand-computed: curve accesses 2^26 at 1 MB L1-capacity and 2^22 at
	// 32 MB-capacity L2.
	h := Hierarchy{
		Name: "hand",
		Levels: []Level{
			{Name: "L1", CapacityBytes: 1 << 20, EnergyPerBytePJ: 0 /*unused for inner*/},
			{Name: "L2", CapacityBytes: 1 << 25, EnergyPerBytePJ: 2, BandwidthBytesPerSec: 1 << 26},
			{Name: "DRAM", EnergyPerBytePJ: 10, BandwidthBytesPerSec: 1 << 22},
		},
	}
	r, err := Analyze(testCurve(), h, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantEnergy := float64(int64(1)<<26)*2 + float64(int64(1)<<22)*10
	if r.TotalEnergyPJ != wantEnergy {
		t.Fatalf("energy = %f, want %f", r.TotalEnergyPJ, wantEnergy)
	}
	// Link times: L2->L1: 2^26/2^26 = 1 s; DRAM->L2: 2^22/2^22 = 1 s.
	// Either can be the bottleneck; the bound must be 1 s.
	if r.TimeLowerBoundSec != 1 {
		t.Fatalf("time bound = %f", r.TimeLowerBoundSec)
	}
	if r.ThroughputUpperBoundMACs != 1000 {
		t.Fatalf("throughput bound = %f", r.ThroughputUpperBoundMACs)
	}
}

func TestAnalyzeInfeasibleLevel(t *testing.T) {
	h := Hierarchy{
		Name: "tiny",
		Levels: []Level{
			{Name: "RF", CapacityBytes: 16, EnergyPerBytePJ: 1},
			{Name: "DRAM", EnergyPerBytePJ: 10, BandwidthBytesPerSec: 1e9},
		},
	}
	r, err := Analyze(testCurve(), h, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Links[0].Feasible {
		t.Fatal("16 B level should be infeasible for this curve")
	}
	if r.TotalEnergyPJ != 0 {
		t.Fatal("infeasible link contributed energy")
	}
	if !strings.Contains(r.String(), "infeasible") {
		t.Fatal("report should mark the infeasible link")
	}
}

func TestRealWorkloadThroughHierarchies(t *testing.T) {
	g := einsum.GEMM("g", 256, 256, 256)
	c := bound.Derive(g, bound.Options{Workers: 1}).Curve
	for _, h := range []Hierarchy{A100Like(), EdgeLike(), TPULike()} {
		r, err := Analyze(c, h, g.MACs())
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		for _, l := range r.Links {
			if !l.Feasible {
				t.Fatalf("%s: link %s->%s infeasible for a 256^3 GEMM", h.Name, l.Outer, l.Inner)
			}
			if l.AccessBytes < g.AlgorithmicMinBytes() {
				t.Fatalf("%s: link below algorithmic minimum", h.Name)
			}
		}
		if r.String() == "" {
			t.Fatal("empty report")
		}
	}
}
