// Package hierarchy extrapolates a single Snowcat-derived ski-slope curve
// to a full multi-level memory hierarchy (Sec. III-B.1 / Fig. 7): the
// curve probed at each level's aggregate capacity bounds the traffic
// between that level and the next-outer one. On top of the per-level
// traffic bounds it derives energy and bandwidth-time lower bounds —
// data-movement energy being the paper's core motivation.
package hierarchy

import (
	"fmt"
	"strings"

	"repro/internal/pareto"
	"repro/internal/shape"
)

// Level is one storage level, innermost first. The outermost level is the
// backing store: its capacity is ignored (treated as infinite) and its
// energy/bandwidth describe transfers between it and the level below.
type Level struct {
	Name          string
	CapacityBytes int64
	// EnergyPerBytePJ is the energy to move one byte between this level
	// and the next-inner one.
	EnergyPerBytePJ float64
	// BandwidthBytesPerSec is the sustainable transfer rate between this
	// level and the next-inner one (0 = unconstrained).
	BandwidthBytesPerSec float64
}

// Hierarchy is an ordered stack of levels, innermost first.
type Hierarchy struct {
	Name   string
	Levels []Level
}

// Validate checks there are at least two levels with strictly increasing
// capacities below the backing store.
func (h Hierarchy) Validate() error {
	if len(h.Levels) < 2 {
		return fmt.Errorf("hierarchy %s: need at least an inner level and a backing store", h.Name)
	}
	for i := 0; i < len(h.Levels)-1; i++ {
		l := h.Levels[i]
		if l.CapacityBytes < 1 {
			return fmt.Errorf("hierarchy %s: level %s has no capacity", h.Name, l.Name)
		}
		if i > 0 && l.CapacityBytes <= h.Levels[i-1].CapacityBytes {
			return fmt.Errorf("hierarchy %s: level %s capacity not above %s",
				h.Name, l.Name, h.Levels[i-1].Name)
		}
		if l.EnergyPerBytePJ < 0 || l.BandwidthBytesPerSec < 0 {
			return fmt.Errorf("hierarchy %s: level %s has negative energy/bandwidth", h.Name, l.Name)
		}
	}
	return nil
}

// LinkBound is the traffic bound across one hierarchy link.
type LinkBound struct {
	Outer, Inner  string
	CapacityBytes int64 // aggregate capacity of the inner level
	AccessBytes   int64
	Feasible      bool
	EnergyPJ      float64
	TimeSec       float64 // AccessBytes / link bandwidth (0 if unconstrained)
}

// Report is the multi-level extrapolation of one workload curve.
type Report struct {
	Hierarchy Hierarchy
	Links     []LinkBound

	// TotalEnergyPJ lower-bounds the data-movement energy across all
	// links (only feasible links contribute).
	TotalEnergyPJ float64
	// TimeLowerBoundSec is the slowest link's transfer time: no schedule
	// can finish the data movement faster.
	TimeLowerBoundSec float64
	// BottleneckLink names the link that sets TimeLowerBoundSec.
	BottleneckLink string
	// ThroughputUpperBoundMACs is macs / TimeLowerBoundSec (0 when no
	// link has a bandwidth).
	ThroughputUpperBoundMACs float64
}

// Analyze probes the curve at every level capacity. Per Sec. III-B.1 the
// composed bound is valid but not guaranteed tight (Pareto-optimal
// mappings need not compose across levels).
func Analyze(c *pareto.Curve, h Hierarchy, macs int64) (*Report, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	r := &Report{Hierarchy: h}
	for i := 0; i < len(h.Levels)-1; i++ {
		inner := h.Levels[i]
		outer := h.Levels[i+1]
		acc, ok := c.AccessesAt(inner.CapacityBytes)
		lb := LinkBound{
			Outer:         outer.Name,
			Inner:         inner.Name,
			CapacityBytes: inner.CapacityBytes,
			AccessBytes:   acc,
			Feasible:      ok,
		}
		if ok {
			lb.EnergyPJ = float64(acc) * outer.EnergyPerBytePJ
			r.TotalEnergyPJ += lb.EnergyPJ
			if outer.BandwidthBytesPerSec > 0 {
				lb.TimeSec = float64(acc) / outer.BandwidthBytesPerSec
				if lb.TimeSec > r.TimeLowerBoundSec {
					r.TimeLowerBoundSec = lb.TimeSec
					r.BottleneckLink = fmt.Sprintf("%s->%s", outer.Name, inner.Name)
				}
			}
		}
		r.Links = append(r.Links, lb)
	}
	if r.TimeLowerBoundSec > 0 && macs > 0 {
		r.ThroughputUpperBoundMACs = float64(macs) / r.TimeLowerBoundSec
	}
	return r, nil
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hierarchy %s\n", r.Hierarchy.Name)
	fmt.Fprintf(&b, "%-16s %12s %14s %14s %12s\n", "link", "capacity", "traffic", "energy(uJ)", "time(us)")
	for _, l := range r.Links {
		if !l.Feasible {
			fmt.Fprintf(&b, "%-16s %12s %14s %14s %12s\n",
				l.Outer+"->"+l.Inner, shape.FormatBytes(l.CapacityBytes), "infeasible", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-16s %12s %14s %14.3f %12.3f\n",
			l.Outer+"->"+l.Inner, shape.FormatBytes(l.CapacityBytes),
			shape.FormatBytes(l.AccessBytes), l.EnergyPJ/1e6, l.TimeSec*1e6)
	}
	fmt.Fprintf(&b, "energy lower bound: %.3f uJ\n", r.TotalEnergyPJ/1e6)
	if r.TimeLowerBoundSec > 0 {
		fmt.Fprintf(&b, "time lower bound: %.3f us (bottleneck %s)\n",
			r.TimeLowerBoundSec*1e6, r.BottleneckLink)
	}
	return b.String()
}

// A100Like returns an A100-shaped hierarchy: 20.25 MB aggregate L1,
// 40 MB L2, HBM at 1.5 TB/s. Energy constants are representative
// technology numbers (pJ/B): 1.5 small SRAM, 7 large SRAM, 80 DRAM.
func A100Like() Hierarchy {
	return Hierarchy{
		Name: "a100-like",
		Levels: []Level{
			{Name: "L1", CapacityBytes: 20<<20 + 256<<10, EnergyPerBytePJ: 1.5, BandwidthBytesPerSec: 19e12},
			{Name: "L2", CapacityBytes: 40 << 20, EnergyPerBytePJ: 7, BandwidthBytesPerSec: 5e12},
			{Name: "HBM", EnergyPerBytePJ: 80, BandwidthBytesPerSec: 1.5e12},
		},
	}
}

// EdgeLike returns a small edge-accelerator hierarchy: 64 KB scratchpad,
// 2 MB SRAM, LPDDR at 25 GB/s.
func EdgeLike() Hierarchy {
	return Hierarchy{
		Name: "edge-like",
		Levels: []Level{
			{Name: "SPM", CapacityBytes: 64 << 10, EnergyPerBytePJ: 1.0, BandwidthBytesPerSec: 400e9},
			{Name: "SRAM", CapacityBytes: 2 << 20, EnergyPerBytePJ: 5, BandwidthBytesPerSec: 100e9},
			{Name: "LPDDR", EnergyPerBytePJ: 120, BandwidthBytesPerSec: 25e9},
		},
	}
}

// TPULike returns a TPU-v4-shaped hierarchy: 128 MB unified CMEM over HBM.
func TPULike() Hierarchy {
	return Hierarchy{
		Name: "tpu-like",
		Levels: []Level{
			{Name: "VMEM", CapacityBytes: 128 << 20, EnergyPerBytePJ: 7, BandwidthBytesPerSec: 10e12},
			{Name: "HBM", EnergyPerBytePJ: 80, BandwidthBytesPerSec: 1.2e12},
		},
	}
}
