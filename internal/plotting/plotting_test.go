package plotting

import (
	"strings"
	"testing"

	"repro/internal/pareto"
)

func curve() *pareto.Curve {
	return pareto.FromPoints([]pareto.Point{
		{BufferBytes: 128, AccessBytes: 1 << 20},
		{BufferBytes: 1 << 12, AccessBytes: 1 << 16},
		{BufferBytes: 1 << 20, AccessBytes: 1 << 12},
	})
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, Series{Name: "a", Curve: curve()}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "series,buffer_bytes,access_bytes" {
		t.Fatalf("bad header: %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("expected 3 data rows, got %d", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "a,128,1048576") {
		t.Fatalf("bad first row: %q", lines[1])
	}
}

func TestWriteXYCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteXYCSV(&b, "mesa", []float64{0.1, 0.2}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "mesa,0.1,1") {
		t.Fatalf("bad output: %q", b.String())
	}
	if err := WriteXYCSV(&b, "bad", []float64{1}, []float64{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAscii(t *testing.T) {
	out := Ascii(AsciiOptions{Width: 40, Height: 10},
		Series{Name: "bound", Curve: curve()})
	if !strings.Contains(out, "*") {
		t.Fatalf("no markers in chart:\n%s", out)
	}
	if !strings.Contains(out, "bound") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "buffer") || !strings.Contains(out, "accesses") {
		t.Fatal("axis labels missing")
	}
}

func TestAsciiEmpty(t *testing.T) {
	if out := Ascii(AsciiOptions{}, Series{Name: "e", Curve: &pareto.Curve{}}); out != "(no data)\n" {
		t.Fatalf("empty chart = %q", out)
	}
}

func TestAsciiMultiSeriesMarkers(t *testing.T) {
	out := Ascii(AsciiOptions{Width: 40, Height: 10},
		Series{Name: "a", Curve: curve()},
		Series{Name: "b", Curve: curve().ScaleAccesses(2)},
	)
	if !strings.Contains(out, "o") {
		t.Fatal("second series marker missing")
	}
}

func TestSummaryTable(t *testing.T) {
	out := SummaryTable([]int64{1 << 13}, Series{Name: "bound", Curve: curve()})
	if !strings.Contains(out, "bound") || !strings.Contains(out, "@8.00KB") {
		t.Fatalf("summary table malformed:\n%s", out)
	}
	// Probe below the min buffer renders "-".
	out = SummaryTable([]int64{1}, Series{Name: "bound", Curve: curve()})
	if !strings.Contains(out, " -") {
		t.Fatalf("infeasible probe not dashed:\n%s", out)
	}
}
