// Package plotting renders ski-slope curves and derived series as CSV and
// as ASCII log-log charts, the repo's stand-in for the paper's matplotlib
// figures. Every benchmark and CLI tool uses these writers so that each
// figure's data can be regenerated and inspected as text.
package plotting

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/pareto"
	"repro/internal/shape"
)

// Series is a named curve to plot or export.
type Series struct {
	Name  string
	Curve *pareto.Curve
}

// WriteCSV emits all series as long-form CSV: series,buffer_bytes,access_bytes.
func WriteCSV(w io.Writer, series ...Series) error {
	if _, err := fmt.Fprintln(w, "series,buffer_bytes,access_bytes"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Curve.Points() {
			if _, err := fmt.Fprintf(w, "%s,%d,%d\n", s.Name, p.BufferBytes, p.AccessBytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteXYCSV emits generic float series: series,x,y.
func WriteXYCSV(w io.Writer, name string, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("plotting: %d xs vs %d ys", len(xs), len(ys))
	}
	for i := range xs {
		if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, xs[i], ys[i]); err != nil {
			return err
		}
	}
	return nil
}

// AsciiOptions controls chart rendering.
type AsciiOptions struct {
	Width  int
	Height int
}

func (o AsciiOptions) withDefaults() AsciiOptions {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Ascii renders the series as a log-log scatter chart with the staircase
// semantics of a ski-slope diagram: buffer bytes on X, access bytes on Y.
func Ascii(opts AsciiOptions, series ...Series) string {
	opts = opts.withDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Curve.Points() {
			x, y := math.Log10(float64(p.BufferBytes)), math.Log10(float64(p.AccessBytes))
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			any = true
		}
	}
	if !any {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for _, p := range s.Curve.Points() {
			x := math.Log10(float64(p.BufferBytes))
			y := math.Log10(float64(p.AccessBytes))
			col := int((x - minX) / (maxX - minX) * float64(opts.Width-1))
			row := int((y - minY) / (maxY - minY) * float64(opts.Height-1))
			grid[opts.Height-1-row][col] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "accesses %s .. %s (log)\n",
		shape.FormatBytes(int64(math.Pow(10, minY))), shape.FormatBytes(int64(math.Pow(10, maxY))))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", opts.Width) + "\n")
	fmt.Fprintf(&b, "buffer %s .. %s (log)\n",
		shape.FormatBytes(int64(math.Pow(10, minX))), shape.FormatBytes(int64(math.Pow(10, maxX))))
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// SummaryTable renders one row per series with the key scalar queries:
// min buffer, accesses at selected capacities, max effectual buffer and
// minimum accesses.
func SummaryTable(probes []int64, series ...Series) string {
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s", "series", "min-buffer")
	for _, p := range probes {
		fmt.Fprintf(&b, " %14s", "@"+shape.FormatBytes(p))
	}
	fmt.Fprintf(&b, " %14s %14s\n", "max-effectual", "min-accesses")
	for _, s := range series {
		fmt.Fprintf(&b, "%-24s %14s", s.Name, shape.FormatBytes(s.Curve.MinBufferBytes()))
		for _, p := range probes {
			if acc, ok := s.Curve.AccessesAt(p); ok {
				fmt.Fprintf(&b, " %14s", shape.FormatBytes(acc))
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		fmt.Fprintf(&b, " %14s %14s\n",
			shape.FormatBytes(s.Curve.MaxEffectualBufferBytes()),
			shape.FormatBytes(s.Curve.MinAccessBytes()))
	}
	return b.String()
}
