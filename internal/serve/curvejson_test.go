package serve

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"repro/internal/pareto"
)

// TestConcurrentCurveJSONUnderCache exercises the sharing the server
// cache creates: one *pareto.Curve is simultaneously marshalled by
// response writers (cache hits encode the same pointer concurrently) and
// queried through its read API by other goroutines. Run under -race this
// pins down that Curve's query/serialize surface is safe to share, and
// that every marshal round-trips to identical bytes.
func TestConcurrentCurveJSONUnderCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"gemm":{"m":32,"k":24,"n":16}}`
	status, data := postCurve(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("seed: status %d: %s", status, data)
	}
	want := string(decodeEnvelope(t, data).Curve)

	// The cached curve pointer — the object every future hit shares.
	res, ok := s.mem.get(s.onlyCachedKey(t))
	if !ok {
		t.Fatal("seeded result not in cache")
	}
	curve := res.curve

	const goroutines = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)

	// Half the goroutines hammer the HTTP path (server-side marshal of
	// the shared curve) and direct json.Marshal round-trips.
	for g := 0; g < goroutines/2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				raw, err := json.Marshal(curve)
				if err != nil {
					errs <- err
					return
				}
				if string(raw) != want {
					t.Errorf("concurrent marshal diverged")
					return
				}
				var rt pareto.Curve
				if err := json.Unmarshal(raw, &rt); err != nil {
					errs <- err
					return
				}
				back, err := json.Marshal(&rt)
				if err != nil {
					errs <- err
					return
				}
				if string(back) != want {
					t.Errorf("round-trip diverged")
					return
				}
				if st, data := postCurve(t, ts.URL, body); st != http.StatusOK {
					t.Errorf("hit %d: status %d: %s", i, st, data)
					return
				}
			}
		}()
	}
	// The other half query the same curve through its read API.
	for g := 0; g < goroutines/2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := curve.MinBufferBytes(), curve.MaxEffectualBufferBytes()
			for i := 0; i < rounds; i++ {
				for buf := lo; buf <= hi; buf += (hi-lo)/16 + 1 {
					if acc, ok := curve.AccessesAt(buf); ok && acc < curve.MinAccessBytes() {
						t.Errorf("AccessesAt(%d) below curve minimum", buf)
						return
					}
				}
				for _, p := range curve.Points() {
					if p.AccessBytes <= 0 {
						t.Errorf("non-positive access bytes in shared curve")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// onlyCachedKey returns the single key in the server's cache.
func (s *Server) onlyCachedKey(t *testing.T) string {
	t.Helper()
	s.mem.mu.Lock()
	defer s.mem.mu.Unlock()
	if len(s.mem.entries) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(s.mem.entries))
	}
	for k := range s.mem.entries {
		return k
	}
	return ""
}
