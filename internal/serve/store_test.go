package serve

// The disk-tier suite: the server's durable curve store must survive
// restarts (warm answers with zero re-derivations), share a directory
// with CLI warmers, degrade to memory-only on any storage failure, and
// never let a damaged or degraded entry reach a client.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/bound"
	"repro/internal/cliutil"
	"repro/internal/einsum"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// countDerives wraps every derivation to count engine invocations: the
// yardstick for "served without re-deriving".
func countDerives(n *atomic.Int64) func(*derivation, deriveFn) deriveFn {
	return func(d *derivation, fn deriveFn) deriveFn {
		return func(ctx context.Context) (deriveOut, error) {
			n.Add(1)
			return fn(ctx)
		}
	}
}

// storeGauges fetches the store-related /stats gauges.
type storeGauges struct {
	StoreHits     int64        `json:"store_hits"`
	StoreWrites   int64        `json:"store_writes"`
	StoreDisabled bool         `json:"store_disabled"`
	Store         *store.Stats `json:"store"`
}

func getStoreGauges(t *testing.T, url string) storeGauges {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var g storeGauges
	if err := json.NewDecoder(resp.Body).Decode(&g); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRestartWarmDiskTier is the restart-warmth acceptance path: derive
// once, kill the server, start a fresh process on the same store
// directory, and the repeated request is a disk hit — byte-identical
// curve, reported cached, zero engine invocations.
func TestRestartWarmDiskTier(t *testing.T) {
	dir := t.TempDir()
	body := `{"gemm":{"m":32,"k":24,"n":16}}`

	var derivesA atomic.Int64
	sA := New(Config{Workers: 2, StoreDir: dir, deriveWrap: countDerives(&derivesA)})
	tsA := httptest.NewServer(sA.Handler())
	status, data1 := postCurve(t, tsA.URL, body)
	if status != http.StatusOK {
		t.Fatalf("first life status %d: %s", status, data1)
	}
	env1 := decodeEnvelope(t, data1)
	if derivesA.Load() != 1 {
		t.Fatalf("first life made %d derivations, want 1", derivesA.Load())
	}
	if g := getStoreGauges(t, tsA.URL); g.StoreWrites != 1 {
		t.Fatalf("store_writes = %d after first derivation, want 1", g.StoreWrites)
	}
	tsA.Close()
	sA.Close()

	var derivesB atomic.Int64
	_, tsB := newTestServer(t, Config{StoreDir: dir, deriveWrap: countDerives(&derivesB)})
	status, data2 := postCurve(t, tsB.URL, body)
	if status != http.StatusOK {
		t.Fatalf("second life status %d: %s", status, data2)
	}
	env2 := decodeEnvelope(t, data2)
	if !env2.Cached {
		t.Fatal("restart-warm response not reported cached")
	}
	if string(env2.Curve) != string(env1.Curve) {
		t.Fatalf("restart-warm curve differs from the originally derived one\n got %s\nwant %s",
			env2.Curve, env1.Curve)
	}
	if derivesB.Load() != 0 {
		t.Fatalf("second life re-derived %d time(s), want 0 (disk hit)", derivesB.Load())
	}
	g := getStoreGauges(t, tsB.URL)
	if g.StoreHits != 1 {
		t.Fatalf("store_hits = %d, want 1", g.StoreHits)
	}
	if g.Store == nil || g.Store.Entries != 1 {
		t.Fatalf("store gauges %+v, want 1 entry", g.Store)
	}

	// The disk hit republished into the memory tier: a third request hits
	// memory, not disk.
	status, data3 := postCurve(t, tsB.URL, body)
	if status != http.StatusOK {
		t.Fatalf("third request status %d", status)
	}
	if string(decodeEnvelope(t, data3).Curve) != string(env1.Curve) {
		t.Fatal("memory-republished curve differs")
	}
	if got := getStoreGauges(t, tsB.URL).StoreHits; got != 1 {
		t.Fatalf("store_hits = %d after memory hit, want still 1", got)
	}
}

// TestWarmerSharesStoreWithServer: a CLI warmer (cliutil.StoreRun on
// the same directory, out of process from the server's point of view)
// pre-derives a workload; the server then serves it without ever
// invoking its engine — and keeps doing so while the warmer works the
// directory concurrently.
func TestWarmerSharesStoreWithServer(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Same canonical workload the request body maps to.
	spec := workload.NewBound(einsum.GEMM("gemm_32x24x16", 32, 24, 16), bound.Options{})
	warm, err := cliutil.StoreRun(context.Background(), st, spec, workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hit {
		t.Fatal("first warm reported a hit on an empty store")
	}
	want, err := json.Marshal(warm.Curve)
	if err != nil {
		t.Fatal(err)
	}

	var derives atomic.Int64
	_, ts := newTestServer(t, Config{StoreDir: dir, deriveWrap: countDerives(&derives)})
	status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":24,"n":16}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if !env.Cached {
		t.Fatal("warmed workload not reported cached")
	}
	if string(env.Curve) != string(want) {
		t.Fatal("served curve differs from the warmer's derivation")
	}
	if derives.Load() != 0 {
		t.Fatalf("server derived %d time(s) for a warmed workload, want 0", derives.Load())
	}

	// Warmer and server race on the directory (run under -race): the
	// warmer derives fresh workloads while clients replay the warmed one.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			e := einsum.GEMM(fmt.Sprintf("gemm_8x8x%d", 8+i), 8, 8, int64(8+i))
			if _, err := cliutil.StoreRun(context.Background(), st,
				workload.NewBound(e, bound.Options{}), workload.Exec{Workers: 2}); err != nil {
				t.Errorf("concurrent warm: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":24,"n":16}}`)
			if status != http.StatusOK {
				t.Errorf("concurrent serve status %d", status)
				return
			}
			if string(decodeEnvelope(t, data).Curve) != string(want) {
				t.Error("concurrent serve returned a different curve")
				return
			}
		}
	}()
	wg.Wait()

	// And the server can serve what the concurrent warmer just derived.
	var after atomic.Int64
	_, ts2 := newTestServer(t, Config{StoreDir: dir, deriveWrap: countDerives(&after)})
	status, _ = postCurve(t, ts2.URL, `{"gemm":{"m":8,"k":8,"n":9}}`)
	if status != http.StatusOK {
		t.Fatalf("warmed-fresh workload status %d", status)
	}
	if after.Load() != 0 {
		t.Fatalf("server re-derived a workload the warmer had persisted (%d derivations)", after.Load())
	}
}

// TestStoreOpenFailureDegradesToMemory: a store directory that cannot
// be opened (writability probe fails) must not take the server down —
// requests keep working memory-only and /stats says store_disabled.
func TestStoreOpenFailureDegradesToMemory(t *testing.T) {
	ffs := &shard.FaultFS{Fail: func(op shard.Op, _ string) error {
		if op == shard.OpCreateTemp {
			return syscall.EACCES
		}
		return nil
	}}
	var logged atomic.Int64
	s, ts := newTestServer(t, Config{
		StoreDir: t.TempDir(),
		storeFS:  ffs,
		Logf: func(format string, _ ...any) {
			if strings.Contains(format, "curve store disabled") {
				logged.Add(1)
			}
		},
	})
	if s.disk != nil {
		t.Fatal("server kept a disk tier whose directory failed to open")
	}
	if logged.Load() != 1 {
		t.Fatalf("store-disabled logged %d time(s), want exactly once", logged.Load())
	}
	status, data := postCurve(t, ts.URL, `{"gemm":{"m":16,"k":8,"n":8}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d without a store: %s", status, data)
	}
	g := getStoreGauges(t, ts.URL)
	if !g.StoreDisabled {
		t.Fatal("/stats does not report store_disabled for a failed open")
	}
	if g.Store != nil {
		t.Fatal("/stats reports store gauges for a tier that never opened")
	}
}

// TestStoreENOSPCDegradesLive: a disk that fills up after the server
// started disables the tier mid-flight; derivations and responses are
// unaffected, and /stats flips store_disabled.
func TestStoreENOSPCDegradesLive(t *testing.T) {
	ffs := &shard.FaultFS{Fail: func(op shard.Op, _ string) error {
		if op == shard.OpWrite {
			return syscall.ENOSPC
		}
		return nil
	}}
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir(), storeFS: ffs})
	if s.disk == nil {
		t.Fatal("disk tier missing before the disk fills")
	}
	body := `{"gemm":{"m":16,"k":8,"n":8}}`
	status, data1 := postCurve(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d on a full disk: %s", status, data1)
	}
	if !s.disk.Disabled() {
		t.Fatal("store still enabled after persistent ENOSPC")
	}
	g := getStoreGauges(t, ts.URL)
	if !g.StoreDisabled {
		t.Fatal("/stats does not report store_disabled after ENOSPC")
	}
	// Memory tier unaffected: the repeat is a cache hit, byte-identical.
	status, data2 := postCurve(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d after degrade: %s", status, data2)
	}
	env1, env2 := decodeEnvelope(t, data1), decodeEnvelope(t, data2)
	if !env2.Cached || string(env2.Curve) != string(env1.Curve) {
		t.Fatal("memory tier damaged by the disk-tier degrade")
	}
}

// TestCorruptStoreEntryRederived: an entry corrupted on disk between
// server lives is quarantined and transparently re-derived — the client
// sees the correct curve, never the damage.
func TestCorruptStoreEntryRederived(t *testing.T) {
	dir := t.TempDir()
	body := `{"gemm":{"m":32,"k":24,"n":16}}`

	sA := New(Config{Workers: 2, StoreDir: dir})
	tsA := httptest.NewServer(sA.Handler())
	status, data1 := postCurve(t, tsA.URL, body)
	if status != http.StatusOK {
		t.Fatalf("first life status %d", status)
	}
	env1 := decodeEnvelope(t, data1)
	tsA.Close()
	sA.Close()

	entries, err := filepath.Glob(filepath.Join(dir, "*.curve"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries %v (err %v), want exactly one", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var derives atomic.Int64
	_, tsB := newTestServer(t, Config{StoreDir: dir, deriveWrap: countDerives(&derives)})
	status, data2 := postCurve(t, tsB.URL, body)
	if status != http.StatusOK {
		t.Fatalf("second life status %d: %s", status, data2)
	}
	env2 := decodeEnvelope(t, data2)
	if env2.Cached {
		t.Fatal("corrupt disk entry served as a cache hit")
	}
	if string(env2.Curve) != string(env1.Curve) {
		t.Fatal("re-derived curve differs from the original")
	}
	if derives.Load() != 1 {
		t.Fatalf("%d derivations, want 1 (corrupt entry is a miss)", derives.Load())
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*.corrupt*"))
	if err != nil || len(quarantined) != 1 {
		t.Fatalf("quarantine files %v (err %v), want exactly one", quarantined, err)
	}
}

// TestDegraded206NeverPersisted: a partial (206) segmentation result
// must not enter the durable tier — a later identical request with a
// healthy fleet deserves the full derivation, and a restart must not
// resurrect degraded coverage as truth.
func TestDegraded206NeverPersisted(t *testing.T) {
	exprs := []string{
		`B[m,n] = A[m,k] * W[k,n] {M=16,K=4,N=8}`,
		`C[m,n] = B[m,k] * V[k,n] {M=16,K=8,N=8}`,
		`D[m,n] = C[m,k] * U[k,n] {M=16,K=8,N=4}`,
		`E[m,n] = D[m,k] * T[k,n] {M=16,K=4,N=4}`,
	}
	errDisk := errors.New("injected: no space left on device")
	ffs := &shard.FaultFS{Fail: func(op shard.Op, path string) error {
		if op == shard.OpRename && strings.Contains(path, "shard-2-of-3.json") {
			return errDisk
		}
		return nil
	}}
	storeDir := t.TempDir()
	_, ts := newTestServer(t, Config{
		Workers:         2,
		SpoolDir:        t.TempDir(),
		CheckpointEvery: 2,
		ShardRetries:    -1,
		shardFS:         ffs,
		StoreDir:        storeDir,
	})
	body := fmt.Sprintf(
		`{"segmentation":{"einsums":[%q,%q,%q,%q]},"shards":3,"allow_partial":true}`,
		exprs[0], exprs[1], exprs[2], exprs[3])
	status, data := postCurve(t, ts.URL, body)
	if status != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", status, data)
	}
	persisted, err := filepath.Glob(filepath.Join(storeDir, "*.curve"))
	if err != nil {
		t.Fatal(err)
	}
	if len(persisted) != 0 {
		t.Fatalf("degraded derivation persisted to the durable tier: %v", persisted)
	}
	if g := getStoreGauges(t, ts.URL); g.StoreWrites != 0 {
		t.Fatalf("store_writes = %d after a 206, want 0", g.StoreWrites)
	}
}
