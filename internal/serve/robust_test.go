package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/shard"
)

// blockOn returns a deriveWrap that parks derivations whose label
// contains marker until gate closes (or their context ends); everything
// else derives normally.
func blockOn(marker string, gate <-chan struct{}) func(*derivation, deriveFn) deriveFn {
	return func(d *derivation, fn deriveFn) deriveFn {
		if !strings.Contains(d.label, marker) {
			return fn
		}
		return func(ctx context.Context) (deriveOut, error) {
			select {
			case <-gate:
				return fn(ctx)
			case <-ctx.Done():
				return deriveOut{}, ctx.Err()
			}
		}
	}
}

// TestDeadlineExpiryMidTraversal: a request whose derivation outlives
// its deadline gets 504, the abandoned flight is cancelled (no waiters
// left), and the server stays healthy for the next request.
func TestDeadlineExpiryMidTraversal(t *testing.T) {
	gate := make(chan struct{}) // never closed: the derivation hangs until cancelled
	var cancelled atomic.Bool
	cfg := Config{
		deriveWrap: func(d *derivation, fn deriveFn) deriveFn {
			if !strings.Contains(d.label, "M=31") {
				return fn
			}
			return func(ctx context.Context) (deriveOut, error) {
				select {
				case <-gate:
					return fn(ctx)
				case <-ctx.Done():
					cancelled.Store(true)
					return deriveOut{}, ctx.Err()
				}
			}
		},
	}
	s, ts := newTestServer(t, cfg)

	status, data := postCurve(t, ts.URL, `{"gemm":{"m":31,"k":12,"n":8},"timeout_ms":50}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, data)
	}
	if ei := decodeError(t, data); ei.Code != "deadline" {
		t.Fatalf("code %q, want deadline", ei.Code)
	}

	// The sole waiter left, so the flight context must cancel the
	// derivation instead of letting it burn a slot forever.
	deadline := time.Now().Add(5 * time.Second)
	for !cancelled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("abandoned derivation was never cancelled")
		}
		time.Sleep(time.Millisecond)
	}

	// Server is still fully functional.
	if status, data := postCurve(t, ts.URL, `{"gemm":{"m":16,"k":12,"n":8}}`); status != http.StatusOK {
		t.Fatalf("post-deadline request: status %d: %s", status, data)
	}
	if st := s.Snapshot(); st.DeadlineExpired != 1 {
		t.Fatalf("deadline_expired %d, want 1", st.DeadlineExpired)
	}
}

// TestSaturationSheds429: with one slot and a one-deep queue, the third
// concurrent derivation is refused immediately with 429 + Retry-After,
// and the queued one is refused once its wait budget expires.
func TestSaturationSheds429(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     100 * time.Millisecond,
		deriveWrap:    blockOn("M=33", gate),
	}
	s, ts := newTestServer(t, cfg)

	type outcome struct {
		status int
		data   []byte
	}
	blockerDone := make(chan outcome, 1)
	go func() {
		st, data := postCurve(t, ts.URL, `{"gemm":{"m":33,"k":12,"n":8}}`)
		blockerDone <- outcome{st, data}
	}()
	waitFor(t, "blocker holds the slot", func() bool { return s.adm.inFlight() == 1 })

	queuedDone := make(chan outcome, 1)
	go func() {
		st, data := postCurve(t, ts.URL, `{"gemm":{"m":34,"k":12,"n":8}}`)
		queuedDone <- outcome{st, data}
	}()
	waitFor(t, "second derivation queues", func() bool { return s.adm.queueDepth() == 1 })

	// Queue full: the third unique derivation is shed immediately.
	resp, err := http.Post(ts.URL+"/v1/curve", "application/json",
		strings.NewReader(`{"gemm":{"m":35,"k":12,"n":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	var ei ErrorInfo
	func() {
		defer resp.Body.Close()
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		ei = er.Error
	}()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if ei.Code != "saturated" {
		t.Fatalf("overflow code %q, want saturated", ei.Code)
	}
	// QueueWait is sub-second (100ms): a truncating Retry-After would
	// say "0" — retry immediately — and amplify the stampede the 429 is
	// shedding. The header must round up to at least one whole second.
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q for a sub-second queue wait, want an integer >= 1", ra)
	}

	// The queued derivation exhausts its wait budget.
	o := <-queuedDone
	if o.status != http.StatusTooManyRequests {
		t.Fatalf("queued status %d, want 429: %s", o.status, o.data)
	}

	// Release the blocker; it completes normally.
	close(gate)
	o = <-blockerDone
	if o.status != http.StatusOK {
		t.Fatalf("blocker status %d: %s", o.status, o.data)
	}
	if st := s.Snapshot(); st.Saturated != 2 {
		t.Fatalf("saturated %d, want 2", st.Saturated)
	}
}

// TestPanicContainedToStructured500: a panicking derivation produces a
// structured 500 with the stack in the log, and the process keeps
// serving.
func TestPanicContainedToStructured500(t *testing.T) {
	var logMu sync.Mutex
	var logs []string
	cfg := Config{
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
		deriveWrap: func(d *derivation, fn deriveFn) deriveFn {
			if !strings.Contains(d.label, "M=37") {
				return fn
			}
			return func(ctx context.Context) (deriveOut, error) {
				panic("evaluator overflow (injected)")
			}
		},
	}
	s, ts := newTestServer(t, cfg)

	status, data := postCurve(t, ts.URL, `{"gemm":{"m":37,"k":12,"n":8}}`)
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", status, data)
	}
	if ei := decodeError(t, data); ei.Code != "panic" {
		t.Fatalf("code %q, want panic", ei.Code)
	}

	logMu.Lock()
	joined := strings.Join(logs, "\n")
	logMu.Unlock()
	if !strings.Contains(joined, "evaluator overflow (injected)") {
		t.Fatalf("panic value not logged:\n%s", joined)
	}
	if !strings.Contains(joined, "robust_test") {
		t.Fatalf("panic stack not logged:\n%s", joined)
	}

	// Failed flights are not cached: a retry re-derives (and here
	// panics again), while other workloads are untouched.
	if status, _ := postCurve(t, ts.URL, `{"gemm":{"m":37,"k":12,"n":8}}`); status != http.StatusInternalServerError {
		t.Fatalf("retry status %d, want 500 again", status)
	}
	if status, data := postCurve(t, ts.URL, `{"gemm":{"m":16,"k":12,"n":8}}`); status != http.StatusOK {
		t.Fatalf("post-panic request: status %d: %s", status, data)
	}
	if st := s.Snapshot(); st.PanicsRecovered != 2 {
		t.Fatalf("panics_recovered %d, want 2", st.PanicsRecovered)
	}
}

// TestGracefulDrain: Drain closes admissions (503 + not-ready) while
// in-flight derivations run to completion and their clients get full
// answers.
func TestGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	cfg := Config{deriveWrap: blockOn("M=39", gate)}
	s, ts := newTestServer(t, cfg)

	type outcome struct {
		status int
		data   []byte
	}
	inflight := make(chan outcome, 1)
	go func() {
		st, data := postCurve(t, ts.URL, `{"gemm":{"m":39,"k":12,"n":8}}`)
		inflight <- outcome{st, data}
	}()
	waitFor(t, "derivation in flight", func() bool { return s.adm.inFlight() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "server draining", func() bool { return s.draining.Load() })

	// New work is refused; liveness stays green, readiness goes red.
	if status, data := postCurve(t, ts.URL, `{"gemm":{"m":16,"k":12,"n":8}}`); status != http.StatusServiceUnavailable {
		t.Fatalf("draining admission status %d, want 503: %s", status, data)
	} else if ei := decodeError(t, data); ei.Code != "draining" {
		t.Fatalf("draining code %q", ei.Code)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200", resp.StatusCode)
	}

	// The in-flight derivation finishes and its client gets the curve.
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	o := <-inflight
	if o.status != http.StatusOK {
		t.Fatalf("in-flight request after drain: status %d: %s", o.status, o.data)
	}
}

// TestKillAndResumeShardedDerivation is the checkpoint acceptance test:
// a server killed mid-way through a sharded derivation leaves resumable
// partial frontiers in the spool, and a restarted server completes the
// same request to the byte-identical curve while evaluating strictly
// less than the full space.
func TestKillAndResumeShardedDerivation(t *testing.T) {
	spool := t.TempDir()
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	opts := bound.Options{Workers: 2}
	space := bound.Space(e, opts)
	full := bound.Derive(e, opts)
	fullMappings := full.Stats.MappingsEvaluated
	want, err := json.Marshal(full.Curve)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"gemm":{"m":32,"k":24,"n":16},"shards":2,"timeout_ms":60000}`

	// Server 1: kill (Close = cancel everything) after two checkpoint
	// flushes have committed progress to disk. The kill fires
	// synchronously inside the checkpoint hook, so cancellation is
	// guaranteed to land while the derivation still has work left.
	var flushes atomic.Int64
	var killOnce sync.Once
	var s1 *Server
	cfg1 := Config{
		Workers:         2,
		SpoolDir:        spool,
		CheckpointEvery: 3,
		OnCheckpoint: func(m shard.Manifest) {
			if flushes.Add(1) >= 2 {
				killOnce.Do(func() { s1.Close() })
			}
		},
	}
	srv1, ts1 := newTestServer(t, cfg1)
	s1 = srv1
	status, data := postCurve(t, ts1.URL, body)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("killed derivation: status %d, want 503: %s", status, data)
	}
	if ei := decodeError(t, data); ei.Code != "draining" {
		t.Fatalf("killed derivation code %q, want draining", ei.Code)
	}

	// The spool holds resumable partials for this derivation.
	matches, err := filepath.Glob(filepath.Join(spool, "*", "shard-*-of-2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no partial frontiers in spool after kill")
	}
	var completed int64
	for _, m := range matches {
		p, err := shard.ReadPartial(m)
		if err != nil {
			t.Fatalf("partial %s unreadable after kill: %v", m, err)
		}
		completed += p.Manifest.CompletedThrough - p.Manifest.RangeLo
	}
	if completed <= 0 {
		t.Fatal("no committed progress in spooled partials")
	}
	if completed >= space {
		t.Fatalf("derivation completed (%d of %d) before the kill; test proves nothing", completed, space)
	}

	// Server 2 over the same spool: the same request resumes and
	// completes byte-identically, evaluating only the remainder.
	_, ts2 := newTestServer(t, Config{Workers: 2, SpoolDir: spool, CheckpointEvery: 3})
	status, data = postCurve(t, ts2.URL, body)
	if status != http.StatusOK {
		t.Fatalf("resumed derivation: status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if string(env.Curve) != string(want) {
		t.Fatalf("resumed curve differs from bound.Derive\n got %s\nwant %s", env.Curve, want)
	}
	// Evaluated counts mappings (tiling index × loop-order variants);
	// a resumed run that skipped the committed blocks must evaluate
	// strictly fewer than a from-scratch derivation.
	if env.Evaluated <= 0 || env.Evaluated >= fullMappings {
		t.Fatalf("resumed server evaluated %d mappings, full derivation evaluates %d; want 0 < evaluated < full (proof it resumed, not restarted)",
			env.Evaluated, fullMappings)
	}

	// Success cleans the derivation's spool subdirectory.
	leftovers, err := filepath.Glob(filepath.Join(spool, "*", "shard-*-of-2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("spool not cleaned after completed derivation: %v", leftovers)
	}
}

// TestShardedMatchesInProcess: the spooled sharded path (no faults)
// returns the same bytes as the in-process path and cleans up after
// itself.
func TestShardedMatchesInProcess(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Config{Workers: 2, SpoolDir: spool, CheckpointEvery: 5})

	e := einsum.GEMM("gemm_24x16x12", 24, 16, 12)
	want, err := json.Marshal(bound.Derive(e, bound.Options{Workers: 2}).Curve)
	if err != nil {
		t.Fatal(err)
	}
	status, data := postCurve(t, ts.URL, `{"gemm":{"m":24,"k":16,"n":12},"shards":3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if string(env.Curve) != string(want) {
		t.Fatalf("sharded curve differs from in-process derivation")
	}
	if env.Shards != 3 {
		t.Fatalf("shards %d, want 3", env.Shards)
	}
	entries, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spool not empty after success: %v", entries)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
