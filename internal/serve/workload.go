package serve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// Request is the body of POST /v1/curve: exactly one workload source
// (Einsum expression, GEMM shape, or fused chain), optional derivation
// options, and per-request execution knobs. Unknown fields are rejected
// so a typo degrades to a 400, never to a silently different derivation.
type Request struct {
	// Einsum is a workload in the expression syntax accepted by the
	// einsum package parser (the same strings the CLI accepts).
	Einsum string `json:"einsum,omitempty"`

	// GEMM is a shorthand for the M×K×N matrix-multiply workload.
	GEMM *GEMMSpec `json:"gemm,omitempty"`

	// Chain requests the tiled-fusion frontier of a chain of Einsums
	// (FFMT template sweep). Mutually exclusive with options and
	// multilevel, which are single-Einsum concepts.
	Chain *ChainSpec `json:"chain,omitempty"`

	// Segmentation requests the segmentation study of a chain of Einsums
	// (Sec. VII-B): the capacity-wise best curve over all 2^(n-1) cut
	// patterns, with per-segmentation curves for in-process runs. Like
	// chain, it is mutually exclusive with options and multilevel.
	Segmentation *SegmentationSpec `json:"segmentation,omitempty"`

	// MultiLevel switches a single-Einsum request from the two-level
	// bound to the three-level (L1/L2/DRAM) derivation; the response
	// curve is the DRAM frontier.
	MultiLevel *MultiLevelSpec `json:"multilevel,omitempty"`

	// Options are the result-affecting two-level bound options.
	Options OptionsSpec `json:"options,omitempty"`

	// TimeoutMS bounds this request's wall time in milliseconds. Zero
	// means the server default; values above the server maximum are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Shards, when > 1, runs the derivation as that many supervised,
	// checkpointed shard jobs in the server's spool directory, making it
	// resumable across a server restart.
	Shards int `json:"shards,omitempty"`

	// NoCache skips the cache lookup (the fresh result still enters the
	// cache, and concurrent identical requests still deduplicate).
	NoCache bool `json:"no_cache,omitempty"`

	// AllowPartial, valid only with shards > 1, accepts a degraded merge
	// when shards fail permanently: instead of an error the response is a
	// 206 envelope annotated with the covered index fraction and the
	// missing shard list, and the spool is kept so a retry can finish the
	// job. Degraded results are never cached.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// GEMMSpec names an M×K×N matrix multiply.
type GEMMSpec struct {
	// Name labels the workload; empty means "gemm_MxKxN".
	Name string `json:"name,omitempty"`
	// M, K, N are the GEMM extents; all must be >= 1.
	M int64 `json:"m"`
	K int64 `json:"k"`
	N int64 `json:"n"`
}

// ChainSpec names a chain of producer-consumer Einsums — the shared
// chain-workload shape of the tiled-fusion and segmentation requests.
type ChainSpec struct {
	// Name labels the chain; empty means "chain".
	Name string `json:"name,omitempty"`
	// Einsums are the chain's operations in producer order, each in the
	// einsum expression syntax.
	Einsums []string `json:"einsums"`
}

// SegmentationSpec names a chain of producer-consumer Einsums for the
// segmentation study. It is the same shape as ChainSpec — the alias
// replaces a copy-pasted struct and parse loop.
type SegmentationSpec = ChainSpec

// chain parses and assembles the ChainSpec into a fusion.Chain; what
// clarifies the errors.
func (spec *ChainSpec) chain(what string) (*fusion.Chain, error) {
	if len(spec.Einsums) == 0 {
		return nil, fmt.Errorf("%s needs at least one einsum", what)
	}
	name := spec.Name
	if name == "" {
		name = "chain"
	}
	es := make([]*einsum.Einsum, len(spec.Einsums))
	for i, s := range spec.Einsums {
		e, err := einsum.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("%s einsum %d: %w", what, i, err)
		}
		es[i] = e
	}
	return fusion.FromEinsums(name, es...)
}

// SegmentResult is one segmentation strategy's curve in the response
// envelope (in-process segmentation runs only; sharded runs return just
// the merged best curve). It is the workload package's Segment type, so
// the engine's output serializes into the envelope unchanged.
type SegmentResult = workload.Segment

// MultiLevelSpec selects the three-level derivation.
type MultiLevelSpec struct {
	// L1CapBytes is the innermost-buffer capacity gating mapping
	// feasibility; must be >= 1.
	L1CapBytes int64 `json:"l1_cap_bytes"`
}

// OptionsSpec mirrors the result-affecting fields of bound.Options.
// Worker counts are a server concern (results are worker-agnostic) and
// deliberately absent.
type OptionsSpec struct {
	// ImperfectExtra widens the mapspace with that many imperfect
	// (non-divisor) tile sizes per rank.
	ImperfectExtra int `json:"imperfect_extra,omitempty"`
	// ChargeSpills switches to physical partial-sum accounting.
	ChargeSpills bool `json:"charge_spills,omitempty"`
}

// deriveOut is what a derivation produces: the frontier and the number of
// mappings evaluated, plus — depending on the path — per-segmentation
// results (in-process segmentation studies) and the coverage annotation of
// a degraded shard merge (allow_partial requests whose shards failed).
type deriveOut struct {
	curve     *pareto.Curve
	evaluated int64
	segments  []SegmentResult
	degraded  *shard.Degraded
}

// deriveFn runs a derivation to completion under ctx.
type deriveFn func(ctx context.Context) (deriveOut, error)

// derivation is a validated, canonicalized unit of work: stable identity
// (key, digest) for caching and single-flight, the in-process derive
// function, and the shard-job constructor for the spooled path. Identity
// uses the same canonical encodings as the shard job builders, so a
// spooled derivation interrupted by one server process is resumed — not
// restarted — by the next.
type derivation struct {
	kind   shard.Kind
	label  string
	key    string
	digest string
	space  int64
	run    deriveFn
	mkJob  func(shard.Plan) (shard.Job, error)

	// spec is the request's workload spec; mspec is its materialized
	// form (filled by prepare; identical to spec when nothing needed
	// deriving). The spooled path persists mspec as the spool's
	// spec.json, which is why mkJob and run read mspec, never spec.
	spec  *workload.Spec
	mspec *workload.Spec

	// prepare, when non-nil, derives the derivation's inputs (e.g. the
	// segmentation study's per-op curves) under the flight context before
	// run or mkJob is used. It runs inside the flight — after admission,
	// under panic containment — so input derivation is cancellable and
	// never blocks the request handler.
	prepare func(ctx context.Context) error
}

// buildDerivation validates the request's workload and compiles it into
// a derivation. Errors are client errors (400 invalid_workload).
func buildDerivation(req *Request, workers int) (*derivation, error) {
	spec, err := specFromRequest(req)
	if err != nil {
		return nil, err
	}
	return derivationFromSpec(spec, workers)
}

// specFromRequest translates the HTTP request into the workload Spec the
// engine registry compiles — the only remaining per-source code; every
// derivation path below this point is registry dispatch.
func specFromRequest(req *Request) (*workload.Spec, error) {
	sources := 0
	if req.Einsum != "" {
		sources++
	}
	if req.GEMM != nil {
		sources++
	}
	if req.Chain != nil {
		sources++
	}
	if req.Segmentation != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of einsum, gemm, chain, segmentation required")
	}

	if req.Chain != nil || req.Segmentation != nil {
		if req.MultiLevel != nil {
			return nil, fmt.Errorf("multilevel applies to single-Einsum workloads, not chains")
		}
		if req.Options != (OptionsSpec{}) {
			return nil, fmt.Errorf("options apply to single-Einsum bound derivations, not chains")
		}
		if req.Chain != nil {
			c, err := req.Chain.chain("chain")
			if err != nil {
				return nil, err
			}
			return workload.NewFusionTiled(c), nil
		}
		c, err := req.Segmentation.chain("segmentation")
		if err != nil {
			return nil, err
		}
		return workload.NewSegmentation(c, nil), nil
	}

	var e *einsum.Einsum
	if req.Einsum != "" {
		var err error
		e, err = einsum.Parse(req.Einsum)
		if err != nil {
			return nil, err
		}
	} else {
		g := req.GEMM
		// einsum.GEMM panics on invalid shapes (it is a literal builder),
		// so reject them here where they are a client error.
		if g.M < 1 || g.K < 1 || g.N < 1 {
			return nil, fmt.Errorf("gemm shape %dx%dx%d, want all extents >= 1", g.M, g.K, g.N)
		}
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("gemm_%dx%dx%d", g.M, g.K, g.N)
		}
		e = einsum.GEMM(name, g.M, g.K, g.N)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}

	if req.MultiLevel != nil {
		if req.Options != (OptionsSpec{}) {
			return nil, fmt.Errorf("options apply to the two-level bound, not multilevel derivations")
		}
		return workload.NewMultiLevel(e, req.MultiLevel.L1CapBytes), nil
	}
	return workload.NewBound(e, bound.Options{
		ImperfectExtra: req.Options.ImperfectExtra,
		ChargeSpills:   req.Options.ChargeSpills,
	}), nil
}

// derivationFromSpec compiles a validated Spec into a derivation through
// the engine registry: cache identity from store.Identity (the shared
// rule that keys the memory LRU, the durable curve store, the single
// flight, and the spool directory — including segmentation's documented
// chain-only special case), in-process run and shard-job constructor
// from the Spec's engine, and — for Specs with underived inputs — a
// prepare hook that materializes them under the flight context. Pinned
// by the cross-layer identity test in identity_test.go.
func derivationFromSpec(spec *workload.Spec, workers int) (*derivation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	key, digest, err := store.Identity(spec)
	if err != nil {
		return nil, err
	}
	space, err := spec.Space()
	if err != nil {
		return nil, err
	}
	d := &derivation{
		kind:   spec.Kind,
		label:  spec.Describe(),
		key:    key,
		digest: digest,
		space:  space,
		spec:   spec,
		mspec:  spec,
	}
	exec := workload.Exec{Workers: workers}
	if _, _, err := spec.Digests(); errors.Is(err, workload.ErrUnmaterialized) {
		d.prepare = func(ctx context.Context) error {
			m, merr := spec.Materialize(ctx, exec)
			if merr != nil {
				return merr
			}
			d.mspec = m
			return nil
		}
	}
	d.run = func(ctx context.Context) (deriveOut, error) {
		r, err := d.mspec.Run(ctx, exec)
		if err != nil {
			return deriveOut{}, err
		}
		return deriveOut{curve: r.Curve, evaluated: r.Evaluated, segments: r.Segments}, nil
	}
	d.mkJob = func(plan shard.Plan) (shard.Job, error) {
		return d.mspec.Compile(plan, exec)
	}
	return d, nil
}
