package serve

import (
	"context"
	"fmt"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/multilevel"
	"repro/internal/pareto"
	"repro/internal/shard"
)

// Request is the body of POST /v1/curve: exactly one workload source
// (Einsum expression, GEMM shape, or fused chain), optional derivation
// options, and per-request execution knobs. Unknown fields are rejected
// so a typo degrades to a 400, never to a silently different derivation.
type Request struct {
	// Einsum is a workload in the expression syntax accepted by the
	// einsum package parser (the same strings the CLI accepts).
	Einsum string `json:"einsum,omitempty"`

	// GEMM is a shorthand for the M×K×N matrix-multiply workload.
	GEMM *GEMMSpec `json:"gemm,omitempty"`

	// Chain requests the tiled-fusion frontier of a chain of Einsums
	// (FFMT template sweep). Mutually exclusive with options and
	// multilevel, which are single-Einsum concepts.
	Chain *ChainSpec `json:"chain,omitempty"`

	// Segmentation requests the segmentation study of a chain of Einsums
	// (Sec. VII-B): the capacity-wise best curve over all 2^(n-1) cut
	// patterns, with per-segmentation curves for in-process runs. Like
	// chain, it is mutually exclusive with options and multilevel.
	Segmentation *SegmentationSpec `json:"segmentation,omitempty"`

	// MultiLevel switches a single-Einsum request from the two-level
	// bound to the three-level (L1/L2/DRAM) derivation; the response
	// curve is the DRAM frontier.
	MultiLevel *MultiLevelSpec `json:"multilevel,omitempty"`

	// Options are the result-affecting two-level bound options.
	Options OptionsSpec `json:"options,omitempty"`

	// TimeoutMS bounds this request's wall time in milliseconds. Zero
	// means the server default; values above the server maximum are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Shards, when > 1, runs the derivation as that many supervised,
	// checkpointed shard jobs in the server's spool directory, making it
	// resumable across a server restart.
	Shards int `json:"shards,omitempty"`

	// NoCache skips the cache lookup (the fresh result still enters the
	// cache, and concurrent identical requests still deduplicate).
	NoCache bool `json:"no_cache,omitempty"`

	// AllowPartial, valid only with shards > 1, accepts a degraded merge
	// when shards fail permanently: instead of an error the response is a
	// 206 envelope annotated with the covered index fraction and the
	// missing shard list, and the spool is kept so a retry can finish the
	// job. Degraded results are never cached.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// GEMMSpec names an M×K×N matrix multiply.
type GEMMSpec struct {
	// Name labels the workload; empty means "gemm_MxKxN".
	Name string `json:"name,omitempty"`
	// M, K, N are the GEMM extents; all must be >= 1.
	M int64 `json:"m"`
	K int64 `json:"k"`
	N int64 `json:"n"`
}

// ChainSpec names a chain of producer-consumer Einsums for the
// tiled-fusion sweep.
type ChainSpec struct {
	// Name labels the chain; empty means "chain".
	Name string `json:"name,omitempty"`
	// Einsums are the chain's operations in producer order, each in the
	// einsum expression syntax.
	Einsums []string `json:"einsums"`
}

// SegmentationSpec names a chain of producer-consumer Einsums for the
// segmentation study.
type SegmentationSpec struct {
	// Name labels the chain; empty means "chain".
	Name string `json:"name,omitempty"`
	// Einsums are the chain's operations in producer order, each in the
	// einsum expression syntax.
	Einsums []string `json:"einsums"`
}

// SegmentResult is one segmentation strategy's curve in the response
// envelope (in-process segmentation runs only; sharded runs return just
// the merged best curve).
type SegmentResult struct {
	// Label renders the strategy's op spans, e.g. "[0:1)[1:3)".
	Label string `json:"label"`
	// Cuts are the first op indices of every segment after the first.
	Cuts []int `json:"cuts,omitempty"`
	// Points is the number of frontier breakpoints in Curve.
	Points int `json:"points"`
	// Curve is the strategy's frontier.
	Curve *pareto.Curve `json:"curve"`
}

// MultiLevelSpec selects the three-level derivation.
type MultiLevelSpec struct {
	// L1CapBytes is the innermost-buffer capacity gating mapping
	// feasibility; must be >= 1.
	L1CapBytes int64 `json:"l1_cap_bytes"`
}

// OptionsSpec mirrors the result-affecting fields of bound.Options.
// Worker counts are a server concern (results are worker-agnostic) and
// deliberately absent.
type OptionsSpec struct {
	// ImperfectExtra widens the mapspace with that many imperfect
	// (non-divisor) tile sizes per rank.
	ImperfectExtra int `json:"imperfect_extra,omitempty"`
	// ChargeSpills switches to physical partial-sum accounting.
	ChargeSpills bool `json:"charge_spills,omitempty"`
}

// deriveOut is what a derivation produces: the frontier and the number of
// mappings evaluated, plus — depending on the path — per-segmentation
// results (in-process segmentation studies) and the coverage annotation of
// a degraded shard merge (allow_partial requests whose shards failed).
type deriveOut struct {
	curve     *pareto.Curve
	evaluated int64
	segments  []SegmentResult
	degraded  *shard.Degraded
}

// deriveFn runs a derivation to completion under ctx.
type deriveFn func(ctx context.Context) (deriveOut, error)

// derivation is a validated, canonicalized unit of work: stable identity
// (key, digest) for caching and single-flight, the in-process derive
// function, and the shard-job constructor for the spooled path. Identity
// uses the same canonical encodings as the shard job builders, so a
// spooled derivation interrupted by one server process is resumed — not
// restarted — by the next.
type derivation struct {
	kind   shard.Kind
	label  string
	key    string
	digest string
	space  int64
	run    deriveFn
	mkJob  func(shard.Plan) (shard.Job, error)

	// prepare, when non-nil, derives the derivation's inputs (e.g. the
	// segmentation study's per-op curves) under the flight context before
	// run or mkJob is used. It runs inside the flight — after admission,
	// under panic containment — so input derivation is cancellable and
	// never blocks the request handler.
	prepare func(ctx context.Context) error
}

// buildDerivation validates the request's workload and compiles it into
// a derivation. Errors are client errors (400 invalid_workload).
func buildDerivation(req *Request, workers int) (*derivation, error) {
	sources := 0
	if req.Einsum != "" {
		sources++
	}
	if req.GEMM != nil {
		sources++
	}
	if req.Chain != nil {
		sources++
	}
	if req.Segmentation != nil {
		sources++
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of einsum, gemm, chain, segmentation required")
	}

	if req.Chain != nil || req.Segmentation != nil {
		if req.MultiLevel != nil {
			return nil, fmt.Errorf("multilevel applies to single-Einsum workloads, not chains")
		}
		if req.Options != (OptionsSpec{}) {
			return nil, fmt.Errorf("options apply to single-Einsum bound derivations, not chains")
		}
		if req.Chain != nil {
			return buildChainDerivation(req.Chain, workers)
		}
		return buildSegmentationDerivation(req.Segmentation, workers)
	}

	var e *einsum.Einsum
	if req.Einsum != "" {
		var err error
		e, err = einsum.Parse(req.Einsum)
		if err != nil {
			return nil, err
		}
	} else {
		g := req.GEMM
		// einsum.GEMM panics on invalid shapes (it is a literal builder),
		// so reject them here where they are a client error.
		if g.M < 1 || g.K < 1 || g.N < 1 {
			return nil, fmt.Errorf("gemm shape %dx%dx%d, want all extents >= 1", g.M, g.K, g.N)
		}
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("gemm_%dx%dx%d", g.M, g.K, g.N)
		}
		e = einsum.GEMM(name, g.M, g.K, g.N)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}

	if req.MultiLevel != nil {
		if req.Options != (OptionsSpec{}) {
			return nil, fmt.Errorf("options apply to the two-level bound, not multilevel derivations")
		}
		return buildMultiLevelDerivation(e, req.MultiLevel.L1CapBytes, workers)
	}
	return buildBoundDerivation(e, req.Options, workers)
}

// buildBoundDerivation compiles a two-level bound derivation.
func buildBoundDerivation(e *einsum.Einsum, spec OptionsSpec, workers int) (*derivation, error) {
	opts := bound.Options{
		Workers:        workers,
		ImperfectExtra: spec.ImperfectExtra,
		ChargeSpills:   spec.ChargeSpills,
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	d := newDerivation(shard.KindBound, e.String(),
		shard.Digest(e.Canonical()), shard.Digest(opts.Canonical()))
	d.space = bound.Space(e, opts)
	d.run = func(ctx context.Context) (deriveOut, error) {
		r, err := bound.DeriveRange(ctx, e, opts, 0, d.space)
		if err != nil {
			return deriveOut{}, err
		}
		return deriveOut{curve: r.Curve, evaluated: r.Stats.MappingsEvaluated}, nil
	}
	d.mkJob = func(plan shard.Plan) (shard.Job, error) {
		return shard.BoundJob(e, opts, plan)
	}
	return d, nil
}

// buildMultiLevelDerivation compiles a three-level derivation; the
// served curve is the DRAM frontier (the same projection the sharded
// partial-frontier format stores).
func buildMultiLevelDerivation(e *einsum.Einsum, l1CapBytes int64, workers int) (*derivation, error) {
	if l1CapBytes < 1 {
		return nil, fmt.Errorf("multilevel l1_cap_bytes %d, want >= 1", l1CapBytes)
	}
	opts := multilevel.Options{Workers: workers}
	space, err := multilevel.Space(e)
	if err != nil {
		return nil, err
	}
	d := newDerivation(shard.KindMultiLevel,
		fmt.Sprintf("%s three-level L1=%dB", e.String(), l1CapBytes),
		shard.Digest(e.Canonical()), shard.Digest(shard.MultiLevelCanonical(l1CapBytes)))
	d.space = space
	d.run = func(ctx context.Context) (deriveOut, error) {
		r, err := multilevel.DeriveRange(ctx, e, l1CapBytes, 0, space, opts)
		if err != nil {
			return deriveOut{}, err
		}
		return deriveOut{curve: r.DRAM, evaluated: r.Mappings}, nil
	}
	d.mkJob = func(plan shard.Plan) (shard.Job, error) {
		return shard.MultiLevelJob(e, l1CapBytes, opts, plan)
	}
	return d, nil
}

// buildChainDerivation compiles a tiled-fusion sweep over a chain.
func buildChainDerivation(spec *ChainSpec, workers int) (*derivation, error) {
	if len(spec.Einsums) == 0 {
		return nil, fmt.Errorf("chain needs at least one einsum")
	}
	name := spec.Name
	if name == "" {
		name = "chain"
	}
	es := make([]*einsum.Einsum, len(spec.Einsums))
	for i, s := range spec.Einsums {
		e, err := einsum.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("chain einsum %d: %w", i, err)
		}
		es[i] = e
	}
	c, err := fusion.FromEinsums(name, es...)
	if err != nil {
		return nil, err
	}
	space, err := fusion.TiledFusionSpace(c)
	if err != nil {
		return nil, err
	}
	d := newDerivation(shard.KindFusionTiled,
		fmt.Sprintf("%s: %d ops over M=%d", c.Name, len(c.Ops), c.M),
		shard.Digest(c.Canonical()), shard.Digest("fusion-tiled{}"))
	d.space = space
	d.run = func(ctx context.Context) (deriveOut, error) {
		curve, ts, err := fusion.TiledFusionRange(ctx, c, 0, space, workers)
		if err != nil {
			return deriveOut{}, err
		}
		return deriveOut{curve: curve, evaluated: ts.Evaluated}, nil
	}
	d.mkJob = func(plan shard.Plan) (shard.Job, error) {
		return shard.FusionTiledJob(c, plan, workers)
	}
	return d, nil
}

// buildSegmentationDerivation compiles a segmentation study over a chain.
// The study's inputs — each op's standalone ski-slope curve — are
// themselves derivations, so they run in the prepare hook under the
// flight context rather than in the request handler. They are derived
// with default bound options, which have no result-affecting fields set,
// so the identity (and hence the spool directory of a sharded run) is a
// pure function of the chain and stays stable across server restarts.
func buildSegmentationDerivation(spec *SegmentationSpec, workers int) (*derivation, error) {
	if len(spec.Einsums) == 0 {
		return nil, fmt.Errorf("segmentation needs at least one einsum")
	}
	name := spec.Name
	if name == "" {
		name = "chain"
	}
	es := make([]*einsum.Einsum, len(spec.Einsums))
	for i, s := range spec.Einsums {
		e, err := einsum.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("segmentation einsum %d: %w", i, err)
		}
		es[i] = e
	}
	c, err := fusion.FromEinsums(name, es...)
	if err != nil {
		return nil, err
	}
	space, err := fusion.SegmentationSpace(c)
	if err != nil {
		return nil, err
	}
	d := newDerivation(shard.KindSegmentation,
		fmt.Sprintf("%s: %d-op segmentation study over M=%d", c.Name, len(c.Ops), c.M),
		shard.Digest(c.Canonical()), shard.Digest("segmentation{}"))
	d.space = space

	opts := bound.Options{Workers: workers}
	var perOp []*pareto.Curve
	d.prepare = func(ctx context.Context) error {
		curves := make([]*pareto.Curve, len(c.Ops))
		for i := range c.Ops {
			e := c.Ops[i].Ref
			r, err := bound.DeriveRange(ctx, e, opts, 0, bound.Space(e, opts))
			if err != nil {
				return fmt.Errorf("per-op curve %d (%s): %w", i, e.String(), err)
			}
			curves[i] = r.Curve
		}
		perOp = curves
		return nil
	}
	d.run = func(ctx context.Context) (deriveOut, error) {
		study, ts, err := fusion.SegmentationStudyContext(ctx, c, perOp, workers)
		if err != nil {
			return deriveOut{}, err
		}
		curves := make([]*pareto.Curve, len(study))
		segments := make([]SegmentResult, len(study))
		for i, sr := range study {
			curves[i] = sr.Curve
			segments[i] = SegmentResult{
				Label:  sr.Label,
				Cuts:   sr.Segmentation.Cuts,
				Points: sr.Curve.Len(),
				Curve:  sr.Curve,
			}
		}
		best := pareto.MergeMin(curves...)
		best.AlgoMinBytes = c.FusedAlgoMinBytes()
		best.TotalOperandBytes = c.UnfusedAlgoMinBytes()
		return deriveOut{curve: best, evaluated: ts.Evaluated, segments: segments}, nil
	}
	d.mkJob = func(plan shard.Plan) (shard.Job, error) {
		return shard.SegmentationJob(c, perOp, plan, workers)
	}
	return d, nil
}

// newDerivation assembles the identity fields: the single-flight/cache
// key concatenates kind and both canonical digests, and the response
// digest hashes the key into one stable identifier (also the spool
// subdirectory name for sharded runs).
func newDerivation(kind shard.Kind, label, workloadDigest, optionsDigest string) *derivation {
	key := string(kind) + "|" + workloadDigest + "|" + optionsDigest
	return &derivation{
		kind:   kind,
		label:  label,
		key:    key,
		digest: shard.Digest(key),
	}
}
