package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/shard"
	"repro/internal/workload"
)

// testChain builds the small two-op chain the worker tests use.
func testChain(t *testing.T) *fusion.Chain {
	t.Helper()
	c, err := fusion.NewChain("ffn", 64,
		fusion.GEMMOp("mm_0", 64, 32, 48),
		fusion.GEMMOp("mm_1", 64, 48, 16))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// postShard sends a raw body to /v1/shard and returns status + response.
func postShard(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// shardBody builds a ShardRequest body for a spec.
func shardBody(t *testing.T, spec *workload.Spec, k, n int) []byte {
	t.Helper()
	raw, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(ShardRequest{Spec: raw, ShardIndex: k, ShardCount: n})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestWorkerShardRoundTrip drives the worker endpoint directly: both
// shards of a 2-way bound plan come back as valid, complete partials
// whose merge is byte-identical to the single-process curve.
func TestWorkerShardRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{WorkerDir: t.TempDir()})
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	spec := workload.NewBound(e, bound.Options{})

	var partials []*shard.Partial
	for k := 0; k < 2; k++ {
		status, data := postShard(t, ts.URL, shardBody(t, spec, k, 2))
		if status != http.StatusOK {
			t.Fatalf("shard %d: status %d: %s", k, status, data)
		}
		var p shard.Partial
		if err := json.Unmarshal(data, &p); err != nil {
			t.Fatalf("shard %d: parsing partial: %v", k, err)
		}
		if err := p.Manifest.Validate(); err != nil {
			t.Fatalf("shard %d: invalid manifest: %v", k, err)
		}
		if !p.Manifest.Complete() {
			t.Fatalf("shard %d: incomplete partial (through %d of [%d, %d))",
				k, p.Manifest.CompletedThrough, p.Manifest.RangeLo, p.Manifest.RangeHi)
		}
		partials = append(partials, &p)
	}

	merged, err := shard.Merge(partials...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(bound.Derive(e, bound.Options{Workers: 2}).Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("merged worker shards differ from bound.Derive\n got %s\nwant %s", got, want)
	}
}

// TestWorkerUnknownKindIs400 is the regression test for the structured
// rejection of unregistered spec kinds: a 400 invalid_workload naming
// the registered alternatives, never a 500 out of panic containment.
func TestWorkerUnknownKindIs400(t *testing.T) {
	s, ts := newTestServer(t, Config{WorkerDir: t.TempDir()})
	body := []byte(`{"spec":{"kind":"nonsense"},"shard_index":0,"shard_count":2}`)
	status, data := postShard(t, ts.URL, body)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, data)
	}
	ei := decodeError(t, data)
	if ei.Code != "invalid_workload" {
		t.Fatalf("code %q, want invalid_workload: %s", ei.Code, data)
	}
	if !strings.Contains(ei.Message, "nonsense") {
		t.Fatalf("message does not name the unknown kind: %s", ei.Message)
	}
	if !strings.Contains(ei.Message, string(shard.KindBound)) {
		t.Fatalf("message does not name registered kinds: %s", ei.Message)
	}
	if got := s.Snapshot().PanicsRecovered; got != 0 {
		t.Fatalf("unknown kind tripped panic containment (%d panics recovered)", got)
	}
}

// TestWorkerEndpointValidation covers the remaining request rejections:
// endpoint disabled, bad plan, missing spec, unknown request field,
// unmaterialized spec, and format-version negotiation.
func TestWorkerEndpointValidation(t *testing.T) {
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	spec := workload.NewBound(e, bound.Options{})

	t.Run("disabled", func(t *testing.T) {
		_, ts := newTestServer(t, Config{})
		status, data := postShard(t, ts.URL, shardBody(t, spec, 0, 2))
		if status != http.StatusNotFound {
			t.Fatalf("status %d, want 404: %s", status, data)
		}
		if ei := decodeError(t, data); ei.Code != "worker_disabled" {
			t.Fatalf("code %q, want worker_disabled", ei.Code)
		}
	})

	_, ts := newTestServer(t, Config{WorkerDir: t.TempDir()})

	t.Run("bad plan", func(t *testing.T) {
		status, data := postShard(t, ts.URL, shardBody(t, spec, 7, 2))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, data)
		}
	})
	t.Run("missing spec", func(t *testing.T) {
		status, data := postShard(t, ts.URL, []byte(`{"shard_index":0,"shard_count":2}`))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, data)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		status, data := postShard(t, ts.URL, []byte(`{"shard_index":0,"shard_count":2,"bogus":1}`))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, data)
		}
		if ei := decodeError(t, data); ei.Code != "invalid_request" {
			t.Fatalf("code %q, want invalid_request", ei.Code)
		}
	})
	t.Run("unmaterialized segmentation", func(t *testing.T) {
		c := testChain(t)
		raw, err := workload.NewSegmentation(c, nil).Encode()
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(ShardRequest{Spec: raw, ShardIndex: 0, ShardCount: 2})
		if err != nil {
			t.Fatal(err)
		}
		status, data := postShard(t, ts.URL, body)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, data)
		}
		if ei := decodeError(t, data); ei.Code != "invalid_workload" {
			t.Fatalf("code %q, want invalid_workload: %s", ei.Code, data)
		}
	})
	t.Run("version negotiation", func(t *testing.T) {
		raw, err := spec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(ShardRequest{Spec: raw, ShardIndex: 0, ShardCount: 2, MaxFormatVersion: shard.FormatVersion - 1})
		if err != nil {
			t.Fatal(err)
		}
		status, data := postShard(t, ts.URL, body)
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, data)
		}
		if ei := decodeError(t, data); ei.Code != "unsupported_version" {
			t.Fatalf("code %q, want unsupported_version: %s", ei.Code, data)
		}
		body, err = json.Marshal(ShardRequest{Spec: raw, ShardIndex: 0, ShardCount: 2, MaxFormatVersion: shard.FormatVersion})
		if err != nil {
			t.Fatal(err)
		}
		if status, data := postShard(t, ts.URL, body); status != http.StatusOK {
			t.Fatalf("current version rejected: %d: %s", status, data)
		}
	})
}

// TestWorkerDrainingRejectsShards pins the drain contract on the worker
// endpoint: once draining, dispatches get 503 so coordinators retry
// elsewhere.
func TestWorkerDrainingRejectsShards(t *testing.T) {
	s, ts := newTestServer(t, Config{WorkerDir: t.TempDir()})
	s.draining.Store(true)
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	status, data := postShard(t, ts.URL, shardBody(t, workload.NewBound(e, bound.Options{}), 0, 2))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", status, data)
	}
	if ei := decodeError(t, data); ei.Code != "draining" {
		t.Fatalf("code %q, want draining", ei.Code)
	}
}

// TestWorkerStatsCount pins the worker counters: every /v1/shard request
// counts, and completed slices count separately.
func TestWorkerStatsCount(t *testing.T) {
	s, ts := newTestServer(t, Config{WorkerDir: t.TempDir()})
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	spec := workload.NewBound(e, bound.Options{})
	if status, data := postShard(t, ts.URL, shardBody(t, spec, 0, 2)); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	postShard(t, ts.URL, []byte(`not json`))
	st := s.Snapshot()
	if st.WorkerRequests != 2 {
		t.Fatalf("worker_requests %d, want 2", st.WorkerRequests)
	}
	if st.WorkerShards != 1 {
		t.Fatalf("worker_shards %d, want 1", st.WorkerShards)
	}
}
