package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/workload"
)

// spoolSpecFile is the self-description every spooled sharded derivation
// writes into its spool subdirectory. It carries the materialized
// workload Spec plus the shard width, so a later server process can
// rebuild the derivation — identity, shard jobs, and all — from the
// directory alone, without re-receiving the original HTTP request.
const spoolSpecFile = "spec.json"

// spoolSpec is the on-disk schema of spec.json.
type spoolSpec struct {
	// Digest is the full derivation digest; the spool subdirectory name
	// is its first 16 characters. Resume cross-checks both against the
	// digest recomputed from Spec, so a tampered or misplaced spool is
	// skipped instead of merged into the wrong cache entry.
	Digest string `json:"digest"`
	// Kind echoes the derivation kind for human inspection.
	Kind string `json:"kind"`
	// Shards is the fleet width the derivation was started with; resume
	// must reuse it so the partial frontiers line up.
	Shards int `json:"shards"`
	// Spec is the canonical encoding of the materialized workload Spec.
	Spec json.RawMessage `json:"spec"`
}

// writeSpoolSpec persists the derivation's self-description into dir
// atomically (write-temp-then-rename), so a crash mid-write leaves
// either no spec.json or a complete one, never a torn file.
func writeSpoolSpec(dir string, d *derivation, shards int) error {
	raw, err := d.mspec.Encode()
	if err != nil {
		return err
	}
	data, err := json.Marshal(&spoolSpec{
		Digest: d.digest,
		Kind:   string(d.kind),
		Shards: shards,
		Spec:   raw,
	})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, spoolSpecFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, spoolSpecFile))
}

// readSpoolSpec loads and sanity-checks dir's spec.json.
func readSpoolSpec(dir string) (*spoolSpec, error) {
	data, err := os.ReadFile(filepath.Join(dir, spoolSpecFile))
	if err != nil {
		return nil, err
	}
	var env spoolSpec
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", spoolSpecFile, err)
	}
	if env.Digest == "" || env.Shards < 2 || len(env.Spec) == 0 {
		return nil, fmt.Errorf("%s is incomplete (digest=%q shards=%d spec=%d bytes)",
			spoolSpecFile, env.Digest, env.Shards, len(env.Spec))
	}
	return &env, nil
}

// ResumeOrphans scans the spool directory for derivations a previous
// server process left behind and completes them: each subdirectory with
// a spec.json is decoded back into a derivation, its checkpointed shard
// fleet is resumed at the recorded width, and the finished curve enters
// the result cache — so the next identical request is a cache hit, even
// though this process never saw the original request. Subdirectories
// without spec.json (pre-spec spools) and spools whose recorded identity
// does not match their recomputed one are logged and kept untouched; a
// client re-issuing the request still resumes them through the normal
// spooled path.
//
// Call it once at startup, before serving traffic; it returns the number
// of derivations resumed to completion. Per-spool failures are logged
// and skipped (the spool survives for a later attempt); only a failure
// to scan the directory itself is returned as an error.
func (s *Server) ResumeOrphans(ctx context.Context) (int, error) {
	if s.cfg.SpoolDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.SpoolDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	resumed := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.SpoolDir, ent.Name())
		if s.cfg.WorkerDir != "" && dir == filepath.Clean(s.cfg.WorkerDir) {
			// The worker endpoint's own checkpoint tree (a sibling inside
			// the spool when orojenesisd runs with -worker): its shards
			// belong to remote coordinators, not this server's cache.
			continue
		}
		env, err := readSpoolSpec(dir)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				s.logf("serve: spool %s has no %s; waiting for a client to re-request it", dir, spoolSpecFile)
			} else {
				s.logf("serve: spool %s: %v", dir, err)
			}
			continue
		}
		spec, err := workload.Decode(env.Spec)
		if err != nil {
			s.logf("serve: spool %s: %v", dir, err)
			continue
		}
		d, err := derivationFromSpec(spec, s.cfg.Workers)
		if err != nil {
			s.logf("serve: spool %s: rebuilding derivation: %v", dir, err)
			continue
		}
		if d.digest != env.Digest || fmt.Sprintf("%.16s", d.digest) != ent.Name() {
			s.logf("serve: spool %s: recorded digest %.16s does not match spec digest %.16s; skipping",
				dir, env.Digest, d.digest)
			continue
		}
		// The spooled spec is materialized (spooledDerive persists mspec),
		// so d.prepare is nil for every kind and the fleet can run
		// directly. Resume never allows a degraded merge: an orphan that
		// cannot complete exactly stays in the spool.
		fn := s.spooledDerive(d, env.Shards, false)
		if s.cfg.deriveWrap != nil {
			fn = s.cfg.deriveWrap(d, fn)
		}
		start := time.Now()
		out, err := fn(ctx)
		if err != nil {
			s.logf("serve: resuming spool %s (%s): %v", dir, d.label, err)
			continue
		}
		res := result{deriveOut: out, elapsed: time.Since(start)}
		s.mem.put(d.key, res)
		s.diskPut(d, res)
		s.stats.derivations.Add(1)
		s.stats.evaluated.Add(out.evaluated)
		s.logf("serve: resumed orphaned derivation %s (%.12s) from spool", d.label, d.digest)
		resumed++
	}
	return resumed, nil
}
