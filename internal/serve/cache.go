package serve

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// result is a finished derivation: everything the derive function
// produced plus the wall time it cost. Cached responses replay the
// original evaluated count and elapsed time, so clients can still see
// what the derivation cost when it actually ran.
type result struct {
	deriveOut
	elapsed time.Duration

	// fromStore marks a durable-store hit: the curve was read back from
	// disk rather than derived in this process. Responses report it as
	// cached; finish republishes it to the memory LRU.
	fromStore bool
}

// flight is one in-progress derivation that any number of identical
// requests attach to. The first joiner becomes the leader and runs the
// derivation under ctx (a child of the server's lifetime context, NOT of
// any request's context — a leader hanging up must not kill the result
// its late joiners are waiting for). Each waiter honors its own deadline
// by selecting on done versus its request context; waiters that give up
// call leave, and when the count hits zero the flight's ctx is cancelled
// so an unwanted derivation stops at chunk granularity instead of
// burning a slot to completion.
type flight struct {
	key    string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// res and err are set exactly once, before done is closed.
	res result
	err error

	waiters  int
	finished bool
}

// centry is one LRU cache slot.
type centry struct {
	key string
	res result
}

// memCache is the digest-keyed result cache plus the single-flight table,
// under one mutex: a finishing flight inserts its result and removes
// itself atomically, so there is no window in which a new request sees
// neither the cached result nor the running flight and starts a
// duplicate derivation.
type memCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // of *centry; front = most recent
	entries  map[string]*list.Element // key -> element in order
	flights  map[string]*flight
}

func newMemCache(capacity int) *memCache {
	return &memCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		flights:  make(map[string]*flight),
	}
}

// get returns the cached result for key, refreshing its recency.
func (s *memCache) get(key string) (result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return result{}, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*centry).res, true
}

// join attaches the caller to the flight for key, creating it if absent.
// The second return reports leadership: the leader must start the
// derivation and eventually call finish; everyone (leader included, via
// its request handler) waits on f.done or leaves.
func (s *memCache) join(base context.Context, key string) (f *flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[key]; ok {
		f.waiters++
		return f, false
	}
	ctx, cancel := context.WithCancel(base)
	f = &flight{
		key:     key,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		waiters: 1,
	}
	s.flights[key] = f
	return f, true
}

// leave detaches a waiter that gave up (deadline expired, client
// disconnected). When the last waiter leaves an unfinished flight, the
// flight's context is cancelled: nobody wants the answer anymore, so the
// traversal stops and frees its slot for admitted work.
func (s *memCache) leave(f *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.waiters--
	if f.waiters <= 0 && !f.finished {
		f.cancel()
	}
}

// finish publishes the flight's outcome: result and error are recorded,
// waiters are released, the flight leaves the table, and — in the same
// critical section — a successful result enters the cache. Failed
// derivations are never cached; the next identical request retries.
// Degraded merges are also never cached: their spool survives, so the
// next identical request resumes the missing slices instead of replaying
// an incomplete answer.
func (s *memCache) finish(f *flight, res result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f.res, f.err = res, err
	f.finished = true
	if err == nil && res.degraded == nil {
		s.putLocked(f.key, res)
	}
	delete(s.flights, f.key)
	close(f.done)
}

// putLocked inserts or refreshes a cache entry and evicts from the cold
// end past capacity. Caller holds mu.
func (s *memCache) putLocked(key string, res result) {
	if s.capacity <= 0 {
		return
	}
	if el, ok := s.entries[key]; ok {
		el.Value.(*centry).res = res
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&centry{key: key, res: res})
	for len(s.entries) > s.capacity {
		el := s.order.Back()
		s.order.Remove(el)
		delete(s.entries, el.Value.(*centry).key)
	}
}

// put inserts a result that was computed outside any flight — the
// spool-orphan recovery path uses it to publish derivations it completed
// before the server started taking traffic.
func (s *memCache) put(key string, res result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(key, res)
}

// len reports the number of cached results.
func (s *memCache) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
