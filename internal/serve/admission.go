package serve

import (
	"context"
	"errors"
	"time"
)

// errSaturated is the admission controller's refusal: every derivation
// slot is busy and either the queue is full or the queue wait budget
// expired. Handlers translate it to 429 + Retry-After — the server sheds
// load explicitly instead of accepting unbounded work and dying of it.
var errSaturated = errors.New("serve: derivation capacity saturated")

// admission is the server's load regulator: a bounded semaphore of
// derivation slots plus a bounded wait queue. A flight first tries to
// take a slot immediately; failing that it queues, but only if fewer
// than maxQueue flights are already waiting, and only for up to wait —
// after either bound the flight fails with errSaturated. Identical
// concurrent requests cost one queue entry because admission gates
// flights (deduplicated derivations), not requests.
type admission struct {
	slots    chan struct{}
	queued   chan struct{}
	wait     time.Duration
	capacity int
}

// newAdmission sizes the regulator: concurrent derivation slots, queued
// flights beyond them, and the maximum time a queued flight waits.
func newAdmission(concurrent, queue int, wait time.Duration) *admission {
	return &admission{
		slots:    make(chan struct{}, concurrent),
		queued:   make(chan struct{}, queue),
		wait:     wait,
		capacity: concurrent,
	}
}

// acquire takes a derivation slot, queueing within the configured bounds.
// It returns nil once the slot is held, errSaturated when the queue is
// full or the wait budget expires, or the context's error if ctx is
// cancelled while waiting (all waiters left, or server shutdown).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.queued <- struct{}{}:
		defer func() { <-a.queued }()
	default:
		return errSaturated
	}
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-t.C:
		return errSaturated
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by acquire.
func (a *admission) release() { <-a.slots }

// inFlight reports how many derivation slots are currently held.
func (a *admission) inFlight() int { return len(a.slots) }

// queueDepth reports how many flights are waiting for a slot.
func (a *admission) queueDepth() int { return len(a.queued) }
