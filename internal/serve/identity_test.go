package serve

import (
	"context"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/multilevel"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestServeIdentityPinnedToShardJobDigests is the cross-layer identity
// contract: for every kind except segmentation, the serve-layer cache
// key, flight key, and spool digest are built from exactly the digests
// the shard job builders stamp into partial-frontier manifests — so a
// spool written by one layer is always found by the other. Segmentation
// is the one documented divergence (asserted by the companion test
// below): its serve identity hashes only the chain, because the per-op
// input curves that the shard digest includes are derived inside the
// flight, after the identity must already exist.
func TestServeIdentityPinnedToShardJobDigests(t *testing.T) {
	plan := shard.Plan{Index: 0, Count: 1}
	cases := []struct {
		name string
		req  Request
		job  func(t *testing.T) shard.Job
	}{
		{
			name: "bound with options",
			req: Request{
				GEMM:    &GEMMSpec{M: 16, K: 12, N: 8},
				Options: OptionsSpec{ImperfectExtra: 1},
			},
			job: func(t *testing.T) shard.Job {
				e := einsum.GEMM("gemm_16x12x8", 16, 12, 8)
				j, err := shard.BoundJob(e, bound.Options{ImperfectExtra: 1}, plan)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
		},
		{
			name: "multilevel",
			req: Request{
				GEMM:       &GEMMSpec{M: 16, K: 12, N: 8},
				MultiLevel: &MultiLevelSpec{L1CapBytes: 512},
			},
			job: func(t *testing.T) shard.Job {
				e := einsum.GEMM("gemm_16x12x8", 16, 12, 8)
				j, err := shard.MultiLevelJob(e, 512, multilevel.Options{Workers: 2}, plan)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
		},
		{
			name: "fusion-tiled",
			req: Request{
				Chain: &ChainSpec{Einsums: segEinsums},
			},
			job: func(t *testing.T) shard.Job {
				c := segTestChain(t, segEinsums)
				j, err := shard.FusionTiledJob(c, plan, 2)
				if err != nil {
					t.Fatal(err)
				}
				return j
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := buildDerivation(&tc.req, 2)
			if err != nil {
				t.Fatal(err)
			}
			job := tc.job(t)
			wantKey := string(job.Kind) + "|" + job.WorkloadDigest + "|" + job.OptionsDigest
			if d.key != wantKey {
				t.Fatalf("serve key %q, shard job digests give %q", d.key, wantKey)
			}
			if d.digest != shard.Digest(wantKey) {
				t.Fatalf("serve digest %q, want digest of the shard-job key", d.digest)
			}
			// The job the derivation itself compiles carries the same
			// identity — the spooled path and the manifest agree too.
			cj, err := d.mkJob(plan)
			if err != nil {
				t.Fatal(err)
			}
			if cj.WorkloadDigest != job.WorkloadDigest || cj.OptionsDigest != job.OptionsDigest {
				t.Fatalf("compiled job digests (%.12s, %.12s) differ from legacy builder (%.12s, %.12s)",
					cj.WorkloadDigest, cj.OptionsDigest, job.WorkloadDigest, job.OptionsDigest)
			}
		})
	}
}

// TestSegmentationServeIdentityIsChainOnly pins segmentation's documented
// divergence: the serve identity hashes only the chain (plus the constant
// options tag), NOT the per-op curves the shard jobs hash — and that is
// sound because the per-op curves are a pure function of the chain, so
// the shard digests under one serve digest are still deterministic.
func TestSegmentationServeIdentityIsChainOnly(t *testing.T) {
	req := Request{Segmentation: &SegmentationSpec{Einsums: segEinsums}}
	d, err := buildDerivation(&req, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := segTestChain(t, segEinsums)
	wantKey := string(shard.KindSegmentation) + "|" +
		shard.Digest(c.Canonical()) + "|" + shard.Digest("segmentation{}")
	if d.key != wantKey {
		t.Fatalf("segmentation serve key %q, want chain-only key %q", d.key, wantKey)
	}

	// The shard-job identity really does diverge: it hashes the per-op
	// curves into the workload digest.
	plan := shard.Plan{Index: 0, Count: 1}
	perOp := c.PerOpCurves(bound.Options{Workers: 2})
	job, err := shard.SegmentationJob(c, perOp, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if shard.Digest(c.Canonical()) == job.WorkloadDigest {
		t.Fatal("segmentation shard workload digest unexpectedly equals the chain digest; the divergence this test documents is gone — unify the identities and delete serveIdentity's special case")
	}

	// Soundness: two independent materializations of the same chain
	// compile to the same shard digests, so every server process that
	// spools under the chain-only digest writes compatible partials.
	exec := workload.Exec{Workers: 2}
	m1, err := workload.NewSegmentation(c, nil).Materialize(context.Background(), exec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := workload.NewSegmentation(segTestChain(t, segEinsums), nil).Materialize(context.Background(), exec)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Compile(plan, exec)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m2.Compile(plan, exec)
	if err != nil {
		t.Fatal(err)
	}
	if j1.WorkloadDigest != j2.WorkloadDigest || j1.OptionsDigest != j2.OptionsDigest {
		t.Fatalf("independent materializations compile to different shard digests (%.12s vs %.12s); per-op curves are not a pure function of the chain and the chain-only serve identity is unsound",
			j1.WorkloadDigest, j2.WorkloadDigest)
	}
	if j1.WorkloadDigest != job.WorkloadDigest {
		t.Fatalf("spec-compiled segmentation job digest %.12s differs from legacy builder %.12s",
			j1.WorkloadDigest, job.WorkloadDigest)
	}
}
