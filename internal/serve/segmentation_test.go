package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/shard"
)

// segEinsums is a three-op producer-consumer chain in expression syntax;
// its segmentation mask space has 2^2 = 4 entries.
var segEinsums = []string{
	`B[m,n] = A[m,k] * W[k,n] {M=16,K=4,N=8}`,
	`C[m,n] = B[m,k] * V[k,n] {M=16,K=8,N=8}`,
	`D[m,n] = C[m,k] * U[k,n] {M=16,K=8,N=4}`,
}

// segTestChain rebuilds the served chain in-process, exactly as the
// server does: FromEinsums over the same expressions.
func segTestChain(t *testing.T, exprs []string) *fusion.Chain {
	t.Helper()
	es := make([]*einsum.Einsum, len(exprs))
	for i, s := range exprs {
		es[i] = einsum.MustParse(s)
	}
	c, err := fusion.FromEinsums("chain", es...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServedSegmentationMatchesInProcess: the segmentation workload kind
// — in-process and sharded — returns the byte-identical best curve of
// fusion.BestSegmentationStats, and the in-process envelope carries every
// per-segmentation curve of the study.
func TestServedSegmentationMatchesInProcess(t *testing.T) {
	c := segTestChain(t, segEinsums)
	perOp := c.PerOpCurves(bound.Options{Workers: 2})
	want, _, err := fusion.BestSegmentationStats(c, perOp, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	study, _, err := fusion.SegmentationStudyStats(c, perOp, 2)
	if err != nil {
		t.Fatal(err)
	}

	spool := t.TempDir()
	_, ts := newTestServer(t, Config{SpoolDir: spool, CheckpointEvery: 2})

	body := fmt.Sprintf(`{"segmentation":{"einsums":[%q,%q,%q]}}`,
		segEinsums[0], segEinsums[1], segEinsums[2])
	status, data := postCurve(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if env.Kind != "segmentation" {
		t.Fatalf("kind %q, want segmentation", env.Kind)
	}
	if string(env.Curve) != string(wantBytes) {
		t.Fatalf("served segmentation curve differs from fusion.BestSegmentationStats\n got %s\nwant %s", env.Curve, wantBytes)
	}

	// The in-process envelope carries the whole study, segmentation by
	// segmentation, byte-identical to SegmentationStudyStats.
	var segEnv struct {
		Segments []struct {
			Label string          `json:"label"`
			Curve json.RawMessage `json:"curve"`
		} `json:"segments"`
	}
	if err := json.Unmarshal(data, &segEnv); err != nil {
		t.Fatal(err)
	}
	if len(segEnv.Segments) != len(study) {
		t.Fatalf("%d served segments, study has %d", len(segEnv.Segments), len(study))
	}
	for i, sr := range study {
		if segEnv.Segments[i].Label != sr.Label {
			t.Fatalf("segment %d label %q, want %q", i, segEnv.Segments[i].Label, sr.Label)
		}
		wantSeg, err := json.Marshal(sr.Curve)
		if err != nil {
			t.Fatal(err)
		}
		if string(segEnv.Segments[i].Curve) != string(wantSeg) {
			t.Fatalf("segment %d (%s) curve differs from in-process study", i, sr.Label)
		}
	}

	// Sharded path (no_cache forces a fresh flight past the cached
	// in-process result): merged best curve is byte-identical, the
	// per-segmentation detail is absent, and the spool is cleaned.
	status, data = postCurve(t, ts.URL, fmt.Sprintf(
		`{"segmentation":{"einsums":[%q,%q,%q]},"shards":2,"no_cache":true}`,
		segEinsums[0], segEinsums[1], segEinsums[2]))
	if status != http.StatusOK {
		t.Fatalf("sharded status %d: %s", status, data)
	}
	env = decodeEnvelope(t, data)
	if env.Shards != 2 {
		t.Fatalf("shards %d, want 2", env.Shards)
	}
	if string(env.Curve) != string(wantBytes) {
		t.Fatalf("sharded segmentation curve differs from in-process study\n got %s\nwant %s", env.Curve, wantBytes)
	}
	if strings.Contains(string(data), `"segments"`) {
		t.Fatal("sharded response carries per-segmentation detail")
	}
	leftovers, err := filepath.Glob(filepath.Join(spool, "*", "shard-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("spool not cleaned after sharded segmentation: %v", leftovers)
	}
}

// TestServedSegmentationDegraded206: an allow_partial sharded
// segmentation whose shard fleet loses a shard permanently answers 206
// with the degraded coverage envelope, keeps the spool as the resume
// point, caches nothing, and reports exactly the coverage a degraded
// merge of the spooled partial frontiers computes (what the shardmerge
// CLI's -allow-partial would print).
func TestServedSegmentationDegraded206(t *testing.T) {
	exprs := []string{
		`B[m,n] = A[m,k] * W[k,n] {M=16,K=4,N=8}`,
		`C[m,n] = B[m,k] * V[k,n] {M=16,K=8,N=8}`,
		`D[m,n] = C[m,k] * U[k,n] {M=16,K=8,N=4}`,
		`E[m,n] = D[m,k] * T[k,n] {M=16,K=4,N=4}`,
	}

	// Shard 2 of 3 (index 1) can never commit a checkpoint: every rename
	// of its partial-frontier file fails, as on a disk running full. With
	// no retry budget that shard fails permanently and leaves no file.
	errDisk := errors.New("injected: no space left on device")
	ffs := &shard.FaultFS{Fail: func(op shard.Op, path string) error {
		if op == shard.OpRename && strings.Contains(path, "shard-2-of-3.json") {
			return errDisk
		}
		return nil
	}}
	spool := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:         2,
		SpoolDir:        spool,
		CheckpointEvery: 2,
		ShardRetries:    -1,
		shardFS:         ffs,
	})

	body := fmt.Sprintf(
		`{"segmentation":{"einsums":[%q,%q,%q,%q]},"shards":3,"allow_partial":true}`,
		exprs[0], exprs[1], exprs[2], exprs[3])
	status, data := postCurve(t, ts.URL, body)
	if status != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", status, data)
	}

	var env struct {
		curveEnvelope
		Degraded         bool    `json:"degraded"`
		Items            int64   `json:"items"`
		CoveredIndices   int64   `json:"covered_indices"`
		CoveredFraction  float64 `json:"covered_fraction"`
		MissingShards    []int   `json:"missing_shards"`
		IncompleteShards []int   `json:"incomplete_shards"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding 206 envelope %s: %v", data, err)
	}
	if !env.Degraded {
		t.Fatalf("206 envelope without degraded marker: %s", data)
	}
	if env.Items != 8 {
		t.Fatalf("items %d, want 8 (2^3 segmentations)", env.Items)
	}
	if env.CoveredIndices <= 0 || env.CoveredIndices >= env.Items {
		t.Fatalf("covered_indices %d of %d, want a strict partial cover", env.CoveredIndices, env.Items)
	}
	if len(env.MissingShards) != 1 || env.MissingShards[0] != 1 {
		t.Fatalf("missing_shards %v, want [1]", env.MissingShards)
	}
	// The taint travels on the curve itself, not just the envelope.
	if !strings.Contains(string(env.Curve), `"degraded":true`) {
		t.Fatalf("degraded response curve not marked degraded: %s", env.Curve)
	}

	// The spool survives as the resume point, and a best-effort merge of
	// exactly those files reproduces the served coverage numbers — the
	// HTTP envelope and the shardmerge CLI agree.
	matches, err := filepath.Glob(filepath.Join(spool, "*", "shard-*-of-3.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("spool empty after degraded merge; resume point lost")
	}
	d, err := shard.MergeDegradedFiles(matches...)
	if err != nil {
		t.Fatal(err)
	}
	if d.CoveredFraction != env.CoveredFraction {
		t.Fatalf("served covered_fraction %v, spool merge computes %v", env.CoveredFraction, d.CoveredFraction)
	}
	if d.CoveredIndices != env.CoveredIndices {
		t.Fatalf("served covered_indices %d, spool merge computes %d", env.CoveredIndices, d.CoveredIndices)
	}
	wantCurve, err := json.Marshal(d.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if string(env.Curve) != string(wantCurve) {
		t.Fatalf("served degraded curve differs from spool merge\n got %s\nwant %s", env.Curve, wantCurve)
	}

	// Degraded results are never cached: a retry must resume the spool,
	// not replay the incomplete answer.
	if got := s.mem.len(); got != 0 {
		t.Fatalf("degraded result entered the cache (%d entries)", got)
	}
}
