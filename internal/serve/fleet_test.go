package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/shard"
)

// gemmWant computes the single-process reference curve for an MxKxN
// GEMM, serialized for byte-identity checks.
func gemmWant(t *testing.T, m, k, n int64) string {
	t.Helper()
	e := einsum.GEMM(fmt.Sprintf("gemm_%dx%dx%d", m, k, n), m, k, n)
	data, err := json.Marshal(bound.Derive(e, bound.Options{Workers: 2}).Curve)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// forwardShard relays a dispatch body to a real worker server and copies
// its response back — the building block for scripted fleet members that
// stay protocol-exact.
func forwardShard(t *testing.T, w http.ResponseWriter, backend string, body []byte) {
	t.Helper()
	resp, err := http.Post(backend+"/v1/shard", "application/json", bytes.NewReader(body))
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"forward failed"}}`, http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// TestFleetServeByteIdentity is the tentpole acceptance end to end: a
// coordinator server dispatching to two real worker servers over HTTP
// answers /v1/curve byte-identically to a single-process derivation, for
// N in {2, 4}, and both sides' /stats counters move.
func TestFleetServeByteIdentity(t *testing.T) {
	w1s, w1 := newTestServer(t, Config{WorkerDir: t.TempDir()})
	w2s, w2 := newTestServer(t, Config{WorkerDir: t.TempDir()})
	cases := []struct {
		shards  int
		m, k, n int64
	}{
		{2, 32, 24, 16},
		{4, 32, 16, 24},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n=%d", tc.shards), func(t *testing.T) {
			spool := t.TempDir()
			cs, ts := newTestServer(t, Config{
				SpoolDir:     spool,
				FleetWorkers: []string{w1.URL, w2.URL},
			})
			body := fmt.Sprintf(`{"gemm":{"m":%d,"k":%d,"n":%d},"shards":%d,"timeout_ms":60000}`,
				tc.m, tc.k, tc.n, tc.shards)
			status, data := postCurve(t, ts.URL, body)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, data)
			}
			env := decodeEnvelope(t, data)
			if want := gemmWant(t, tc.m, tc.k, tc.n); string(env.Curve) != want {
				t.Fatalf("fleet-served curve differs from bound.Derive\n got %s\nwant %s", env.Curve, want)
			}
			st := cs.Snapshot()
			if st.FleetDispatches < int64(tc.shards) {
				t.Fatalf("fleet_dispatches %d, want >= %d", st.FleetDispatches, tc.shards)
			}
			// The successful derivation's spool is cleaned up.
			if dirs, err := filepath.Glob(filepath.Join(spool, "*")); err != nil || len(dirs) != 0 {
				t.Fatalf("spool not cleaned after exact fleet merge: %v (err=%v)", dirs, err)
			}
			// And served again, it is a cache hit: no new dispatches.
			if status, data := postCurve(t, ts.URL, body); status != http.StatusOK || !decodeEnvelope(t, data).Cached {
				t.Fatalf("repeat request not a cache hit: %d: %s", status, data)
			}
			if got := cs.Snapshot().FleetDispatches; got != st.FleetDispatches {
				t.Fatalf("cache hit dispatched shards: %d -> %d", st.FleetDispatches, got)
			}
		})
	}
	if w1s.Snapshot().WorkerShards+w2s.Snapshot().WorkerShards < 6 {
		t.Fatalf("workers completed %d+%d shards, want >= 6 total",
			w1s.Snapshot().WorkerShards, w2s.Snapshot().WorkerShards)
	}
}

// TestFleetServeKillAWorker kills a live worker server mid-derivation:
// its in-flight shards die with the process (connection errors and 503
// draining with Retry-After), the coordinator redispatches them on the
// surviving worker — as retries or as polite deferrals, depending on
// which rejection each dispatch observed — and the final curve is still
// byte-identical.
func TestFleetServeKillAWorker(t *testing.T) {
	var killOnce sync.Once
	var doomed *Server
	ds, dts := newTestServer(t, Config{
		WorkerDir:       t.TempDir(),
		CheckpointEvery: 3,
		OnCheckpoint: func(shard.Manifest) {
			killOnce.Do(func() { doomed.Close() })
		},
	})
	doomed = ds
	_, wts := newTestServer(t, Config{WorkerDir: t.TempDir()})

	cs, ts := newTestServer(t, Config{
		SpoolDir:        t.TempDir(),
		CheckpointEvery: 3, // forwarded stride: the doomed worker flushes (and dies) early
		FleetWorkers:    []string{dts.URL, wts.URL},
	})
	status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":24,"n":16},"shards":4,"timeout_ms":60000}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if want := gemmWant(t, 32, 24, 16); string(env.Curve) != want {
		t.Fatalf("curve after worker kill differs from bound.Derive\n got %s\nwant %s", env.Curve, want)
	}
	if st := cs.Snapshot(); st.FleetRetries+st.FleetDeferrals == 0 {
		t.Fatal("killed worker cost no retries or deferrals — it was never dispatched to")
	}
}

// TestFleetServeKillCoordinatorResume kills the coordinator server after
// exactly one shard has landed in its spool, then hands the spool to a
// fresh coordinator: ResumeOrphans finishes the derivation through the
// fleet, honoring the spooled shard without re-dispatching it, and the
// first client request after recovery is a byte-identical cache hit.
func TestFleetServeKillCoordinatorResume(t *testing.T) {
	spool := t.TempDir()
	ws, wts := newTestServer(t, Config{WorkerDir: t.TempDir()})

	// The first coordinator's fleet: shard 0 is served (forwarded to the
	// real worker); every other shard blocks until the coordinator dies.
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, `{"error":{"code":"invalid_request","message":"torn body"}}`, http.StatusBadRequest)
			return
		}
		var req ShardRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, `{"error":{"code":"invalid_request","message":"bad dispatch"}}`, http.StatusBadRequest)
			return
		}
		if req.ShardIndex == 0 {
			forwardShard(t, w, wts.URL, body)
			return
		}
		<-r.Context().Done() // hold the dispatch until the coordinator is killed
	}))
	defer gate.Close()

	var s1 *Server
	var killOnce sync.Once
	srv1, ts1 := newTestServer(t, Config{
		SpoolDir:     spool,
		FleetWorkers: []string{gate.URL},
	})
	s1 = srv1
	// Kill the coordinator the moment shard 0's partial is spooled.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go func() {
		for watchCtx.Err() == nil {
			if m, _ := filepath.Glob(filepath.Join(spool, "*", "shard-1-of-2.json")); len(m) > 0 {
				killOnce.Do(func() { s1.Close() })
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	body := `{"gemm":{"m":32,"k":24,"n":16},"shards":2,"timeout_ms":60000}`
	if status, data := postCurve(t, ts1.URL, body); status != http.StatusServiceUnavailable {
		t.Fatalf("killed coordinator: status %d, want 503: %s", status, data)
	}

	// The orphan is self-describing and keeps the completed shard.
	specs, err := filepath.Glob(filepath.Join(spool, "*", spoolSpecFile))
	if err != nil || len(specs) != 1 {
		t.Fatalf("%d spool spec.json files after kill (err=%v), want 1", len(specs), err)
	}
	partial, err := shard.ReadPartial(filepath.Join(filepath.Dir(specs[0]), "shard-1-of-2.json"))
	if err != nil {
		t.Fatalf("spooled shard 0 unreadable after kill: %v", err)
	}
	if !partial.Manifest.Complete() {
		t.Fatal("spooled shard 0 is incomplete")
	}

	// A fresh coordinator with a healthy fleet: ResumeOrphans completes
	// the derivation, dispatching only the missing shard.
	before := ws.Snapshot().WorkerShards
	srv2, ts2 := newTestServer(t, Config{
		SpoolDir:     spool,
		FleetWorkers: []string{wts.URL},
	})
	n, err := srv2.ResumeOrphans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d orphans, want 1", n)
	}
	if got := ws.Snapshot().WorkerShards - before; got != 1 {
		t.Fatalf("resume dispatched %d shards to the worker, want exactly 1 (shard 0 resumes from the spool)", got)
	}
	st := srv2.Snapshot()
	if st.FleetDispatches == 0 {
		t.Fatal("resume did not go through the fleet")
	}

	status, data := postCurve(t, ts2.URL, body)
	if status != http.StatusOK {
		t.Fatalf("post-recovery request: status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if !env.Cached {
		t.Fatal("post-recovery request missed the cache")
	}
	if want := gemmWant(t, 32, 24, 16); string(env.Curve) != want {
		t.Fatalf("recovered fleet curve differs from bound.Derive\n got %s\nwant %s", env.Curve, want)
	}
	if _, err := os.Stat(filepath.Dir(specs[0])); !os.IsNotExist(err) {
		t.Fatalf("completed fleet spool not cleaned (err=%v)", err)
	}
}

// TestFleetServeDegraded drives the coordinator's allow_partial path: a
// shard every fleet member rejects permanently degrades the response to
// an annotated 206, never an error or a corrupt artifact.
func TestFleetServeDegraded(t *testing.T) {
	_, wts := newTestServer(t, Config{WorkerDir: t.TempDir()})
	// Shard 1 always fails server-side; everything else is served.
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, `{"error":{"code":"invalid_request","message":"torn body"}}`, http.StatusBadRequest)
			return
		}
		var req ShardRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, `{"error":{"code":"invalid_request","message":"bad dispatch"}}`, http.StatusBadRequest)
			return
		}
		if req.ShardIndex == 1 {
			http.Error(w, `{"error":{"code":"internal","message":"shard 2 always fails"}}`, http.StatusInternalServerError)
			return
		}
		forwardShard(t, w, wts.URL, body)
	}))
	defer flaky.Close()

	spool := t.TempDir()
	_, ts := newTestServer(t, Config{
		SpoolDir:     spool,
		ShardRetries: -1,
		FleetWorkers: []string{flaky.URL},
	})
	status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":24,"n":16},"shards":2,"allow_partial":true,"timeout_ms":60000}`)
	if status != http.StatusPartialContent {
		t.Fatalf("status %d, want 206: %s", status, data)
	}
	var env struct {
		Degraded        bool    `json:"degraded"`
		CoveredFraction float64 `json:"covered_fraction"`
		MissingShards   []int   `json:"missing_shards"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Degraded || env.CoveredFraction <= 0 || env.CoveredFraction >= 1 {
		t.Fatalf("degraded envelope degraded=%v covered=%v, want degraded with partial coverage", env.Degraded, env.CoveredFraction)
	}
	if len(env.MissingShards) != 1 {
		t.Fatalf("missing_shards %v, want exactly one", env.MissingShards)
	}
	// The spool survives as the resume point, holding only valid partials.
	dirs, err := filepath.Glob(filepath.Join(spool, "*", "shard-*.json"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("degraded run kept no spooled partials (err=%v)", err)
	}
	for _, p := range dirs {
		if _, err := shard.ReadPartial(p); err != nil {
			t.Fatalf("spool file %s is not a valid partial: %v", p, err)
		}
	}
}

// TestFleetServeUsesRequestStride pins the CheckpointEvery wire field:
// a coordinator-chosen stride reaches the worker's shard run.
func TestFleetServeUsesRequestStride(t *testing.T) {
	var flushes atomic.Int64
	_, wts := newTestServer(t, Config{
		WorkerDir: t.TempDir(),
		OnCheckpoint: func(m shard.Manifest) {
			if !m.Complete() {
				flushes.Add(1)
			}
		},
	})
	_, ts := newTestServer(t, Config{
		SpoolDir:        t.TempDir(),
		CheckpointEvery: 2,
		FleetWorkers:    []string{wts.URL},
	})
	if status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":24,"n":16},"shards":2,"timeout_ms":60000}`); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if flushes.Load() == 0 {
		t.Fatal("worker never flushed mid-shard: the dispatched checkpoint stride was ignored")
	}
}

// TestFleetServeMembershipAndStats exercises runtime membership reload
// and the /stats fleet gauges: a coordinator born with no fleet derives
// locally, picks up a worker via SetFleetWorkers and dispatches to it,
// exports membership gauges and per-worker detail over /stats, and
// falls back to local derivation when the membership empties again.
func TestFleetServeMembershipAndStats(t *testing.T) {
	ws, wts := newTestServer(t, Config{WorkerDir: t.TempDir()})
	cs, ts := newTestServer(t, Config{SpoolDir: t.TempDir()})

	// Empty membership: sharded requests derive locally, no gauges.
	if status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":24,"n":16},"shards":2,"timeout_ms":60000}`); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if got := ws.Snapshot().WorkerShards; got != 0 {
		t.Fatalf("empty membership dispatched %d shards to the worker", got)
	}
	if st := cs.Snapshot(); st.FleetWorkersGauges != nil {
		t.Fatalf("empty membership exported fleet gauges: %+v", st.FleetWorkersGauges)
	}

	// The worker joins at runtime; the next sharded request reaches it.
	if added, removed := cs.SetFleetWorkers([]string{wts.URL}); added != 1 || removed != 0 {
		t.Fatalf("SetFleetWorkers = (%d added, %d removed), want (1, 0)", added, removed)
	}
	status, data := postCurve(t, ts.URL, `{"gemm":{"m":32,"k":16,"n":24},"shards":2,"timeout_ms":60000}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if want := gemmWant(t, 32, 16, 24); string(decodeEnvelope(t, data).Curve) != want {
		t.Fatal("fleet-served curve after membership reload differs from bound.Derive")
	}
	if got := ws.Snapshot().WorkerShards; got != 2 {
		t.Fatalf("worker completed %d shards after joining, want 2", got)
	}

	// /stats exports the membership gauges and per-worker detail.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if g := st.FleetWorkersGauges; g == nil || g.Total != 1 || g.Healthy != 1 {
		t.Fatalf("fleet_workers gauges = %+v, want 1 total, 1 healthy", st.FleetWorkersGauges)
	}
	if len(st.FleetWorkerDetail) != 1 || st.FleetWorkerDetail[0].URL != wts.URL {
		t.Fatalf("fleet_worker_detail = %+v, want exactly the joined worker", st.FleetWorkerDetail)
	}
	if d := st.FleetWorkerDetail[0]; d.Dispatches < 2 || d.Completions < 2 ||
		d.Breaker != "closed" || d.ShardsPerSec <= 0 {
		t.Fatalf("worker detail %+v, want >= 2 dispatches and completions, a closed breaker, and positive throughput", d)
	}

	// The membership empties again: requests degrade to local derivation.
	if added, removed := cs.SetFleetWorkers(nil); added != 0 || removed != 1 {
		t.Fatalf("SetFleetWorkers(nil) = (%d added, %d removed), want (0, 1)", added, removed)
	}
	before := ws.Snapshot().WorkerShards
	if status, data := postCurve(t, ts.URL, `{"gemm":{"m":16,"k":24,"n":32},"shards":2,"timeout_ms":60000}`); status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	if got := ws.Snapshot().WorkerShards; got != before {
		t.Fatalf("emptied membership still dispatched shards: %d -> %d", before, got)
	}
}
