package serve

import (
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/store"
)

// counters is the server's lock-free operational telemetry.
type counters struct {
	requests    atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	derivations atomic.Int64
	panics      atomic.Int64
	saturated   atomic.Int64
	deadlines   atomic.Int64
	evaluated   atomic.Int64
	deriveNanos atomic.Int64

	// Durable curve store tier (zero when -store-dir is unset).
	storeHits   atomic.Int64
	storeWrites atomic.Int64

	// Worker side of the fleet protocol (POST /v1/shard).
	workerRequests atomic.Int64
	workerShards   atomic.Int64

	// Coordinator side: totals from fleet.Report after each fleet run.
	fleetDispatches   atomic.Int64
	fleetRetries      atomic.Int64
	fleetSpeculations atomic.Int64
	fleetQuarantines  atomic.Int64
	fleetDeferrals    atomic.Int64
}

// Stats is the GET /stats response: a point-in-time snapshot of the
// server's health and throughput. Counters are cumulative since process
// start; rates are derived from them at snapshot time.
type Stats struct {
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Draining reports whether admissions are closed for shutdown.
	Draining bool `json:"draining"`

	// Requests counts every request to /v1/curve.
	Requests int64 `json:"requests"`
	// CacheHits and CacheMisses split curve requests by cache outcome;
	// CacheHitRate is hits over their sum (0 when no lookups yet).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheEntries of CacheCapacity results currently live in the LRU.
	CacheEntries  int `json:"cache_entries"`
	CacheCapacity int `json:"cache_capacity"`

	// InFlight derivations hold slots now; QueueDepth flights wait for
	// one.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`

	// Derivations counts completed (successful) derivations;
	// PanicsRecovered, Saturated and DeadlineExpired count the failure
	// modes the server absorbed (worker panic contained to a 500, load
	// shed with 429, request deadline expired with 504).
	Derivations     int64 `json:"derivations"`
	PanicsRecovered int64 `json:"panics_recovered"`
	Saturated       int64 `json:"saturated"`
	DeadlineExpired int64 `json:"deadline_expired"`

	// MappingsEvaluated is the cumulative mapping count across all
	// successful derivations; DeriveSeconds the wall time they took; and
	// MappingsPerSec their ratio — the server-wide traversal throughput.
	MappingsEvaluated int64   `json:"mappings_evaluated"`
	DeriveSeconds     float64 `json:"derive_seconds"`
	MappingsPerSec    float64 `json:"mappings_per_sec"`

	// WorkerRequests counts every request to the fleet worker endpoint
	// POST /v1/shard; WorkerShards the shard slices this process derived
	// to completion for remote coordinators.
	WorkerRequests int64 `json:"worker_requests"`
	WorkerShards   int64 `json:"worker_shards"`

	// Coordinator-side fleet totals (zero unless the server dispatches
	// to -fleet workers): FleetDispatches counts shard dispatches
	// (including speculative duplicates), FleetRetries retry rounds after
	// failed dispatches, FleetSpeculations speculative duplicates
	// launched on stragglers, FleetQuarantines invalid responses (and
	// corrupt spool partials) set aside, FleetDeferrals polite
	// Retry-After deferrals honored without burning retry budget.
	FleetDispatches   int64 `json:"fleet_dispatches"`
	FleetRetries      int64 `json:"fleet_retries"`
	FleetSpeculations int64 `json:"fleet_speculations"`
	FleetQuarantines  int64 `json:"fleet_quarantines"`
	FleetDeferrals    int64 `json:"fleet_deferrals"`

	// FleetWorkersGauges is the fleet membership split by health and
	// breaker state, and FleetWorkerDetail the per-worker rows (probed
	// health, breaker, dispatches/failures/completions, EWMA shards/sec).
	// Both absent when the membership is empty.
	FleetWorkersGauges *fleet.Gauges        `json:"fleet_workers,omitempty"`
	FleetWorkerDetail  []fleet.WorkerStatus `json:"fleet_worker_detail,omitempty"`

	// StoreHits counts curve requests served from the durable on-disk
	// tier, and StoreWrites the derivations persisted to it. Store is the
	// store's own gauge block (counters, live entry/byte scan, cap).
	// All absent unless the server was started with -store-dir;
	// StoreDisabled is true when the configured store failed to open or
	// degraded at runtime (the server falls back to memory-only caching).
	StoreHits     int64        `json:"store_hits,omitempty"`
	StoreWrites   int64        `json:"store_writes,omitempty"`
	Store         *store.Stats `json:"store,omitempty"`
	StoreDisabled bool         `json:"store_disabled,omitempty"`
}

// Snapshot assembles the current Stats.
func (s *Server) Snapshot() Stats {
	hits, misses := s.stats.hits.Load(), s.stats.misses.Load()
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	nanos := s.stats.deriveNanos.Load()
	eval := s.stats.evaluated.Load()
	var mps float64
	if nanos > 0 {
		mps = float64(eval) / (time.Duration(nanos)).Seconds()
	}
	st := Stats{
		UptimeSeconds:     time.Since(s.started).Seconds(),
		Draining:          s.draining.Load(),
		Requests:          s.stats.requests.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheHitRate:      rate,
		CacheEntries:      s.mem.len(),
		CacheCapacity:     s.cfg.CacheEntries,
		InFlight:          s.adm.inFlight(),
		QueueDepth:        s.adm.queueDepth(),
		Derivations:       s.stats.derivations.Load(),
		PanicsRecovered:   s.stats.panics.Load(),
		Saturated:         s.stats.saturated.Load(),
		DeadlineExpired:   s.stats.deadlines.Load(),
		MappingsEvaluated: eval,
		DeriveSeconds:     (time.Duration(nanos)).Seconds(),
		MappingsPerSec:    mps,
		WorkerRequests:    s.stats.workerRequests.Load(),
		WorkerShards:      s.stats.workerShards.Load(),
		FleetDispatches:   s.stats.fleetDispatches.Load(),
		FleetRetries:      s.stats.fleetRetries.Load(),
		FleetSpeculations: s.stats.fleetSpeculations.Load(),
		FleetQuarantines:  s.stats.fleetQuarantines.Load(),
		FleetDeferrals:    s.stats.fleetDeferrals.Load(),
	}
	if g := s.fleetReg.Gauges(); g.Total > 0 {
		st.FleetWorkersGauges = &g
		st.FleetWorkerDetail = s.fleetReg.Snapshot()
	}
	if s.cfg.StoreDir != "" {
		st.StoreHits = s.stats.storeHits.Load()
		st.StoreWrites = s.stats.storeWrites.Load()
		if s.disk != nil {
			ss := s.disk.StatsSnapshot()
			st.Store = &ss
			st.StoreDisabled = ss.Disabled
		} else {
			st.StoreDisabled = true
		}
	}
	return st
}
