// Package serve is the long-running derivation service: orojenesisd's
// engine room. It wraps the repo's bound-derivation paths (two-level
// bound, three-level multilevel, tiled fusion) behind an HTTP API that
// stays predictable under the failure modes long-lived servers actually
// meet:
//
//   - Deadlines and disconnects. Every request runs under a context that
//     merges the client connection, a per-request timeout, and the server
//     lifetime; cancellation reaches the traversal engine at chunk
//     granularity, so an abandoned request stops burning CPU within one
//     chunk.
//   - Admission control. Concurrent derivations are bounded by a slot
//     semaphore with a bounded, time-budgeted wait queue; past both
//     bounds the server sheds load with 429 + Retry-After instead of
//     queueing without bound.
//   - Single-flight caching. Results are cached in a digest-keyed LRU,
//     and concurrent identical requests — keyed by the same canonical
//     workload/options encodings the sharded format uses — share one
//     derivation. A stampede of N requests costs one traversal.
//   - Panic containment. A panic anywhere in a derivation (traversal
//     workers already recover their own; the flight runner recovers the
//     rest) becomes a structured 500 with the stack in the server log.
//     The process never crashes on a request.
//   - Graceful drain. Drain stops admissions, lets in-flight work finish
//     within a deadline, then cancels the rest — and because sharded
//     derivations checkpoint partial frontiers in the spool directory,
//     a restarted server resumes them instead of starting over.
//
// The package is deliberately transport-thin: everything interesting is
// in how requests map onto the existing derivation engine, so the served
// curves are byte-identical to what bound.Derive and friends produce
// in-process.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/traverse"
)

// maxBodyBytes bounds request bodies; workload specs are tiny, so
// anything larger is abuse or a mistake.
const maxBodyBytes = 1 << 20

// Config tunes a Server. The zero value is usable: every field has a
// sensible default resolved by New.
type Config struct {
	// Workers is the traversal worker count per derivation; <= 0 means
	// GOMAXPROCS. Results are identical for every worker count.
	Workers int

	// MaxConcurrent bounds simultaneously running derivations; <= 0
	// means GOMAXPROCS.
	MaxConcurrent int

	// MaxQueue bounds flights waiting for a derivation slot; <= 0 means
	// 4 × MaxConcurrent.
	MaxQueue int

	// QueueWait is the longest a queued flight waits for a slot before
	// the server sheds it with 429; <= 0 means 10s.
	QueueWait time.Duration

	// DefaultTimeout applies to requests that set no timeout_ms;
	// MaxTimeout clamps requests that ask for more. Defaults: 60s, 10m.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// CacheEntries is the result LRU capacity; <= 0 means 128.
	CacheEntries int

	// SpoolDir, when set, enables sharded derivations (request field
	// "shards"): each runs supervised and checkpointed under
	// SpoolDir/<digest prefix>, so a killed server resumes rather than
	// restarts them. Empty disables sharded requests.
	SpoolDir string

	// StoreDir, when set, enables the durable curve tier
	// (internal/store, docs/curve-store.md): successful exact
	// derivations are persisted content-addressed by their digest, and a
	// cache miss checks the disk before deriving — so a restarted server
	// (or a CLI warmer sharing the directory) turns repeated workloads
	// into disk hits instead of re-derivations. Empty disables the tier.
	// A directory that cannot be opened, or that fails persistently at
	// runtime (ENOSPC after GC, permissions), degrades the server to
	// memory-only caching — logged once and visible as store_disabled in
	// /stats — instead of failing requests.
	StoreDir string

	// StoreMaxBytes caps the curve store's on-disk size; past it the
	// least recently used entries are garbage-collected. <= 0 means the
	// store default (1 GiB); small positive values are clamped up to the
	// store minimum.
	StoreMaxBytes int64

	// CheckpointEvery is the per-shard checkpoint stride for spooled
	// derivations (shard.RunOptions semantics; 0 means the shard
	// package default).
	CheckpointEvery int64

	// ShardRetries is the per-shard retry budget for spooled
	// derivations (supervise.Options.MaxRetries semantics).
	ShardRetries int

	// MaxShards bounds the per-request shard count; <= 0 means 64.
	MaxShards int

	// WorkerDir, when set, enables the fleet worker endpoint POST
	// /v1/shard (docs/fleet-protocol.md): dispatched shard slices run as
	// checkpointed shard jobs under WorkerDir/<digest prefix>, so a
	// retried dispatch resumes instead of restarting. Empty disables the
	// endpoint (404 worker_disabled).
	WorkerDir string

	// FleetWorkers, when non-empty, switches spooled sharded derivations
	// (request field "shards" > 1) from in-process supervision to fleet
	// dispatch: slices are POSTed to these worker base URLs
	// (internal/fleet) with retry, quarantine, and speculation owned by
	// the coordinator. Completed partials still land in the spool, so
	// drain/resume semantics are unchanged.
	FleetWorkers []string

	// FleetPerWorker caps concurrent shard dispatches per fleet worker
	// (<= 0 means the fleet default); FleetSpeculateAfter enables
	// speculative re-execution of straggler slices on idle workers after
	// that delay (0 disables speculation).
	FleetPerWorker      int
	FleetSpeculateAfter time.Duration

	// FleetProbeInterval is the period of the fleet registry's /readyz
	// health probes, running for the server's lifetime; 0 means 15s,
	// negative disables probing. Probe verdicts demote unhealthy workers
	// in allocation (docs/fleet-protocol.md "Health, membership &
	// breakers").
	FleetProbeInterval time.Duration

	// FleetBreakerFailures and FleetBreakerCooldown tune the per-worker
	// circuit breakers of the fleet registry: consecutive dispatch
	// failures to open, and how long an open breaker sheds load before
	// its half-open probe dispatch. Zero values take the fleet defaults.
	FleetBreakerFailures int
	FleetBreakerCooldown time.Duration

	// FleetClient overrides the coordinator's HTTP client (nil means a
	// default with sane timeouts) — also the fault-injection seam fleet
	// transport tests use.
	FleetClient *http.Client

	// Logf, when non-nil, receives operational log lines (recovered
	// panics with stacks, spool cleanup problems, shard retries).
	Logf func(format string, args ...any)

	// OnCheckpoint, when non-nil, observes every checkpoint flush of
	// every spooled sharded derivation — the hook drain tests and
	// progress monitors use.
	OnCheckpoint func(shard.Manifest)

	// deriveWrap, when non-nil, wraps every derivation function just
	// before it runs — the test seam for injecting slow, panicking, or
	// counting derivations without touching the engine.
	deriveWrap func(d *derivation, fn deriveFn) deriveFn

	// shardFS, when non-nil, is the filesystem handed to spooled shard
	// runs — the test seam for injecting persistent write faults so the
	// degraded (allow_partial) path is reachable in tests.
	shardFS shard.FS

	// storeFS, when non-nil, is the filesystem handed to the durable
	// curve store — the fault-injection seam of the store robustness
	// suite (torn writes, ENOSPC, rename failures).
	storeFS shard.FS
}

// Server is the derivation service. Construct with New, mount Handler on
// any http.Server, and stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	mem     *memCache
	adm     *admission
	stats   counters
	started time.Time

	// base is the server lifetime context: parent of every flight.
	base       context.Context
	cancelBase context.CancelFunc

	// draining closes admissions; flightMu serializes the
	// draining-check-then-Add against Drain's barrier so no flight
	// starts after the drain wait begins.
	draining atomic.Bool
	flightMu sync.Mutex
	wg       sync.WaitGroup

	// workerLocks serializes concurrent /v1/shard runs per checkpoint
	// path (see lockShardPath); workerMu guards the table.
	workerMu    sync.Mutex
	workerLocks map[string]*wlock

	// fleetReg is the server-lifetime fleet membership: worker health,
	// circuit breakers, Retry-After holds and throughput scores persist
	// across fleet runs, and SetFleetWorkers reconciles it at runtime. It
	// always exists — a server configured without fleet workers has an
	// empty membership and derives locally until one joins.
	fleetReg *fleet.Registry

	// disk is the durable curve tier: nil when StoreDir is empty or the
	// directory failed to open (/stats then reports store_disabled, and
	// the server serves memory-cached and freshly derived curves as if no
	// store were configured).
	disk *store.Store
}

// New constructs a Server from cfg, resolving defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 10 * time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 64
	}
	if cfg.FleetProbeInterval == 0 {
		cfg.FleetProbeInterval = 15 * time.Second
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		mem:        newMemCache(cfg.CacheEntries),
		adm:        newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
		started:    time.Now(),
		base:       base,
		cancelBase: cancel,
		fleetReg: fleet.NewRegistry(cfg.FleetWorkers, fleet.RegistryConfig{
			PerWorker: cfg.FleetPerWorker,
			Breaker: fleet.BreakerConfig{
				Failures: cfg.FleetBreakerFailures,
				Cooldown: cfg.FleetBreakerCooldown,
			},
			Logf: cfg.Logf,
		}),
	}
	if cfg.FleetProbeInterval > 0 {
		s.fleetReg.StartProbing(s.base, cfg.FleetProbeInterval, cfg.FleetClient)
	}
	if cfg.StoreDir != "" {
		disk, err := store.Open(store.Options{
			Dir:      cfg.StoreDir,
			MaxBytes: cfg.StoreMaxBytes,
			FS:       cfg.storeFS,
			Logf:     cfg.Logf,
		})
		if err != nil {
			// The tier is an optimization: a server whose store directory
			// is broken serves memory-cached and freshly derived curves
			// exactly as one configured without a store.
			s.logf("serve: curve store disabled (memory-only caching): %v", err)
		} else {
			s.disk = disk
		}
	}
	s.mux.HandleFunc("/v1/curve", s.handleCurve)
	s.mux.HandleFunc("/v1/shard", s.handleShard)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the server: admissions close immediately (new
// curve requests get 503 draining), in-flight derivations run to
// completion, and if ctx expires first the remainder are cancelled —
// spooled sharded derivations flush final checkpoints on the way out, so
// a successor process resumes them. Returns ctx.Err when the deadline
// cut the drain short, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Barrier: any handler that passed the draining check before the
	// store is inside flightMu; after this lock cycles, no new flight
	// can start.
	s.flightMu.Lock()
	s.flightMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelBase()
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// Close stops the server immediately: admissions close and every
// in-flight derivation is cancelled at chunk granularity.
func (s *Server) Close() {
	s.draining.Store(true)
	s.cancelBase()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// CurveResponse is the success body of POST /v1/curve.
type CurveResponse struct {
	// Workload is the human-readable workload label.
	Workload string `json:"workload"`
	// Kind is the derivation path (bound, multilevel, fusion-tiled).
	Kind string `json:"kind"`
	// Digest is the derivation's stable identity: identical requests —
	// across processes — share it.
	Digest string `json:"digest"`
	// Cached reports whether the curve came from the result cache.
	Cached bool `json:"cached"`
	// Shards echoes the sharded execution width (0 = in-process).
	Shards int `json:"shards,omitempty"`
	// Evaluated is the number of mappings the derivation evaluated (the
	// original derivation's count when Cached).
	Evaluated int64 `json:"evaluated"`
	// ElapsedMS is the derivation wall time (original time when Cached).
	ElapsedMS int64 `json:"elapsed_ms"`
	// Points is the number of frontier breakpoints in Curve.
	Points int `json:"points"`
	// Curve is the Pareto frontier in the pareto package's JSON schema.
	Curve *pareto.Curve `json:"curve"`
	// Segments are the per-segmentation curves of an in-process
	// segmentation study (absent for other kinds and for sharded runs,
	// which return only the merged best curve).
	Segments []SegmentResult `json:"segments,omitempty"`

	// Degraded marks a 206 envelope: an allow_partial request whose shard
	// fleet failed partway. The remaining fields quantify the coverage —
	// the same annotation shard.MergeDegraded (and the shardmerge CLI's
	// -allow-partial envelope) reports.
	Degraded         bool    `json:"degraded,omitempty"`
	Items            int64   `json:"items,omitempty"`
	CoveredIndices   int64   `json:"covered_indices,omitempty"`
	CoveredFraction  float64 `json:"covered_fraction,omitempty"`
	MissingShards    []int   `json:"missing_shards,omitempty"`
	IncompleteShards []int   `json:"incomplete_shards,omitempty"`
}

// ErrorInfo is the machine-readable error payload.
type ErrorInfo struct {
	// Code is one of: invalid_request, invalid_workload,
	// method_not_allowed, saturated, draining, deadline, panic,
	// internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		// Round UP to whole seconds: truncation would turn any sub-second
		// backoff into "Retry-After: 0" — an instruction to retry
		// immediately, amplifying the very stampede the 429 sheds.
		secs := int64(retryAfter / time.Second)
		if retryAfter%time.Second != 0 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorInfo{Code: code, Message: msg}})
}

// handleCurve is POST /v1/curve: parse and validate, consult the cache,
// join or lead the single flight, and wait under the request's own
// deadline.
func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining",
			"server is draining; retry against another replica", time.Second)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error(), 0)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "negative timeout_ms", 0)
		return
	}
	if req.Shards < 0 || req.Shards > s.cfg.MaxShards {
		writeError(w, http.StatusBadRequest, "invalid_request",
			fmt.Sprintf("shards %d outside [0, %d]", req.Shards, s.cfg.MaxShards), 0)
		return
	}
	if req.Shards > 1 && s.cfg.SpoolDir == "" {
		writeError(w, http.StatusBadRequest, "invalid_request",
			"sharded derivation disabled: server has no spool directory", 0)
		return
	}
	if req.AllowPartial && req.Shards <= 1 {
		writeError(w, http.StatusBadRequest, "invalid_request",
			"allow_partial applies to sharded derivations (shards > 1)", 0)
		return
	}
	d, err := buildDerivation(&req, s.cfg.Workers)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_workload", err.Error(), 0)
		return
	}
	if req.AllowPartial {
		// A flight that may publish a degraded result must never be
		// shared with (or cached for) a request that did not consent to
		// one, so partial-tolerant requests fly under their own key. The
		// digest — and with it the spool directory — is unchanged: both
		// populations resume the same checkpointed partials.
		d.key += "|allow_partial"
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	if !req.NoCache {
		if res, ok := s.mem.get(d.key); ok {
			s.stats.hits.Add(1)
			s.respond(w, d, &req, res, true)
			return
		}
	}
	s.stats.misses.Add(1)

	f, leader := s.mem.join(s.base, d.key)
	if leader {
		// Re-check draining under flightMu: Drain's barrier guarantees
		// that once it proceeds to wait, no new flight passes here.
		s.flightMu.Lock()
		if s.draining.Load() {
			s.flightMu.Unlock()
			f.cancel()
			s.mem.finish(f, result{}, context.Canceled)
			s.mem.leave(f)
			writeError(w, http.StatusServiceUnavailable, "draining",
				"server is draining; retry against another replica", time.Second)
			return
		}
		s.wg.Add(1)
		s.flightMu.Unlock()
		go s.runFlight(f, d, req.Shards, req.AllowPartial, req.NoCache)
	}

	select {
	case <-f.done:
		// finish has published res/err; waiters read them after done.
		if f.err != nil {
			s.mem.leave(f)
			s.writeDeriveError(w, f.err)
			return
		}
		s.mem.leave(f)
		s.respond(w, d, &req, f.res, false)
	case <-ctx.Done():
		s.mem.leave(f)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.stats.deadlines.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline",
				fmt.Sprintf("derivation exceeded the request deadline (%s)", timeout), 0)
		}
		// Client disconnect: nobody is listening; write nothing.
	}
}

// respond writes the success envelope: 200 for complete results, 206
// (partial content) for degraded merges, whose coverage annotation rides
// along so a client can never mistake a partial frontier for an exact one.
func (s *Server) respond(w http.ResponseWriter, d *derivation, req *Request, res result, cached bool) {
	resp := CurveResponse{
		Workload:  d.label,
		Kind:      string(d.kind),
		Digest:    d.digest,
		Cached:    cached || res.fromStore,
		Shards:    req.Shards,
		Evaluated: res.evaluated,
		ElapsedMS: res.elapsed.Milliseconds(),
		Points:    res.curve.Len(),
		Curve:     res.curve,
		Segments:  res.segments,
	}
	status := http.StatusOK
	if res.degraded != nil {
		status = http.StatusPartialContent
		resp.Degraded = true
		resp.Items = res.degraded.Items
		resp.CoveredIndices = res.degraded.CoveredIndices
		resp.CoveredFraction = res.degraded.CoveredFraction
		resp.MissingShards = res.degraded.MissingShards
		resp.IncompleteShards = res.degraded.IncompleteShards
	}
	writeJSON(w, status, resp)
}

// writeDeriveError maps a flight failure onto the error taxonomy.
func (s *Server) writeDeriveError(w http.ResponseWriter, err error) {
	var pe *traverse.PanicError
	switch {
	case errors.Is(err, errSaturated):
		s.stats.saturated.Add(1)
		writeError(w, http.StatusTooManyRequests, "saturated",
			"derivation capacity and queue are full; retry later", s.cfg.QueueWait)
	case errors.As(err, &pe):
		writeError(w, http.StatusInternalServerError, "panic",
			"derivation panicked; see server logs", 0)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The flight itself was cancelled — that only happens under
		// server shutdown (flights outlive request deadlines as long as
		// any waiter remains).
		writeError(w, http.StatusServiceUnavailable, "draining",
			"derivation cancelled by server shutdown; sharded progress was checkpointed", time.Second)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

// runFlight is the flight leader's goroutine: admission, disk-tier
// lookup, derivation, panic containment, and publication. It runs under
// the flight context — a child of the server lifetime, cancelled early
// only when every waiter has left or the server shuts down. The durable
// store is consulted inside the flight, so the single flight spans both
// cache tiers: a stampede of identical requests costs one disk read —
// or, past it, one derivation — never N.
func (s *Server) runFlight(f *flight, d *derivation, shards int, allowPartial, noCache bool) {
	defer s.wg.Done()
	defer f.cancel()
	start := time.Now()
	var res result
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = traverse.Recovered(r)
			}
		}()
		if !noCache {
			if out, ok := s.diskGet(d); ok {
				res = out
				return
			}
		}
		if err = s.adm.acquire(f.ctx); err != nil {
			return
		}
		defer s.adm.release()
		fn := d.run
		if shards > 1 {
			fn = s.spooledDerive(d, shards, allowPartial)
		}
		if s.cfg.deriveWrap != nil {
			fn = s.cfg.deriveWrap(d, fn)
		}
		if d.prepare != nil {
			if err = d.prepare(f.ctx); err != nil {
				return
			}
		}
		res.deriveOut, err = fn(f.ctx)
	}()
	if res.fromStore {
		// A disk hit replays the original derivation's cost figures; the
		// store.finish below republishes it to the memory LRU.
		s.mem.finish(f, res, nil)
		return
	}
	res.elapsed = time.Since(start)
	var pe *traverse.PanicError
	if errors.As(err, &pe) {
		s.stats.panics.Add(1)
		s.logf("serve: recovered panic in derivation %s (%.12s): %v\n%s",
			d.label, d.digest, pe.Value, pe.Stack)
	}
	if err == nil {
		if res.curve == nil {
			err = fmt.Errorf("serve: derivation %s returned no curve", d.label)
		} else {
			s.stats.derivations.Add(1)
			s.stats.evaluated.Add(res.evaluated)
			s.stats.deriveNanos.Add(int64(res.elapsed))
			s.diskPut(d, res)
		}
	}
	s.mem.finish(f, res, err)
}

// diskGet consults the durable curve tier for the derivation's digest.
// Misses (absent, disabled, quarantined-as-corrupt) return ok=false and
// the flight derives as usual. A hit republishes through the flight
// finish, so it also refreshes the memory LRU.
func (s *Server) diskGet(d *derivation) (result, bool) {
	if s.disk == nil {
		return result{}, false
	}
	ent, ok := s.disk.Get(d.digest)
	if !ok {
		return result{}, false
	}
	s.stats.storeHits.Add(1)
	return result{
		deriveOut: deriveOut{
			curve:     ent.Curve,
			evaluated: ent.Evaluated,
			segments:  ent.Segments,
		},
		elapsed:   time.Duration(ent.ElapsedMS) * time.Millisecond,
		fromStore: true,
	}, true
}

// diskPut persists a successful exact derivation to the durable tier.
// Degraded results never reach here (they fail the res.degraded==nil
// publication path and are never cached in any tier); write failures
// are the store's problem — it degrades itself — and never the
// request's.
func (s *Server) diskPut(d *derivation, res result) {
	if s.disk == nil || res.degraded != nil || res.curve.Degraded {
		return
	}
	err := s.disk.Put(d.digest, &store.Entry{
		Kind:      d.kind,
		Workload:  d.label,
		Evaluated: res.evaluated,
		ElapsedMS: res.elapsed.Milliseconds(),
		Curve:     res.curve,
		Segments:  res.segments,
	})
	switch {
	case err == nil:
		s.stats.storeWrites.Add(1)
	case errors.Is(err, store.ErrDisabled):
		// Already logged once by the store itself.
	default:
		s.logf("serve: persisting %s (%.12s) to curve store: %v", d.label, d.digest, err)
	}
}

// spooledDerive runs the derivation as a supervised, checkpointed shard
// fleet in the spool directory. The subdirectory is the derivation
// digest, so an interrupted run's partial frontiers are found — and
// resumed, not recomputed — by any later server process given the same
// spool. On exact success the subdirectory is removed; on cancellation
// AND on a degraded (allow_partial) merge it is kept as the resume point,
// so a later identical request completes the missing slices instead of
// starting over.
func (s *Server) spooledDerive(d *derivation, shards int, allowPartial bool) deriveFn {
	return func(ctx context.Context) (deriveOut, error) {
		var out deriveOut
		dir := filepath.Join(s.cfg.SpoolDir, fmt.Sprintf("%.16s", d.digest))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return out, err
		}
		// Make the spool self-describing before any shard runs: with
		// spec.json in place, a server that dies mid-derivation leaves an
		// orphan that ResumeOrphans can finish without ever seeing the
		// original request. Failure to write it is logged, not fatal — the
		// derivation itself does not depend on it.
		if err := writeSpoolSpec(dir, d, shards); err != nil {
			s.logf("serve: writing %s in spool %s: %v", spoolSpecFile, dir, err)
		}
		// Membership is consulted per request, not per process: a fleet
		// whose last worker was removed at runtime degrades to local
		// supervised derivation, and one that gained its first worker
		// starts dispatching.
		if s.fleetReg.Len() > 0 {
			return s.fleetDerive(ctx, d, dir, shards, allowPartial)
		}
		report, err := supervise.Run(ctx, shards, d.mkJob, supervise.Options{
			Dir:             dir,
			CheckpointEvery: s.cfg.CheckpointEvery,
			MaxRetries:      s.cfg.ShardRetries,
			AllowPartial:    allowPartial,
			FS:              s.cfg.shardFS,
			Logf:            s.cfg.Logf,
			OnCheckpoint:    s.cfg.OnCheckpoint,
		})
		if report != nil {
			for _, st := range report.Shards {
				out.evaluated += st.Evaluated
			}
		}
		if err != nil {
			return out, err
		}
		if report.Degraded != nil && !report.Degraded.Complete() {
			out.curve = report.Degraded.Curve
			out.degraded = report.Degraded
			return out, nil
		}
		out.curve = report.Curve
		if report.Degraded != nil {
			// AllowPartial was requested but every index was covered
			// anyway: the merge is exact, so serve it as one.
			out.curve = report.Degraded.Curve
		}
		if rmErr := os.RemoveAll(dir); rmErr != nil {
			s.logf("serve: cleaning spool %s: %v", dir, rmErr)
		}
		return out, nil
	}
}

// SetFleetWorkers reconciles the fleet membership at runtime — the
// flag-file reload path: workers missing from urls join with fresh
// state, members absent from urls leave (in-flight dispatches to them
// finish; they just get no new ones), and workers present in both keep
// their health, breaker, and throughput history. Shards blocked waiting
// for fleet capacity observe joins immediately. Returns how many
// workers joined and left.
func (s *Server) SetFleetWorkers(urls []string) (added, removed int) {
	return s.fleetReg.SetWorkers(urls)
}

// HealthDetail is the body of /healthz and /readyz: the status plus the
// worker-health detail a fleet coordinator (or operator) reads when the
// plain status code is not enough.
type HealthDetail struct {
	// Status is "ok"/"ready" or "draining".
	Status string `json:"status"`
	// Draining reports admissions closed for shutdown.
	Draining bool `json:"draining,omitempty"`
	// InFlight derivations hold slots now; QueueDepth flights wait.
	InFlight   int `json:"in_flight"`
	QueueDepth int `json:"queue_depth"`
	// WorkerEnabled reports whether this process serves POST /v1/shard
	// for fleet coordinators.
	WorkerEnabled bool `json:"worker_enabled"`
}

// healthDetail assembles the shared health body.
func (s *Server) healthDetail(status string) HealthDetail {
	return HealthDetail{
		Status:        status,
		Draining:      s.draining.Load(),
		InFlight:      s.adm.inFlight(),
		QueueDepth:    s.adm.queueDepth(),
		WorkerEnabled: s.cfg.WorkerDir != "",
	}
}

// handleHealthz is liveness: 200 as long as the process serves HTTP.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.healthDetail("ok"))
}

// handleReadyz is readiness: 200 while accepting work, 503 once
// draining — load balancers stop routing before the listener closes,
// and fleet registries probing this endpoint demote the worker.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, s.healthDetail("draining"))
		return
	}
	writeJSON(w, http.StatusOK, s.healthDetail("ready"))
}

// handleStats is GET /stats: the Stats snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
