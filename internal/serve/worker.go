package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/shard"
	"repro/internal/supervise"
	"repro/internal/traverse"
	"repro/internal/workload"
)

// ShardRequest is the body of POST /v1/shard: the fleet wire contract,
// defined once in internal/fleet and aliased here so the worker endpoint
// and its clients share one schema (docs/fleet-protocol.md).
type ShardRequest = fleet.ShardRequest

// wlock is one per-checkpoint-path mutex slot with a reference count, so
// the table can shed entries when the last holder leaves.
type wlock struct {
	mu   sync.Mutex
	refs int
}

// lockShardPath serializes worker shard runs on one checkpoint path: a
// retry of a shard the coordinator gave up on may arrive while the first
// attempt is still deriving, and two shard.Run calls on one path would
// interleave checkpoint flushes (each valid, but the slower writer can
// roll the high-water mark backwards). The second caller blocks, then
// resumes from whatever the first flushed. Returns the unlock func.
func (s *Server) lockShardPath(path string) func() {
	s.workerMu.Lock()
	if s.workerLocks == nil {
		s.workerLocks = make(map[string]*wlock)
	}
	e := s.workerLocks[path]
	if e == nil {
		e = &wlock{}
		s.workerLocks[path] = e
	}
	e.refs++
	s.workerMu.Unlock()
	e.mu.Lock()
	return func() {
		e.mu.Unlock()
		s.workerMu.Lock()
		e.refs--
		if e.refs == 0 {
			delete(s.workerLocks, path)
		}
		s.workerMu.Unlock()
	}
}

// handleShard is POST /v1/shard: the worker half of the derivation
// fleet. It compiles the embedded spec for the requested plan slot, runs
// the slice as a checkpointed shard.Run under the worker spool (so a
// retried request resumes rather than restarts), and streams back the
// partial-frontier file bytes. The coordinator validates digests and
// completeness on its side; the worker's job is only to be correct,
// resumable, and honest about failure.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	s.stats.workerRequests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.cfg.WorkerDir == "" {
		writeError(w, http.StatusNotFound, "worker_disabled",
			"this server does not execute fleet shards (start it with a worker directory)", 0)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining",
			"worker is draining; dispatch the shard to another worker", time.Second)
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req ShardRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error(), 0)
		return
	}
	if req.MaxFormatVersion != 0 && req.MaxFormatVersion < shard.FormatVersion {
		writeError(w, http.StatusBadRequest, "unsupported_version",
			fmt.Sprintf("coordinator reads partial formats up to %d; this worker writes format %d",
				req.MaxFormatVersion, shard.FormatVersion), 0)
		return
	}
	plan := shard.Plan{Index: req.ShardIndex, Count: req.ShardCount}
	if err := plan.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", err.Error(), 0)
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "invalid_request", "missing workload spec", 0)
		return
	}
	// Reject unknown derivation kinds with a structured 400 before any
	// engine code runs: a coordinator from a newer schema must get a
	// client error naming the registered kinds, never a 500 out of the
	// panic-containment path. Pinned by TestWorkerUnknownKindIs400.
	var probe struct {
		Kind shard.Kind `json:"kind"`
	}
	if err := json.Unmarshal(req.Spec, &probe); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_request", fmt.Sprintf("spec is not a JSON object: %v", err), 0)
		return
	}
	if _, err := workload.Lookup(probe.Kind); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_workload", err.Error(), 0)
		return
	}
	spec, err := workload.Decode(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_workload", err.Error(), 0)
		return
	}
	job, err := spec.Compile(plan, workload.Exec{Workers: s.cfg.Workers})
	if err != nil {
		// Includes workload.ErrUnmaterialized: the wire contract requires
		// materialized specs, so an unmaterialized one is a client error.
		writeError(w, http.StatusBadRequest, "invalid_workload", err.Error(), 0)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// Server shutdown must reach a running shard too: Close (and a drain
	// deadline) cancel the base context, which cancels this run at
	// traversal-chunk granularity with a final checkpoint flushed.
	stopBase := context.AfterFunc(s.base, cancel)
	defer stopBase()

	// Register with the drain barrier exactly like a curve flight: once
	// Drain's lock cycles, no new shard run can start, and Drain waits
	// for the ones already running.
	s.flightMu.Lock()
	if s.draining.Load() {
		s.flightMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining",
			"worker is draining; dispatch the shard to another worker", time.Second)
		return
	}
	s.wg.Add(1)
	s.flightMu.Unlock()
	defer s.wg.Done()

	if err := s.adm.acquire(ctx); err != nil {
		s.writeShardError(w, ctx, timeout, err)
		return
	}
	defer s.adm.release()

	stride := s.cfg.CheckpointEvery
	if req.CheckpointEvery > 0 {
		stride = req.CheckpointEvery
	}
	data, err := s.runWorkerShard(ctx, job, plan, stride)
	if err != nil {
		s.writeShardError(w, ctx, timeout, err)
		return
	}
	s.stats.workerShards.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// writeShardError maps a worker shard failure onto the error taxonomy.
func (s *Server) writeShardError(w http.ResponseWriter, ctx context.Context, timeout time.Duration, err error) {
	var pe *traverse.PanicError
	switch {
	case errors.Is(err, errSaturated):
		s.stats.saturated.Add(1)
		writeError(w, http.StatusTooManyRequests, "saturated",
			"worker shard capacity and queue are full; dispatch elsewhere or retry later", s.cfg.QueueWait)
	case errors.As(err, &pe):
		writeError(w, http.StatusInternalServerError, "panic",
			"shard derivation panicked; see worker logs", 0)
	case s.base.Err() != nil:
		writeError(w, http.StatusServiceUnavailable, "draining",
			"worker shut down mid-shard; progress is checkpointed on this worker", time.Second)
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.stats.deadlines.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline",
			fmt.Sprintf("shard derivation exceeded the request deadline (%s); progress is checkpointed on this worker", timeout), 0)
	case ctx.Err() != nil:
		// Coordinator hung up: nobody is listening; write nothing. The
		// checkpoint survives for the retry.
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

// workerShardPath places one shard's worker-side checkpoint file: the
// supervise layout under a derivation-digest subdirectory of the worker
// spool, so retried dispatches of the same shard resume the same file
// and distinct derivations never collide.
func (s *Server) workerShardPath(job *shard.Job, plan shard.Plan) string {
	digest := shard.Digest(string(job.Kind) + "|" + job.WorkloadDigest + "|" + job.OptionsDigest)
	dir := filepath.Join(s.cfg.WorkerDir, fmt.Sprintf("%.16s", digest))
	return supervise.ShardPath(dir, plan.Index, plan.Count)
}

// runWorkerShard executes one dispatched shard to completion under the
// worker spool and returns the partial-frontier file bytes. Runs on the
// same path are serialized (lockShardPath); a corrupt or foreign
// checkpoint left by an earlier life of this worker is quarantined aside
// once and the slice re-derived, matching the supervisor's policy. On
// success the checkpoint is removed — the coordinator owns the durable
// copy from here on; a response the coordinator never received is simply
// re-dispatched and re-derived.
func (s *Server) runWorkerShard(ctx context.Context, job shard.Job, plan shard.Plan, stride int64) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec := traverse.Recovered(r)
			var pe *traverse.PanicError
			if errors.As(rec, &pe) {
				s.stats.panics.Add(1)
				s.logf("serve: recovered panic in worker shard %s of %s: %v\n%s", plan, job.Workload, pe.Value, pe.Stack)
			}
			data, err = nil, rec
		}
	}()
	path := s.workerShardPath(&job, plan)
	unlock := s.lockShardPath(path)
	defer unlock()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	start := time.Now()
	run := func() (shard.RunStats, error) {
		_, rs, err := shard.Run(ctx, job, shard.RunOptions{
			Path:            path,
			CheckpointEvery: stride,
			OnCheckpoint:    s.cfg.OnCheckpoint,
			FS:              s.cfg.shardFS,
		})
		return rs, err
	}
	rs, rerr := run()
	if errors.Is(rerr, shard.ErrCorruptPartial) || errors.Is(rerr, shard.ErrForeignPartial) {
		qpath := path + ".corrupt"
		if qerr := os.Rename(path, qpath); qerr != nil {
			return nil, fmt.Errorf("serve: cannot quarantine corrupt worker checkpoint: %w (cause: %v)", qerr, rerr)
		}
		s.logf("serve: worker shard %s: quarantined corrupt checkpoint to %s, re-deriving", plan, qpath)
		rs, rerr = run()
	}
	if rerr != nil {
		return nil, rerr
	}
	s.stats.evaluated.Add(rs.Evaluated)
	s.stats.deriveNanos.Add(int64(time.Since(start)))
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if rmErr := os.Remove(path); rmErr != nil {
		s.logf("serve: cleaning worker checkpoint %s: %v", path, rmErr)
	} else {
		// Best-effort: the digest directory goes away with its last shard;
		// while sibling shards still checkpoint in it, the remove fails
		// (non-empty) and the directory stays — exactly what we want.
		_ = os.Remove(filepath.Dir(path))
	}
	return data, nil
}
