package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/shard"
)

// TestResumeOrphansCompletesSpooledDerivation: a server killed mid-way
// through a sharded derivation leaves a spool subdirectory whose
// spec.json fully describes the work; a fresh server — which never sees
// the original request — resumes and completes it from that file alone
// via ResumeOrphans, caches the result, and cleans the spool. The first
// client request after recovery is a cache hit with the byte-identical
// curve.
func TestResumeOrphansCompletesSpooledDerivation(t *testing.T) {
	spool := t.TempDir()
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	full := bound.Derive(e, bound.Options{Workers: 2})
	want, err := json.Marshal(full.Curve)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"gemm":{"m":32,"k":24,"n":16},"shards":2,"timeout_ms":60000}`

	// Server 1: kill after two checkpoint flushes, leaving an orphaned
	// spool with committed partial progress.
	var flushes atomic.Int64
	var killOnce sync.Once
	var s1 *Server
	cfg1 := Config{
		Workers:         2,
		SpoolDir:        spool,
		CheckpointEvery: 3,
		OnCheckpoint: func(m shard.Manifest) {
			if flushes.Add(1) >= 2 {
				killOnce.Do(func() { s1.Close() })
			}
		},
	}
	srv1, ts1 := newTestServer(t, cfg1)
	s1 = srv1
	if status, data := postCurve(t, ts1.URL, body); status != http.StatusServiceUnavailable {
		t.Fatalf("killed derivation: status %d, want 503: %s", status, data)
	}

	// The orphan is self-describing: spec.json sits beside the partials.
	specs, err := filepath.Glob(filepath.Join(spool, "*", spoolSpecFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("%d spool spec.json files after kill, want 1", len(specs))
	}
	orphanDir := filepath.Dir(specs[0])
	env, err := readSpoolSpec(orphanDir)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != string(shard.KindBound) || env.Shards != 2 {
		t.Fatalf("spec.json records kind=%q shards=%d, want bound/2", env.Kind, env.Shards)
	}

	// Distractors ResumeOrphans must skip and keep: a legacy spool with
	// no spec.json, and one whose spec.json is corrupt.
	legacy := filepath.Join(spool, "00legacy00000000")
	if err := os.MkdirAll(legacy, 0o755); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(spool, "00corrupt0000000")
	if err := os.MkdirAll(corrupt, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(corrupt, spoolSpecFile), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Server 2 never receives the request; ResumeOrphans alone completes
	// the derivation. Count resumed shard work through the derive seam.
	var resumedEvaluated atomic.Int64
	cfg2 := Config{
		Workers:         2,
		SpoolDir:        spool,
		CheckpointEvery: 3,
		deriveWrap: func(d *derivation, fn deriveFn) deriveFn {
			return func(ctx context.Context) (deriveOut, error) {
				out, err := fn(ctx)
				resumedEvaluated.Add(out.evaluated)
				return out, err
			}
		},
	}
	srv2, ts2 := newTestServer(t, cfg2)
	n, err := srv2.ResumeOrphans(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resumed %d orphans, want 1", n)
	}
	// Resumed, not restarted: strictly fewer mappings than from scratch.
	if got := resumedEvaluated.Load(); got <= 0 || got >= full.Stats.MappingsEvaluated {
		t.Fatalf("resume evaluated %d mappings, full derivation evaluates %d; want 0 < evaluated < full",
			got, full.Stats.MappingsEvaluated)
	}
	// The completed spool is cleaned; the distractors survive untouched.
	if _, err := os.Stat(orphanDir); !os.IsNotExist(err) {
		t.Fatalf("completed orphan spool %s not cleaned (err=%v)", orphanDir, err)
	}
	for _, dir := range []string{legacy, corrupt} {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("ResumeOrphans touched unresumable spool %s: %v", dir, err)
		}
	}
	// A second scan finds nothing resumable.
	if n, err := srv2.ResumeOrphans(context.Background()); err != nil || n != 0 {
		t.Fatalf("second scan resumed %d (err=%v), want 0", n, err)
	}

	// The recovered result is served from cache, byte-identical.
	status, data := postCurve(t, ts2.URL, body)
	if status != http.StatusOK {
		t.Fatalf("post-recovery request: status %d: %s", status, data)
	}
	got := decodeEnvelope(t, data)
	if !got.Cached {
		t.Fatal("post-recovery request missed the cache; ResumeOrphans did not publish its result")
	}
	if string(got.Curve) != string(want) {
		t.Fatalf("recovered curve differs from bound.Derive\n got %s\nwant %s", got.Curve, want)
	}
}

// TestResumeOrphansSegmentation: the materialized segmentation Spec —
// per-op curves included — round-trips through the spool's spec.json, so
// even the kind whose shard jobs need derived inputs is resumable by a
// process that never derived them.
func TestResumeOrphansSegmentation(t *testing.T) {
	spool := t.TempDir()
	c := segTestChain(t, segEinsums)
	perOp := c.PerOpCurves(bound.Options{Workers: 2})
	best, _, err := fusion.BestSegmentationStats(c, perOp, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(best)
	if err != nil {
		t.Fatal(err)
	}

	// Kill server 1 after the first checkpoint flush of the sharded
	// segmentation study.
	var killOnce sync.Once
	var s1 *Server
	cfg1 := Config{
		Workers:         2,
		SpoolDir:        spool,
		CheckpointEvery: 1,
		OnCheckpoint: func(m shard.Manifest) {
			killOnce.Do(func() { s1.Close() })
		},
	}
	srv1, ts1 := newTestServer(t, cfg1)
	s1 = srv1
	body := `{"segmentation":{"einsums":["` + segEinsums[0] + `","` + segEinsums[1] + `","` + segEinsums[2] + `"]},"shards":2,"timeout_ms":60000}`
	if status, data := postCurve(t, ts1.URL, body); status != http.StatusServiceUnavailable {
		t.Fatalf("killed segmentation: status %d, want 503: %s", status, data)
	}

	// The spooled spec.json carries the materialized per-op curves.
	specs, err := filepath.Glob(filepath.Join(spool, "*", spoolSpecFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 {
		t.Fatalf("%d spool spec.json files after kill, want 1", len(specs))
	}
	env, err := readSpoolSpec(filepath.Dir(specs[0]))
	if err != nil {
		t.Fatal(err)
	}
	var embedded struct {
		PerOp []json.RawMessage `json:"per_op"`
	}
	if err := json.Unmarshal(env.Spec, &embedded); err != nil {
		t.Fatal(err)
	}
	if len(embedded.PerOp) != len(perOp) {
		t.Fatalf("spec.json embeds %d per-op curves, want %d", len(embedded.PerOp), len(perOp))
	}

	srv2, ts2 := newTestServer(t, Config{Workers: 2, SpoolDir: spool, CheckpointEvery: 1})
	if n, err := srv2.ResumeOrphans(context.Background()); err != nil || n != 1 {
		t.Fatalf("resumed %d orphans (err=%v), want 1", n, err)
	}
	status, data := postCurve(t, ts2.URL, body)
	if status != http.StatusOK {
		t.Fatalf("post-recovery request: status %d: %s", status, data)
	}
	got := decodeEnvelope(t, data)
	if !got.Cached {
		t.Fatal("post-recovery segmentation request missed the cache")
	}
	if string(got.Curve) != string(want) {
		t.Fatalf("recovered segmentation curve differs\n got %s\nwant %s", got.Curve, want)
	}
}
