package serve

import (
	"context"
	"os"

	"repro/internal/fleet"
	"repro/internal/workload"
)

// fleetDerive runs a spooled sharded derivation by dispatching its
// slices to the fleet membership (the server-lifetime registry seeded
// from Config.FleetWorkers and reconciled by SetFleetWorkers) instead
// of deriving them in-process — the coordinator half of
// docs/fleet-protocol.md. Because the registry outlives each run,
// worker health, breaker state, and throughput scores learned on one
// request carry into the next. The spool contract is identical to the
// supervised path: completed partials land in the same layout under the
// same digest-named directory, so ResumeOrphans, drain and kill-resume
// semantics carry over unchanged, and the merged curve is byte-identical
// to a single-process derivation.
func (s *Server) fleetDerive(ctx context.Context, d *derivation, dir string, shards int, allowPartial bool) (deriveOut, error) {
	var out deriveOut
	report, err := fleet.Run(ctx, d.mspec, shards, fleet.Options{
		Registry:        s.fleetReg,
		Dir:             dir,
		MaxRetries:      s.cfg.ShardRetries,
		SpeculateAfter:  s.cfg.FleetSpeculateAfter,
		CheckpointEvery: s.cfg.CheckpointEvery,
		AllowPartial:    allowPartial,
		Exec:            workload.Exec{Workers: s.cfg.Workers},
		Client:          s.cfg.FleetClient,
		Logf:            s.cfg.Logf,
	})
	if report != nil {
		s.stats.fleetDispatches.Add(report.Dispatches)
		s.stats.fleetRetries.Add(report.Retries)
		s.stats.fleetSpeculations.Add(report.Speculations)
		s.stats.fleetQuarantines.Add(report.Quarantines)
		s.stats.fleetDeferrals.Add(report.Deferrals)
		for _, st := range report.Shards {
			if st.Completed && !st.Resumed {
				// The coordinator observes index coverage, not worker-side
				// evaluation counts; resumed shards cost this run nothing.
				out.evaluated += st.Covered
			}
		}
	}
	if err != nil {
		return out, err
	}
	if report.Degraded != nil && !report.Degraded.Complete() {
		out.curve = report.Degraded.Curve
		out.degraded = report.Degraded
		return out, nil
	}
	out.curve = report.Curve
	if report.Degraded != nil {
		// AllowPartial was requested but every index was covered anyway:
		// the merge is exact, so serve it as one.
		out.curve = report.Degraded.Curve
	}
	if rmErr := os.RemoveAll(dir); rmErr != nil {
		s.logf("serve: cleaning spool %s: %v", dir, rmErr)
	}
	return out, nil
}
