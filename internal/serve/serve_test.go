package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/multilevel"
)

// newTestServer builds a Server plus an httptest frontend, both torn
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// curveEnvelope decodes the response, keeping the curve as raw bytes for
// byte-identity checks.
type curveEnvelope struct {
	Workload  string          `json:"workload"`
	Kind      string          `json:"kind"`
	Digest    string          `json:"digest"`
	Cached    bool            `json:"cached"`
	Shards    int             `json:"shards"`
	Evaluated int64           `json:"evaluated"`
	Points    int             `json:"points"`
	Curve     json.RawMessage `json:"curve"`
}

// postCurve sends a request body and returns status plus raw response.
func postCurve(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/curve", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeEnvelope(t *testing.T, data []byte) curveEnvelope {
	t.Helper()
	var env curveEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("decoding response %s: %v", data, err)
	}
	return env
}

func decodeError(t *testing.T, data []byte) ErrorInfo {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("decoding error response %s: %v", data, err)
	}
	return er.Error
}

// TestServedCurveMatchesDerive is the acceptance core: the served GEMM
// curve — uncached and cached — is byte-identical to bound.Derive.
func TestServedCurveMatchesDerive(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	e := einsum.GEMM("gemm_32x24x16", 32, 24, 16)
	want, err := json.Marshal(bound.Derive(e, bound.Options{Workers: 2}).Curve)
	if err != nil {
		t.Fatal(err)
	}

	body := `{"gemm":{"m":32,"k":24,"n":16}}`
	status, data := postCurve(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if env.Cached {
		t.Fatal("first request reported cached")
	}
	if env.Kind != "bound" {
		t.Fatalf("kind %q, want bound", env.Kind)
	}
	if string(env.Curve) != string(want) {
		t.Fatalf("served curve differs from bound.Derive\n got %s\nwant %s", env.Curve, want)
	}

	status, data = postCurve(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("cached status %d: %s", status, data)
	}
	env2 := decodeEnvelope(t, data)
	if !env2.Cached {
		t.Fatal("second identical request was not served from cache")
	}
	if string(env2.Curve) != string(want) {
		t.Fatalf("cached curve differs from bound.Derive")
	}
	if env2.Digest != env.Digest {
		t.Fatalf("digest changed between identical requests: %s vs %s", env.Digest, env2.Digest)
	}
}

// TestServedMultiLevelAndChain pins the other two derivation kinds to
// their in-process engines.
func TestServedMultiLevelAndChain(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	e := einsum.GEMM("gemm_24x16x12", 24, 16, 12)
	ml, err := multilevel.Derive(e, 1<<10, multilevel.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantML, _ := json.Marshal(ml.DRAM)
	status, data := postCurve(t, ts.URL,
		`{"gemm":{"m":24,"k":16,"n":12},"multilevel":{"l1_cap_bytes":1024}}`)
	if status != http.StatusOK {
		t.Fatalf("multilevel status %d: %s", status, data)
	}
	env := decodeEnvelope(t, data)
	if env.Kind != "multilevel" {
		t.Fatalf("kind %q, want multilevel", env.Kind)
	}
	if string(env.Curve) != string(wantML) {
		t.Fatalf("served multilevel curve differs from multilevel.Derive")
	}

	g1 := `B[m,n] = A[m,k] * W[k,n] {M=64,K=16,N=12}`
	g2 := `C[m,n] = B[m,k] * V[k,n] {M=64,K=12,N=8}`
	e1 := einsum.MustParse(g1)
	e2 := einsum.MustParse(g2)
	c, err := fusion.FromEinsums("chain", e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := fusion.TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	wantChain, _ := json.Marshal(cv)
	status, data = postCurve(t, ts.URL, fmt.Sprintf(
		`{"chain":{"einsums":[%q,%q]}}`, g1, g2))
	if status != http.StatusOK {
		t.Fatalf("chain status %d: %s", status, data)
	}
	env = decodeEnvelope(t, data)
	if env.Kind != "fusion-tiled" {
		t.Fatalf("kind %q, want fusion-tiled", env.Kind)
	}
	if string(env.Curve) != string(wantChain) {
		t.Fatalf("served chain curve differs from fusion.TiledFusion")
	}
}

// TestCacheStampede is the single-flight acceptance test: 100 concurrent
// identical requests cost exactly one derivation.
func TestCacheStampede(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	cfg := Config{
		deriveWrap: func(d *derivation, fn deriveFn) deriveFn {
			return func(ctx context.Context) (deriveOut, error) {
				calls.Add(1)
				select {
				case <-gate:
				case <-ctx.Done():
					return deriveOut{}, ctx.Err()
				}
				return fn(ctx)
			}
		},
	}
	s, ts := newTestServer(t, cfg)

	const n = 100
	body := `{"gemm":{"m":16,"k":12,"n":8}}`
	statuses := make([]int, n)
	cached := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, data := postCurve(t, ts.URL, body)
			statuses[i] = status
			if status == http.StatusOK {
				cached[i] = decodeEnvelope(t, data).Cached
			}
		}(i)
	}

	// Wait until every request has attached to the one flight, then
	// release the derivation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mem.mu.Lock()
		var waiters, flights int
		for _, f := range s.mem.flights {
			flights++
			waiters = f.waiters
		}
		s.mem.mu.Unlock()
		if flights == 1 && waiters == n {
			break
		}
		if flights > 1 {
			t.Fatalf("%d concurrent flights for one workload", flights)
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never converged on one flight (flights=%d waiters=%d)", flights, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i, status := range statuses {
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
		if cached[i] {
			t.Fatalf("request %d reported cached while attached to the live flight", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d derivations for %d identical concurrent requests, want 1", got, n)
	}

	// A late request is a plain cache hit.
	status, data := postCurve(t, ts.URL, body)
	if status != http.StatusOK || !decodeEnvelope(t, data).Cached {
		t.Fatalf("late request not served from cache (status %d: %s)", status, data)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("late request re-derived (calls=%d)", got)
	}
}

// TestCacheLRUEviction checks capacity bounds: the coldest result is
// evicted and re-derived, recently used ones are not.
func TestCacheLRUEviction(t *testing.T) {
	var calls atomic.Int64
	cfg := Config{
		CacheEntries: 2,
		deriveWrap: func(d *derivation, fn deriveFn) deriveFn {
			return func(ctx context.Context) (deriveOut, error) {
				calls.Add(1)
				return fn(ctx)
			}
		},
	}
	_, ts := newTestServer(t, cfg)

	bodies := []string{
		`{"gemm":{"m":8,"k":6,"n":4}}`,
		`{"gemm":{"m":9,"k":6,"n":4}}`,
		`{"gemm":{"m":10,"k":6,"n":4}}`,
	}
	for i, b := range bodies {
		if status, data := postCurve(t, ts.URL, b); status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", i, status, data)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("seeding made %d derivations, want 3", got)
	}
	// Workload 0 was evicted by workload 2 (capacity 2): re-derived.
	if status, data := postCurve(t, ts.URL, bodies[0]); status != http.StatusOK || decodeEnvelope(t, data).Cached {
		t.Fatalf("evicted workload served from cache (status %d)", status)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("evicted workload did not re-derive (calls=%d)", got)
	}
	// Workload 2 is still warm.
	if status, data := postCurve(t, ts.URL, bodies[2]); status != http.StatusOK || !decodeEnvelope(t, data).Cached {
		t.Fatalf("warm workload not served from cache (status %d)", status)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("warm workload re-derived (calls=%d)", got)
	}
}

// TestRequestValidation sweeps the 400 taxonomy.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxShards: 4})
	cases := []struct {
		name string
		body string
		code string
	}{
		{"no workload", `{}`, "invalid_workload"},
		{"two workloads", `{"einsum":"B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4}","gemm":{"m":4,"k":4,"n":4}}`, "invalid_workload"},
		{"unknown field", `{"gemm":{"m":4,"k":4,"n":4},"turbo":true}`, "invalid_request"},
		{"malformed json", `{"gemm":`, "invalid_request"},
		{"negative timeout", `{"gemm":{"m":4,"k":4,"n":4},"timeout_ms":-1}`, "invalid_request"},
		{"too many shards", `{"gemm":{"m":4,"k":4,"n":4},"shards":9}`, "invalid_request"},
		{"shards without spool", `{"gemm":{"m":4,"k":4,"n":4},"shards":2}`, "invalid_request"},
		{"bad einsum", `{"einsum":"nonsense"}`, "invalid_workload"},
		{"bad gemm shape", `{"gemm":{"m":0,"k":4,"n":4}}`, "invalid_workload"},
		{"chain with multilevel", `{"chain":{"einsums":["B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4}"]},"multilevel":{"l1_cap_bytes":64}}`, "invalid_workload"},
		{"chain with options", `{"chain":{"einsums":["B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4}"]},"options":{"charge_spills":true}}`, "invalid_workload"},
		{"empty chain", `{"chain":{"einsums":[]}}`, "invalid_workload"},
		{"multilevel zero cap", `{"gemm":{"m":4,"k":4,"n":4},"multilevel":{"l1_cap_bytes":0}}`, "invalid_workload"},
		{"multilevel with options", `{"gemm":{"m":4,"k":4,"n":4},"multilevel":{"l1_cap_bytes":64},"options":{"charge_spills":true}}`, "invalid_workload"},
		{"conflicting options", `{"gemm":{"m":4,"k":4,"n":4},"options":{"imperfect_extra":4,"charge_spills":true}}`, "invalid_workload"},
		{"empty segmentation", `{"segmentation":{"einsums":[]}}`, "invalid_workload"},
		{"segmentation with options", `{"segmentation":{"einsums":["B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4}"]},"options":{"charge_spills":true}}`, "invalid_workload"},
		{"segmentation with multilevel", `{"segmentation":{"einsums":["B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4}"]},"multilevel":{"l1_cap_bytes":64}}`, "invalid_workload"},
		{"allow_partial without shards", `{"gemm":{"m":4,"k":4,"n":4},"allow_partial":true}`, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postCurve(t, ts.URL, tc.body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", status, data)
			}
			if ei := decodeError(t, data); ei.Code != tc.code {
				t.Fatalf("code %q, want %q (%s)", ei.Code, tc.code, ei.Message)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/curve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/curve: status %d, want 405", resp.StatusCode)
	}
}

// TestHealthAndStats covers the observability endpoints.
func TestHealthAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200", ep, resp.StatusCode)
		}
	}

	body := `{"gemm":{"m":16,"k":12,"n":8}}`
	for i := 0; i < 3; i++ {
		if status, data := postCurve(t, ts.URL, body); status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, data)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 {
		t.Fatalf("requests %d, want 3", st.Requests)
	}
	if st.CacheHits != 2 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if st.CacheHitRate <= 0.5 {
		t.Fatalf("hit rate %f, want > 0.5", st.CacheHitRate)
	}
	if st.Derivations != 1 || st.MappingsEvaluated <= 0 {
		t.Fatalf("derivations=%d evaluated=%d, want 1 and > 0", st.Derivations, st.MappingsEvaluated)
	}
	if st.MappingsPerSec <= 0 {
		t.Fatalf("mappings/sec %f, want > 0", st.MappingsPerSec)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cache entries %d, want 1", st.CacheEntries)
	}
	if st.Draining {
		t.Fatal("fresh server reports draining")
	}
	_ = s
}
