package models

import (
	"testing"

	"repro/internal/bound"
)

func TestConvCatalogsValidate(t *testing.T) {
	for _, set := range [][]ConvLayer{ResNet50(), VGG16()} {
		for _, l := range set {
			e := l.Einsum()
			if err := e.Validate(); err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			if e.MACs() <= 0 {
				t.Fatalf("%s: no work", l.Name)
			}
		}
	}
	if len(ResNet50()) != 10 || len(VGG16()) != 5 {
		t.Fatal("catalog sizes changed unexpectedly")
	}
}

func TestResNetStemShape(t *testing.T) {
	stem := ResNet50()[0].Einsum()
	// 7x7 stride-2 stem over 3 channels producing 64 maps at 112x112.
	if stem.MACs() != 112*112*64*3*7*7 {
		t.Fatalf("stem MACs = %d", stem.MACs())
	}
	// Input footprint: (2*111 + 6 + 1)^2 * 3 = 229^2*3.
	in := stem.Inputs()[0]
	if sz := stem.TensorSize(in); sz != 229*229*3 {
		t.Fatalf("stem input size = %d, want %d", sz, 229*229*3)
	}
}

func TestTransformerBlocksValidate(t *testing.T) {
	for _, cfg := range TransformerBlocks() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if cfg.BlockMACs() <= 0 {
			t.Fatalf("%s: no work", cfg.Name)
		}
	}
}

func TestBiggerGPTMoreWork(t *testing.T) {
	small := GPT3_6_7B().BlockMACs()
	mid := GPT3_13B(2048, 16).BlockMACs()
	big := GPT3_175B(2048, 16).BlockMACs()
	if !(small < mid && mid < big) {
		t.Fatalf("GPT family MACs not ordered: %d %d %d", small, mid, big)
	}
}

func TestLlamaGQA(t *testing.T) {
	e := Llama2_70B_GQA(1024)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 KV groups: the weight tensor holds 8 head groups.
	w := e.Inputs()[1]
	if sz := e.TensorSize(w); sz != 8*128*1024 {
		t.Fatalf("GQA weight size = %d, want %d", sz, 8*128*1024)
	}
	// GQA moves less data than full MHA at equal compute.
	mha := MQAAttention("mha", 64, 1024, 128)
	_ = mha
}

func TestGQABeatsMHAOnTraffic(t *testing.T) {
	gqa := Llama2_70B_GQA(256)
	// Equivalent MHA: G = H.
	mha := MQAAttention("ref", 64, 256, 128) // G=1 extreme for contrast
	cg := bound.Derive(gqa, bound.Options{Workers: 1}).Curve
	cm := bound.Derive(mha, bound.Options{Workers: 1}).Curve
	// MQA (G=1) has the least traffic, GQA (G=8) sits between it and MHA;
	// here we just assert GQA's algorithmic floor exceeds MQA's.
	if cg.MinAccessBytes() <= cm.MinAccessBytes() {
		t.Fatalf("GQA floor %d should exceed MQA floor %d",
			cg.MinAccessBytes(), cm.MinAccessBytes())
	}
}
