// Package models is a catalog of real network workloads expressed as
// Orojenesis Einsums and transformer-block configurations: CNN layers
// (ResNet-50, VGG-16), encoder and decoder transformers (BERT, GPT-3
// family) and grouped-query-attention models (Llama-2-70B). The paper
// derives its insights on exactly these workload classes; the catalog
// makes them one import away for downstream bound studies.
package models

import (
	"fmt"

	"repro/internal/einsum"
	"repro/internal/llm"
)

// ConvLayer names one convolution layer of a CNN.
type ConvLayer struct {
	Name string
	Cfg  einsum.ConvConfig
}

// Einsum materializes the layer's workload.
func (l ConvLayer) Einsum() *einsum.Einsum {
	return einsum.Conv2D(l.Name, l.Cfg)
}

// ResNet50 returns a representative layer per stage of ResNet-50 at
// 224x224 input: the stem plus one bottleneck triple (1x1 reduce, 3x3,
// 1x1 expand) per stage with the stage's true channel widths and spatial
// extents.
func ResNet50() []ConvLayer {
	return []ConvLayer{
		{"conv1_7x7s2", einsum.ConvConfig{P: 112, Q: 112, N: 64, C: 3, R: 7, S: 7, T: 2}},
		{"conv2_1x1a", einsum.ConvConfig{P: 56, Q: 56, N: 64, C: 64, R: 1, S: 1}},
		{"conv2_3x3", einsum.ConvConfig{P: 56, Q: 56, N: 64, C: 64, R: 3, S: 3}},
		{"conv2_1x1b", einsum.ConvConfig{P: 56, Q: 56, N: 256, C: 64, R: 1, S: 1}},
		{"conv3_3x3", einsum.ConvConfig{P: 28, Q: 28, N: 128, C: 128, R: 3, S: 3}},
		{"conv3_1x1b", einsum.ConvConfig{P: 28, Q: 28, N: 512, C: 128, R: 1, S: 1}},
		{"conv4_3x3", einsum.ConvConfig{P: 14, Q: 14, N: 256, C: 256, R: 3, S: 3}},
		{"conv4_1x1b", einsum.ConvConfig{P: 14, Q: 14, N: 1024, C: 256, R: 1, S: 1}},
		{"conv5_3x3", einsum.ConvConfig{P: 7, Q: 7, N: 512, C: 512, R: 3, S: 3}},
		{"conv5_1x1b", einsum.ConvConfig{P: 7, Q: 7, N: 2048, C: 512, R: 1, S: 1}},
	}
}

// VGG16 returns one representative 3x3 layer per VGG-16 stage.
func VGG16() []ConvLayer {
	return []ConvLayer{
		{"conv1", einsum.ConvConfig{P: 224, Q: 224, N: 64, C: 64, R: 3, S: 3}},
		{"conv2", einsum.ConvConfig{P: 112, Q: 112, N: 128, C: 128, R: 3, S: 3}},
		{"conv3", einsum.ConvConfig{P: 56, Q: 56, N: 256, C: 256, R: 3, S: 3}},
		{"conv4", einsum.ConvConfig{P: 28, Q: 28, N: 512, C: 512, R: 3, S: 3}},
		{"conv5", einsum.ConvConfig{P: 14, Q: 14, N: 512, C: 512, R: 3, S: 3}},
	}
}

// BERTBase returns the BERT-base encoder block (d=768, 12 heads of 64,
// hidden 3072) at the given sequence length and batch.
func BERTBase(seq, batch int64) llm.Config {
	return llm.Config{
		Name: "BERT-base", SeqLen: seq, Batch: batch,
		D: 768, Heads: 12, HeadDim: 64, Hidden: 3072,
	}
}

// BERTLarge returns the BERT-large encoder block (d=1024, 16 heads of 64,
// hidden 4096).
func BERTLarge(seq, batch int64) llm.Config {
	return llm.Config{
		Name: "BERT-large", SeqLen: seq, Batch: batch,
		D: 1024, Heads: 16, HeadDim: 64, Hidden: 4096,
	}
}

// GPT3_6_7B is the paper's target workload re-exported for the catalog.
func GPT3_6_7B() llm.Config { return llm.GPT3_6_7B() }

// GPT3_13B returns the 13-billion-parameter GPT-3 block (d=5120,
// 40 heads of 128, hidden 20480).
func GPT3_13B(seq, batch int64) llm.Config {
	return llm.Config{
		Name: "GPT-3-13b", SeqLen: seq, Batch: batch,
		D: 5120, Heads: 40, HeadDim: 128, Hidden: 20480,
	}
}

// GPT3_175B returns the full GPT-3 block (d=12288, 96 heads of 128,
// hidden 49152).
func GPT3_175B(seq, batch int64) llm.Config {
	return llm.Config{
		Name: "GPT-3-175b", SeqLen: seq, Batch: batch,
		D: 12288, Heads: 96, HeadDim: 128, Hidden: 49152,
	}
}

// Llama2_70B_GQA returns the grouped-query attention score BMM of
// Llama-2-70B: 64 query heads sharing 8 key/value head groups at head
// dimension 128 — the Fig. 14 workload class on a production model.
func Llama2_70B_GQA(seq int64) *einsum.Einsum {
	return einsum.GroupedBMM(
		fmt.Sprintf("llama2-70b-gqa-s%d", seq), 64, 8, seq, 128, seq)
}

// MQAAttention returns a multi-query attention score BMM (G=1) with the
// given head count for contrast studies.
func MQAAttention(name string, heads, seq, headDim int64) *einsum.Einsum {
	return einsum.GroupedBMM(name, heads, 1, seq, headDim, seq)
}

// TransformerBlocks lists the catalog's transformer configurations at a
// standard decode-prefill shape (seq 2048, batch 16 for GPT; seq 512,
// batch 32 for BERT).
func TransformerBlocks() []llm.Config {
	return []llm.Config{
		BERTBase(512, 32),
		BERTLarge(512, 32),
		GPT3_6_7B(),
		GPT3_13B(2048, 16),
		GPT3_175B(2048, 16),
	}
}
