// Package core orchestrates the complete Orojenesis flow (Fig. 5): it
// ties the workload model, the exhaustive Snowcat mapspace search, the
// Pareto frontier, the fusion engine and the derivative models into the
// two top-level analyses the paper is built around — single-Einsum bounds
// and multi-Einsum (fused) bounds.
package core

import (
	"fmt"
	"time"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/oi"
	"repro/internal/pareto"
	"repro/internal/traverse"
)

// EinsumAnalysis is the full single-Einsum report: the ski-slope curve,
// the OI mesa, and the paper's headline scalar queries.
type EinsumAnalysis struct {
	Einsum *einsum.Einsum
	Curve  *pareto.Curve
	Mesa   []oi.MesaPoint
	Stats  bound.Stats

	AlgorithmicMinBytes int64
	TotalOperandBytes   int64
	MACs                int64
	PeakOI              float64 // MACs per element at the mesa top
	AlgorithmicOI       float64
	MaxEffectualBytes   int64
	Gap1                float64 // max effectual buffer / total operand size
}

// AnalyzeEinsum runs the Orojenesis flow for one Einsum.
func AnalyzeEinsum(e *einsum.Einsum, opts bound.Options) (*EinsumAnalysis, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	res := bound.Derive(e, opts)
	a := &EinsumAnalysis{
		Einsum:              e,
		Curve:               res.Curve,
		Mesa:                oi.Mesa(res.Curve, e.MACs(), e.ElementSize),
		Stats:               res.Stats,
		AlgorithmicMinBytes: e.AlgorithmicMinBytes(),
		TotalOperandBytes:   e.TotalOperandBytes(),
		MACs:                e.MACs(),
		PeakOI:              oi.PeakOI(res.Curve, e.MACs(), e.ElementSize),
		AlgorithmicOI:       e.AlgorithmicOI(),
		MaxEffectualBytes:   res.Curve.MaxEffectualBufferBytes(),
	}
	if g, ok := res.Curve.Gap1(); ok {
		a.Gap1 = g
	}
	return a, nil
}

// AnalyzeEinsumCurve rebuilds the single-Einsum report from an already
// derived curve — one read back from the durable curve store — without
// re-traversing the mapspace. Every field except Stats is a pure
// function of the Einsum and its frontier; Stats stays zero because no
// traversal ran.
func AnalyzeEinsumCurve(e *einsum.Einsum, c *pareto.Curve) (*EinsumAnalysis, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	a := &EinsumAnalysis{
		Einsum:              e,
		Curve:               c,
		Mesa:                oi.Mesa(c, e.MACs(), e.ElementSize),
		AlgorithmicMinBytes: e.AlgorithmicMinBytes(),
		TotalOperandBytes:   e.TotalOperandBytes(),
		MACs:                e.MACs(),
		PeakOI:              oi.PeakOI(c, e.MACs(), e.ElementSize),
		AlgorithmicOI:       e.AlgorithmicOI(),
		MaxEffectualBytes:   c.MaxEffectualBufferBytes(),
	}
	if g, ok := c.Gap1(); ok {
		a.Gap1 = g
	}
	return a, nil
}

// Gap0 returns attainable-accesses / algorithmic-minimum at a capacity.
func (a *EinsumAnalysis) Gap0(bufBytes int64) (float64, bool) {
	return a.Curve.Gap0(bufBytes)
}

// OIAt returns the attainable operational intensity at a capacity.
func (a *EinsumAnalysis) OIAt(bufBytes int64) (float64, bool) {
	return oi.OIAt(a.Curve, a.MACs, a.Einsum.ElementSize, bufBytes)
}

// ChainStats times the phases of a chain analysis: per-op exhaustive
// derivations, the fused-template sweep, the untiled bound and the
// segmentation study. Surfaced by cmd/fusionbounds behind -stats.
type ChainStats struct {
	Workers int // largest worker count any phase actually used
	Phases  []traverse.Phase
}

// Total returns the summed wall time of all phases.
func (s ChainStats) Total() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Elapsed
	}
	return d
}

// TotalEvaluated returns the summed evaluation count of all phases.
func (s ChainStats) TotalEvaluated() int64 {
	var n int64
	for _, p := range s.Phases {
		n += p.Evaluated
	}
	return n
}

// ChainAnalysis is the multi-Einsum report of Sec. V/VI: the unfused
// baseline and the fusion bounds.
type ChainAnalysis struct {
	Chain          *fusion.Chain
	PerOp          []*pareto.Curve
	Unfused        *pareto.Curve
	Tiled          *pareto.Curve
	Untiled        *pareto.Curve
	Best           *pareto.Curve // best segmentation at every capacity
	AlgoMin        int64         // fused algorithmic minimum, bytes
	UnfusedAlgoMin int64         // unfused algorithmic minimum, bytes
	Stats          ChainStats
}

// AnalyzeChain runs the multi-Einsum Orojenesis flow for a fusible chain
// of at least two ops.
func AnalyzeChain(c *fusion.Chain, opts bound.Options) (*ChainAnalysis, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Len() < 2 {
		return nil, fmt.Errorf("core: AnalyzeChain needs >= 2 ops, got %d", c.Len())
	}
	var stats ChainStats
	phase := func(name string, evaluated int64, workers int, elapsed time.Duration) {
		stats.Phases = append(stats.Phases, traverse.Phase{
			Name: name, Evaluated: evaluated, Workers: workers, Elapsed: elapsed,
		})
		if workers > stats.Workers {
			stats.Workers = workers
		}
	}

	start := time.Now()
	perOp := make([]*pareto.Curve, c.Len())
	var perOpMappings int64
	perOpWorkers := 0
	for e := 0; e < c.Len(); e++ {
		res := bound.Derive(c.Ops[e].Ref, opts)
		perOp[e] = res.Curve
		perOpMappings += res.Stats.MappingsEvaluated
		if res.Stats.Workers > perOpWorkers {
			perOpWorkers = res.Stats.Workers
		}
	}
	phase("per-op curves", perOpMappings, perOpWorkers, time.Since(start))

	tiled, tiledStats, err := fusion.TiledFusionStats(c, opts.Workers)
	if err != nil {
		return nil, err
	}
	phase("tiled-fusion sweep", tiledStats.Evaluated, tiledStats.Workers, tiledStats.Elapsed)

	start = time.Now()
	untiled, err := fusion.UntiledFusion(c)
	if err != nil {
		return nil, err
	}
	phase("untiled fusion", 1, 1, time.Since(start))

	best, segStats, err := fusion.BestSegmentationStats(c, perOp, opts.Workers)
	if err != nil {
		return nil, err
	}
	phase("segmentation study", segStats.Evaluated, segStats.Workers, segStats.Elapsed)

	return &ChainAnalysis{
		Chain:          c,
		PerOp:          perOp,
		Unfused:        fusion.UnfusedCurve(perOp),
		Tiled:          tiled,
		Untiled:        untiled,
		Best:           best,
		AlgoMin:        c.FusedAlgoMinBytes(),
		UnfusedAlgoMin: c.UnfusedAlgoMinBytes(),
		Stats:          stats,
	}, nil
}

// FusionProfit reports the unfused/fused access ratio at a capacity
// (values below 1 mean fusion is counter-productive there, the regime the
// paper highlights for small buffers).
func (a *ChainAnalysis) FusionProfit(bufBytes int64) (float64, bool) {
	u, ok1 := a.Unfused.AccessesAt(bufBytes)
	f, ok2 := a.Tiled.AccessesAt(bufBytes)
	if !ok1 || !ok2 || f == 0 {
		return 0, false
	}
	return float64(u) / float64(f), true
}
