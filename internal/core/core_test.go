package core

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
)

func TestAnalyzeEinsum(t *testing.T) {
	g := einsum.GEMM("g", 64, 64, 64)
	a, err := AnalyzeEinsum(g, bound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Curve.Empty() {
		t.Fatal("empty curve")
	}
	if a.AlgorithmicMinBytes != g.AlgorithmicMinBytes() {
		t.Fatal("algo min mismatch")
	}
	if a.PeakOI <= 0 || a.PeakOI > a.AlgorithmicOI+1e-9 {
		t.Fatalf("peak OI %f outside (0, algorithmic OI %f]", a.PeakOI, a.AlgorithmicOI)
	}
	if a.MaxEffectualBytes != a.Curve.MaxEffectualBufferBytes() {
		t.Fatal("max effectual mismatch")
	}
	if a.Gap1 <= 0 || a.Gap1 > 1 {
		t.Fatalf("Gap1 = %f, want in (0,1]", a.Gap1)
	}
	if len(a.Mesa) != a.Curve.Len() {
		t.Fatal("mesa points != curve points")
	}
	// Gap0 at min buffer should exceed Gap0 at max effectual (=1).
	g0small, ok1 := a.Gap0(a.Curve.MinBufferBytes())
	g0big, ok2 := a.Gap0(a.MaxEffectualBytes)
	if !ok1 || !ok2 || g0small < g0big || g0big != 1 {
		t.Fatalf("Gap0: small %f (%v), big %f (%v)", g0small, ok1, g0big, ok2)
	}
	if oi, ok := a.OIAt(a.MaxEffectualBytes); !ok || oi != a.PeakOI {
		t.Fatalf("OIAt(maxEffectual) = (%f,%v), want peak %f", oi, ok, a.PeakOI)
	}
}

func TestAnalyzeEinsumRejectsInvalid(t *testing.T) {
	bad := &einsum.Einsum{Name: "bad", ElementSize: 2}
	if _, err := AnalyzeEinsum(bad, bound.Options{}); err == nil {
		t.Fatal("invalid einsum accepted")
	}
}

func TestAnalyzeChain(t *testing.T) {
	c := fusion.MustChain("c", 16,
		fusion.GEMMOp("g0", 16, 8, 16),
		fusion.GEMMOp("g1", 16, 16, 8),
	)
	a, err := AnalyzeChain(c, bound.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tiled.Empty() || a.Unfused.Empty() || a.Untiled.Empty() || a.Best.Empty() {
		t.Fatal("missing curves")
	}
	if a.AlgoMin != c.FusedAlgoMinBytes() || a.UnfusedAlgoMin != c.UnfusedAlgoMinBytes() {
		t.Fatal("algo-min annotations wrong")
	}
	// Fusion profit at the untiled capacity should be >= 1 (fusion cannot
	// lose once the whole intermediate fits).
	if p, ok := a.FusionProfit(a.Untiled.MinBufferBytes()); !ok || p < 1 {
		t.Fatalf("FusionProfit at large capacity = (%f,%v)", p, ok)
	}
}

func TestAnalyzeChainRejectsSingleOp(t *testing.T) {
	c := fusion.MustChain("c", 16, fusion.GEMMOp("g0", 16, 8, 16))
	if _, err := AnalyzeChain(c, bound.Options{}); err == nil {
		t.Fatal("single-op chain accepted")
	}
}
