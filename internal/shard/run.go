package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"time"

	"repro/internal/pareto"
)

// defaultBlocksPerShard sets the automatic checkpoint granularity: a shard
// flushes its partial frontier about this many times over its slice, so a
// kill loses at most ~1/defaultBlocksPerShard of the shard's work.
const defaultBlocksPerShard = 32

// DeriveFunc derives the partial frontier over the global enumeration
// indices [lo, hi) of a flat traversal space, returning the annotated
// curve and the number of points evaluated. bound.DeriveRange,
// fusion.TiledFusionRange and multilevel.DeriveRange adapt directly; the
// hook must be deterministic per index, since a resumed shard may
// re-derive the tail of a partially flushed block (idempotent under
// Pareto insertion, but only for deterministic evaluation). Cancelling
// ctx must abort the derivation promptly and return the context's error —
// the traversal engine's FrontierRange provides exactly this.
type DeriveFunc func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error)

// Job describes one shard's share of a derivation: the identity fields
// stamped into the manifest plus the range-derivation hook.
type Job struct {
	Kind     Kind
	Workload string // human-readable label for the manifest

	// WorkloadDigest and OptionsDigest identify the derivation (see
	// Digest); all shards of one plan must be constructed with identical
	// values or the merge will refuse them.
	WorkloadDigest string
	OptionsDigest  string

	// Items is the full flat index-space size (bound.Space,
	// fusion.TiledFusionSpace, ...); Plan selects this shard's slice.
	Items int64
	Plan  Plan

	// Spec, when non-empty, is the canonically encoded workload spec
	// (internal/workload.Encode) this job was compiled from. Run persists
	// it in every checkpoint's manifest so the partial frontier alone can
	// rebuild the job in another process. Purely informational for this
	// package: identity stays with the digests.
	Spec json.RawMessage

	Derive DeriveFunc
}

// RunOptions tunes a shard run.
type RunOptions struct {
	// Path is the partial-frontier file: checkpoint target while running,
	// resume source when it already exists, final artifact on completion.
	Path string

	// CheckpointEvery is the number of enumeration indices derived
	// between flushes. <= 0 picks ~1/32 of the shard's slice.
	CheckpointEvery int64

	// OnCheckpoint, when non-nil, observes the manifest after every
	// successful flush — progress reporting for the CLIs.
	OnCheckpoint func(Manifest)

	// FS overrides the filesystem the checkpoint path uses. Nil means
	// the real OS filesystem; tests inject a FaultFS here.
	FS FS
}

// RunStats reports what a shard run actually did.
type RunStats struct {
	Evaluated   int64         // points evaluated this run (excludes resumed work)
	Blocks      int           // checkpoint blocks derived this run
	Resumed     bool          // whether an existing partial was continued
	ResumedFrom int64         // global index the run started at
	SweptTemps  int           // stale temp files removed on startup
	Elapsed     time.Duration // wall-clock time of this run
}

// Run executes one shard: it derives the job's slice in checkpoint
// blocks, flushing the accumulated partial frontier to opts.Path after
// each block, and returns the final partial. If opts.Path already holds a
// partial of the same derivation and shard, the run resumes at its
// completed-through mark — the restart path for a killed shard; a partial
// of a different derivation is an error, never silently overwritten. A
// legacy format-version-1 checkpoint resumes like any other and is
// upgraded in place: the first flush rewrites it at the current
// FormatVersion with the job's Spec embedded.
// Stale temp files a killed predecessor left next to opts.Path are swept
// on startup.
//
// Cancelling ctx stops the run within about one traversal worker chunk —
// inside a checkpoint block, not just between blocks — flushes a final
// checkpoint at the last completed block boundary, and returns the
// context error together with the resumable partial. Every error return
// wraps either a context error, ErrCorruptPartial, ErrForeignPartial, or
// describes an I/O failure whose on-disk state is still the last
// successfully flushed checkpoint; none leaves a corrupt artifact at
// opts.Path.
func Run(ctx context.Context, job Job, opts RunOptions) (*Partial, RunStats, error) {
	start := time.Now()
	var stats RunStats
	elapse := func() { stats.Elapsed = time.Since(start) }
	if err := job.Plan.Validate(); err != nil {
		return nil, stats, err
	}
	if job.Derive == nil {
		return nil, stats, fmt.Errorf("shard: job has no derive hook")
	}
	if opts.Path == "" {
		return nil, stats, fmt.Errorf("shard: no partial-frontier path")
	}
	fsys := orOS(opts.FS)
	if swept, err := sweepStaleTemps(fsys, opts.Path); err == nil {
		stats.SweptTemps = len(swept)
	}
	lo, hi := job.Plan.Slice(job.Items)
	m := Manifest{
		FormatVersion:    FormatVersion,
		Engine:           Engine,
		Kind:             job.Kind,
		Workload:         job.Workload,
		WorkloadDigest:   job.WorkloadDigest,
		OptionsDigest:    job.OptionsDigest,
		ShardIndex:       job.Plan.Index,
		ShardCount:       job.Plan.Count,
		Items:            job.Items,
		RangeLo:          lo,
		RangeHi:          hi,
		CompletedThrough: lo,
		Spec:             job.Spec,
	}
	if err := m.Validate(); err != nil {
		return nil, stats, err
	}

	var acc *pareto.Curve
	prev, err := readPartial(fsys, opts.Path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh start: no checkpoint yet.
	case err != nil:
		// An unreadable checkpoint is evidence of a problem (corruption,
		// wrong file); overwriting it would destroy that evidence. The
		// supervisor quarantines it (rename to *.corrupt) and re-derives.
		if !errors.Is(err, ErrCorruptPartial) {
			err = fmt.Errorf("%w: %w", ErrCorruptPartial, err)
		}
		return nil, stats, fmt.Errorf("shard: %s exists but is not a readable partial; refusing to overwrite: %w", opts.Path, err)
	default:
		if cerr := prev.Manifest.CompatibleWith(&m); cerr != nil {
			return nil, stats, fmt.Errorf("shard: %s holds a different derivation (%v); refusing to resume or overwrite: %w",
				opts.Path, cerr, ErrForeignPartial)
		}
		if prev.Manifest.ShardIndex != m.ShardIndex {
			return nil, stats, fmt.Errorf("shard: %s holds shard %d/%d, this run is %s; refusing to resume or overwrite: %w",
				opts.Path, prev.Manifest.ShardIndex+1, prev.Manifest.ShardCount, job.Plan, ErrForeignPartial)
		}
		m.CompletedThrough = prev.Manifest.CompletedThrough
		acc = prev.Curve
		stats.Resumed = true
	}
	stats.ResumedFrom = m.CompletedThrough

	every := opts.CheckpointEvery
	if every <= 0 {
		every = (hi - lo + defaultBlocksPerShard - 1) / defaultBlocksPerShard
		if every < 1 {
			every = 1
		}
	}

	// flush persists the accumulated state at the current block boundary.
	flush := func() error {
		return writePartial(fsys, opts.Path, &Partial{Manifest: m, Curve: acc})
	}

	for m.CompletedThrough < hi {
		if err := ctx.Err(); err != nil {
			// Interrupted between blocks (e.g. SIGINT/SIGTERM through
			// signal.NotifyContext): flush a final checkpoint so the state
			// on disk is current even if an earlier flush was skipped,
			// then surrender with the resumable partial.
			if acc != nil {
				if ferr := flush(); ferr != nil {
					elapse()
					return nil, stats, ferr
				}
			}
			elapse()
			return &Partial{Manifest: m, Curve: acc}, stats, err
		}
		bhi := m.CompletedThrough + every
		if bhi > hi {
			bhi = hi
		}
		blk, n, err := job.Derive(ctx, m.CompletedThrough, bhi)
		if err != nil {
			elapse()
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				// Cancelled inside the block: the last flushed checkpoint
				// (at m.CompletedThrough) is intact and resumable; the
				// partial block's work is discarded by design, since a
				// curve over an unknown index subset cannot be committed.
				return &Partial{Manifest: m, Curve: acc}, stats, err
			}
			return nil, stats, fmt.Errorf("shard: deriving [%d, %d): %w", m.CompletedThrough, bhi, err)
		}
		merged := pareto.Union(acc, blk)
		merged.AlgoMinBytes = blk.AlgoMinBytes
		merged.TotalOperandBytes = blk.TotalOperandBytes
		acc = merged
		m.CompletedThrough = bhi
		stats.Evaluated += n
		stats.Blocks++
		if err := flush(); err != nil {
			elapse()
			return nil, stats, err
		}
		if opts.OnCheckpoint != nil {
			opts.OnCheckpoint(m)
		}
	}

	if acc == nil {
		// Empty slice (more shards than items) or an already complete
		// resume of an empty shard: derive the empty range so the curve
		// still carries the workload annotations, then persist.
		blk, _, err := job.Derive(ctx, lo, lo)
		if err != nil {
			elapse()
			return nil, stats, fmt.Errorf("shard: deriving empty slice: %w", err)
		}
		acc = blk
		if err := flush(); err != nil {
			elapse()
			return nil, stats, err
		}
	}
	elapse()
	return &Partial{Manifest: m, Curve: acc}, stats, nil
}
