// Package shard scales bound derivation from one process to a fleet: it
// plans deterministic slices of the flat traversal index spaces the
// Orojenesis engines expose (bound.Space, fusion.TiledFusionSpace,
// multilevel.Space — each built on internal/traverse), runs one slice as a
// checkpointed, resumable traversal that periodically flushes a
// partial-frontier file, and merges the partials back into the
// byte-identical curve a single-process run produces.
//
// The workflow has three phases:
//
//  1. Plan: shard k of N evaluates the contiguous index slice
//     Plan{k, N}.Slice(items) of the [0, items) enumeration. Slices are
//     balanced to within one index and cover the space exactly, so the
//     plan needs no coordination beyond (k, N).
//  2. Run: a Runner walks its slice in checkpoint blocks, merging each
//     block's partial frontier into an accumulator and atomically
//     rewriting its partial-frontier file — the pareto JSON serialization
//     prefixed with a Manifest (workload digest, options digest, shard
//     index/count, evaluated-index range, engine version). A killed shard
//     restarted on the same file resumes at the last completed block;
//     because per-index evaluation is deterministic and Pareto insertion
//     idempotent, re-deriving a partially flushed block is harmless.
//  3. Merge: Merge validates that all manifests describe the same
//     derivation (digests, kind, space size, shard count), that every
//     shard is present exactly once and complete, and then Pareto-unions
//     the partial curves. The result is byte-identical to the
//     single-process curve because a Pareto frontier of a union equals
//     the frontier of the per-part frontiers' union.
//
// The file format is specified in docs/shard-format.md.
//
// Paper mapping: sharding is infrastructure beyond the paper's figures —
// it distributes the exhaustive Sec. III-B traversal (whose single-run
// cost the paper reports in Table I) across processes or hosts without
// changing any derived bound.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Plan identifies one shard of an N-way split of a flat index space:
// shard Index of Count, 0-based.
type Plan struct {
	Index int // 0-based shard index, in [0, Count)
	Count int // total number of shards, >= 1
}

// ParsePlan parses the CLI notation "k/N" with 1-based k (shard 1 of 4 is
// "1/4" and maps to Plan{0, 4}), matching how humans number fleet members.
func ParsePlan(s string) (Plan, error) {
	k, n, ok := strings.Cut(s, "/")
	if !ok {
		return Plan{}, fmt.Errorf("shard: plan %q: want k/N, e.g. 1/4", s)
	}
	ki, err1 := strconv.Atoi(strings.TrimSpace(k))
	ni, err2 := strconv.Atoi(strings.TrimSpace(n))
	if err1 != nil || err2 != nil {
		return Plan{}, fmt.Errorf("shard: plan %q: want integers k/N", s)
	}
	p := Plan{Index: ki - 1, Count: ni}
	if err := p.Validate(); err != nil {
		return Plan{}, fmt.Errorf("shard: plan %q: k must be in [1, N]", s)
	}
	return p, nil
}

// String renders the plan in the 1-based CLI notation, e.g. "1/4".
func (p Plan) String() string { return fmt.Sprintf("%d/%d", p.Index+1, p.Count) }

// Validate reports malformed plans: Count < 1 or Index outside [0, Count).
func (p Plan) Validate() error {
	if p.Count < 1 {
		return fmt.Errorf("shard: plan count %d, want >= 1", p.Count)
	}
	if p.Index < 0 || p.Index >= p.Count {
		return fmt.Errorf("shard: plan index %d outside [0, %d)", p.Index, p.Count)
	}
	return nil
}

// Slice returns the contiguous global index range [lo, hi) this shard
// evaluates out of [0, items). The split is balanced to within one index
// (the first items%Count shards take one extra) and deterministic, so all
// fleet members agree on the cover without coordination. Shards beyond the
// number of items receive empty ranges.
func (p Plan) Slice(items int64) (lo, hi int64) {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	if items < 0 {
		panic(fmt.Sprintf("shard: Slice of negative space %d", items))
	}
	n, k := int64(p.Count), int64(p.Index)
	base := items / n
	extra := items % n
	lo = k*base + min64(k, extra)
	hi = lo + base
	if k < extra {
		hi++
	}
	return lo, hi
}

// Digest hashes a canonical description string (einsum.Canonical,
// fusion.Chain.Canonical, bound.Options.Canonical, ...) to the hex form
// stored in manifests. Two shards merge only if their digests agree, so
// anything that changes the derived curve must be part of the hashed
// string — and anything that does not (worker counts, checkpoint
// granularity) must stay out of it.
func Digest(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
