package shard

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// FS abstracts every filesystem operation the checkpoint path performs,
// so the robustness suite can inject write, sync, rename and read
// failures (see FaultFS) without touching the real disk contract. The
// zero value of RunOptions uses the real OS filesystem; production code
// never needs to implement this.
type FS interface {
	// ReadFile reads the whole named file (os.ReadFile).
	ReadFile(name string) ([]byte, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath (os.Rename).
	Rename(oldpath, newpath string) error
	// Remove deletes the named file (os.Remove).
	Remove(name string) error
	// SyncDir durably commits a directory's entries — the fsync that
	// makes a rename survive a host crash, not just a process kill.
	SyncDir(dir string) error
	// Glob lists the names matching pattern (filepath.Glob), used by the
	// stale-temp sweep on Run startup.
	Glob(pattern string) ([]string, error)
	// Stat describes the named file (os.Stat), used to pick a free
	// quarantine name.
	Stat(name string) (fs.FileInfo, error)
}

// File is the writable temp-file handle CreateTemp returns: enough
// surface for the write → sync → close → rename checkpoint sequence.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (os.File.Sync).
	Sync() error
	// Close closes the handle.
	Close() error
	// Name reports the file's path.
	Name() string
}

// osFS is the real filesystem; the default when RunOptions.FS is nil.
type osFS struct{}

// OS returns the real-filesystem implementation of FS.
func OS() FS { return osFS{} }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// orOS resolves a possibly-nil FS option to the real filesystem.
func orOS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}
