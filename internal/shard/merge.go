package shard

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/pareto"
)

// Merge validates that the partials are the complete set of shards of one
// derivation and Pareto-unions them into the full curve — byte-identical
// to the single-process result, because the frontier of a union equals
// the frontier of the per-part frontiers' union.
//
// Merge refuses, with an error naming the offending shard and field, any
// set where: manifests disagree on engine, kind, workload or options
// digest, index-space size or shard count; a shard is missing, duplicated
// or incomplete; or the curves' workload annotations diverge (which a
// matching workload digest should make impossible, so a divergence means
// a corrupted or hand-edited file).
func Merge(partials ...*Partial) (*pareto.Curve, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("shard: merge: no partial frontiers")
	}
	ref := &partials[0].Manifest
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("shard: merge: partial 0: %w", err)
	}
	if len(partials) != ref.ShardCount {
		return nil, fmt.Errorf("shard: merge: have %d partial frontiers, plan has %d shards", len(partials), ref.ShardCount)
	}
	seen := make([]bool, ref.ShardCount)
	curves := make([]*pareto.Curve, len(partials))
	for i, p := range partials {
		m := &p.Manifest
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("shard: merge: partial %d: %w", i, err)
		}
		if err := ref.CompatibleWith(m); err != nil {
			return nil, fmt.Errorf("shard: merge: partial %d does not belong to this derivation: %v: %w", i, err, ErrForeignPartial)
		}
		if seen[m.ShardIndex] {
			return nil, fmt.Errorf("shard: merge: shard %d/%d appears more than once", m.ShardIndex+1, m.ShardCount)
		}
		seen[m.ShardIndex] = true
		if !m.Complete() {
			return nil, fmt.Errorf("shard: merge: shard %d/%d is incomplete (evaluated through %d of [%d, %d)); resume it first",
				m.ShardIndex+1, m.ShardCount, m.CompletedThrough, m.RangeLo, m.RangeHi)
		}
		if p.Curve.AlgoMinBytes != partials[0].Curve.AlgoMinBytes ||
			p.Curve.TotalOperandBytes != partials[0].Curve.TotalOperandBytes {
			return nil, fmt.Errorf("shard: merge: shard %d/%d curve annotations (%d, %d) disagree with shard %d/%d (%d, %d)",
				m.ShardIndex+1, m.ShardCount, p.Curve.AlgoMinBytes, p.Curve.TotalOperandBytes,
				ref.ShardIndex+1, ref.ShardCount, partials[0].Curve.AlgoMinBytes, partials[0].Curve.TotalOperandBytes)
		}
		curves[i] = p.Curve
	}
	for k, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: merge: shard %d/%d is missing", k+1, ref.ShardCount)
		}
	}
	merged := pareto.Union(curves...)
	merged.AlgoMinBytes = partials[0].Curve.AlgoMinBytes
	merged.TotalOperandBytes = partials[0].Curve.TotalOperandBytes
	return merged, nil
}

// MergeFiles reads the named partial-frontier files and merges them.
func MergeFiles(paths ...string) (*pareto.Curve, error) {
	partials := make([]*Partial, len(paths))
	for i, path := range paths {
		p, err := ReadPartial(path)
		if err != nil {
			return nil, err
		}
		partials[i] = p
	}
	c, err := Merge(partials...)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Degraded is the result of a best-effort merge over an incomplete shard
// set (-allow-partial): the Pareto union of whatever index coverage the
// partials carry, explicitly annotated with how much of the enumeration
// that is. A degraded curve is an UNDER-approximation of the true
// frontier — unevaluated mappings can only add points at or above it, so
// it remains a valid lower bound on data movement, just a potentially
// loose one. The annotation is part of the serialized artifact
// (MarshalJSON) so a degraded curve can never masquerade as an exact one.
type Degraded struct {
	// Curve is the Pareto union over the covered indices, carrying the
	// usual workload annotations.
	Curve *pareto.Curve

	// Items is the full enumeration size; CoveredIndices is how many of
	// those indices the merged partials actually evaluated, and
	// CoveredFraction their ratio (1.0 iff the set was complete).
	Items           int64
	CoveredIndices  int64
	CoveredFraction float64

	// ShardCount is the plan size; MissingShards lists the 0-based shard
	// indices with no partial at all, IncompleteShards those present but
	// not run to completion. Both are sorted ascending.
	ShardCount       int
	MissingShards    []int
	IncompleteShards []int
}

// Complete reports whether the merge actually covered the whole space —
// i.e. the degraded path was requested but not needed.
func (d *Degraded) Complete() bool { return d.CoveredIndices == d.Items }

// degradedJSON is the serialized envelope of a degraded merge: the curve
// plus the coverage metadata, under an explicit "degraded" marker.
type degradedJSON struct {
	Degraded         bool          `json:"degraded"`
	Items            int64         `json:"items"`
	CoveredIndices   int64         `json:"covered_indices"`
	CoveredFraction  float64       `json:"covered_fraction"`
	ShardCount       int           `json:"shard_count"`
	MissingShards    []int         `json:"missing_shards,omitempty"`
	IncompleteShards []int         `json:"incomplete_shards,omitempty"`
	Curve            *pareto.Curve `json:"curve"`
}

// MarshalJSON emits the annotated envelope; the coverage metadata always
// travels with the curve.
func (d *Degraded) MarshalJSON() ([]byte, error) {
	return json.Marshal(degradedJSON{
		Degraded:         !d.Complete(),
		Items:            d.Items,
		CoveredIndices:   d.CoveredIndices,
		CoveredFraction:  d.CoveredFraction,
		ShardCount:       d.ShardCount,
		MissingShards:    d.MissingShards,
		IncompleteShards: d.IncompleteShards,
		Curve:            d.Curve,
	})
}

// UnmarshalJSON loads a degraded-merge envelope.
func (d *Degraded) UnmarshalJSON(data []byte) error {
	var dj degradedJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return err
	}
	if dj.Curve == nil {
		return fmt.Errorf("shard: degraded merge envelope missing curve")
	}
	*d = Degraded{
		Curve:            dj.Curve,
		Items:            dj.Items,
		CoveredIndices:   dj.CoveredIndices,
		CoveredFraction:  dj.CoveredFraction,
		ShardCount:       dj.ShardCount,
		MissingShards:    dj.MissingShards,
		IncompleteShards: dj.IncompleteShards,
	}
	return nil
}

// MergeDegraded merges whatever subset of one derivation's shards is
// available — missing and incomplete shards are tolerated and reported,
// not refused. Everything else stays as strict as Merge: the partials
// must all validate, describe the same derivation (digests, engine, kind,
// space, shard count — mismatches wrap ErrForeignPartial), appear at most
// once per shard index, and agree on curve annotations. At least one
// partial is required: with zero there is no manifest to even name the
// derivation.
func MergeDegraded(partials ...*Partial) (*Degraded, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("shard: degraded merge: no partial frontiers")
	}
	ref := &partials[0].Manifest
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("shard: degraded merge: partial 0: %w", err)
	}
	if len(partials) > ref.ShardCount {
		return nil, fmt.Errorf("shard: degraded merge: have %d partial frontiers, plan has only %d shards",
			len(partials), ref.ShardCount)
	}
	seen := make([]bool, ref.ShardCount)
	incomplete := make([]bool, ref.ShardCount)
	curves := make([]*pareto.Curve, len(partials))
	var covered int64
	for i, p := range partials {
		m := &p.Manifest
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("shard: degraded merge: partial %d: %w", i, err)
		}
		if err := ref.CompatibleWith(m); err != nil {
			return nil, fmt.Errorf("shard: degraded merge: partial %d does not belong to this derivation: %v: %w",
				i, err, ErrForeignPartial)
		}
		if seen[m.ShardIndex] {
			return nil, fmt.Errorf("shard: degraded merge: shard %d/%d appears more than once", m.ShardIndex+1, m.ShardCount)
		}
		seen[m.ShardIndex] = true
		incomplete[m.ShardIndex] = !m.Complete()
		covered += m.CompletedThrough - m.RangeLo
		if p.Curve.AlgoMinBytes != partials[0].Curve.AlgoMinBytes ||
			p.Curve.TotalOperandBytes != partials[0].Curve.TotalOperandBytes {
			return nil, fmt.Errorf("shard: degraded merge: shard %d/%d curve annotations (%d, %d) disagree with shard %d/%d (%d, %d)",
				m.ShardIndex+1, m.ShardCount, p.Curve.AlgoMinBytes, p.Curve.TotalOperandBytes,
				ref.ShardIndex+1, ref.ShardCount, partials[0].Curve.AlgoMinBytes, partials[0].Curve.TotalOperandBytes)
		}
		curves[i] = p.Curve
	}
	d := &Degraded{
		Items:      ref.Items,
		ShardCount: ref.ShardCount,
	}
	for k := range seen {
		switch {
		case !seen[k]:
			d.MissingShards = append(d.MissingShards, k)
		case incomplete[k]:
			d.IncompleteShards = append(d.IncompleteShards, k)
		}
	}
	sort.Ints(d.MissingShards)
	sort.Ints(d.IncompleteShards)
	d.CoveredIndices = covered
	if ref.Items > 0 {
		d.CoveredFraction = float64(covered) / float64(ref.Items)
	} else {
		d.CoveredFraction = 1
	}
	d.Curve = pareto.Union(curves...)
	d.Curve.AlgoMinBytes = partials[0].Curve.AlgoMinBytes
	d.Curve.TotalOperandBytes = partials[0].Curve.TotalOperandBytes
	// An actually-incomplete cover taints the curve itself, so the
	// degraded mark survives any further composition (pareto.Sum and
	// friends carry it) and any serialization of the bare curve.
	d.Curve.Degraded = !d.Complete()
	return d, nil
}

// MergeDegradedFiles reads the named partial-frontier files and merges
// them best-effort (MergeDegraded).
func MergeDegradedFiles(paths ...string) (*Degraded, error) {
	partials := make([]*Partial, len(paths))
	for i, path := range paths {
		p, err := ReadPartial(path)
		if err != nil {
			return nil, err
		}
		partials[i] = p
	}
	return MergeDegraded(partials...)
}
