package shard

import (
	"fmt"

	"repro/internal/pareto"
)

// Merge validates that the partials are the complete set of shards of one
// derivation and Pareto-unions them into the full curve — byte-identical
// to the single-process result, because the frontier of a union equals
// the frontier of the per-part frontiers' union.
//
// Merge refuses, with an error naming the offending shard and field, any
// set where: manifests disagree on engine, kind, workload or options
// digest, index-space size or shard count; a shard is missing, duplicated
// or incomplete; or the curves' workload annotations diverge (which a
// matching workload digest should make impossible, so a divergence means
// a corrupted or hand-edited file).
func Merge(partials ...*Partial) (*pareto.Curve, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("shard: merge: no partial frontiers")
	}
	ref := &partials[0].Manifest
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("shard: merge: partial 0: %w", err)
	}
	if len(partials) != ref.ShardCount {
		return nil, fmt.Errorf("shard: merge: have %d partial frontiers, plan has %d shards", len(partials), ref.ShardCount)
	}
	seen := make([]bool, ref.ShardCount)
	curves := make([]*pareto.Curve, len(partials))
	for i, p := range partials {
		m := &p.Manifest
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("shard: merge: partial %d: %w", i, err)
		}
		if err := ref.CompatibleWith(m); err != nil {
			return nil, fmt.Errorf("shard: merge: partial %d does not belong to this derivation: %v", i, err)
		}
		if seen[m.ShardIndex] {
			return nil, fmt.Errorf("shard: merge: shard %d/%d appears more than once", m.ShardIndex+1, m.ShardCount)
		}
		seen[m.ShardIndex] = true
		if !m.Complete() {
			return nil, fmt.Errorf("shard: merge: shard %d/%d is incomplete (evaluated through %d of [%d, %d)); resume it first",
				m.ShardIndex+1, m.ShardCount, m.CompletedThrough, m.RangeLo, m.RangeHi)
		}
		if p.Curve.AlgoMinBytes != partials[0].Curve.AlgoMinBytes ||
			p.Curve.TotalOperandBytes != partials[0].Curve.TotalOperandBytes {
			return nil, fmt.Errorf("shard: merge: shard %d/%d curve annotations (%d, %d) disagree with shard %d/%d (%d, %d)",
				m.ShardIndex+1, m.ShardCount, p.Curve.AlgoMinBytes, p.Curve.TotalOperandBytes,
				ref.ShardIndex+1, ref.ShardCount, partials[0].Curve.AlgoMinBytes, partials[0].Curve.TotalOperandBytes)
		}
		curves[i] = p.Curve
	}
	for k, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: merge: shard %d/%d is missing", k+1, ref.ShardCount)
		}
	}
	merged := pareto.Union(curves...)
	merged.AlgoMinBytes = partials[0].Curve.AlgoMinBytes
	merged.TotalOperandBytes = partials[0].Curve.TotalOperandBytes
	return merged, nil
}

// MergeFiles reads the named partial-frontier files and merges them.
func MergeFiles(paths ...string) (*pareto.Curve, error) {
	partials := make([]*Partial, len(paths))
	for i, path := range paths {
		p, err := ReadPartial(path)
		if err != nil {
			return nil, err
		}
		partials[i] = p
	}
	c, err := Merge(partials...)
	if err != nil {
		return nil, err
	}
	return c, nil
}
