package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/pareto"
)

// curveBytes is the byte-for-byte comparison the acceptance criterion
// pins: the merged curve must serialize identically to the single-process
// one, annotations included.
func curveBytes(t *testing.T, c *pareto.Curve) string {
	t.Helper()
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runShards executes every shard of an N-way plan to completion through
// the real file-backed Run path and returns the written file names.
func runShards(t *testing.T, dir string, n int, mkJob func(plan Plan) Job) []string {
	t.Helper()
	paths := make([]string, n)
	for k := 0; k < n; k++ {
		paths[k] = filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", k+1, n))
		job := mkJob(Plan{Index: k, Count: n})
		if _, _, err := Run(context.Background(), job, RunOptions{Path: paths[k], CheckpointEvery: 7}); err != nil {
			t.Fatalf("shard %d/%d: %v", k+1, n, err)
		}
	}
	return paths
}

func TestBoundShardingParity(t *testing.T) {
	e := einsum.GEMM("gemm_64", 64, 64, 64)
	opts := bound.Options{Workers: 2}
	want := curveBytes(t, bound.Derive(e, opts).Curve)

	for _, n := range []int{2, 4, 8} {
		paths := runShards(t, t.TempDir(), n, func(plan Plan) Job {
			job, err := BoundJob(e, opts, plan)
			if err != nil {
				t.Fatal(err)
			}
			return job
		})
		merged, err := MergeFiles(paths...)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if got := curveBytes(t, merged); got != want {
			t.Fatalf("N=%d: merged curve differs from single-process derive\n got %s\nwant %s", n, got, want)
		}
	}
}

func TestBoundShardingParityImperfect(t *testing.T) {
	e := einsum.GEMM("gemm_48", 48, 40, 36)
	opts := bound.Options{ImperfectExtra: 3}
	want := curveBytes(t, bound.Derive(e, opts).Curve)

	paths := runShards(t, t.TempDir(), 4, func(plan Plan) Job {
		job, err := BoundJob(e, opts, plan)
		if err != nil {
			t.Fatal(err)
		}
		return job
	})
	merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if got := curveBytes(t, merged); got != want {
		t.Fatalf("imperfect merged curve differs from single-process derive\n got %s\nwant %s", got, want)
	}
}

func testChain(t *testing.T) *fusion.Chain {
	t.Helper()
	c, err := fusion.NewChain("ffn", 64,
		fusion.GEMMOp("mm_0", 64, 32, 48),
		fusion.GEMMOp("mm_1", 64, 48, 16))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFusionShardingParity(t *testing.T) {
	c := testChain(t)
	want, _, err := fusion.TiledFusionStats(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := curveBytes(t, want)

	for _, n := range []int{2, 4, 8} {
		paths := runShards(t, t.TempDir(), n, func(plan Plan) Job {
			job, err := FusionTiledJob(c, plan, 2)
			if err != nil {
				t.Fatal(err)
			}
			return job
		})
		merged, err := MergeFiles(paths...)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if got := curveBytes(t, merged); got != wantBytes {
			t.Fatalf("N=%d: merged tiled-fusion curve differs from single-process sweep\n got %s\nwant %s", n, got, wantBytes)
		}
	}
}

// segChain returns a five-op chain whose segmentation mask space has
// 2^4 = 16 entries — enough to slice meaningfully across 8 shards and to
// checkpoint mid-shard.
func segChain(t *testing.T) (*fusion.Chain, []*pareto.Curve) {
	t.Helper()
	c, err := fusion.NewChain("mlp5", 16,
		fusion.GEMMOp("g0", 16, 4, 8),
		fusion.GEMMOp("g1", 16, 8, 8),
		fusion.GEMMOp("g2", 16, 8, 4),
		fusion.GEMMOp("g3", 16, 4, 8),
		fusion.GEMMOp("g4", 16, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	return c, c.PerOpCurves(bound.Options{Workers: 1})
}

// TestSegmentationShardingParity pins the tentpole acceptance criterion:
// the sharded segmentation study merges byte-identically to the
// in-process BestSegmentationStats curve for N ∈ {2, 4, 8}.
func TestSegmentationShardingParity(t *testing.T) {
	c, perOp := segChain(t)
	want, _, err := fusion.BestSegmentationStats(c, perOp, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := curveBytes(t, want)

	for _, n := range []int{2, 4, 8} {
		paths := runShards(t, t.TempDir(), n, func(plan Plan) Job {
			job, err := SegmentationJob(c, perOp, plan, 2)
			if err != nil {
				t.Fatal(err)
			}
			return job
		})
		merged, err := MergeFiles(paths...)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if got := curveBytes(t, merged); got != wantBytes {
			t.Fatalf("N=%d: merged segmentation curve differs from single-process study\n got %s\nwant %s", n, got, wantBytes)
		}
	}
}

// TestSegmentationKillAndResumeParity kills a segmentation shard between
// checkpoint flushes and resumes it with the SAME job — deliberately
// reusing the sweep whose memo saw the cancellation, so the test covers
// both the recompute-on-resume story (memo entries are derived state, not
// checkpointed) and the memo re-arm fix (a cancelled sub-chain compute
// must be retried, not replayed as a stale error).
func TestSegmentationKillAndResumeParity(t *testing.T) {
	c, perOp := segChain(t)
	want, _, err := fusion.BestSegmentationStats(c, perOp, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := curveBytes(t, want)

	const n = 4
	dir := t.TempDir()
	paths := make([]string, n)
	for k := 0; k < n; k++ {
		paths[k] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", k+1))
		job, err := SegmentationJob(c, perOp, Plan{Index: k, Count: n}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if k != 1 {
			if _, _, err := Run(context.Background(), job, RunOptions{Path: paths[k], CheckpointEvery: 2}); err != nil {
				t.Fatal(err)
			}
			continue
		}

		// Kill shard 2 after its first flush...
		ctx, cancel := context.WithCancel(context.Background())
		_, _, err = Run(ctx, job, RunOptions{
			Path:            paths[k],
			CheckpointEvery: 2,
			OnCheckpoint:    func(Manifest) { cancel() },
		})
		cancel()
		if err == nil {
			t.Fatal("killed run reported success")
		}
		killed, rerr := ReadPartial(paths[k])
		if rerr != nil {
			t.Fatalf("no resumable checkpoint after kill: %v", rerr)
		}
		if killed.Manifest.Complete() {
			t.Fatal("kill point was after shard completion; lower CheckpointEvery")
		}

		// ...then restart the same job on the same file.
		_, stats, err := Run(context.Background(), job, RunOptions{Path: paths[k], CheckpointEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Resumed || stats.ResumedFrom != killed.Manifest.CompletedThrough {
			t.Fatalf("restart did not resume at checkpoint: stats %+v, checkpoint at %d",
				stats, killed.Manifest.CompletedThrough)
		}
	}
	merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if got := curveBytes(t, merged); got != wantBytes {
		t.Fatalf("kill+resume merged segmentation curve differs from single-process result\n got %s\nwant %s", got, wantBytes)
	}
}

// TestKillAndResumeParity kills one shard mid-run (context cancellation
// after a fixed number of checkpoint flushes — the same code path as a
// SIGKILL between flushes, since each flush is an atomic rename), resumes
// it, and checks that the merged curve still matches the single-process
// result byte for byte. Both derivation kinds are covered.
func TestKillAndResumeParity(t *testing.T) {
	e := einsum.GEMM("gemm_64", 64, 64, 64)
	opts := bound.Options{}
	chain := testChain(t)

	kinds := []struct {
		name  string
		want  string
		mkJob func(plan Plan) Job
	}{
		{
			name: "bound",
			want: curveBytes(t, bound.Derive(e, opts).Curve),
			mkJob: func(plan Plan) Job {
				job, err := BoundJob(e, opts, plan)
				if err != nil {
					t.Fatal(err)
				}
				return job
			},
		},
		{
			name: "fusion-tiled",
			want: func() string {
				cv, _, err := fusion.TiledFusionStats(chain, 0)
				if err != nil {
					t.Fatal(err)
				}
				return curveBytes(t, cv)
			}(),
			mkJob: func(plan Plan) Job {
				job, err := FusionTiledJob(chain, plan, 1)
				if err != nil {
					t.Fatal(err)
				}
				return job
			},
		},
	}

	for _, kind := range kinds {
		for _, killAfter := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/killAfter=%d", kind.name, killAfter), func(t *testing.T) {
				const n = 4
				dir := t.TempDir()
				paths := make([]string, n)
				for k := 0; k < n; k++ {
					paths[k] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", k+1))
					job := kind.mkJob(Plan{Index: k, Count: n})
					if k != 1 {
						if _, _, err := Run(context.Background(), job, RunOptions{Path: paths[k], CheckpointEvery: 5}); err != nil {
							t.Fatal(err)
						}
						continue
					}

					// Kill shard 2 after killAfter flushes...
					ctx, cancel := context.WithCancel(context.Background())
					flushes := 0
					_, _, err := Run(ctx, job, RunOptions{
						Path:            paths[k],
						CheckpointEvery: 5,
						OnCheckpoint: func(Manifest) {
							flushes++
							if flushes >= killAfter {
								cancel()
							}
						},
					})
					cancel()
					if err == nil {
						t.Fatal("killed run reported success")
					}
					killed, rerr := ReadPartial(paths[k])
					if rerr != nil {
						t.Fatalf("no resumable checkpoint after kill: %v", rerr)
					}
					if killed.Manifest.Complete() {
						t.Fatal("kill point was after shard completion; lower CheckpointEvery")
					}

					// ...then restart it on the same file.
					_, stats, err := Run(context.Background(), job, RunOptions{Path: paths[k], CheckpointEvery: 5})
					if err != nil {
						t.Fatal(err)
					}
					if !stats.Resumed || stats.ResumedFrom != killed.Manifest.CompletedThrough {
						t.Fatalf("restart did not resume at checkpoint: stats %+v, checkpoint at %d",
							stats, killed.Manifest.CompletedThrough)
					}
				}
				merged, err := MergeFiles(paths...)
				if err != nil {
					t.Fatal(err)
				}
				if got := curveBytes(t, merged); got != kind.want {
					t.Fatalf("kill+resume merged curve differs from single-process result\n got %s\nwant %s", got, kind.want)
				}
			})
		}
	}
}

// TestMergeRefusesMismatchedDerivations shards the same workload under
// different options and checks the merge refuses to combine them.
func TestMergeRefusesMismatchedDerivations(t *testing.T) {
	e := einsum.GEMM("gemm_64", 64, 64, 64)
	dir := t.TempDir()
	mk := func(name string, opts bound.Options, plan Plan) string {
		job, err := BoundJob(e, opts, plan)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if _, _, err := Run(context.Background(), job, RunOptions{Path: path}); err != nil {
			t.Fatal(err)
		}
		return path
	}
	perfect := mk("perfect.json", bound.Options{}, Plan{Index: 0, Count: 2})
	imperfect := mk("imperfect.json", bound.Options{ImperfectExtra: 2}, Plan{Index: 1, Count: 2})
	if _, err := MergeFiles(perfect, imperfect); err == nil {
		t.Fatal("merge combined partials of different derivation options")
	}

	spills := mk("spills.json", bound.Options{ChargeSpills: true}, Plan{Index: 1, Count: 2})
	if _, err := MergeFiles(perfect, spills); err == nil {
		t.Fatal("merge combined spill-charged with default accounting")
	}
}

// TestRunRefusesForeignCheckpoint pins the resume guard: a run must not
// continue from (or overwrite) a checkpoint of a different derivation or
// a different shard of the same derivation.
func TestRunRefusesForeignCheckpoint(t *testing.T) {
	e := einsum.GEMM("gemm_64", 64, 64, 64)
	path := filepath.Join(t.TempDir(), "shard.json")
	job, err := BoundJob(e, bound.Options{}, Plan{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), job, RunOptions{Path: path}); err != nil {
		t.Fatal(err)
	}

	other, err := BoundJob(e, bound.Options{ImperfectExtra: 2}, Plan{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), other, RunOptions{Path: path}); err == nil {
		t.Fatal("run resumed from a checkpoint of different options")
	}

	sibling, err := BoundJob(e, bound.Options{}, Plan{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Run(context.Background(), sibling, RunOptions{Path: path}); err == nil {
		t.Fatal("run resumed from a sibling shard's checkpoint")
	}
}

// TestMoreShardsThanItems exercises empty slices: shards beyond the item
// count must still write complete, annotated, mergeable partials.
func TestMoreShardsThanItems(t *testing.T) {
	e := einsum.GEMM("gemm_2", 2, 2, 2) // 8 tilings
	opts := bound.Options{}
	if got := bound.Space(e, opts); got != 8 {
		t.Fatalf("space = %d, want 8", got)
	}
	want := curveBytes(t, bound.Derive(e, opts).Curve)

	paths := runShards(t, t.TempDir(), 16, func(plan Plan) Job {
		job, err := BoundJob(e, opts, plan)
		if err != nil {
			t.Fatal(err)
		}
		return job
	})
	merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if got := curveBytes(t, merged); got != want {
		t.Fatalf("merged curve differs with empty shards\n got %s\nwant %s", got, want)
	}
}
