package shard

import (
	"context"
	"fmt"
	"io/fs"
	"sync"

	"repro/internal/pareto"
)

// Op names a filesystem operation a FaultFS can intercept.
type Op string

// The intercepted operations, in the order a checkpoint flush performs
// them: CreateTemp, Write, Sync, Close, Rename, SyncDir (plus ReadFile on
// resume, Remove/Glob/Stat for cleanup, sweep and quarantine).
const (
	OpReadFile   Op = "readfile"
	OpCreateTemp Op = "createtemp"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
	OpClose      Op = "close"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpSyncDir    Op = "syncdir"
	OpGlob       Op = "glob"
	OpStat       Op = "stat"
)

// FaultFS wraps an FS with scripted fault injection — the seam the
// robustness suite drives. Every operation first consults Fail; a non-nil
// return is injected as that operation's error. A failed OpWrite still
// writes the first half of the payload before reporting the error, so an
// injected write failure produces exactly the torn temp file a real
// partial write (disk-full, process kill mid-write) leaves behind.
//
// All operations are logged (op + primary path, in execution order) and
// counted, so tests can assert ordering contracts such as "the file sync
// happens before the rename".
type FaultFS struct {
	// Inner is the wrapped filesystem; nil means the real OS filesystem.
	Inner FS

	// Fail, when non-nil, is consulted before every operation with the
	// operation and its primary path; returning a non-nil error injects
	// that failure. Called under the FaultFS mutex: keep it fast and do
	// not re-enter the filesystem from inside it.
	Fail func(op Op, path string) error

	mu     sync.Mutex
	log    []string
	counts map[Op]int
}

// check records the operation and returns the injected error, if any.
func (f *FaultFS) check(op Op, path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.log = append(f.log, fmt.Sprintf("%s %s", op, path))
	if f.counts == nil {
		f.counts = map[Op]int{}
	}
	f.counts[op]++
	if f.Fail != nil {
		return f.Fail(op, path)
	}
	return nil
}

// Log returns a copy of the operation log ("op path" per entry, in
// execution order).
func (f *FaultFS) Log() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

// Count reports how many times op was attempted (including injected
// failures).
func (f *FaultFS) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

func (f *FaultFS) inner() FS { return orOS(f.Inner) }

// ReadFile implements FS.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return f.inner().ReadFile(name)
}

// CreateTemp implements FS.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	file, err := f.inner().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename, newpath); err != nil {
		return err
	}
	return f.inner().Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.inner().Remove(name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.check(OpSyncDir, dir); err != nil {
		return err
	}
	return f.inner().SyncDir(dir)
}

// Glob implements FS.
func (f *FaultFS) Glob(pattern string) ([]string, error) {
	if err := f.check(OpGlob, pattern); err != nil {
		return nil, err
	}
	return f.inner().Glob(pattern)
}

// Stat implements FS.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.check(OpStat, name); err != nil {
		return nil, err
	}
	return f.inner().Stat(name)
}

// faultFile interposes the per-file operations of a temp file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.check(OpWrite, f.inner.Name()); err != nil {
		// Torn write: half the payload lands before the failure, like a
		// disk filling up or a kill mid-write.
		n, _ := f.inner.Write(p[:len(p)/2])
		return n, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.check(OpSync, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	if err := f.fs.check(OpClose, f.inner.Name()); err != nil {
		return err
	}
	return f.inner.Close()
}

func (f *faultFile) Name() string { return f.inner.Name() }

// FailN returns a Fail hook that injects err on the first n occurrences
// of op, then lets everything pass — the canonical transient fault.
func FailN(op Op, n int, err error) func(Op, string) error {
	var remaining = n
	return func(o Op, _ string) error {
		if o == op && remaining > 0 {
			remaining--
			return err
		}
		return nil
	}
}

// KillAtIndex wraps a job's derive hook so the attempt dies with err the
// first time a block containing global index idx is derived — the
// kill-at-index hook the robustness suite uses to simulate a crash at a
// deterministic point of the traversal. Subsequent attempts (a supervised
// retry, a manual resume) run unmodified.
func KillAtIndex(job Job, idx int64, err error) Job {
	derive := job.Derive
	var mu sync.Mutex
	killed := false
	job.Derive = func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
		mu.Lock()
		kill := !killed && lo <= idx && idx < hi
		if kill {
			killed = true
		}
		mu.Unlock()
		if kill {
			return nil, 0, err
		}
		return derive(ctx, lo, hi)
	}
	return job
}
