package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pareto"
)

// syntheticDerive is a cheap deterministic DeriveFunc: every index maps to
// a fixed (buffer, accesses) point, so curve differences expose any lost,
// duplicated or corrupted work.
func syntheticDerive(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	b := pareto.NewBuilder()
	for i := lo; i < hi; i++ {
		buf := (i*2654435761)%1000 + 1
		b.Add(buf, 2000-buf)
	}
	c := b.Curve()
	c.AlgoMinBytes = 11
	c.TotalOperandBytes = 22
	return c, hi - lo, nil
}

func syntheticJob(items int64, plan Plan) Job {
	return Job{
		Kind:           KindBound,
		Workload:       "synthetic",
		WorkloadDigest: Digest("synthetic-workload"),
		OptionsDigest:  Digest("synthetic-options"),
		Items:          items,
		Plan:           plan,
		Derive:         syntheticDerive,
	}
}

// completeRun derives the job to completion and returns the curve bytes.
func completeRun(t *testing.T, job Job, path string) string {
	t.Helper()
	p, _, err := Run(context.Background(), job, RunOptions{Path: path, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	return curveBytes(t, p.Curve)
}

// failNth returns a Fail hook injecting err on exactly the nth occurrence
// of op — fault injection aimed at a specific flush of a run.
func failNth(op Op, nth int, err error) func(Op, string) error {
	var count int
	return func(o Op, _ string) error {
		if o != op {
			return nil
		}
		count++
		if count == nth {
			return err
		}
		return nil
	}
}

// TestCorruptPartialMatrix drives the corruption matrix from the failure
// model: each corruption of a checkpoint file must surface as the specific
// named error class — ErrCorruptPartial for unreadable or structurally
// invalid files, ErrForeignPartial for readable files of a different
// derivation — both from ReadPartial (where applicable) and from a Run
// trying to resume on top of it. Never a silent overwrite.
func TestCorruptPartialMatrix(t *testing.T) {
	const items = 100
	job := syntheticJob(items, Plan{Index: 0, Count: 2})

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		want    error
	}{
		{
			name: "truncated-json",
			corrupt: func(t *testing.T, path string) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: ErrCorruptPartial,
		},
		{
			name: "zeroed-tail",
			corrupt: func(t *testing.T, path string) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				for i := len(data) - len(data)/3; i < len(data); i++ {
					data[i] = 0
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: ErrCorruptPartial,
		},
		{
			name: "wrong-format-version",
			corrupt: func(t *testing.T, path string) {
				rewritePartial(t, path, func(p *Partial) { p.Manifest.FormatVersion = 99 })
			},
			want: ErrCorruptPartial,
		},
		{
			name: "flipped-workload-digest",
			corrupt: func(t *testing.T, path string) {
				rewritePartial(t, path, func(p *Partial) { p.Manifest.WorkloadDigest = Digest("tampered") })
			},
			want: ErrForeignPartial,
		},
		{
			name: "wrong-engine-version",
			corrupt: func(t *testing.T, path string) {
				rewritePartial(t, path, func(p *Partial) { p.Manifest.Engine = "orojenesis/0" })
			},
			want: ErrForeignPartial,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "p.json")
			completeRun(t, job, path)
			tc.corrupt(t, path)

			if errors.Is(tc.want, ErrCorruptPartial) {
				if _, err := ReadPartial(path); !errors.Is(err, ErrCorruptPartial) {
					t.Fatalf("ReadPartial err = %v, want ErrCorruptPartial", err)
				}
			}
			_, _, err := Run(context.Background(), job, RunOptions{Path: path, CheckpointEvery: 10})
			if !errors.Is(err, tc.want) {
				t.Fatalf("Run over corrupted checkpoint: err = %v, want %v", err, tc.want)
			}
			// The corrupted evidence must still be there, untouched.
			if _, serr := os.Stat(path); serr != nil {
				t.Fatalf("refused run removed the corrupt file: %v", serr)
			}
		})
	}
}

// rewritePartial loads a valid partial, applies mutate, and writes it
// back — corruption that keeps the JSON well-formed.
func rewritePartial(t *testing.T, path string, mutate func(*Partial)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p Partial
	if err := json.Unmarshal(data, &p); err != nil {
		t.Fatal(err)
	}
	mutate(&p)
	out, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedFailureNeverCorrupts is the core robustness property: for a
// fault injected into any operation of the checkpoint sequence, the run
// fails with a named, non-context error, whatever is on disk at the
// checkpoint path is still a readable partial (or absent), and simply
// rerunning completes with the byte-identical curve.
func TestInjectedFailureNeverCorrupts(t *testing.T) {
	const items = 100
	plan := Plan{Index: 0, Count: 1}
	want := completeRun(t, syntheticJob(items, plan), filepath.Join(t.TempDir(), "clean.json"))
	errBoom := errors.New("injected fault")

	for _, op := range []Op{OpCreateTemp, OpWrite, OpSync, OpClose, OpRename, OpSyncDir} {
		for _, nth := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/flush-%d", op, nth), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "p.json")
				ffs := &FaultFS{Fail: failNth(op, nth, errBoom)}
				_, _, err := Run(context.Background(), syntheticJob(items, plan),
					RunOptions{Path: path, CheckpointEvery: 10, FS: ffs})
				if err == nil {
					t.Fatalf("run succeeded despite injected %s failure", op)
				}
				if !errors.Is(err, errBoom) {
					t.Fatalf("err = %v does not name the injected fault", err)
				}
				if errors.Is(err, ErrCorruptPartial) || errors.Is(err, ErrForeignPartial) {
					t.Fatalf("transient I/O failure misclassified as %v", err)
				}

				// Whatever is on disk must be absent or a valid resumable
				// checkpoint — never a torn artifact.
				if _, serr := os.Stat(path); serr == nil {
					if _, rerr := ReadPartial(path); rerr != nil {
						t.Fatalf("checkpoint at %s is corrupt after injected %s failure: %v", path, op, rerr)
					}
				}

				// Retry on a clean filesystem completes, byte-identically.
				p, stats, err := Run(context.Background(), syntheticJob(items, plan),
					RunOptions{Path: path, CheckpointEvery: 10})
				if err != nil {
					t.Fatalf("retry failed: %v", err)
				}
				if nth > 1 && !stats.Resumed {
					t.Fatal("retry after a post-first-flush failure did not resume from the surviving checkpoint")
				}
				if got := curveBytes(t, p.Curve); got != want {
					t.Fatalf("retry curve differs from clean run\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}

// TestFlushSyncsFileBeforeRenameAndDirAfter pins the durability ordering
// of the atomic checkpoint flush via the FaultFS operation log: within
// each flush, the temp file is synced before the rename commits it, and
// the directory is synced after.
func TestFlushSyncsFileBeforeRenameAndDirAfter(t *testing.T) {
	ffs := &FaultFS{}
	path := filepath.Join(t.TempDir(), "p.json")
	if _, _, err := Run(context.Background(), syntheticJob(100, Plan{Index: 0, Count: 1}),
		RunOptions{Path: path, CheckpointEvery: 10, FS: ffs}); err != nil {
		t.Fatal(err)
	}
	flushes := 0
	syncedSinceTemp, renamedSinceTemp := false, false
	for _, entry := range ffs.Log() {
		op := Op(strings.SplitN(entry, " ", 2)[0])
		switch op {
		case OpCreateTemp:
			syncedSinceTemp, renamedSinceTemp = false, false
		case OpSync:
			if renamedSinceTemp {
				t.Fatalf("file sync after rename in flush %d:\n%s", flushes, strings.Join(ffs.Log(), "\n"))
			}
			syncedSinceTemp = true
		case OpRename:
			if !syncedSinceTemp {
				t.Fatalf("rename without a prior file sync in flush %d:\n%s", flushes, strings.Join(ffs.Log(), "\n"))
			}
			renamedSinceTemp = true
		case OpSyncDir:
			if !renamedSinceTemp {
				t.Fatalf("directory sync before rename in flush %d:\n%s", flushes, strings.Join(ffs.Log(), "\n"))
			}
			flushes++
		}
	}
	if flushes < 2 {
		t.Fatalf("observed %d complete flushes, want at least 2", flushes)
	}
	if ffs.Count(OpSync) < flushes || ffs.Count(OpSyncDir) < flushes {
		t.Fatalf("sync counts (%d file, %d dir) below flush count %d",
			ffs.Count(OpSync), ffs.Count(OpSyncDir), flushes)
	}
}

// TestRunSweepsStaleTemps: temp files a killed predecessor left behind for
// this checkpoint target are removed on startup; a sibling shard's temps
// in the same directory are not touched.
func TestRunSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	stale := []string{
		filepath.Join(dir, "p.json.tmp123"),
		filepath.Join(dir, "p.json.tmp999999"),
	}
	sibling := filepath.Join(dir, "other.json.tmp42")
	for _, f := range append(stale, sibling) {
		if err := os.WriteFile(f, []byte("torn half-written checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, stats, err := Run(context.Background(), syntheticJob(50, Plan{Index: 0, Count: 1}),
		RunOptions{Path: path, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SweptTemps != len(stale) {
		t.Fatalf("swept %d stale temps, want %d", stats.SweptTemps, len(stale))
	}
	for _, f := range stale {
		if _, err := os.Stat(f); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("stale temp %s survived the sweep", f)
		}
	}
	if _, err := os.Stat(sibling); err != nil {
		t.Fatalf("sibling shard's temp was swept: %v", err)
	}
}

// TestKillAtIndexThenResume: a shard killed at a deterministic traversal
// index resumes from its last flushed checkpoint and finishes with the
// byte-identical curve; the kill never repeats completed blocks.
func TestKillAtIndexThenResume(t *testing.T) {
	const items = 100
	plan := Plan{Index: 0, Count: 1}
	want := completeRun(t, syntheticJob(items, plan), filepath.Join(t.TempDir(), "clean.json"))

	errKill := errors.New("simulated crash")
	path := filepath.Join(t.TempDir(), "p.json")
	job := KillAtIndex(syntheticJob(items, plan), 47, errKill)

	_, _, err := Run(context.Background(), job, RunOptions{Path: path, CheckpointEvery: 10})
	if !errors.Is(err, errKill) {
		t.Fatalf("err = %v, want the kill error", err)
	}
	cp, err := ReadPartial(path)
	if err != nil {
		t.Fatalf("no resumable checkpoint after kill: %v", err)
	}
	if got := cp.Manifest.CompletedThrough; got != 40 {
		t.Fatalf("checkpoint at %d, want 40 (last flushed block before index 47)", got)
	}

	// The KillAtIndex wrapper only fires once: the resume runs clean.
	p, stats, err := Run(context.Background(), job, RunOptions{Path: path, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Resumed || stats.ResumedFrom != 40 {
		t.Fatalf("resume stats %+v, want Resumed at 40", stats)
	}
	if got := curveBytes(t, p.Curve); got != want {
		t.Fatalf("kill+resume curve differs from clean run\n got %s\nwant %s", got, want)
	}
}

// TestCancelDuringBlockLeavesResumableCheckpoint: a context cancelled
// inside a checkpoint block (the SIGINT/SIGTERM path) surrenders with the
// last flushed checkpoint intact, and a rerun resumes to the
// byte-identical result.
func TestCancelDuringBlockLeavesResumableCheckpoint(t *testing.T) {
	const items = 100
	plan := Plan{Index: 0, Count: 1}
	want := completeRun(t, syntheticJob(items, plan), filepath.Join(t.TempDir(), "clean.json"))

	path := filepath.Join(t.TempDir(), "p.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := syntheticJob(items, plan)
	inner := job.Derive
	job.Derive = func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
		if lo >= 30 {
			// Cancel mid-block: the derive observes it and aborts, like the
			// traversal engine does at chunk granularity.
			cancel()
		}
		return inner(ctx, lo, hi)
	}

	p, _, err := Run(ctx, job, RunOptions{Path: path, CheckpointEvery: 10})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if p == nil || p.Manifest.Complete() {
		t.Fatalf("interrupted run returned %+v, want an incomplete resumable partial", p)
	}
	cp, rerr := ReadPartial(path)
	if rerr != nil {
		t.Fatalf("checkpoint unreadable after cancellation: %v", rerr)
	}
	if cp.Manifest.CompletedThrough != p.Manifest.CompletedThrough {
		t.Fatalf("disk checkpoint at %d, returned partial at %d",
			cp.Manifest.CompletedThrough, p.Manifest.CompletedThrough)
	}

	done, stats, err := Run(context.Background(), syntheticJob(items, plan),
		RunOptions{Path: path, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Resumed {
		t.Fatal("rerun did not resume from the interrupt checkpoint")
	}
	if got := curveBytes(t, done.Curve); got != want {
		t.Fatalf("interrupt+resume curve differs from clean run\n got %s\nwant %s", got, want)
	}
}

// TestDegradedMergeAnnotations: a best-effort merge over missing and
// incomplete shards reports exactly what it covered, and its JSON
// serialization always carries the degraded annotation.
func TestDegradedMergeAnnotations(t *testing.T) {
	const items = 90
	dir := t.TempDir()
	// Shard 0 of 3: complete. Shard 1: absent. Shard 2: interrupted early.
	p0path := filepath.Join(dir, "s0.json")
	completeRun(t, syntheticJob(items, Plan{Index: 0, Count: 3}), p0path)

	p2path := filepath.Join(dir, "s2.json")
	errKill := errors.New("kill")
	killed := KillAtIndex(syntheticJob(items, Plan{Index: 2, Count: 3}), 75, errKill)
	if _, _, err := Run(context.Background(), killed, RunOptions{Path: p2path, CheckpointEvery: 5}); !errors.Is(err, errKill) {
		t.Fatalf("setup kill: %v", err)
	}

	d, err := MergeDegradedFiles(p0path, p2path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Complete() {
		t.Fatal("degraded merge over missing+incomplete shards claims completeness")
	}
	// Shard 0 covers [0,30); shard 2 covers [60,75) (last flush before 75).
	if d.CoveredIndices != 45 || d.Items != items {
		t.Fatalf("covered %d of %d, want 45 of %d", d.CoveredIndices, d.Items, items)
	}
	if d.CoveredFraction != 0.5 {
		t.Fatalf("covered fraction %v, want 0.5", d.CoveredFraction)
	}
	if len(d.MissingShards) != 1 || d.MissingShards[0] != 1 {
		t.Fatalf("missing shards %v, want [1]", d.MissingShards)
	}
	if len(d.IncompleteShards) != 1 || d.IncompleteShards[0] != 2 {
		t.Fatalf("incomplete shards %v, want [2]", d.IncompleteShards)
	}

	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"degraded":true`) {
		t.Fatalf("degraded envelope lacks the annotation: %s", data)
	}
	var back Degraded
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.CoveredFraction != d.CoveredFraction || back.Curve == nil {
		t.Fatalf("degraded envelope did not round-trip: %+v", back)
	}

	// The strict merge must still refuse the same set.
	if _, err := MergeFiles(p0path, p2path); err == nil {
		t.Fatal("strict merge accepted an incomplete shard set")
	}
}

// TestMergeDegradedRefusesForeign: best-effort never means merging
// partials of different derivations.
func TestMergeDegradedRefusesForeign(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	completeRun(t, syntheticJob(90, Plan{Index: 0, Count: 3}), a)
	other := syntheticJob(90, Plan{Index: 1, Count: 3})
	other.WorkloadDigest = Digest("a different workload")
	completeRun(t, other, b)
	if _, err := MergeDegradedFiles(a, b); !errors.Is(err, ErrForeignPartial) {
		t.Fatalf("err = %v, want ErrForeignPartial", err)
	}
}
