package shard

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/multilevel"
	"repro/internal/pareto"
)

// BoundJob builds the shard job for a single-Einsum bound derivation:
// plan slice of bound.Space(e, opts), derived with bound.DeriveRange.
// Every fleet member constructing its job this way (same workload, same
// options, any worker count) produces partials that merge; workers only
// affects how fast one shard runs.
func BoundJob(e *einsum.Einsum, opts bound.Options, plan Plan) (Job, error) {
	if err := e.Validate(); err != nil {
		return Job{}, err
	}
	if err := opts.Validate(); err != nil {
		return Job{}, err
	}
	if err := plan.Validate(); err != nil {
		return Job{}, err
	}
	return Job{
		Kind:           KindBound,
		Workload:       e.String(),
		WorkloadDigest: Digest(e.Canonical()),
		OptionsDigest:  Digest(opts.Canonical()),
		Items:          bound.Space(e, opts),
		Plan:           plan,
		Derive: func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			r, err := bound.DeriveRange(ctx, e, opts, lo, hi)
			if err != nil {
				return nil, 0, err
			}
			return r.Curve, r.Stats.MappingsEvaluated, nil
		},
	}, nil
}

// FusionTiledJob builds the shard job for a chain's tiled-fusion sweep:
// plan slice of fusion.TiledFusionSpace(c), derived with
// fusion.TiledFusionRange. The FFMT template sweep has no
// result-affecting options, so the options digest covers only the kind.
func FusionTiledJob(c *fusion.Chain, plan Plan, workers int) (Job, error) {
	if err := plan.Validate(); err != nil {
		return Job{}, err
	}
	space, err := fusion.TiledFusionSpace(c)
	if err != nil {
		return Job{}, err
	}
	return Job{
		Kind:           KindFusionTiled,
		Workload:       fmt.Sprintf("%s: %d ops over M=%d", c.Name, len(c.Ops), c.M),
		WorkloadDigest: Digest(c.Canonical()),
		OptionsDigest:  Digest("fusion-tiled{}"),
		Items:          space,
		Plan:           plan,
		Derive: func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			curve, ts, err := fusion.TiledFusionRange(ctx, c, lo, hi, workers)
			if err != nil {
				return nil, 0, err
			}
			return curve, ts.Evaluated, nil
		},
	}, nil
}

// SegmentationCanonical renders the full workload identity of a
// segmentation study as the stable string hashed into the workload
// digest: the chain itself plus every per-op standalone curve. The per-op
// curves are derivation inputs (single-op segments reuse them verbatim),
// so two studies agree only when both the chain and the curves do. Shared
// by SegmentationJob and the serve package so the direct and sharded
// paths agree on digests.
func SegmentationCanonical(c *fusion.Chain, perOp []*pareto.Curve) string {
	var b strings.Builder
	b.WriteString("segmentation{chain=")
	b.WriteString(c.Canonical())
	b.WriteString(" per_op=[")
	for i, cv := range perOp {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(cv.Canonical())
	}
	b.WriteString("]}")
	return b.String()
}

// SegmentationJob builds the shard job for a chain's segmentation study:
// plan slice of fusion.SegmentationSpace(c), derived with a
// fusion.SegmentationSweep held across checkpoint blocks so fused
// sub-chain curves are memoized for the life of the process. The memo is
// derived state and is never checkpointed: a resumed shard rebuilds it
// lazily from the masks it still has to evaluate (recompute-on-resume;
// see docs/shard-format.md). The sweep itself has no result-affecting
// options, so the options digest covers only the kind.
func SegmentationJob(c *fusion.Chain, perOp []*pareto.Curve, plan Plan, workers int) (Job, error) {
	if err := plan.Validate(); err != nil {
		return Job{}, err
	}
	sweep, err := fusion.NewSegmentationSweep(c, perOp)
	if err != nil {
		return Job{}, err
	}
	return Job{
		Kind:           KindSegmentation,
		Workload:       fmt.Sprintf("%s: %d-op segmentation study over M=%d", c.Name, len(c.Ops), c.M),
		WorkloadDigest: Digest(SegmentationCanonical(c, perOp)),
		OptionsDigest:  Digest("segmentation{}"),
		Items:          sweep.Space(),
		Plan:           plan,
		Derive: func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			curve, ts, err := sweep.Range(ctx, lo, hi, workers)
			if err != nil {
				return nil, 0, err
			}
			return curve, ts.Evaluated, nil
		},
	}, nil
}

// MultiLevelCanonical renders the result-affecting options of a
// three-level derivation as the stable string hashed into the options
// digest: the L1 capacity is part of the derivation's identity (it gates
// the feasibility filter), worker counts are not. Shared by MultiLevelJob
// and the serve package so the direct and sharded paths agree on digests.
func MultiLevelCanonical(l1CapBytes int64) string {
	return fmt.Sprintf("multilevel{l1_cap_bytes=%d}", l1CapBytes)
}

// MultiLevelJob builds the shard job for a three-level (L1/L2/DRAM) joint
// bound derivation: plan slice of multilevel.Space(e), derived with
// multilevel.DeriveRange. The partial frontier stores the DRAM curve —
// the headline three-level ski slope; partials over a disjoint cover
// Pareto-union (Merge) to the byte-identical full-range DRAM frontier,
// because union-of-frontiers equals frontier-of-union. The L2 curve and
// the joint DRAM/L2 table are in-process refinements (multilevel.Merge
// recombines those when the caller holds the Results themselves) and are
// not serialized into the partial format.
func MultiLevelJob(e *einsum.Einsum, l1CapBytes int64, opts multilevel.Options, plan Plan) (Job, error) {
	if err := plan.Validate(); err != nil {
		return Job{}, err
	}
	if l1CapBytes < 1 {
		return Job{}, fmt.Errorf("shard: multilevel job: non-positive L1 capacity %d", l1CapBytes)
	}
	space, err := multilevel.Space(e)
	if err != nil {
		return Job{}, err
	}
	return Job{
		Kind:           KindMultiLevel,
		Workload:       fmt.Sprintf("%s three-level L1=%dB", e.String(), l1CapBytes),
		WorkloadDigest: Digest(e.Canonical()),
		OptionsDigest:  Digest(MultiLevelCanonical(l1CapBytes)),
		Items:          space,
		Plan:           plan,
		Derive: func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			r, err := multilevel.DeriveRange(ctx, e, l1CapBytes, lo, hi, opts)
			if err != nil {
				return nil, 0, err
			}
			return r.DRAM, r.Mappings, nil
		},
	}, nil
}
