package shard

import (
	"context"
	"fmt"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/fusion"
	"repro/internal/pareto"
)

// BoundJob builds the shard job for a single-Einsum bound derivation:
// plan slice of bound.Space(e, opts), derived with bound.DeriveRange.
// Every fleet member constructing its job this way (same workload, same
// options, any worker count) produces partials that merge; workers only
// affects how fast one shard runs.
func BoundJob(e *einsum.Einsum, opts bound.Options, plan Plan) (Job, error) {
	if err := e.Validate(); err != nil {
		return Job{}, err
	}
	if err := opts.Validate(); err != nil {
		return Job{}, err
	}
	if err := plan.Validate(); err != nil {
		return Job{}, err
	}
	return Job{
		Kind:           KindBound,
		Workload:       e.String(),
		WorkloadDigest: Digest(e.Canonical()),
		OptionsDigest:  Digest(opts.Canonical()),
		Items:          bound.Space(e, opts),
		Plan:           plan,
		Derive: func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			r, err := bound.DeriveRange(ctx, e, opts, lo, hi)
			if err != nil {
				return nil, 0, err
			}
			return r.Curve, r.Stats.MappingsEvaluated, nil
		},
	}, nil
}

// FusionTiledJob builds the shard job for a chain's tiled-fusion sweep:
// plan slice of fusion.TiledFusionSpace(c), derived with
// fusion.TiledFusionRange. The FFMT template sweep has no
// result-affecting options, so the options digest covers only the kind.
func FusionTiledJob(c *fusion.Chain, plan Plan, workers int) (Job, error) {
	if err := plan.Validate(); err != nil {
		return Job{}, err
	}
	space, err := fusion.TiledFusionSpace(c)
	if err != nil {
		return Job{}, err
	}
	return Job{
		Kind:           KindFusionTiled,
		Workload:       fmt.Sprintf("%s: %d ops over M=%d", c.Name, len(c.Ops), c.M),
		WorkloadDigest: Digest(c.Canonical()),
		OptionsDigest:  Digest("fusion-tiled{}"),
		Items:          space,
		Plan:           plan,
		Derive: func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			curve, ts, err := fusion.TiledFusionRange(ctx, c, lo, hi, workers)
			if err != nil {
				return nil, 0, err
			}
			return curve, ts.Evaluated, nil
		},
	}, nil
}
