package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/pareto"
)

// Named error classes the supervisor (internal/supervise) routes on.
// Every failure Run or ReadPartial reports wraps exactly one of these (or
// a context error), so callers can decide between quarantine-and-rederive,
// retry, and give-up with errors.Is instead of string matching.
var (
	// ErrCorruptPartial marks a file that is not a readable partial
	// frontier of a supported format: truncated or torn JSON, a zeroed
	// tail, a failed structural validation, an unknown format version, or
	// invalid curve annotations. The artifact is evidence of a problem;
	// the safe automated response is quarantine (rename aside) followed
	// by re-derivation, never silent overwrite.
	ErrCorruptPartial = errors.New("corrupt partial frontier")

	// ErrForeignPartial marks a structurally valid partial that belongs
	// to a different derivation (workload/options digest, engine, kind,
	// space size or shard count mismatch) or to a different shard of the
	// same plan. Resuming from it would poison the curve.
	ErrForeignPartial = errors.New("foreign partial frontier")
)

// FormatVersion is the partial-frontier file schema version written by
// this package. Version 2 added the embedded workload spec (the Spec
// manifest field); version-1 files — identical except for that field —
// are still readable, and Run transparently upgrades them on resume.
// Readers refuse versions outside [MinFormatVersion, FormatVersion].
const FormatVersion = 2

// MinFormatVersion is the oldest partial-frontier schema this package
// still reads: version 1, the pre-spec layout.
const MinFormatVersion = 1

// Engine tags the derivation engine revision. Bump it whenever an
// evaluator or enumeration-order change alters derived curves, so stale
// partials from an older binary refuse to merge with fresh ones instead
// of silently producing a curve no single engine version would derive.
const Engine = "orojenesis/1"

// Kind names the derivation path a partial frontier came from. Partial
// frontiers of different kinds never merge, even over the same workload:
// a bound curve and a tiled-fusion curve answer different questions.
type Kind string

// The derivation paths with sharded index spaces.
const (
	KindBound        Kind = "bound"        // bound.DeriveRange over a single Einsum's mapspace
	KindFusionTiled  Kind = "fusion-tiled" // fusion.TiledFusionRange over a chain's FFMT template space
	KindMultiLevel   Kind = "multilevel"   // multilevel.DeriveRange over the three-split combination space (DRAM frontier)
	KindSegmentation Kind = "segmentation" // fusion.SegmentationRange over a chain's 2^(n-1) cut-pattern mask space
)

// Manifest is the partial-frontier file header: everything a merge needs
// to decide whether two partials describe shares of the same derivation,
// and everything a resume needs to continue a killed shard.
type Manifest struct {
	// FormatVersion and Engine pin the file schema and the derivation
	// engine revision (see the package constants).
	FormatVersion int    `json:"format_version"`
	Engine        string `json:"engine"`

	// Kind is the derivation path (bound, fusion-tiled).
	Kind Kind `json:"kind"`

	// Workload is a human-readable workload label. It is informational
	// only; compatibility is decided by WorkloadDigest.
	Workload string `json:"workload"`

	// WorkloadDigest and OptionsDigest are Digest values over the
	// canonical workload and result-affecting-options encodings. Partials
	// merge only when both agree.
	WorkloadDigest string `json:"workload_digest"`
	OptionsDigest  string `json:"options_digest"`

	// ShardIndex (0-based) of ShardCount identifies this shard's place in
	// the plan; Items is the size of the full flat index space, so every
	// reader can recompute the expected Plan.Slice.
	ShardIndex int   `json:"shard_index"`
	ShardCount int   `json:"shard_count"`
	Items      int64 `json:"items"`

	// RangeLo and RangeHi are the shard's evaluated-index range [lo, hi),
	// as assigned by Plan.Slice(Items).
	RangeLo int64 `json:"range_lo"`
	RangeHi int64 `json:"range_hi"`

	// CompletedThrough is the resumable high-water mark: every global
	// index in [RangeLo, CompletedThrough) is reflected in the stored
	// curve. A shard is complete when CompletedThrough == RangeHi.
	CompletedThrough int64 `json:"completed_through"`

	// Spec is the canonically encoded workload spec
	// (internal/workload.Spec) the job was compiled from, carried so a
	// partial frontier alone suffices to rebuild and finish its job in a
	// process that never saw the original request (shardmerge -resume,
	// spool-orphan recovery). Empty on format-version-1 files; never part
	// of compatibility decisions — the digests are authoritative.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Complete reports whether the shard finished its whole slice.
func (m *Manifest) Complete() bool { return m.CompletedThrough >= m.RangeHi }

// Validate reports structurally broken manifests (before any
// compatibility question arises): unknown versions, inverted ranges, or a
// range that disagrees with the shard plan.
func (m *Manifest) Validate() error {
	if m.FormatVersion < MinFormatVersion || m.FormatVersion > FormatVersion {
		return fmt.Errorf("shard: manifest format version %d, this reader supports %d through %d",
			m.FormatVersion, MinFormatVersion, FormatVersion)
	}
	if m.Engine == "" {
		return fmt.Errorf("shard: manifest missing engine version")
	}
	if m.Kind != KindBound && m.Kind != KindFusionTiled && m.Kind != KindMultiLevel && m.Kind != KindSegmentation {
		return fmt.Errorf("shard: manifest has unknown kind %q", m.Kind)
	}
	if m.WorkloadDigest == "" || m.OptionsDigest == "" {
		return fmt.Errorf("shard: manifest missing workload/options digest")
	}
	p := Plan{Index: m.ShardIndex, Count: m.ShardCount}
	if err := p.Validate(); err != nil {
		return err
	}
	if m.Items < 0 {
		return fmt.Errorf("shard: manifest has negative index space %d", m.Items)
	}
	if lo, hi := p.Slice(m.Items); lo != m.RangeLo || hi != m.RangeHi {
		return fmt.Errorf("shard: manifest range [%d, %d) does not match plan %s of %d items (want [%d, %d))",
			m.RangeLo, m.RangeHi, p, m.Items, lo, hi)
	}
	if m.CompletedThrough < m.RangeLo || m.CompletedThrough > m.RangeHi {
		return fmt.Errorf("shard: manifest completed-through %d outside range [%d, %d]",
			m.CompletedThrough, m.RangeLo, m.RangeHi)
	}
	return nil
}

// CompatibleWith reports with a descriptive error why two manifests do not
// describe shares of one derivation: any difference in engine, kind,
// digests, index-space size or shard count. Shard index and completion
// state are deliberately not compared — distinct shards of one plan are
// exactly what merges want. Format version is not compared either: both
// manifests already passed Validate's supported-version check, and the
// supported versions differ only in the informational Spec field, so a
// legacy version-1 shard merges cleanly with an upgraded version-2 one.
func (m *Manifest) CompatibleWith(o *Manifest) error {
	switch {
	case m.Engine != o.Engine:
		return fmt.Errorf("engine %q vs %q", m.Engine, o.Engine)
	case m.Kind != o.Kind:
		return fmt.Errorf("kind %q vs %q", m.Kind, o.Kind)
	case m.WorkloadDigest != o.WorkloadDigest:
		return fmt.Errorf("workload digest %.12s… vs %.12s… (different workloads)", m.WorkloadDigest, o.WorkloadDigest)
	case m.OptionsDigest != o.OptionsDigest:
		return fmt.Errorf("options digest %.12s… vs %.12s… (different derivation options)", m.OptionsDigest, o.OptionsDigest)
	case m.Items != o.Items:
		return fmt.Errorf("index space %d vs %d items", m.Items, o.Items)
	case m.ShardCount != o.ShardCount:
		return fmt.Errorf("shard count %d vs %d", m.ShardCount, o.ShardCount)
	}
	return nil
}

// Partial is one shard's partial frontier: the manifest plus the Pareto
// curve over every evaluated index in [RangeLo, CompletedThrough). The
// curve carries the workload annotations (AlgoMinBytes,
// TotalOperandBytes), which depend only on the workload and are therefore
// already final on every partial.
type Partial struct {
	Manifest Manifest      `json:"manifest"`
	Curve    *pareto.Curve `json:"curve"`
}

// WritePartial atomically and durably replaces path with the serialized
// partial: the JSON is written to a temporary file in the same directory,
// fsynced, renamed over path, and the directory is fsynced. The rename
// makes a process kill mid-flush leave the previous checkpoint intact
// rather than a truncated file; the two syncs make a committed checkpoint
// survive a host crash — without the file sync the rename can land before
// the data (a zero-length or torn "committed" file), and without the
// directory sync the rename itself can be lost.
func WritePartial(path string, p *Partial) error {
	return writePartial(osFS{}, path, p)
}

// writePartial is WritePartial over an injectable filesystem.
func writePartial(fsys FS, path string, p *Partial) error {
	if err := p.Manifest.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("shard: encoding partial: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: writing partial: %w", err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		// Data must be durable before the rename commits it: sync the
		// file first, then close.
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		fsys.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("shard: writing partial %s: %w", path, werr)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		fsys.Remove(tmp.Name())
		return fmt.Errorf("shard: writing partial %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: syncing directory of %s: %w", path, err)
	}
	return nil
}

// ReadPartial loads and structurally validates a partial-frontier file.
// A file that exists but cannot be parsed or validated yields an error
// wrapping ErrCorruptPartial; a missing file yields the underlying
// fs.ErrNotExist.
func ReadPartial(path string) (*Partial, error) {
	return readPartial(osFS{}, path)
}

// readPartial is ReadPartial over an injectable filesystem.
func readPartial(fsys FS, path string) (*Partial, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: reading partial: %w", err)
	}
	var p Partial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("shard: partial %s: %w: %w", path, ErrCorruptPartial, err)
	}
	if err := p.Manifest.Validate(); err != nil {
		return nil, fmt.Errorf("shard: partial %s: %w: %w", path, ErrCorruptPartial, err)
	}
	if p.Curve == nil {
		return nil, fmt.Errorf("shard: partial %s: %w: missing curve", path, ErrCorruptPartial)
	}
	return &p, nil
}

// sweepStaleTemps removes leftover temp files of a previous kill for the
// given checkpoint target: WritePartial names its temp files
// "<base>.tmp<random>" in the target's directory, so a process killed
// between CreateTemp and Rename leaks exactly those. Only the target's
// own temps are touched — sibling shards checkpointing into the same
// directory are unaffected. Sweep errors are reported but harmless:
// leftover temps cost disk, never correctness.
func sweepStaleTemps(fsys FS, path string) (removed []string, err error) {
	matches, err := fsys.Glob(filepath.Join(filepath.Dir(path), filepath.Base(path)+".tmp*"))
	if err != nil {
		return nil, fmt.Errorf("shard: sweeping stale temps for %s: %w", path, err)
	}
	for _, m := range matches {
		if rerr := fsys.Remove(m); rerr != nil {
			err = fmt.Errorf("shard: sweeping stale temp %s: %w", m, rerr)
			continue
		}
		removed = append(removed, m)
	}
	return removed, err
}
