package shard

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/pareto"
)

func TestParsePlan(t *testing.T) {
	cases := []struct {
		in   string
		want Plan
		ok   bool
	}{
		{"1/4", Plan{0, 4}, true},
		{"4/4", Plan{3, 4}, true},
		{"1/1", Plan{0, 1}, true},
		{" 2 / 3 ", Plan{1, 3}, true},
		{"0/4", Plan{}, false},
		{"5/4", Plan{}, false},
		{"4", Plan{}, false},
		{"a/4", Plan{}, false},
		{"1/0", Plan{}, false},
		{"-1/4", Plan{}, false},
	}
	for _, c := range cases {
		got, err := ParsePlan(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePlan(%q) error = %v, want ok=%t", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePlan(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestPlanSliceCoversExactly(t *testing.T) {
	for _, items := range []int64{0, 1, 7, 8, 100, 101, 1023} {
		for _, n := range []int{1, 2, 3, 8, 16} {
			var next int64
			for k := 0; k < n; k++ {
				lo, hi := (Plan{k, n}).Slice(items)
				if lo != next {
					t.Fatalf("items=%d n=%d shard %d: lo=%d, want %d (gap or overlap)", items, n, k, lo, next)
				}
				if hi < lo {
					t.Fatalf("items=%d n=%d shard %d: inverted range [%d, %d)", items, n, k, lo, hi)
				}
				if sz := hi - lo; sz > items/int64(n)+1 {
					t.Fatalf("items=%d n=%d shard %d: unbalanced size %d", items, n, k, sz)
				}
				next = hi
			}
			if next != items {
				t.Fatalf("items=%d n=%d: shards cover through %d", items, n, next)
			}
		}
	}
}

func TestDigestStable(t *testing.T) {
	a, b := Digest("x"), Digest("x")
	if a != b {
		t.Fatalf("Digest not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("Digest length %d, want 64 hex chars", len(a))
	}
	if Digest("x") == Digest("y") {
		t.Fatal("distinct inputs collided")
	}
}

func testManifest() Manifest {
	return Manifest{
		FormatVersion:    FormatVersion,
		Engine:           Engine,
		Kind:             KindBound,
		Workload:         "test",
		WorkloadDigest:   Digest("workload"),
		OptionsDigest:    Digest("options"),
		ShardIndex:       0,
		ShardCount:       2,
		Items:            10,
		RangeLo:          0,
		RangeHi:          5,
		CompletedThrough: 5,
	}
}

func TestManifestValidate(t *testing.T) {
	m := testManifest()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	breakers := map[string]func(*Manifest){
		"format version": func(m *Manifest) { m.FormatVersion = 99 },
		"engine":         func(m *Manifest) { m.Engine = "" },
		"kind":           func(m *Manifest) { m.Kind = "frob" },
		"digest":         func(m *Manifest) { m.WorkloadDigest = "" },
		"plan":           func(m *Manifest) { m.ShardIndex = 2 },
		"range":          func(m *Manifest) { m.RangeHi = 7 },
		"completed":      func(m *Manifest) { m.CompletedThrough = 6 },
	}
	for name, breakIt := range breakers {
		m := testManifest()
		breakIt(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("broken manifest (%s) accepted", name)
		}
	}
}

func TestManifestCompatibility(t *testing.T) {
	a := testManifest()
	b := testManifest()
	b.ShardIndex, b.RangeLo, b.RangeHi, b.CompletedThrough = 1, 5, 10, 10
	if err := a.CompatibleWith(&b); err != nil {
		t.Fatalf("sibling shards reported incompatible: %v", err)
	}
	for name, breakIt := range map[string]func(*Manifest){
		"engine":   func(m *Manifest) { m.Engine = "orojenesis/0" },
		"kind":     func(m *Manifest) { m.Kind = KindFusionTiled },
		"workload": func(m *Manifest) { m.WorkloadDigest = Digest("other") },
		"options":  func(m *Manifest) { m.OptionsDigest = Digest("other") },
		"items":    func(m *Manifest) { m.Items = 11 },
		"count":    func(m *Manifest) { m.ShardCount = 3 },
	} {
		b := testManifest()
		breakIt(&b)
		if err := a.CompatibleWith(&b); err == nil {
			t.Errorf("incompatible manifests (%s differ) accepted", name)
		}
	}
}

// TestLegacyFormatVersionStillReads pins backward compatibility with
// format-version-1 partials (pre-spec layout): they validate, merge with
// each other, and merge with an upgraded version-2 sibling.
func TestLegacyFormatVersionStillReads(t *testing.T) {
	mk := func(k int, version int) *Partial {
		m := testManifest()
		m.FormatVersion = version
		m.ShardIndex, m.ShardCount = k, 2
		m.RangeLo, m.RangeHi = (Plan{k, 2}).Slice(m.Items)
		m.CompletedThrough = m.RangeHi
		if version >= 2 {
			m.Spec = []byte(`{"kind":"bound"}`)
		}
		return &Partial{Manifest: m, Curve: pareto.FromPoints([]pareto.Point{{BufferBytes: 1, AccessBytes: 1}})}
	}
	v1a, v1b := mk(0, 1), mk(1, 1)
	if err := v1a.Manifest.Validate(); err != nil {
		t.Fatalf("version-1 manifest rejected: %v", err)
	}
	if _, err := Merge(v1a, v1b); err != nil {
		t.Fatalf("version-1 partials refuse to merge: %v", err)
	}
	if _, err := Merge(v1a, mk(1, 2)); err != nil {
		t.Fatalf("mixed version-1/version-2 partials refuse to merge: %v", err)
	}
	future := mk(0, 1)
	future.Manifest.FormatVersion = FormatVersion + 1
	if err := future.Manifest.Validate(); err == nil {
		t.Fatal("future format version accepted")
	}
}

func TestPartialRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	curve := pareto.FromPoints([]pareto.Point{{BufferBytes: 4, AccessBytes: 100}, {BufferBytes: 8, AccessBytes: 50}})
	curve.AlgoMinBytes = 40
	curve.TotalOperandBytes = 60
	p := &Partial{Manifest: testManifest(), Curve: curve}
	if err := WritePartial(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Manifest, p.Manifest) {
		t.Fatalf("manifest round trip: got %+v, want %+v", got.Manifest, p.Manifest)
	}
	if got.Curve.Len() != 2 || got.Curve.AlgoMinBytes != 40 || got.Curve.TotalOperandBytes != 60 {
		t.Fatalf("curve round trip: got %v (annotations %d, %d)", got.Curve, got.Curve.AlgoMinBytes, got.Curve.TotalOperandBytes)
	}
	// No temp files may linger after a successful atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after write, want only the partial", len(entries))
	}
}

func TestReadPartialRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte("{\"manifest\":{}}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPartial(path); err == nil {
		t.Fatal("structurally invalid partial accepted")
	}
}

func TestMergeRefusals(t *testing.T) {
	mkPartial := func(k, n int, mutate func(*Manifest)) *Partial {
		m := testManifest()
		m.ShardIndex, m.ShardCount = k, n
		m.RangeLo, m.RangeHi = (Plan{k, n}).Slice(m.Items)
		m.CompletedThrough = m.RangeHi
		if mutate != nil {
			mutate(&m)
		}
		return &Partial{Manifest: m, Curve: pareto.FromPoints([]pareto.Point{{BufferBytes: 1, AccessBytes: 1}})}
	}

	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge(mkPartial(0, 2, nil)); err == nil || !strings.Contains(err.Error(), "plan has 2 shards") {
		t.Errorf("missing shard accepted or unclear error: %v", err)
	}
	if _, err := Merge(mkPartial(0, 2, nil), mkPartial(0, 2, nil)); err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Errorf("duplicate shard accepted or unclear error: %v", err)
	}
	other := mkPartial(1, 2, func(m *Manifest) { m.WorkloadDigest = Digest("other workload") })
	if _, err := Merge(mkPartial(0, 2, nil), other); err == nil || !strings.Contains(err.Error(), "workload digest") {
		t.Errorf("workload-digest mismatch accepted or unclear error: %v", err)
	}
	otherOpts := mkPartial(1, 2, func(m *Manifest) { m.OptionsDigest = Digest("other options") })
	if _, err := Merge(mkPartial(0, 2, nil), otherOpts); err == nil || !strings.Contains(err.Error(), "options digest") {
		t.Errorf("options-digest mismatch accepted or unclear error: %v", err)
	}
	incomplete := mkPartial(1, 2, func(m *Manifest) { m.CompletedThrough = m.RangeLo })
	if _, err := Merge(mkPartial(0, 2, nil), incomplete); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Errorf("incomplete shard accepted or unclear error: %v", err)
	}
}
