package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/einsum"
	"repro/internal/multilevel"
)

// TestMultiLevelJobMergeParity closes the first half of the ROADMAP item
// on sharding the remaining derivation paths: for N in {2, 4}, running the
// three-level derivation as N checkpointed shard jobs and merging the
// partial frontiers is byte-identical to the single-process DRAM curve.
func TestMultiLevelJobMergeParity(t *testing.T) {
	e := einsum.GEMM("gemm_ml", 24, 16, 12)
	const l1Cap = 1 << 10
	opts := multilevel.Options{Workers: 2}

	full, err := multilevel.Derive(e, l1Cap, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(full.DRAM)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 4} {
		dir := t.TempDir()
		paths := make([]string, n)
		var evaluated int64
		for k := 0; k < n; k++ {
			job, err := MultiLevelJob(e, l1Cap, opts, Plan{Index: k, Count: n})
			if err != nil {
				t.Fatalf("N=%d shard %d: %v", n, k, err)
			}
			if job.Kind != KindMultiLevel {
				t.Fatalf("N=%d: job kind %q, want %q", n, job.Kind, KindMultiLevel)
			}
			paths[k] = filepath.Join(dir, fmt.Sprintf("ml-%d-of-%d.json", k+1, n))
			_, rs, err := Run(context.Background(), job, RunOptions{Path: paths[k], CheckpointEvery: 3})
			if err != nil {
				t.Fatalf("N=%d shard %d: %v", n, k, err)
			}
			evaluated += rs.Evaluated
		}
		if evaluated != full.Mappings {
			t.Fatalf("N=%d: shards evaluated %d mappings, single process %d — the cover is not exact",
				n, evaluated, full.Mappings)
		}
		merged, err := MergeFiles(paths...)
		if err != nil {
			t.Fatalf("N=%d: merge: %v", n, err)
		}
		got, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("N=%d: merged DRAM curve differs from single-process derive\n got %s\nwant %s", n, got, want)
		}
	}
}

// TestMultiLevelResultMergeParity pins the in-process counterpart the job
// is built on: multilevel.Merge over DeriveRange partials reproduces the
// full Derive result (DRAM and L2 curves and the joint table) for the
// same shard counts.
func TestMultiLevelResultMergeParity(t *testing.T) {
	e := einsum.GEMM("gemm_ml", 24, 16, 12)
	const l1Cap = 1 << 10
	opts := multilevel.Options{Workers: 2}

	full, err := multilevel.Derive(e, l1Cap, opts)
	if err != nil {
		t.Fatal(err)
	}
	space, err := multilevel.Space(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4} {
		parts := make([]*multilevel.Result, n)
		for k := 0; k < n; k++ {
			lo, hi := (Plan{Index: k, Count: n}).Slice(space)
			parts[k], err = multilevel.DeriveRange(context.Background(), e, l1Cap, lo, hi, opts)
			if err != nil {
				t.Fatalf("N=%d shard %d: %v", n, k, err)
			}
		}
		merged, err := multilevel.Merge(parts...)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		gotDRAM, _ := json.Marshal(merged.DRAM)
		wantDRAM, _ := json.Marshal(full.DRAM)
		if string(gotDRAM) != string(wantDRAM) {
			t.Fatalf("N=%d: merged DRAM curve differs", n)
		}
		gotL2, _ := json.Marshal(merged.L2)
		wantL2, _ := json.Marshal(full.L2)
		if string(gotL2) != string(wantL2) {
			t.Fatalf("N=%d: merged L2 curve differs", n)
		}
		for _, cap := range []int64{1 << 11, 1 << 13, 1 << 15} {
			gl2, gdram, gok := merged.MinL2GivenOptimalDRAM(cap)
			wl2, wdram, wok := full.MinL2GivenOptimalDRAM(cap)
			if gl2 != wl2 || gdram != wdram || gok != wok {
				t.Fatalf("N=%d cap=%d: joint answer (%d,%d,%t) vs full (%d,%d,%t)",
					n, cap, gl2, gdram, gok, wl2, wdram, wok)
			}
		}
	}
}
