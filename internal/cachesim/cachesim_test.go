package cachesim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 1024, LineBytes: 64, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 48, Ways: 4}, // non-pow2 line
		{SizeBytes: 1000, LineBytes: 64, Ways: 4}, // size not multiple
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 192, LineBytes: 64, Ways: 2}, // 3 lines, 2 ways
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestLRUBasics(t *testing.T) {
	// 2 lines total, fully associative (1 set, 2 ways), 64B lines.
	c, err := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a, false) // miss
	c.Access(b, false) // miss
	c.Access(a, false) // hit (promotes a)
	c.Access(d, false) // miss, evicts b (LRU)
	c.Access(b, false) // miss again
	s := c.Stats()
	if s.Accesses != 5 || s.Misses != 4 {
		t.Fatalf("stats = %+v, want 5 accesses / 4 misses", s)
	}
	if s.Writebacks != 0 {
		t.Fatalf("unexpected writebacks: %+v", s)
	}
}

func TestDirtyWriteback(t *testing.T) {
	c, err := New(Config{SizeBytes: 64, LineBytes: 64, Ways: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true)    // miss, dirty
	c.Access(64, false)  // evicts dirty line 0 -> writeback
	c.Access(128, false) // evicts clean line -> no writeback
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", s.Writebacks)
	}
	// DRAM traffic: 3 fills + 1 writeback = 4 lines.
	if s.DRAMBytes() != 4*64 {
		t.Fatalf("DRAMBytes = %d, want 256", s.DRAMBytes())
	}
}

func TestFlush(t *testing.T) {
	c, err := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true)
	c.Access(64, true)
	c.Access(128, false)
	c.Flush()
	if got := c.Stats().Writebacks; got != 2 {
		t.Fatalf("writebacks after flush = %d, want 2", got)
	}
	// Flushing twice must not double count.
	c.Flush()
	if got := c.Stats().Writebacks; got != 2 {
		t.Fatalf("writebacks after second flush = %d, want 2", got)
	}
}

func TestDirtyBitSurvivesPromotion(t *testing.T) {
	c, err := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true)   // dirty
	c.Access(64, false) // clean
	c.Access(0, false)  // hit, promote; line 0 stays dirty
	c.Access(128, false)
	c.Access(192, false) // both original lines evicted by now
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1 (dirty bit lost in promotion?)", got)
	}
}

func TestHitRateOnRepeatedAccess(t *testing.T) {
	c, err := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Access(0, false)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Accesses != 100 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissRate() != 0.01 {
		t.Fatalf("miss rate = %f", s.MissRate())
	}
}

func TestBeladyClassicCycle(t *testing.T) {
	// Cyclic a,b,c with capacity 2: LRU misses every access; OPT hits.
	var addrs []uint64
	var writes []bool
	for i := 0; i < 30; i++ {
		addrs = append(addrs, uint64((i%3)*64))
		writes = append(writes, false)
	}
	opt := SimulateBelady(addrs, writes, 2, 64)
	lru, _ := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	for i := range addrs {
		lru.Access(addrs[i], writes[i])
	}
	if lru.Stats().Misses != 30 {
		t.Fatalf("LRU should thrash: misses = %d", lru.Stats().Misses)
	}
	// OPT: 3 compulsory + one of {b,c} per subsequent cycle ~= 12.
	if opt.Stats.Misses >= lru.Stats().Misses {
		t.Fatalf("OPT misses %d not below LRU %d", opt.Stats.Misses, lru.Stats().Misses)
	}
	if opt.Stats.Misses < 3 {
		t.Fatalf("OPT misses %d below compulsory 3", opt.Stats.Misses)
	}
}

func TestBeladyNeverWorseThanLRUProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int(capRaw%16) + 1
		n := 500
		addrs := make([]uint64, n)
		writes := make([]bool, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(64)) * 64
			writes[i] = rng.Intn(4) == 0
		}
		opt := SimulateBelady(addrs, writes, capacity, 64)
		lru, err := New(Config{SizeBytes: int64(capacity) * 64, LineBytes: 64, Ways: capacity})
		if err != nil {
			return false
		}
		for i := range addrs {
			lru.Access(addrs[i], writes[i])
		}
		return opt.Stats.Misses <= lru.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBeladyWritebackAccounting(t *testing.T) {
	addrs := []uint64{0, 64, 0}
	writes := []bool{true, false, false}
	r := SimulateBelady(addrs, writes, 4, 64)
	// Nothing evicted; final flush writes back the one dirty line.
	if r.Stats.Writebacks != 1 || r.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", r.Stats)
	}
}

func TestGEMMTraceCompulsoryTraffic(t *testing.T) {
	// A cache larger than the whole footprint only takes compulsory
	// misses: DRAM traffic equals operand bytes (plus output writeback).
	g := &trace.TiledGEMM{
		M: 16, K: 16, N: 16,
		M0: 4, K0: 4, N0: 4,
		Order:       [3]string{"M", "K", "N"},
		ElementSize: 2,
	}
	totalBytes := int64(3*16*16) * 2
	c, err := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Emit(c.Access); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	s := c.Stats()
	wantLines := totalBytes / 64
	if s.Misses != wantLines {
		t.Fatalf("misses = %d, want compulsory %d", s.Misses, wantLines)
	}
	// Output writebacks: 16*16*2/64 = 8 lines.
	if s.Writebacks != 8 {
		t.Fatalf("writebacks = %d, want 8", s.Writebacks)
	}
}

func TestSmallerCacheMoreTraffic(t *testing.T) {
	g := &trace.TiledGEMM{
		M: 64, K: 64, N: 64,
		M0: 8, K0: 8, N0: 8,
		Order:       [3]string{"N", "K", "M"},
		ElementSize: 2,
	}
	var traffic []int64
	for _, size := range []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		c, err := New(Config{SizeBytes: size, LineBytes: 64, Ways: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Emit(c.Access); err != nil {
			t.Fatal(err)
		}
		c.Flush()
		traffic = append(traffic, c.Stats().DRAMBytes())
	}
	for i := 1; i < len(traffic); i++ {
		if traffic[i] > traffic[i-1] {
			t.Fatalf("traffic grew with cache size: %v", traffic)
		}
	}
	if traffic[0] == traffic[len(traffic)-1] {
		t.Fatalf("cache size had no effect: %v", traffic)
	}
}
