package cachesim

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/trace"
)

func studyGEMM() *trace.TiledGEMM {
	return &trace.TiledGEMM{
		M: 64, K: 64, N: 64,
		M0: 8, K0: 8, N0: 8,
		Order:       [3]string{"N", "M", "K"},
		ElementSize: 2,
	}
}

func TestBeladyCurveDominatesLRU(t *testing.T) {
	g := studyGEMM()
	caps := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	lru, err := LRUCurve(g, caps, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := BeladyCurve(g, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(lru.Points) != len(opt.Points) {
		t.Fatal("point count mismatch")
	}
	for i := range caps {
		if opt.Points[i].AccessBytes > lru.Points[i].AccessBytes {
			t.Fatalf("Belady worse than LRU at %d: %d > %d",
				caps[i], opt.Points[i].AccessBytes, lru.Points[i].AccessBytes)
		}
	}
}

func TestCurvesMonotoneInCapacity(t *testing.T) {
	g := studyGEMM()
	caps := []int64{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	opt, err := BeladyCurve(g, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(opt.Points); i++ {
		if opt.Points[i].AccessBytes > opt.Points[i-1].AccessBytes {
			t.Fatalf("Belady traffic grew with capacity: %v", opt.Points)
		}
	}
}

// TestBeladySitsAboveOrojenesisBound is the paper's Sec. II argument made
// executable: even optimal replacement of a *fixed* mapping cannot beat
// the mapping-independent bound.
func TestBeladySitsAboveOrojenesisBound(t *testing.T) {
	g := studyGEMM()
	e := einsum.GEMM("g", 64, 64, 64)
	curve := bound.Derive(e, bound.Options{Workers: 1}).Curve
	caps := []int64{2 << 10, 8 << 10, 32 << 10}
	opt, err := BeladyCurve(g, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i, capacity := range caps {
		bnd, ok := curve.AccessesAt(capacity)
		if !ok {
			t.Fatalf("no bound at %d", capacity)
		}
		if opt.Points[i].AccessBytes < bnd {
			t.Fatalf("Belady beat the bound at %d: %d < %d",
				capacity, opt.Points[i].AccessBytes, bnd)
		}
	}
}

// TestBeladyIsMappingSpecific shows the second half of the argument: a
// different mapping yields a different Belady curve, so no single run is
// a bound.
func TestBeladyIsMappingSpecific(t *testing.T) {
	caps := []int64{4 << 10}
	good := studyGEMM()
	bad := studyGEMM()
	bad.M0, bad.K0, bad.N0 = 1, 64, 1 // pathological tiling
	bad.Order = [3]string{"K", "M", "N"}
	g1, err := BeladyCurve(good, caps)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BeladyCurve(bad, caps)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Points[0].AccessBytes == g2.Points[0].AccessBytes {
		t.Fatal("different mappings should produce different Belady traffic")
	}
}
