// Package cachesim simulates set-associative LRU caches (and, for
// reference, Belady's optimal replacement) over address traces. It stands
// in for the paper's GPU hardware counters: simulated DRAM traffic of a
// concrete tiled implementation is a *measured point* that must sit on or
// above the Orojenesis bound at the corresponding capacity (Figs. 2, 24a).
package cachesim

import "fmt"

// Config describes a cache: total capacity, line size and associativity.
type Config struct {
	SizeBytes int64
	LineBytes int64
	Ways      int
}

// Validate checks the geometry: power-of-two line size, ways dividing the
// line count.
func (c Config) Validate() error {
	if c.LineBytes < 1 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d must be a positive power of two", c.LineBytes)
	}
	if c.Ways < 1 {
		return fmt.Errorf("cachesim: ways %d", c.Ways)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines < 1 || c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cachesim: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	if lines%int64(c.Ways) != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	return nil
}

// Stats accumulates simulation counters.
type Stats struct {
	Accesses   int64
	Misses     int64
	Writebacks int64
	LineBytes  int64
}

// DRAMBytes is the traffic to the backing store: fills plus writebacks,
// in bytes.
func (s Stats) DRAMBytes() int64 { return (s.Misses + s.Writebacks) * s.LineBytes }

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
}

// Cache is a write-back, write-allocate, set-associative LRU cache.
type Cache struct {
	cfg       Config
	sets      uint64
	lineShift uint
	// ways[set] is ordered most- to least-recently used.
	ways  [][]way
	stats Stats
}

// New builds a cache; the config must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := uint64(lines / int64(cfg.Ways))
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		ways:      make([][]way, sets),
	}
	for i := range c.ways {
		c.ways[i] = make([]way, cfg.Ways)
	}
	c.stats.LineBytes = cfg.LineBytes
	return c, nil
}

// Access simulates one reference to addr.
func (c *Cache) Access(addr uint64, write bool) {
	c.stats.Accesses++
	line := addr >> c.lineShift
	set := c.ways[line%c.sets]

	// Hit: promote to MRU, carrying the dirty bit along.
	for i := range set {
		if set[i].valid && set[i].tag == line {
			hit := set[i]
			copy(set[1:i+1], set[:i])
			hit.dirty = hit.dirty || write
			set[0] = hit
			return
		}
	}

	// Miss: evict LRU (writeback if dirty), fill at MRU.
	c.stats.Misses++
	victim := set[len(set)-1]
	if victim.valid && victim.dirty {
		c.stats.Writebacks++
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = way{tag: line, valid: true, dirty: write}
}

// Flush writes back all dirty lines, completing the DRAM traffic account
// at the end of a kernel.
func (c *Cache) Flush() {
	for _, set := range c.ways {
		for i := range set {
			if set[i].valid && set[i].dirty {
				c.stats.Writebacks++
				set[i].dirty = false
			}
		}
	}
}

// Stats returns the counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }
