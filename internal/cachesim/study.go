package cachesim

import (
	"fmt"

	"repro/internal/pareto"
	"repro/internal/trace"
)

// MappingCurve is the capacity-vs-traffic curve of ONE concrete mapping
// under a replacement policy — the paper's Sec. II point: Belady's
// algorithm is capacity-sensitive but models a single implementation, so
// its curve sits above the mapping-independent Orojenesis bound and moves
// when the mapping changes.
type MappingCurve struct {
	Policy string // "lru" or "belady"
	Points []pareto.Point
}

// LRUCurve simulates the trace of one tiled GEMM across cache capacities
// under set-associative LRU and returns (capacity, DRAM traffic) points.
func LRUCurve(g *trace.TiledGEMM, capacities []int64, ways int) (MappingCurve, error) {
	out := MappingCurve{Policy: "lru"}
	for _, capacity := range capacities {
		w := ways
		for w > 1 && (capacity/64)%int64(w) != 0 {
			w /= 2
		}
		c, err := New(Config{SizeBytes: capacity, LineBytes: 64, Ways: w})
		if err != nil {
			return out, fmt.Errorf("cachesim: capacity %d: %w", capacity, err)
		}
		if err := g.Emit(c.Access); err != nil {
			return out, err
		}
		c.Flush()
		out.Points = append(out.Points, pareto.Point{
			BufferBytes: capacity,
			AccessBytes: c.Stats().DRAMBytes(),
		})
	}
	return out, nil
}

// BeladyCurve replays one recorded trace under Belady's optimal
// replacement across capacities.
func BeladyCurve(g *trace.TiledGEMM, capacities []int64) (MappingCurve, error) {
	addrs, writes, err := g.Collect()
	if err != nil {
		return MappingCurve{}, err
	}
	out := MappingCurve{Policy: "belady"}
	for _, capacity := range capacities {
		lines := int(capacity / 64)
		if lines < 1 {
			lines = 1
		}
		r := SimulateBelady(addrs, writes, lines, 64)
		out.Points = append(out.Points, pareto.Point{
			BufferBytes: capacity,
			AccessBytes: r.Stats.DRAMBytes(),
		})
	}
	return out, nil
}
