package cachesim

// Belady simulates a fully-associative cache with Belady's optimal (OPT)
// replacement policy over a recorded trace: on a miss with a full cache,
// the line whose next use is furthest in the future is evicted. The paper
// cites Belady as the classic capacity-sensitive limit that nevertheless
// models only a *single* implementation — exactly the comparison this
// simulator enables against the mapping-independent Orojenesis bound.
type BeladyResult struct {
	Stats Stats
}

// SimulateBelady runs OPT over the trace (addrs[i], writes[i]) with a
// fully-associative cache of capacityLines lines of lineBytes each.
// Writebacks are counted for dirty evictions and a final flush.
func SimulateBelady(addrs []uint64, writes []bool, capacityLines int, lineBytes int64) BeladyResult {
	n := len(addrs)
	lines := make([]uint64, n)
	shift := uint(0)
	for l := lineBytes; l > 1; l >>= 1 {
		shift++
	}
	for i, a := range addrs {
		lines[i] = a >> shift
	}

	// nextUse[i] = next index after i referencing the same line (n if none).
	nextUse := make([]int, n)
	last := make(map[uint64]int, 1024)
	for i := n - 1; i >= 0; i-- {
		if j, ok := last[lines[i]]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = n
		}
		last[lines[i]] = i
	}

	stats := Stats{LineBytes: lineBytes}
	type resident struct {
		next  int
		dirty bool
	}
	cache := make(map[uint64]*resident, capacityLines)

	// maxHeap of (next, line) with lazy invalidation: entries whose next
	// does not match the live resident entry are stale.
	h := &nextHeap{}

	for i := 0; i < n; i++ {
		stats.Accesses++
		line := lines[i]
		if r, ok := cache[line]; ok {
			r.next = nextUse[i]
			r.dirty = r.dirty || writes[i]
			h.push(entry{next: nextUse[i], line: line})
			continue
		}
		stats.Misses++
		if len(cache) >= capacityLines {
			// Evict the resident line with the furthest valid next use.
			for {
				e := h.pop()
				r, ok := cache[e.line]
				if !ok || r.next != e.next {
					continue // stale heap entry
				}
				if r.dirty {
					stats.Writebacks++
				}
				delete(cache, e.line)
				break
			}
		}
		cache[line] = &resident{next: nextUse[i], dirty: writes[i]}
		h.push(entry{next: nextUse[i], line: line})
	}
	// Final flush of dirty lines.
	for _, r := range cache {
		if r.dirty {
			stats.Writebacks++
		}
	}
	return BeladyResult{Stats: stats}
}

type entry struct {
	next int
	line uint64
}

// nextHeap is a max-heap on entry.next.
type nextHeap struct {
	es []entry
}

func (h *nextHeap) push(e entry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.es[p].next >= h.es[i].next {
			break
		}
		h.es[p], h.es[i] = h.es[i], h.es[p]
		i = p
	}
}

func (h *nextHeap) pop() entry {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.es) && h.es[l].next > h.es[big].next {
			big = l
		}
		if r < len(h.es) && h.es[r].next > h.es[big].next {
			big = r
		}
		if big == i {
			break
		}
		h.es[i], h.es[big] = h.es[big], h.es[i]
		i = big
	}
	return top
}
