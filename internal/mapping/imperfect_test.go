package mapping

import (
	"testing"

	"repro/internal/einsum"
	"repro/internal/shape"
)

func TestImperfectCandidatesContainDivisors(t *testing.T) {
	for _, n := range []int64{1, 7, 12, 100, 96} {
		cands := ImperfectCandidates(n, 8)
		set := map[int64]bool{}
		for _, c := range cands {
			set[c] = true
		}
		for _, d := range shape.Divisors(n) {
			if !set[d] {
				t.Fatalf("n=%d: divisor %d missing from candidates %v", n, d, cands)
			}
		}
	}
}

func TestSpaceImperfectCoversShape(t *testing.T) {
	g := einsum.GEMM("g", 12, 10, 6)
	count := 0
	SpaceImperfect(g, 6, func(m *Mapping) {
		count++
		for _, r := range g.Ranks {
			s := m.Splits[r.Name]
			if s.Inner < 1 || s.Outer < 1 {
				t.Fatalf("bad split %+v", s)
			}
			if s.Inner*s.Outer < r.Shape {
				t.Fatalf("split %+v does not cover rank %s shape %d", s, r.Name, r.Shape)
			}
			if s.Outer != shape.CeilDiv(r.Shape, s.Inner) {
				t.Fatalf("split %+v outer is not ceil(shape/inner) for shape %d", s, r.Shape)
			}
		}
	})
	if count == 0 {
		t.Fatal("empty imperfect space")
	}

	// The imperfect space is strictly larger than the perfect one.
	perfect := 0
	Space(g, func(*Mapping) { perfect++ })
	if count <= perfect {
		t.Fatalf("imperfect space %d not above perfect %d", count, perfect)
	}
}

func TestSpaceImperfectZeroExtraEqualsPerfect(t *testing.T) {
	g := einsum.GEMM("g", 8, 6, 4)
	imperfect := map[string]bool{}
	SpaceImperfect(g, 0, func(m *Mapping) { imperfect[m.String()] = true })
	perfect := map[string]bool{}
	Space(g, func(m *Mapping) { perfect[m.String()] = true })
	if len(imperfect) != len(perfect) {
		t.Fatalf("extra=0 should match the perfect space: %d vs %d",
			len(imperfect), len(perfect))
	}
	for k := range perfect {
		if !imperfect[k] {
			t.Fatalf("perfect mapping %s missing", k)
		}
	}
}

func TestSpaceImperfectEmptyEinsum(t *testing.T) {
	e := &einsum.Einsum{Name: "none", ElementSize: 2}
	called := false
	SpaceImperfect(e, 4, func(*Mapping) { called = true })
	if called {
		t.Fatal("rank-less einsum should produce no mappings")
	}
}
