// Package mapping represents mappings of an Einsum onto the Snowcat proxy
// architecture (paper Sec. III-A, Fig. 4): a two-level tiling
// (buffer-resident inner tile + backing store outer loops) with an
// explicit outer-loop order. It also enumerates the complete Snowcat
// mapspace for a workload — every perfect two-level tiling × every outer
// permutation — which is what the Orojenesis flow (Fig. 5) traverses
// exhaustively, plus the Ruby-style imperfect-factor extension.
package mapping

import (
	"fmt"
	"strings"

	"repro/internal/einsum"
	"repro/internal/shape"
)

// Mapping is one point in the Snowcat mapspace: each rank is split into a
// buffer tile (Inner) iterated by an outer loop (Outer), and OuterOrder
// gives the outer loop nest from outermost to innermost. Inner loop order
// does not affect the two-level data movement model and is not represented.
type Mapping struct {
	Splits     map[string]shape.Split
	OuterOrder []string
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{
		Splits:     make(map[string]shape.Split, len(m.Splits)),
		OuterOrder: append([]string(nil), m.OuterOrder...),
	}
	for k, v := range m.Splits {
		c.Splits[k] = v
	}
	return c
}

// TileSizes returns the per-rank inner (buffer) tile sizes.
func (m *Mapping) TileSizes() map[string]int64 {
	t := make(map[string]int64, len(m.Splits))
	for r, s := range m.Splits {
		t[r] = s.Inner
	}
	return t
}

// Validate checks that the mapping covers exactly the ranks of e with
// perfect factorizations, and that OuterOrder is a permutation of the ranks.
func (m *Mapping) Validate(e *einsum.Einsum) error {
	if len(m.Splits) != len(e.Ranks) {
		return fmt.Errorf("mapping: %d splits for %d ranks", len(m.Splits), len(e.Ranks))
	}
	for _, r := range e.Ranks {
		s, ok := m.Splits[r.Name]
		if !ok {
			return fmt.Errorf("mapping: missing split for rank %s", r.Name)
		}
		if s.Inner < 1 || s.Outer < 1 || s.Inner*s.Outer != r.Shape {
			return fmt.Errorf("mapping: rank %s split %dx%d does not cover shape %d",
				r.Name, s.Inner, s.Outer, r.Shape)
		}
	}
	if len(m.OuterOrder) != len(e.Ranks) {
		return fmt.Errorf("mapping: outer order has %d entries for %d ranks",
			len(m.OuterOrder), len(e.Ranks))
	}
	seen := map[string]bool{}
	for _, r := range m.OuterOrder {
		if _, ok := m.Splits[r]; !ok {
			return fmt.Errorf("mapping: outer order names unknown rank %s", r)
		}
		if seen[r] {
			return fmt.Errorf("mapping: outer order repeats rank %s", r)
		}
		seen[r] = true
	}
	return nil
}

// String renders the mapping as a loop nest, outer loops first, e.g.
// "for n1 in [0,4) / for k1 in [0,2) / for m1 in [0,8) | buf: M0=4 K0=16 N0=8".
func (m *Mapping) String() string {
	var b strings.Builder
	for i, r := range m.OuterOrder {
		if i > 0 {
			b.WriteString(" / ")
		}
		fmt.Fprintf(&b, "for %s1 in [0,%d)", strings.ToLower(r), m.Splits[r].Outer)
	}
	b.WriteString(" | buf:")
	for _, r := range m.OuterOrder {
		fmt.Fprintf(&b, " %s0=%d", r, m.Splits[r].Inner)
	}
	return b.String()
}

// Space enumerates the complete Snowcat mapspace of e, invoking visit for
// every mapping. The same Mapping value is reused between calls; visitors
// that retain it must Clone it. Enumeration is deterministic.
//
// Permutations of outer loops whose bound is 1 are skipped (they are
// no-ops in the data movement model), which keeps the traversal close to
// the number of *distinct* mappings.
func Space(e *einsum.Einsum, visit func(*Mapping)) {
	en := NewEnum(e)
	en.Visit(0, en.Tilings(), visit)
}

// emitPermutations calls visit once per distinct outer-loop order for the
// current tiling. Loops with outer bound 1 are pinned innermost in a fixed
// order since their position is immaterial.
func emitPermutations(m *Mapping, rankNames []string, visit func(*Mapping)) {
	var active, inactive []string
	for _, r := range rankNames {
		if m.Splits[r].Outer > 1 {
			active = append(active, r)
		} else {
			inactive = append(inactive, r)
		}
	}
	perms := shape.Permutations(len(active))
	order := make([]string, 0, len(rankNames))
	for _, p := range perms {
		order = order[:0]
		for _, i := range p {
			order = append(order, active[i])
		}
		order = append(order, inactive...)
		m.OuterOrder = order
		visit(m)
	}
}

// SpacePinned enumerates the mapspace like Space but with the first rank's
// split fixed to first, which lets callers shard the traversal across
// workers. The Mapping value is reused between visits.
func SpacePinned(e *einsum.Einsum, first shape.Split, visit func(*Mapping)) {
	n := len(e.Ranks)
	if n == 0 {
		return
	}
	if first.Inner*first.Outer != e.Ranks[0].Shape {
		panic(fmt.Sprintf("mapping: SpacePinned: split %dx%d does not cover rank %s shape %d",
			first.Inner, first.Outer, e.Ranks[0].Name, e.Ranks[0].Shape))
	}
	rankNames := make([]string, n)
	splitOptions := make([][]shape.Split, n)
	for i, r := range e.Ranks {
		rankNames[i] = r.Name
		splitOptions[i] = shape.Splits(r.Shape)
	}
	splitOptions[0] = []shape.Split{first}

	m := &Mapping{Splits: make(map[string]shape.Split, n)}
	idx := make([]int, n)
	for {
		for i, r := range rankNames {
			m.Splits[r] = splitOptions[i][idx[i]]
		}
		emitPermutations(m, rankNames, visit)
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(splitOptions[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// SpaceSize returns the number of mappings Space will visit for e.
func SpaceSize(e *einsum.Einsum) int64 {
	// Group tilings by their number of active (outer > 1) loops.
	var count func(i int, active int, acc int64) int64
	count = func(i, active int, acc int64) int64 {
		if i == len(e.Ranks) {
			return acc * factorial(active)
		}
		var total int64
		for _, s := range shape.Splits(e.Ranks[i].Shape) {
			a := active
			if s.Outer > 1 {
				a++
			}
			total += count(i+1, a, acc)
		}
		return total
	}
	return count(0, 0, 1)
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}
