package mapping

import (
	"math"
	"sort"

	"repro/internal/einsum"
	"repro/internal/shape"
)

// Imperfect factorization support (the Ruby extension the paper cites as
// a straightforward smoothing of the ski-slope curves): inner tile sizes
// are no longer restricted to divisors of the rank shape; the outer loop
// bound becomes ceil(shape/inner) with a partial boundary tile.

// ImperfectCandidates returns the inner-tile candidates for a rank of the
// given shape: all divisors plus (up to) extra geometrically spaced
// non-divisor sizes, deduplicated and ascending. extra <= 0 yields just
// the divisors (the perfect-factor space).
func ImperfectCandidates(n int64, extra int) []int64 {
	set := map[int64]bool{}
	for _, d := range shape.Divisors(n) {
		set[d] = true
	}
	if extra > 0 {
		// Geometric grid over [1, n].
		ratio := float64(n)
		step := 1.0
		if extra > 1 {
			step = math.Pow(ratio, 1.0/float64(extra))
		}
		v := 1.0
		for i := 0; i <= extra; i++ {
			c := int64(v + 0.5)
			if c < 1 {
				c = 1
			}
			if c > n {
				c = n
			}
			set[c] = true
			v *= step
		}
	}
	out := make([]int64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SpaceImperfect enumerates the imperfect-factor mapspace: every
// combination of inner-tile candidates (divisors plus `extra` geometric
// samples per rank) with every distinct outer loop order. Splits may have
// Inner*Outer > shape (the last tile is partial). The Mapping value is
// reused across visits.
func SpaceImperfect(e *einsum.Einsum, extra int, visit func(*Mapping)) {
	en := NewImperfectEnum(e, extra)
	en.Visit(0, en.Tilings(), visit)
}
