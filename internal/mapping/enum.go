package mapping

import (
	"repro/internal/einsum"
	"repro/internal/shape"
)

// Enum is an index-addressable view of a Snowcat mapspace. The tiling
// combinations — one split choice per rank — form a mixed-radix space of
// Tilings() flat indices; each index expands into its distinct outer-loop
// permutations at Visit time. Flat addressing is what lets a parallel
// traversal chunk the space evenly across workers instead of sharding by
// the divisor structure of one rank (which capped utilization at the
// first rank's split count, e.g. two workers for a prime leading rank).
type Enum struct {
	rankNames []string
	options   [][]shape.Split
}

// NewEnum builds the perfect-factor enumeration of e's mapspace: every
// rank's split options are its two-level perfect factorizations.
func NewEnum(e *einsum.Einsum) *Enum {
	en := &Enum{}
	for _, r := range e.Ranks {
		en.rankNames = append(en.rankNames, r.Name)
		en.options = append(en.options, shape.Splits(r.Shape))
	}
	return en
}

// NewImperfectEnum builds the widened imperfect-factor enumeration: each
// rank's inner-tile candidates are its divisors plus up to extra geometric
// samples, with outer = ceil(shape/inner) (partial boundary tiles).
func NewImperfectEnum(e *einsum.Einsum, extra int) *Enum {
	en := &Enum{}
	for _, r := range e.Ranks {
		cands := ImperfectCandidates(r.Shape, extra)
		sp := make([]shape.Split, len(cands))
		for j, c := range cands {
			sp[j] = shape.Split{Inner: c, Outer: shape.CeilDiv(r.Shape, c)}
		}
		en.rankNames = append(en.rankNames, r.Name)
		en.options = append(en.options, sp)
	}
	return en
}

// Tilings returns the number of flat indices (tiling combinations; outer
// loop orders are expanded per tiling by Visit).
func (en *Enum) Tilings() int64 {
	if len(en.options) == 0 {
		return 0
	}
	n := int64(1)
	for _, opts := range en.options {
		n *= int64(len(opts))
	}
	return n
}

// Visit enumerates the tilings with flat index in [lo, hi), calling visit
// for every mapping (tiling x distinct outer order). The last rank's index
// varies fastest, so Visit(0, Tilings()) matches Space's order exactly.
// The Mapping value is reused between calls; visitors that retain it must
// Clone it.
func (en *Enum) Visit(lo, hi int64, visit func(*Mapping)) {
	n := len(en.rankNames)
	if n == 0 || lo >= hi {
		return
	}
	// Decode lo into mixed-radix digits, then advance odometer-style.
	idx := make([]int, n)
	rem := lo
	for i := n - 1; i >= 0; i-- {
		k := int64(len(en.options[i]))
		idx[i] = int(rem % k)
		rem /= k
	}
	m := &Mapping{Splits: make(map[string]shape.Split, n)}
	for flat := lo; flat < hi; flat++ {
		for i, r := range en.rankNames {
			m.Splits[r] = en.options[i][idx[i]]
		}
		emitPermutations(m, en.rankNames, visit)
		for i := n - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(en.options[i]) {
				break
			}
			idx[i] = 0
		}
	}
}
