package mapping

import (
	"testing"

	"repro/internal/einsum"
	"repro/internal/shape"
)

func TestValidate(t *testing.T) {
	g := einsum.GEMM("g", 8, 4, 2)
	m := &Mapping{
		Splits: map[string]shape.Split{
			"M": {Inner: 2, Outer: 4},
			"K": {Inner: 4, Outer: 1},
			"N": {Inner: 1, Outer: 2},
		},
		OuterOrder: []string{"M", "K", "N"},
	}
	if err := m.Validate(g); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}

	bad := m.Clone()
	bad.Splits["M"] = shape.Split{Inner: 3, Outer: 3}
	if err := bad.Validate(g); err == nil {
		t.Fatal("imperfect factorization accepted")
	}

	bad = m.Clone()
	bad.OuterOrder = []string{"M", "M", "N"}
	if err := bad.Validate(g); err == nil {
		t.Fatal("repeated outer loop accepted")
	}

	bad = m.Clone()
	delete(bad.Splits, "K")
	if err := bad.Validate(g); err == nil {
		t.Fatal("missing split accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := &Mapping{
		Splits:     map[string]shape.Split{"M": {Inner: 2, Outer: 4}},
		OuterOrder: []string{"M"},
	}
	c := m.Clone()
	c.Splits["M"] = shape.Split{Inner: 8, Outer: 1}
	c.OuterOrder[0] = "X"
	if m.Splits["M"].Inner != 2 || m.OuterOrder[0] != "M" {
		t.Fatal("Clone shares state with the original")
	}
}

func TestSpaceVisitsAllMappings(t *testing.T) {
	g := einsum.GEMM("g", 4, 2, 2) // divisors: 3, 2, 2
	var count int64
	seen := map[string]bool{}
	Space(g, func(m *Mapping) {
		count++
		if err := m.Validate(g); err != nil {
			t.Fatalf("Space emitted invalid mapping: %v", err)
		}
		key := m.String()
		if seen[key] {
			t.Fatalf("Space emitted duplicate mapping %s", key)
		}
		seen[key] = true
	})
	want := SpaceSize(g)
	if count != want {
		t.Fatalf("Space visited %d mappings, SpaceSize predicts %d", count, want)
	}
	if count == 0 {
		t.Fatal("empty mapspace")
	}
}

func TestSpaceSizeSmallCase(t *testing.T) {
	// GEMM 2x2x2: each rank has splits (1,2) and (2,1).
	// Tilings by active-loop count: all-inner (0 active, 1 perm),
	// 3 with one active (1 perm each), 3 with two active (2 perms),
	// 1 with three active (6 perms) => 1 + 3 + 6 + 6 = 16.
	g := einsum.GEMM("g", 2, 2, 2)
	if got := SpaceSize(g); got != 16 {
		t.Fatalf("SpaceSize = %d, want 16", got)
	}
}

func TestSpaceReusesMappingValue(t *testing.T) {
	// Documented contract: visitors must Clone to retain.
	g := einsum.GEMM("g", 2, 2, 2)
	var first *Mapping
	var mutated bool
	Space(g, func(m *Mapping) {
		if first == nil {
			first = m
			return
		}
		if m == first {
			mutated = true
		}
	})
	if !mutated {
		t.Fatal("expected Space to reuse the Mapping value across visits")
	}
}

func TestTileSizes(t *testing.T) {
	m := &Mapping{
		Splits: map[string]shape.Split{
			"M": {Inner: 2, Outer: 4},
			"K": {Inner: 4, Outer: 1},
		},
		OuterOrder: []string{"M", "K"},
	}
	ts := m.TileSizes()
	if ts["M"] != 2 || ts["K"] != 4 {
		t.Fatalf("TileSizes = %v", ts)
	}
}

func TestStringFormat(t *testing.T) {
	m := &Mapping{
		Splits: map[string]shape.Split{
			"M": {Inner: 2, Outer: 4},
			"K": {Inner: 4, Outer: 2},
		},
		OuterOrder: []string{"K", "M"},
	}
	s := m.String()
	want := "for k1 in [0,2) / for m1 in [0,4) | buf: K0=4 M0=2"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}
