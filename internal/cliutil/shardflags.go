package cliutil

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/supervise"
	"repro/internal/workload"
)

// ShardFlags is the sharded-execution flag block shared by the
// derivation CLIs (orojenesis, fusionbounds): one shard slice with
// -shard k/N, a whole supervised run with -supervise N, or a distributed
// run with -supervise N -fleet URL,... dispatching shards to remote
// workers, plus the knobs the modes share. Register it with
// AddShardFlags; dispatch with RunShard / RunSupervised / RunFleet.
type ShardFlags struct {
	// Shard is the "k/N" plan of a single-slice run ("" = off).
	Shard string
	// Out is the partial-frontier file of -shard (checkpoint target and
	// final artifact), or the merged-curve JSON file of -supervise.
	Out string
	// Checkpoint is the per-shard checkpoint stride (0 = ~1/32 of the
	// slice).
	Checkpoint int64
	// Supervise is the fleet width of a supervised run (0 = off).
	Supervise int
	// ShardDir is the supervised fleet's checkpoint directory.
	ShardDir string
	// Retries is the supervised per-shard retry budget (0 = default,
	// negative = none).
	Retries int
	// AllowPartial accepts a degraded supervised merge instead of
	// refusing when shards fail permanently.
	AllowPartial bool
	// Fleet is the comma-separated worker URL list of a distributed run
	// ("" = derive locally): with -supervise N, shards are dispatched to
	// these workers over HTTP (docs/fleet-protocol.md) instead of derived
	// in-process.
	Fleet string
	// FleetProbe is the worker health-probe interval of a distributed
	// run (0 disables probing — CLI runs are finite, so dispatch
	// outcomes alone usually suffice).
	FleetProbe time.Duration
	// FleetBreakerFailures is the consecutive-failure threshold that
	// opens a worker's circuit breaker (0 = default).
	FleetBreakerFailures int
	// FleetBreakerCooldown is how long an open breaker sheds load
	// before admitting a half-open probe dispatch (0 = default).
	FleetBreakerCooldown time.Duration
}

// AddShardFlags registers the shared shard flag block on fs. indexNoun
// names the unit of the checkpoint stride in help text ("tiling
// indices", "template indices").
func AddShardFlags(fs *flag.FlagSet, indexNoun string) *ShardFlags {
	f := &ShardFlags{}
	fs.StringVar(&f.Shard, "shard", "", "derive only shard k/N of the index space into -out (e.g. 1/4); resumes an interrupted run from the same file")
	fs.StringVar(&f.Out, "out", "", "partial-frontier file for -shard (checkpoint target and final artifact), or merged-curve JSON file for -supervise")
	fs.Int64Var(&f.Checkpoint, "checkpoint", 0, indexNoun+" per checkpoint flush in -shard/-supervise mode (0 = ~1/32 of each slice)")
	fs.IntVar(&f.Supervise, "supervise", 0, "derive all N shards under one supervisor (retry, quarantine, resumable interrupt) and merge the result")
	fs.StringVar(&f.ShardDir, "shard-dir", "", "directory for per-shard checkpoint files in -supervise mode (required; reused on resume)")
	fs.IntVar(&f.Retries, "retries", 0, "per-shard retry budget in -supervise mode (0 = default, negative = none)")
	fs.BoolVar(&f.AllowPartial, "allow-partial", false, "in -supervise mode, emit an annotated degraded curve when shards fail permanently instead of refusing")
	fs.StringVar(&f.Fleet, "fleet", "", "comma-separated worker base URLs; with -supervise N, dispatch the shards to these workers over HTTP instead of deriving locally")
	fs.DurationVar(&f.FleetProbe, "fleet-probe", 0, "health-probe interval for -fleet workers (0 disables probing for the run)")
	fs.IntVar(&f.FleetBreakerFailures, "fleet-breaker-failures", 0, "consecutive dispatch failures that open a -fleet worker's circuit breaker (0 = 3)")
	fs.DurationVar(&f.FleetBreakerCooldown, "fleet-breaker-cooldown", 0, "how long an open -fleet breaker sheds load before a half-open probe dispatch (0 = 5s)")
	return f
}

// Active reports whether any sharded mode was requested. A bare -fleet
// counts so its "requires -supervise" diagnosis surfaces instead of the
// flag being ignored.
func (f *ShardFlags) Active() bool { return f.Supervise > 0 || f.Shard != "" || f.Fleet != "" }

// ShardRunConfig is the per-CLI presentation of the shared shard
// runners: the workload header line, the nouns of the progress messages,
// and the summary renderer.
type ShardRunConfig struct {
	// Header is the first line of output (e.g. "workload: ...").
	Header string
	// IndexNoun names the checkpoint stride unit in progress messages
	// ("indices", "template indices").
	IndexNoun string
	// EvalNoun names the evaluated unit ("mappings", "candidates").
	EvalNoun string
	// Stats enables per-checkpoint progress lines.
	Stats bool
	// Summarize, when non-nil, renders the merged curve's summary table
	// after a supervised run.
	Summarize func(*pareto.Curve)
}

// signalContext is the CLI lifetime: cancelled by SIGINT/SIGTERM so
// shard runs flush a final checkpoint and exit resumable.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// RunShard derives one slice of the job's index space into a resumable
// partial-frontier file (the -shard k/N -out FILE mode). SIGINT/SIGTERM
// flush a final checkpoint and exit with status 130; rerunning the same
// command resumes. Fatal on any other error.
func RunShard(cfg ShardRunConfig, f *ShardFlags, mkJob func(shard.Plan) (shard.Job, error)) {
	if f.Out == "" {
		log.Fatal("-shard requires -out FILE for the partial frontier")
	}
	plan, err := shard.ParsePlan(f.Shard)
	if err != nil {
		log.Fatal(err)
	}
	job, err := mkJob(plan)
	if err != nil {
		log.Fatal(err)
	}
	ropts := shard.RunOptions{Path: f.Out, CheckpointEvery: f.Checkpoint}
	if cfg.Stats {
		ropts.OnCheckpoint = func(m shard.Manifest) {
			fmt.Printf("checkpoint: %d / %d %s of shard %s\n",
				m.CompletedThrough-m.RangeLo, m.RangeHi-m.RangeLo, cfg.IndexNoun, plan)
		}
	}
	ctx, stop := signalContext()
	defer stop()
	p, rs, err := shard.Run(ctx, job, ropts)
	if err != nil {
		if ctx.Err() != nil && p != nil {
			log.Printf("interrupted at index %d of shard %s; checkpoint flushed to %s — rerun the same command to resume",
				p.Manifest.CompletedThrough, plan, f.Out)
			os.Exit(130)
		}
		log.Fatal(err)
	}
	lo, hi := plan.Slice(job.Items)
	fmt.Println(cfg.Header)
	if rs.Resumed {
		fmt.Printf("resumed shard %s at index %d\n", plan, rs.ResumedFrom)
	}
	fmt.Printf("shard %s: indices [%d, %d) of %d, %d %s evaluated in %v\n",
		plan, lo, hi, job.Items, rs.Evaluated, cfg.EvalNoun, rs.Elapsed)
	fmt.Printf("partial frontier: %d points -> %s\n", p.Curve.Len(), f.Out)
}

// RunSupervised derives all N shards of the job's index space under one
// supervisor (the -supervise N -shard-dir DIR mode): retried with
// backoff on transient failures, corrupt checkpoints quarantined and
// re-derived, SIGINT/SIGTERM resumable by rerunning. The merged curve —
// exact, or degraded under -allow-partial — is summarized and optionally
// written to -out.
func RunSupervised(cfg ShardRunConfig, f *ShardFlags, mkJob func(shard.Plan) (shard.Job, error)) {
	if f.ShardDir == "" {
		log.Fatal("-supervise requires -shard-dir DIR for the per-shard checkpoint files")
	}
	if err := os.MkdirAll(f.ShardDir, 0o755); err != nil {
		log.Fatal(err)
	}
	ctx, stop := signalContext()
	defer stop()
	sopts := supervise.Options{
		Dir:             f.ShardDir,
		CheckpointEvery: f.Checkpoint,
		MaxRetries:      f.Retries,
		AllowPartial:    f.AllowPartial,
		Logf:            log.Printf,
	}
	if cfg.Stats {
		sopts.OnCheckpoint = func(m shard.Manifest) {
			fmt.Printf("checkpoint: shard %d/%d at %d / %d %s\n",
				m.ShardIndex+1, m.ShardCount, m.CompletedThrough-m.RangeLo, m.RangeHi-m.RangeLo, cfg.IndexNoun)
		}
	}
	report, err := supervise.Run(ctx, f.Supervise, mkJob, sopts)
	if report != nil && report.Interrupted {
		log.Printf("interrupted; shard checkpoints flushed under %s — rerun the same command to resume", f.ShardDir)
		os.Exit(130)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(cfg.Header)
	var attempts int
	for _, st := range report.Shards {
		attempts += st.Attempts
		for _, q := range st.Quarantined {
			fmt.Printf("shard %s: quarantined corrupt checkpoint -> %s\n", st.Plan, q)
		}
	}
	fmt.Printf("supervised %d shards in %d attempts\n", f.Supervise, attempts)
	emitMerged(cfg, f, report.Curve, report.Degraded)
}

// RunFleet dispatches all N shards of a materialized workload Spec to
// remote workers over HTTP (the -fleet URL,... mode layered on
// -supervise N -shard-dir DIR; see docs/fleet-protocol.md): the
// coordinator policy of internal/fleet — per-worker caps, retries with
// backoff, quarantine of invalid responses — over the same spool layout
// as RunSupervised, so an interrupted run resumes by rerunning and the
// merged curve is byte-identical to deriving locally.
func RunFleet(cfg ShardRunConfig, f *ShardFlags, spec *workload.Spec, workers int) {
	if f.Supervise <= 0 {
		log.Fatal("-fleet requires -supervise N (the shard count to dispatch)")
	}
	if f.ShardDir == "" {
		log.Fatal("-fleet requires -shard-dir DIR for the spooled partial frontiers")
	}
	urls := ParseWorkerURLs(f.Fleet)
	if len(urls) == 0 {
		log.Fatal("-fleet lists no worker URLs")
	}
	ctx, stop := signalContext()
	defer stop()
	exec := workload.Exec{Workers: workers}
	mspec, err := spec.Materialize(ctx, exec)
	if err != nil {
		log.Fatal(err)
	}
	report, err := fleet.Run(ctx, mspec, f.Supervise, fleet.Options{
		Workers:         urls,
		Dir:             f.ShardDir,
		MaxRetries:      f.Retries,
		CheckpointEvery: f.Checkpoint,
		AllowPartial:    f.AllowPartial,
		ProbeInterval:   f.FleetProbe,
		Breaker: fleet.BreakerConfig{
			Failures: f.FleetBreakerFailures,
			Cooldown: f.FleetBreakerCooldown,
		},
		Exec: exec,
		Logf: log.Printf,
	})
	if report != nil && report.Interrupted {
		log.Printf("interrupted; completed shard partials are spooled under %s — rerun the same command to resume", f.ShardDir)
		os.Exit(130)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(cfg.Header)
	for _, st := range report.Shards {
		for _, q := range st.Quarantined {
			fmt.Printf("shard %s: quarantined invalid response/partial -> %s\n", st.Plan, q)
		}
	}
	fmt.Printf("fleet of %d workers derived %d shards in %d dispatches (%d retries, %d speculations, %d deferrals)\n",
		len(urls), f.Supervise, report.Dispatches, report.Retries, report.Speculations, report.Deferrals)
	emitMerged(cfg, f, report.Curve, report.Degraded)
}

// emitMerged renders a sharded run's merged result — exact curve or
// annotated degraded envelope — and writes -out; the shared tail of
// RunSupervised and RunFleet.
func emitMerged(cfg ShardRunConfig, f *ShardFlags, curve *pareto.Curve, degraded *shard.Degraded) {
	if degraded != nil {
		curve = degraded.Curve
		fmt.Printf("DEGRADED curve: covers %d of %d indices (%.2f%%); missing shards %v, incomplete %v\n",
			degraded.CoveredIndices, degraded.Items, 100*degraded.CoveredFraction,
			degraded.MissingShards, degraded.IncompleteShards)
	}
	if cfg.Summarize != nil {
		cfg.Summarize(curve)
	}

	if f.Out != "" {
		// A degraded result is serialized only inside its annotated
		// envelope, never as a bare curve.
		var payload any = curve
		if degraded != nil {
			payload = degraded
		}
		data, err := json.Marshal(payload)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(f.Out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("merged curve: %d points -> %s\n", curve.Len(), f.Out)
	}
}

// RunSpec loads a serialized workload Spec (see docs/workload-spec.md)
// and runs it under the shared shard flags: in-process by default, one
// shard slice with -shard, a supervised fleet with -supervise. This is
// the -spec FILE mode of the derivation CLIs — any CLI can run any kind,
// because everything after decoding is registry dispatch. st, when
// non-nil, is the durable curve store the in-process path checks and
// populates (StoreRun); sharded modes ignore it — their unit of
// persistence is the per-shard checkpoint, and their merged curves reach
// the store when a server or in-process run derives them. summarize,
// when non-nil, renders the final curve's summary table with the Spec's
// kind as the series name.
func RunSpec(path string, f *ShardFlags, st *store.Store, workers int, stats bool, summarize func(name string, c *pareto.Curve)) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workload.Decode(data)
	if err != nil {
		log.Fatal(err)
	}
	exec := workload.Exec{Workers: workers}
	header := fmt.Sprintf("spec: %s (kind %s)", spec.Describe(), spec.Kind)
	cfg := ShardRunConfig{
		Header:    header,
		IndexNoun: "indices",
		EvalNoun:  "candidates",
		Stats:     stats,
	}
	if summarize != nil {
		cfg.Summarize = func(c *pareto.Curve) { summarize(string(spec.Kind), c) }
	}

	if f.Active() {
		// Sharded modes compile shard jobs, which need derived inputs
		// (e.g. the segmentation study's per-op curves) materialized
		// up front so every shard — and every resume — hashes the same
		// workload digest.
		ctx, stop := signalContext()
		mspec, err := spec.Materialize(ctx, exec)
		stop()
		if err != nil {
			log.Fatal(err)
		}
		if f.Fleet != "" {
			RunFleet(cfg, f, mspec, workers)
			return
		}
		mkJob := func(p shard.Plan) (shard.Job, error) { return mspec.Compile(p, exec) }
		if f.Supervise > 0 {
			RunSupervised(cfg, f, mkJob)
			return
		}
		RunShard(cfg, f, mkJob)
		return
	}

	ctx, stop := signalContext()
	defer stop()
	res, err := StoreRun(ctx, st, spec, exec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(header)
	if res.Hit {
		fmt.Printf("candidates evaluated: %d (replayed from curve store)\n", res.Evaluated)
	} else {
		fmt.Printf("candidates evaluated: %d\n", res.Evaluated)
	}
	if len(res.Segments) > 0 {
		fmt.Printf("segmentations: %d\n", len(res.Segments))
	}
	fmt.Printf("frontier: %d points\n", res.Curve.Len())
	if cfg.Summarize != nil {
		cfg.Summarize(res.Curve)
	}
	if f.Out != "" {
		data, err := json.Marshal(res.Curve)
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(f.Out, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("curve: %d points -> %s\n", res.Curve.Len(), f.Out)
	}
}
