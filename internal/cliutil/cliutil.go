// Package cliutil holds the flag-parsing helpers shared by the command
// line tools: dimension lists, byte sizes with binary suffixes, named
// capacity levels and convolution configurations. It carries no modeling
// logic from the paper — only the shared, tested plumbing that lets each
// cmd/ tool describe the workloads of Figs. 10-14 on its command line.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/einsum"
)

// ParseDims parses exactly n comma-separated positive integers.
func ParseDims(s string, n int) ([]int64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("want %d comma-separated dims, got %q", n, s)
	}
	out := make([]int64, n)
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// ParseBytes parses a byte size with an optional B/KB/MB/GB suffix
// (binary prefixes).
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GB")
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MB")
	case strings.HasSuffix(upper, "KB"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KB")
	case strings.HasSuffix(upper, "B"):
		upper = strings.TrimSuffix(upper, "B")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil || v < 1 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v * mult, nil
}

// ParseLevels parses "L1=192KB,L2=40MB" into named capacities.
func ParseLevels(s string) (map[string]int64, error) {
	out := map[string]int64{}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad level %q", kv)
		}
		b, err := ParseBytes(parts[1])
		if err != nil {
			return nil, err
		}
		out[strings.TrimSpace(parts[0])] = b
	}
	return out, nil
}

// ParseConv parses "P=16,Q=16,N=64,C=64,R=3,S=3[,T=2,D=2]" into a
// convolution configuration (stride and dilation default to 1).
func ParseConv(s string) (einsum.ConvConfig, error) {
	cfg := einsum.ConvConfig{T: 1, D: 1}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return cfg, fmt.Errorf("bad conv field %q", kv)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil || v < 1 {
			return cfg, fmt.Errorf("bad conv value %q", kv)
		}
		switch strings.ToUpper(strings.TrimSpace(parts[0])) {
		case "P":
			cfg.P = v
		case "Q":
			cfg.Q = v
		case "N":
			cfg.N = v
		case "C":
			cfg.C = v
		case "R":
			cfg.R = v
		case "S":
			cfg.S = v
		case "T":
			cfg.T = v
		case "D":
			cfg.D = v
		default:
			return cfg, fmt.Errorf("unknown conv field %q", parts[0])
		}
	}
	if cfg.P == 0 || cfg.Q == 0 || cfg.N == 0 || cfg.C == 0 || cfg.R == 0 || cfg.S == 0 {
		return cfg, fmt.Errorf("conv needs P,Q,N,C,R,S")
	}
	return cfg, nil
}

// ParseChainOps parses "4096x16384,16384x4096" into (K,N) pairs.
func ParseChainOps(s string) ([][2]int64, error) {
	var out [][2]int64
	for _, part := range strings.Split(s, ",") {
		kn := strings.SplitN(strings.TrimSpace(part), "x", 2)
		if len(kn) != 2 {
			return nil, fmt.Errorf("bad op %q: want KxN", part)
		}
		k, err1 := strconv.ParseInt(kn[0], 10, 64)
		n, err2 := strconv.ParseInt(kn[1], 10, 64)
		if err1 != nil || err2 != nil || k < 1 || n < 1 {
			return nil, fmt.Errorf("bad op %q", part)
		}
		out = append(out, [2]int64{k, n})
	}
	return out, nil
}
