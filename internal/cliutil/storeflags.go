package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/store"
	"repro/internal/workload"
)

// StoreFlags is the durable curve-store flag block shared by the
// derivation CLIs (orojenesis, fusionbounds, curvewarm): the same
// content-addressed directory orojenesisd serves from (-store-dir), so
// batch CLI runs warm the server's cache and servers warm the CLIs'.
// Register with AddStoreFlags; open with Open; run workload Specs
// through the tier with StoreRun or WarmSpecDir.
type StoreFlags struct {
	// Dir is the store directory ("" = no store; runs derive as before).
	Dir string
	// MaxBytes caps the store's on-disk size (0 = the store default;
	// small values are clamped up to the store minimum).
	MaxBytes int64
}

// AddStoreFlags registers the shared curve-store flag block on fs.
func AddStoreFlags(fs *flag.FlagSet) *StoreFlags {
	f := &StoreFlags{}
	fs.StringVar(&f.Dir, "store-dir", "", "durable curve-store directory shared with orojenesisd (docs/curve-store.md); in-process runs check it before deriving and persist what they derive")
	fs.Int64Var(&f.MaxBytes, "store-max-bytes", 0, "byte cap of -store-dir, enforced by LRU garbage collection (0 = 1 GiB default; small values clamped up)")
	return f
}

// Open opens the configured store, or returns nil when no -store-dir was
// given. An unopenable directory is logged and degrades to nil — a CLI
// run without its cache still derives correct curves, exactly like the
// server's memory-only fallback.
func (f *StoreFlags) Open() *store.Store {
	if f.Dir == "" {
		return nil
	}
	st, err := store.Open(store.Options{Dir: f.Dir, MaxBytes: f.MaxBytes, Logf: log.Printf})
	if err != nil {
		log.Printf("curve store disabled for this run: %v", err)
		return nil
	}
	return st
}

// StoreRunResult is StoreRun's outcome: the derivation result plus where
// it came from.
type StoreRunResult struct {
	*workload.Result
	// Hit reports the result was served from the store without deriving.
	Hit bool
	// Elapsed is the derivation wall time — the original derivation's,
	// replayed, on a hit.
	Elapsed time.Duration
}

// StoreRun runs spec through the durable curve tier: a verified store
// hit returns the persisted result without deriving; a miss derives
// in-process and persists the exact result under the spec's identity
// digest (store.Identity — the same digest the server uses, which is
// what lets a CLI run warm a server's cache). A nil st just derives.
// Persistence failures are logged, never fatal: the result is correct
// either way.
func StoreRun(ctx context.Context, st *store.Store, spec *workload.Spec, exec workload.Exec) (StoreRunResult, error) {
	if st == nil {
		start := time.Now()
		res, err := spec.Run(ctx, exec)
		return StoreRunResult{Result: res, Elapsed: time.Since(start)}, err
	}
	_, digest, err := store.Identity(spec)
	if err != nil {
		return StoreRunResult{}, err
	}
	if ent, ok := st.Get(digest); ok {
		return StoreRunResult{
			Result:  &workload.Result{Curve: ent.Curve, Evaluated: ent.Evaluated, Segments: ent.Segments},
			Hit:     true,
			Elapsed: time.Duration(ent.ElapsedMS) * time.Millisecond,
		}, nil
	}
	start := time.Now()
	res, err := spec.Run(ctx, exec)
	if err != nil {
		return StoreRunResult{}, err
	}
	elapsed := time.Since(start)
	perr := st.Put(digest, &store.Entry{
		Kind:      spec.Kind,
		Workload:  spec.Describe(),
		Evaluated: res.Evaluated,
		ElapsedMS: elapsed.Milliseconds(),
		Curve:     res.Curve,
		Segments:  res.Segments,
	})
	if perr != nil && !errors.Is(perr, store.ErrDisabled) {
		log.Printf("persisting %s (%.12s) to curve store: %v", spec.Describe(), digest, perr)
	}
	return StoreRunResult{Result: res, Elapsed: elapsed}, nil
}

// WarmOutcome is one spec file's row in a WarmSpecDir report.
type WarmOutcome struct {
	// Path is the spec file.
	Path string
	// Digest is the spec's identity digest in the store.
	Digest string
	// Hit reports the curve was already present (nothing derived).
	Hit bool
	// Evaluated and Points describe the curve (derived or replayed).
	Evaluated int64
	Points    int
	// Err records a per-file failure (unparseable spec, failed
	// derivation); the walk continues past it.
	Err error
}

// WarmSpecDir walks a directory of serialized workload Spec files
// (*.json, docs/workload-spec.md) through the store: every spec already
// present is verified and left alone, every absent one is derived
// in-process and persisted — the model-zoo warming loop of cmd/curvewarm.
// Files are visited in sorted order; per-file failures are recorded in
// the returned outcomes and do not stop the walk. The error return is
// reserved for an unreadable directory.
func WarmSpecDir(ctx context.Context, st *store.Store, dir string, exec workload.Exec, logf func(format string, args ...any)) ([]WarmOutcome, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sort.Strings(matches)
	outcomes := make([]WarmOutcome, 0, len(matches))
	for _, path := range matches {
		if ctx.Err() != nil {
			return outcomes, ctx.Err()
		}
		out := WarmOutcome{Path: path}
		out.Err = func() error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			spec, err := workload.Decode(data)
			if err != nil {
				return fmt.Errorf("decoding spec: %w", err)
			}
			_, digest, err := store.Identity(spec)
			if err != nil {
				return err
			}
			out.Digest = digest
			res, err := StoreRun(ctx, st, spec, exec)
			if err != nil {
				return err
			}
			out.Hit = res.Hit
			out.Evaluated = res.Evaluated
			out.Points = res.Curve.Len()
			return nil
		}()
		if out.Err != nil {
			logf("warm %s: %v", path, out.Err)
		} else if out.Hit {
			logf("warm %s: hit %.12s (%d points)", path, out.Digest, out.Points)
		} else {
			logf("warm %s: derived %.12s (%d candidates, %d points)", path, out.Digest, out.Evaluated, out.Points)
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}
