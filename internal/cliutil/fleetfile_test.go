package cliutil

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseWorkerURLs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , , ", nil},
		{"http://a:8081", []string{"http://a:8081"}},
		{"http://a:8081/, http://b:8082 ,", []string{"http://a:8081", "http://b:8082"}},
	}
	for _, tc := range cases {
		if got := ParseWorkerURLs(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseWorkerURLs(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestReadFleetFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.txt")
	content := "# the fleet\nhttp://a:8081/\n\nhttp://b:8082 # joined later\nhttp://c:8083, http://d:8084\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFleetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8081", "http://b:8082", "http://c:8083", "http://d:8084"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadFleetFile = %v, want %v", got, want)
	}

	// An empty file is a valid empty membership, not an error.
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFleetFile(empty); err != nil || len(got) != 0 {
		t.Fatalf("ReadFleetFile(empty) = %v, %v; want empty membership, nil error", got, err)
	}

	// A missing file is an error (membership stays unchanged on reload).
	if _, err := ReadFleetFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("ReadFleetFile(missing) succeeded, want error")
	}
}
