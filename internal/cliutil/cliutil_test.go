package cliutil

import "testing"

func TestParseDims(t *testing.T) {
	d, err := ParseDims("4096, 128,4096", 3)
	if err != nil || d[0] != 4096 || d[1] != 128 || d[2] != 4096 {
		t.Fatalf("ParseDims = %v, %v", d, err)
	}
	bad := []string{"1,2", "1,2,3,4", "a,b,c", "0,1,2", "-1,2,3"}
	for _, s := range bad {
		if _, err := ParseDims(s, 3); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"512", 512},
		{"512B", 512},
		{"4KB", 4 << 10},
		{"40MB", 40 << 20},
		{"2GB", 2 << 30},
		{" 16 kb ", 16 << 10},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseBytes(%q) = (%d,%v), want %d", c.in, got, err, c.want)
		}
	}
	for _, s := range []string{"", "MB", "-4KB", "x"} {
		if _, err := ParseBytes(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestParseLevels(t *testing.T) {
	l, err := ParseLevels("L1=192KB,L2=40MB")
	if err != nil || l["L1"] != 192<<10 || l["L2"] != 40<<20 {
		t.Fatalf("ParseLevels = %v, %v", l, err)
	}
	for _, s := range []string{"L1", "L1=", "L1=x"} {
		if _, err := ParseLevels(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestParseConv(t *testing.T) {
	cfg, err := ParseConv("P=16,Q=16,N=64,C=64,R=3,S=3,T=2,D=2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.T != 2 || cfg.D != 2 || cfg.R != 3 {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Defaults for stride/dilation.
	cfg, err = ParseConv("P=4,Q=4,N=2,C=2,R=1,S=1")
	if err != nil || cfg.T != 1 || cfg.D != 1 {
		t.Fatalf("defaults broken: %+v, %v", cfg, err)
	}
	bad := []string{
		"P=16",                        // missing fields
		"P=16,Q=16,N=64,C=64,R=3",     // missing S
		"Z=1,P=4,Q=4,N=2,C=2,R=1,S=1", // unknown
		"P=x,Q=4,N=2,C=2,R=1,S=1",
	}
	for _, s := range bad {
		if _, err := ParseConv(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestParseChainOps(t *testing.T) {
	ops, err := ParseChainOps("4096x16384, 16384x4096")
	if err != nil || len(ops) != 2 || ops[0] != [2]int64{4096, 16384} {
		t.Fatalf("ParseChainOps = %v, %v", ops, err)
	}
	for _, s := range []string{"4096", "ax4", "4x0"} {
		if _, err := ParseChainOps(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}
