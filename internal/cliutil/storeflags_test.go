package cliutil

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/store"
	"repro/internal/workload"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreRunMissThenHit: the first run derives and persists, the
// second replays — same curve bytes, no derivation.
func TestStoreRunMissThenHit(t *testing.T) {
	st := testStore(t)
	spec := workload.NewBound(einsum.GEMM("gemm_16x8x8", 16, 8, 8), bound.Options{})
	exec := workload.Exec{Workers: 2}

	first, err := StoreRun(context.Background(), st, spec, exec)
	if err != nil {
		t.Fatal(err)
	}
	if first.Hit {
		t.Fatal("first run reported a hit on an empty store")
	}
	second, err := StoreRun(context.Background(), st, spec, exec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Hit {
		t.Fatal("second run missed a persisted result")
	}
	w, _ := json.Marshal(first.Curve)
	g, _ := json.Marshal(second.Curve)
	if string(w) != string(g) {
		t.Fatal("replayed curve not byte-identical to the derived one")
	}
	if second.Evaluated != first.Evaluated {
		t.Fatalf("replayed evaluated %d, derived %d", second.Evaluated, first.Evaluated)
	}
}

// TestStoreRunNilStoreDerives: no -store-dir means plain derivation.
func TestStoreRunNilStoreDerives(t *testing.T) {
	spec := workload.NewBound(einsum.GEMM("gemm_16x8x8", 16, 8, 8), bound.Options{})
	res, err := StoreRun(context.Background(), nil, spec, workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hit {
		t.Fatal("nil store reported a hit")
	}
	if res.Curve == nil || res.Curve.Len() == 0 {
		t.Fatal("nil-store run produced no curve")
	}
}

// TestWarmSpecDir: the model-zoo loop — derive everything on the first
// walk, hit everything on the second, record (and survive) a bad file.
func TestWarmSpecDir(t *testing.T) {
	dir := t.TempDir()
	for name, e := range map[string]*einsum.Einsum{
		"a": einsum.GEMM("gemm_16x8x8", 16, 8, 8),
		"b": einsum.GEMM("gemm_8x8x8", 8, 8, 8),
	} {
		data, err := workload.NewBound(e, bound.Options{}).Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.json"), []byte("not a spec"), 0o644); err != nil {
		t.Fatal(err)
	}

	st := testStore(t)
	exec := workload.Exec{Workers: 2}
	outcomes, err := WarmSpecDir(context.Background(), st, dir, exec, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("%d outcomes, want 3", len(outcomes))
	}
	var derived, failed int
	for _, o := range outcomes {
		switch {
		case o.Err != nil:
			failed++
		case o.Hit:
			t.Fatalf("first walk hit %s on an empty store", o.Path)
		default:
			derived++
		}
	}
	if derived != 2 || failed != 1 {
		t.Fatalf("first walk derived %d / failed %d, want 2 / 1", derived, failed)
	}

	again, err := WarmSpecDir(context.Background(), st, dir, exec, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range again {
		if o.Err == nil && !o.Hit {
			t.Fatalf("second walk re-derived %s", o.Path)
		}
	}

	// Cancellation stops the walk between files.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WarmSpecDir(ctx, st, dir, exec, nil); err == nil {
		t.Fatal("cancelled walk reported no error")
	}
}
