package cliutil

import (
	"fmt"
	"os"
	"strings"
)

// ParseWorkerURLs splits a comma-separated fleet worker list into
// normalized base URLs: whitespace-trimmed, trailing slashes dropped,
// empty entries skipped. The shared parser behind the -fleet flags.
func ParseWorkerURLs(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/")); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// ReadFleetFile reads a fleet membership file: one worker base URL per
// line (commas within a line also separate entries), blank lines and
// #-comment lines ignored. An existing empty file is a valid empty
// membership — the coordinator derives locally until workers appear —
// so callers can reload it at runtime (orojenesisd rereads -fleet-file
// on SIGHUP) to add and remove workers without a restart.
func ReadFleetFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet file: %w", err)
	}
	var urls []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		urls = append(urls, ParseWorkerURLs(line)...)
	}
	return urls, nil
}
