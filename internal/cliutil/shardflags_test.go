package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/serve"
	"repro/internal/workload"
)

func TestAddShardFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddShardFlags(fs, "indices")
	if f.Active() {
		t.Fatal("zero-value shard flags report active")
	}
	args := []string{
		"-shard", "1/4", "-out", "p.json", "-checkpoint", "7",
		"-shard-dir", "parts", "-retries", "-1", "-allow-partial",
		"-fleet", "http://localhost:8081,http://localhost:8082",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if !f.Active() {
		t.Fatal("-shard did not activate sharded mode")
	}
	if f.Shard != "1/4" || f.Out != "p.json" || f.Checkpoint != 7 ||
		f.ShardDir != "parts" || f.Retries != -1 || !f.AllowPartial ||
		f.Fleet != "http://localhost:8081,http://localhost:8082" {
		t.Fatalf("parsed flags %+v do not match the command line", f)
	}

	fs3 := flag.NewFlagSet("test3", flag.ContinueOnError)
	f3 := AddShardFlags(fs3, "indices")
	if err := fs3.Parse([]string{"-fleet", "http://localhost:8081"}); err != nil {
		t.Fatal(err)
	}
	if !f3.Active() {
		t.Fatal("bare -fleet did not activate sharded mode (its -supervise diagnosis would never surface)")
	}

	fs2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	f2 := AddShardFlags(fs2, "indices")
	if err := fs2.Parse([]string{"-supervise", "3"}); err != nil {
		t.Fatal(err)
	}
	if !f2.Active() || f2.Supervise != 3 {
		t.Fatalf("-supervise 3 parsed as %+v", f2)
	}
}

// TestRunSpecSupervisedRoundTrip: the -spec FILE mode drives a decoded
// Spec through the supervised sharded path and writes the same curve an
// in-process run of that Spec produces.
func TestRunSpecSupervisedRoundTrip(t *testing.T) {
	e := einsum.GEMM("gemm_16x12x8", 16, 12, 8)
	spec := workload.NewBound(e, bound.Options{})
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "curve.json")
	f := &ShardFlags{Supervise: 2, ShardDir: filepath.Join(dir, "parts"), Out: out}
	RunSpec(specPath, f, nil, 2, false, nil)

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(context.Background(), workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), want) {
		t.Fatalf("spec-run supervised merge differs from in-process run\n got %s\nwant %s", got, want)
	}
}

// TestRunSpecFleetRoundTrip: the -spec FILE mode with -fleet dispatches
// the decoded Spec's shards to a live worker server over HTTP and writes
// the same curve an in-process run produces.
func TestRunSpecFleetRoundTrip(t *testing.T) {
	worker := serve.New(serve.Config{Workers: 2, WorkerDir: t.TempDir()})
	ts := httptest.NewServer(worker.Handler())
	t.Cleanup(func() {
		ts.Close()
		worker.Close()
	})

	e := einsum.GEMM("gemm_16x12x8", 16, 12, 8)
	spec := workload.NewBound(e, bound.Options{})
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "curve.json")
	f := &ShardFlags{Supervise: 2, ShardDir: filepath.Join(dir, "parts"), Fleet: ts.URL, Out: out}
	RunSpec(specPath, f, nil, 2, false, nil)

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run(context.Background(), workload.Exec{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Curve)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), want) {
		t.Fatalf("spec-run fleet merge differs from in-process run\n got %s\nwant %s", got, want)
	}
	if worker.Snapshot().WorkerShards != 2 {
		t.Fatalf("worker derived %d shards, want 2", worker.Snapshot().WorkerShards)
	}
}
