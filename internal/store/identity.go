package store

import (
	"repro/internal/shard"
	"repro/internal/workload"
)

// Identity returns the cache identity of a workload Spec: the composite
// key "kind|workloadDigest|optionsDigest" and its digest — the content
// address under which the derived curve lives in this store, in the
// server's memory LRU, and in its spool directory. One identity rule
// shared by the server and the CLIs is what lets a batch job warm the
// cache a server later reads.
//
// For every kind except segmentation the digests are exactly the
// shard-job digests (Spec.Digests). Segmentation is the documented
// exception: its shard jobs hash the derived per-op input curves into
// the workload digest (shard.SegmentationCanonical), but those curves
// are derived after the cache identity must already exist, so the cache
// identity hashes only the chain. The divergence is sound because the
// per-op curves are a pure function of the chain (derived with default
// bound options): equal chains always yield equal shard digests. Pinned
// by the cross-layer identity test in internal/serve.
func Identity(spec *workload.Spec) (key, digest string, err error) {
	var wd, od string
	if spec.Kind == shard.KindSegmentation {
		wd, od = shard.Digest(spec.Chain.Canonical()), shard.Digest("segmentation{}")
	} else {
		wd, od, err = spec.Digests()
		if err != nil {
			return "", "", err
		}
	}
	key = string(spec.Kind) + "|" + wd + "|" + od
	return key, shard.Digest(key), nil
}
