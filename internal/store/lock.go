package store

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
)

// tryLock acquires the store's cross-process GC lock without blocking:
// an exclusive flock on dir/store.lock. The kernel releases a flock when
// its holder dies, so a crashed GC never wedges the directory. Returns
// ok=false when another process holds the lock (its GC is already
// shrinking the directory) or when the lock file cannot be opened (the
// sweep is skipped — GC is an optimization, never a correctness
// requirement).
func (s *Store) tryLock() (unlock func(), ok bool) {
	f, err := os.OpenFile(filepath.Join(s.dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		s.log("store: opening lock file: %v", err)
		return nil, false
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, false
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, true
}

// isNoSpace reports a disk-full failure (ENOSPC, or EDQUOT where quotas
// apply) — the class Put answers with a GC-and-retry before disabling.
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// isUnwritable reports a permission-class failure (EACCES, EPERM,
// EROFS) — the directory will not start accepting writes on its own, so
// Put disables the tier immediately instead of failing every request.
func isUnwritable(err error) bool {
	return errors.Is(err, syscall.EACCES) || errors.Is(err, syscall.EPERM) ||
		errors.Is(err, syscall.EROFS)
}
