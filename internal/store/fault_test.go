package store_test

// The fault matrix: every storage-level failure the store promises to
// survive — torn writes, interrupted renames, zeroed tails, flipped
// bytes, truncation, stale engines, misnamed files, ENOSPC, concurrent
// writers — driven through the shard.FaultFS seam or direct file
// surgery. The invariant under test is single: no fault may ever yield
// a served curve that is not byte-identical to the derived one. A fault
// may cost a re-derivation (the entry degrades to a miss and is
// quarantined); it may never corrupt an answer.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"repro/internal/shard"
	"repro/internal/store"
)

// corpse reads the committed entry file for digest out of a scratch
// store, giving fault scenarios valid bytes to mutilate.
func corpse(t *testing.T, digest string) []byte {
	t.Helper()
	s := open(t, store.Options{})
	if err := s.Put(digest, testEntry(testCurve())); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(s.Dir(), digest+".curve"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// assertQuarantinedAndRederived drives the recovery half of every
// scenario: the planted bytes must read as a miss, leave a quarantine
// file, and the slot must accept a re-derived entry that reads back
// byte-identical.
func assertQuarantinedAndRederived(t *testing.T, s *store.Store, digest string) {
	t.Helper()
	if _, ok := s.Get(digest); ok {
		t.Fatal("fault-damaged entry was served")
	}
	matches, err := filepath.Glob(filepath.Join(s.Dir(), digest+".corrupt*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("damaged entry not quarantined")
	}
	ent := testEntry(testCurve())
	want := mustJSON(t, ent)
	if err := s.Put(digest, ent); err != nil {
		t.Fatalf("re-derive after quarantine: %v", err)
	}
	got, ok := s.Get(digest)
	if !ok {
		t.Fatal("re-derived entry missed")
	}
	if string(mustJSON(t, got)) != string(want) {
		t.Fatal("re-derived entry not byte-identical")
	}
}

// plant writes raw bytes at digest's committed path.
func plant(t *testing.T, s *store.Store, digest string, data []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(s.Dir(), digest+".curve"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestFaultTornRename(t *testing.T) {
	injected := errors.New("injected rename fault")
	ffs := &shard.FaultFS{Fail: shard.FailN(shard.OpRename, 1, injected)}
	s := open(t, store.Options{FS: ffs, Logf: t.Logf})
	digest := shard.Digest("workload-a")
	ent := testEntry(testCurve())
	if err := s.Put(digest, ent); !errors.Is(err, injected) {
		t.Fatalf("Put error = %v, want the injected rename fault", err)
	}
	// The failed commit must leave neither an entry nor its temp behind.
	if _, ok := s.Get(digest); ok {
		t.Fatal("entry visible after failed rename")
	}
	left, err := filepath.Glob(filepath.Join(s.Dir(), "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("temp files left after failed rename: %v", left)
	}
	// The fault was transient: the retry commits and round-trips.
	if err := s.Put(digest, ent); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(digest)
	if !ok {
		t.Fatal("retry entry missed")
	}
	if string(mustJSON(t, got)) != string(mustJSON(t, ent)) {
		t.Fatal("retry entry not byte-identical")
	}
	if we := s.StatsSnapshot().WriteErrors; we != 1 {
		t.Fatalf("write_errors = %d, want 1", we)
	}
}

func TestFaultSyncFailure(t *testing.T) {
	injected := errors.New("injected sync fault")
	ffs := &shard.FaultFS{Fail: shard.FailN(shard.OpSync, 1, injected)}
	s := open(t, store.Options{FS: ffs, Logf: t.Logf})
	digest := shard.Digest("workload-a")
	if err := s.Put(digest, testEntry(testCurve())); !errors.Is(err, injected) {
		t.Fatalf("Put error = %v, want the injected sync fault", err)
	}
	if _, ok := s.Get(digest); ok {
		t.Fatal("entry visible after failed sync")
	}
	if err := s.Put(digest, testEntry(testCurve())); err != nil {
		t.Fatal(err)
	}
}

// TestFaultKillMidWrite simulates a process killed between temp write
// and rename: a half-written temp file left on disk. A restart must
// sweep it and the entry must remain a plain miss.
func TestFaultKillMidWrite(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := corpse(t, digest)

	dir := t.TempDir()
	torn := filepath.Join(dir, digest+".curve.tmp1234567")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, store.Options{Dir: dir, StaleTempAge: -1, Logf: t.Logf})
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn temp survived the startup sweep: %v", err)
	}
	if _, ok := s.Get(digest); ok {
		t.Fatal("Get hit with no committed entry")
	}
	if err := s.Put(digest, testEntry(testCurve())); err != nil {
		t.Fatal(err)
	}
}

func TestFaultZeroedTail(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := corpse(t, digest)
	for i := len(data) * 3 / 4; i < len(data); i++ {
		data[i] = 0
	}
	s := open(t, store.Options{Logf: t.Logf})
	plant(t, s, digest, data)
	assertQuarantinedAndRederived(t, s, digest)
}

func TestFaultFlippedByte(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := corpse(t, digest)
	data[len(data)/2] ^= 0x01
	s := open(t, store.Options{Logf: t.Logf})
	plant(t, s, digest, data)
	assertQuarantinedAndRederived(t, s, digest)
}

func TestFaultTruncation(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := corpse(t, digest)
	s := open(t, store.Options{Logf: t.Logf})
	plant(t, s, digest, data[:len(data)/2])
	assertQuarantinedAndRederived(t, s, digest)
}

// testEnvelope mirrors the on-disk envelope with the payload kept raw,
// so a test can falsify one header field while leaving the payload
// bytes — and their checksum — intact.
type testEnvelope struct {
	FormatVersion int             `json:"format_version"`
	Engine        string          `json:"engine"`
	Digest        string          `json:"digest"`
	PayloadSHA256 string          `json:"payload_sha256"`
	Payload       json.RawMessage `json:"payload"`
}

func rewriteEnvelope(t *testing.T, data []byte, mutate func(*testEnvelope)) []byte {
	t.Helper()
	var env testEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	mutate(&env)
	out, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFaultWrongEngine: an entry written by a different derivation
// engine revision is internally consistent — valid JSON, valid
// checksum — and must still be rejected, or an engine upgrade would
// serve stale physics.
func TestFaultWrongEngine(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := rewriteEnvelope(t, corpse(t, digest), func(env *testEnvelope) {
		env.Engine = "orojenesis/0-ancient"
	})
	s := open(t, store.Options{Logf: t.Logf})
	plant(t, s, digest, data)
	assertQuarantinedAndRederived(t, s, digest)
}

func TestFaultWrongFormatVersion(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := rewriteEnvelope(t, corpse(t, digest), func(env *testEnvelope) {
		env.FormatVersion = store.FormatVersion + 1
	})
	s := open(t, store.Options{Logf: t.Logf})
	plant(t, s, digest, data)
	assertQuarantinedAndRederived(t, s, digest)
}

// TestFaultFlippedDigest: the recorded digest disagrees with the file's
// content address (e.g. a bit flip inside the digest field, or a file
// copied between slots). Checksum-valid, still rejected.
func TestFaultFlippedDigest(t *testing.T) {
	digest := shard.Digest("workload-a")
	data := rewriteEnvelope(t, corpse(t, digest), func(env *testEnvelope) {
		env.Digest = shard.Digest("some-other-workload")
	})
	s := open(t, store.Options{Logf: t.Logf})
	plant(t, s, digest, data)
	assertQuarantinedAndRederived(t, s, digest)
}

// TestFaultENOSPCDisables: a full disk (every write attempt ENOSPC,
// even after an emergency GC) disables the tier for the life of the
// process — reads of existing entries keep working, writes become
// explicit ErrDisabled no-ops, and the process never crashes.
func TestFaultENOSPCDisables(t *testing.T) {
	ffs := &shard.FaultFS{Fail: func(op shard.Op, _ string) error {
		if op == shard.OpWrite {
			return syscall.ENOSPC
		}
		return nil
	}}
	s := open(t, store.Options{FS: ffs, Logf: t.Logf})
	digest := shard.Digest("workload-a")
	if err := s.Put(digest, testEntry(testCurve())); err == nil {
		t.Fatal("Put on a full disk succeeded")
	}
	if !s.Disabled() {
		t.Fatal("store still enabled after persistent ENOSPC")
	}
	if err := s.Put(digest, testEntry(testCurve())); !errors.Is(err, store.ErrDisabled) {
		t.Fatalf("Put after disable = %v, want ErrDisabled", err)
	}
	if !s.StatsSnapshot().Disabled {
		t.Fatal("stats do not report the disabled tier")
	}
}

// TestFaultENOSPCRecovers: a single ENOSPC triggers the emergency-GC
// retry; when that retry succeeds the tier stays up.
func TestFaultENOSPCRecovers(t *testing.T) {
	ffs := &shard.FaultFS{Fail: shard.FailN(shard.OpWrite, 1, syscall.ENOSPC)}
	s := open(t, store.Options{FS: ffs, Logf: t.Logf})
	digest := shard.Digest("workload-a")
	ent := testEntry(testCurve())
	if err := s.Put(digest, ent); err != nil {
		t.Fatalf("Put with transient ENOSPC = %v, want recovery via GC+retry", err)
	}
	if s.Disabled() {
		t.Fatal("store disabled by a transient ENOSPC")
	}
	got, ok := s.Get(digest)
	if !ok {
		t.Fatal("recovered entry missed")
	}
	if string(mustJSON(t, got)) != string(mustJSON(t, ent)) {
		t.Fatal("recovered entry not byte-identical")
	}
}

// TestFaultUnwritableDisables: permission-class write failures disable
// immediately (no GC can free permissions).
func TestFaultUnwritableDisables(t *testing.T) {
	ffs := &shard.FaultFS{Fail: shard.FailN(shard.OpWrite, 1, syscall.EACCES)}
	s := open(t, store.Options{FS: ffs, Logf: t.Logf})
	if err := s.Put(shard.Digest("workload-a"), testEntry(testCurve())); err == nil {
		t.Fatal("Put on an unwritable directory succeeded")
	}
	if !s.Disabled() {
		t.Fatal("store still enabled after EACCES")
	}
}

// TestFaultConcurrentWritersAndReaders hammers one digest from many
// writers and readers at once (run under -race): rename-commit means a
// reader sees either a miss or the complete, byte-identical entry —
// never a torn mix.
func TestFaultConcurrentWritersAndReaders(t *testing.T) {
	dir := t.TempDir()
	digest := shard.Digest("contended")
	ent := testEntry(testCurve())
	want := string(mustJSON(t, ent))

	// Two handles on one directory, as in a warmer racing a server.
	a := open(t, store.Options{Dir: dir})
	b := open(t, store.Options{Dir: dir})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		s := a
		if i%2 == 1 {
			s = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if err := s.Put(digest, ent); err != nil {
					t.Errorf("concurrent Put: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		s := a
		if i%2 == 1 {
			s = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				got, ok := s.Get(digest)
				if !ok {
					continue // miss is legal while the first Put races
				}
				if string(mustJSON(t, got)) != want {
					t.Error("concurrent Get returned a non-byte-identical entry")
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := a.Get(digest)
	if !ok {
		t.Fatal("entry missing after the storm")
	}
	if string(mustJSON(t, got)) != want {
		t.Fatal("final entry not byte-identical")
	}
}
