package store_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	orojenesis "repro"
	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"
)

// testCurve builds a small valid frontier.
func testCurve() *pareto.Curve {
	c := pareto.FromPoints([]pareto.Point{
		{BufferBytes: 64, AccessBytes: 1000},
		{BufferBytes: 128, AccessBytes: 500},
		{BufferBytes: 256, AccessBytes: 250},
	})
	c.AlgoMinBytes = 200
	c.TotalOperandBytes = 4096
	return c
}

// bigCurve builds a frontier of n points, for GC byte-pressure tests.
func bigCurve(n int) *pareto.Curve {
	pts := make([]pareto.Point, n)
	for i := range pts {
		pts[i] = pareto.Point{BufferBytes: int64(i + 1), AccessBytes: int64(2*n - i)}
	}
	return pareto.FromPoints(pts)
}

func testEntry(c *pareto.Curve) *store.Entry {
	return &store.Entry{Kind: shard.KindBound, Workload: "gemm_test", Evaluated: 123, ElapsedMS: 45, Curve: c}
}

func open(t *testing.T, opts store.Options) *store.Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustJSON is the byte-identity yardstick: two curves are the same
// result iff they marshal to the same bytes.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, store.Options{Logf: t.Logf})
	digest := shard.Digest("workload-a")
	ent := testEntry(testCurve())
	ent.Segments = []workload.Segment{{Label: "[0:2)", Points: 3, Curve: testCurve()}}
	if err := s.Put(digest, ent); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), digest+".curve")); err != nil {
		t.Fatalf("committed entry not at its content address: %v", err)
	}
	got, ok := s.Get(digest)
	if !ok {
		t.Fatal("Get missed a just-written entry")
	}
	if !reflect.DeepEqual(mustJSON(t, got), mustJSON(t, ent)) {
		t.Fatalf("round trip not byte-identical:\n got %s\nwant %s", mustJSON(t, got), mustJSON(t, ent))
	}
	if _, ok := s.Get(shard.Digest("workload-b")); ok {
		t.Fatal("Get hit an absent digest")
	}
	st := s.StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 write / 1 entry", st)
	}
}

func TestPutRefusesDegradedAndNilCurves(t *testing.T) {
	s := open(t, store.Options{})
	bad := testCurve()
	bad.Degraded = true
	if err := s.Put(shard.Digest("d"), testEntry(bad)); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("degraded Put error = %v, want ErrDegraded", err)
	}
	if err := s.Put(shard.Digest("d"), &store.Entry{Kind: shard.KindBound}); err == nil {
		t.Fatal("curveless Put accepted")
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("%d entries persisted from refused Puts", n)
	}
}

func TestMaxBytesClamping(t *testing.T) {
	if s := open(t, store.Options{}); s.MaxBytes() != store.DefaultMaxBytes {
		t.Fatalf("default cap %d, want %d", s.MaxBytes(), store.DefaultMaxBytes)
	}
	if s := open(t, store.Options{MaxBytes: 5}); s.MaxBytes() != store.MinMaxBytes {
		t.Fatalf("tiny cap clamped to %d, want %d", s.MaxBytes(), store.MinMaxBytes)
	}
	if s := open(t, store.Options{MaxBytes: -3}); s.MaxBytes() != store.DefaultMaxBytes {
		t.Fatalf("negative cap %d, want default %d", s.MaxBytes(), store.DefaultMaxBytes)
	}
}

// TestCorruptEntryQuarantinedAndRederived is the core promise: a flipped
// byte is a miss plus a quarantine file, never a wrong curve, and the
// slot accepts a re-derived replacement.
func TestCorruptEntryQuarantinedAndRederived(t *testing.T) {
	s := open(t, store.Options{Logf: t.Logf})
	digest := shard.Digest("workload-a")
	ent := testEntry(testCurve())
	want := mustJSON(t, ent)
	if err := s.Put(digest, ent); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(s.Dir(), digest+".curve")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(digest); ok {
		t.Fatal("Get returned a corrupt entry")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), digest+".corrupt")); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt entry still at its content address: %v", err)
	}

	if err := s.Put(digest, ent); err != nil {
		t.Fatalf("re-derive rewrite: %v", err)
	}
	got, ok := s.Get(digest)
	if !ok {
		t.Fatal("Get missed the re-derived entry")
	}
	if string(mustJSON(t, got)) != string(want) {
		t.Fatal("re-derived entry not byte-identical to the original")
	}
	if q := s.StatsSnapshot().Quarantines; q != 1 {
		t.Fatalf("quarantines = %d, want 1", q)
	}
}

// TestMisplacedEntryNeverAnswers: a valid entry renamed to another
// digest's slot fails the content-address check — a disk-level mixup can
// cost a derivation, never serve the wrong workload's curve.
func TestMisplacedEntryNeverAnswers(t *testing.T) {
	s := open(t, store.Options{Logf: t.Logf})
	a, b := shard.Digest("workload-a"), shard.Digest("workload-b")
	if err := s.Put(a, testEntry(testCurve())); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(s.Dir(), a+".curve"), filepath.Join(s.Dir(), b+".curve")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("misplaced entry answered for the wrong digest")
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), b+".corrupt")); err != nil {
		t.Fatalf("misplaced entry not quarantined: %v", err)
	}
}

// TestQuarantineNamesAccumulate: repeated corruption of one slot fills
// .corrupt, .corrupt.1, ... instead of overwriting the evidence.
func TestQuarantineNamesAccumulate(t *testing.T) {
	s := open(t, store.Options{Logf: t.Logf})
	digest := shard.Digest("workload-a")
	path := filepath.Join(s.Dir(), digest+".curve")
	for i := 0; i < 3; i++ {
		if err := os.WriteFile(path, []byte(fmt.Sprintf("garbage %d", i)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(digest); ok {
			t.Fatal("garbage served")
		}
	}
	for _, name := range []string{".corrupt", ".corrupt.1", ".corrupt.2"} {
		if _, err := os.Stat(filepath.Join(s.Dir(), digest+name)); err != nil {
			t.Fatalf("quarantine generation %s missing: %v", name, err)
		}
	}
}

func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, shard.Digest("x")+".curve.tmp123")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh temp may belong to a live writer in another process: the
	// default sweep must spare it.
	open(t, store.Options{Dir: dir})
	if _, err := os.Stat(stale); err != nil {
		t.Fatalf("fresh temp swept by age-gated Open: %v", err)
	}

	// A negative age sweeps unconditionally (and any real reopen after
	// StaleTempAge would do the same for an old temp).
	open(t, store.Options{Dir: dir, StaleTempAge: -1})
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp survived the sweep: %v", err)
	}
}

// TestGCEvictsLeastRecentlyUsed fills the store past its (clamped
// minimum) cap and checks the sweep removes the coldest entries first —
// a Get refreshes recency, so the read entry must survive.
func TestGCEvictsLeastRecentlyUsed(t *testing.T) {
	s := open(t, store.Options{MaxBytes: 1, Logf: t.Logf}) // clamped to MinMaxBytes = 1 MiB
	// Each entry is ~410 KiB: three cross the 1 MiB cap, and evicting
	// exactly one lands under the low-water mark, so GC removes only the
	// coldest entry.
	big := bigCurve(10000)
	digests := []string{shard.Digest("a"), shard.Digest("b"), shard.Digest("c")}
	if err := s.Put(digests[0], testEntry(big)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Put(digests[1], testEntry(big)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	// Touch the oldest entry: recency, not write order, decides eviction.
	if _, ok := s.Get(digests[0]); !ok {
		t.Fatal("warm-up Get missed")
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Put(digests[2], testEntry(big)); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(digests[1]); ok {
		t.Fatal("coldest entry survived GC")
	}
	if _, ok := s.Get(digests[0]); !ok {
		t.Fatal("recently-read entry evicted before the coldest")
	}
	st := s.StatsSnapshot()
	if st.GCRemoved == 0 {
		t.Fatalf("gc_removed = 0 after crossing the cap: %+v", st)
	}
	if st.Bytes > s.MaxBytes() {
		t.Fatalf("directory %d bytes still above cap %d after GC", st.Bytes, s.MaxBytes())
	}
}

// TestCrossProcessSharing simulates the CLI-warmer-plus-server layout:
// two Store handles on one directory, writes from either visible to the
// other.
func TestCrossProcessSharing(t *testing.T) {
	dir := t.TempDir()
	warmer := open(t, store.Options{Dir: dir})
	server := open(t, store.Options{Dir: dir})
	digest := shard.Digest("shared")
	ent := testEntry(testCurve())
	if err := warmer.Put(digest, ent); err != nil {
		t.Fatal(err)
	}
	got, ok := server.Get(digest)
	if !ok {
		t.Fatal("second handle missed the first handle's write")
	}
	if string(mustJSON(t, got)) != string(mustJSON(t, ent)) {
		t.Fatal("cross-handle read not byte-identical")
	}
}

// TestIdentityMatchesShardDigests pins the shared cache-identity rule:
// for materialized kinds it is exactly the shard-job digests, and for
// segmentation it hashes the chain without requiring materialization.
func TestIdentityMatchesShardDigests(t *testing.T) {
	e := mustGEMMSpec(t)
	wd, od, err := e.Digests()
	if err != nil {
		t.Fatal(err)
	}
	key, digest, err := store.Identity(e)
	if err != nil {
		t.Fatal(err)
	}
	wantKey := string(e.Kind) + "|" + wd + "|" + od
	if key != wantKey {
		t.Fatalf("key %q, want %q", key, wantKey)
	}
	if digest != shard.Digest(wantKey) {
		t.Fatalf("digest %q, want shard.Digest(key)", digest)
	}
}

func mustGEMMSpec(t *testing.T) *workload.Spec {
	t.Helper()
	return workload.NewBound(orojenesis.GEMM("gemm_test", 8, 8, 8), orojenesis.Options{})
}

// TestOpenFailsOnUnusableDir: Open reports an unusable directory so the
// caller can degrade, instead of deferring the failure to mid-traffic
// Puts.
func TestOpenFailsOnUnusableDir(t *testing.T) {
	ffs := &shard.FaultFS{Fail: func(op shard.Op, _ string) error {
		if op == shard.OpCreateTemp {
			return syscall.EACCES
		}
		return nil
	}}
	_, err := store.Open(store.Options{Dir: t.TempDir(), FS: ffs})
	if err == nil || !strings.Contains(err.Error(), "not writable") {
		t.Fatalf("Open on an unwritable directory: %v", err)
	}
}
