// Package store is the durable curve tier: a content-addressed on-disk
// cache of derived Pareto curves, keyed by the same canonical
// workload/options digests the shard format and the derivation server
// already use. A derived curve is valid forever for its digest — the
// digest hashes everything that affects the result and nothing that does
// not — so persisting it turns every repeated workload shape into a disk
// hit instead of a re-derivation, across process restarts and across
// processes (a CLI warmer and a running orojenesisd share one
// directory).
//
// A disk cache is only a win if a torn write or a flipped byte can never
// surface as a wrong curve, so every entry is defended in depth:
//
//   - Writes are atomic and durable: temp file in the same directory,
//     fsync the file, rename over the target, fsync the directory — the
//     checkpoint discipline internal/shard pinned for partial frontiers.
//     A kill mid-write leaves a stale temp (swept on Open), never a torn
//     entry under the final name.
//   - Reads verify before they trust: the envelope's format version,
//     engine revision, and recorded digest must match, and the payload
//     bytes must hash to the recorded sha256. Anything else — truncated
//     JSON, a zeroed tail, a flipped byte, a stale engine, a misnamed
//     file — is quarantined to <digest>.corrupt[.N] and reported as a
//     miss, so the caller re-derives and rewrites. A corrupt entry can
//     cost a derivation; it can never alter a served curve.
//   - The store degrades, never fails: an unwritable directory or a disk
//     that stays full after GC disables the tier (logged once, visible
//     in Stats), and callers fall back to deriving as if the store were
//     never configured.
//   - Degraded (partial-coverage) curves are rejected by Put: the store
//     only ever holds exact results.
//
// Capacity is a byte cap enforced by LRU-by-recency GC: Get refreshes an
// entry's file time, GC removes the coldest entries until the directory
// is back under the cap. Cross-process safety comes from the atomicity
// of rename (concurrent writers of one digest write identical bytes, so
// either version is correct) plus a flock'd lock file that serializes GC
// sweeps. See docs/curve-store.md for the layout and failure model.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pareto"
	"repro/internal/shard"
	"repro/internal/workload"
)

// FormatVersion is the entry-envelope schema version this package
// writes; readers refuse other versions (quarantine-and-re-derive, like
// any other invalid entry).
const FormatVersion = 1

// DefaultMaxBytes is the GC byte cap when Options.MaxBytes is zero or
// negative: 1 GiB.
const DefaultMaxBytes = 1 << 30

// MinMaxBytes is the smallest byte cap Open accepts; smaller requested
// caps are clamped up to it so a typo'd -store-max-bytes cannot turn the
// store into a thrash loop that GCs every entry it writes.
const MinMaxBytes = 1 << 20

// DefaultStaleTempAge is how old a leftover temp file must be before the
// Open sweep removes it. Fresh temps are left alone: they may belong to
// a concurrent writer (another process mid-Put), whose rename would
// otherwise fail.
const DefaultStaleTempAge = time.Hour

// entrySuffix is the file suffix of committed entries:
// <digest>.curve.
const entrySuffix = ".curve"

// corruptSuffix begins the quarantine names: <digest>.corrupt, then
// .corrupt.1, .corrupt.2, ... when earlier quarantines already hold the
// base name.
const corruptSuffix = ".corrupt"

// lockFile is the flock target serializing GC sweeps across processes.
const lockFile = "store.lock"

// gcLowWater is the fraction of MaxBytes GC shrinks to, so each sweep
// buys headroom instead of running again on the very next Put.
const gcLowWater = 0.9

// ErrDisabled marks operations on a store that has degraded to a no-op
// tier (unwritable directory, disk full after GC). Callers treat it
// like a miss and derive.
var ErrDisabled = errors.New("store: disabled")

// ErrDegraded marks a Put of a degraded (partial-coverage) curve, which
// the store refuses: only exact results are ever persisted.
var ErrDegraded = errors.New("store: refusing to persist a degraded curve")

// ErrCorruptEntry marks an entry that failed verification (torn JSON,
// checksum mismatch, wrong engine or digest). Get quarantines such
// entries and reports a miss; the sentinel is exported for tests and
// log matching.
var ErrCorruptEntry = errors.New("store: corrupt entry")

// Entry is one stored derivation result: the curve plus the replayable
// response metadata (evaluated count, original wall time, per-strategy
// segments of in-process segmentation studies).
type Entry struct {
	// Kind is the derivation path the curve came from.
	Kind shard.Kind `json:"kind"`
	// Workload is the human-readable workload label (informational; the
	// digest is authoritative).
	Workload string `json:"workload,omitempty"`
	// Evaluated is the number of enumeration indices the original
	// derivation evaluated.
	Evaluated int64 `json:"evaluated"`
	// ElapsedMS is the original derivation's wall time in milliseconds,
	// replayed to clients served from the store.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Curve is the derived frontier. Never nil and never degraded in a
	// valid entry.
	Curve *pareto.Curve `json:"curve"`
	// Segments are the per-strategy curves of an in-process segmentation
	// study; nil for every other kind and for sharded runs.
	Segments []workload.Segment `json:"segments,omitempty"`
}

// envelope is the on-disk schema: a header that authenticates the
// payload before anything inside it is trusted.
type envelope struct {
	// FormatVersion pins the envelope schema (the package constant).
	FormatVersion int `json:"format_version"`
	// Engine is the derivation engine revision (shard.Engine) whose
	// curves the payload holds; entries from other revisions are
	// quarantined, because their curves may legitimately differ.
	Engine string `json:"engine"`
	// Digest is the full derivation digest; it must match both the
	// requested digest and the file name, so a misplaced or renamed
	// entry can never answer for the wrong workload.
	Digest string `json:"digest"`
	// PayloadSHA256 is the hex sha256 of the exact Payload bytes below.
	PayloadSHA256 string `json:"payload_sha256"`
	// Payload is the serialized Entry.
	Payload json.RawMessage `json:"payload"`
}

// Options configures Open. Only Dir is required.
type Options struct {
	// Dir is the store directory; created if absent.
	Dir string

	// MaxBytes caps the committed entries' total size; GC removes the
	// least recently used entries past it. <= 0 means DefaultMaxBytes;
	// positive values below MinMaxBytes are clamped up to it.
	MaxBytes int64

	// FS overrides the filesystem — the fault-injection seam
	// (shard.FaultFS satisfies it). Nil means the real OS filesystem.
	FS shard.FS

	// StaleTempAge overrides how old a leftover temp file must be before
	// the Open sweep removes it; 0 means DefaultStaleTempAge, negative
	// sweeps every temp regardless of age (tests).
	StaleTempAge time.Duration

	// Logf, when non-nil, receives operational log lines (quarantines,
	// GC sweeps, the one-time disable notice).
	Logf func(format string, args ...any)
}

// Store is the durable curve tier. All methods are safe for concurrent
// use, and multiple processes may share one directory.
type Store struct {
	dir      string
	maxBytes int64
	fs       shard.FS
	tempAge  time.Duration
	logf     func(format string, args ...any)

	// approxBytes tracks the committed entries' total size as this
	// process observes it: seeded by the Open scan, advanced by Put,
	// reset by each GC rescan. It only triggers GC; GC itself rescans.
	approxBytes atomic.Int64

	disabled    atomic.Bool
	disableOnce sync.Once

	// gcMu serializes GC within the process; the flock'd lock file
	// serializes it across processes.
	gcMu sync.Mutex

	hits        atomic.Int64
	misses      atomic.Int64
	writes      atomic.Int64
	writeErrors atomic.Int64
	quarantines atomic.Int64
	gcRemoved   atomic.Int64
}

// chtimesFS is the optional FS extension Get uses to refresh an entry's
// recency; filesystems without it (the fault seam) skip the touch.
type chtimesFS interface {
	// Chtimes sets the named file's access and modification times.
	Chtimes(name string, atime, mtime time.Time) error
}

// osFS is the default filesystem: shard.OS plus the Chtimes extension.
type osFS struct{ shard.FS }

// Chtimes implements chtimesFS.
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// Open validates the directory, sweeps stale temp files, scans the
// committed entries, and probes writability. An error means the tier is
// unusable (missing and uncreatable directory, unwritable directory);
// callers degrade to memory-only operation.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: no directory")
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	} else if opts.MaxBytes < MinMaxBytes {
		opts.MaxBytes = MinMaxBytes
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = osFS{shard.OS()}
	}
	if opts.StaleTempAge == 0 {
		opts.StaleTempAge = DefaultStaleTempAge
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", opts.Dir, err)
	}
	s := &Store{
		dir:      opts.Dir,
		maxBytes: opts.MaxBytes,
		fs:       fsys,
		tempAge:  opts.StaleTempAge,
		logf:     opts.Logf,
	}
	// Probe writability now, so a read-only directory fails Open (and
	// the caller degrades) instead of failing the first Put mid-traffic.
	probe, err := fsys.CreateTemp(s.dir, ".probe*")
	if err != nil {
		return nil, fmt.Errorf("store: directory %s is not writable: %w", s.dir, err)
	}
	probeName := probe.Name()
	if err := probe.Close(); err != nil {
		return nil, fmt.Errorf("store: directory %s probe: %w", s.dir, err)
	}
	_ = fsys.Remove(probeName)
	s.sweepStaleTemps()
	if ents, total, err := s.scan(); err != nil {
		s.log("store: scanning %s: %v", s.dir, err)
	} else {
		s.approxBytes.Store(total)
		s.log("store: opened %s: %d entries, %d bytes (cap %d)", s.dir, len(ents), total, s.maxBytes)
	}
	return s, nil
}

// Dir reports the store directory.
func (s *Store) Dir() string { return s.dir }

// MaxBytes reports the effective (clamped) byte cap.
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// Disabled reports whether the tier has degraded to a no-op (after an
// unwritable-directory or persistent-ENOSPC failure).
func (s *Store) Disabled() bool { return s.disabled.Load() }

func (s *Store) log(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// disable turns the tier off for the rest of the process, logging the
// reason exactly once. Reads and writes become misses/no-ops; the
// caller's memory tier keeps working untouched.
func (s *Store) disable(cause error) {
	s.disableOnce.Do(func() {
		s.disabled.Store(true)
		s.log("store: disabled (degrading to memory-only caching): %v", cause)
	})
	s.disabled.Store(true)
}

// entryPath returns the committed file name for digest.
func (s *Store) entryPath(digest string) string {
	return filepath.Join(s.dir, digest+entrySuffix)
}

// Get returns the verified entry for digest, or ok=false on any miss:
// absent, disabled, or invalid (invalid entries are quarantined first).
// A hit refreshes the entry's recency for GC.
func (s *Store) Get(digest string) (*Entry, bool) {
	if s.disabled.Load() {
		return nil, false
	}
	path := s.entryPath(digest)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.log("store: reading %s: %v", path, err)
		}
		s.misses.Add(1)
		return nil, false
	}
	ent, err := decodeEntry(data, digest)
	if err != nil {
		s.quarantine(path, err)
		s.misses.Add(1)
		return nil, false
	}
	if tfs, ok := s.fs.(chtimesFS); ok {
		now := time.Now()
		_ = tfs.Chtimes(path, now, now) // recency only; failure is harmless
	}
	s.hits.Add(1)
	return ent, true
}

// decodeEntry verifies an entry file end to end: envelope JSON, format
// version, engine revision, digest (content address), payload checksum,
// payload JSON, and curve invariants. Every failure wraps
// ErrCorruptEntry.
func decodeEntry(data []byte, digest string) (*Entry, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptEntry, err)
	}
	if env.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorruptEntry, env.FormatVersion, FormatVersion)
	}
	if env.Engine != shard.Engine {
		return nil, fmt.Errorf("%w: engine %q, want %q", ErrCorruptEntry, env.Engine, shard.Engine)
	}
	if env.Digest != digest {
		return nil, fmt.Errorf("%w: recorded digest %.12s… does not match content address %.12s…",
			ErrCorruptEntry, env.Digest, digest)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.PayloadSHA256 {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorruptEntry)
	}
	var ent Entry
	if err := json.Unmarshal(env.Payload, &ent); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorruptEntry, err)
	}
	if ent.Curve == nil {
		return nil, fmt.Errorf("%w: missing curve", ErrCorruptEntry)
	}
	if ent.Curve.Degraded {
		return nil, fmt.Errorf("%w: degraded curve persisted", ErrCorruptEntry)
	}
	return &ent, nil
}

// quarantine renames an invalid entry aside to the first free
// <digest>.corrupt[.N] name so the evidence survives and the slot frees
// for a re-derived replacement. A quarantine that cannot rename (or
// remove) the bad file disables the tier: leaving a known-bad entry in
// place would re-fail every Get.
func (s *Store) quarantine(path string, cause error) {
	s.quarantines.Add(1)
	base := path[:len(path)-len(entrySuffix)] + corruptSuffix
	for i := 0; i < 1000; i++ {
		qpath := base
		if i > 0 {
			qpath = fmt.Sprintf("%s.%d", base, i)
		}
		if _, err := s.fs.Stat(qpath); err == nil {
			continue // name taken by an earlier quarantine
		}
		if err := s.fs.Rename(path, qpath); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return // a concurrent process already moved it
			}
			break
		}
		s.log("store: quarantined corrupt entry %s -> %s: %v", path, qpath, cause)
		return
	}
	if err := s.fs.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		s.disable(fmt.Errorf("cannot quarantine or remove corrupt entry %s: %w", path, err))
		return
	}
	s.log("store: removed corrupt entry %s (quarantine names exhausted or rename failed): %v", path, cause)
}

// Put persists an exact derivation result under digest, atomically and
// durably. Degraded curves are refused (ErrDegraded); a disabled store
// refuses everything (ErrDisabled). An ENOSPC triggers one GC-and-retry
// before the tier disables itself; an unwritable directory disables it
// immediately. Concurrent Puts of one digest are safe: both write the
// same bytes, and rename is atomic.
func (s *Store) Put(digest string, ent *Entry) error {
	if s.disabled.Load() {
		return ErrDisabled
	}
	if ent.Curve == nil {
		return errors.New("store: entry has no curve")
	}
	if ent.Curve.Degraded {
		return ErrDegraded
	}
	data, err := encodeEntry(digest, ent)
	if err != nil {
		return err
	}
	if err := s.write(digest, data); err != nil {
		s.writeErrors.Add(1)
		if isNoSpace(err) {
			// The cap may simply be oversized for the disk: shrink and
			// retry once before giving up on the tier.
			s.gc(true)
			if rerr := s.write(digest, data); rerr == nil {
				s.afterWrite(int64(len(data)))
				return nil
			}
			s.disable(fmt.Errorf("disk full even after GC: %w", err))
			return err
		}
		if isUnwritable(err) {
			s.disable(err)
		}
		return err
	}
	s.afterWrite(int64(len(data)))
	return nil
}

// afterWrite advances the byte estimate and GCs past the cap.
func (s *Store) afterWrite(n int64) {
	s.writes.Add(1)
	if s.approxBytes.Add(n) > s.maxBytes {
		s.gc(false)
	}
}

// encodeEntry serializes the checksummed envelope.
func encodeEntry(digest string, ent *Entry) ([]byte, error) {
	payload, err := json.Marshal(ent)
	if err != nil {
		return nil, fmt.Errorf("store: encoding entry: %w", err)
	}
	sum := sha256.Sum256(payload)
	data, err := json.Marshal(&envelope{
		FormatVersion: FormatVersion,
		Engine:        shard.Engine,
		Digest:        digest,
		PayloadSHA256: hex.EncodeToString(sum[:]),
		Payload:       payload,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encoding envelope: %w", err)
	}
	return append(data, '\n'), nil
}

// write lands data under digest with the atomic-and-durable discipline:
// temp in the same directory, fsync file, rename, fsync directory.
func (s *Store) write(digest string, data []byte) error {
	path := s.entryPath(digest)
	tmp, err := s.fs.CreateTemp(s.dir, digest+entrySuffix+".tmp*")
	if err != nil {
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		// Data must be durable before the rename commits it.
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = s.fs.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("store: writing %s: %w", path, werr)
	}
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		_ = s.fs.Remove(tmp.Name())
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: syncing %s: %w", s.dir, err)
	}
	return nil
}

// sweepStaleTemps removes temp files old enough that no live writer can
// own them — the leftovers of processes killed between CreateTemp and
// Rename. Fresh temps are spared: a concurrent Put in another process
// is about to rename its temp, and sweeping it would fail that Put.
func (s *Store) sweepStaleTemps() {
	matches, err := s.fs.Glob(filepath.Join(s.dir, "*"+entrySuffix+".tmp*"))
	if err != nil {
		s.log("store: sweeping stale temps: %v", err)
		return
	}
	cutoff := time.Now().Add(-s.tempAge)
	for _, m := range matches {
		if s.tempAge > 0 {
			fi, err := s.fs.Stat(m)
			if err != nil || fi.ModTime().After(cutoff) {
				continue
			}
		}
		if err := s.fs.Remove(m); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.log("store: sweeping stale temp %s: %v", m, err)
			continue
		}
		s.log("store: swept stale temp %s", m)
	}
}

// scanEntry is one committed entry's GC bookkeeping.
type scanEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// scan lists the committed entries with their sizes and recency times.
func (s *Store) scan() ([]scanEntry, int64, error) {
	matches, err := s.fs.Glob(filepath.Join(s.dir, "*"+entrySuffix))
	if err != nil {
		return nil, 0, err
	}
	ents := make([]scanEntry, 0, len(matches))
	var total int64
	for _, m := range matches {
		fi, err := s.fs.Stat(m)
		if err != nil {
			continue // raced with a concurrent GC or quarantine
		}
		ents = append(ents, scanEntry{path: m, size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	return ents, total, nil
}

// gc shrinks the directory back under the byte cap by removing the
// least recently used entries, down to the low-water mark. force also
// sweeps when under the cap is already true (the ENOSPC retry path,
// where the disk — not the cap — is the limit). Cross-process GC races
// are prevented by the lock file; if another process holds it, this
// sweep is skipped (that process is already shrinking the directory).
func (s *Store) gc(force bool) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	unlock, ok := s.tryLock()
	if !ok {
		return
	}
	defer unlock()
	ents, total, err := s.scan()
	if err != nil {
		s.log("store: gc scan: %v", err)
		return
	}
	s.approxBytes.Store(total)
	target := int64(gcLowWater * float64(s.maxBytes))
	if force && total <= target {
		// ENOSPC under the cap: free half of what is there.
		target = total / 2
	}
	if total <= target && !force {
		return
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].mtime.Before(ents[j].mtime) })
	removed := 0
	for _, e := range ents {
		if total <= target {
			break
		}
		if err := s.fs.Remove(e.path); err != nil {
			if !errors.Is(err, os.ErrNotExist) {
				s.log("store: gc removing %s: %v", e.path, err)
				continue
			}
		}
		total -= e.size
		removed++
	}
	if removed > 0 {
		s.gcRemoved.Add(int64(removed))
		s.approxBytes.Store(total)
		s.log("store: gc removed %d entries, %d bytes remain (cap %d)", removed, total, s.maxBytes)
	}
}

// GC runs a garbage-collection sweep immediately (normally Put triggers
// it past the cap). Exposed for warmers that want a bounded directory
// before exiting.
func (s *Store) GC() { s.gc(false) }

// Stats is the store's observable state, shaped for the /stats
// endpoint.
type Stats struct {
	// Hits, Misses, Writes, WriteErrors, Quarantines and GCRemoved are
	// cumulative since Open, for this process only (a sharing process
	// keeps its own counts).
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	Quarantines int64 `json:"quarantines"`
	GCRemoved   int64 `json:"gc_removed"`
	// Entries and Bytes are a live scan of the directory, so they
	// reflect every sharing process's writes.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the effective GC cap.
	MaxBytes int64 `json:"max_bytes"`
	// Disabled reports the tier degraded to a no-op.
	Disabled bool `json:"disabled"`
}

// StatsSnapshot assembles the current Stats (including a live directory
// scan; skipped when disabled).
func (s *Store) StatsSnapshot() Stats {
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		Quarantines: s.quarantines.Load(),
		GCRemoved:   s.gcRemoved.Load(),
		MaxBytes:    s.maxBytes,
		Disabled:    s.disabled.Load(),
	}
	if !st.Disabled {
		if ents, total, err := s.scan(); err == nil {
			st.Entries = len(ents)
			st.Bytes = total
		}
	}
	return st
}

// Len reports the number of committed entries (live scan).
func (s *Store) Len() int {
	ents, _, err := s.scan()
	if err != nil {
		return 0
	}
	return len(ents)
}
