package multilevel

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/pareto"
)

func TestDeriveSmallGEMM(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	r, err := Derive(g, 1<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.Empty() || r.L2.Empty() {
		t.Fatal("empty curves")
	}
	if r.Mappings == 0 {
		t.Fatal("no mappings evaluated")
	}
	// DRAM floor is still the algorithmic minimum (full L2 buffering with
	// a small L1 streaming tile is in the space).
	if r.DRAM.MinAccessBytes() != g.AlgorithmicMinBytes() {
		t.Fatalf("DRAM floor %d != algo min %d",
			r.DRAM.MinAccessBytes(), g.AlgorithmicMinBytes())
	}
}

func TestThreeLevelNeverBelowTwoLevel(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	two := bound.Derive(g, bound.Options{Workers: 1}).Curve
	r, err := Derive(g, 256, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.DRAM.Points() {
		bnd, ok := two.AccessesAt(p.BufferBytes)
		if !ok || p.AccessBytes < bnd {
			t.Fatalf("three-level point %+v below the two-level bound (%d,%v)", p, bnd, ok)
		}
	}
}

func TestHugeL1RecoversTwoLevelCurve(t *testing.T) {
	// With an unconstrained L1, the three-level DRAM curve matches the
	// two-level bound at every two-level breakpoint.
	g := einsum.GEMM("g", 16, 16, 16)
	two := bound.Derive(g, bound.Options{Workers: 1}).Curve
	r, err := Derive(g, 1<<30, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range two.Points() {
		acc, ok := r.DRAM.AccessesAt(p.BufferBytes)
		if !ok || acc != p.AccessBytes {
			t.Fatalf("unconstrained L1 should recover the two-level curve at %d: (%d,%v) vs %d",
				p.BufferBytes, acc, ok, p.AccessBytes)
		}
	}
}

func TestCompositionGapExists(t *testing.T) {
	// The loop order that minimizes DRAM traffic is generally not the one
	// that minimizes L2 traffic: at some capacity no mapping attains both
	// per-level optima simultaneously — the reason Fig. 7's composed
	// probe is "valid but not guaranteed tight".
	g := einsum.GEMM("g", 64, 64, 64)
	r, err := Derive(g, 128, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gaps := r.CompositionGap([]int64{512, 1 << 10, 1 << 12, 1 << 14, 1 << 16})
	sawGap := false
	for _, gp := range gaps {
		if !gp.Feasible {
			continue
		}
		if gp.Ratio < 1 {
			t.Fatalf("joint L2 below the unconstrained bound at %d: %+v", gp.L2CapacityBytes, gp)
		}
		if gp.Ratio > 1 {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatal("expected a composition gap at some capacity")
	}
}

func TestL2TrafficAtLeastDRAM(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	r, err := Derive(g, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At every shared breakpoint, L2->L1 traffic >= DRAM traffic (data
	// reaches L1 through L2).
	for _, p := range r.DRAM.Points() {
		l2, ok := r.L2.AccessesAt(p.BufferBytes)
		if !ok {
			continue
		}
		if l2 < p.AccessBytes {
			t.Fatalf("L2 traffic %d below DRAM traffic %d at %d", l2, p.AccessBytes, p.BufferBytes)
		}
	}
}

// TestParallelMatchesSerial is the determinism contract of the shared
// traversal engine: DRAM/L2 curves, mapping counts, and the joint
// MinL2GivenOptimalDRAM answers are byte-identical for every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	serial, err := Derive(g, 512, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.Workers != 1 {
		t.Fatalf("serial run launched %d workers", serial.Stats.Workers)
	}
	for _, w := range []int{2, 3, 0} {
		par, err := Derive(g, 512, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if par.Mappings != serial.Mappings {
			t.Fatalf("workers=%d: %d mappings vs serial %d", w, par.Mappings, serial.Mappings)
		}
		for name, pair := range map[string][2]interface{ Points() []pareto.Point }{
			"DRAM": {serial.DRAM, par.DRAM},
			"L2":   {serial.L2, par.L2},
		} {
			sp, pp := pair[0].Points(), pair[1].Points()
			if len(sp) != len(pp) {
				t.Fatalf("workers=%d %s: %d points vs serial %d", w, name, len(pp), len(sp))
			}
			for i := range sp {
				if sp[i] != pp[i] {
					t.Fatalf("workers=%d %s point %d: %v vs serial %v", w, name, i, pp[i], sp[i])
				}
			}
		}
		for _, capBytes := range []int64{512, 1 << 10, 1 << 12, 1 << 14, 1 << 16} {
			sl2, sdram, sok := serial.MinL2GivenOptimalDRAM(capBytes)
			pl2, pdram, pok := par.MinL2GivenOptimalDRAM(capBytes)
			if sl2 != pl2 || sdram != pdram || sok != pok {
				t.Fatalf("workers=%d MinL2GivenOptimalDRAM(%d): (%d,%d,%v) vs serial (%d,%d,%v)",
					w, capBytes, pl2, pdram, pok, sl2, sdram, sok)
			}
		}
	}
}

func TestDeriveRejectsBadInput(t *testing.T) {
	g := einsum.GEMM("g", 8, 8, 8)
	if _, err := Derive(g, 0, Options{}); err == nil {
		t.Fatal("zero L1 capacity accepted")
	}
	bad := &einsum.Einsum{Name: "bad", ElementSize: 2}
	if _, err := Derive(bad, 1024, Options{}); err == nil {
		t.Fatal("invalid einsum accepted")
	}
}
