package multilevel

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
)

func TestDeriveSmallGEMM(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	r, err := Derive(g, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM.Empty() || r.L2.Empty() {
		t.Fatal("empty curves")
	}
	if r.Mappings == 0 {
		t.Fatal("no mappings evaluated")
	}
	// DRAM floor is still the algorithmic minimum (full L2 buffering with
	// a small L1 streaming tile is in the space).
	if r.DRAM.MinAccessBytes() != g.AlgorithmicMinBytes() {
		t.Fatalf("DRAM floor %d != algo min %d",
			r.DRAM.MinAccessBytes(), g.AlgorithmicMinBytes())
	}
}

func TestThreeLevelNeverBelowTwoLevel(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	two := bound.Derive(g, bound.Options{Workers: 1}).Curve
	r, err := Derive(g, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range r.DRAM.Points() {
		bnd, ok := two.AccessesAt(p.BufferBytes)
		if !ok || p.AccessBytes < bnd {
			t.Fatalf("three-level point %+v below the two-level bound (%d,%v)", p, bnd, ok)
		}
	}
}

func TestHugeL1RecoversTwoLevelCurve(t *testing.T) {
	// With an unconstrained L1, the three-level DRAM curve matches the
	// two-level bound at every two-level breakpoint.
	g := einsum.GEMM("g", 16, 16, 16)
	two := bound.Derive(g, bound.Options{Workers: 1}).Curve
	r, err := Derive(g, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range two.Points() {
		acc, ok := r.DRAM.AccessesAt(p.BufferBytes)
		if !ok || acc != p.AccessBytes {
			t.Fatalf("unconstrained L1 should recover the two-level curve at %d: (%d,%v) vs %d",
				p.BufferBytes, acc, ok, p.AccessBytes)
		}
	}
}

func TestCompositionGapExists(t *testing.T) {
	// The loop order that minimizes DRAM traffic is generally not the one
	// that minimizes L2 traffic: at some capacity no mapping attains both
	// per-level optima simultaneously — the reason Fig. 7's composed
	// probe is "valid but not guaranteed tight".
	g := einsum.GEMM("g", 64, 64, 64)
	r, err := Derive(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	gaps := r.CompositionGap([]int64{512, 1 << 10, 1 << 12, 1 << 14, 1 << 16})
	sawGap := false
	for _, gp := range gaps {
		if !gp.Feasible {
			continue
		}
		if gp.Ratio < 1 {
			t.Fatalf("joint L2 below the unconstrained bound at %d: %+v", gp.L2CapacityBytes, gp)
		}
		if gp.Ratio > 1 {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatal("expected a composition gap at some capacity")
	}
}

func TestL2TrafficAtLeastDRAM(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	r, err := Derive(g, 512)
	if err != nil {
		t.Fatal(err)
	}
	// At every shared breakpoint, L2->L1 traffic >= DRAM traffic (data
	// reaches L1 through L2).
	for _, p := range r.DRAM.Points() {
		l2, ok := r.L2.AccessesAt(p.BufferBytes)
		if !ok {
			continue
		}
		if l2 < p.AccessBytes {
			t.Fatalf("L2 traffic %d below DRAM traffic %d at %d", l2, p.AccessBytes, p.BufferBytes)
		}
	}
}

func TestDeriveRejectsBadInput(t *testing.T) {
	g := einsum.GEMM("g", 8, 8, 8)
	if _, err := Derive(g, 0); err == nil {
		t.Fatal("zero L1 capacity accepted")
	}
	bad := &einsum.Einsum{Name: "bad", ElementSize: 2}
	if _, err := Derive(bad, 1024); err == nil {
		t.Fatal("invalid einsum accepted")
	}
}
