package multilevel

import (
	"testing"

	"repro/internal/einsum"
)

// BenchmarkDerive measures the three-level traversal. The serial variant
// tracks the per-combination footprint hoisting (footprints are computed
// once per tile choice, not once per loop-order pair); the parallel
// variant tracks the traversal engine's scaling.
func BenchmarkDerive(b *testing.B) {
	g := einsum.GEMM("g", 32, 32, 32)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Derive(g, 512, Options{Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
