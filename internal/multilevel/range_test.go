package multilevel

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/einsum"
)

// TestDeriveRangeMergeParity pins the three-level sharding contract:
// partial Results over a disjoint cover of the combination space merge to
// the same curves, joint answers and mapping counts as a full-range run.
func TestDeriveRangeMergeParity(t *testing.T) {
	e := einsum.GEMM("g", 16, 16, 16)
	const l1 = 2 << 10
	space, err := Space(e)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Derive(e, l1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int64{0, space / 7, space / 2, space}
	parts := make([]*Result, 0, len(cuts)-1)
	for i := 0; i+1 < len(cuts); i++ {
		p, err := DeriveRange(context.Background(), e, l1, cuts[i], cuts[i+1], Options{})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}

	for _, pair := range []struct {
		name      string
		got, want interface{ MarshalJSON() ([]byte, error) }
	}{
		{"DRAM", merged.DRAM, full.DRAM},
		{"L2", merged.L2, full.L2},
	} {
		g, _ := json.Marshal(pair.got)
		w, _ := json.Marshal(pair.want)
		if string(g) != string(w) {
			t.Fatalf("%s: merged curve differs from full derive\n got %s\nwant %s", pair.name, g, w)
		}
	}
	if merged.Mappings != full.Mappings {
		t.Fatalf("merged evaluated %d mappings, full derive %d", merged.Mappings, full.Mappings)
	}
	for _, cap := range []int64{4 << 10, 32 << 10, 1 << 20} {
		ml, md, mok := merged.MinL2GivenOptimalDRAM(cap)
		fl, fd, fok := full.MinL2GivenOptimalDRAM(cap)
		if ml != fl || md != fd || mok != fok {
			t.Fatalf("cap %d: merged joint answer (%d, %d, %t) != full (%d, %d, %t)", cap, ml, md, mok, fl, fd, fok)
		}
	}
}

func TestMergeRefusesMixedCapacities(t *testing.T) {
	e := einsum.GEMM("g", 8, 8, 8)
	space, err := Space(e)
	if err != nil {
		t.Fatal(err)
	}
	a, err := DeriveRange(context.Background(), e, 1<<10, 0, space/2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveRange(context.Background(), e, 2<<10, space/2, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merge combined partials with different L1 capacities")
	}
}

func TestDeriveRangeRejectsOutOfBounds(t *testing.T) {
	e := einsum.GEMM("g", 8, 8, 8)
	space, err := Space(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{-1, 2}, {0, space + 1}, {5, 4}} {
		if _, err := DeriveRange(context.Background(), e, 1<<10, r[0], r[1], Options{}); err == nil {
			t.Errorf("DeriveRange[%d, %d) accepted", r[0], r[1])
		}
	}
}
