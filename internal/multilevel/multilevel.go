// Package multilevel derives *jointly achievable* bounds for a
// three-level Snowcat (L1 buffer, L2 buffer, backing store), implementing
// the tightening of multi-level bounds the paper lists as future work.
//
// Probing the two-level ski-slope curve at each level's capacity (Fig. 7)
// yields valid per-link bounds, but the Pareto-optimal mappings need not
// compose across levels (Sec. III-B.1). This package enumerates the full
// three-level mapspace — every rank split into an L1 tile, an L2 factor
// and outer loops, with both loop orders permuted — so each point is one
// mapping that achieves its DRAM and L2 traffic simultaneously. The DRAM
// curve is therefore at least as high as the two-level curve (it carries
// the extra inner-level constraint), and the gap measures the composed
// probe's optimism.
//
// The traversal runs on the shared engine (internal/traverse): the
// three-split combinations form a flat index space chunked across workers,
// with the loop-order permutations expanded per combination inside each
// chunk; per-worker Pareto builders and joint-entry tables are merged
// after the traversal, so the curves and MinL2GivenOptimalDRAM answers are
// byte-identical for every worker count. Transfer counts instantiate the
// shared product rule (internal/nest) on the composite outer+mid nest.
package multilevel

import (
	"context"
	"fmt"

	"repro/internal/einsum"
	"repro/internal/nest"
	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/traverse"
)

// Options tunes the three-level traversal.
type Options struct {
	// Workers sets the number of parallel evaluation goroutines.
	// Zero (or negative) means GOMAXPROCS. Results are identical for
	// every worker count.
	Workers int
}

// Result bundles the three-level bounds for one L1 capacity.
type Result struct {
	L1CapacityBytes int64

	// DRAM is the frontier of (L2 footprint, DRAM accesses) over
	// mappings whose L1 tiles fit the L1 capacity.
	DRAM *pareto.Curve
	// L2 is the frontier of (L2 footprint, L2->L1 traffic) over the same
	// mappings.
	L2 *pareto.Curve
	// Mappings is the number of three-level mappings evaluated.
	Mappings int64

	// Stats reports what the traversal did (workers launched, throughput).
	Stats traverse.Stats

	// joint tracks, per L2 footprint, the best DRAM traffic and the best
	// L2 traffic among mappings achieving that DRAM traffic — the data
	// behind MinL2GivenOptimalDRAM.
	joint map[int64]jointEntry
}

type jointEntry struct {
	dram int64
	l2   int64
}

// better reports whether candidate (dram, l2) improves on je under the
// joint criterion: minimal DRAM traffic first, then minimal L2 traffic
// among DRAM-ties. The rule is commutative, so per-worker tables merge to
// the same result in any order.
func (je jointEntry) better(dram, l2 int64) bool {
	return dram < je.dram || (dram == je.dram && l2 < je.l2)
}

// derState is one worker's share of the traversal output.
type derState struct {
	dramB *pareto.Builder
	l2B   *pareto.Builder
	joint map[int64]jointEntry
}

// Space returns the size of the flat three-split combination space Derive
// walks for e: the product over ranks of their three-split counts. It is
// the [0, Space) range DeriveRange slices and a cross-process shard plan
// (internal/shard) divides.
func Space(e *einsum.Einsum) (int64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	combos := int64(1)
	for _, r := range e.Ranks {
		combos *= int64(len(shape.ThreeSplits(r.Shape)))
	}
	return combos, nil
}

// Derive exhaustively walks the three-level mapspace of e. Only mappings
// whose L1 footprint fits l1CapBytes are kept. Intended for moderate
// shapes: the space grows with the cube of the per-rank three-split
// counts.
func Derive(e *einsum.Einsum, l1CapBytes int64, opts Options) (*Result, error) {
	combos, err := Space(e)
	if err != nil {
		return nil, err
	}
	return DeriveRange(context.Background(), e, l1CapBytes, 0, combos, opts)
}

// DeriveRange walks the global three-split combinations [lo, hi) of e's
// space — one shard's share of the full traversal. Partial Results over a
// disjoint cover of [0, Space(e)) recombine with Merge into the
// byte-identical full-range Result: Pareto union and the joint min-rule
// are both insensitive to how the underlying mappings were partitioned.
//
// Cancelling ctx aborts the traversal within about one worker chunk and
// returns the context's error with no Result.
func DeriveRange(ctx context.Context, e *einsum.Einsum, l1CapBytes int64, lo, hi int64, opts Options) (*Result, error) {
	combosTotal, err := Space(e)
	if err != nil {
		return nil, err
	}
	if l1CapBytes < 1 {
		return nil, fmt.Errorf("multilevel: non-positive L1 capacity %d", l1CapBytes)
	}
	if lo < 0 || hi < lo || hi > combosTotal {
		return nil, fmt.Errorf("multilevel: DeriveRange [%d, %d) outside [0, %d)", lo, hi, combosTotal)
	}

	n := len(e.Ranks)
	names := make([]string, n)
	options := make([][]shape.ThreeSplit, n)
	for i, r := range e.Ranks {
		names[i] = r.Name
		options[i] = shape.ThreeSplits(r.Shape)
	}
	combos := hi - lo

	tensors := make([]*einsum.Tensor, len(e.Tensors))
	for i := range e.Tensors {
		tensors[i] = &e.Tensors[i]
	}
	es := e.ElementSize
	perms := shape.Permutations(n)

	w := traverse.WorkerCount(combos, opts.Workers)
	states := make([]*derState, w)
	stats, terr := traverse.Partition(ctx, combos, w, func(wi int) traverse.RangeFunc {
		st := &derState{
			dramB: pareto.NewBuilder(),
			l2B:   pareto.NewBuilder(),
			joint: map[int64]jointEntry{},
		}
		states[wi] = st

		// Per-worker scratch, reused across the worker's chunks.
		tiles0 := map[string]int64{}
		tiles1 := map[string]int64{}
		boundsMid := map[string]int64{}
		boundsOut := map[string]int64{}
		idx := make([]int, n)
		fp0 := make([]int64, len(tensors))
		fp1 := make([]int64, len(tensors))
		loops := make([]nest.Loop, 2*n) // outer nest, then mid nest

		return func(clo, chi int64) int64 {
			// Decode the global start index lo+clo into mixed-radix digits
			// (last rank fastest), then advance odometer-style — the serial
			// enumeration order.
			rem := lo + clo
			for i := n - 1; i >= 0; i-- {
				k := int64(len(options[i]))
				idx[i] = int(rem % k)
				rem /= k
			}
			var count int64
			for flat := clo; flat < chi; flat++ {
				for i, name := range names {
					ts := options[i][idx[i]]
					tiles0[name] = ts.L0
					tiles1[name] = ts.L0 * ts.L1
					boundsMid[name] = ts.L1
					boundsOut[name] = ts.L2
				}
				// Footprints are per-tile-choice, not per-order: compute
				// them once per combination, outside the permutation loops.
				var buf1, buf2 int64
				for i, t := range tensors {
					fp0[i] = e.Footprint(t, tiles0)
					fp1[i] = e.Footprint(t, tiles1)
					buf1 += fp0[i]
					buf2 += fp1[i]
				}
				if buf1*es <= l1CapBytes {
					key := buf2 * es
					// Orders: outer (DRAM-level) enclosing mid (L2-level).
					for _, pOut := range perms {
						for i, p := range pOut {
							loops[i] = nest.Loop{Rank: names[p], Bound: boundsOut[names[p]]}
						}
						var dram int64
						for i, t := range tensors {
							dram += fp1[i] * nest.Iterations(loops[:n], t.Relevant)
						}
						st.dramB.Add(key, dram*es)
						for _, pMid := range perms {
							for i, p := range pMid {
								loops[n+i] = nest.Loop{Rank: names[p], Bound: boundsMid[names[p]]}
							}
							var l2traffic int64
							for i, t := range tensors {
								l2traffic += fp0[i] * nest.Iterations(loops, t.Relevant)
							}
							count++
							st.l2B.Add(key, l2traffic*es)
							je, ok := st.joint[key]
							if !ok || je.better(dram*es, l2traffic*es) {
								st.joint[key] = jointEntry{dram: dram * es, l2: l2traffic * es}
							}
						}
					}
				}
				for i := n - 1; i >= 0; i-- {
					idx[i]++
					if idx[i] < len(options[i]) {
						break
					}
					idx[i] = 0
				}
			}
			return count
		}
	})

	if terr != nil {
		return nil, terr
	}

	// Merge the per-worker frontiers and joint tables. Pareto union and
	// the joint min-rule are both insensitive to merge order, so the
	// result matches a serial traversal exactly.
	res := &Result{L1CapacityBytes: l1CapBytes, joint: map[int64]jointEntry{}, Stats: stats}
	res.Mappings = stats.Evaluated
	dramCurves := make([]*pareto.Curve, 0, len(states))
	l2Curves := make([]*pareto.Curve, 0, len(states))
	for _, st := range states {
		if st == nil {
			continue
		}
		dramCurves = append(dramCurves, st.dramB.Curve())
		l2Curves = append(l2Curves, st.l2B.Curve())
		for key, je := range st.joint {
			if got, ok := res.joint[key]; !ok || got.better(je.dram, je.l2) {
				res.joint[key] = je
			}
		}
	}
	res.DRAM = pareto.Union(dramCurves...)
	res.DRAM.AlgoMinBytes = e.AlgorithmicMinBytes()
	res.DRAM.TotalOperandBytes = e.TotalOperandBytes()
	res.L2 = pareto.Union(l2Curves...)
	res.L2.AlgoMinBytes = e.AlgorithmicMinBytes()
	res.L2.TotalOperandBytes = e.TotalOperandBytes()
	return res, nil
}

// Merge recombines partial Results derived over disjoint slices of one
// workload's space (DeriveRange) into the Result a full-range Derive
// produces: curves are Pareto-unioned, joint tables merged under the
// commutative min-rule, and mapping counts summed. All partials must share
// one L1 capacity — mixing capacities would silently change the feasibility
// filter. Stats are aggregated (Items/Evaluated summed, Elapsed summed as
// total CPU-side derivation time).
func Merge(parts ...*Result) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("multilevel: Merge: no partial results")
	}
	res := &Result{L1CapacityBytes: parts[0].L1CapacityBytes, joint: map[int64]jointEntry{}}
	dramCurves := make([]*pareto.Curve, 0, len(parts))
	l2Curves := make([]*pareto.Curve, 0, len(parts))
	for i, p := range parts {
		if p == nil {
			return nil, fmt.Errorf("multilevel: Merge: partial %d is nil", i)
		}
		if p.L1CapacityBytes != res.L1CapacityBytes {
			return nil, fmt.Errorf("multilevel: Merge: partial %d has L1 capacity %d, partial 0 has %d",
				i, p.L1CapacityBytes, res.L1CapacityBytes)
		}
		dramCurves = append(dramCurves, p.DRAM)
		l2Curves = append(l2Curves, p.L2)
		res.Mappings += p.Mappings
		res.Stats.Items += p.Stats.Items
		res.Stats.Evaluated += p.Stats.Evaluated
		res.Stats.Elapsed += p.Stats.Elapsed
		for key, je := range p.joint {
			if got, ok := res.joint[key]; !ok || got.better(je.dram, je.l2) {
				res.joint[key] = je
			}
		}
	}
	res.DRAM = pareto.Union(dramCurves...)
	res.DRAM.AlgoMinBytes = parts[0].DRAM.AlgoMinBytes
	res.DRAM.TotalOperandBytes = parts[0].DRAM.TotalOperandBytes
	res.L2 = pareto.Union(l2Curves...)
	res.L2.AlgoMinBytes = parts[0].L2.AlgoMinBytes
	res.L2.TotalOperandBytes = parts[0].L2.TotalOperandBytes
	return res, nil
}

// MinL2GivenOptimalDRAM returns, for an L2 capacity, the smallest L2->L1
// traffic achievable by a mapping that simultaneously attains the minimal
// DRAM traffic at that capacity. Because the loop order that minimizes
// DRAM traffic is generally not the one that minimizes L2 traffic, this
// value can exceed the unconstrained L2 bound — exactly the
// non-composability of per-level optima that makes the Fig. 7 probe a
// valid but potentially loose multi-level bound.
func (r *Result) MinL2GivenOptimalDRAM(l2CapBytes int64) (l2, dram int64, ok bool) {
	dram = -1
	for buf, je := range r.joint {
		if buf > l2CapBytes {
			continue
		}
		if dram < 0 || je.dram < dram {
			dram = je.dram
			l2 = je.l2
		} else if je.dram == dram && je.l2 < l2 {
			l2 = je.l2
		}
	}
	if dram < 0 {
		return 0, 0, false
	}
	return l2, dram, true
}

// CompositionGap reports, per capacity, the ratio between the L2 traffic
// of a DRAM-optimal mapping and the unconstrained L2 traffic bound
// (>= 1; > 1 means no single mapping attains both per-level optima).
type GapPoint struct {
	L2CapacityBytes int64
	FreeL2          int64 // unconstrained L2 traffic bound
	JointL2         int64 // best L2 traffic among DRAM-optimal mappings
	Ratio           float64
	Feasible        bool
}

// CompositionGap evaluates the gap at each capacity.
func (r *Result) CompositionGap(l2Caps []int64) []GapPoint {
	out := make([]GapPoint, 0, len(l2Caps))
	for _, c := range l2Caps {
		gp := GapPoint{L2CapacityBytes: c}
		free, ok1 := r.L2.AccessesAt(c)
		joint, _, ok2 := r.MinL2GivenOptimalDRAM(c)
		if ok1 && ok2 && free > 0 {
			gp.FreeL2 = free
			gp.JointL2 = joint
			gp.Ratio = float64(joint) / float64(free)
			gp.Feasible = true
		}
		out = append(out, gp)
	}
	return out
}
