// Package multilevel derives *jointly achievable* bounds for a
// three-level Snowcat (L1 buffer, L2 buffer, backing store), implementing
// the tightening of multi-level bounds the paper lists as future work.
//
// Probing the two-level ski-slope curve at each level's capacity (Fig. 7)
// yields valid per-link bounds, but the Pareto-optimal mappings need not
// compose across levels (Sec. III-B.1). This package enumerates the full
// three-level mapspace — every rank split into an L1 tile, an L2 factor
// and outer loops, with both loop orders permuted — so each point is one
// mapping that achieves its DRAM and L2 traffic simultaneously. The DRAM
// curve is therefore at least as high as the two-level curve (it carries
// the extra inner-level constraint), and the gap measures the composed
// probe's optimism.
package multilevel

import (
	"fmt"

	"repro/internal/einsum"
	"repro/internal/pareto"
	"repro/internal/shape"
)

// Result bundles the three-level bounds for one L1 capacity.
type Result struct {
	L1CapacityBytes int64

	// DRAM is the frontier of (L2 footprint, DRAM accesses) over
	// mappings whose L1 tiles fit the L1 capacity.
	DRAM *pareto.Curve
	// L2 is the frontier of (L2 footprint, L2->L1 traffic) over the same
	// mappings.
	L2 *pareto.Curve
	// Mappings is the number of three-level mappings evaluated.
	Mappings int64

	// joint tracks, per L2 footprint, the best DRAM traffic and the best
	// L2 traffic among mappings achieving that DRAM traffic — the data
	// behind MinL2GivenOptimalDRAM.
	joint map[int64]jointEntry
}

type jointEntry struct {
	dram int64
	l2   int64
}

// Derive exhaustively walks the three-level mapspace of e. Only mappings
// whose L1 footprint fits l1CapBytes are kept. Intended for moderate
// shapes: the space grows with the cube of the per-rank three-split
// counts.
func Derive(e *einsum.Einsum, l1CapBytes int64) (*Result, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	if l1CapBytes < 1 {
		return nil, fmt.Errorf("multilevel: non-positive L1 capacity %d", l1CapBytes)
	}

	n := len(e.Ranks)
	names := make([]string, n)
	options := make([][]shape.ThreeSplit, n)
	for i, r := range e.Ranks {
		names[i] = r.Name
		options[i] = shape.ThreeSplits(r.Shape)
	}

	type tensorInfo struct {
		t      *einsum.Tensor
		output bool
	}
	tensors := make([]tensorInfo, len(e.Tensors))
	for i := range e.Tensors {
		tensors[i] = tensorInfo{t: &e.Tensors[i], output: e.Tensors[i].Output}
	}

	dramB := pareto.NewBuilder()
	l2B := pareto.NewBuilder()
	res := &Result{L1CapacityBytes: l1CapBytes, joint: map[int64]jointEntry{}}
	es := e.ElementSize

	tiles0 := map[string]int64{}
	tiles1 := map[string]int64{}
	boundsMid := map[string]int64{}
	boundsOut := map[string]int64{}

	idx := make([]int, n)
	perms := shape.Permutations(n)
	for {
		feasible := true
		for i, name := range names {
			ts := options[i][idx[i]]
			tiles0[name] = ts.L0
			tiles1[name] = ts.L0 * ts.L1
			boundsMid[name] = ts.L1
			boundsOut[name] = ts.L2
		}
		var buf1, buf2 int64
		for _, ti := range tensors {
			buf1 += e.Footprint(ti.t, tiles0)
			buf2 += e.Footprint(ti.t, tiles1)
		}
		if buf1*es > l1CapBytes {
			feasible = false
		}

		if feasible {
			// Orders: outer (DRAM-level) and mid (L2-level) loop nests.
			for _, pOut := range perms {
				outOrder := permNames(names, pOut)
				var dram int64
				for _, ti := range tensors {
					dram += e.Footprint(ti.t, tiles1) *
						iterations(ti.t, outOrder, nil, boundsOut, nil)
				}
				for _, pMid := range perms {
					midOrder := permNames(names, pMid)
					var l2traffic int64
					for _, ti := range tensors {
						l2traffic += e.Footprint(ti.t, tiles0) *
							iterations(ti.t, outOrder, midOrder, boundsOut, boundsMid)
					}
					res.Mappings++
					dramB.Add(buf2*es, dram*es)
					l2B.Add(buf2*es, l2traffic*es)
					key := buf2 * es
					je, ok := res.joint[key]
					switch {
					case !ok || dram*es < je.dram:
						res.joint[key] = jointEntry{dram: dram * es, l2: l2traffic * es}
					case dram*es == je.dram && l2traffic*es < je.l2:
						je.l2 = l2traffic * es
						res.joint[key] = je
					}
				}
			}
		}

		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(options[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}

	res.DRAM = dramB.Curve()
	res.DRAM.AlgoMinBytes = e.AlgorithmicMinBytes()
	res.DRAM.TotalOperandBytes = e.TotalOperandBytes()
	res.L2 = l2B.Curve()
	res.L2.AlgoMinBytes = e.AlgorithmicMinBytes()
	res.L2.TotalOperandBytes = e.TotalOperandBytes()
	return res, nil
}

func permNames(names []string, perm []int) []string {
	out := make([]string, len(perm))
	for i, p := range perm {
		out[i] = names[p]
	}
	return out
}

// iterations applies the Snowcat product rule over a composite loop nest:
// the outer order (bounds boundsOut) enclosing the optional mid order
// (bounds boundsMid). Loops with bound 1 are transparent.
func iterations(t *einsum.Tensor, outOrder, midOrder []string, boundsOut, boundsMid map[string]int64) int64 {
	type loop struct {
		rank  string
		bound int64
	}
	var nest []loop
	for _, r := range outOrder {
		nest = append(nest, loop{rank: r, bound: boundsOut[r]})
	}
	for _, r := range midOrder {
		nest = append(nest, loop{rank: r, bound: boundsMid[r]})
	}
	inner := -1
	for i := len(nest) - 1; i >= 0; i-- {
		if nest[i].bound > 1 && t.Relevant(nest[i].rank) {
			inner = i
			break
		}
	}
	iters := int64(1)
	for i := 0; i <= inner; i++ {
		if nest[i].bound > 1 {
			iters *= nest[i].bound
		}
	}
	return iters
}

// MinL2GivenOptimalDRAM returns, for an L2 capacity, the smallest L2->L1
// traffic achievable by a mapping that simultaneously attains the minimal
// DRAM traffic at that capacity. Because the loop order that minimizes
// DRAM traffic is generally not the one that minimizes L2 traffic, this
// value can exceed the unconstrained L2 bound — exactly the
// non-composability of per-level optima that makes the Fig. 7 probe a
// valid but potentially loose multi-level bound.
func (r *Result) MinL2GivenOptimalDRAM(l2CapBytes int64) (l2, dram int64, ok bool) {
	dram = -1
	for buf, je := range r.joint {
		if buf > l2CapBytes {
			continue
		}
		if dram < 0 || je.dram < dram {
			dram = je.dram
			l2 = je.l2
		} else if je.dram == dram && je.l2 < l2 {
			l2 = je.l2
		}
	}
	if dram < 0 {
		return 0, 0, false
	}
	return l2, dram, true
}

// CompositionGap reports, per capacity, the ratio between the L2 traffic
// of a DRAM-optimal mapping and the unconstrained L2 traffic bound
// (>= 1; > 1 means no single mapping attains both per-level optima).
type GapPoint struct {
	L2CapacityBytes int64
	FreeL2          int64 // unconstrained L2 traffic bound
	JointL2         int64 // best L2 traffic among DRAM-optimal mappings
	Ratio           float64
	Feasible        bool
}

// CompositionGap evaluates the gap at each capacity.
func (r *Result) CompositionGap(l2Caps []int64) []GapPoint {
	out := make([]GapPoint, 0, len(l2Caps))
	for _, c := range l2Caps {
		gp := GapPoint{L2CapacityBytes: c}
		free, ok1 := r.L2.AccessesAt(c)
		joint, _, ok2 := r.MinL2GivenOptimalDRAM(c)
		if ok1 && ok2 && free > 0 {
			gp.FreeL2 = free
			gp.JointL2 = joint
			gp.Ratio = float64(joint) / float64(free)
			gp.Feasible = true
		}
		out = append(out, gp)
	}
	return out
}
