package snowcat

import (
	"testing"

	"repro/internal/einsum"
	"repro/internal/mapping"
)

// TestEvaluatorMatchesEvaluate cross-checks the compiled fast path against
// the reference model over entire mapspaces, including strided convolution
// and grouped-BMM projections.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	workloads := []*einsum.Einsum{
		einsum.GEMM("gemm", 16, 8, 4),
		einsum.BMM("bmm", 4, 8, 4, 8),
		einsum.GroupedBMM("gbmm", 8, 2, 4, 4, 4),
		einsum.Conv2D("conv", einsum.ConvConfig{P: 4, Q: 4, N: 4, C: 4, R: 3, S: 3, T: 2, D: 2}),
	}
	for _, e := range workloads {
		ev := NewEvaluator(e)
		checked := 0
		mapping.Space(e, func(m *mapping.Mapping) {
			ref := Evaluate(e, m)
			buf, acc := ev.EvaluateCompact(m)
			if buf != ref.BufferBytes || acc != ref.AccessBytes {
				t.Fatalf("%s mapping %s: evaluator (%d,%d) != reference (%d,%d)",
					e.Name, m, buf, acc, ref.BufferBytes, ref.AccessBytes)
			}
			checked++
		})
		if checked == 0 {
			t.Fatalf("%s: empty mapspace", e.Name)
		}
	}
}

func BenchmarkEvaluateReference(b *testing.B) {
	e := einsum.GEMM("gemm", 4096, 4096, 4096)
	var m *mapping.Mapping
	mapping.Space(e, func(mm *mapping.Mapping) {
		if m == nil {
			m = mm.Clone()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(e, m)
	}
}

func BenchmarkEvaluatorCompact(b *testing.B) {
	e := einsum.GEMM("gemm", 4096, 4096, 4096)
	ev := NewEvaluator(e)
	var m *mapping.Mapping
	mapping.Space(e, func(mm *mapping.Mapping) {
		if m == nil {
			m = mm.Clone()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateCompact(m)
	}
}
