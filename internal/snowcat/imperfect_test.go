package snowcat

import (
	"testing"

	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/shape"
)

// TestImperfectMatchesPerfectOnDivisorSplits: when every split is a
// perfect factorization, the effective tile equals the inner tile and the
// imperfect evaluator must agree exactly with the standard one.
func TestImperfectMatchesPerfectOnDivisorSplits(t *testing.T) {
	workloads := []*einsum.Einsum{
		einsum.GEMM("gemm", 16, 8, 4),
		einsum.GroupedBMM("gbmm", 8, 2, 4, 4, 4),
		einsum.Conv2D("conv", einsum.ConvConfig{P: 4, Q: 4, N: 4, C: 4, R: 3, S: 3, T: 2, D: 2}),
	}
	for _, e := range workloads {
		ev := NewEvaluator(e)
		mapping.Space(e, func(m *mapping.Mapping) {
			b1, a1 := ev.EvaluateCompact(m)
			b2, a2 := ev.EvaluateImperfectCompact(m)
			if b1 != b2 || a1 != a2 {
				t.Fatalf("%s mapping %s: perfect (%d,%d) != imperfect (%d,%d)",
					e.Name, m, b1, a1, b2, a2)
			}
		})
	}
}

// TestImperfectBoundaryTileAccounting: with an imperfect split the access
// count uses the effective average tile, never below the tensor size.
func TestImperfectBoundaryTileAccounting(t *testing.T) {
	g := einsum.GEMM("g", 10, 10, 10)
	ev := NewEvaluator(g)
	m := &mapping.Mapping{
		Splits: map[string]shape.Split{
			// Inner 3 over shape 10: outer = ceil(10/3) = 4, covering 12.
			"M": {Inner: 3, Outer: 4},
			"K": {Inner: 10, Outer: 1},
			"N": {Inner: 10, Outer: 1},
		},
		OuterOrder: []string{"M", "K", "N"},
	}
	buf, acc := ev.EvaluateImperfectCompact(m)
	// Buffer charges full inner tiles: A 3*10 + W 10*10 + B 3*10 = 160
	// elements.
	if buf != 160*2 {
		t.Fatalf("buffer = %d, want 320", buf)
	}
	// Accesses: every tensor read exactly once (only the M loop is
	// active and effective tile sums to the shape): 3*100 elements.
	if acc != 300*2 {
		t.Fatalf("accesses = %d, want 600", acc)
	}
}

func TestImperfectNeverBelowTensorSizes(t *testing.T) {
	g := einsum.GEMM("g", 10, 6, 14)
	ev := NewEvaluator(g)
	algoMin := g.AlgorithmicMinBytes()
	mapping.SpaceImperfect(g, 6, func(m *mapping.Mapping) {
		_, acc := ev.EvaluateImperfectCompact(m)
		if acc < algoMin {
			t.Fatalf("mapping %s: %d below algorithmic minimum %d", m, acc, algoMin)
		}
	})
}
