package snowcat

import (
	"testing"
	"testing/quick"

	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/shape"
)

// gemm8 is an 8x8x8 GEMM tiled as M0=2 (M1=4), K0=4 (K1=2), N0=8 (N1=1).
func gemm8Mapping(order ...string) (*einsum.Einsum, *mapping.Mapping) {
	g := einsum.GEMM("g", 8, 8, 8)
	m := &mapping.Mapping{
		Splits: map[string]shape.Split{
			"M": {Inner: 2, Outer: 4},
			"K": {Inner: 4, Outer: 2},
			"N": {Inner: 8, Outer: 1},
		},
		OuterOrder: order,
	}
	return g, m
}

func perTensor(r Result, name string) TensorAccess {
	for _, ta := range r.PerTensor {
		if ta.Tensor == name {
			return ta
		}
	}
	panic("tensor not found: " + name)
}

func TestEvaluateFig6Style(t *testing.T) {
	// Order (outermost->innermost): M1, K1, N1(bound 1).
	g, m := gemm8Mapping("M", "K", "N")
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	r := Evaluate(g, m)

	// Buffer: A 2*4 + W 4*8 + B 2*8 = 56 elems = 112 B.
	if r.BufferBytes != 112 {
		t.Fatalf("BufferBytes = %d, want 112", r.BufferBytes)
	}
	// A (M,K): innermost relevant = K1 -> iters M1*K1 = 8, elems 64 (read once).
	if a := perTensor(r, "A"); a.Iterations != 8 || a.Elems != 64 {
		t.Fatalf("A = %+v, want iters 8 elems 64", a)
	}
	// W (K,N): innermost relevant = K1 -> iters 8, elems 256 (reloaded per M1).
	if w := perTensor(r, "W"); w.Iterations != 8 || w.Elems != 256 {
		t.Fatalf("W = %+v, want iters 8 elems 256", w)
	}
	// B (M,N): innermost relevant = M1 -> iters 4, elems 64 (written once).
	if b := perTensor(r, "B"); b.Iterations != 4 || b.Elems != 64 {
		t.Fatalf("B = %+v, want iters 4 elems 64", b)
	}
	if r.AccessBytes != (64+256+64)*2 {
		t.Fatalf("AccessBytes = %d, want 768", r.AccessBytes)
	}
	if r.ReadBytes != (64+256)*2 || r.WriteBytes != 64*2 {
		t.Fatalf("Read/Write = %d/%d, want 640/128", r.ReadBytes, r.WriteBytes)
	}
}

func TestEvaluatePartialSumSpill(t *testing.T) {
	// Order K1, M1: the reduction loop is outside B's innermost relevant
	// loop, so the output spills partial sums.
	g, m := gemm8Mapping("K", "M", "N")
	r := Evaluate(g, m)
	// B: innermost relevant = M1 -> iters K1*M1 = 8, elems 128.
	if b := perTensor(r, "B"); b.Iterations != 8 || b.Elems != 128 {
		t.Fatalf("B = %+v, want iters 8 elems 128", b)
	}
	// W: innermost relevant = K1 (outermost) -> iters 2, elems 64 (read once).
	if w := perTensor(r, "W"); w.Iterations != 2 || w.Elems != 64 {
		t.Fatalf("W = %+v, want iters 2 elems 64", w)
	}
	// Output spills: 128 transfers vs 64 final elements -> 64 reload elems.
	wantRead := (64 /*A*/ + 64 /*W*/ + 64 /*B reload*/) * 2
	if r.ReadBytes != int64(wantRead) {
		t.Fatalf("ReadBytes = %d, want %d", r.ReadBytes, wantRead)
	}
	if r.WriteBytes != 128*2 {
		t.Fatalf("WriteBytes = %d, want 256", r.WriteBytes)
	}
}

func TestEvaluateFullyBuffered(t *testing.T) {
	g := einsum.GEMM("g", 8, 8, 8)
	m := &mapping.Mapping{
		Splits: map[string]shape.Split{
			"M": {Inner: 8, Outer: 1},
			"K": {Inner: 8, Outer: 1},
			"N": {Inner: 8, Outer: 1},
		},
		OuterOrder: []string{"M", "K", "N"},
	}
	r := Evaluate(g, m)
	if r.AccessBytes != g.AlgorithmicMinBytes() {
		t.Fatalf("fully buffered accesses %d != algorithmic min %d",
			r.AccessBytes, g.AlgorithmicMinBytes())
	}
	if r.BufferBytes != g.TotalOperandBytes() {
		t.Fatalf("fully buffered buffer %d != total operand bytes %d",
			r.BufferBytes, g.TotalOperandBytes())
	}
}

func TestAccessesNeverBelowAlgorithmicMin(t *testing.T) {
	g := einsum.GEMM("g", 16, 8, 4)
	mapping.Space(g, func(m *mapping.Mapping) {
		r := Evaluate(g, m)
		if r.AccessBytes < g.AlgorithmicMinBytes() {
			t.Fatalf("mapping %s: accesses %d below algorithmic min %d",
				m, r.AccessBytes, g.AlgorithmicMinBytes())
		}
	})
}

func TestGroupedBMMWeightReuse(t *testing.T) {
	// H=8 heads, G=2 groups (4 heads share one weight head).
	g := einsum.GroupedBMM("g", 8, 2, 4, 4, 4)
	base := map[string]shape.Split{
		"H": {Inner: 1, Outer: 8},
		"M": {Inner: 4, Outer: 1},
		"K": {Inner: 4, Outer: 1},
		"N": {Inner: 4, Outer: 1},
	}
	// H innermost relevant for W (only active loop): consecutive heads in a
	// group reuse the weight tile -> only G=2 distinct loads.
	m := &mapping.Mapping{Splits: base, OuterOrder: []string{"H", "M", "K", "N"}}
	r := Evaluate(g, m)
	w := perTensor(r, "W")
	if w.Iterations != 2 {
		t.Fatalf("grouped W iterations = %d, want 2 (one per group)", w.Iterations)
	}
	// Ordinary BMM (G=H): same mapping loads W once per head.
	b := einsum.BMM("b", 8, 4, 4, 4)
	rb := Evaluate(b, &mapping.Mapping{Splits: base, OuterOrder: []string{"H", "M", "K", "N"}})
	if wb := perTensor(rb, "W"); wb.Iterations != 8 {
		t.Fatalf("BMM W iterations = %d, want 8", wb.Iterations)
	}
}

func TestGroupedFactorNotAppliedWhenHNotInnermost(t *testing.T) {
	g := einsum.GroupedBMM("g", 8, 2, 4, 4, 4)
	m := &mapping.Mapping{
		Splits: map[string]shape.Split{
			"H": {Inner: 1, Outer: 8},
			"M": {Inner: 4, Outer: 1},
			"K": {Inner: 1, Outer: 4},
			"N": {Inner: 4, Outer: 1},
		},
		// K1 inside H1: each head iteration re-streams its weight group.
		OuterOrder: []string{"H", "K", "M", "N"},
	}
	r := Evaluate(g, m)
	w := perTensor(r, "W")
	if w.Iterations != 8*4 {
		t.Fatalf("W iterations = %d, want 32 (no intra-group reuse)", w.Iterations)
	}
}

func TestOperationalIntensity(t *testing.T) {
	g := einsum.GEMM("g", 8, 8, 8)
	m := &mapping.Mapping{
		Splits: map[string]shape.Split{
			"M": {Inner: 8, Outer: 1},
			"K": {Inner: 8, Outer: 1},
			"N": {Inner: 8, Outer: 1},
		},
		OuterOrder: []string{"M", "K", "N"},
	}
	r := Evaluate(g, m)
	want := float64(8*8*8) / float64(3*8*8)
	if oi := OperationalIntensity(g, r); oi != want {
		t.Fatalf("OI = %f, want %f", oi, want)
	}
}

func TestBufferRequirementMatchesFootprintsProperty(t *testing.T) {
	g := einsum.GEMM("g", 16, 16, 16)
	f := func(mi, ki, ni uint8, perm uint8) bool {
		divs := shape.Divisors(16)
		pick := func(x uint8) shape.Split {
			d := divs[int(x)%len(divs)]
			return shape.Split{Inner: d, Outer: 16 / d}
		}
		perms := shape.Permutations(3)
		p := perms[int(perm)%len(perms)]
		names := []string{"M", "K", "N"}
		order := []string{names[p[0]], names[p[1]], names[p[2]]}
		m := &mapping.Mapping{
			Splits: map[string]shape.Split{
				"M": pick(mi), "K": pick(ki), "N": pick(ni),
			},
			OuterOrder: order,
		}
		r := Evaluate(g, m)
		tiles := m.TileSizes()
		want := (tiles["M"]*tiles["K"] + tiles["K"]*tiles["N"] + tiles["M"]*tiles["N"]) * 2
		return r.BufferBytes == want && r.AccessBytes >= g.AlgorithmicMinBytes()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
