// Package snowcat implements the analytical data-movement model for the
// paper's Snowcat proxy architecture: a single processing element with one
// unconstrained buffer backed by an infinite backing store (Fig. 4b).
//
// For a given mapping the model reports (1) the buffer size requirement —
// the sum of the live tile footprints of all operands — and (2) the
// backing-store access count per tensor, computed as tile footprint times
// the product of the outer loop bounds from the outermost loop down to the
// innermost loop relevant to that tensor (the rule illustrated in Fig. 6).
package snowcat

import (
	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/nest"
	"repro/internal/shape"
)

// TensorAccess reports the data movement attributed to one tensor.
type TensorAccess struct {
	Tensor     string
	TileElems  int64 // live footprint in the buffer, in elements
	Iterations int64 // number of tile transfers to/from the backing store
	Elems      int64 // TileElems * Iterations
}

// Result is the Snowcat model's evaluation of one mapping.
type Result struct {
	BufferBytes int64 // buffer size requirement (sum of tile footprints)
	AccessBytes int64 // total backing-store traffic, paper-style counting
	PerTensor   []TensorAccess

	// Refined read/write split: writes cover the output tensor's
	// transfers (final results plus spilled partial sums); ReadBytes adds
	// the reloads of spilled partials to the input traffic. The headline
	// AccessBytes intentionally follows the paper's one-count-per-transfer
	// model; ReadBytes+WriteBytes >= AccessBytes.
	ReadBytes  int64
	WriteBytes int64
}

// Evaluate runs the Snowcat model for mapping m of Einsum e. The mapping
// must be valid for e (see Mapping.Validate); Evaluate does not re-check
// to keep the exhaustive-search inner loop cheap.
func Evaluate(e *einsum.Einsum, m *mapping.Mapping) Result {
	tiles := m.TileSizes()
	res := Result{PerTensor: make([]TensorAccess, 0, len(e.Tensors))}

	var bufElems int64
	for i := range e.Tensors {
		t := &e.Tensors[i]
		fp := e.Footprint(t, tiles)
		bufElems += fp
		iters := iterations(t, m)
		elems := shape.Product(fp, iters)
		res.PerTensor = append(res.PerTensor, TensorAccess{
			Tensor:     t.Name,
			TileElems:  fp,
			Iterations: iters,
			Elems:      elems,
		})
		res.AccessBytes += elems * e.ElementSize
		if t.Output {
			res.WriteBytes += elems * e.ElementSize
			// Every transfer beyond the first write of each region is a
			// partial-sum spill that must also be read back.
			if reload := elems - e.TensorSize(t); reload > 0 {
				res.ReadBytes += reload * e.ElementSize
			}
		} else {
			res.ReadBytes += elems * e.ElementSize
		}
	}
	res.BufferBytes = bufElems * e.ElementSize
	return res
}

// iterations computes the number of backing-store transfers for tensor t
// under mapping m by instantiating the shared product rule (internal/nest)
// on the mapping's outer-loop nest. A grouped rank (grouped BMM weight
// sharing) contributes a reduced factor when it is the tensor's innermost
// relevant loop, because consecutive head iterations within a group reuse
// the same weight tile.
func iterations(t *einsum.Tensor, m *mapping.Mapping) int64 {
	loops := make([]nest.Loop, 0, len(m.OuterOrder))
	for _, r := range m.OuterOrder {
		loops = append(loops, nest.Loop{Rank: r, Bound: m.Splits[r].Outer})
	}
	return nest.IterationsGrouped(loops, t.Relevant, func(l nest.Loop) int64 {
		gd := t.GroupDivFor(l.Rank)
		if gd <= 1 {
			return l.Bound
		}
		// Number of distinct group tiles visited across the loop.
		in := m.Splits[l.Rank].Inner
		return shape.Max(1, shape.CeilDiv(l.Bound*in, shape.Max(in, gd)))
	})
}

// OperationalIntensity returns MACs per element of backing-store traffic
// for the evaluated mapping (the metric plotted on the paper's OI mesas).
func OperationalIntensity(e *einsum.Einsum, r Result) float64 {
	return float64(e.MACs()) / (float64(r.AccessBytes) / float64(e.ElementSize))
}
