package snowcat

import (
	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/nest"
	"repro/internal/shape"
)

// Evaluator is a compiled form of an Einsum's Snowcat model. It avoids the
// per-call map allocations of Evaluate, which matters inside exhaustive
// mapspace traversals that evaluate hundreds of thousands of mappings.
// An Evaluator is not safe for concurrent use (it reuses a scratch loop
// nest between calls); parallel traversals build one per worker.
type Evaluator struct {
	e         *einsum.Einsum
	rankShape map[string]int64
	tensors   []compiledTensor
	nestBuf   []nest.Loop // reusable outer-loop nest, rebuilt per mapping
}

type compiledTensor struct {
	output   bool
	grouped  bool // any rank carries a grouping divisor > 1
	sizeElem int64
	dims     []compiledDim
	// relevant[rank] and groupDiv[rank] are keyed by rank name; rank
	// count is tiny so map lookups are cheap and allocation-free.
	relevant map[string]bool
	groupDiv map[string]int64
}

type compiledDim struct {
	terms      []einsum.Term
	groupDiv   int64
	fullExtent int64
}

// NewEvaluator compiles e. The Einsum must be valid.
func NewEvaluator(e *einsum.Einsum) *Evaluator {
	full := make(map[string]int64, len(e.Ranks))
	for _, r := range e.Ranks {
		full[r.Name] = r.Shape
	}
	ev := &Evaluator{e: e, rankShape: full}
	for i := range e.Tensors {
		t := &e.Tensors[i]
		ct := compiledTensor{
			output:   t.Output,
			sizeElem: e.TensorSize(t),
			relevant: map[string]bool{},
			groupDiv: map[string]int64{},
		}
		for _, r := range e.Ranks {
			ct.relevant[r.Name] = t.Relevant(r.Name)
			gd := t.GroupDivFor(r.Name)
			ct.groupDiv[r.Name] = gd
			if gd > 1 {
				ct.grouped = true
			}
		}
		for j := range t.Dims {
			d := &t.Dims[j]
			ct.dims = append(ct.dims, compiledDim{
				terms:      d.Terms,
				groupDiv:   d.GroupDiv,
				fullExtent: d.DimExtent(full),
			})
		}
		ev.tensors = append(ev.tensors, ct)
	}
	return ev
}

// EvaluateCompact returns only the buffer requirement and access count in
// bytes — the two numbers the Orojenesis frontier needs.
func (ev *Evaluator) EvaluateCompact(m *mapping.Mapping) (bufBytes, accessBytes int64) {
	es := ev.e.ElementSize
	loops := ev.loops(m)
	for i := range ev.tensors {
		t := &ev.tensors[i]
		fp := ev.footprint(t, m)
		bufBytes += fp
		accessBytes += fp * ev.iterations(t, loops, m)
	}
	return bufBytes * es, accessBytes * es
}

// EvaluateCompactSpillCharged is EvaluateCompact with physical partial-sum
// accounting: every output transfer beyond the first write of a region is
// a spill that must also be read back, so output traffic beyond the
// tensor size is doubled. The paper's model counts each transfer once;
// this variant supports the spill-accounting ablation.
func (ev *Evaluator) EvaluateCompactSpillCharged(m *mapping.Mapping) (bufBytes, accessBytes int64) {
	es := ev.e.ElementSize
	loops := ev.loops(m)
	for i := range ev.tensors {
		t := &ev.tensors[i]
		fp := ev.footprint(t, m)
		bufBytes += fp
		elems := fp * ev.iterations(t, loops, m)
		accessBytes += elems
		if t.output && elems > t.sizeElem {
			accessBytes += elems - t.sizeElem // reload of spilled partials
		}
	}
	return bufBytes * es, accessBytes * es
}

func (ev *Evaluator) footprint(t *compiledTensor, m *mapping.Mapping) int64 {
	fp := int64(1)
	for i := range t.dims {
		d := &t.dims[i]
		var ext int64
		if d.groupDiv > 1 {
			ext = shape.CeilDiv(m.Splits[d.terms[0].Rank].Inner, d.groupDiv)
		} else {
			ext = 1
			for _, term := range d.terms {
				ext += term.Coeff * (m.Splits[term.Rank].Inner - 1)
			}
		}
		if ext > d.fullExtent {
			ext = d.fullExtent
		}
		fp *= ext
	}
	return fp
}

// loops assembles the mapping's outer-loop nest into the Evaluator's
// scratch buffer — one split lookup per rank per mapping, shared across
// tensors.
func (ev *Evaluator) loops(m *mapping.Mapping) []nest.Loop {
	loops := ev.nestBuf[:0]
	for _, r := range m.OuterOrder {
		loops = append(loops, nest.Loop{Rank: r, Bound: m.Splits[r].Outer})
	}
	ev.nestBuf = loops
	return loops
}

// iterations instantiates the shared product rule (internal/nest) for one
// tensor. Grouped tensors override the innermost relevant factor: across
// the loop, consecutive head iterations within a group reuse the same
// weight tile, so only distinct group tiles are transferred.
func (ev *Evaluator) iterations(t *compiledTensor, loops []nest.Loop, m *mapping.Mapping) int64 {
	if !t.grouped {
		return nest.Iterations(loops, func(r string) bool { return t.relevant[r] })
	}
	return nest.IterationsGrouped(loops,
		func(r string) bool { return t.relevant[r] },
		func(l nest.Loop) int64 {
			gd := t.groupDiv[l.Rank]
			if gd <= 1 {
				return l.Bound
			}
			in := m.Splits[l.Rank].Inner
			return shape.Max(1, shape.CeilDiv(l.Bound*in, shape.Max(in, gd)))
		})
}
