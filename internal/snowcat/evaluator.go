package snowcat

import (
	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/shape"
)

// Evaluator is a compiled form of an Einsum's Snowcat model. It avoids the
// per-call map allocations of Evaluate, which matters inside exhaustive
// mapspace traversals that evaluate hundreds of thousands of mappings.
type Evaluator struct {
	e         *einsum.Einsum
	rankShape map[string]int64
	tensors   []compiledTensor
}

type compiledTensor struct {
	output   bool
	sizeElem int64
	dims     []compiledDim
	// relevant[rank] and groupDiv[rank] are keyed by rank name; rank
	// count is tiny so map lookups are cheap and allocation-free.
	relevant map[string]bool
	groupDiv map[string]int64
}

type compiledDim struct {
	terms      []einsum.Term
	groupDiv   int64
	fullExtent int64
}

// NewEvaluator compiles e. The Einsum must be valid.
func NewEvaluator(e *einsum.Einsum) *Evaluator {
	full := make(map[string]int64, len(e.Ranks))
	for _, r := range e.Ranks {
		full[r.Name] = r.Shape
	}
	ev := &Evaluator{e: e, rankShape: full}
	for i := range e.Tensors {
		t := &e.Tensors[i]
		ct := compiledTensor{
			output:   t.Output,
			sizeElem: e.TensorSize(t),
			relevant: map[string]bool{},
			groupDiv: map[string]int64{},
		}
		for _, r := range e.Ranks {
			ct.relevant[r.Name] = t.Relevant(r.Name)
			ct.groupDiv[r.Name] = t.GroupDivFor(r.Name)
		}
		for j := range t.Dims {
			d := &t.Dims[j]
			ct.dims = append(ct.dims, compiledDim{
				terms:      d.Terms,
				groupDiv:   d.GroupDiv,
				fullExtent: d.DimExtent(full),
			})
		}
		ev.tensors = append(ev.tensors, ct)
	}
	return ev
}

// EvaluateCompact returns only the buffer requirement and access count in
// bytes — the two numbers the Orojenesis frontier needs.
func (ev *Evaluator) EvaluateCompact(m *mapping.Mapping) (bufBytes, accessBytes int64) {
	es := ev.e.ElementSize
	for i := range ev.tensors {
		t := &ev.tensors[i]
		fp := ev.footprint(t, m)
		bufBytes += fp
		accessBytes += fp * ev.iterations(t, m)
	}
	return bufBytes * es, accessBytes * es
}

// EvaluateCompactSpillCharged is EvaluateCompact with physical partial-sum
// accounting: every output transfer beyond the first write of a region is
// a spill that must also be read back, so output traffic beyond the
// tensor size is doubled. The paper's model counts each transfer once;
// this variant supports the spill-accounting ablation.
func (ev *Evaluator) EvaluateCompactSpillCharged(m *mapping.Mapping) (bufBytes, accessBytes int64) {
	es := ev.e.ElementSize
	for i := range ev.tensors {
		t := &ev.tensors[i]
		fp := ev.footprint(t, m)
		bufBytes += fp
		elems := fp * ev.iterations(t, m)
		accessBytes += elems
		if t.output && elems > t.sizeElem {
			accessBytes += elems - t.sizeElem // reload of spilled partials
		}
	}
	return bufBytes * es, accessBytes * es
}

func (ev *Evaluator) footprint(t *compiledTensor, m *mapping.Mapping) int64 {
	fp := int64(1)
	for i := range t.dims {
		d := &t.dims[i]
		var ext int64
		if d.groupDiv > 1 {
			ext = shape.CeilDiv(m.Splits[d.terms[0].Rank].Inner, d.groupDiv)
		} else {
			ext = 1
			for _, term := range d.terms {
				ext += term.Coeff * (m.Splits[term.Rank].Inner - 1)
			}
		}
		if ext > d.fullExtent {
			ext = d.fullExtent
		}
		fp *= ext
	}
	return fp
}

func (ev *Evaluator) iterations(t *compiledTensor, m *mapping.Mapping) int64 {
	order := m.OuterOrder
	inner := -1
	for i := len(order) - 1; i >= 0; i-- {
		r := order[i]
		if m.Splits[r].Outer > 1 && t.relevant[r] {
			inner = i
			break
		}
	}
	if inner < 0 {
		return 1
	}
	iters := int64(1)
	for i := 0; i <= inner; i++ {
		r := order[i]
		s := m.Splits[r]
		if s.Outer == 1 {
			continue
		}
		factor := s.Outer
		if i == inner {
			if gd := t.groupDiv[r]; gd > 1 {
				factor = shape.Max(1, shape.CeilDiv(s.Outer*s.Inner, shape.Max(s.Inner, gd)))
			}
		}
		iters *= factor
	}
	return iters
}
