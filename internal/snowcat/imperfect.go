package snowcat

import (
	"math"

	"repro/internal/mapping"
)

// EvaluateImperfectCompact evaluates a mapping whose splits may use
// imperfect factors (Inner*Outer >= shape, partial boundary tiles).
//
// The buffer requirement charges the full inner tile (the buffer must be
// sized for the largest resident tile). Access counts use the *effective*
// average tile extent shape/outer per rank, so the sum over all boundary
// and interior tiles is exact for identity projections and a tight
// rational approximation for strided/grouped ones. Per-tensor traffic is
// clamped from below by the tensor's size (every operand is touched at
// least once), keeping the bound sound.
func (ev *Evaluator) EvaluateImperfectCompact(m *mapping.Mapping) (bufBytes, accessBytes int64) {
	es := ev.e.ElementSize
	loops := ev.loops(m)
	for i := range ev.tensors {
		t := &ev.tensors[i]
		bufBytes += ev.footprint(t, m)
		fpEff := ev.effectiveFootprint(t, m)
		iters := ev.iterations(t, loops, m)
		elems := int64(math.Ceil(fpEff * float64(iters)))
		if elems < t.sizeElem {
			elems = t.sizeElem
		}
		accessBytes += elems
	}
	return bufBytes * es, accessBytes * es
}

// effectiveFootprint computes the tensor's average per-transfer footprint
// using rational tile extents shape/outer.
func (ev *Evaluator) effectiveFootprint(t *compiledTensor, m *mapping.Mapping) float64 {
	fp := 1.0
	for i := range t.dims {
		d := &t.dims[i]
		var ext float64
		if d.groupDiv > 1 {
			ext = ev.effTile(d.terms[0].Rank, m) / float64(d.groupDiv)
			if ext < 1 {
				ext = 1
			}
		} else {
			ext = 1
			for _, term := range d.terms {
				ext += float64(term.Coeff) * (ev.effTile(term.Rank, m) - 1)
			}
		}
		if max := float64(d.fullExtent); ext > max {
			ext = max
		}
		fp *= ext
	}
	return fp
}

// effTile returns the average tile extent of a rank under the mapping:
// the rank's full shape spread over its outer iterations, capped by the
// inner tile and floored at 1.
func (ev *Evaluator) effTile(rank string, m *mapping.Mapping) float64 {
	s := m.Splits[rank]
	eff := float64(ev.rankShape[rank]) / float64(s.Outer)
	if eff > float64(s.Inner) {
		eff = float64(s.Inner)
	}
	if eff < 1 {
		eff = 1
	}
	return eff
}
