package search

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
)

func TestRandomCurveValidAndLoose(t *testing.T) {
	g := einsum.GEMM("g", 128, 128, 128)
	exhaustive := bound.Derive(g, bound.Options{Workers: 1}).Curve

	// A tiny sample is valid (never below the bound) but loose.
	small := RandomCurve(g, 20, 1)
	for _, p := range small.Points() {
		bnd, ok := exhaustive.AccessesAt(p.BufferBytes)
		if !ok || p.AccessBytes < bnd {
			t.Fatalf("random point %+v below the bound (%d,%v)", p, bnd, ok)
		}
	}
	l := Compare(exhaustive, small)
	if l.Max < 1 {
		t.Fatalf("looseness below 1: %+v", l)
	}
	if l.Max == 1 && l.Infeasible == 0 {
		t.Fatalf("20 random samples should not match the frontier everywhere: %+v", l)
	}
}

func TestMoreSamplesTighter(t *testing.T) {
	g := einsum.GEMM("g", 128, 128, 128)
	exhaustive := bound.Derive(g, bound.Options{Workers: 1}).Curve
	small := Compare(exhaustive, RandomCurve(g, 30, 7))
	large := Compare(exhaustive, RandomCurve(g, 3000, 7))
	// With two orders of magnitude more samples the frontier coverage
	// must improve on both axes.
	if large.Mean > small.Mean && large.Infeasible > small.Infeasible {
		t.Fatalf("more samples got looser: %+v vs %+v", large, small)
	}
}

func TestHillClimbValidAndCompetitive(t *testing.T) {
	g := einsum.GEMM("g", 128, 128, 128)
	exhaustive := bound.Derive(g, bound.Options{Workers: 1}).Curve
	budgets := []int64{1 << 10, 1 << 13, 1 << 16}
	hc := HillClimbCurve(g, budgets, 2000, 11)
	if hc.Empty() {
		t.Fatal("hill climb found nothing")
	}
	for _, p := range hc.Points() {
		bnd, ok := exhaustive.AccessesAt(p.BufferBytes)
		if !ok || p.AccessBytes < bnd {
			t.Fatalf("hill-climb point %+v below the bound", p)
		}
	}
	// Same evaluation budget: hill climbing should be no worse on
	// average than blind random sampling at the probe budgets.
	rc := RandomCurve(g, 2000, 11)
	var hcWorse int
	for _, budget := range budgets {
		h, ok1 := hc.AccessesAt(budget)
		r, ok2 := rc.AccessesAt(budget)
		if ok1 && ok2 && h > r {
			hcWorse++
		}
	}
	if hcWorse == len(budgets) {
		t.Fatal("hill climbing lost to random sampling at every budget")
	}
}

func TestCompareCounting(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	exhaustive := bound.Derive(g, bound.Options{Workers: 1}).Curve
	self := Compare(exhaustive, exhaustive)
	if self.Max != 1 || self.Mean != 1 || self.Infeasible != 0 {
		t.Fatalf("self-comparison = %+v, want exact match", self)
	}
}
