// Package search implements the mapper alternatives the paper contrasts
// against exhaustive traversal (Sec. III-B "Bound Derivation"): random
// sampling and hill-climbing over the Snowcat mapspace. Neither is
// guaranteed to converge to the Pareto frontier, and the Compare helper
// quantifies by how much they miss it — the empirical argument for why
// Orojenesis relies on exhaustive search.
package search

import (
	"math/rand"

	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/snowcat"
)

// randomMapping draws a uniform mapping from the perfect-factor space.
func randomMapping(e *einsum.Einsum, rng *rand.Rand) *mapping.Mapping {
	m := &mapping.Mapping{Splits: map[string]shape.Split{}}
	names := make([]string, len(e.Ranks))
	for i, r := range e.Ranks {
		names[i] = r.Name
		sp := shape.Splits(r.Shape)
		m.Splits[r.Name] = sp[rng.Intn(len(sp))]
	}
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	m.OuterOrder = names
	return m
}

// RandomCurve evaluates samples random mappings and returns their Pareto
// frontier. Being a subset of the full space, the result always sits on
// or above the exhaustive bound.
func RandomCurve(e *einsum.Einsum, samples int, seed int64) *pareto.Curve {
	rng := rand.New(rand.NewSource(seed))
	ev := snowcat.NewEvaluator(e)
	b := pareto.NewBuilder()
	for i := 0; i < samples; i++ {
		buf, acc := ev.EvaluateCompact(randomMapping(e, rng))
		b.Add(buf, acc)
	}
	c := b.Curve()
	c.AlgoMinBytes = e.AlgorithmicMinBytes()
	c.TotalOperandBytes = e.TotalOperandBytes()
	return c
}

// mutate perturbs one aspect of a mapping: a rank's split moves to a
// neighboring divisor, or two outer loops swap.
func mutate(e *einsum.Einsum, m *mapping.Mapping, rng *rand.Rand) *mapping.Mapping {
	out := m.Clone()
	if rng.Intn(3) == 0 && len(out.OuterOrder) > 1 {
		i := rng.Intn(len(out.OuterOrder) - 1)
		out.OuterOrder[i], out.OuterOrder[i+1] = out.OuterOrder[i+1], out.OuterOrder[i]
		return out
	}
	r := e.Ranks[rng.Intn(len(e.Ranks))]
	sp := shape.Splits(r.Shape)
	cur := out.Splits[r.Name]
	idx := 0
	for i, s := range sp {
		if s == cur {
			idx = i
			break
		}
	}
	if rng.Intn(2) == 0 && idx > 0 {
		idx--
	} else if idx < len(sp)-1 {
		idx++
	}
	out.Splits[r.Name] = sp[idx]
	return out
}

// HillClimbCurve runs greedy local search: for each of a sweep of buffer
// budgets it minimizes accesses subject to the budget, restarting from
// random mappings. evalBudget caps the total number of evaluations.
func HillClimbCurve(e *einsum.Einsum, budgets []int64, evalBudget int, seed int64) *pareto.Curve {
	rng := rand.New(rand.NewSource(seed))
	ev := snowcat.NewEvaluator(e)
	b := pareto.NewBuilder()
	evals := 0
	perBudget := evalBudget / shape.MaxInt(1, len(budgets))
	for _, budget := range budgets {
		var best *mapping.Mapping
		var bestAcc int64 = -1
		for evalsThis := 0; evalsThis < perBudget && evals < evalBudget; {
			cur := randomMapping(e, rng)
			buf, acc := ev.EvaluateCompact(cur)
			evals++
			evalsThis++
			if buf > budget {
				continue
			}
			// Greedy descent.
			for stall := 0; stall < 12 && evalsThis < perBudget && evals < evalBudget; {
				cand := mutate(e, cur, rng)
				cbuf, cacc := ev.EvaluateCompact(cand)
				evals++
				evalsThis++
				if cbuf <= budget && cacc < acc {
					cur, acc = cand, cacc
					stall = 0
				} else {
					stall++
				}
			}
			if bestAcc < 0 || acc < bestAcc {
				best, bestAcc = cur, acc
			}
		}
		if best != nil {
			buf, acc := ev.EvaluateCompact(best)
			b.Add(buf, acc)
			_ = acc
		}
	}
	c := b.Curve()
	c.AlgoMinBytes = e.AlgorithmicMinBytes()
	c.TotalOperandBytes = e.TotalOperandBytes()
	return c
}

// Looseness compares a heuristic curve against the exhaustive bound at
// the bound's breakpoints: the maximum and mean ratio of heuristic to
// optimal accesses (1.0 = matched the frontier everywhere it was
// feasible), plus the fraction of probes the heuristic could not serve.
type Looseness struct {
	Max, Mean  float64
	Infeasible float64
}

// Compare quantifies how far a heuristic curve sits above the bound.
func Compare(exhaustive, heuristic *pareto.Curve) Looseness {
	var l Looseness
	var n, miss int
	var sum float64
	for _, p := range exhaustive.Points() {
		acc, ok := heuristic.AccessesAt(p.BufferBytes)
		if !ok {
			miss++
			continue
		}
		ratio := float64(acc) / float64(p.AccessBytes)
		if ratio > l.Max {
			l.Max = ratio
		}
		sum += ratio
		n++
	}
	if n > 0 {
		l.Mean = sum / float64(n)
	}
	if total := n + miss; total > 0 {
		l.Infeasible = float64(miss) / float64(total)
	}
	return l
}
