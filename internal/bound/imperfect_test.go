package bound

import (
	"testing"

	"repro/internal/einsum"
	"repro/internal/mapping"
)

func TestImperfectCandidates(t *testing.T) {
	c := mapping.ImperfectCandidates(12, 0)
	if len(c) != 6 {
		t.Fatalf("extra=0 should be just divisors: %v", c)
	}
	c = mapping.ImperfectCandidates(100, 16)
	if len(c) <= 9 {
		t.Fatalf("extra=16 should widen beyond the 9 divisors of 100: %v", c)
	}
	for i, v := range c {
		if v < 1 || v > 100 {
			t.Fatalf("candidate %d out of range: %v", v, c)
		}
		if i > 0 && c[i-1] >= v {
			t.Fatalf("candidates not strictly ascending: %v", c)
		}
	}
}

func TestImperfectDominatesPerfect(t *testing.T) {
	// A prime-ish shape where perfect factors are scarce benefits most.
	g := einsum.GEMM("g", 96, 80, 72)
	perfect := Derive(g, Options{Workers: 1}).Curve
	imperfect := Derive(g, Options{Workers: 1, ImperfectExtra: 12}).Curve

	if imperfect.Len() <= perfect.Len() {
		t.Fatalf("imperfect curve should have more breakpoints: %d vs %d",
			imperfect.Len(), perfect.Len())
	}
	// Pointwise dominance at the perfect curve's breakpoints.
	for _, p := range perfect.Points() {
		acc, ok := imperfect.AccessesAt(p.BufferBytes)
		if !ok || acc > p.AccessBytes {
			t.Fatalf("imperfect curve worse at %d: (%d,%v) vs %d",
				p.BufferBytes, acc, ok, p.AccessBytes)
		}
	}
	// Floors agree: full buffering is in both spaces.
	if imperfect.MinAccessBytes() != g.AlgorithmicMinBytes() {
		t.Fatalf("imperfect floor %d != algo min %d",
			imperfect.MinAccessBytes(), g.AlgorithmicMinBytes())
	}
	if imperfect.MinAccessBytes() != perfect.MinAccessBytes() {
		t.Fatal("floors disagree")
	}
}

func TestImperfectNeverBelowAlgoMin(t *testing.T) {
	for _, e := range []*einsum.Einsum{
		einsum.GEMM("g", 48, 36, 60),
		einsum.BMM("b", 6, 24, 12, 24),
		einsum.Conv2D("c", einsum.ConvConfig{P: 6, Q: 6, N: 8, C: 8, R: 3, S: 3, T: 2, D: 1}),
	} {
		c := Derive(e, Options{Workers: 1, ImperfectExtra: 8}).Curve
		for _, p := range c.Points() {
			if p.AccessBytes < e.AlgorithmicMinBytes() {
				t.Fatalf("%s: point %+v below algorithmic minimum %d",
					e.Name, p, e.AlgorithmicMinBytes())
			}
		}
	}
}

func TestImperfectSmoothsOblongGEMM(t *testing.T) {
	// With imperfect factors, the curve should offer strictly more buffer
	// breakpoints between the extremes.
	g := einsum.GEMM("g", 128, 128, 128)
	perfect := Derive(g, Options{Workers: 1}).Curve
	imperfect := Derive(g, Options{Workers: 1, ImperfectExtra: 24}).Curve
	if imperfect.Len() < perfect.Len()*2 {
		t.Fatalf("expected a much denser curve: %d vs %d", imperfect.Len(), perfect.Len())
	}
}
