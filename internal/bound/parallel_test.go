package bound

import (
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/einsum"
	"repro/internal/mapping"
)

// TestWorkerUtilizationIndependentOfLeadingRank is the regression test for
// the old first-rank sharding: a GEMM whose leading rank is prime (13 has
// two divisors) used to cap the traversal at two workers no matter how many
// cores were available. Chunked index distribution must reach full
// utilization and produce the same curve for any rank declaration order.
func TestWorkerUtilizationIndependentOfLeadingRank(t *testing.T) {
	g1 := einsum.GEMM("g", 13, 64, 64) // ranks (M, K, N), M prime

	g2 := &einsum.Einsum{
		Name:        g1.Name,
		Ranks:       []einsum.Rank{g1.Ranks[1], g1.Ranks[0], g1.Ranks[2]}, // (K, M, N)
		Tensors:     g1.Tensors,
		ElementSize: g1.ElementSize,
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}

	r1 := Derive(g1, Options{})
	r2 := Derive(g2, Options{})

	p1, p2 := r1.Curve.Points(), r2.Curve.Points()
	if len(p1) != len(p2) {
		t.Fatalf("rank orders disagree: %d vs %d points", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("point %d differs across rank orders: %v vs %v", i, p1[i], p2[i])
		}
	}

	tilings := mapping.NewEnum(g1).Tilings()
	want := runtime.GOMAXPROCS(0)
	if int64(want) > tilings {
		want = int(tilings)
	}
	for _, r := range []Result{r1, r2} {
		if r.Stats.Workers != want {
			t.Fatalf("workers = %d, want %d (GOMAXPROCS %d, %d tilings)",
				r.Stats.Workers, want, runtime.GOMAXPROCS(0), tilings)
		}
	}
	if runtime.GOMAXPROCS(0) > 2 && r1.Stats.Workers <= 2 {
		t.Fatalf("prime leading rank capped workers at %d again", r1.Stats.Workers)
	}
}

func TestDeriveImperfectDeterministicAcrossWorkerCounts(t *testing.T) {
	g := einsum.GEMM("g", 24, 20, 12)
	serial := Derive(g, Options{ImperfectExtra: 3, Workers: 1})
	par := Derive(g, Options{ImperfectExtra: 3, Workers: 8})
	if serial.Stats.MappingsEvaluated != par.Stats.MappingsEvaluated {
		t.Fatalf("evaluated %d vs %d mappings", serial.Stats.MappingsEvaluated, par.Stats.MappingsEvaluated)
	}
	sp, pp := serial.Curve.Points(), par.Curve.Points()
	if len(sp) != len(pp) {
		t.Fatalf("imperfect curves disagree: %d vs %d points", len(sp), len(pp))
	}
	for i := range sp {
		if sp[i] != pp[i] {
			t.Fatalf("imperfect point %d differs: %v vs %v", i, sp[i], pp[i])
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"zero value", Options{}, ""},
		{"explicit workers", Options{Workers: 4}, ""},
		{"imperfect", Options{ImperfectExtra: 8}, ""},
		{"spills alone", Options{ChargeSpills: true}, ""},
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"negative imperfect", Options{ImperfectExtra: -2}, "ImperfectExtra"},
		{"spills plus imperfect", Options{ChargeSpills: true, ImperfectExtra: 1}, "ChargeSpills"},
	}
	for _, cs := range cases {
		err := cs.opts.Validate()
		if cs.wantErr == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", cs.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), cs.wantErr) {
			t.Fatalf("%s: err = %v, want mention of %q", cs.name, err, cs.wantErr)
		}
	}
}

func TestDerivePanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Derive should panic on invalid options")
		}
	}()
	Derive(einsum.GEMM("g", 4, 4, 4), Options{Workers: -1})
}

func TestProbeLevelsDeterministicOrder(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	c := Derive(g, Options{}).Curve
	levels := map[string]int64{
		"L2":  8192,
		"L1b": 256,
		"L1a": 256, // same capacity: name breaks the tie
		"L3":  1 << 20,
		"L0":  64,
	}
	var first []LevelBound
	for trial := 0; trial < 20; trial++ {
		got := ProbeLevels(c, levels)
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if got[i].CapacityBytes != got[j].CapacityBytes {
				return got[i].CapacityBytes < got[j].CapacityBytes
			}
			return got[i].Level < got[j].Level
		}) {
			t.Fatalf("trial %d: unsorted probe order: %+v", trial, got)
		}
		if first == nil {
			first = got
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order changed: %+v vs %+v", trial, got, first)
			}
		}
	}
	if first[0].Level != "L0" || first[1].Level != "L1a" || first[2].Level != "L1b" {
		t.Fatalf("tie-break order wrong: %+v", first)
	}
}

func BenchmarkDeriveImperfect(b *testing.B) {
	g := einsum.GEMM("g", 96, 80, 72)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(benchName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Derive(g, Options{ImperfectExtra: 8, Workers: w})
			}
		})
	}
}

func BenchmarkDerivePerfect(b *testing.B) {
	g := einsum.GEMM("g", 512, 512, 512)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(benchName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Derive(g, Options{Workers: w})
			}
		})
	}
}

func benchName(w int) string {
	if w == 1 {
		return "workers=1"
	}
	return "workers=max"
}
