package bound

import (
	"testing"

	"repro/internal/einsum"
)

func TestSpillChargedCurveDominatedByPaperCurve(t *testing.T) {
	g := einsum.GEMM("g", 64, 64, 64)
	paper := Derive(g, Options{Workers: 1}).Curve
	charged := Derive(g, Options{Workers: 1, ChargeSpills: true}).Curve

	// Charging spills can only raise access counts: at every charged
	// breakpoint the paper-model bound is at most the charged value.
	for _, p := range charged.Points() {
		base, ok := paper.AccessesAt(p.BufferBytes)
		if !ok || base > p.AccessBytes {
			t.Fatalf("paper model above spill-charged at %d: (%d,%v) vs %d",
				p.BufferBytes, base, ok, p.AccessBytes)
		}
	}
	// Both floors are the algorithmic minimum: full buffering never
	// spills.
	if charged.MinAccessBytes() != g.AlgorithmicMinBytes() {
		t.Fatalf("charged floor %d != algo min %d",
			charged.MinAccessBytes(), g.AlgorithmicMinBytes())
	}
}

func TestSpillChargingMattersOnlyUnderPressure(t *testing.T) {
	// With K small relative to M and N, optimal mappings avoid output
	// spills entirely and the two models agree everywhere.
	g := einsum.GEMM("g", 64, 4, 64)
	paper := Derive(g, Options{Workers: 1}).Curve
	charged := Derive(g, Options{Workers: 1, ChargeSpills: true}).Curve
	for _, p := range paper.Points() {
		c, ok := charged.AccessesAt(p.BufferBytes)
		if !ok {
			t.Fatalf("charged curve infeasible at %d", p.BufferBytes)
		}
		if c != p.AccessBytes {
			// The optimum may differ; it must never be cheaper.
			if c < p.AccessBytes {
				t.Fatalf("charged cheaper than paper at %d: %d < %d",
					p.BufferBytes, c, p.AccessBytes)
			}
		}
	}
}
