package bound

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/einsum"
	"repro/internal/pareto"
)

// TestDeriveRangeCoverParity pins the sharding contract: partial curves
// over any disjoint cover of [0, Space) union to the byte-identical
// full-range curve, annotations included.
func TestDeriveRangeCoverParity(t *testing.T) {
	e := einsum.GEMM("g", 64, 48, 80)
	for _, opts := range []Options{{}, {ImperfectExtra: 2}, {ChargeSpills: true}} {
		space := Space(e, opts)
		if space < 4 {
			t.Fatalf("space = %d, too small to split", space)
		}
		full := Derive(e, opts)
		want, err := json.Marshal(full.Curve)
		if err != nil {
			t.Fatal(err)
		}

		cuts := []int64{0, space / 5, space / 2, space - 1, space}
		var parts []*pareto.Curve
		var evaluated int64
		for i := 0; i+1 < len(cuts); i++ {
			r, err := DeriveRange(context.Background(), e, opts, cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, r.Curve)
			evaluated += r.Stats.MappingsEvaluated
		}
		merged := pareto.Union(parts...)
		merged.AlgoMinBytes = parts[0].AlgoMinBytes
		merged.TotalOperandBytes = parts[0].TotalOperandBytes
		got, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("opts %+v: union of range curves differs from full derive\n got %s\nwant %s", opts, got, want)
		}
		if evaluated != full.Stats.MappingsEvaluated {
			t.Fatalf("opts %+v: ranges evaluated %d mappings, full derive %d", opts, evaluated, full.Stats.MappingsEvaluated)
		}
	}
}

// TestDeriveRangeEmptyStillAnnotated: empty ranges are the "more shards
// than items" case and must carry workload annotations for the merge.
func TestDeriveRangeEmptyStillAnnotated(t *testing.T) {
	e := einsum.GEMM("g", 8, 8, 8)
	r, err := DeriveRange(context.Background(), e, Options{}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Curve.Empty() {
		t.Fatalf("empty range produced %d points", r.Curve.Len())
	}
	if r.Curve.AlgoMinBytes != e.AlgorithmicMinBytes() || r.Curve.TotalOperandBytes != e.TotalOperandBytes() {
		t.Fatalf("empty-range curve missing annotations: %d, %d", r.Curve.AlgoMinBytes, r.Curve.TotalOperandBytes)
	}
}

func TestDeriveRangePanicsOutOfBounds(t *testing.T) {
	e := einsum.GEMM("g", 8, 8, 8)
	space := Space(e, Options{})
	for _, r := range [][2]int64{{-1, 2}, {0, space + 1}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DeriveRange[%d, %d) did not panic", r[0], r[1])
				}
			}()
			DeriveRange(context.Background(), e, Options{}, r[0], r[1])
		}()
	}
}

func TestOptionsCanonicalExcludesWorkers(t *testing.T) {
	a := Options{Workers: 1, ImperfectExtra: 3}
	b := Options{Workers: 16, ImperfectExtra: 3}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("worker count leaked into canonical options: %q vs %q", a.Canonical(), b.Canonical())
	}
	c := Options{ImperfectExtra: 4}
	if a.Canonical() == c.Canonical() {
		t.Fatal("result-affecting option missing from canonical encoding")
	}
	d := Options{ChargeSpills: true}
	if (Options{}).Canonical() == d.Canonical() {
		t.Fatal("ChargeSpills missing from canonical encoding")
	}
}
