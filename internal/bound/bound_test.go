package bound

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/snowcat"
)

func TestDeriveSmallGEMMBoundValidity(t *testing.T) {
	g := einsum.GEMM("g", 32, 16, 8)
	res := Derive(g, Options{})
	c := res.Curve
	if c.Empty() {
		t.Fatal("empty curve")
	}
	if res.Stats.MappingsEvaluated != mapping.SpaceSize(g) {
		t.Fatalf("evaluated %d mappings, space size is %d",
			res.Stats.MappingsEvaluated, mapping.SpaceSize(g))
	}
	// Bound validity: every mapping in the space is on or above the curve.
	mapping.Space(g, func(m *mapping.Mapping) {
		r := snowcat.Evaluate(g, m)
		acc, ok := c.AccessesAt(r.BufferBytes)
		if !ok || acc > r.AccessBytes {
			t.Fatalf("mapping %s below curve: (%d,%d) vs bound %d", m, r.BufferBytes, r.AccessBytes, acc)
		}
	})
	// The curve bottoms out at the algorithmic minimum (full buffering is
	// in the space).
	if c.MinAccessBytes() != g.AlgorithmicMinBytes() {
		t.Fatalf("curve min %d != algorithmic min %d", c.MinAccessBytes(), g.AlgorithmicMinBytes())
	}
	if c.AlgoMinBytes != g.AlgorithmicMinBytes() {
		t.Fatal("curve missing algo-min annotation")
	}
}

func TestDeriveMonotonicity(t *testing.T) {
	g := einsum.GEMM("g", 64, 32, 16)
	c := Derive(g, Options{}).Curve
	pts := c.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].BufferBytes <= pts[i-1].BufferBytes || pts[i].AccessBytes >= pts[i-1].AccessBytes {
			t.Fatalf("non-monotone frontier at %d: %v -> %v", i, pts[i-1], pts[i])
		}
	}
}

func TestDeriveDeterministicAcrossWorkerCounts(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	c1 := Derive(g, Options{Workers: 1}).Curve
	c4 := Derive(g, Options{Workers: 4}).Curve
	p1, p4 := c1.Points(), c4.Points()
	if len(p1) != len(p4) {
		t.Fatalf("worker counts disagree: %d vs %d points", len(p1), len(p4))
	}
	for i := range p1 {
		if p1[i] != p4[i] {
			t.Fatalf("point %d differs: %v vs %v", i, p1[i], p4[i])
		}
	}
}

func TestMaxEffectualMatchesClosedForm(t *testing.T) {
	// Sec. IV-1: maximal effectual buffer ~= smallest operand + smallest
	// rank + 1. With perfect factors the search cannot land exactly on the
	// closed form, but it must be within the same ballpark: between the
	// smallest operand and twice the closed form.
	cases := []struct{ m, k, n int64 }{
		{32, 32, 32},
		{64, 16, 64},
		{128, 8, 32},
	}
	for _, cs := range cases {
		g := einsum.GEMM("g", cs.m, cs.k, cs.n)
		c := Derive(g, Options{}).Curve
		maxEff := c.MaxEffectualBufferBytes() / g.ElementSize // elements
		closed := GEMMMaxEffectualElements(cs.m, cs.k, cs.n)
		smallest := g.SmallestOperandElements()
		if maxEff < smallest || maxEff > 2*closed {
			t.Fatalf("GEMM %v: max effectual %d elements outside [%d, %d]",
				cs, maxEff, smallest, 2*closed)
		}
	}
}

func TestPeakOIMatchesCurve(t *testing.T) {
	g := einsum.GEMM("g", 64, 32, 16)
	c := Derive(g, Options{}).Curve
	peak := float64(g.MACs()) / (float64(c.MinAccessBytes()) / float64(g.ElementSize))
	closed := GEMMPeakOI(64, 32, 16)
	if math.Abs(peak-closed) > 1e-9 {
		t.Fatalf("peak OI from curve %f != closed form %f", peak, closed)
	}
}

func TestGEMMPeakOIConvergesToSmallestDim(t *testing.T) {
	// With M << K, N the peak OI approaches M.
	oi := GEMMPeakOI(16, 1<<14, 1<<14)
	if oi < 14 || oi > 16 {
		t.Fatalf("peak OI for 16 x 16k x 16k GEMM = %f, want ~16", oi)
	}
}

func TestProbeLevels(t *testing.T) {
	g := einsum.GEMM("g", 32, 32, 32)
	c := Derive(g, Options{}).Curve
	levels := ProbeLevels(c, map[string]int64{
		"L1":   256,
		"L2":   8192,
		"tiny": 1,
	})
	byName := map[string]LevelBound{}
	for _, lb := range levels {
		byName[lb.Level] = lb
	}
	if !byName["L1"].Feasible || !byName["L2"].Feasible {
		t.Fatal("expected L1/L2 probes to be feasible")
	}
	if byName["L1"].AccessBytes < byName["L2"].AccessBytes {
		t.Fatal("smaller level should have >= accesses")
	}
	if byName["tiny"].Feasible {
		t.Fatal("1-byte buffer should be infeasible")
	}
}

func TestLargerGEMMsMoveMoreData(t *testing.T) {
	// Fig. 10 headline: at the same capacity, bigger GEMMs move more data.
	small := Derive(einsum.GEMM("s", 64, 64, 64), Options{}).Curve
	large := Derive(einsum.GEMM("l", 256, 256, 256), Options{}).Curve
	buf := int64(4096)
	as, ok1 := small.AccessesAt(buf)
	al, ok2 := large.AccessesAt(buf)
	if !ok1 || !ok2 {
		t.Fatal("probe infeasible")
	}
	if al <= as {
		t.Fatalf("large GEMM accesses %d not above small %d", al, as)
	}
}

func TestBoundValidityProperty(t *testing.T) {
	// For random small GEMMs, every random mapping sits on or above the
	// derived curve.
	f := func(ms, ks, ns uint8) bool {
		m := int64(ms%16) + 1
		k := int64(ks%16) + 1
		n := int64(ns%16) + 1
		g := einsum.GEMM("g", m, k, n)
		c := Derive(g, Options{Workers: 1}).Curve
		ok := true
		mapping.Space(g, func(mp *mapping.Mapping) {
			r := snowcat.Evaluate(g, mp)
			acc, feasible := c.AccessesAt(r.BufferBytes)
			if !feasible || acc > r.AccessBytes {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
