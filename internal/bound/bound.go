// Package bound implements the Orojenesis flow of Fig. 5: traverse the
// complete Snowcat mapspace of a workload, evaluate every mapping's buffer
// size requirement and backing-store access count, and keep the Pareto
// frontier — the ski-slope curve that no mapping of the algorithm can beat.
package bound

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/snowcat"
)

// Stats reports the cost of a bound derivation, used by the Table I
// runtime comparison.
type Stats struct {
	MappingsEvaluated int64
	Elapsed           time.Duration
}

// Result bundles the derived ski-slope curve with traversal statistics.
type Result struct {
	Curve *pareto.Curve
	Stats Stats
}

// Options tunes the traversal.
type Options struct {
	// Workers sets the number of parallel evaluation goroutines.
	// Zero means GOMAXPROCS.
	Workers int

	// ImperfectExtra, when positive, widens the mapspace with imperfect
	// factorizations: that many geometrically spaced non-divisor inner
	// tile sizes are added per rank (the Ruby smoothing extension cited
	// by the paper). The resulting curve dominates the perfect-factor
	// curve and has many more breakpoints.
	ImperfectExtra int

	// ChargeSpills switches to physical partial-sum accounting: spilled
	// output partials are charged a reload in addition to the write. The
	// default (false) matches the paper's one-count-per-transfer model.
	// Not supported together with ImperfectExtra.
	ChargeSpills bool
}

// Derive runs the Orojenesis flow for a single Einsum and returns its
// ski-slope curve annotated with the workload's algorithmic minimum.
func Derive(e *einsum.Einsum, opts Options) Result {
	start := time.Now()
	if opts.ImperfectExtra > 0 {
		return deriveImperfect(e, opts, start)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Parallelize over the split choices of the first rank: each worker
	// enumerates a sub-Einsum space with that rank's split pinned.
	firstSplits := shape.Splits(e.Ranks[0].Shape)
	if workers > len(firstSplits) {
		workers = len(firstSplits)
	}

	type partial struct {
		curve *pareto.Curve
		count int64
	}
	jobs := make(chan shape.Split, len(firstSplits))
	results := make(chan partial, workers)
	for _, s := range firstSplits {
		jobs <- s
	}
	close(jobs)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := pareto.NewBuilder()
			ev := snowcat.NewEvaluator(e)
			eval := ev.EvaluateCompact
			if opts.ChargeSpills {
				eval = ev.EvaluateCompactSpillCharged
			}
			var count int64
			for s := range jobs {
				mapping.SpacePinned(e, s, func(m *mapping.Mapping) {
					buf, acc := eval(m)
					b.Add(buf, acc)
					count++
				})
			}
			results <- partial{curve: b.Curve(), count: count}
		}()
	}
	wg.Wait()
	close(results)

	merged := pareto.NewBuilder()
	var total int64
	for p := range results {
		merged.AddCurve(p.curve)
		total += p.count
	}
	curve := merged.Curve()
	curve.AlgoMinBytes = e.AlgorithmicMinBytes()
	curve.TotalOperandBytes = e.TotalOperandBytes()
	return Result{
		Curve: curve,
		Stats: Stats{MappingsEvaluated: total, Elapsed: time.Since(start)},
	}
}

// deriveImperfect runs the widened imperfect-factor traversal. The
// perfect-factor space is a subset of the imperfect one, so the result
// dominates the perfect-factor curve pointwise.
func deriveImperfect(e *einsum.Einsum, opts Options, start time.Time) Result {
	b := pareto.NewBuilder()
	ev := snowcat.NewEvaluator(e)
	var count int64
	mapping.SpaceImperfect(e, opts.ImperfectExtra, func(m *mapping.Mapping) {
		buf, acc := ev.EvaluateImperfectCompact(m)
		b.Add(buf, acc)
		count++
	})
	curve := b.Curve()
	curve.AlgoMinBytes = e.AlgorithmicMinBytes()
	curve.TotalOperandBytes = e.TotalOperandBytes()
	return Result{
		Curve: curve,
		Stats: Stats{MappingsEvaluated: count, Elapsed: time.Since(start)},
	}
}

// LevelBound is one probe of the ski-slope curve for a level of a memory
// hierarchy (Fig. 7): with CapacityBytes of aggregate storage at a level,
// traffic to the next-outer level is bounded below by AccessBytes.
type LevelBound struct {
	Level         string
	CapacityBytes int64
	AccessBytes   int64
	Feasible      bool
}

// ProbeLevels reads the curve at each level's capacity, yielding the
// multi-level data movement bounds of Fig. 7. Per Sec. III-B the composed
// multi-level bound is valid but not guaranteed tight.
func ProbeLevels(c *pareto.Curve, levels map[string]int64) []LevelBound {
	out := make([]LevelBound, 0, len(levels))
	for name, capacity := range levels {
		acc, ok := c.AccessesAt(capacity)
		out = append(out, LevelBound{
			Level:         name,
			CapacityBytes: capacity,
			AccessBytes:   acc,
			Feasible:      ok,
		})
	}
	return out
}

// GEMMMaxEffectualElements is the closed-form maximal effectual buffer size
// for a GEMM from Sec. IV-1: the size of its smallest operand plus the size
// of its smallest rank plus one, in elements.
func GEMMMaxEffectualElements(m, k, n int64) int64 {
	smallestOperand := shape.Min(m*k, shape.Min(k*n, m*n))
	smallestRank := shape.Min(m, shape.Min(k, n))
	return smallestOperand + smallestRank + 1
}

// GEMMPeakOI is the perfect-reuse peak operational intensity of a GEMM in
// MACs per element: MKN / (MK + KN + MN). Sec. IV-1 shows it converges to
// the smallest dimension for oblong shapes.
func GEMMPeakOI(m, k, n int64) float64 {
	return float64(m*k*n) / float64(m*k+k*n+m*n)
}
