// Package bound implements the Orojenesis flow of Fig. 5: traverse the
// complete Snowcat mapspace of a workload, evaluate every mapping's buffer
// size requirement and backing-store access count, and keep the Pareto
// frontier — the ski-slope curve that no mapping of the algorithm can beat.
package bound

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/einsum"
	"repro/internal/mapping"
	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/snowcat"
	"repro/internal/traverse"
)

// Stats reports the cost of a bound derivation, used by the Table I
// runtime comparison and the cmd tools' -stats output.
type Stats struct {
	MappingsEvaluated int64
	Elapsed           time.Duration

	// Workers is the number of evaluation goroutines the traversal
	// actually launched (never more than the number of work items).
	Workers int
}

// MappingsPerSec returns the traversal throughput.
func (s Stats) MappingsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.MappingsEvaluated) / s.Elapsed.Seconds()
}

// Result bundles the derived ski-slope curve with traversal statistics.
type Result struct {
	Curve *pareto.Curve
	Stats Stats
}

// Options tunes the traversal.
type Options struct {
	// Workers sets the number of parallel evaluation goroutines.
	// Zero means GOMAXPROCS; negative values are rejected by Validate.
	Workers int

	// ImperfectExtra, when positive, widens the mapspace with imperfect
	// factorizations: that many geometrically spaced non-divisor inner
	// tile sizes are added per rank (the Ruby smoothing extension cited
	// by the paper). The resulting curve dominates the perfect-factor
	// curve and has many more breakpoints.
	ImperfectExtra int

	// ChargeSpills switches to physical partial-sum accounting: spilled
	// output partials are charged a reload in addition to the write. The
	// default (false) matches the paper's one-count-per-transfer model.
	// Not supported together with ImperfectExtra.
	ChargeSpills bool
}

// Validate reports option conflicts: negative Workers or ImperfectExtra,
// and the unsupported ChargeSpills + ImperfectExtra combination (the
// imperfect evaluator's rational tile extents have no exact spill
// accounting, so silently ignoring one of the two would mislead).
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("bound: Options.Workers = %d, want >= 0 (0 means GOMAXPROCS)", o.Workers)
	}
	if o.ImperfectExtra < 0 {
		return fmt.Errorf("bound: Options.ImperfectExtra = %d, want >= 0", o.ImperfectExtra)
	}
	if o.ChargeSpills && o.ImperfectExtra > 0 {
		return fmt.Errorf("bound: Options.ChargeSpills is not supported together with ImperfectExtra")
	}
	return nil
}

// Canonical renders the result-affecting options as a stable string — the
// input to the shard manifest's options digest. Workers is deliberately
// excluded: the curve is byte-identical for every worker count, so shards
// run with different parallelism must still merge.
func (o Options) Canonical() string {
	return fmt.Sprintf("bound{imperfect_extra=%d charge_spills=%t}", o.ImperfectExtra, o.ChargeSpills)
}

// newEnum builds the mapspace enumeration selected by opts.
func newEnum(e *einsum.Einsum, opts Options) *mapping.Enum {
	if opts.ImperfectExtra > 0 {
		return mapping.NewImperfectEnum(e, opts.ImperfectExtra)
	}
	return mapping.NewEnum(e)
}

// Space returns the size of the flat tiling index space Derive traverses
// for e under opts — the [0, Space) range that DeriveRange slices and a
// cross-process shard plan (internal/shard) divides. Like Derive it panics
// on invalid Options.
func Space(e *einsum.Einsum, opts Options) int64 {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	return newEnum(e, opts).Tilings()
}

// Derive runs the Orojenesis flow for a single Einsum and returns its
// ski-slope curve annotated with the workload's algorithmic minimum.
//
// The traversal is distributed over Options.Workers goroutines by chunking
// the flat tiling index space (see internal/traverse), so utilization
// scales with cores regardless of the factor structure of any rank, and
// the curve is byte-identical for every worker count. Derive panics on
// invalid Options; callers with an error path should check
// Options.Validate first.
func Derive(e *einsum.Einsum, opts Options) Result {
	r, err := DeriveRange(context.Background(), e, opts, 0, Space(e, opts))
	if err != nil {
		// DeriveRange fails only on context cancellation (impossible under
		// the background context) or a recovered evaluator panic
		// (traverse.PanicError); re-panicking the latter preserves Derive's
		// historical crash-on-bug behavior for direct callers, while error-
		// path callers (the serve package) use DeriveRange and contain it.
		panic(err.Error())
	}
	return r
}

// DeriveRange derives the partial ski-slope frontier over the global
// tiling indices [lo, hi) of e's mapspace under opts — one shard's (or one
// checkpoint block's) share of the full traversal. Deriving a disjoint
// cover of [0, Space(e, opts)) and merging the partial curves with
// pareto.Union reproduces Derive's curve byte-for-byte; the annotations
// are already set on every partial, since they depend only on the
// workload. Panics on invalid Options or an out-of-bounds range.
//
// Cancelling ctx aborts the traversal within about one worker chunk and
// returns the context's error with no curve — the cancellation path a
// supervised shard run (internal/supervise) relies on to stop inside a
// checkpoint block rather than after it.
func DeriveRange(ctx context.Context, e *einsum.Einsum, opts Options, lo, hi int64) (Result, error) {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	start := time.Now()

	imperfect := opts.ImperfectExtra > 0
	en := newEnum(e, opts)
	if lo < 0 || hi < lo || hi > en.Tilings() {
		panic(fmt.Sprintf("bound: DeriveRange [%d, %d) outside [0, %d)", lo, hi, en.Tilings()))
	}

	curve, ts, err := traverse.FrontierRange(ctx, lo, hi, opts.Workers, func() traverse.ChunkFunc {
		ev := snowcat.NewEvaluator(e)
		eval := ev.EvaluateCompact
		switch {
		case imperfect:
			eval = ev.EvaluateImperfectCompact
		case opts.ChargeSpills:
			eval = ev.EvaluateCompactSpillCharged
		}
		return func(lo, hi int64, b *pareto.Builder) int64 {
			var count int64
			en.Visit(lo, hi, func(m *mapping.Mapping) {
				buf, acc := eval(m)
				b.Add(buf, acc)
				count++
			})
			return count
		}
	})
	if err != nil {
		return Result{}, err
	}

	curve.AlgoMinBytes = e.AlgorithmicMinBytes()
	curve.TotalOperandBytes = e.TotalOperandBytes()
	return Result{
		Curve: curve,
		Stats: Stats{
			MappingsEvaluated: ts.Evaluated,
			Elapsed:           time.Since(start),
			Workers:           ts.Workers,
		},
	}, nil
}

// LevelBound is one probe of the ski-slope curve for a level of a memory
// hierarchy (Fig. 7): with CapacityBytes of aggregate storage at a level,
// traffic to the next-outer level is bounded below by AccessBytes.
type LevelBound struct {
	Level         string
	CapacityBytes int64
	AccessBytes   int64
	Feasible      bool
}

// ProbeLevels reads the curve at each level's capacity, yielding the
// multi-level data movement bounds of Fig. 7. Per Sec. III-B the composed
// multi-level bound is valid but not guaranteed tight. Results are sorted
// by ascending capacity, then by level name, so repeated runs print
// identically regardless of map iteration order.
func ProbeLevels(c *pareto.Curve, levels map[string]int64) []LevelBound {
	out := make([]LevelBound, 0, len(levels))
	for name, capacity := range levels {
		acc, ok := c.AccessesAt(capacity)
		out = append(out, LevelBound{
			Level:         name,
			CapacityBytes: capacity,
			AccessBytes:   acc,
			Feasible:      ok,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CapacityBytes != out[j].CapacityBytes {
			return out[i].CapacityBytes < out[j].CapacityBytes
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// GEMMMaxEffectualElements is the closed-form maximal effectual buffer size
// for a GEMM from Sec. IV-1: the size of its smallest operand plus the size
// of its smallest rank plus one, in elements.
func GEMMMaxEffectualElements(m, k, n int64) int64 {
	smallestOperand := shape.Min(m*k, shape.Min(k*n, m*n))
	smallestRank := shape.Min(m, shape.Min(k, n))
	return smallestOperand + smallestRank + 1
}

// GEMMPeakOI is the perfect-reuse peak operational intensity of a GEMM in
// MACs per element: MKN / (MK + KN + MN). Sec. IV-1 shows it converges to
// the smallest dimension for oblong shapes.
func GEMMPeakOI(m, k, n int64) float64 {
	return float64(m*k*n) / float64(m*k+k*n+m*n)
}
