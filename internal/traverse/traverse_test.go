package traverse

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pareto"
)

// synthetic maps an index to a (buffer, accesses) pair with many distinct
// Pareto-optimal points, so merge mistakes show up as curve differences.
func synthetic(i int64) (int64, int64) {
	buf := (i*2654435761)%100000 + 1
	return buf, 200000 - buf
}

func syntheticWorker() ChunkFunc {
	return func(lo, hi int64, b *pareto.Builder) int64 {
		for i := lo; i < hi; i++ {
			buf, acc := synthetic(i)
			b.Add(buf, acc)
		}
		return hi - lo
	}
}

// must* adapt the context-taking engine entry points for the many tests
// that never cancel: Background context, fatal on the impossible error.
func mustFrontier(t *testing.T, items int64, workers int, nw func() ChunkFunc) (*pareto.Curve, Stats) {
	t.Helper()
	c, st, err := Frontier(context.Background(), items, workers, nw)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func mustFrontierRange(t *testing.T, lo, hi int64, workers int, nw func() ChunkFunc) (*pareto.Curve, Stats) {
	t.Helper()
	c, st, err := FrontierRange(context.Background(), lo, hi, workers, nw)
	if err != nil {
		t.Fatal(err)
	}
	return c, st
}

func mustPartition(t *testing.T, items int64, workers int, nw func(w int) RangeFunc) Stats {
	t.Helper()
	st, err := Partition(context.Background(), items, workers, nw)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustEach(t *testing.T, items int64, workers int, fn func(i int64)) Stats {
	t.Helper()
	st, err := Each(context.Background(), items, workers, fn)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFrontierCoversEveryIndexOnce(t *testing.T) {
	const items = 10000
	var visits [items]atomic.Int32
	_, stats := mustFrontier(t, items, 8, func() ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
			return hi - lo
		}
	})
	for i := range visits {
		if n := visits[i].Load(); n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
	if stats.Items != items || stats.Evaluated != items {
		t.Fatalf("stats = %+v, want Items=Evaluated=%d", stats, items)
	}
	if stats.Workers < 2 && runtime.GOMAXPROCS(0) > 1 {
		t.Fatalf("expected parallel workers, got %d", stats.Workers)
	}
}

func TestFrontierMatchesSerialForAnyWorkerCount(t *testing.T) {
	const items = 50000
	serial, st := mustFrontier(t, items, 1, syntheticWorker)
	if st.Workers != 1 {
		t.Fatalf("serial run used %d workers", st.Workers)
	}
	for _, w := range []int{2, 3, 4, 7, 16} {
		par, pst := mustFrontier(t, items, w, syntheticWorker)
		if pst.Evaluated != items {
			t.Fatalf("workers=%d evaluated %d, want %d", w, pst.Evaluated, items)
		}
		sp, pp := serial.Points(), par.Points()
		if len(sp) != len(pp) {
			t.Fatalf("workers=%d: %d points vs serial %d", w, len(pp), len(sp))
		}
		for i := range sp {
			if sp[i] != pp[i] {
				t.Fatalf("workers=%d: point %d differs: %v vs %v", w, i, pp[i], sp[i])
			}
		}
	}
}

func TestFrontierZeroItems(t *testing.T) {
	c, stats := mustFrontier(t, 0, 4, syntheticWorker)
	if !c.Empty() {
		t.Fatal("zero items should yield an empty curve")
	}
	if stats.Items != 0 || stats.Evaluated != 0 || stats.Workers != 0 {
		t.Fatalf("stats = %+v, want zeros", stats)
	}
}

func TestFrontierClampsWorkersToItems(t *testing.T) {
	_, stats := mustFrontier(t, 3, 64, syntheticWorker)
	if stats.Workers > 3 {
		t.Fatalf("launched %d workers for 3 items", stats.Workers)
	}
}

func TestPartitionCoversEveryIndexOnce(t *testing.T) {
	const items = 20000
	var visits [items]atomic.Int32
	w := WorkerCount(items, 8)
	stats := mustPartition(t, items, w, func(int) RangeFunc {
		return func(lo, hi int64) int64 {
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
			return hi - lo
		}
	})
	for i := range visits {
		if n := visits[i].Load(); n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
	if stats.Items != items || stats.Evaluated != items || stats.Workers != w {
		t.Fatalf("stats = %+v, want Items=Evaluated=%d Workers=%d", stats, items, w)
	}
}

func TestPartitionWorkerSlotsDense(t *testing.T) {
	// Every slot index in [0, workerCount) is handed out exactly once, so
	// w-indexed accumulator slices merge without gaps or collisions.
	const items = 10000
	w := WorkerCount(items, 6)
	seen := make([]atomic.Int32, w)
	mustPartition(t, items, w, func(wi int) RangeFunc {
		if wi < 0 || wi >= w {
			t.Errorf("slot %d out of range [0,%d)", wi, w)
		} else {
			seen[wi].Add(1)
		}
		return func(lo, hi int64) int64 { return hi - lo }
	})
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("slot %d assigned %d times", i, n)
		}
	}
}

func TestPartitionEvaluatedSumsRangeFuncReturns(t *testing.T) {
	// Evaluated reflects what the range funcs report (e.g. pruned
	// enumerations evaluate fewer points than indices).
	const items = 1000
	stats := mustPartition(t, items, WorkerCount(items, 4), func(int) RangeFunc {
		return func(lo, hi int64) int64 {
			var n int64
			for i := lo; i < hi; i++ {
				if i%2 == 0 {
					n++
				}
			}
			return n
		}
	})
	if stats.Evaluated != items/2 {
		t.Fatalf("Evaluated = %d, want %d", stats.Evaluated, items/2)
	}
	if stats.Items != items {
		t.Fatalf("Items = %d, want %d", stats.Items, items)
	}
}

func TestPartitionSerialAscendingOrder(t *testing.T) {
	var got []int64
	mustPartition(t, 7, 1, func(int) RangeFunc {
		return func(lo, hi int64) int64 {
			for i := lo; i < hi; i++ {
				got = append(got, i)
			}
			return hi - lo
		}
	})
	for i, v := range got {
		if int64(i) != v {
			t.Fatalf("serial Partition out of order: %v", got)
		}
	}
	if len(got) != 7 {
		t.Fatalf("visited %d indices, want 7", len(got))
	}
}

func TestWorkerCount(t *testing.T) {
	if w := WorkerCount(100, 4); w != 4 {
		t.Fatalf("WorkerCount(100,4) = %d", w)
	}
	if w := WorkerCount(3, 64); w != 3 {
		t.Fatalf("WorkerCount(3,64) = %d, want clamp to items", w)
	}
	if w := WorkerCount(100, 0); w != runtime.GOMAXPROCS(0) && w != 100 {
		t.Fatalf("WorkerCount(100,0) = %d", w)
	}
	if w := WorkerCount(0, 4); w != 1 {
		t.Fatalf("WorkerCount(0,4) = %d, want 1", w)
	}
}

func TestEachCoversEveryIndexOnce(t *testing.T) {
	const items = 4096
	var visits [items]atomic.Int32
	stats := mustEach(t, items, 8, func(i int64) { visits[i].Add(1) })
	for i := range visits {
		if n := visits[i].Load(); n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
	if stats.Items != items {
		t.Fatalf("stats.Items = %d", stats.Items)
	}
}

func TestEachSerialOrder(t *testing.T) {
	var got []int64
	mustEach(t, 5, 1, func(i int64) { got = append(got, i) })
	for i, v := range got {
		if int64(i) != v {
			t.Fatalf("serial Each out of order: %v", got)
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if ResolveWorkers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("0 should resolve to GOMAXPROCS")
	}
	if ResolveWorkers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("negative should resolve to GOMAXPROCS")
	}
	if ResolveWorkers(3) != 3 {
		t.Fatal("positive should pass through")
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[int, int]
	var computes atomic.Int32
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := m.Do(7, func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for one key", n)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("stale result %d", v)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMemoMemoizesErrors(t *testing.T) {
	var m Memo[string, int]
	var computes atomic.Int32
	boom := errors.New("boom")
	fail := func() (int, error) {
		computes.Add(1)
		return 0, boom
	}
	if _, err := m.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("first Do: err = %v", err)
	}
	if _, err := m.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("second Do: err = %v", err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("failed compute retried: ran %d times", n)
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, int]
	for i := 0; i < 10; i++ {
		v, err := m.Do(i, func() (int, error) { return i * i, nil })
		if err != nil || v != i*i {
			t.Fatalf("Do(%d) = (%d, %v)", i, v, err)
		}
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestFrontierRangeWindow(t *testing.T) {
	// f(i) contributes point (i+1, 1000-i): every index lands on the
	// frontier, so the window's points are exactly its indices.
	mk := func() ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			for i := lo; i < hi; i++ {
				b.Add(i+1, 1000-i)
			}
			return hi - lo
		}
	}
	curve, stats := mustFrontierRange(t, 30, 60, 3, mk)
	if curve.Len() != 30 {
		t.Fatalf("window curve has %d points, want 30", curve.Len())
	}
	pts := curve.Points()
	if pts[0].BufferBytes != 31 || pts[len(pts)-1].BufferBytes != 60 {
		t.Fatalf("window covered buffers %d..%d, want 31..60", pts[0].BufferBytes, pts[len(pts)-1].BufferBytes)
	}
	if stats.Items != 30 || stats.Evaluated != 30 {
		t.Fatalf("stats %+v, want 30 items/evaluated", stats)
	}

	// A disjoint cover of [0, 100) unions to the full-range frontier.
	full, _ := mustFrontier(t, 100, 2, mk)
	var parts []*pareto.Curve
	for _, cut := range [][2]int64{{0, 7}, {7, 60}, {60, 60}, {60, 100}} {
		c, _ := mustFrontierRange(t, cut[0], cut[1], 2, mk)
		parts = append(parts, c)
	}
	union := pareto.Union(parts...)
	if got, want := fmt.Sprint(union.Points()), fmt.Sprint(full.Points()); got != want {
		t.Fatalf("union of range frontiers differs from full frontier\n got %s\nwant %s", got, want)
	}
}
