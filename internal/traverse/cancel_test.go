package traverse

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/pareto"
)

// TestCancelReturnsWithinOneChunk pins the cancellation-latency contract:
// after ctx is cancelled, no worker grabs another chunk, so the traversal
// returns within at most one in-flight chunk per worker. The chunk
// function cancels on its first invocation, which bounds the total chunks
// started at the worker count.
func TestCancelReturnsWithinOneChunk(t *testing.T) {
	const items = 100000
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	c, stats, err := Frontier(ctx, items, workers, func() ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			started.Add(1)
			cancel()
			return hi - lo
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c != nil {
		t.Fatal("cancelled traversal returned a partial curve")
	}
	if n := started.Load(); n > workers {
		t.Fatalf("%d chunks started after first cancellation; want at most one in-flight chunk per worker (%d)", n, workers)
	}
	if stats.Items >= items {
		t.Fatalf("stats claim %d of %d indices despite cancellation", stats.Items, items)
	}
}

// TestCancelSerialBetweenChunks: the single-worker fast path is also
// chunked, so a cancel mid-traversal stops before the next chunk instead
// of running the whole range.
func TestCancelSerialBetweenChunks(t *testing.T) {
	const items = 100000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	_, stats, err := Frontier(ctx, items, 1, func() ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			if calls.Add(1) == 1 {
				cancel()
			}
			return hi - lo
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("serial path ran %d chunks after cancellation, want 1", n)
	}
	if stats.Evaluated >= items {
		t.Fatalf("evaluated %d of %d despite cancellation", stats.Evaluated, items)
	}
}

// TestCancelAfterCompletionIsSuccess: a cancellation that lands when every
// index is already processed must not discard the finished traversal.
func TestCancelAfterCompletionIsSuccess(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, stats, err := Frontier(ctx, 1000, 4, func() ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			for i := lo; i < hi; i++ {
				b.Add(i+1, 2000-i)
			}
			if hi == 1000 {
				// Cancel while the final chunk is still in flight.
				cancel()
			}
			return hi - lo
		}
	})
	if err != nil {
		t.Fatalf("complete traversal reported %v after late cancel", err)
	}
	if c == nil || stats.Items != 1000 {
		t.Fatalf("late-cancelled traversal lost results: curve=%v stats=%+v", c, stats)
	}
}

// TestCancelPartitionAndEach: the other two entry points observe
// cancellation the same way.
func TestCancelPartitionAndEach(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any work
	if _, err := Partition(ctx, 1000, 4, func(int) RangeFunc {
		return func(lo, hi int64) int64 {
			t.Error("worker ran a chunk under a pre-cancelled context")
			return hi - lo
		}
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Partition err = %v, want context.Canceled", err)
	}
	if _, err := Each(ctx, 1000, 4, func(int64) {
		t.Error("Each visited an index under a pre-cancelled context")
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Each err = %v, want context.Canceled", err)
	}
}
