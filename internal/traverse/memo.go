package traverse

import (
	"context"
	"errors"
	"sync"
)

// Memo is a concurrency-safe memoization table: for each key the compute
// function runs exactly once, even when many workers ask for the same key
// simultaneously; later callers block until the first computation
// finishes and then share its result (and its error). It replaces the
// plain maps that made serial caches unshareable across workers.
//
// Errors are memoized — a failed computation is not retried — with one
// deliberate exception: context cancellation. A compute that returns
// context.Canceled or context.DeadlineExceeded reports the caller's
// intent (a request hung up, a deadline fired), not a property of the
// key, so the entry is re-armed and the next Do call computes afresh.
// Without this, one cancelled request would poison the memo for every
// later caller sharing it — fatal for caches that live across requests
// or across the checkpoint blocks of a resumable shard run.
//
// The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{} // closed once val/err are final
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with compute on
// first use. Concurrent callers of the same key share one computation:
// whoever arrives first computes, the rest block until it finishes.
// Callers waiting on a computation that ends in cancellation all receive
// the cancellation error (their shared computation really did not run to
// completion), but the entry itself is forgotten, so any later Do call
// retries instead of replaying the stale error.
func (m *Memo[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	if e, ok := m.m[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.m[key] = e
	m.mu.Unlock()

	e.val, e.err = compute()
	if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
		// Re-arm: drop the entry (if it is still ours — a concurrent
		// retry may already have replaced it) before releasing waiters,
		// so no Do call after this point can latch onto the dead entry.
		m.mu.Lock()
		if m.m[key] == e {
			delete(m.m, key)
		}
		m.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Len returns the number of memoized keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
