package traverse

import "sync"

// Memo is a concurrency-safe memoization table: for each key the compute
// function runs exactly once, even when many workers ask for the same key
// simultaneously; later callers block until the first computation
// finishes and then share its result (and its error). It replaces the
// plain maps that made serial caches unshareable across workers.
//
// The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with compute on
// first use. Errors are memoized too: a failed computation is not retried.
func (m *Memo[K, V]) Do(key K, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry[V]{}
		m.m[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Len returns the number of memoized keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
