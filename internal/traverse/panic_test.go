package traverse

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/pareto"
)

// TestPanicInChunkFailsTraversalCleanly pins the containment contract the
// derivation server's 500 path builds on: a panicking ChunkFunc fails the
// traversal with a *PanicError (value + stack) instead of crashing the
// process, for both the parallel pool and the serial fast path.
func TestPanicInChunkFailsTraversalCleanly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, _, err := Frontier(context.Background(), 10000, workers, func() ChunkFunc {
			return func(lo, hi int64, b *pareto.Builder) int64 {
				panic("evaluator bug")
			}
		})
		if c != nil {
			t.Fatalf("workers=%d: panicked traversal returned a curve", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "evaluator bug" {
			t.Fatalf("workers=%d: panic value %v, want the original", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panic_test") {
			t.Fatalf("workers=%d: PanicError stack does not point at the panic site", workers)
		}
		if !strings.Contains(pe.Error(), "evaluator bug") {
			t.Fatalf("workers=%d: Error() %q omits the panic value", workers, pe.Error())
		}
	}
}

// TestPanicStopsPeerWorkers: after one worker panics, the remaining
// workers stop before their next chunk grab — the panic behaves like a
// cancellation for everyone else, so a poisoned traversal does not keep
// burning CPU on work whose result will be discarded.
func TestPanicStopsPeerWorkers(t *testing.T) {
	const items = 1 << 20
	const workers = 4
	var chunks atomic.Int64
	_, stats, err := Frontier(context.Background(), items, workers, func() ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			if chunks.Add(1) == 1 {
				panic("first chunk dies")
			}
			return hi - lo
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	// The panicking chunk plus at most one in-flight chunk per other
	// worker may run; anything beyond that means peers kept grabbing.
	if n := chunks.Load(); n > workers {
		t.Fatalf("%d chunks ran after the first panic; want at most %d", n, workers)
	}
	if stats.Items >= items {
		t.Fatal("stats claim a complete traversal despite the panic")
	}
}

// TestPanicInPartitionWorkerState: Partition reports the panic to its
// caller with per-worker accumulators discarded by contract — the error
// must surface even when other workers completed their shares.
func TestPanicInPartitionWorkerState(t *testing.T) {
	w := WorkerCount(1000, 4)
	_, err := Partition(context.Background(), 1000, w, func(wi int) RangeFunc {
		return func(lo, hi int64) int64 {
			panic(errors.New("typed panic value"))
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if _, ok := pe.Value.(error); !ok {
		t.Fatalf("panic value %v lost its type", pe.Value)
	}
}
