// Package traverse is the shared parallel-traversal substrate of the
// Orojenesis flow. Every exhaustive derivation in this repo — the perfect-
// and imperfect-factor Snowcat searches, the fused-template sweep, and the
// 2^(E-1) segmentation study — reduces to the same shape of work: an
// index-addressable enumeration whose per-index results feed a Pareto
// frontier (or an output slot keyed by index). This package distributes
// such enumerations across workers in dynamically grabbed contiguous
// chunks (Partition), with per-worker accumulators merged after the
// traversal; Frontier specializes the engine to Pareto-frontier reductions
// (a private pareto.Builder per worker, pareto.Union as the merge), and
// Each to index-keyed output slots.
//
// Chunked index distribution — rather than sharding by the factor
// structure of one rank — means utilization scales with GOMAXPROCS
// regardless of the divisor counts of any particular dimension, and the
// dynamic grab balances chunks whose per-index cost is irregular.
//
// Because the Pareto frontier is insensitive to insertion order (merging
// never resurrects a dominated point and never drops a non-dominated one),
// the merged curve is byte-identical to a serial traversal's for any
// worker count.
//
// Paper mapping: this engine is the mechanical substrate of the Sec.
// III-B exhaustive traversal, whose low single-run cost (Table I) is the
// paper's case for bound derivation over mapping-aware DSE. FrontierRange
// restricts a traversal to an index sub-range, which is what
// internal/shard builds cross-process sharding on.
//
// Every entry point takes a context.Context and observes cancellation at
// chunk granularity: a worker checks the context before grabbing each
// chunk, so cancelling returns within roughly one worker chunk (about
// 1/(workers*chunksPerWorker) of the traversal) rather than only at the
// end. A cancelled traversal returns the context's error and no curve —
// the evaluated subset of indices is not otherwise recoverable, so a
// partial frontier would silently under-approximate.
//
// Panics in chunk functions are contained: each worker recovers, stops its
// peers, and the traversal returns a *PanicError instead of crashing the
// process — the foundation of the derivation server's per-request panic
// isolation (internal/serve).
package traverse

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pareto"
)

// PanicError is a panic recovered inside a traversal worker, converted to
// an ordinary error so one panicking chunk function fails its traversal
// cleanly instead of crashing the whole process — the containment a
// long-lived derivation server (internal/serve) needs to turn an evaluator
// bug into a per-request failure. Value is the recovered panic value and
// Stack the worker goroutine's stack at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is kept separate so callers log
// it rather than ship it to users.
func (e *PanicError) Error() string {
	return fmt.Sprintf("traverse: worker panic: %v", e.Value)
}

// Recovered builds a PanicError from a recovered panic value, capturing
// the current goroutine's stack. Exposed so other layers that run
// derivation work on their own goroutines (the serve package's flight
// runner) convert recovered panics to the same error class the traversal
// engine reports.
func Recovered(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// runChunk invokes one chunk function with panic containment: a panic in
// fn becomes a *PanicError return instead of unwinding the worker
// goroutine (which would crash the process, since goroutine panics cannot
// be recovered by anyone else).
func runChunk(fn RangeFunc, lo, hi int64) (n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Recovered(r)
		}
	}()
	return fn(lo, hi), nil
}

// chunksPerWorker sets the granularity of the dynamic distribution: the
// index space is cut into about this many chunks per worker, so stragglers
// (chunks whose indices happen to be expensive) cost at most ~1/chunksPer-
// Worker of a worker's share of imbalance.
const chunksPerWorker = 16

// Stats reports what a traversal actually did, feeding the Table I runtime
// comparison and the cmd tools' -stats output.
type Stats struct {
	Workers   int   // workers actually launched
	Items     int64 // enumeration indices processed
	Evaluated int64 // points evaluated, as reported by chunk funcs
	Elapsed   time.Duration
}

// PerSec returns the evaluation throughput in points per second.
func (s Stats) PerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Evaluated) / s.Elapsed.Seconds()
}

// Phase is one timed stage of a multi-phase study (e.g. per-op curves,
// template sweep, segmentation), surfaced by the cmd tools behind -stats.
type Phase struct {
	Name      string
	Evaluated int64
	Workers   int
	Elapsed   time.Duration
}

// PerSec returns the phase's evaluation throughput in points per second.
func (p Phase) PerSec() float64 {
	return Stats{Evaluated: p.Evaluated, Elapsed: p.Elapsed}.PerSec()
}

// ResolveWorkers maps a Workers option to a concrete count: values <= 0
// mean GOMAXPROCS.
func ResolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// RangeFunc processes the enumeration indices [lo, hi) and returns the
// number of points it evaluated (which can differ from hi-lo when indices
// expand into several mappings, or are skipped by pruning).
type RangeFunc func(lo, hi int64) int64

// WorkerCount resolves a Workers option against an index-space size: the
// number of workers Partition will actually launch — ResolveWorkers
// clamped to the number of items, never below 1. Callers size per-worker
// accumulator slices with it before handing them to Partition's newWorker.
func WorkerCount(items int64, workers int) int {
	return clampWorkers(workers, items)
}

// Partition is the traversal engine every exhaustive enumeration in this
// repo runs on: it distributes the index range [0, items) across exactly
// workerCount workers (use WorkerCount to compute it) in dynamically
// grabbed contiguous chunks. newWorker is called once per worker with a
// dense slot index w in [0, workerCount), so per-worker state — an
// evaluator, a Pareto builder, a best-so-far accumulator — lives in the
// closure or in a w-indexed slice without synchronization, and the caller
// merges the slots deterministically after Partition returns. A worker's
// chunks arrive in ascending index order, so within one worker the visit
// sequence is a subsequence of the serial enumeration.
//
// Cancelling ctx stops every worker before its next chunk grab; Partition
// then returns the context's error with Stats covering the work actually
// done. Per-worker accumulators are in an undefined partial state after a
// cancelled traversal and must be discarded.
//
// A panic in a chunk function is recovered inside its worker, the other
// workers are stopped before their next chunk grab, and Partition returns
// a *PanicError carrying the panic value and stack — a buggy evaluator
// fails one traversal, never the process. Accumulators must be discarded
// exactly as after a cancellation.
func Partition(ctx context.Context, items int64, workerCount int, newWorker func(w int) RangeFunc) (Stats, error) {
	start := time.Now()
	if items <= 0 {
		return Stats{Elapsed: time.Since(start)}, ctx.Err()
	}
	w := workerCount
	if w < 1 {
		w = 1
	}
	if int64(w) > items {
		w = int(items)
	}
	chunk := chunkSize(items, w)
	if w == 1 {
		// Serial fast path: no goroutine, exact enumeration order — but
		// still chunked, so cancellation is observed between chunks
		// instead of only after the whole range.
		fn := newWorker(0)
		var n int64
		for lo := int64(0); lo < items; lo += chunk {
			if err := ctx.Err(); err != nil {
				return Stats{Workers: 1, Items: lo, Evaluated: n, Elapsed: time.Since(start)}, err
			}
			hi := lo + chunk
			if hi > items {
				hi = items
			}
			cn, cerr := runChunk(fn, lo, hi)
			if cerr != nil {
				return Stats{Workers: 1, Items: lo, Evaluated: n, Elapsed: time.Since(start)}, cerr
			}
			n += cn
		}
		return Stats{Workers: 1, Items: items, Evaluated: n, Elapsed: time.Since(start)}, nil
	}

	// pctx lets a panicking worker stop its peers before their next chunk
	// grab, exactly like an external cancellation.
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()

	var next atomic.Int64
	counts := make([]int64, w)
	grabbed := make([]int64, w)
	panics := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn := newWorker(i)
			var n, items2 int64
			for pctx.Err() == nil {
				lo := next.Add(chunk) - chunk
				if lo >= items {
					break
				}
				hi := lo + chunk
				if hi > items {
					hi = items
				}
				cn, cerr := runChunk(fn, lo, hi)
				if cerr != nil {
					panics[i] = cerr
					pcancel()
					break
				}
				n += cn
				items2 += hi - lo
			}
			counts[i] = n
			grabbed[i] = items2
		}(i)
	}
	wg.Wait()

	var total, visited int64
	for i := range counts {
		total += counts[i]
		visited += grabbed[i]
	}
	stats := Stats{Workers: w, Items: visited, Evaluated: total, Elapsed: time.Since(start)}
	for _, perr := range panics {
		if perr != nil {
			// A worker panic outranks the cancellation it triggered: the
			// caller needs the root cause, not the induced ctx error.
			return stats, perr
		}
	}
	if visited == items {
		// Every index was processed before the workers saw the
		// cancellation: the traversal is complete, so report success —
		// discarding finished work over a late cancel would be waste.
		return stats, nil
	}
	return stats, ctx.Err()
}

// ChunkFunc processes the enumeration indices [lo, hi), adding frontier
// candidates to b, and returns the number of points it evaluated.
type ChunkFunc func(lo, hi int64, b *pareto.Builder) int64

// Frontier distributes the index range [0, items) over workers and merges
// the per-worker Pareto frontiers — Partition instantiated with a private
// pareto.Builder per worker and pareto.Union as the merge. newWorker is
// called once per worker to build its chunk function, so per-worker state
// (an evaluator, a reusable mapping) lives in the closure without
// synchronization. The result is byte-identical for every worker count.
// A cancelled traversal returns (nil, stats, ctx.Err()).
func Frontier(ctx context.Context, items int64, workers int, newWorker func() ChunkFunc) (*pareto.Curve, Stats, error) {
	return FrontierRange(ctx, 0, items, workers, newWorker)
}

// FrontierRange is Frontier restricted to the global index window
// [lo, hi): chunk functions receive global indices from that window only,
// so a caller holding one slice of a larger enumeration — a shard of a
// cross-process traversal (internal/shard), or one checkpoint block of a
// resumable run — evaluates exactly its share and nothing else. Because
// the Pareto frontier of a union equals the frontier of the per-part
// frontiers' union, curves derived over a disjoint cover of [0, items)
// merge (pareto.Union) to the byte-identical full-range curve.
// A cancelled traversal returns (nil, stats, ctx.Err()) — never a curve
// over an unidentifiable subset of the window.
func FrontierRange(ctx context.Context, lo, hi int64, workers int, newWorker func() ChunkFunc) (*pareto.Curve, Stats, error) {
	items := hi - lo
	w := WorkerCount(items, workers)
	builders := make([]*pareto.Builder, w)
	stats, err := Partition(ctx, items, w, func(wi int) RangeFunc {
		fn := newWorker()
		b := pareto.NewBuilder()
		builders[wi] = b
		return func(clo, chi int64) int64 { return fn(lo+clo, lo+chi, b) }
	})
	if err != nil {
		return nil, stats, err
	}
	curves := make([]*pareto.Curve, 0, len(builders))
	for _, b := range builders {
		if b != nil {
			curves = append(curves, b.Curve())
		}
	}
	return pareto.Union(curves...), stats, nil
}

// Each runs fn(i) for every index in [0, items) across workers. fn must be
// safe for concurrent invocation on distinct indices; writing to
// index-keyed slots of a pre-sized slice keeps results deterministic.
// A cancelled traversal returns ctx.Err() with an unspecified subset of
// indices visited.
func Each(ctx context.Context, items int64, workers int, fn func(i int64)) (Stats, error) {
	return Partition(ctx, items, WorkerCount(items, workers), func(int) RangeFunc {
		return func(lo, hi int64) int64 {
			for j := lo; j < hi; j++ {
				fn(j)
			}
			return hi - lo
		}
	})
}

func clampWorkers(workers int, items int64) int {
	w := ResolveWorkers(workers)
	if int64(w) > items {
		w = int(items)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func chunkSize(items int64, workers int) int64 {
	c := items / int64(workers*chunksPerWorker)
	if c < 1 {
		c = 1
	}
	return c
}
