package traverse

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoRearmsAfterCancellation is the memo-poisoning regression test:
// a compute that ends in context cancellation must not be memoized —
// every waiter of that round shares the cancellation error, but the next
// Do call retries and succeeds. Non-cancellation errors stay memoized
// (TestMemoMemoizesErrors pins that side).
func TestMemoRearmsAfterCancellation(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		t.Run(cause.Error(), func(t *testing.T) {
			var m Memo[string, int]
			var computes atomic.Int32

			// Round 1: many goroutines pile onto one key whose compute is
			// cancelled. Whoever shares the in-flight computation gets the
			// error; goroutines arriving after the re-arm recompute (and
			// are cancelled again) — either way nothing is memoized.
			var startOnce sync.Once
			started := make(chan struct{})
			release := make(chan struct{})
			const waiters = 16
			var wg sync.WaitGroup
			errs := make([]error, waiters)
			for g := 0; g < waiters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					_, errs[g] = m.Do("k", func() (int, error) {
						computes.Add(1)
						startOnce.Do(func() { close(started) })
						<-release
						// Wrapped like a real derivation error, so the
						// re-arm must use errors.Is, not ==.
						return 0, fmt.Errorf("sub-chain sweep: %w", cause)
					})
				}(g)
			}
			<-started
			close(release)
			wg.Wait()
			for g, err := range errs {
				if !errors.Is(err, cause) {
					t.Fatalf("waiter %d: err = %v, want %v", g, err, cause)
				}
			}
			round1 := computes.Load()
			if round1 < 1 {
				t.Fatalf("round 1 computed %d times, want >= 1", round1)
			}
			if m.Len() != 0 {
				t.Fatalf("cancelled entry still memoized (Len = %d)", m.Len())
			}

			// Round 2: the key is retried — concurrently again — and now
			// succeeds exactly once for everyone.
			vals := make([]int, waiters)
			for g := 0; g < waiters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					v, err := m.Do("k", func() (int, error) {
						computes.Add(1)
						return 42, nil
					})
					if err != nil {
						t.Errorf("retry waiter %d: %v", g, err)
					}
					vals[g] = v
				}(g)
			}
			wg.Wait()
			for g, v := range vals {
				if v != 42 {
					t.Fatalf("retry waiter %d got %d, want 42", g, v)
				}
			}
			if n := computes.Load(); n != round1+1 {
				t.Fatalf("retry after cancellation computed %d times total, want %d", n, round1+1)
			}
			if m.Len() != 1 {
				t.Fatalf("successful retry not memoized (Len = %d)", m.Len())
			}
		})
	}
}
