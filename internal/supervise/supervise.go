// Package supervise runs every shard of a sharded bound derivation to
// completion under one roof — the reliability layer over the repo's
// hottest long-running path. Where internal/shard gives one shard a
// checkpointed, resumable Run, this package gives the whole plan an
// orchestrator: per-shard goroutine supervision with bounded retry,
// exponential backoff and deterministic jitter; per-attempt and whole-run
// deadlines; quarantine of corrupt or foreign checkpoint files (renamed
// to *.corrupt and re-derived from scratch); and a final merge that is
// either the exact byte-identical single-process curve or — only when
// explicitly allowed — a degraded curve annotated with its covered index
// fraction.
//
// The same spirit as the restartable search harnesses around
// Timeloop-style mappers (Parashar et al., ISPASS 2019) and GAMMA-style
// genetic search (Kao & Krishna, ICCAD 2020): the evaluator inside is
// deterministic and oblivious, the harness around it owns failure.
//
// Cancellation (SIGINT/SIGTERM via signal.NotifyContext in the CLIs)
// reaches inside a checkpoint block: shard.Run plumbs the context through
// the traversal engine, so a supervised run stops within about one
// traversal worker chunk, flushes a final checkpoint, and leaves every
// shard resumable by simply rerunning the same command.
package supervise

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/pareto"
	"repro/internal/shard"
)

// Defaults for the retry schedule; tests shorten them via Options.
const (
	DefaultMaxRetries  = 3
	DefaultBaseBackoff = 100 * time.Millisecond
	DefaultMaxBackoff  = 5 * time.Second
)

// Options tunes a supervised run.
type Options struct {
	// Dir is the directory the per-shard partial-frontier files live in
	// (checkpoint targets while running, resume sources on restart).
	// Required.
	Dir string

	// CheckpointEvery is the number of enumeration indices per
	// checkpoint flush within each shard (shard.RunOptions).
	CheckpointEvery int64

	// Parallel caps how many shards derive concurrently. <= 0 means
	// min(shard count, GOMAXPROCS) — each shard's own traversal already
	// parallelizes, so more rarely helps.
	Parallel int

	// Workers is advisory for the jobs the caller builds; the supervisor
	// itself does not use it. Retries and merges are worker-agnostic.

	// MaxRetries is the per-shard retry budget beyond the first attempt.
	// 0 means DefaultMaxRetries; negative means no retries.
	MaxRetries int

	// BaseBackoff and MaxBackoff bound the exponential backoff between a
	// shard's attempts: attempt k waits about BaseBackoff·2^k, capped at
	// MaxBackoff, with ±50% deterministic jitter. Zero values pick the
	// defaults.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// JitterSeed seeds the per-shard jitter streams, so a supervised run
	// is reproducible under test. Zero means 1.
	JitterSeed int64

	// AttemptTimeout, when positive, bounds each attempt of each shard;
	// an attempt that exceeds it is cancelled at chunk granularity and
	// retried from its last checkpoint (progress is monotonic across
	// attempts, so a too-slow shard still converges).
	AttemptTimeout time.Duration

	// RunTimeout, when positive, bounds the whole supervised run.
	RunTimeout time.Duration

	// AllowPartial permits a degraded merge when shards fail
	// permanently: the result carries the covered index fraction instead
	// of being refused. Without it, any failed shard fails the run.
	AllowPartial bool

	// FS is the filesystem seam handed to every shard.Run (nil = OS);
	// the robustness suite injects faults here.
	FS shard.FS

	// Logf, when non-nil, receives human-readable progress and failure
	// lines (retries, quarantines, interrupts).
	Logf func(format string, args ...any)

	// OnCheckpoint, when non-nil, observes every successful checkpoint
	// flush of every shard.
	OnCheckpoint func(shard.Manifest)
}

func (o *Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o *Options) maxRetries() int {
	switch {
	case o.MaxRetries == 0:
		return DefaultMaxRetries
	case o.MaxRetries < 0:
		return 0
	}
	return o.MaxRetries
}

func (o *Options) backoffBounds() (base, max time.Duration) {
	base, max = o.BaseBackoff, o.MaxBackoff
	if base <= 0 {
		base = DefaultBaseBackoff
	}
	if max <= 0 {
		max = DefaultMaxBackoff
	}
	if max < base {
		max = base
	}
	return base, max
}

// ShardState reports what the supervisor did for one shard.
type ShardState struct {
	Plan        shard.Plan
	Path        string   // partial-frontier file
	Attempts    int      // shard.Run invocations (1 = first try succeeded)
	Quarantined []string // corrupt checkpoint files renamed aside
	Completed   bool
	Evaluated   int64 // points evaluated across all attempts of this run
	Err         error // terminal error when !Completed (nil if interrupted cleanly)
}

// Report is the outcome of a supervised run: per-shard states plus
// exactly one of Curve (exact merge of a complete shard set) or Degraded
// (annotated best-effort merge under AllowPartial). Both are nil when the
// run was interrupted or failed.
type Report struct {
	Shards      []ShardState
	Curve       *pareto.Curve
	Degraded    *shard.Degraded
	Interrupted bool
}

// ShardPath names shard k (0-based) of n's partial-frontier file inside
// dir — the layout both the supervisor and a human resuming by hand use.
func ShardPath(dir string, k, n int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.json", k+1, n))
}

// Run supervises an n-shard derivation to completion. mkJob builds the
// job for one shard of the plan; all jobs must describe the same
// derivation (same workload and options digests), which the final merge
// re-verifies. Shards run concurrently up to Options.Parallel, each
// attempt resuming from the shard's last flushed checkpoint, so neither
// retries nor interrupts ever repeat completed blocks.
//
// On success the report carries the exact merged curve — byte-identical
// to a single-process derivation. If shards fail past their retry budget,
// Run fails, unless Options.AllowPartial promotes the outcome to an
// annotated degraded merge (Report.Degraded). If ctx is cancelled
// (SIGINT/SIGTERM), Run flushes final checkpoints, marks the report
// interrupted, and returns the context error: rerunning the same
// supervised command resumes every shard.
func Run(ctx context.Context, n int, mkJob func(shard.Plan) (shard.Job, error), opts Options) (*Report, error) {
	if n < 1 {
		return nil, fmt.Errorf("supervise: shard count %d, want >= 1", n)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("supervise: no shard directory")
	}
	if opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.RunTimeout)
		defer cancel()
	}

	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}

	report := &Report{Shards: make([]ShardState, n)}
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			report.Shards[k] = superviseShard(ctx, shard.Plan{Index: k, Count: n}, mkJob, &opts)
		}(k)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		report.Interrupted = true
		opts.logf("supervise: interrupted; all checkpoints flushed, rerun to resume")
		return report, err
	}

	var failed []string
	for k := range report.Shards {
		if st := &report.Shards[k]; !st.Completed {
			failed = append(failed, fmt.Sprintf("shard %s: %v", st.Plan, st.Err))
		}
	}
	if len(failed) == 0 {
		paths := make([]string, n)
		for k := range paths {
			paths[k] = report.Shards[k].Path
		}
		curve, err := shard.MergeFiles(paths...)
		if err != nil {
			return report, fmt.Errorf("supervise: final merge: %w", err)
		}
		report.Curve = curve
		return report, nil
	}
	if !opts.AllowPartial {
		return report, fmt.Errorf("supervise: %d of %d shards failed permanently (rerun to retry, or use -allow-partial for an annotated degraded merge):\n  %s",
			len(failed), n, strings.Join(failed, "\n  "))
	}

	degraded, err := mergeDegraded(report, &opts)
	if err != nil {
		return report, err
	}
	report.Degraded = degraded
	opts.logf("supervise: degraded merge covers %d of %d indices (%.2f%%); missing shards %v, incomplete %v",
		degraded.CoveredIndices, degraded.Items, 100*degraded.CoveredFraction,
		degraded.MissingShards, degraded.IncompleteShards)
	return report, nil
}

// mergeDegraded merges every readable partial the run left behind.
func mergeDegraded(report *Report, opts *Options) (*shard.Degraded, error) {
	var partials []*shard.Partial
	for k := range report.Shards {
		st := &report.Shards[k]
		p, err := shard.ReadPartial(st.Path)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				opts.logf("supervise: degraded merge skips %s: %v", st.Path, err)
			}
			continue
		}
		partials = append(partials, p)
	}
	if len(partials) == 0 {
		return nil, fmt.Errorf("supervise: degraded merge: no readable partial frontiers")
	}
	sort.Slice(partials, func(i, j int) bool {
		return partials[i].Manifest.ShardIndex < partials[j].Manifest.ShardIndex
	})
	return shard.MergeDegraded(partials...)
}

// superviseShard drives one shard through attempts, backoff, and
// quarantine until it completes, exhausts its retry budget, or the parent
// context is cancelled.
func superviseShard(ctx context.Context, plan shard.Plan, mkJob func(shard.Plan) (shard.Job, error), opts *Options) ShardState {
	st := ShardState{Plan: plan, Path: ShardPath(opts.Dir, plan.Index, plan.Count)}
	job, err := mkJob(plan)
	if err != nil {
		st.Err = fmt.Errorf("supervise: building job for shard %s: %w", plan, err)
		return st
	}
	base, maxb := opts.backoffBounds()
	seed := opts.JitterSeed
	if seed == 0 {
		seed = 1
	}
	// Per-shard deterministic jitter stream: reruns with the same seed
	// reproduce the same schedule, and shards do not thundering-herd.
	rng := rand.New(rand.NewSource(seed + int64(plan.Index)))
	retries := opts.maxRetries()

	for attempt := 0; ; attempt++ {
		actx := ctx
		var cancel context.CancelFunc = func() {}
		if opts.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, opts.AttemptTimeout)
		}
		_, rstats, err := shard.Run(actx, job, shard.RunOptions{
			Path:            st.Path,
			CheckpointEvery: opts.CheckpointEvery,
			OnCheckpoint:    opts.OnCheckpoint,
			FS:              opts.FS,
		})
		// Whether this attempt's own deadline fired must be read before
		// cancel() below, which would overwrite actx.Err with Canceled.
		attemptTimedOut := opts.AttemptTimeout > 0 && actx.Err() != nil && ctx.Err() == nil
		cancel()
		st.Attempts++
		st.Evaluated += rstats.Evaluated
		if err == nil {
			st.Completed = true
			return st
		}
		if ctx.Err() != nil {
			// Parent cancellation (signal or whole-run deadline): not a
			// shard failure — the checkpoint is flushed and resumable.
			st.Err = ctx.Err()
			return st
		}
		if !attemptTimedOut && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// A cancellation that is neither the parent's nor this
			// attempt's timeout came from inside the derivation (e.g. a
			// server request whose waiters all left). Retrying cannot
			// succeed — the cause is external intent, not a transient
			// fault — so surface it immediately instead of burning the
			// retry budget.
			st.Err = fmt.Errorf("supervise: shard %s cancelled (non-retryable): %w", plan, err)
			return st
		}
		if errors.Is(err, shard.ErrCorruptPartial) || errors.Is(err, shard.ErrForeignPartial) {
			// The checkpoint file itself is the problem: quarantine it so
			// the evidence survives, then re-derive the slice fresh.
			qpath, qerr := quarantine(opts, st.Path)
			if qerr != nil {
				st.Err = fmt.Errorf("supervise: shard %s: cannot quarantine corrupt checkpoint: %w (cause: %v)", plan, qerr, err)
				return st
			}
			st.Quarantined = append(st.Quarantined, qpath)
			opts.logf("supervise: shard %s: quarantined corrupt checkpoint to %s, re-deriving", plan, qpath)
		}
		if attempt >= retries {
			st.Err = fmt.Errorf("supervise: shard %s failed after %d attempts: %w", plan, st.Attempts, err)
			return st
		}
		delay := backoffDelay(base, maxb, attempt, rng)
		opts.logf("supervise: shard %s attempt %d failed (%v); retrying in %v", plan, st.Attempts, err, delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			st.Err = ctx.Err()
			return st
		}
	}
}

// backoffDelay computes attempt k's wait: base·2^k capped at max, with
// ±50% jitter drawn from the shard's deterministic stream.
func backoffDelay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter uniformly in [d/2, 3d/2), never below a millisecond floor
	// so tests with nanosecond bases still sleep a bounded, nonzero time.
	j := d/2 + time.Duration(rng.Int63n(int64(d)+1))
	if j < time.Millisecond {
		j = time.Millisecond
	}
	return j
}

// quarantine renames a corrupt checkpoint aside to the first free
// "<path>.corrupt[.N]" name, preserving the evidence while clearing the
// slot for re-derivation.
func quarantine(opts *Options, path string) (string, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = shard.OS()
	}
	for i := 0; ; i++ {
		qpath := path + ".corrupt"
		if i > 0 {
			qpath = fmt.Sprintf("%s.corrupt.%d", path, i)
		}
		if _, err := fsys.Stat(qpath); err == nil {
			continue // name taken by an earlier quarantine
		} else if !errors.Is(err, fs.ErrNotExist) {
			return "", err
		}
		if err := fsys.Rename(path, qpath); err != nil {
			return "", err
		}
		return qpath, nil
	}
}
