package supervise

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/pareto"
	"repro/internal/shard"
)

// fastOpts shortens the retry schedule so fault-injection tests finish in
// milliseconds instead of sleeping through real backoff.
func fastOpts(dir string) Options {
	return Options{
		Dir:             dir,
		CheckpointEvery: 7,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      2 * time.Millisecond,
		JitterSeed:      1,
	}
}

func curveBytes(t *testing.T, c *pareto.Curve) string {
	t.Helper()
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func testWorkload(t *testing.T) (*einsum.Einsum, bound.Options, string) {
	t.Helper()
	e := einsum.GEMM("gemm_32", 32, 24, 16)
	opts := bound.Options{Workers: 2}
	return e, opts, curveBytes(t, bound.Derive(e, opts).Curve)
}

func boundMkJob(e *einsum.Einsum, opts bound.Options) func(shard.Plan) (shard.Job, error) {
	return func(p shard.Plan) (shard.Job, error) { return shard.BoundJob(e, opts, p) }
}

// TestSupervisedParityWithTransientFaults is the headline acceptance test:
// for N in {2, 4, 8}, a supervised run with injected transient I/O
// failures produces the merged curve byte-identical to the single-process
// derivation, with the failures absorbed by retries.
func TestSupervisedParityWithTransientFaults(t *testing.T) {
	e, opts, want := testWorkload(t)
	errDisk := errors.New("injected transient disk fault")

	for _, n := range []int{2, 4, 8} {
		dir := t.TempDir()
		sopts := fastOpts(dir)
		// Two transient sync failures, each aborting one attempt somewhere
		// in the fleet.
		sopts.FS = &shard.FaultFS{Fail: shard.FailN(shard.OpSync, 2, errDisk)}
		report, err := Run(context.Background(), n, boundMkJob(e, opts), sopts)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if report.Curve == nil || report.Degraded != nil {
			t.Fatalf("N=%d: expected an exact merge, got %+v", n, report)
		}
		if got := curveBytes(t, report.Curve); got != want {
			t.Fatalf("N=%d: supervised curve differs from single-process derive\n got %s\nwant %s", n, got, want)
		}
		var attempts int
		for _, st := range report.Shards {
			if !st.Completed {
				t.Fatalf("N=%d: shard %s not completed: %v", n, st.Plan, st.Err)
			}
			attempts += st.Attempts
		}
		if attempts != n+2 {
			t.Fatalf("N=%d: %d attempts, want %d (one per shard plus one per injected fault)", n, attempts, n+2)
		}
	}
}

// TestSupervisedInterruptThenResume simulates a mid-run SIGTERM (parent
// context cancellation — exactly what signal.NotifyContext delivers):
// the run reports interruption with flushed checkpoints, and rerunning
// the same supervision completes to the byte-identical curve.
func TestSupervisedInterruptThenResume(t *testing.T) {
	e, opts, want := testWorkload(t)
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var flushes atomic.Int64
	sopts := fastOpts(dir)
	sopts.OnCheckpoint = func(shard.Manifest) {
		if flushes.Add(1) == 3 {
			cancel()
		}
	}
	report, err := Run(ctx, 4, boundMkJob(e, opts), sopts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !report.Interrupted {
		t.Fatal("report does not mark the run interrupted")
	}
	if report.Curve != nil || report.Degraded != nil {
		t.Fatal("interrupted run still emitted a merged curve")
	}
	// Every flushed checkpoint on disk must be readable and resumable.
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if _, rerr := shard.ReadPartial(f); rerr != nil {
			t.Fatalf("checkpoint %s unreadable after interrupt: %v", f, rerr)
		}
	}

	// "Rerun the same command": same dir, fresh context.
	report, err = Run(context.Background(), 4, boundMkJob(e, opts), fastOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := curveBytes(t, report.Curve); got != want {
		t.Fatalf("interrupt+resume curve differs from single-process derive\n got %s\nwant %s", got, want)
	}
}

// TestSupervisorQuarantinesCorruptCheckpoints drives the corruption
// matrix end to end: for every corruption class, the supervisor
// quarantines the poisoned checkpoint (renamed aside, evidence intact),
// re-derives the shard, and still produces the exact merged curve.
func TestSupervisorQuarantinesCorruptCheckpoints(t *testing.T) {
	e, opts, want := testWorkload(t)

	corruptions := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{
			name: "garbage-bytes",
			corrupt: func(t *testing.T, path string) {
				if err := os.WriteFile(path, []byte("{\"manifest\": tor"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "foreign-derivation",
			corrupt: func(t *testing.T, path string) {
				// A structurally valid partial of different options.
				job, err := shard.BoundJob(e, bound.Options{ImperfectExtra: 2}, shard.Plan{Index: 1, Count: 3})
				if err != nil {
					t.Fatal(err)
				}
				if _, _, err := shard.Run(context.Background(), job, shard.RunOptions{Path: path}); err != nil {
					t.Fatal(err)
				}
			},
		},
	}

	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			poisoned := ShardPath(dir, 1, 3)
			tc.corrupt(t, poisoned)

			report, err := Run(context.Background(), 3, boundMkJob(e, opts), fastOpts(dir))
			if err != nil {
				t.Fatal(err)
			}
			st := report.Shards[1]
			if len(st.Quarantined) != 1 {
				t.Fatalf("shard 2/3 quarantined %v, want exactly one file", st.Quarantined)
			}
			if !strings.Contains(st.Quarantined[0], ".corrupt") {
				t.Fatalf("quarantine name %q lacks the .corrupt suffix", st.Quarantined[0])
			}
			if _, serr := os.Stat(st.Quarantined[0]); serr != nil {
				t.Fatalf("quarantined evidence missing: %v", serr)
			}
			if got := curveBytes(t, report.Curve); got != want {
				t.Fatalf("post-quarantine curve differs from single-process derive\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestSupervisorDegradedMerge: a permanently failing shard either fails
// the whole run (default) or, under AllowPartial, degrades to an
// explicitly annotated merge carrying the covered index fraction.
func TestSupervisorDegradedMerge(t *testing.T) {
	e, opts, _ := testWorkload(t)
	errDead := errors.New("permanently broken shard")
	mkJob := func(p shard.Plan) (shard.Job, error) {
		job, err := shard.BoundJob(e, opts, p)
		if err != nil {
			return shard.Job{}, err
		}
		if p.Index == 1 {
			job.Derive = func(context.Context, int64, int64) (*pareto.Curve, int64, error) {
				return nil, 0, errDead
			}
		}
		return job, nil
	}

	dir := t.TempDir()
	sopts := fastOpts(dir)
	sopts.MaxRetries = -1 // no retries: fail fast
	_, err := Run(context.Background(), 4, mkJob, sopts)
	if err == nil {
		t.Fatal("run succeeded with a permanently failing shard and no -allow-partial")
	}
	if !strings.Contains(err.Error(), "allow-partial") {
		t.Fatalf("refusal does not mention the -allow-partial escape hatch: %v", err)
	}

	sopts = fastOpts(dir)
	sopts.MaxRetries = -1
	sopts.AllowPartial = true
	report, err := Run(context.Background(), 4, mkJob, sopts)
	if err != nil {
		t.Fatal(err)
	}
	if report.Curve != nil {
		t.Fatal("degraded run also emitted an exact curve")
	}
	d := report.Degraded
	if d == nil {
		t.Fatal("AllowPartial run emitted no degraded merge")
	}
	if d.Complete() || d.CoveredFraction >= 1 {
		t.Fatalf("degraded merge claims completeness: %+v", d)
	}
	if len(d.MissingShards) != 1 || d.MissingShards[0] != 1 {
		t.Fatalf("missing shards %v, want [1]", d.MissingShards)
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"degraded":true`) || !strings.Contains(string(data), `"covered_fraction"`) {
		t.Fatalf("degraded envelope lacks its annotations: %s", data)
	}
}

// TestBackoffDeterministicAndBounded: the retry schedule grows
// exponentially, respects the cap, and is reproducible for a fixed seed.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	mk := func() []time.Duration {
		rng := rand.New(rand.NewSource(42))
		var ds []time.Duration
		for attempt := 0; attempt < 8; attempt++ {
			ds = append(ds, backoffDelay(100*time.Millisecond, time.Second, attempt, rng))
		}
		return ds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: schedule not deterministic (%v vs %v)", i, a[i], b[i])
		}
		if a[i] > time.Second+time.Second/2 {
			t.Fatalf("attempt %d: delay %v exceeds cap+jitter bound", i, a[i])
		}
		if a[i] < time.Millisecond {
			t.Fatalf("attempt %d: delay %v below the millisecond floor", i, a[i])
		}
	}
	if a[0] >= time.Second {
		t.Fatalf("first delay %v shows no exponential ramp", a[0])
	}
}

// TestRunValidatesOptions: bad shard counts and a missing directory are
// refused up front.
func TestRunValidatesOptions(t *testing.T) {
	e, opts, _ := testWorkload(t)
	if _, err := Run(context.Background(), 0, boundMkJob(e, opts), fastOpts(t.TempDir())); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := Run(context.Background(), 2, boundMkJob(e, opts), Options{}); err == nil {
		t.Fatal("accepted an empty shard directory")
	}
}

// TestCancelledDeriveNotRetried: a derivation that reports
// context.Canceled / DeadlineExceeded without the parent context or the
// attempt timeout being the cause is external intent, not a transient
// fault — the supervisor must surface it after exactly one attempt
// instead of burning the whole retry budget on a cancelled run.
func TestCancelledDeriveNotRetried(t *testing.T) {
	e, opts, _ := testWorkload(t)
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		mkJob := func(p shard.Plan) (shard.Job, error) {
			job, err := shard.BoundJob(e, opts, p)
			if err != nil {
				return shard.Job{}, err
			}
			job.Derive = func(context.Context, int64, int64) (*pareto.Curve, int64, error) {
				return nil, 0, fmt.Errorf("inner run gave up: %w", cause)
			}
			return job, nil
		}
		sopts := fastOpts(t.TempDir())
		sopts.MaxRetries = 5
		report, err := Run(context.Background(), 2, mkJob, sopts)
		if err == nil {
			t.Fatalf("cause=%v: run succeeded with a permanently cancelled derive", cause)
		}
		for _, st := range report.Shards {
			if st.Attempts != 1 {
				t.Fatalf("cause=%v: shard %s took %d attempts, want 1 (zero retries after cancellation)",
					cause, st.Plan, st.Attempts)
			}
			if !errors.Is(st.Err, cause) {
				t.Fatalf("cause=%v: shard %s error %v does not wrap the cancellation", cause, st.Plan, st.Err)
			}
		}
	}
}

// TestAttemptTimeoutStillRetried guards the boundary of the non-retryable
// rule: an attempt cancelled by its own AttemptTimeout also surfaces as a
// context error, but that one IS the retry mechanism for slow shards —
// progress is monotonic across attempts via the checkpoint, so the shard
// must be retried and converge.
func TestAttemptTimeoutStillRetried(t *testing.T) {
	e, opts, want := testWorkload(t)
	var attempts atomic.Int64
	mkJob := func(p shard.Plan) (shard.Job, error) {
		job, err := shard.BoundJob(e, opts, p)
		if err != nil {
			return shard.Job{}, err
		}
		inner := job.Derive
		job.Derive = func(ctx context.Context, lo, hi int64) (*pareto.Curve, int64, error) {
			if attempts.Add(1) == 1 {
				// First block of the first attempt stalls past the attempt
				// timeout, honoring its context like a real traversal.
				<-ctx.Done()
				return nil, 0, ctx.Err()
			}
			return inner(ctx, lo, hi)
		}
		return job, nil
	}
	sopts := fastOpts(t.TempDir())
	sopts.Parallel = 1
	sopts.AttemptTimeout = 50 * time.Millisecond
	report, err := Run(context.Background(), 2, mkJob, sopts)
	if err != nil {
		t.Fatalf("attempt-timeout run did not converge: %v", err)
	}
	var total int
	for _, st := range report.Shards {
		total += st.Attempts
	}
	if total < 3 {
		t.Fatalf("%d total attempts, want >= 3 (the timed-out attempt must have been retried)", total)
	}
	if got := curveBytes(t, report.Curve); got != want {
		t.Fatal("post-timeout-retry curve differs from single-process derive")
	}
}
