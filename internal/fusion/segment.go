package fusion

import (
	"fmt"

	"repro/internal/pareto"
)

// Segmentation describes one way to cut a chain into consecutively
// executed segments: Cuts[i] is the first op index of segment i+1.
type Segmentation struct {
	Cuts []int
}

// Segments returns the [lo, hi) op spans for a chain of n ops.
func (s Segmentation) Segments(n int) [][2]int {
	var out [][2]int
	lo := 0
	for _, c := range s.Cuts {
		out = append(out, [2]int{lo, c})
		lo = c
	}
	out = append(out, [2]int{lo, n})
	return out
}

// String renders e.g. "[0:2)[2:6)".
func (s Segmentation) render(n int) string {
	str := ""
	for _, seg := range s.Segments(n) {
		str += fmt.Sprintf("[%d:%d)", seg[0], seg[1])
	}
	return str
}

// AllSegmentations enumerates all 2^(n-1) cut patterns of an n-op chain
// (Sec. VII-B).
func AllSegmentations(n int) []Segmentation {
	if n < 1 {
		return nil
	}
	var out []Segmentation
	for mask := 0; mask < 1<<(n-1); mask++ {
		var cuts []int
		for b := 0; b < n-1; b++ {
			if mask&(1<<b) != 0 {
				cuts = append(cuts, b+1)
			}
		}
		out = append(out, Segmentation{Cuts: cuts})
	}
	return out
}

// SegmentedResult reports the curve of one segmentation strategy.
type SegmentedResult struct {
	Segmentation Segmentation
	Label        string
	Curve        *pareto.Curve
}

// SegmentationStudy derives the bound of every segmentation of the chain.
// perOp supplies each op's standalone ski-slope curve (used for
// single-op segments, which execute unfused). Multi-op segments use the
// tiled-fusion bound. The curve of a segmentation is the capacity-wise sum
// of its segments' curves.
func SegmentationStudy(c *Chain, perOp []*pareto.Curve) ([]SegmentedResult, error) {
	if len(perOp) != len(c.Ops) {
		return nil, fmt.Errorf("fusion: SegmentationStudy: %d per-op curves for %d ops",
			len(perOp), len(c.Ops))
	}
	// Cache fused sub-chain curves by span.
	type span struct{ lo, hi int }
	fusedCache := map[span]*pareto.Curve{}
	fusedFor := func(lo, hi int) (*pareto.Curve, error) {
		key := span{lo, hi}
		if cv, ok := fusedCache[key]; ok {
			return cv, nil
		}
		cv, err := TiledFusion(c.Sub(lo, hi))
		if err != nil {
			return nil, err
		}
		fusedCache[key] = cv
		return cv, nil
	}

	var out []SegmentedResult
	for _, seg := range AllSegmentations(len(c.Ops)) {
		var parts []*pareto.Curve
		for _, sp := range seg.Segments(len(c.Ops)) {
			if sp[1]-sp[0] == 1 {
				parts = append(parts, perOp[sp[0]])
				continue
			}
			cv, err := fusedFor(sp[0], sp[1])
			if err != nil {
				return nil, err
			}
			parts = append(parts, cv)
		}
		curve := pareto.Sum(parts...)
		out = append(out, SegmentedResult{
			Segmentation: seg,
			Label:        seg.render(len(c.Ops)),
			Curve:        curve,
		})
	}
	return out, nil
}

// BestSegmentation returns the capacity-wise best curve over all
// segmentations (the yellow curve of Fig. 21).
func BestSegmentation(c *Chain, perOp []*pareto.Curve) (*pareto.Curve, error) {
	study, err := SegmentationStudy(c, perOp)
	if err != nil {
		return nil, err
	}
	curves := make([]*pareto.Curve, len(study))
	for i, s := range study {
		curves[i] = s.Curve
	}
	best := pareto.MergeMin(curves...)
	best.AlgoMinBytes = c.FusedAlgoMinBytes()
	best.TotalOperandBytes = c.UnfusedAlgoMinBytes()
	return best, nil
}
