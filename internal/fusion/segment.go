package fusion

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/pareto"
	"repro/internal/traverse"
)

// Segmentation describes one way to cut a chain into consecutively
// executed segments: Cuts[i] is the first op index of segment i+1.
type Segmentation struct {
	Cuts []int
}

// Segments returns the [lo, hi) op spans for a chain of n ops.
func (s Segmentation) Segments(n int) [][2]int {
	var out [][2]int
	lo := 0
	for _, c := range s.Cuts {
		out = append(out, [2]int{lo, c})
		lo = c
	}
	out = append(out, [2]int{lo, n})
	return out
}

// String renders e.g. "[0:2)[2:6)".
func (s Segmentation) render(n int) string {
	str := ""
	for _, seg := range s.Segments(n) {
		str += fmt.Sprintf("[%d:%d)", seg[0], seg[1])
	}
	return str
}

// SegmentationAt decodes flat index mask into the cut pattern it names for
// an n-op chain: bit b of mask set means a cut before op b+1. The mask
// space [0, 2^(n-1)) enumerates every segmentation of Sec. VII-B without
// materializing them, so range-restricted sweeps (shards, checkpoint
// blocks) address segmentations directly. mask 0 is the fully fused chain.
func SegmentationAt(n int, mask int64) Segmentation {
	var cuts []int
	for b := 0; b < n-1; b++ {
		if mask&(1<<b) != 0 {
			cuts = append(cuts, b+1)
		}
	}
	return Segmentation{Cuts: cuts}
}

// SegmentationSpace returns the size of the segmentation index space of c —
// the [0, Space) mask range that SegmentationRange slices and a
// cross-process shard plan (internal/shard) divides: 2^(n-1) for n ops.
func SegmentationSpace(c *Chain) (int64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	n := len(c.Ops)
	if n > 63 {
		return 0, fmt.Errorf("fusion: segmentation space of %d-op chain %s overflows int64", n, c.Name)
	}
	return int64(1) << (n - 1), nil
}

// SegmentedResult reports the curve of one segmentation strategy.
type SegmentedResult struct {
	Segmentation Segmentation
	Label        string
	Curve        *pareto.Curve
}

// segSpan is a [lo, hi) op span of the chain, the memo key for fused
// sub-chain curves.
type segSpan struct{ lo, hi int }

// SegmentationSweep evaluates mask-indexed segmentations of a chain. The
// curve of a segmentation is the capacity-wise sum of its segments'
// curves: single-op segments use the per-op standalone curves, multi-op
// segments the tiled-fusion bound of the sub-chain. Fused sub-chain curves
// are shared through a concurrency-safe memo so each [lo, hi) span is
// derived exactly once per sweep no matter which workers (or which
// checkpoint blocks of a resumable shard run) need it. The memo is
// derived state, never checkpointed: a resumed shard recomputes the spans
// its remaining masks touch (see docs/shard-format.md).
type SegmentationSweep struct {
	c     *Chain
	perOp []*pareto.Curve
	space int64
	fused traverse.Memo[segSpan, *pareto.Curve]
}

// NewSegmentationSweep validates the chain and its per-op curves and
// returns a sweep over the [0, Space()) segmentation masks.
func NewSegmentationSweep(c *Chain, perOp []*pareto.Curve) (*SegmentationSweep, error) {
	space, err := SegmentationSpace(c)
	if err != nil {
		return nil, err
	}
	if len(perOp) != len(c.Ops) {
		return nil, fmt.Errorf("fusion: segmentation sweep: %d per-op curves for %d ops",
			len(perOp), len(c.Ops))
	}
	return &SegmentationSweep{c: c, perOp: perOp, space: space}, nil
}

// Space returns the number of segmentation masks the sweep addresses.
func (sw *SegmentationSweep) Space() int64 { return sw.space }

// fusedFor memoizes the tiled-fusion curve of the [lo, hi) sub-chain.
// Sub-chain sweeps stay serial: the outer sweep already saturates the
// workers, and nested fan-out would oversubscribe. A compute cancelled by
// ctx re-arms the memo entry (see traverse.Memo), so a resumed or retried
// caller derives the span afresh instead of inheriting the stale error.
func (sw *SegmentationSweep) fusedFor(ctx context.Context, lo, hi int) (*pareto.Curve, error) {
	return sw.fused.Do(segSpan{lo, hi}, func() (*pareto.Curve, error) {
		sub := sw.c.Sub(lo, hi)
		space, err := TiledFusionSpace(sub)
		if err != nil {
			return nil, err
		}
		cv, _, err := TiledFusionRange(ctx, sub, 0, space, 1)
		return cv, err
	})
}

// curveAt derives the curve of segmentation mask.
func (sw *SegmentationSweep) curveAt(ctx context.Context, mask int64) (Segmentation, *pareto.Curve, error) {
	n := len(sw.c.Ops)
	seg := SegmentationAt(n, mask)
	parts := make([]*pareto.Curve, 0, len(seg.Cuts)+1)
	for _, sp := range seg.Segments(n) {
		if sp[1]-sp[0] == 1 {
			parts = append(parts, sw.perOp[sp[0]])
			continue
		}
		cv, err := sw.fusedFor(ctx, sp[0], sp[1])
		if err != nil {
			return seg, nil, err
		}
		parts = append(parts, cv)
	}
	return seg, pareto.Sum(parts...), nil
}

// Range derives the capacity-wise best curve over the segmentation masks
// [lo, hi) — one shard's (or one checkpoint block's) share of the study.
// Deriving a disjoint cover of [0, Space()) and merging the partial curves
// with pareto.Union reproduces BestSegmentationStats' curve byte-for-byte;
// the annotations are already set on every partial.
//
// Cancelling ctx aborts the sweep within about one worker chunk and
// returns the context's error with no curve.
func (sw *SegmentationSweep) Range(ctx context.Context, lo, hi int64, workers int) (*pareto.Curve, traverse.Stats, error) {
	if lo < 0 || hi < lo || hi > sw.space {
		return nil, traverse.Stats{}, fmt.Errorf("fusion: SegmentationRange [%d, %d) outside [0, %d)", lo, hi, sw.space)
	}
	// FrontierRange chunk funcs cannot return errors, so a failed
	// sub-chain derivation is recorded out-of-band; without this check a
	// failed chunk would silently under-approximate the frontier.
	var mu sync.Mutex
	var firstErr error
	curve, ts, err := traverse.FrontierRange(ctx, lo, hi, workers, func() traverse.ChunkFunc {
		return func(clo, chi int64, b *pareto.Builder) int64 {
			mu.Lock()
			failed := firstErr != nil
			mu.Unlock()
			if failed {
				return 0
			}
			var count int64
			for mask := clo; mask < chi; mask++ {
				_, cv, err := sw.curveAt(ctx, mask)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return count
				}
				for _, p := range cv.Points() {
					b.Add(p.BufferBytes, p.AccessBytes)
				}
				count++
			}
			return count
		}
	})
	if err != nil {
		return nil, ts, err
	}
	mu.Lock()
	ferr := firstErr
	mu.Unlock()
	if ferr != nil {
		return nil, ts, ferr
	}
	curve.AlgoMinBytes = sw.c.FusedAlgoMinBytes()
	curve.TotalOperandBytes = sw.c.UnfusedAlgoMinBytes()
	return curve, ts, nil
}

// SegmentationRange derives the partial best-segmentation frontier over
// the global mask indices [lo, hi) with a fresh sweep. Processes sharing
// many sub-chain spans across calls should hold a SegmentationSweep
// instead, which keeps its memo across Range calls.
func SegmentationRange(ctx context.Context, c *Chain, perOp []*pareto.Curve, lo, hi int64, workers int) (*pareto.Curve, traverse.Stats, error) {
	sw, err := NewSegmentationSweep(c, perOp)
	if err != nil {
		return nil, traverse.Stats{}, err
	}
	return sw.Range(ctx, lo, hi, workers)
}

// SegmentationStudy derives the bound of every segmentation of the chain.
// perOp supplies each op's standalone ski-slope curve (used for
// single-op segments, which execute unfused). Multi-op segments use the
// tiled-fusion bound. The curve of a segmentation is the capacity-wise sum
// of its segments' curves.
func SegmentationStudy(c *Chain, perOp []*pareto.Curve) ([]SegmentedResult, error) {
	out, _, err := SegmentationStudyStats(c, perOp, 0)
	return out, err
}

// SegmentationStudyStats is SegmentationStudy with an explicit worker
// count (<= 0 means GOMAXPROCS) and traversal statistics, under the
// non-cancellable background context.
func SegmentationStudyStats(c *Chain, perOp []*pareto.Curve, workers int) ([]SegmentedResult, traverse.Stats, error) {
	return SegmentationStudyContext(context.Background(), c, perOp, workers)
}

// SegmentationStudyContext derives every segmentation's curve under ctx.
// The 2^(n-1) segmentations are distributed across workers; fused
// sub-chain curves are shared through a concurrency-safe memo so each
// [lo, hi) span is derived exactly once no matter which workers need it.
// Results are written by segmentation index, so the output order (and
// every curve in it) is identical to a serial run. Cancelling ctx stops
// the study within about one chunk per worker and returns the context's
// error with no results.
func SegmentationStudyContext(ctx context.Context, c *Chain, perOp []*pareto.Curve, workers int) ([]SegmentedResult, traverse.Stats, error) {
	sw, err := NewSegmentationSweep(c, perOp)
	if err != nil {
		return nil, traverse.Stats{}, err
	}
	out := make([]SegmentedResult, sw.space)
	errs := make([]error, sw.space)
	ts, terr := traverse.Each(ctx, sw.space, workers, func(i int64) {
		seg, cv, derr := sw.curveAt(ctx, i)
		if derr != nil {
			errs[i] = derr
			return
		}
		out[i] = SegmentedResult{
			Segmentation: seg,
			Label:        seg.render(len(c.Ops)),
			Curve:        cv,
		}
	})
	if terr != nil {
		return nil, ts, terr
	}
	for _, err := range errs {
		if err != nil {
			return nil, ts, err
		}
	}
	return out, ts, nil
}

// BestSegmentation returns the capacity-wise best curve over all
// segmentations (the yellow curve of Fig. 21).
func BestSegmentation(c *Chain, perOp []*pareto.Curve) (*pareto.Curve, error) {
	best, _, err := BestSegmentationStats(c, perOp, 0)
	return best, err
}

// BestSegmentationStats is BestSegmentation with an explicit worker count
// (<= 0 means GOMAXPROCS) and traversal statistics, under the
// non-cancellable background context.
func BestSegmentationStats(c *Chain, perOp []*pareto.Curve, workers int) (*pareto.Curve, traverse.Stats, error) {
	return BestSegmentationContext(context.Background(), c, perOp, workers)
}

// BestSegmentationContext derives the capacity-wise best curve over all
// segmentations under ctx. The result is byte-identical to merging a
// disjoint SegmentationRange cover of the mask space with pareto.Union.
func BestSegmentationContext(ctx context.Context, c *Chain, perOp []*pareto.Curve, workers int) (*pareto.Curve, traverse.Stats, error) {
	study, ts, err := SegmentationStudyContext(ctx, c, perOp, workers)
	if err != nil {
		return nil, ts, err
	}
	curves := make([]*pareto.Curve, len(study))
	for i, s := range study {
		curves[i] = s.Curve
	}
	best := pareto.MergeMin(curves...)
	best.AlgoMinBytes = c.FusedAlgoMinBytes()
	best.TotalOperandBytes = c.UnfusedAlgoMinBytes()
	return best, ts, nil
}
