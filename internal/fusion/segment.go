package fusion

import (
	"context"
	"fmt"

	"repro/internal/pareto"
	"repro/internal/traverse"
)

// Segmentation describes one way to cut a chain into consecutively
// executed segments: Cuts[i] is the first op index of segment i+1.
type Segmentation struct {
	Cuts []int
}

// Segments returns the [lo, hi) op spans for a chain of n ops.
func (s Segmentation) Segments(n int) [][2]int {
	var out [][2]int
	lo := 0
	for _, c := range s.Cuts {
		out = append(out, [2]int{lo, c})
		lo = c
	}
	out = append(out, [2]int{lo, n})
	return out
}

// String renders e.g. "[0:2)[2:6)".
func (s Segmentation) render(n int) string {
	str := ""
	for _, seg := range s.Segments(n) {
		str += fmt.Sprintf("[%d:%d)", seg[0], seg[1])
	}
	return str
}

// AllSegmentations enumerates all 2^(n-1) cut patterns of an n-op chain
// (Sec. VII-B).
func AllSegmentations(n int) []Segmentation {
	if n < 1 {
		return nil
	}
	var out []Segmentation
	for mask := 0; mask < 1<<(n-1); mask++ {
		var cuts []int
		for b := 0; b < n-1; b++ {
			if mask&(1<<b) != 0 {
				cuts = append(cuts, b+1)
			}
		}
		out = append(out, Segmentation{Cuts: cuts})
	}
	return out
}

// SegmentedResult reports the curve of one segmentation strategy.
type SegmentedResult struct {
	Segmentation Segmentation
	Label        string
	Curve        *pareto.Curve
}

// SegmentationStudy derives the bound of every segmentation of the chain.
// perOp supplies each op's standalone ski-slope curve (used for
// single-op segments, which execute unfused). Multi-op segments use the
// tiled-fusion bound. The curve of a segmentation is the capacity-wise sum
// of its segments' curves.
func SegmentationStudy(c *Chain, perOp []*pareto.Curve) ([]SegmentedResult, error) {
	out, _, err := SegmentationStudyStats(c, perOp, 0)
	return out, err
}

// SegmentationStudyStats is SegmentationStudy with an explicit worker
// count (<= 0 means GOMAXPROCS) and traversal statistics. The 2^(n-1)
// segmentations are distributed across workers; fused sub-chain curves
// are shared through a concurrency-safe memo so each [lo, hi) span is
// derived exactly once no matter which workers need it. Results are
// written by segmentation index, so the output order (and every curve in
// it) is identical to a serial run.
func SegmentationStudyStats(c *Chain, perOp []*pareto.Curve, workers int) ([]SegmentedResult, traverse.Stats, error) {
	if len(perOp) != len(c.Ops) {
		return nil, traverse.Stats{}, fmt.Errorf("fusion: SegmentationStudy: %d per-op curves for %d ops",
			len(perOp), len(c.Ops))
	}
	type span struct{ lo, hi int }
	var fused traverse.Memo[span, *pareto.Curve]
	fusedFor := func(lo, hi int) (*pareto.Curve, error) {
		return fused.Do(span{lo, hi}, func() (*pareto.Curve, error) {
			// Sub-chain sweeps stay serial: the outer study already
			// saturates the workers, and nested fan-out would oversubscribe.
			cv, _, err := TiledFusionStats(c.Sub(lo, hi), 1)
			return cv, err
		})
	}

	segs := AllSegmentations(len(c.Ops))
	out := make([]SegmentedResult, len(segs))
	errs := make([]error, len(segs))
	// The segmentation study is not on the sharded/supervised path, so it
	// runs under the non-cancellable background context.
	ts, _ := traverse.Each(context.Background(), int64(len(segs)), workers, func(i int64) {
		seg := segs[i]
		var parts []*pareto.Curve
		for _, sp := range seg.Segments(len(c.Ops)) {
			if sp[1]-sp[0] == 1 {
				parts = append(parts, perOp[sp[0]])
				continue
			}
			cv, err := fusedFor(sp[0], sp[1])
			if err != nil {
				errs[i] = err
				return
			}
			parts = append(parts, cv)
		}
		out[i] = SegmentedResult{
			Segmentation: seg,
			Label:        seg.render(len(c.Ops)),
			Curve:        pareto.Sum(parts...),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, ts, err
		}
	}
	return out, ts, nil
}

// BestSegmentation returns the capacity-wise best curve over all
// segmentations (the yellow curve of Fig. 21).
func BestSegmentation(c *Chain, perOp []*pareto.Curve) (*pareto.Curve, error) {
	best, _, err := BestSegmentationStats(c, perOp, 0)
	return best, err
}

// BestSegmentationStats is BestSegmentation with an explicit worker count
// (<= 0 means GOMAXPROCS) and traversal statistics.
func BestSegmentationStats(c *Chain, perOp []*pareto.Curve, workers int) (*pareto.Curve, traverse.Stats, error) {
	study, ts, err := SegmentationStudyStats(c, perOp, workers)
	if err != nil {
		return nil, ts, err
	}
	curves := make([]*pareto.Curve, len(study))
	for i, s := range study {
		curves[i] = s.Curve
	}
	best := pareto.MergeMin(curves...)
	best.AlgoMinBytes = c.FusedAlgoMinBytes()
	best.TotalOperandBytes = c.UnfusedAlgoMinBytes()
	return best, ts, nil
}
