package fusion

import (
	"runtime"
	"testing"

	"repro/internal/bound"
	"repro/internal/pareto"
)

func fourOpChain() *Chain {
	return MustChain("four", 64,
		GEMMOp("g0", 64, 16, 32),
		GEMMOp("g1", 64, 32, 16),
		GEMMOp("g2", 64, 16, 32),
		GEMMOp("g3", 64, 32, 8),
	)
}

func sameCurve(t *testing.T, label string, a, b *pareto.Curve) {
	t.Helper()
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) {
		t.Fatalf("%s: %d vs %d points", label, len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("%s: point %d differs: %v vs %v", label, i, ap[i], bp[i])
		}
	}
}

func TestTiledFusionStatsDeterministicAcrossWorkerCounts(t *testing.T) {
	c := fourOpChain()
	serial, st, err := TiledFusionStats(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Fatalf("serial sweep used %d workers", st.Workers)
	}
	for _, w := range []int{2, 4, 0} {
		par, pst, err := TiledFusionStats(c, w)
		if err != nil {
			t.Fatal(err)
		}
		if pst.Evaluated != st.Evaluated {
			t.Fatalf("workers=%d evaluated %d templates, serial %d", w, pst.Evaluated, st.Evaluated)
		}
		sameCurve(t, "tiled fusion", serial, par)
	}
}

func TestSegmentationStudyStatsDeterministicAcrossWorkerCounts(t *testing.T) {
	c := fourOpChain()
	perOp := c.PerOpCurves(bound.Options{})
	serial, _, err := SegmentationStudyStats(c, perOp, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := SegmentationStudyStats(c, perOp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("%d vs %d segmentations", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Label != par[i].Label {
			t.Fatalf("segmentation %d: labels %q vs %q — order must be deterministic",
				i, serial[i].Label, par[i].Label)
		}
		sameCurve(t, "segmentation "+serial[i].Label, serial[i].Curve, par[i].Curve)
	}

	bs, _, err := BestSegmentationStats(c, perOp, 4)
	if err != nil {
		t.Fatal(err)
	}
	bs1, err := BestSegmentation(c, perOp)
	if err != nil {
		t.Fatal(err)
	}
	sameCurve(t, "best segmentation", bs1, bs)
}

func BenchmarkSegmentationStudy(b *testing.B) {
	c := MustChain("five", 256,
		GEMMOp("g0", 256, 64, 128),
		GEMMOp("g1", 256, 128, 64),
		GEMMOp("g2", 256, 64, 128),
		GEMMOp("g3", 256, 128, 64),
		GEMMOp("g4", 256, 64, 32),
	)
	perOp := c.PerOpCurves(bound.Options{})
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		name := "workers=1"
		if w != 1 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := SegmentationStudyStats(c, perOp, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
