package fusion

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/pareto"
)

// TestTiledFusionRangeCoverParity pins the sharding contract for the FFMT
// template sweep: partial curves over a disjoint cover of the template
// space union to the byte-identical full-sweep curve.
func TestTiledFusionRangeCoverParity(t *testing.T) {
	c := MustChain("ffn", 64,
		GEMMOp("mm_0", 64, 32, 48),
		GEMMOp("mm_1", 64, 48, 16))
	space, err := TiledFusionSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := TiledFusionStats(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}

	cuts := []int64{0, 1, space / 3, space / 2, space}
	var parts []*pareto.Curve
	for i := 0; i+1 < len(cuts); i++ {
		cv, _, err := TiledFusionRange(context.Background(), c, cuts[i], cuts[i+1], 2)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, cv)
	}
	merged := pareto.Union(parts...)
	merged.AlgoMinBytes = parts[0].AlgoMinBytes
	merged.TotalOperandBytes = parts[0].TotalOperandBytes
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("union of range curves differs from full sweep\n got %s\nwant %s", got, want)
	}
}

func TestTiledFusionRangeRejectsOutOfBounds(t *testing.T) {
	c := MustChain("ffn", 16,
		GEMMOp("mm_0", 16, 8, 8),
		GEMMOp("mm_1", 16, 8, 8))
	space, err := TiledFusionSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int64{{-1, 2}, {0, space + 1}, {5, 4}} {
		if _, _, err := TiledFusionRange(context.Background(), c, r[0], r[1], 1); err == nil {
			t.Errorf("TiledFusionRange[%d, %d) accepted", r[0], r[1])
		}
	}
}

func TestChainCanonicalDistinguishesShapes(t *testing.T) {
	a := MustChain("c", 16, GEMMOp("mm_0", 16, 8, 8), GEMMOp("mm_1", 16, 8, 8))
	b := MustChain("c", 16, GEMMOp("mm_0", 16, 8, 4), GEMMOp("mm_1", 16, 4, 8))
	if a.Canonical() == b.Canonical() {
		t.Fatal("different chains share a canonical encoding")
	}
	if a.Canonical() != a.Canonical() {
		t.Fatal("canonical encoding not deterministic")
	}
}
