package fusion

import (
	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/pareto"
	"repro/internal/shape"
)

// MHAConfig describes a multi-head attention block for the Fig. 20 fusion
// strategy study: Instances independent sequences (batch entries), each
// with Seq tokens, Heads attention heads of FeatureDim features.
type MHAConfig struct {
	Instances   int64
	Seq         int64
	Heads       int64
	FeatureDim  int64
	ElementSize int64
}

func (m MHAConfig) elemSize() int64 {
	if m.ElementSize > 0 {
		return m.ElementSize
	}
	return einsum.DefaultElementSize
}

// QKEinsum returns the standalone bmm_QK Einsum over all instances.
func (m MHAConfig) QKEinsum() *einsum.Einsum {
	return einsum.BMM("bmm_QK", m.Instances*m.Heads, m.Seq, m.FeatureDim, m.Seq)
}

// QKVEinsum returns the standalone bmm_QKV Einsum over all instances.
func (m MHAConfig) QKVEinsum() *einsum.Einsum {
	return einsum.BMM("bmm_QKV", m.Instances*m.Heads, m.Seq, m.Seq, m.FeatureDim)
}

// Chain returns the two-op fused chain view of the attention pair.
func (m MHAConfig) Chain() *Chain {
	return MustChain("mha", m.Instances*m.Seq,
		AttentionQKOp("bmm_QK", m.Instances, m.Seq, m.Heads, m.FeatureDim),
		AttentionQKVOp("bmm_QKV", m.Instances, m.Seq, m.Heads, m.FeatureDim),
	)
}

// AlgoMinFusedBytes is the fused algorithmic minimum of the attention
// pair: Q, K, V read once, the attention output written once; scores never
// leave the chip.
func (m MHAConfig) AlgoMinFusedBytes() int64 {
	per := 4 * m.Seq * m.FeatureDim // Q + K + V + out per head
	return shape.Product(m.Instances, m.Heads, per) * m.elemSize()
}

// UnfusedCurve is Fig. 20's baseline: both BMMs bounded independently and
// summed.
func (m MHAConfig) UnfusedCurve(opts bound.Options) *pareto.Curve {
	qk := bound.Derive(m.QKEinsum(), opts).Curve
	qkv := bound.Derive(m.QKVEinsum(), opts).Curve
	return pareto.Sum(qk, qkv)
}

// FLATCurve models the FLAT fusion strategy (FFMT-TiledK producer +
// FFMT-TiledN consumer): the full score row of each M0-token block must be
// materialized on chip for the row-wise softmax, so the buffer charges
// M0 * Heads * Seq score elements. K and V matrices are either streamed
// once per block traversal or held resident per sequence.
func (m MHAConfig) FLATCurve() *pareto.Curve {
	es := m.elemSize()
	s, h, f := m.Seq, m.Heads, m.FeatureDim
	kvBytes := 2 * h * s * f // per-sequence K + V elements
	b := pareto.NewBuilder()
	for _, m0 := range shape.Divisors(s) {
		m1 := s / m0
		for resident := 0; resident <= 1; resident++ {
			// Per-sequence accesses: Q in, out, K/V streamed or resident.
			acc := 2 * s * h * f // Q + output
			buf := m0*h*f + m0*h*s + m0*h*f
			if resident == 1 {
				acc += kvBytes
				buf += kvBytes
			} else {
				acc += m1 * kvBytes
				buf += 2 * f // one K row and one V row in flight
			}
			b.Add(buf*es, shape.Product(m.Instances, acc)*es)
		}
	}
	curve := b.Curve()
	m.annotate(curve)
	return curve
}

// FlashAttentionCurve models the FlashAttention strategy: the online
// softmax lets the score row be produced in Seq/N2 sub-tiles, removing the
// M0 * Heads * Seq buffer term. Access counts match FLAT at equal M0 — the
// advantage is that far larger M0 fits a given capacity.
func (m MHAConfig) FlashAttentionCurve() *pareto.Curve {
	es := m.elemSize()
	s, h, f := m.Seq, m.Heads, m.FeatureDim
	kvBytes := 2 * h * s * f
	b := pareto.NewBuilder()
	for _, m0 := range shape.Divisors(s) {
		m1 := s / m0
		for _, n2 := range shape.Divisors(s) {
			for resident := 0; resident <= 1; resident++ {
				acc := 2 * s * h * f
				// Q block, running output + softmax statistics, score
				// sub-tile.
				buf := m0*h*f + m0*h*f + m0*h*(s/n2)
				if resident == 1 {
					acc += kvBytes
					buf += kvBytes
				} else {
					acc += m1 * kvBytes
					buf += 2 * f * (s / n2)
				}
				b.Add(buf*es, shape.Product(m.Instances, acc)*es)
			}
		}
	}
	curve := b.Curve()
	m.annotate(curve)
	return curve
}

func (m MHAConfig) annotate(c *pareto.Curve) {
	c.AlgoMinBytes = m.AlgoMinFusedBytes()
	qk, qkv := m.QKEinsum(), m.QKVEinsum()
	c.TotalOperandBytes = qk.AlgorithmicMinBytes() + qkv.AlgorithmicMinBytes()
}
