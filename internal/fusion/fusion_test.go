package fusion

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bound"
	"repro/internal/pareto"
)

func twoGEMMChain() *Chain {
	return MustChain("tiny", 4,
		GEMMOp("g0", 4, 2, 4),
		GEMMOp("g1", 4, 4, 2),
	)
}

func TestChainValidation(t *testing.T) {
	if _, err := NewChain("ok", 4, GEMMOp("g0", 4, 2, 4), GEMMOp("g1", 4, 4, 2)); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	// Width mismatch.
	if _, err := NewChain("bad", 4, GEMMOp("g0", 4, 2, 4), GEMMOp("g1", 4, 8, 2)); err == nil {
		t.Fatal("width mismatch accepted")
	}
	// RowsPerInst not dividing M.
	op := GEMMOp("g0", 4, 2, 4)
	op.RowsPerInst = 3
	if _, err := NewChain("bad", 4, op); err == nil {
		t.Fatal("non-dividing RowsPerInst accepted")
	}
	if _, err := NewChain("bad", 0); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestChainAlgoMins(t *testing.T) {
	c := twoGEMMChain()
	// Fused: M*2 + (2*4 + 4*2) + M*2 = 8 + 16 + 8 = 32 elems -> 64 B.
	if got := c.FusedAlgoMinBytes(); got != 64 {
		t.Fatalf("FusedAlgoMinBytes = %d, want 64", got)
	}
	// Unfused: (4*2+2*4+4*4) + (4*4+4*2+4*2) = 32 + 32 = 64 elems -> 128 B.
	if got := c.UnfusedAlgoMinBytes(); got != 128 {
		t.Fatalf("UnfusedAlgoMinBytes = %d, want 128", got)
	}
	// One intermediate of 4x4 elements -> 32 B.
	if got := c.IntermediateBytes(); got != 32 {
		t.Fatalf("IntermediateBytes = %d, want 32", got)
	}
}

func TestTiledFusionReachesFusedAlgoMin(t *testing.T) {
	c := twoGEMMChain()
	curve, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	if curve.MinAccessBytes() != c.FusedAlgoMinBytes() {
		t.Fatalf("tiled fusion min accesses %d != fused algo min %d",
			curve.MinAccessBytes(), c.FusedAlgoMinBytes())
	}
	// Hand-computed cheapest point: M0=4, N2=1, all weights resident:
	// io peak 24 elems + weights 16 elems = 40 elems = 80 B.
	if acc, ok := curve.AccessesAt(80); !ok || acc != 64 {
		t.Fatalf("AccessesAt(80B) = (%d,%v), want (64,true)", acc, ok)
	}
}

func TestTiledFusionSmallestPoint(t *testing.T) {
	c := twoGEMMChain()
	curve, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-derived extreme point: M0=1, N2=4, all streamed:
	// accesses = 4*4*2 + 4*2 + max(4,1)*16 = 104 elems = 208 B;
	// buffer = 3 elems = 6 B.
	acc, ok := curve.AccessesAt(6)
	if !ok {
		t.Fatalf("no point at 6 B; min buffer is %d", curve.MinBufferBytes())
	}
	if acc != 208 {
		t.Fatalf("AccessesAt(6B) = %d, want 208", acc)
	}
}

func TestTiledFusionNeverBelowFusedAlgoMin(t *testing.T) {
	chains := []*Chain{
		twoGEMMChain(),
		MustChain("three", 8,
			GEMMOp("g0", 8, 4, 8),
			GEMMOp("g1", 8, 8, 4),
			GEMMOp("g2", 8, 4, 2),
		),
	}
	for _, c := range chains {
		curve, err := TiledFusion(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range curve.Points() {
			if p.AccessBytes < c.FusedAlgoMinBytes() {
				t.Fatalf("chain %s: point %+v below fused algorithmic minimum %d",
					c.Name, p, c.FusedAlgoMinBytes())
			}
		}
	}
}

func TestTiledFusionRejectsShortChains(t *testing.T) {
	if _, err := TiledFusion(MustChain("one", 4, GEMMOp("g0", 4, 2, 4))); err == nil {
		t.Fatal("single-op TiledFusion accepted")
	}
}

func TestNoOutputTilingConstraint(t *testing.T) {
	free := twoGEMMChain()
	pinned := twoGEMMChain()
	pinned.Ops[0].NoOutputTiling = true
	cf, err := TiledFusion(free)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := TiledFusion(pinned)
	if err != nil {
		t.Fatal(err)
	}
	// The constrained chain cannot have a smaller minimum buffer.
	if cp.MinBufferBytes() < cf.MinBufferBytes() {
		t.Fatalf("NoOutputTiling reduced the minimum buffer: %d < %d",
			cp.MinBufferBytes(), cf.MinBufferBytes())
	}
}

func TestUntiledFusion(t *testing.T) {
	c := twoGEMMChain()
	curve, err := UntiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	if curve.MinAccessBytes() != c.FusedAlgoMinBytes() {
		t.Fatalf("untiled accesses %d != fused algo min %d",
			curve.MinAccessBytes(), c.FusedAlgoMinBytes())
	}
	// Buffer must at least hold the intermediate tensor.
	if curve.MinBufferBytes() < c.IntermediateBytes() {
		t.Fatalf("untiled buffer %d below intermediate size %d",
			curve.MinBufferBytes(), c.IntermediateBytes())
	}
	// Tiled fusion reaches the same accesses with less capacity.
	tiled, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	tb, ok := tiled.BufferFor(curve.MinAccessBytes())
	if !ok || tb > curve.MinBufferBytes() {
		t.Fatalf("tiled fusion (%d,%v) should reach algo min within the untiled capacity %d",
			tb, ok, curve.MinBufferBytes())
	}
}

func TestSegmentationAt(t *testing.T) {
	c := MustChain("three", 16,
		GEMMOp("g0", 16, 4, 16),
		GEMMOp("g1", 16, 16, 8),
		GEMMOp("g2", 16, 8, 4),
	)
	space, err := SegmentationSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	if space != 4 {
		t.Fatalf("SegmentationSpace(3 ops) = %d, want 4", space)
	}
	// Check spans are contiguous covers and every mask is distinct.
	seen := map[string]bool{}
	for mask := int64(0); mask < space; mask++ {
		s := SegmentationAt(3, mask)
		spans := s.Segments(3)
		lo := 0
		for _, sp := range spans {
			if sp[0] != lo || sp[1] <= sp[0] {
				t.Fatalf("mask %d: bad spans %v", mask, spans)
			}
			lo = sp[1]
		}
		if lo != 3 {
			t.Fatalf("mask %d: spans %v do not cover the chain", mask, spans)
		}
		label := s.render(3)
		if seen[label] {
			t.Fatalf("mask %d: duplicate segmentation %s", mask, label)
		}
		seen[label] = true
	}
	if s := SegmentationAt(1, 0); len(s.Cuts) != 0 {
		t.Fatalf("SegmentationAt(1, 0) = %+v, want the trivial segmentation", s)
	}
}

func TestSegmentationRangeUnionMatchesBest(t *testing.T) {
	c := MustChain("three", 16,
		GEMMOp("g0", 16, 4, 16),
		GEMMOp("g1", 16, 16, 8),
		GEMMOp("g2", 16, 8, 4),
	)
	perOp := c.PerOpCurves(bound.Options{Workers: 1})
	best, _, err := BestSegmentationStats(c, perOp, 1)
	if err != nil {
		t.Fatal(err)
	}
	space, err := SegmentationSpace(c)
	if err != nil {
		t.Fatal(err)
	}
	// Any disjoint cover of the mask space merges back to the best curve.
	for _, cut := range []int64{1, 2, 3} {
		loCurve, _, err := SegmentationRange(context.Background(), c, perOp, 0, cut, 1)
		if err != nil {
			t.Fatal(err)
		}
		hiCurve, _, err := SegmentationRange(context.Background(), c, perOp, cut, space, 1)
		if err != nil {
			t.Fatal(err)
		}
		merged := pareto.Union(loCurve, hiCurve)
		merged.AlgoMinBytes = best.AlgoMinBytes
		merged.TotalOperandBytes = best.TotalOperandBytes
		if !reflect.DeepEqual(merged.Points(), best.Points()) {
			t.Fatalf("cut %d: union %v != best %v", cut, merged.Points(), best.Points())
		}
	}
	// Out-of-range slices are rejected.
	if _, _, err := SegmentationRange(context.Background(), c, perOp, 0, space+1, 1); err == nil {
		t.Fatal("SegmentationRange beyond the space should fail")
	}
}

func TestSegmentationStudyContextCancel(t *testing.T) {
	c := MustChain("four", 16,
		GEMMOp("g0", 16, 4, 16),
		GEMMOp("g1", 16, 16, 8),
		GEMMOp("g2", 16, 8, 8),
		GEMMOp("g3", 16, 8, 4),
	)
	perOp := c.PerOpCurves(bound.Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SegmentationStudyContext(ctx, c, perOp, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled study returned %v, want context.Canceled", err)
	}
}

func TestBestSegmentationDominates(t *testing.T) {
	c := MustChain("three", 16,
		GEMMOp("g0", 16, 4, 16),
		GEMMOp("g1", 16, 16, 8),
		GEMMOp("g2", 16, 8, 4),
	)
	perOp := c.PerOpCurves(bound.Options{Workers: 1})
	unfused := UnfusedCurve(perOp)
	fullFusion, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	best, err := BestSegmentation(c, perOp)
	if err != nil {
		t.Fatal(err)
	}
	// Best segmentation includes both extremes, so it is pointwise at
	// least as good wherever those are feasible.
	for _, ref := range []*pareto.Curve{unfused, fullFusion} {
		for _, p := range ref.Points() {
			got, ok := best.AccessesAt(p.BufferBytes)
			if !ok || got > p.AccessBytes {
				t.Fatalf("best segmentation (%d,%v) worse than component point %+v", got, ok, p)
			}
		}
	}
}

func TestSegmentationStudyLabels(t *testing.T) {
	c := twoGEMMChain()
	perOp := c.PerOpCurves(bound.Options{Workers: 1})
	study, err := SegmentationStudy(c, perOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(study) != 2 {
		t.Fatalf("two-op chain should have 2 segmentations, got %d", len(study))
	}
	labels := map[string]bool{}
	for _, s := range study {
		labels[s.Label] = true
	}
	if !labels["[0:2)"] || !labels["[0:1)[1:2)"] {
		t.Fatalf("unexpected labels: %v", labels)
	}
}

func TestReductionFactors(t *testing.T) {
	base := pareto.FromPoints([]pareto.Point{{BufferBytes: 10, AccessBytes: 1000}})
	cand := pareto.FromPoints([]pareto.Point{{BufferBytes: 10, AccessBytes: 250}})
	rf := ReductionFactors(base, cand)
	if len(rf) != 1 || rf[0].Factor != 4 {
		t.Fatalf("ReductionFactors = %+v, want one 4x point", rf)
	}
}

func TestAttentionOps(t *testing.T) {
	qk := AttentionQKOp("qk", 4, 64, 8, 16)
	if qk.InW != 8*16 || qk.OutW != 8*64 || qk.WInst != 8*64*16 || qk.RowsPerInst != 64 {
		t.Fatalf("AttentionQKOp = %+v", qk)
	}
	qkv := AttentionQKVOp("qkv", 4, 64, 8, 16)
	if qkv.InW != qk.OutW {
		t.Fatal("QKV InW must match QK OutW")
	}
	if qk.Ref.MACs() != 4*8*64*16*64 {
		t.Fatalf("QK reference MACs = %d", qk.Ref.MACs())
	}
}

func TestMHAChainConsistency(t *testing.T) {
	cfg := MHAConfig{Instances: 2, Seq: 64, Heads: 4, FeatureDim: 16}
	c := cfg.Chain()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fused algo min: per head 4*Seq*F elements.
	want := int64(2) * 4 * (4 * 64 * 16) * 2
	if got := cfg.AlgoMinFusedBytes(); got != want {
		t.Fatalf("AlgoMinFusedBytes = %d, want %d", got, want)
	}
	if c.FusedAlgoMinBytes() != want {
		t.Fatalf("chain fused algo min %d != config %d", c.FusedAlgoMinBytes(), want)
	}
}

func TestFlashBeatsFLATAtSmallBuffers(t *testing.T) {
	cfg := MHAConfig{Instances: 2, Seq: 256, Heads: 4, FeatureDim: 16}
	flat := cfg.FLATCurve()
	flash := cfg.FlashAttentionCurve()
	// Pointwise: wherever FLAT is feasible, Flash is at least as good.
	betterSomewhere := false
	for _, p := range flat.Points() {
		fa, ok := flash.AccessesAt(p.BufferBytes)
		if !ok {
			t.Fatalf("flash infeasible at FLAT's point %+v", p)
		}
		if fa > p.AccessBytes {
			t.Fatalf("flash worse than FLAT at %d: %d > %d", p.BufferBytes, fa, p.AccessBytes)
		}
		if fa < p.AccessBytes {
			betterSomewhere = true
		}
	}
	if !betterSomewhere {
		t.Fatal("flash should strictly beat FLAT at some capacity")
	}
	// Both converge to the fused algorithmic minimum.
	if flat.MinAccessBytes() != cfg.AlgoMinFusedBytes() ||
		flash.MinAccessBytes() != cfg.AlgoMinFusedBytes() {
		t.Fatalf("strategies do not converge: FLAT %d Flash %d want %d",
			flat.MinAccessBytes(), flash.MinAccessBytes(), cfg.AlgoMinFusedBytes())
	}
	// Flash reaches the floor with less capacity.
	fb, _ := flash.BufferFor(cfg.AlgoMinFusedBytes())
	lb, _ := flat.BufferFor(cfg.AlgoMinFusedBytes())
	if fb > lb {
		t.Fatalf("flash max-effectual buffer %d above FLAT's %d", fb, lb)
	}
}

func TestMHAUnfusedAboveFused(t *testing.T) {
	cfg := MHAConfig{Instances: 1, Seq: 64, Heads: 2, FeatureDim: 8}
	unfused := cfg.UnfusedCurve(bound.Options{Workers: 1})
	// Unfused traffic can never beat the fused algorithmic minimum minus
	// nothing — in fact it must pay the intermediate twice, so its floor
	// exceeds the fused floor.
	if unfused.MinAccessBytes() <= cfg.AlgoMinFusedBytes() {
		t.Fatalf("unfused floor %d should exceed fused algo min %d",
			unfused.MinAccessBytes(), cfg.AlgoMinFusedBytes())
	}
}

func TestSubChain(t *testing.T) {
	c := MustChain("three", 8,
		GEMMOp("g0", 8, 4, 8),
		GEMMOp("g1", 8, 8, 4),
		GEMMOp("g2", 8, 4, 2),
	)
	sub := c.Sub(1, 3)
	if sub.Len() != 2 || sub.Ops[0].Name != "g1" {
		t.Fatalf("Sub(1,3) = %+v", sub)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Sub did not panic")
		}
	}()
	c.Sub(2, 2)
}
