package fusion

import (
	"context"
	"fmt"

	"repro/internal/pareto"
	"repro/internal/shape"
	"repro/internal/traverse"
)

// TiledFusion derives the sequential tiled-fusion bound for a chain of at
// least two ops under the FFMT constraints of Fig. 16/17:
//
//   - The chain is traversed M1 = M/M0 times over blocks of M0 rows.
//   - Op 0 follows FFMT-TiledKN: its output row may be produced in N2(0)
//     sub-partitions, re-iterating ops 0 and 1 N2(0) times per block and
//     re-reading op 0's input N2(0) times (Access_I,0 = N2(0)*M*K(0)).
//   - Middle ops follow FFMT-Full: they consume and produce complete rows.
//   - The last op may follow FFMT-TiledN, producing its output row in
//     sub-partitions (no access penalty; the output goes to the backing
//     store anyway).
//   - Weights are either streamed once per traversal
//     (Access_W = max(M1, instances) * WInst) or held resident
//     (Access_W = total weight size; BufReq grows by the resident slice).
//
// The fused mapspace — M0, N2(0), the last op's output tiling, and the
// subset of weight-resident layers — is enumerated exhaustively and the
// Pareto frontier returned (Sec. V-E).
func TiledFusion(c *Chain) (*pareto.Curve, error) {
	curve, _, err := TiledFusionStats(c, 0)
	return curve, err
}

// TiledFusionStats is TiledFusion with an explicit worker count (<= 0
// means GOMAXPROCS) and traversal statistics. The fused template space —
// (M0, N2(0), weight-residency subset) triples — is flattened to one
// index range and chunked across workers (see internal/traverse), so the
// sweep scales with cores and the curve is byte-identical for every
// worker count.
func TiledFusionStats(c *Chain, workers int) (*pareto.Curve, traverse.Stats, error) {
	space, err := TiledFusionSpace(c)
	if err != nil {
		return nil, traverse.Stats{}, err
	}
	return TiledFusionRange(context.Background(), c, 0, space, workers)
}

// tiledSpace captures the flattened FFMT template enumeration of a chain:
// flat index idx decodes (innermost first) into a residency subset, an
// N2(0) output-tiling factor and an M0 block height.
type tiledSpace struct {
	m0Options, n2Options, lastTileOptions []int64
	subsets                               int64
}

func newTiledSpace(c *Chain) (tiledSpace, error) {
	if err := c.Validate(); err != nil {
		return tiledSpace{}, err
	}
	if len(c.Ops) < 2 {
		return tiledSpace{}, fmt.Errorf("fusion: TiledFusion needs >= 2 ops, chain %s has %d", c.Name, len(c.Ops))
	}
	e0 := &c.Ops[0]
	last := len(c.Ops) - 1
	sp := tiledSpace{
		m0Options: shape.Divisors(c.M),
		n2Options: shape.Divisors(e0.OutW),
		subsets:   int64(1) << len(c.Ops),
	}
	if e0.NoOutputTiling {
		sp.n2Options = []int64{1}
	}
	sp.lastTileOptions = shape.Divisors(c.Ops[last].OutW)
	if c.Ops[last].NoOutputTiling {
		sp.lastTileOptions = []int64{1}
	}
	return sp, nil
}

func (sp tiledSpace) items() int64 {
	return int64(len(sp.m0Options)) * int64(len(sp.n2Options)) * sp.subsets
}

// TiledFusionSpace returns the size of the flat FFMT template index space
// TiledFusion sweeps for c — the [0, Space) range that TiledFusionRange
// slices and a cross-process shard plan (internal/shard) divides.
func TiledFusionSpace(c *Chain) (int64, error) {
	sp, err := newTiledSpace(c)
	if err != nil {
		return 0, err
	}
	return sp.items(), nil
}

// TiledFusionRange derives the partial tiled-fusion frontier over the
// global template indices [lo, hi) — one shard's (or one checkpoint
// block's) share of the sweep. Deriving a disjoint cover of
// [0, TiledFusionSpace(c)) and merging the partial curves with
// pareto.Union reproduces TiledFusionStats' curve byte-for-byte; the
// annotations are already set on every partial.
//
// Cancelling ctx aborts the sweep within about one worker chunk and
// returns the context's error with no curve.
func TiledFusionRange(ctx context.Context, c *Chain, lo, hi int64, workers int) (*pareto.Curve, traverse.Stats, error) {
	sp, err := newTiledSpace(c)
	if err != nil {
		return nil, traverse.Stats{}, err
	}
	if lo < 0 || hi < lo || hi > sp.items() {
		return nil, traverse.Stats{}, fmt.Errorf("fusion: TiledFusionRange [%d, %d) outside [0, %d)", lo, hi, sp.items())
	}
	curve, ts, err := traverse.FrontierRange(ctx, lo, hi, workers, func() traverse.ChunkFunc {
		return func(lo, hi int64, b *pareto.Builder) int64 {
			var count int64
			for idx := lo; idx < hi; idx++ {
				f := int(idx % sp.subsets)
				rest := idx / sp.subsets
				n2 := sp.n2Options[rest%int64(len(sp.n2Options))]
				m0 := sp.m0Options[rest/int64(len(sp.n2Options))]
				count += evalTemplate(c, b, m0, n2, f, sp.lastTileOptions)
			}
			return count
		}
	})
	if err != nil {
		return nil, ts, err
	}
	curve.AlgoMinBytes = c.FusedAlgoMinBytes()
	curve.TotalOperandBytes = c.UnfusedAlgoMinBytes()
	return curve, ts, nil
}

// evalTemplate evaluates one (M0, N2(0), residency subset) template point,
// adding its mode-A and mode-B candidates to b, and returns the number of
// candidates evaluated.
func evalTemplate(c *Chain, b *pareto.Builder, m0, n2 int64, f int, lastTileOptions []int64) int64 {
	e0 := &c.Ops[0]
	last := len(c.Ops) - 1
	m1 := c.M / m0

	acc, wbuf, feasibleW := weightTerms(c, m0, m1, f)
	if !feasibleW {
		return 0
	}
	acc += shape.Product(n2, c.M, e0.InW)       // Access_I,0
	acc += shape.Product(c.M, c.Ops[last].OutW) // Access_O,E-1
	if e0.HaloRows > 0 && m1 > 1 {
		// Sliding-window halo rows of the raw input are re-read once per
		// additional traversal.
		acc += shape.Product(n2, m1-1, e0.HaloRows, e0.InW)
	}

	// Mode A: the last op accumulates its full output row.
	io := ioPeak(c, m0, n2, c.Ops[last].OutW)
	b.Add((io+wbuf)*c.ElementSize, acc*c.ElementSize)
	count := int64(1)

	// Mode B: FFMT-TiledN on the last op. It needs the full input row
	// resident, which for a two-op chain conflicts with op 0's output
	// tiling unless N2(0) == 1.
	if last >= 2 || n2 == 1 {
		for _, lt := range lastTileOptions {
			if lt == 1 {
				continue // identical to mode A
			}
			ioB := ioPeak(c, m0, n2, c.Ops[last].OutW/lt)
			b.Add((ioB+wbuf)*c.ElementSize, acc*c.ElementSize)
			count++
		}
	}
	return count
}

// weightTerms returns the weight access count and resident-weight buffer
// footprint (both in elements) for residency subset f, where bit e of f
// marks op e's weights as buffer-resident. feasible is false when a
// resident op's instance slice would not be well defined (never happens
// with perfect factors; kept for safety).
func weightTerms(c *Chain, m0, m1 int64, f int) (acc, buf int64, feasible bool) {
	for e := range c.Ops {
		op := &c.Ops[e]
		inst := c.Instances(e)
		if f&(1<<e) != 0 {
			// Resident: each instance's weights loaded exactly once.
			acc += c.WeightTotalElements(e)
			// Concurrent instances whose rows fall inside one M0 block.
			concurrent := shape.Max(1, shape.CeilDiv(m0, op.RowsPerInst))
			buf += shape.Product(op.WInst, concurrent)
		} else {
			// Streamed once per block traversal; a block spanning
			// multiple instances streams each instance's slice.
			acc += shape.Product(shape.Max(m1, inst), op.WInst)
		}
	}
	return acc, buf, true
}

// ioPeak computes the peak InputOutputBuf requirement in elements across
// the sequential execution of the chain's ops for one M0-row block:
// op 0 streams its input (FFMT-TiledKN with minimal input tile) and holds
// an OutW/N2 output slice; op 1 consumes that slice while accumulating its
// full output row; later middle ops hold full input and output rows; the
// last op's held output is lastOut wide.
func ioPeak(c *Chain, m0, n2, lastOut int64) int64 {
	last := len(c.Ops) - 1
	peak := int64(0)
	for e := range c.Ops {
		op := &c.Ops[e]
		in := op.InW
		switch e {
		case 0:
			in = 1
			if op.HaloRows > 0 {
				// Sliding-window ops must see whole input rows.
				in = op.InW
			}
		case 1:
			in = shape.CeilDiv(op.InW, n2)
		}
		out := op.OutW
		if e == 0 {
			out = shape.CeilDiv(op.OutW, n2)
		}
		if e == last {
			out = lastOut
		}
		need := shape.Product(m0+op.HaloRows, in) + shape.Product(m0, out)
		if need > peak {
			peak = need
		}
	}
	return peak
}

// ReductionFactor evaluates how much a candidate curve improves on a
// baseline at each of the given capacities: baseline accesses divided by
// candidate accesses (Fig. 18b). Infeasible probes are skipped.
type ReductionPoint struct {
	BufferBytes int64
	Factor      float64
}

// ReductionFactors computes baseline/candidate access ratios at the union
// of both curves' breakpoints.
func ReductionFactors(baseline, candidate *pareto.Curve) []ReductionPoint {
	var out []ReductionPoint
	seen := map[int64]bool{}
	for _, src := range []*pareto.Curve{baseline, candidate} {
		for _, p := range src.Points() {
			if seen[p.BufferBytes] {
				continue
			}
			seen[p.BufferBytes] = true
			ba, ok1 := baseline.AccessesAt(p.BufferBytes)
			ca, ok2 := candidate.AccessesAt(p.BufferBytes)
			if !ok1 || !ok2 || ca == 0 {
				continue
			}
			out = append(out, ReductionPoint{
				BufferBytes: p.BufferBytes,
				Factor:      float64(ba) / float64(ca),
			})
		}
	}
	sortReduction(out)
	return out
}

func sortReduction(pts []ReductionPoint) {
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].BufferBytes < pts[j-1].BufferBytes; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}
