// Package fusion implements Orojenesis' multi-Einsum analysis (Sec. V): it
// models producer-consumer chains of GEMM-like layers, applies the Fusion
// Friendly Mapping Template (FFMT) constraints of Fig. 16/17, and derives
// data-movement bounds for tiled fusion, untiled fusion, and every chain
// segmentation, plus the attention-specific FLAT and FlashAttention
// strategies of Fig. 20.
//
// A chain is normalized to a flow of M rows: each Op consumes rows of
// width InW, contracts them against a weight-like operand, and produces
// rows of width OutW = the next op's InW. Plain GEMMs have one weight
// shared by all rows; attention BMMs have per-sequence "weights" (the K/V
// matrices), captured by RowsPerInst < M.
package fusion

import (
	"fmt"
	"strings"

	"repro/internal/bound"
	"repro/internal/einsum"
	"repro/internal/pareto"
	"repro/internal/shape"
)

// Op is one layer of a fusible chain. The json tags define the chain's
// structural encoding in workload specs (internal/workload,
// docs/workload-spec.md).
type Op struct {
	Name string `json:"name"`

	// InW and OutW are the per-row input and output widths in elements
	// (the K and N dimensions of the layer's GEMM view).
	InW  int64 `json:"in_w"`
	OutW int64 `json:"out_w"`

	// WInst is the weight footprint in elements for one instance, and
	// RowsPerInst the number of chain rows that share it. A plain GEMM
	// has one instance covering all M rows (RowsPerInst == chain M);
	// an attention BMM has one instance per sequence.
	WInst       int64 `json:"w_inst"`
	RowsPerInst int64 `json:"rows_per_inst"`

	// NoOutputTiling marks ops followed by a row-wise normalization
	// (softmax, layernorm): their output row may not be tiled by the
	// fused schedule (Sec. VII-B).
	NoOutputTiling bool `json:"no_output_tiling,omitempty"`

	// HaloRows is the number of extra trailing input rows the op needs
	// beyond the M0 rows it produces (sliding-window overlap of a
	// convolution: (R-1)*dilation for stride-1 kernels). Halo rows are
	// retained in the buffer between blocks; the chain's first op
	// re-reads them from the backing store on every traversal.
	HaloRows int64 `json:"halo_rows,omitempty"`

	// Ref is the op's un-fused Einsum, used to derive its standalone
	// ski-slope curve for the unfused baseline and for segmentation.
	Ref *einsum.Einsum `json:"ref"`
}

// Chain is a producer-consumer cascade of ops sharing the row dimension M.
type Chain struct {
	Name        string `json:"name"`
	M           int64  `json:"m"`
	ElementSize int64  `json:"element_size"`
	Ops         []Op   `json:"ops"`
}

// GEMMOp builds a chain layer for a plain GEMM with k-wide input rows and
// n-wide output rows over m chain rows.
func GEMMOp(name string, m, k, n int64) Op {
	return Op{
		Name:        name,
		InW:         k,
		OutW:        n,
		WInst:       k * n,
		RowsPerInst: m,
		Ref:         einsum.GEMM(name, m, k, n),
	}
}

// ConvOp builds a chain layer for a stride-1, same-padded 2D convolution
// fused at output-row granularity (the classic fused-layer CNN dataflow):
// the chain's M dimension is the output height P, each row carries
// Q*C input and Q*N output elements, and the sliding window adds
// (R-1)*dilation halo rows. The output row is never tiled (row-granular
// fusion), which keeps channel reductions free of partial sums.
func ConvOp(name string, cfg einsum.ConvConfig) Op {
	if cfg.T > 1 {
		panic(fmt.Sprintf("fusion: ConvOp %s: only stride-1 layers can share the chain's row dimension", name))
	}
	d := cfg.D
	if d == 0 {
		d = 1
	}
	return Op{
		Name:           name,
		InW:            cfg.Q * cfg.C,
		OutW:           cfg.Q * cfg.N,
		WInst:          cfg.C * cfg.N * cfg.R * cfg.S,
		RowsPerInst:    cfg.P,
		NoOutputTiling: true,
		HaloRows:       (cfg.R - 1) * d,
		Ref:            einsum.Conv2D(name, cfg),
	}
}

// AttentionQKOp builds the bmm_QK layer: per sequence of seq rows, each
// row's heads*f features are matched against the sequence's K matrix
// (heads*seq*f elements) producing heads*seq scores per row.
func AttentionQKOp(name string, instances, seq, heads, f int64) Op {
	return Op{
		Name:        name,
		InW:         heads * f,
		OutW:        heads * seq,
		WInst:       heads * seq * f,
		RowsPerInst: seq,
		Ref:         einsum.BMM(name, instances*heads, seq, f, seq),
	}
}

// AttentionQKVOp builds the bmm_QKV layer: per sequence, each row's
// heads*seq attention weights contract against the sequence's V matrix
// (heads*seq*f elements) producing heads*f outputs per row.
func AttentionQKVOp(name string, instances, seq, heads, f int64) Op {
	return Op{
		Name:        name,
		InW:         heads * seq,
		OutW:        heads * f,
		WInst:       heads * seq * f,
		RowsPerInst: seq,
		Ref:         einsum.BMM(name, instances*heads, seq, seq, f),
	}
}

// FromEinsums assembles a chain from a sequence of GEMM Einsums (ranks
// M, K, N) whose M dimensions match and whose N feeds the successor's K —
// the textual-workload path into the fusion engine.
func FromEinsums(name string, es ...*einsum.Einsum) (*Chain, error) {
	if len(es) == 0 {
		return nil, fmt.Errorf("fusion: FromEinsums: no einsums")
	}
	var ops []Op
	var m int64
	for i, e := range es {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		var mk, kk, nk int64
		for _, r := range e.Ranks {
			switch r.Name {
			case "M":
				mk = r.Shape
			case "K":
				kk = r.Shape
			case "N":
				nk = r.Shape
			default:
				return nil, fmt.Errorf("fusion: FromEinsums: %s has non-GEMM rank %s", e.Name, r.Name)
			}
		}
		if mk == 0 || kk == 0 || nk == 0 {
			return nil, fmt.Errorf("fusion: FromEinsums: %s is not a GEMM (needs ranks M, K, N)", e.Name)
		}
		if i == 0 {
			m = mk
		} else if mk != m {
			return nil, fmt.Errorf("fusion: FromEinsums: %s has M=%d, chain has M=%d", e.Name, mk, m)
		}
		ops = append(ops, GEMMOp(e.Name, mk, kk, nk))
	}
	return NewChain(name, m, ops...)
}

// NewChain assembles and validates a chain.
func NewChain(name string, m int64, ops ...Op) (*Chain, error) {
	c := &Chain{Name: name, M: m, ElementSize: einsum.DefaultElementSize, Ops: ops}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustChain is NewChain that panics on error, for static workload tables.
func MustChain(name string, m int64, ops ...Op) *Chain {
	c, err := NewChain(name, m, ops...)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate checks chain consistency: positive shapes, matching
// producer/consumer row widths, and instance rows dividing M.
func (c *Chain) Validate() error {
	if c.M < 1 {
		return fmt.Errorf("fusion: chain %s: M = %d", c.Name, c.M)
	}
	if c.ElementSize < 1 {
		return fmt.Errorf("fusion: chain %s: element size %d", c.Name, c.ElementSize)
	}
	if len(c.Ops) == 0 {
		return fmt.Errorf("fusion: chain %s: no ops", c.Name)
	}
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.InW < 1 || op.OutW < 1 || op.WInst < 1 {
			return fmt.Errorf("fusion: chain %s op %s: non-positive shape", c.Name, op.Name)
		}
		if op.RowsPerInst < 1 || c.M%op.RowsPerInst != 0 {
			return fmt.Errorf("fusion: chain %s op %s: RowsPerInst %d does not divide M %d",
				c.Name, op.Name, op.RowsPerInst, c.M)
		}
		if i > 0 && c.Ops[i-1].OutW != op.InW {
			return fmt.Errorf("fusion: chain %s: op %s OutW %d != op %s InW %d",
				c.Name, c.Ops[i-1].Name, c.Ops[i-1].OutW, op.Name, op.InW)
		}
		if op.Ref == nil {
			return fmt.Errorf("fusion: chain %s op %s: missing reference einsum", c.Name, op.Name)
		}
	}
	return nil
}

// Len returns the number of ops in the chain.
func (c *Chain) Len() int { return len(c.Ops) }

// Canonical renders a complete, deterministic encoding of the chain — M,
// element size, and every op's template-relevant fields — for workload
// digests (internal/shard): two chains with equal Canonical strings have
// identical FFMT template spaces and identical tiled-fusion curves.
func (c *Chain) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain{name=%s m=%d es=%d ops=[", c.Name, c.M, c.ElementSize)
	for i := range c.Ops {
		op := &c.Ops[i]
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s{in=%d out=%d winst=%d rows=%d notile=%t halo=%d}",
			op.Name, op.InW, op.OutW, op.WInst, op.RowsPerInst, op.NoOutputTiling, op.HaloRows)
	}
	b.WriteString("]}")
	return b.String()
}

// Instances returns the number of weight instances of op e.
func (c *Chain) Instances(e int) int64 { return c.M / c.Ops[e].RowsPerInst }

// WeightTotalElements returns the total weight footprint of op e across
// all instances.
func (c *Chain) WeightTotalElements(e int) int64 {
	return shape.Product(c.Instances(e), c.Ops[e].WInst)
}

// FusedAlgoMinBytes is the fused algorithmic minimum: first input read
// once, all weights read once, last output written once — intermediates
// never touch the backing store.
func (c *Chain) FusedAlgoMinBytes() int64 {
	elems := shape.Product(c.M, c.Ops[0].InW) + shape.Product(c.M, c.Ops[len(c.Ops)-1].OutW)
	for e := range c.Ops {
		elems += c.WeightTotalElements(e)
	}
	return elems * c.ElementSize
}

// UnfusedAlgoMinBytes is the conventional algorithmic minimum of executing
// each op separately: every intermediate is written and re-read.
func (c *Chain) UnfusedAlgoMinBytes() int64 {
	var elems int64
	for e := range c.Ops {
		elems += c.Ops[e].Ref.AlgorithmicMinElements()
	}
	return elems * c.ElementSize
}

// IntermediateBytes returns the total size of all intermediate tensors.
func (c *Chain) IntermediateBytes() int64 {
	var elems int64
	for e := 0; e < len(c.Ops)-1; e++ {
		elems += shape.Product(c.M, c.Ops[e].OutW)
	}
	return elems * c.ElementSize
}

// Sub returns the sub-chain spanning ops [lo, hi).
func (c *Chain) Sub(lo, hi int) *Chain {
	if lo < 0 || hi > len(c.Ops) || lo >= hi {
		panic(fmt.Sprintf("fusion: Sub(%d,%d) of %d-op chain", lo, hi, len(c.Ops)))
	}
	return &Chain{
		Name:        fmt.Sprintf("%s[%d:%d]", c.Name, lo, hi),
		M:           c.M,
		ElementSize: c.ElementSize,
		Ops:         c.Ops[lo:hi],
	}
}

// PerOpCurves derives the standalone ski-slope curve of every op.
func (c *Chain) PerOpCurves(opts bound.Options) []*pareto.Curve {
	out := make([]*pareto.Curve, len(c.Ops))
	for e := range c.Ops {
		out[e] = bound.Derive(c.Ops[e].Ref, opts).Curve
	}
	return out
}

// UnfusedCurve is the paper's purple baseline: each op mapped optimally in
// isolation and executed back to back through the shared buffer.
func UnfusedCurve(perOp []*pareto.Curve) *pareto.Curve {
	return pareto.Sum(perOp...)
}
