package fusion

import (
	"fmt"

	"repro/internal/pareto"
	"repro/internal/shape"
)

// PipelinedFusion derives the bound for pipelined (rather than
// sequential) fused execution per Sec. V-B: all layers run concurrently
// on streaming tiles, so *every* layer's weights must be resident at all
// times — BufReq = sum of all weight footprints plus the largest
// input/output tile pair. Access counts match sequential fusion with all
// weights resident (each weight loaded once), so pipelining only ever
// costs buffer capacity, which is why the paper focuses on sequential
// fusion.
func PipelinedFusion(c *Chain) (*pareto.Curve, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(c.Ops) < 2 {
		return nil, fmt.Errorf("fusion: PipelinedFusion needs >= 2 ops, chain %s has %d",
			c.Name, len(c.Ops))
	}
	e0 := &c.Ops[0]
	last := len(c.Ops) - 1

	n2Options := shape.Divisors(e0.OutW)
	if e0.NoOutputTiling {
		n2Options = []int64{1}
	}

	b := pareto.NewBuilder()
	for _, m0 := range shape.Divisors(c.M) {
		// All weights resident; concurrent instances per op whose rows
		// overlap one M0 block.
		var wbuf, acc int64
		for e := range c.Ops {
			op := &c.Ops[e]
			concurrent := shape.Max(1, shape.CeilDiv(m0, op.RowsPerInst))
			wbuf += shape.Product(op.WInst, concurrent)
			acc += c.WeightTotalElements(e)
		}
		for _, n2 := range n2Options {
			total := acc +
				shape.Product(n2, c.M, e0.InW) +
				shape.Product(c.M, c.Ops[last].OutW)
			// Pipelined I/O: the max in+out tile pair across stages, all
			// alive simultaneously — charge the sum of per-stage pairs'
			// maximum as in the paper's equation.
			io := ioPeak(c, m0, n2, c.Ops[last].OutW)
			b.Add((io+wbuf)*c.ElementSize, total*c.ElementSize)
		}
	}
	curve := b.Curve()
	curve.AlgoMinBytes = c.FusedAlgoMinBytes()
	curve.TotalOperandBytes = c.UnfusedAlgoMinBytes()
	return curve, nil
}

// TiledFusionWithPartialSpill extends the two-Einsum tiled-fusion space
// with the paper's future-work knob (Sec. V-F): the last Einsum's partial
// sums may be spilled to and reloaded from the backing store instead of
// being accumulated in the buffer. Each of the N2(0) re-iterations then
// writes the full output row once and re-reads it on the next pass —
// (2*N2-1) * M * N(last) total output traffic — in exchange for an output
// buffer of a single sub-tile. The returned curve merges the standard
// tiled-fusion points with the spilling points.
func TiledFusionWithPartialSpill(c *Chain) (*pareto.Curve, error) {
	base, err := TiledFusion(c)
	if err != nil {
		return nil, err
	}
	if len(c.Ops) != 2 {
		// The paper only sanctions partial-sum propagation for the
		// two-Einsum special case; longer chains fall back to the
		// standard bound.
		return base, nil
	}
	e0, e1 := &c.Ops[0], &c.Ops[1]
	n2Options := shape.Divisors(e0.OutW)
	if e0.NoOutputTiling {
		n2Options = []int64{1}
	}

	b := pareto.NewBuilder()
	b.AddCurve(base)
	subsets := 1 << 2
	for _, m0 := range shape.Divisors(c.M) {
		m1 := c.M / m0
		for _, n2 := range n2Options {
			if n2 == 1 {
				continue // no partials to spill
			}
			for f := 0; f < subsets; f++ {
				acc, wbuf, _ := weightTerms(c, m0, m1, f)
				acc += shape.Product(n2, c.M, e0.InW)
				// Spilled partials: N2 writes + (N2-1) reloads of the
				// full output.
				acc += shape.Product(2*n2-1, c.M, e1.OutW)
				// I/O: op0 streams input (1) and holds an OutW/N2 slice;
				// op1 holds the same slice as input and only a unit
				// output accumulator strip.
				io := shape.Product(m0, 1+shape.CeilDiv(e0.OutW, n2))
				io2 := shape.Product(m0, shape.CeilDiv(e1.InW, n2)+1)
				b.Add((shape.Max(io, io2)+wbuf)*c.ElementSize, acc*c.ElementSize)
			}
		}
	}
	curve := b.Curve()
	curve.AlgoMinBytes = base.AlgoMinBytes
	curve.TotalOperandBytes = base.TotalOperandBytes
	return curve, nil
}
