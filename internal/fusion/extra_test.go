package fusion

import (
	"testing"

	"repro/internal/einsum"
	"repro/internal/pareto"
)

func TestFromEinsumsErrors(t *testing.T) {
	g1 := einsum.GEMM("a", 64, 16, 32)
	g2 := einsum.GEMM("b", 64, 32, 16)
	if _, err := FromEinsums("ok", g1, g2); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if _, err := FromEinsums("empty"); err == nil {
		t.Fatal("empty chain accepted")
	}
	// Mismatched M.
	g3 := einsum.GEMM("c", 32, 32, 16)
	if _, err := FromEinsums("bad", g1, g3); err == nil {
		t.Fatal("mismatched M accepted")
	}
	// Non-GEMM ranks.
	bmm := einsum.BMM("bmm", 2, 64, 16, 32)
	if _, err := FromEinsums("bad", bmm); err == nil {
		t.Fatal("BMM accepted as GEMM chain op")
	}
	// Invalid einsum.
	invalid := &einsum.Einsum{Name: "x", ElementSize: 2}
	if _, err := FromEinsums("bad", invalid); err == nil {
		t.Fatal("invalid einsum accepted")
	}
}

func TestPipelinedRespectsNoOutputTiling(t *testing.T) {
	free := twoGEMMChain()
	pinned := twoGEMMChain()
	pinned.Ops[0].NoOutputTiling = true
	pf, err := PipelinedFusion(free)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := PipelinedFusion(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if pp.MinBufferBytes() < pf.MinBufferBytes() {
		t.Fatal("constraint reduced the pipelined buffer")
	}
}

func TestUntiledFusionErrors(t *testing.T) {
	if _, err := UntiledFusion(MustChain("one", 4, GEMMOp("g", 4, 2, 2))); err == nil {
		t.Fatal("single-op untiled accepted")
	}
	bad := &Chain{Name: "bad", M: 0, ElementSize: 2}
	if _, err := UntiledFusion(bad); err == nil {
		t.Fatal("invalid chain accepted")
	}
	if _, err := TiledFusion(bad); err == nil {
		t.Fatal("invalid chain accepted by TiledFusion")
	}
	if _, err := PipelinedFusion(bad); err == nil {
		t.Fatal("invalid chain accepted by PipelinedFusion")
	}
}

func TestReductionFactorsSorted(t *testing.T) {
	base := pareto.FromPoints([]pareto.Point{
		{BufferBytes: 10, AccessBytes: 1000},
		{BufferBytes: 100, AccessBytes: 400},
	})
	cand := pareto.FromPoints([]pareto.Point{
		{BufferBytes: 50, AccessBytes: 500},
		{BufferBytes: 100, AccessBytes: 100},
	})
	rf := ReductionFactors(base, cand)
	for i := 1; i < len(rf); i++ {
		if rf[i].BufferBytes < rf[i-1].BufferBytes {
			t.Fatalf("reduction points unsorted: %+v", rf)
		}
	}
	// At 100 B: base 400 / cand 100 = 4x.
	found := false
	for _, p := range rf {
		if p.BufferBytes == 100 && p.Factor == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing 4x point: %+v", rf)
	}
}

func TestMHACustomElementSize(t *testing.T) {
	m2 := MHAConfig{Instances: 1, Seq: 64, Heads: 2, FeatureDim: 8}
	m4 := MHAConfig{Instances: 1, Seq: 64, Heads: 2, FeatureDim: 8, ElementSize: 4}
	if m4.AlgoMinFusedBytes() != 2*m2.AlgoMinFusedBytes() {
		t.Fatal("element size not honored")
	}
	c2 := m2.FlashAttentionCurve()
	c4 := m4.FlashAttentionCurve()
	if c4.MinAccessBytes() != 2*c2.MinAccessBytes() {
		t.Fatal("element size not applied to curves")
	}
}

func TestSegmentationLabelRendering(t *testing.T) {
	s := Segmentation{Cuts: []int{2}}
	if got := s.render(4); got != "[0:2)[2:4)" {
		t.Fatalf("render = %q", got)
	}
	if got := (Segmentation{}).render(3); got != "[0:3)" {
		t.Fatalf("render = %q", got)
	}
}

func TestWeightTotalAndInstances(t *testing.T) {
	c := MustChain("mha", 128,
		AttentionQKOp("qk", 2, 64, 4, 8),
		AttentionQKVOp("qkv", 2, 64, 4, 8),
	)
	if c.Instances(0) != 2 {
		t.Fatalf("instances = %d", c.Instances(0))
	}
	if c.WeightTotalElements(0) != 2*4*64*8 {
		t.Fatalf("weight total = %d", c.WeightTotalElements(0))
	}
}
