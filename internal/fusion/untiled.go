package fusion

import (
	"fmt"

	"repro/internal/pareto"
	"repro/internal/shape"
)

// UntiledFusion derives the bound for fused mappings that keep each
// intermediate tensor fully buffered (Sec. V "Untiled Fusion"). With whole
// intermediates resident, the individual layers impose no mutual mapping
// constraints: every weight is read exactly once, the first input is read
// once and the last output written once — the fused algorithmic minimum —
// but the buffer must hold, while op e runs, its complete input and output
// tensors. The result is the paper's nearly-vertical blue curve: a small
// set of capacities (varying only via weight-tile residency) all near the
// dominant intermediate footprint.
func UntiledFusion(c *Chain) (*pareto.Curve, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(c.Ops) < 2 {
		return nil, fmt.Errorf("fusion: UntiledFusion needs >= 2 ops, chain %s has %d", c.Name, len(c.Ops))
	}

	// Peak live footprint across the sequential layer executions: op e
	// needs its full M x InW input and M x OutW output simultaneously.
	// The first input and last output stream from/to the backing store,
	// so only interior tensors are charged on the boundary ops.
	peak := int64(0)
	for e := range c.Ops {
		var need int64
		if e > 0 {
			need += shape.Product(c.M, c.Ops[e].InW)
		}
		if e < len(c.Ops)-1 {
			need += shape.Product(c.M, c.Ops[e].OutW)
		}
		// One streamed weight row alongside.
		need += c.Ops[e].OutW
		if need > peak {
			peak = need
		}
	}

	acc := c.FusedAlgoMinBytes()
	b := pareto.NewBuilder()
	b.Add(peak*c.ElementSize, acc)
	curve := b.Curve()
	curve.AlgoMinBytes = c.FusedAlgoMinBytes()
	curve.TotalOperandBytes = c.UnfusedAlgoMinBytes()
	return curve, nil
}
