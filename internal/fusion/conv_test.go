package fusion

import (
	"testing"

	"repro/internal/bound"
	"repro/internal/einsum"
)

func convChain() *Chain {
	cfg := einsum.ConvConfig{P: 56, Q: 56, N: 64, C: 64, R: 3, S: 3}
	return MustChain("convpair", 56,
		ConvOp("conv_a", cfg),
		ConvOp("conv_b", cfg),
	)
}

func TestConvOpShape(t *testing.T) {
	cfg := einsum.ConvConfig{P: 56, Q: 56, N: 128, C: 64, R: 3, S: 3, D: 2}
	op := ConvOp("c", cfg)
	if op.InW != 56*64 || op.OutW != 56*128 {
		t.Fatalf("widths = %d/%d", op.InW, op.OutW)
	}
	if op.WInst != 64*128*3*3 || op.RowsPerInst != 56 {
		t.Fatalf("weights = %d rows %d", op.WInst, op.RowsPerInst)
	}
	if op.HaloRows != 4 { // (R-1)*dilation
		t.Fatalf("halo = %d, want 4", op.HaloRows)
	}
	if !op.NoOutputTiling {
		t.Fatal("conv rows must not be tiled")
	}
}

func TestConvOpRejectsStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("strided ConvOp did not panic")
		}
	}()
	ConvOp("s2", einsum.ConvConfig{P: 28, Q: 28, N: 64, C: 64, R: 3, S: 3, T: 2})
}

func TestConvChainFusionBound(t *testing.T) {
	c := convChain()
	fused, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	if fused.MinAccessBytes() != c.FusedAlgoMinBytes() {
		t.Fatalf("fused floor %d != fused algo min %d",
			fused.MinAccessBytes(), c.FusedAlgoMinBytes())
	}
	// Fusing eliminates the intermediate feature map: the fused floor is
	// below the unfused algorithmic minimum.
	if fused.MinAccessBytes() >= c.UnfusedAlgoMinBytes() {
		t.Fatal("fusion did not beat the unfused algorithmic minimum")
	}
	// Row-granular fusion: the smallest fused buffer holds a handful of
	// rows plus halo, far below the whole feature map.
	interRow := c.Ops[0].OutW * c.ElementSize
	if fused.MinBufferBytes() >= 56*interRow {
		t.Fatalf("min fused buffer %d not below the full feature map %d",
			fused.MinBufferBytes(), 56*interRow)
	}
}

func TestConvHaloCostsBufferAndTraffic(t *testing.T) {
	withHalo := convChain()
	noHalo := convChain()
	for i := range noHalo.Ops {
		noHalo.Ops[i].HaloRows = 0
	}
	fh, err := TiledFusion(withHalo)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := TiledFusion(noHalo)
	if err != nil {
		t.Fatal(err)
	}
	if fh.MinBufferBytes() <= fn.MinBufferBytes() {
		t.Fatalf("halo should raise the minimum buffer: %d vs %d",
			fh.MinBufferBytes(), fn.MinBufferBytes())
	}
	// At the halo-free chain's smallest buffer, the halo chain (if
	// feasible at all) pays at least as many accesses.
	if acc, ok := fh.AccessesAt(fn.MinBufferBytes()); ok {
		base, _ := fn.AccessesAt(fn.MinBufferBytes())
		if acc < base {
			t.Fatalf("halo chain cheaper than halo-free: %d < %d", acc, base)
		}
	}
}

func TestConvChainSegmentation(t *testing.T) {
	c := convChain()
	perOp := c.PerOpCurves(bound.Options{Workers: 1})
	best, err := BestSegmentation(c, perOp)
	if err != nil {
		t.Fatal(err)
	}
	unfused := UnfusedCurve(perOp)
	for _, p := range unfused.Points() {
		got, ok := best.AccessesAt(p.BufferBytes)
		if !ok || got > p.AccessBytes {
			t.Fatalf("segmented conv chain worse than unfused at %d", p.BufferBytes)
		}
	}
}
