package fusion

import (
	"testing"
)

func TestPipelinedNeverCheaperBufferThanSequential(t *testing.T) {
	c := MustChain("c", 16,
		GEMMOp("g0", 16, 8, 16),
		GEMMOp("g1", 16, 16, 8),
	)
	seq, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := PipelinedFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	// Same access floor (all weights resident reaches the fused algo min
	// in both styles).
	if pipe.MinAccessBytes() != c.FusedAlgoMinBytes() {
		t.Fatalf("pipelined floor %d != fused algo min %d",
			pipe.MinAccessBytes(), c.FusedAlgoMinBytes())
	}
	// Pipelined needs at least as much buffer for equal accesses: at
	// every pipelined point, sequential achieves <= accesses.
	for _, p := range pipe.Points() {
		acc, ok := seq.AccessesAt(p.BufferBytes)
		if !ok || acc > p.AccessBytes {
			t.Fatalf("sequential (%d,%v) worse than pipelined point %+v", acc, ok, p)
		}
	}
	// And the pipelined minimum buffer exceeds the sequential minimum.
	if pipe.MinBufferBytes() <= seq.MinBufferBytes() {
		t.Fatalf("pipelined min buffer %d should exceed sequential %d",
			pipe.MinBufferBytes(), seq.MinBufferBytes())
	}
}

func TestPipelinedRejectsShortChains(t *testing.T) {
	if _, err := PipelinedFusion(MustChain("one", 4, GEMMOp("g", 4, 2, 2))); err == nil {
		t.Fatal("single-op pipelined fusion accepted")
	}
}

func TestPartialSpillDominatesBase(t *testing.T) {
	c := MustChain("pair", 64,
		GEMMOp("g0", 64, 16, 64),
		GEMMOp("g1", 64, 64, 16),
	)
	base, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := TiledFusionWithPartialSpill(c)
	if err != nil {
		t.Fatal(err)
	}
	// The spilling space is a superset: pointwise at least as good.
	for _, p := range base.Points() {
		acc, ok := spill.AccessesAt(p.BufferBytes)
		if !ok || acc > p.AccessBytes {
			t.Fatalf("spill curve worse at %d: (%d,%v) vs %d",
				p.BufferBytes, acc, ok, p.AccessBytes)
		}
	}
	// It may enable smaller buffers than the base space.
	if spill.MinBufferBytes() > base.MinBufferBytes() {
		t.Fatalf("spill min buffer %d above base %d",
			spill.MinBufferBytes(), base.MinBufferBytes())
	}
	// Spilled partials always cost at least the fused algorithmic
	// minimum.
	for _, p := range spill.Points() {
		if p.AccessBytes < c.FusedAlgoMinBytes() {
			t.Fatalf("spill point %+v below fused algo min", p)
		}
	}
}

func TestPartialSpillLongChainFallsBack(t *testing.T) {
	c := MustChain("three", 16,
		GEMMOp("g0", 16, 4, 16),
		GEMMOp("g1", 16, 16, 8),
		GEMMOp("g2", 16, 8, 4),
	)
	base, err := TiledFusion(c)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := TiledFusionWithPartialSpill(c)
	if err != nil {
		t.Fatal(err)
	}
	if spill.Len() != base.Len() {
		t.Fatal("3-op chain should fall back to the standard bound")
	}
}
