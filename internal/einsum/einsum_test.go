package einsum

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGEMMBasics(t *testing.T) {
	g := GEMM("gemm", 64, 32, 16)
	if g.MACs() != 64*32*16 {
		t.Fatalf("MACs = %d, want %d", g.MACs(), 64*32*16)
	}
	want := int64(64*32 + 32*16 + 64*16)
	if g.AlgorithmicMinElements() != want {
		t.Fatalf("AlgorithmicMinElements = %d, want %d", g.AlgorithmicMinElements(), want)
	}
	if g.AlgorithmicMinBytes() != want*2 {
		t.Fatalf("AlgorithmicMinBytes = %d, want %d", g.AlgorithmicMinBytes(), want*2)
	}
	if g.SmallestOperandElements() != 32*16 {
		t.Fatalf("smallest operand = %d, want %d", g.SmallestOperandElements(), 32*16)
	}
	if got := g.RankShape("K"); got != 32 {
		t.Fatalf("RankShape(K) = %d", got)
	}
}

func TestGEMMFootprints(t *testing.T) {
	g := GEMM("gemm", 64, 32, 16)
	tile := map[string]int64{"M": 4, "K": 8, "N": 2}
	a, w, b := &g.Tensors[0], &g.Tensors[1], &g.Tensors[2]
	if fp := g.Footprint(a, tile); fp != 4*8 {
		t.Fatalf("A footprint = %d, want 32", fp)
	}
	if fp := g.Footprint(w, tile); fp != 8*2 {
		t.Fatalf("W footprint = %d, want 16", fp)
	}
	if fp := g.Footprint(b, tile); fp != 4*2 {
		t.Fatalf("B footprint = %d, want 8", fp)
	}
	// Ranks missing from the tile map default to 1.
	if fp := g.Footprint(a, map[string]int64{"M": 4}); fp != 4 {
		t.Fatalf("A footprint with default K = %d, want 4", fp)
	}
}

func TestConvFootprintStrideDilation(t *testing.T) {
	// stride 2, dilation 2, 3x3 filter.
	c := Conv2D("conv", ConvConfig{P: 16, Q: 16, N: 8, C: 4, R: 3, S: 3, T: 2, D: 2})
	in := &c.Tensors[0]
	tile := map[string]int64{"P": 4, "Q": 1, "R": 3, "S": 1, "C": 2}
	// width dim: 2*(4-1) + 2*(3-1) + 1 = 11; height: 2*(1-1)+2*(1-1)+1 = 1; C: 2.
	if fp := c.Footprint(in, tile); fp != 11*1*2 {
		t.Fatalf("conv input footprint = %d, want 22", fp)
	}
	// Full input size: width = 2*15 + 2*2 + 1 = 35, same height, 4 channels.
	if sz := c.TensorSize(in); sz != 35*35*4 {
		t.Fatalf("conv input size = %d, want %d", sz, 35*35*4)
	}
}

func TestConvFootprintClamped(t *testing.T) {
	// Unit stride: footprint of a full-P tile plus filter reach must clamp
	// to the true input extent.
	c := Conv2D("conv", ConvConfig{P: 16, Q: 16, N: 8, C: 4, R: 3, S: 3, T: 1, D: 1})
	in := &c.Tensors[0]
	full := map[string]int64{"P": 16, "Q": 16, "R": 3, "S": 3, "C": 4}
	if fp := c.Footprint(in, full); fp != c.TensorSize(in) {
		t.Fatalf("full-tile footprint %d != tensor size %d", fp, c.TensorSize(in))
	}
}

func TestGroupedBMM(t *testing.T) {
	g := GroupedBMM("gbmm", 32, 4, 128, 64, 256)
	w := &g.Tensors[1]
	if gd := w.GroupDivFor("H"); gd != 8 {
		t.Fatalf("GroupDivFor(H) = %d, want 8", gd)
	}
	// W has G=4 head groups: size = 4*64*256.
	if sz := g.TensorSize(w); sz != 4*64*256 {
		t.Fatalf("W size = %d, want %d", sz, 4*64*256)
	}
	// A tile covering 8 heads touches ceil(8/8) = 1 group of W.
	tile := map[string]int64{"H": 8, "K": 64, "N": 256}
	if fp := g.Footprint(w, tile); fp != 1*64*256 {
		t.Fatalf("W footprint for 8-head tile = %d, want %d", fp, 64*256)
	}
	// 9 heads span 2 groups.
	tile["H"] = 16
	if fp := g.Footprint(w, tile); fp != 2*64*256 {
		t.Fatalf("W footprint for 16-head tile = %d, want %d", fp, 2*64*256)
	}
}

func TestGroupedBMMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GroupedBMM with non-dividing G did not panic")
		}
	}()
	GroupedBMM("bad", 32, 5, 1, 1, 1)
}

func TestBMMEqualsGroupedBMMWithGEqualsH(t *testing.T) {
	b := BMM("bmm", 16, 64, 32, 64)
	g := GroupedBMM("gbmm", 16, 16, 64, 32, 64)
	if b.AlgorithmicMinElements() != g.AlgorithmicMinElements() {
		t.Fatalf("BMM algo-min %d != grouped(G=H) %d",
			b.AlgorithmicMinElements(), g.AlgorithmicMinElements())
	}
	if b.MACs() != g.MACs() {
		t.Fatal("MACs mismatch between BMM and grouped BMM with G=H")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []*Einsum{
		{Name: "", ElementSize: 2, Ranks: []Rank{{"M", 4}}},
		{Name: "x", ElementSize: 0, Ranks: []Rank{{"M", 4}}},
		{Name: "x", ElementSize: 2},
		{Name: "x", ElementSize: 2, Ranks: []Rank{{"M", 4}, {"M", 4}}},
		{Name: "x", ElementSize: 2, Ranks: []Rank{{"M", 0}}},
		{ // no output
			Name: "x", ElementSize: 2, Ranks: []Rank{{"M", 4}},
			Tensors: []Tensor{{Name: "A", Dims: []Dim{id("M")}}},
		},
		{ // unknown rank reference
			Name: "x", ElementSize: 2, Ranks: []Rank{{"M", 4}},
			Tensors: []Tensor{
				{Name: "A", Dims: []Dim{id("Z")}},
				{Name: "B", Dims: []Dim{id("M")}, Output: true},
			},
		},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted invalid einsum", i)
		}
	}
	if err := GEMM("ok", 4, 4, 4).Validate(); err != nil {
		t.Fatalf("valid GEMM rejected: %v", err)
	}
}

func TestRelevance(t *testing.T) {
	g := GEMM("gemm", 8, 8, 8)
	a, w, b := &g.Tensors[0], &g.Tensors[1], &g.Tensors[2]
	checks := []struct {
		t    *Tensor
		rank string
		want bool
	}{
		{a, "M", true}, {a, "K", true}, {a, "N", false},
		{w, "M", false}, {w, "K", true}, {w, "N", true},
		{b, "M", true}, {b, "K", false}, {b, "N", true},
	}
	for _, c := range checks {
		if got := c.t.Relevant(c.rank); got != c.want {
			t.Fatalf("%s.Relevant(%s) = %v, want %v", c.t.Name, c.rank, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	g := GEMM("gemm", 8, 8, 8)
	s := g.String()
	if !strings.Contains(s, "B[m,n] = A[m,k] * W[k,n]") {
		t.Fatalf("unexpected String(): %q", s)
	}
	c := Conv2D("conv", ConvConfig{P: 4, Q: 4, N: 2, C: 2, R: 3, S: 3, T: 2, D: 1})
	if !strings.Contains(c.String(), "2p+r") {
		t.Fatalf("conv String() missing strided projection: %q", c.String())
	}
}

func TestFootprintMonotoneProperty(t *testing.T) {
	g := GEMM("gemm", 64, 64, 64)
	f := func(m1, k1, n1, m2, k2, n2 uint8) bool {
		t1 := map[string]int64{
			"M": int64(m1%64) + 1, "K": int64(k1%64) + 1, "N": int64(n1%64) + 1,
		}
		t2 := map[string]int64{
			"M": t1["M"] + int64(m2%4), "K": t1["K"] + int64(k2%4), "N": t1["N"] + int64(n2%4),
		}
		for r, v := range t2 {
			if v > 64 {
				t2[r] = 64
			}
		}
		// Footprints are monotone in tile sizes.
		for i := range g.Tensors {
			if g.Footprint(&g.Tensors[i], t2) < g.Footprint(&g.Tensors[i], t1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmicOI(t *testing.T) {
	g := GEMM("gemm", 128, 128, 128)
	want := float64(128*128*128) / float64(3*128*128)
	if got := g.AlgorithmicOI(); got != want {
		t.Fatalf("AlgorithmicOI = %f, want %f", got, want)
	}
}
