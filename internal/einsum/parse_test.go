package einsum

import (
	"testing"
)

func TestParseGEMM(t *testing.T) {
	e, err := Parse("B[m,n] = A[m,k] * W[k,n] {M=64, K=32, N=16}")
	if err != nil {
		t.Fatal(err)
	}
	ref := GEMM("b", 64, 32, 16)
	if e.MACs() != ref.MACs() {
		t.Fatalf("MACs = %d, want %d", e.MACs(), ref.MACs())
	}
	if e.AlgorithmicMinElements() != ref.AlgorithmicMinElements() {
		t.Fatalf("algo min = %d, want %d",
			e.AlgorithmicMinElements(), ref.AlgorithmicMinElements())
	}
	if !e.Output().Output || e.Output().Name != "B" {
		t.Fatalf("output tensor wrong: %+v", e.Output())
	}
	if len(e.Inputs()) != 2 {
		t.Fatalf("inputs = %d", len(e.Inputs()))
	}
}

func TestParseConvStridedDilated(t *testing.T) {
	e, err := Parse("B[p,q,n] = A[2p+2r, 2q+2s, c] * W[c,n,r,s] {P=16,Q=16,N=8,C=4,R=3,S=3}")
	if err != nil {
		t.Fatal(err)
	}
	ref := Conv2D("conv", ConvConfig{P: 16, Q: 16, N: 8, C: 4, R: 3, S: 3, T: 2, D: 2})
	if e.MACs() != ref.MACs() {
		t.Fatalf("MACs mismatch: %d vs %d", e.MACs(), ref.MACs())
	}
	in := e.Inputs()[0]
	rin := ref.Inputs()[0]
	if e.TensorSize(in) != ref.TensorSize(rin) {
		t.Fatalf("strided input size mismatch: %d vs %d",
			e.TensorSize(in), ref.TensorSize(rin))
	}
}

func TestParseGroupedBMM(t *testing.T) {
	e, err := Parse("B[h,m,n] = A[h,m,k] * W[h/8, k, n] {H=32,M=16,K=8,N=16}")
	if err != nil {
		t.Fatal(err)
	}
	ref := GroupedBMM("g", 32, 4, 16, 8, 16)
	w := e.Inputs()[1]
	if e.TensorSize(w) != ref.TensorSize(&ref.Tensors[1]) {
		t.Fatalf("grouped weight size mismatch: %d vs %d",
			e.TensorSize(w), ref.TensorSize(&ref.Tensors[1]))
	}
	if gd := w.GroupDivFor("H"); gd != 8 {
		t.Fatalf("GroupDiv = %d", gd)
	}
}

func TestParseCaseInsensitiveRanks(t *testing.T) {
	e, err := Parse("B[M,n] = A[m,K] * W[k,N] {m=4, k=4, n=4}")
	if err != nil {
		t.Fatal(err)
	}
	if e.RankShape("M") != 4 || e.RankShape("K") != 4 {
		t.Fatal("rank canonicalization broken")
	}
}

func TestParseXAsMultiply(t *testing.T) {
	e, err := Parse("B[m,n] = A[m,k] x W[k,n] {M=4,K=4,N=4}")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Inputs()) != 2 {
		t.Fatalf("inputs = %d", len(e.Inputs()))
	}
}

func TestParseThreeInputChainStyle(t *testing.T) {
	// Multiple inputs in one Einsum (e.g. an elementwise-scaled GEMM).
	e, err := Parse("B[m,n] = A[m,k] * W[k,n] * S[n] {M=4,K=4,N=4}")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Inputs()) != 3 {
		t.Fatalf("inputs = %d", len(e.Inputs()))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"B[m,n]",                             // no '='
		"B[m,n] = A[m,k] {M=4,K=4}",          // N unshaped... (n used in output)
		"B[m,n] = A[m,k] * W[k,n] {M=4,K=4}", // missing N
		"B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4,Z=4}", // unused rank shape
		"B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=0}",     // zero shape
		"B[m,n] = A[m,k] * W[k/1,n] {M=4,K=4,N=4}",   // group divisor < 2
		"B[m,n] = A[m,k] * W[2k/4,n] {M=4,K=4,N=4}",  // coeff on grouped
		"B[m,n = A[m,k] * W[k,n] {M=4,K=4,N=4}",      // missing ']'
		"B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4} garbage",
		"B[m,n] = A[m,k] * W[k,n] {M=4,K=4,N=4,M=8}", // duplicate shape
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("nonsense")
}

func TestParseRoundTripThroughString(t *testing.T) {
	// The String() rendering of a parsed GEMM parses back to an
	// equivalent workload.
	orig := MustParse("B[m,n] = A[m,k] * W[k,n] {M=8,K=8,N=8}")
	back, err := Parse(orig.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", orig.String(), err)
	}
	if back.MACs() != orig.MACs() || back.AlgorithmicMinElements() != orig.AlgorithmicMinElements() {
		t.Fatal("round trip changed the workload")
	}
}
