// Package einsum models tensor-algebra workloads as Einsums: computations
// over a set of ranks that read input tensors and produce one output
// tensor. Tensor dimensions are described with projections from ranks —
// plain identity, strided/dilated affine sums (convolution), or grouped
// integer division (grouped-query attention) — which is enough to express
// every workload analysed in the paper: GEMM, Conv2D, BMM and grouped BMM.
package einsum

import (
	"fmt"
	"strings"

	"repro/internal/shape"
)

// Rank is a named iteration dimension of an Einsum with a fixed shape
// (loop extent). The json tags define the workload-spec wire format
// (docs/workload-spec.md); rank order is significant — it fixes the
// enumeration order of the mapspace.
type Rank struct {
	Name  string `json:"name"`
	Shape int64  `json:"shape"`
}

// Term is one affine contribution to a tensor dimension: Coeff * index(Rank).
// A convolution input width T*P + D*R has two terms: {P, T} and {R, D}.
type Term struct {
	Rank  string `json:"rank"`
	Coeff int64  `json:"coeff"`
}

// Dim is a single dimension of a tensor. Its index is either the affine sum
// of Terms, or — when GroupDiv > 1 — floor(index(Terms[0].Rank) / GroupDiv),
// which models the head-sharing of grouped BMM (MQA/GQA).
type Dim struct {
	Terms    []Term `json:"terms"`
	GroupDiv int64  `json:"group_div,omitempty"` // 0 or 1 for affine dims; > 1 for grouped dims
}

// Tensor names an operand of an Einsum and describes how its dimensions
// project from the Einsum's ranks.
type Tensor struct {
	Name   string `json:"name"`
	Dims   []Dim  `json:"dims"`
	Output bool   `json:"output,omitempty"` // true for the (single) produced tensor
}

// Einsum is an un-mapped tensor computation. Every point in the iteration
// space (the cross product of the rank shapes) performs one multiply-
// accumulate. The json tags define the structural encoding used by
// workload specs (internal/workload): unlike the textual expression
// syntax, it round-trips the name, element size and rank order exactly.
type Einsum struct {
	Name        string   `json:"name"`
	Ranks       []Rank   `json:"ranks"`
	Tensors     []Tensor `json:"tensors"`
	ElementSize int64    `json:"element_size"` // bytes per element (the paper reports 2-byte data)
}

// DefaultElementSize is the operand width used throughout the paper's
// experiments (fp16/bf16).
const DefaultElementSize = 2

// Validate checks internal consistency: unique rank names, at least one
// input and exactly one output tensor, and every projection referring to a
// declared rank. It returns a descriptive error for the first problem found.
func (e *Einsum) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("einsum: missing name")
	}
	if e.ElementSize <= 0 {
		return fmt.Errorf("einsum %s: non-positive element size %d", e.Name, e.ElementSize)
	}
	if len(e.Ranks) == 0 {
		return fmt.Errorf("einsum %s: no ranks", e.Name)
	}
	seen := map[string]bool{}
	for _, r := range e.Ranks {
		if r.Shape < 1 {
			return fmt.Errorf("einsum %s: rank %s has shape %d", e.Name, r.Name, r.Shape)
		}
		if seen[r.Name] {
			return fmt.Errorf("einsum %s: duplicate rank %s", e.Name, r.Name)
		}
		seen[r.Name] = true
	}
	outputs := 0
	for _, t := range e.Tensors {
		if t.Output {
			outputs++
		}
		for _, d := range t.Dims {
			if len(d.Terms) == 0 {
				return fmt.Errorf("einsum %s: tensor %s has a dimension with no terms", e.Name, t.Name)
			}
			if d.GroupDiv > 1 && len(d.Terms) != 1 {
				return fmt.Errorf("einsum %s: tensor %s: grouped dims must have exactly one term", e.Name, t.Name)
			}
			for _, term := range d.Terms {
				if !seen[term.Rank] {
					return fmt.Errorf("einsum %s: tensor %s references unknown rank %s", e.Name, t.Name, term.Rank)
				}
				if term.Coeff < 1 {
					return fmt.Errorf("einsum %s: tensor %s rank %s has coefficient %d", e.Name, t.Name, term.Rank, term.Coeff)
				}
			}
		}
	}
	if outputs != 1 {
		return fmt.Errorf("einsum %s: want exactly 1 output tensor, have %d", e.Name, outputs)
	}
	if len(e.Tensors) < 2 {
		return fmt.Errorf("einsum %s: want at least one input and one output tensor", e.Name)
	}
	return nil
}

// RankShape returns the shape of the named rank, or panics if the rank does
// not exist (always a programming error here).
func (e *Einsum) RankShape(name string) int64 {
	for _, r := range e.Ranks {
		if r.Name == name {
			return r.Shape
		}
	}
	panic(fmt.Sprintf("einsum %s: unknown rank %s", e.Name, name))
}

// Output returns the Einsum's output tensor.
func (e *Einsum) Output() *Tensor {
	for i := range e.Tensors {
		if e.Tensors[i].Output {
			return &e.Tensors[i]
		}
	}
	panic(fmt.Sprintf("einsum %s: no output tensor", e.Name))
}

// Inputs returns the input tensors in declaration order.
func (e *Einsum) Inputs() []*Tensor {
	var in []*Tensor
	for i := range e.Tensors {
		if !e.Tensors[i].Output {
			in = append(in, &e.Tensors[i])
		}
	}
	return in
}

// Relevant reports whether the named rank affects tensor t's footprint,
// i.e. whether any dimension of t projects from it.
func (t *Tensor) Relevant(rank string) bool {
	for _, d := range t.Dims {
		for _, term := range d.Terms {
			if term.Rank == rank {
				return true
			}
		}
	}
	return false
}

// GroupDivFor returns the grouping divisor tensor t applies to the named
// rank (1 if the rank is used ungrouped or not at all).
func (t *Tensor) GroupDivFor(rank string) int64 {
	for _, d := range t.Dims {
		if d.GroupDiv > 1 && d.Terms[0].Rank == rank {
			return d.GroupDiv
		}
	}
	return 1
}

// DimExtent returns the full extent of dimension d given the rank shapes in
// shapes: for affine dims Σ coeff*(shape-1) + 1, for grouped dims
// ceil(shape / GroupDiv).
func (d *Dim) DimExtent(shapes map[string]int64) int64 {
	return d.extent(func(r string) int64 { return shapes[r] })
}

func (d *Dim) extent(tileOf func(string) int64) int64 {
	if d.GroupDiv > 1 {
		return shape.CeilDiv(tileOf(d.Terms[0].Rank), d.GroupDiv)
	}
	ext := int64(1)
	for _, term := range d.Terms {
		ext += term.Coeff * (tileOf(term.Rank) - 1)
	}
	return ext
}

// Footprint returns the number of elements of tensor t touched by a tile
// with the given per-rank tile sizes. Ranks not present in the map default
// to tile size 1. The footprint of each dimension is clamped to the
// dimension's full extent (a strided tile can project past the array edge
// only up to the real data).
func (e *Einsum) Footprint(t *Tensor, tile map[string]int64) int64 {
	full := e.rankShapes()
	fp := int64(1)
	for i := range t.Dims {
		d := &t.Dims[i]
		got := d.extent(func(r string) int64 {
			if v, ok := tile[r]; ok {
				return v
			}
			return 1
		})
		if max := d.DimExtent(full); got > max {
			got = max
		}
		fp = shape.Product(fp, got)
	}
	return fp
}

// TensorSize returns the total number of elements in tensor t.
func (e *Einsum) TensorSize(t *Tensor) int64 {
	return e.Footprint(t, e.rankShapes())
}

// TensorSizeBytes returns tensor t's size in bytes.
func (e *Einsum) TensorSizeBytes(t *Tensor) int64 {
	return e.TensorSize(t) * e.ElementSize
}

func (e *Einsum) rankShapes() map[string]int64 {
	m := make(map[string]int64, len(e.Ranks))
	for _, r := range e.Ranks {
		m[r.Name] = r.Shape
	}
	return m
}

// MACs returns the number of multiply-accumulate operations: the product of
// all rank shapes.
func (e *Einsum) MACs() int64 {
	p := int64(1)
	for _, r := range e.Ranks {
		p = shape.Product(p, r.Shape)
	}
	return p
}

// AlgorithmicMinElements is the paper's "algorithmic minimum" (compulsory
// traffic): each input read once plus the output written once, in elements.
func (e *Einsum) AlgorithmicMinElements() int64 {
	var sum int64
	for i := range e.Tensors {
		sum += e.TensorSize(&e.Tensors[i])
	}
	return sum
}

// AlgorithmicMinBytes is AlgorithmicMinElements scaled to bytes.
func (e *Einsum) AlgorithmicMinBytes() int64 {
	return e.AlgorithmicMinElements() * e.ElementSize
}

// AlgorithmicOI is the classic compute-to-traffic ratio using the
// algorithmic minimum: MACs per element moved.
func (e *Einsum) AlgorithmicOI() float64 {
	return float64(e.MACs()) / float64(e.AlgorithmicMinElements())
}

// TotalOperandBytes sums the sizes of all operands (the normalizer for the
// paper's Gap 1 / Fig. 11 ratios).
func (e *Einsum) TotalOperandBytes() int64 {
	return e.AlgorithmicMinBytes()
}

// SmallestOperandElements returns the size of the smallest operand, which
// Sec. IV-1 shows approximates the maximal effectual buffer size for GEMMs.
func (e *Einsum) SmallestOperandElements() int64 {
	min := int64(-1)
	for i := range e.Tensors {
		s := e.TensorSize(&e.Tensors[i])
		if min < 0 || s < min {
			min = s
		}
	}
	return min
}

// String renders the Einsum in a compact notation close to the paper's,
// e.g. "B[m,n] = A[m,k] * W[k,n] {M=4096 K=4096 N=4096}".
func (e *Einsum) String() string {
	var b strings.Builder
	out := e.Output()
	b.WriteString(tensorSig(out))
	b.WriteString(" = ")
	for i, in := range e.Inputs() {
		if i > 0 {
			b.WriteString(" * ")
		}
		b.WriteString(tensorSig(in))
	}
	b.WriteString(" {")
	for i, r := range e.Ranks {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", r.Name, r.Shape)
	}
	b.WriteByte('}')
	return b.String()
}

// Canonical renders a complete, deterministic encoding of the Einsum —
// name, element size, ranks and every tensor projection — for workload
// digests (internal/shard): two Einsums with equal Canonical strings have
// identical mapspaces and identical derived curves. Unlike String it
// includes the name and element size, so curves derived for differently
// labelled but otherwise equal workloads are still distinguished.
func (e *Einsum) Canonical() string {
	return fmt.Sprintf("einsum{name=%s es=%d %s}", e.Name, e.ElementSize, e.String())
}

func tensorSig(t *Tensor) string {
	var b strings.Builder
	b.WriteString(t.Name)
	b.WriteByte('[')
	for i, d := range t.Dims {
		if i > 0 {
			b.WriteByte(',')
		}
		for j, term := range d.Terms {
			if j > 0 {
				b.WriteByte('+')
			}
			if term.Coeff != 1 {
				fmt.Fprintf(&b, "%d", term.Coeff)
			}
			b.WriteString(strings.ToLower(term.Rank))
		}
		if d.GroupDiv > 1 {
			fmt.Fprintf(&b, "/%d", d.GroupDiv)
		}
	}
	b.WriteByte(']')
	return b.String()
}
