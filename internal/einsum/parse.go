package einsum

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds an Einsum from the textual notation used throughout the
// paper (and by this repo's CLIs):
//
//	B[m,n] = A[m,k] * W[k,n] {M=4096, K=4096, N=4096}
//
// Dimensions support strided/dilated affine sums and grouped division:
//
//	B[p,q,n] = A[2p+2r, 2q+2s, c] * W[c,n,r,s] {P=16,Q=16,N=64,C=64,R=3,S=3}
//	B[h,m,n] = A[h,m,k] * W[h/4,k,n] {H=32,M=4096,K=128,N=4096}
//
// Rank names are case-insensitive (canonicalized to upper case); every
// referenced rank must be given a shape in the trailing {...} block. The
// left-hand tensor is the output. Element size defaults to
// DefaultElementSize.
func Parse(s string) (*Einsum, error) {
	p := &parser{src: s}
	e, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("einsum: parse %q: %w", s, err)
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error, for static workload tables.
func MustParse(s string) *Einsum {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src string
	pos int
}

func (p *parser) parse() (*Einsum, error) {
	out, err := p.tensor()
	if err != nil {
		return nil, err
	}
	out.Output = true
	if !p.eat("=") {
		return nil, p.errf("expected '='")
	}
	tensors := []Tensor{}
	for {
		in, err := p.tensor()
		if err != nil {
			return nil, err
		}
		tensors = append(tensors, *in)
		if p.eat("*") || p.eat("x") {
			continue
		}
		break
	}
	shapes, err := p.shapes()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}

	// Collect referenced ranks in first-use order.
	var rankOrder []string
	seen := map[string]bool{}
	collect := func(t *Tensor) {
		for _, d := range t.Dims {
			for _, term := range d.Terms {
				if !seen[term.Rank] {
					seen[term.Rank] = true
					rankOrder = append(rankOrder, term.Rank)
				}
			}
		}
	}
	collect(out)
	for i := range tensors {
		collect(&tensors[i])
	}

	e := &Einsum{
		Name:        strings.ToLower(out.Name),
		ElementSize: DefaultElementSize,
	}
	for _, r := range rankOrder {
		shape, ok := shapes[r]
		if !ok {
			return nil, fmt.Errorf("rank %s has no shape (add it to the {...} block)", r)
		}
		e.Ranks = append(e.Ranks, Rank{Name: r, Shape: shape})
	}
	for r := range shapes {
		if !seen[r] {
			return nil, fmt.Errorf("shape given for unused rank %s", r)
		}
	}
	e.Tensors = append(e.Tensors, tensors...)
	e.Tensors = append(e.Tensors, *out)
	return e, nil
}

// tensor parses NAME '[' dim (',' dim)* ']'.
func (p *parser) tensor() (*Tensor, error) {
	p.ws()
	name := p.ident()
	if name == "" {
		return nil, p.errf("expected tensor name")
	}
	if !p.eat("[") {
		return nil, p.errf("expected '[' after tensor %s", name)
	}
	t := &Tensor{Name: name}
	for {
		d, err := p.dim()
		if err != nil {
			return nil, err
		}
		t.Dims = append(t.Dims, *d)
		if p.eat(",") {
			continue
		}
		if p.eat("]") {
			break
		}
		return nil, p.errf("expected ',' or ']' in tensor %s", name)
	}
	return t, nil
}

// dim parses either a grouped index "h/4" or an affine sum "2p+2r".
func (p *parser) dim() (*Dim, error) {
	first, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.eat("/") {
		if first.Coeff != 1 {
			return nil, p.errf("grouped dims cannot carry a coefficient")
		}
		div := p.number()
		if div < 2 {
			return nil, p.errf("group divisor must be >= 2")
		}
		return &Dim{Terms: []Term{*first}, GroupDiv: div}, nil
	}
	d := &Dim{Terms: []Term{*first}}
	for p.eat("+") {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		d.Terms = append(d.Terms, *t)
	}
	return d, nil
}

// term parses an optional coefficient followed by a rank name.
func (p *parser) term() (*Term, error) {
	p.ws()
	coeff := int64(1)
	if n := p.number(); n > 0 {
		coeff = n
	}
	name := p.ident()
	if name == "" {
		return nil, p.errf("expected rank name")
	}
	return &Term{Rank: strings.ToUpper(name), Coeff: coeff}, nil
}

// shapes parses '{' NAME '=' INT (',' ...)* '}'.
func (p *parser) shapes() (map[string]int64, error) {
	p.ws()
	if !p.eat("{") {
		return nil, p.errf("expected '{' rank-shape block")
	}
	out := map[string]int64{}
	for {
		p.ws()
		name := p.ident()
		if name == "" {
			return nil, p.errf("expected rank name in shape block")
		}
		if !p.eat("=") {
			return nil, p.errf("expected '=' after rank %s", name)
		}
		v := p.number()
		if v < 1 {
			return nil, p.errf("bad shape for rank %s", name)
		}
		key := strings.ToUpper(name)
		if _, dup := out[key]; dup {
			return nil, p.errf("duplicate shape for rank %s", key)
		}
		out[key] = v
		p.eat(",") // separators are a comma or just whitespace
		if p.eat("}") {
			return out, nil
		}
	}
}

// lexer helpers --------------------------------------------------------

func (p *parser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) eat(tok string) bool {
	p.ws()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		// "x" doubles as a multiply sign only when it stands alone.
		if tok == "x" && p.pos+1 < len(p.src) && isIdent(rune(p.src[p.pos+1])) {
			return false
		}
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) ident() string {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) && isIdent(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) number() int64 {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
		p.pos++
	}
	if start == p.pos {
		return 0
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func isIdent(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("at byte %d: %s", p.pos, fmt.Sprintf(format, args...))
}
