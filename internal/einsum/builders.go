package einsum

import "fmt"

func id(rank string) Dim { return Dim{Terms: []Term{{Rank: rank, Coeff: 1}}} }

// GEMM builds the matrix-multiplication Einsum B[m,n] = A[m,k] * W[k,n].
func GEMM(name string, m, k, n int64) *Einsum {
	e := &Einsum{
		Name: name,
		Ranks: []Rank{
			{Name: "M", Shape: m},
			{Name: "K", Shape: k},
			{Name: "N", Shape: n},
		},
		Tensors: []Tensor{
			{Name: "A", Dims: []Dim{id("M"), id("K")}},
			{Name: "W", Dims: []Dim{id("K"), id("N")}},
			{Name: "B", Dims: []Dim{id("M"), id("N")}, Output: true},
		},
		ElementSize: DefaultElementSize,
	}
	mustValidate(e)
	return e
}

// BMM builds the batched matrix multiplication
// B[h,m,n] = A[h,m,k] * W[h,k,n] used by multi-head attention.
func BMM(name string, h, m, k, n int64) *Einsum {
	e := &Einsum{
		Name: name,
		Ranks: []Rank{
			{Name: "H", Shape: h},
			{Name: "M", Shape: m},
			{Name: "K", Shape: k},
			{Name: "N", Shape: n},
		},
		Tensors: []Tensor{
			{Name: "A", Dims: []Dim{id("H"), id("M"), id("K")}},
			{Name: "W", Dims: []Dim{id("H"), id("K"), id("N")}},
			{Name: "B", Dims: []Dim{id("H"), id("M"), id("N")}, Output: true},
		},
		ElementSize: DefaultElementSize,
	}
	mustValidate(e)
	return e
}

// GroupedBMM builds the grouped BMM of MQA/GQA:
// B[h,m,n] = A[h,m,k] * W[h/(H/G),k,n]. G=1 is multi-query attention,
// G=H recovers ordinary BMM.
func GroupedBMM(name string, h, g, m, k, n int64) *Einsum {
	if g < 1 || g > h || h%g != 0 {
		panic(fmt.Sprintf("einsum: GroupedBMM: G=%d must divide H=%d", g, h))
	}
	e := &Einsum{
		Name: name,
		Ranks: []Rank{
			{Name: "H", Shape: h},
			{Name: "M", Shape: m},
			{Name: "K", Shape: k},
			{Name: "N", Shape: n},
		},
		Tensors: []Tensor{
			{Name: "A", Dims: []Dim{id("H"), id("M"), id("K")}},
			{Name: "W", Dims: []Dim{
				{Terms: []Term{{Rank: "H", Coeff: 1}}, GroupDiv: h / g},
				id("K"), id("N"),
			}},
			{Name: "B", Dims: []Dim{id("H"), id("M"), id("N")}, Output: true},
		},
		ElementSize: DefaultElementSize,
	}
	mustValidate(e)
	return e
}

// ConvConfig parameterizes a multi-channel 2D convolution
// B[p,q,n] = A[t*p+d*r, t*q+d*s, c] * W[c,n,r,s].
type ConvConfig struct {
	P, Q int64 // output spatial extents
	N    int64 // output channels
	C    int64 // input channels
	R, S int64 // filter spatial extents
	T    int64 // stride (applied to both spatial dims)
	D    int64 // dilation (applied to both spatial dims)
}

// Conv2D builds the convolution Einsum for cfg. Stride and dilation default
// to 1 when left zero.
func Conv2D(name string, cfg ConvConfig) *Einsum {
	if cfg.T == 0 {
		cfg.T = 1
	}
	if cfg.D == 0 {
		cfg.D = 1
	}
	e := &Einsum{
		Name: name,
		Ranks: []Rank{
			{Name: "P", Shape: cfg.P},
			{Name: "Q", Shape: cfg.Q},
			{Name: "N", Shape: cfg.N},
			{Name: "C", Shape: cfg.C},
			{Name: "R", Shape: cfg.R},
			{Name: "S", Shape: cfg.S},
		},
		Tensors: []Tensor{
			{Name: "A", Dims: []Dim{
				{Terms: []Term{{Rank: "P", Coeff: cfg.T}, {Rank: "R", Coeff: cfg.D}}},
				{Terms: []Term{{Rank: "Q", Coeff: cfg.T}, {Rank: "S", Coeff: cfg.D}}},
				id("C"),
			}},
			{Name: "W", Dims: []Dim{id("C"), id("N"), id("R"), id("S")}},
			{Name: "B", Dims: []Dim{id("P"), id("Q"), id("N")}, Output: true},
		},
		ElementSize: DefaultElementSize,
	}
	mustValidate(e)
	return e
}

func mustValidate(e *Einsum) {
	if err := e.Validate(); err != nil {
		panic(err)
	}
}
